/**
 * @file
 * Checkpoint save -> load -> serve walkthrough:
 *
 *   1. train a small MLP on synthetic data through the Mirage numerics,
 *   2. checkpoint it (parameters + optimizer state) to a file,
 *   3. load the checkpoint into a ModelRepository in a "fresh process",
 *   4. serve functional inference requests through the SLO-aware
 *      InferenceServer over the RuntimeEngine,
 *   5. hot-swap a new version while the server is running, and
 *   6. inspect the run through the observability layer: dump the
 *      metrics registry and export a Chrome trace of the serve path
 *      (open serve_quickstart_trace.json in Perfetto or
 *      chrome://tracing).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/logging.h"
#include "models/trainable.h"
#include "nn/data.h"
#include "obs/fidelity.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/engine.h"
#include "serve/checkpoint.h"
#include "serve/repository.h"
#include "serve/server.h"

using namespace mirage;

namespace {

constexpr int kIn = 16, kHidden = 24, kClasses = 4;

models::ModelShape
mlpShape()
{
    models::ModelShape shape;
    shape.name = "mlp";
    shape.layers = {{"fc1", kHidden, kIn, 1, 1, true},
                    {"fc2", kHidden, kHidden, 1, 1, true},
                    {"fc3", kClasses, kHidden, 1, 1, true}};
    return shape;
}

} // namespace

int
main()
{
    const std::string ckpt_path = "serve_quickstart.mirckpt";

    // Arm span recording up front so the whole serve path is captured
    // (metrics are on by default; MIRAGE_TRACE=1 would do the same).
    obs::setTraceEnabled(true);
    // Shadow-probe every 4th GEMM per call site against the FP32
    // reference (MIRAGE_FIDELITY=4 would do the same). Probes only read
    // results — training and serving stay bit-identical with them on.
    obs::fidelity::setProbeInterval(4);

    // --- 1. train --------------------------------------------------------
    {
        core::MirageAccelerator accel;
        Rng rng(1);
        std::unique_ptr<nn::Sequential> net =
            models::makeMlp(kIn, kHidden, kClasses, accel.backend(), rng);

        const nn::Dataset train =
            nn::makeGaussianClusters(256, kClasses, kIn, 3.0f, 2);
        const nn::Dataset test =
            nn::makeGaussianClusters(64, kClasses, kIn, 3.0f, 3);
        nn::Sgd opt(0.05f, 0.9f);
        nn::TrainConfig cfg;
        cfg.epochs = 5;
        cfg.batch_size = 32;
        const nn::TrainResult result =
            nn::trainClassifier(*net, opt, train, test, cfg);
        std::cout << "trained " << cfg.epochs << " epochs, test accuracy "
                  << result.final_test_accuracy << "\n";

        // --- 2. checkpoint (parameters + SGD momentum, bit-exact) -------
        serve::saveFile(serve::snapshot(*net, "mlp", &opt), ckpt_path);
        std::cout << "checkpoint written to " << ckpt_path << "\n";
    }

    // --- 3. load into a repository (simulating a fresh process) ---------
    serve::ModelRepository repo;
    const serve::ModelFactory factory = [](nn::GemmBackend *backend,
                                           Rng &rng) {
        return models::makeMlp(kIn, kHidden, kClasses, backend, rng);
    };
    repo.publishCheckpointFile("mlp", ckpt_path, mlpShape(), factory);
    std::cout << "serving mlp v" << repo.currentVersion("mlp") << "\n";

    // --- 4. serve --------------------------------------------------------
    runtime::RuntimeEngine engine;
    serve::InferenceServer server(repo, engine);

    Rng req_rng(3);
    std::vector<std::future<serve::InferenceReply>> futures;
    for (int i = 0; i < 12; ++i) {
        serve::InferenceRequest req;
        req.model = "mlp";
        req.slo = i % 4 == 0 ? serve::SloClass::Batch
                             : serve::SloClass::Interactive;
        nn::Tensor x({1, kIn});
        for (int64_t j = 0; j < x.size(); ++j)
            x[j] = static_cast<float>(req_rng.gaussian());
        req.input = std::move(x);
        futures.push_back(server.submit(std::move(req)));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        const serve::InferenceReply reply = futures[i].get();
        if (i == 1) {
            // Request 1 is interactive; the interactive group dispatches
            // first, so it pays the cold weight-programming miss.
            std::cout << "first interactive reply: batch_size="
                      << reply.batch_size << " cache_hit=" << reply.cache_hit
                      << " latency_ms=" << reply.latency_s * 1e3 << "\n";
        }
    }

    // --- 5. hot-swap: publish v2, drain, retire v1 -----------------------
    repo.publishCheckpointFile("mlp", ckpt_path, mlpShape(), factory);
    server.drain();
    repo.retireOldVersions("mlp");
    serve::InferenceRequest req;
    req.model = "mlp";
    nn::Tensor x({1, kIn});
    x.fill(0.25f);
    req.input = std::move(x);
    std::cout << "after hot-swap, requests serve v"
              << server.submit(std::move(req)).get().version << "\n";

    const serve::ServerStats stats = server.stats();
    std::cout << "served " << stats.completed << " requests in "
              << stats.batches << " micro-batches; cache hit rate "
              << stats.cacheHitRate() * 100 << "%; energy/request "
              << stats.energyPerRequestJ() * 1e6 << " uJ\n"
              << "interactive p99 "
              << stats.interactive_latency.p99_s * 1e3 << " ms\n";

    // --- 6. observability: metrics dump + Chrome trace export ------------
    // The counters/histograms below were recorded for free by the server,
    // engine and weight cache; renderText is the Prometheus-style view a
    // scrape endpoint would expose.
    const obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    const obs::Counter *hits = reg.findCounter("serve.cache.hits");
    const obs::Counter *misses = reg.findCounter("serve.cache.misses");
    std::cout << "obs counters: serve.cache.hits="
              << (hits != nullptr ? hits->value() : 0)
              << " serve.cache.misses="
              << (misses != nullptr ? misses->value() : 0) << "\n";
    reg.writeJsonFile("serve_quickstart_metrics.json");
    std::cout << "metrics dump written to serve_quickstart_metrics.json\n";
    obs::writeChromeTraceFile("serve_quickstart_trace.json");
    std::cout << "Chrome trace written to serve_quickstart_trace.json"
                 " (load it in Perfetto / chrome://tracing)\n";

    // --- 7. numerical fidelity: per-layer shadow-probe error report ------
    // Every 4th GEMM was re-executed against FP32 and its error recorded
    // as "matching bits" (round(-log2 relative error); 64 = bit-exact).
    const obs::Counter *probes = reg.findCounter("fidelity.probes");
    std::cout << "fidelity probes recorded: "
              << (probes != nullptr ? probes->value() : 0) << "\n";
    obs::fidelity::writeReportFile("serve_quickstart_fidelity.json");
    std::cout << "fidelity report written to serve_quickstart_fidelity.json"
                 " (validate with bench/check_fidelity.py)\n";

    server.shutdown();
    std::remove(ckpt_path.c_str());
    return 0;
}
