/**
 * @file
 * The train->serve loop end to end:
 *
 *   1. train a model data-parallel across 2 replicas with the train/
 *      orchestrator (schedule, clipping, periodic checkpoints),
 *   2. interrupt mid-run and checkpoint,
 *   3. resume bit-exactly in a fresh trainer ("new process"),
 *   4. hot-publish checkpoints into a ModelRepository while training, and
 *   5. serve the latest version through the SLO-aware InferenceServer,
 *      hot-swapping with zero downtime as new versions land.
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "models/trainable.h"
#include "nn/data.h"
#include "obs/fidelity.h"
#include "obs/metrics.h"
#include "runtime/engine.h"
#include "serve/repository.h"
#include "serve/server.h"
#include "train/trainer.h"

using namespace mirage;

namespace {

constexpr int kIn = 16, kHidden = 24, kClasses = 4;

serve::ModelFactory
mlpFactory()
{
    return [](nn::GemmBackend *backend, Rng &rng) {
        return models::makeMlp(kIn, kHidden, kClasses, backend, rng);
    };
}

models::ModelShape
mlpShape()
{
    models::ModelShape shape;
    shape.name = "mlp";
    shape.layers = {{"fc1", kHidden, kIn, 1, 1, true},
                    {"fc2", kHidden, kHidden, 1, 1, true},
                    {"fc3", kClasses, kHidden, 1, 1, true}};
    return shape;
}

train::TrainerConfig
trainerConfig(serve::ModelRepository *repo)
{
    train::TrainerConfig cfg;
    cfg.replicas = 2;         // data-parallel across 2 model replicas
    cfg.micro_batch = 8;      // 8 rows per shard
    cfg.shards_per_step = 4;  // x4 shards  -> effective batch 32
    cfg.clip_norm = 5.0;
    cfg.schedule = train::LrSchedule::cosine(/*total_steps=*/48, 0.1,
                                             /*warmup_steps=*/4);
    cfg.seed = 7;
    cfg.shape = mlpShape();
    cfg.checkpoint_path = "train_quickstart.mirckpt";
    cfg.checkpoint_every_steps = 4; // checkpoint + publish every 4 steps
    cfg.publish_to = repo;
    cfg.publish_name = "mlp";
    return cfg;
}

} // namespace

int
main()
{
    // Shadow-probe every 8th GEMM per call site against the FP32
    // reference (MIRAGE_FIDELITY=8 would do the same): training stays
    // bit-identical — probes only read layer outputs — while per-layer
    // error histograms accumulate for the fidelity report below.
    obs::fidelity::setProbeInterval(8);

    // One synthetic distribution, split train/test.
    const nn::Dataset all =
        nn::makeGaussianClusters(384, kClasses, kIn, 3.0f, 12);
    const nn::Dataset train_set = all.slice(0, 320);
    const nn::Dataset test_set = all.slice(320, 64);

    serve::ModelRepository repo;

    // --- 1+2. train data-parallel, interrupt mid-run ---------------------
    {
        train::Trainer trainer(mlpFactory(),
                               std::make_unique<nn::Sgd>(0.05f, 0.9f),
                               trainerConfig(&repo));
        const train::TrainReport report =
            trainer.run(train_set, &test_set, /*target_epochs=*/4,
                        /*max_steps=*/14);
        std::cout << "interrupted at step " << trainer.globalStep()
                  << " (epoch " << trainer.epochIndex() << ", batch cursor "
                  << trainer.cursorBatch() << "), "
                  << report.checkpoints_written << " checkpoints, repo at v"
                  << repo.currentVersion("mlp") << "\n";
        trainer.saveCheckpoint("train_quickstart.mirckpt");
    } // trainer destroyed: simulates the process going away

    // --- 3+4. resume bit-exactly and finish, publishing as we go ---------
    train::Trainer trainer(mlpFactory(),
                           std::make_unique<nn::Sgd>(0.05f, 0.9f),
                           trainerConfig(&repo));
    trainer.loadCheckpointFile("train_quickstart.mirckpt");
    std::cout << "resumed at step " << trainer.globalStep() << "\n";
    const train::TrainReport report =
        trainer.run(train_set, &test_set, /*target_epochs=*/4);
    std::cout << "finished " << report.final_step << " steps, test accuracy "
              << report.final_test_accuracy << ", modeled "
              << report.modeledJoulesPerSample() * 1e9
              << " nJ/sample, serving v" << repo.currentVersion("mlp")
              << "\n";

    // --- 5. serve the freshest version, hot-swap on the next publish -----
    runtime::RuntimeEngine engine;
    serve::InferenceServer server(repo, engine);

    Rng req_rng(3);
    std::vector<std::future<serve::InferenceReply>> futures;
    for (int i = 0; i < 8; ++i) {
        serve::InferenceRequest req;
        req.model = "mlp";
        nn::Tensor x({1, kIn});
        for (int64_t j = 0; j < x.size(); ++j)
            x[j] = static_cast<float>(req_rng.gaussian());
        req.input = std::move(x);
        futures.push_back(server.submit(std::move(req)));
    }
    int served_version = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
        const serve::InferenceReply reply = futures[i].get();
        if (i == 0)
            served_version = reply.version;
    }
    std::cout << "served batch on v" << served_version << "\n";

    // One more publish while the server is live: new requests see the new
    // version, old versions retire after the in-flight work drains.
    const int fresh = trainer.publishNow();
    server.drain();
    repo.retireOldVersions("mlp");
    serve::InferenceRequest req;
    req.model = "mlp";
    nn::Tensor x({1, kIn});
    x.fill(0.5f);
    req.input = std::move(x);
    std::cout << "after hot-publish, requests serve v"
              << server.submit(std::move(req)).get().version << " (expected v"
              << fresh << "), " << repo.liveVersions("mlp")
              << " live version(s)\n";

    // --- 6. numerical fidelity: how many bits did the analog path keep? --
    const obs::Counter *probes =
        obs::MetricsRegistry::global().findCounter("fidelity.probes");
    std::cout << "fidelity probes recorded: "
              << (probes != nullptr ? probes->value() : 0)
              << " (per-layer matching-bits histograms in the report)\n";
    obs::fidelity::writeReportFile("train_quickstart_fidelity.json");
    std::cout << "fidelity report written to train_quickstart_fidelity.json"
                 " (validate with bench/check_fidelity.py)\n";

    server.shutdown();
    std::remove("train_quickstart.mirckpt");
    return 0;
}
