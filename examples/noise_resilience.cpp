/**
 * @file
 * Noise resilience on the functional photonic pipeline: runs modular MVMs
 * under shot/thermal noise and device encoding errors (Sec. VI-E), shows
 * how error rate tracks the SNR margin, and demonstrates redundant-RNS
 * error correction recovering corrupted residues.
 */

#include <cmath>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "photonic/mmvmu.h"
#include "rns/rrns.h"

namespace {

using namespace mirage;

double
errorRate(photonic::PhotonicNoiseConfig noise, Rng &rng)
{
    const photonic::DeviceKit kit;
    photonic::Mmvmu unit(33, 8, 16, kit, 10e9, noise);
    std::vector<rns::Residue> tile(8 * 16);
    for (auto &v : tile)
        v = static_cast<rns::Residue>(rng.uniformInt(0, 32));
    unit.programTile(tile, 8, 16);
    int64_t errors = 0, total = 0;
    std::vector<rns::Residue> x(16);
    for (int t = 0; t < 400; ++t) {
        for (auto &v : x)
            v = static_cast<rns::Residue>(rng.uniformInt(0, 32));
        const auto noisy = unit.mvm(x, &rng);
        const auto ideal = unit.mvmIdeal(x);
        for (size_t r = 0; r < noisy.size(); ++r) {
            ++total;
            errors += (noisy[r] != ideal[r]);
        }
    }
    return static_cast<double>(errors) / static_cast<double>(total);
}

} // namespace

int
main()
{
    Rng rng(7);

    // 1. Shot/thermal noise vs laser SNR margin.
    std::cout << "=== residue error rate vs SNR margin (m = 33, g = 16) "
                 "===\n";
    TablePrinter table({"SNR target", "laser/channel (mW)", "error rate (%)"});
    for (double safety : {0.5, 0.75, 1.0, 1.5, 2.0}) {
        photonic::PhotonicNoiseConfig noise;
        noise.shot_thermal_enabled = true;
        noise.snr_safety = safety;
        const photonic::DeviceKit kit;
        const photonic::LinkBudget lb = photonic::computeLinkBudget(
            kit, 33, 6, 16, 10e9, safety, photonic::LossPolicy::AllThrough);
        table.addRow({formatFixed(safety, 2) + " x m",
                      formatFixed(lb.laser_wall_w * 1e3, 2),
                      formatFixed(100.0 * errorRate(noise, rng), 2)});
    }
    table.print(std::cout);
    std::cout << "(the paper sizes lasers for SNR >= m: at that point the\n"
                 " residue channel is essentially clean)\n\n";

    // 2. Device encoding errors (Eq. 14 regime).
    std::cout << "=== device encoding errors (phase-shifter + MRR) ===\n";
    TablePrinter dev({"bDAC", "eps_mrr", "error rate (%)"});
    for (int bdac : {6, 8, 10}) {
        for (double mrr : {0.001, 0.0003}) {
            photonic::PhotonicNoiseConfig noise;
            noise.eps_ps = std::exp2(-bdac);
            noise.eps_mrr = mrr;
            dev.addRow({std::to_string(bdac), formatSig(mrr, 2),
                        formatFixed(100.0 * errorRate(noise, rng), 2)});
        }
    }
    dev.print(std::cout);
    std::cout << "(Sec. VI-E: raising DAC precision 6 -> 8 bits pushes\n"
                 " encoding errors inside the detection margin)\n\n";

    // 3. RRNS error correction on top of a noisy channel.
    std::cout << "=== redundant RNS: correcting residue faults ===\n";
    const rns::RedundantRns rrns(rns::ModuliSet::special(5), {35, 37});
    int corrected = 0, detected = 0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        const int64_t x = rng.uniformInt(-16000, 16000);
        rns::ResidueVector r = rrns.encode(x);
        // One residue takes a +-1 level detection error (the typical noisy
        // outcome seen above).
        const size_t idx = static_cast<size_t>(rng.uniformInt(0, 4));
        const uint64_t m = rrns.extendedSet().modulus(idx);
        r[idx] = (r[idx] + (rng.bernoulli(0.5) ? 1 : m - 1)) % m;
        const auto res = rrns.decode(r);
        detected += res.error_detected;
        corrected += (res.corrected && res.value == x);
    }
    std::cout << "injected +-1 residue faults: " << trials << "\n"
              << "detected : " << detected << " ("
              << formatFixed(100.0 * detected / trials, 2) << " %)\n"
              << "corrected: " << corrected << " ("
              << formatFixed(100.0 * corrected / trials, 2) << " %)\n"
              << "(two redundant moduli recover single-residue faults —\n"
              << " Sec. VI-E / Demirkiran et al. [17])\n";
    return 0;
}
