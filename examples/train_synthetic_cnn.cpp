/**
 * @file
 * End-to-end DNN training on Mirage numerics: trains the SmallCNN on the
 * synthetic pattern-image task twice — once in FP32, once under Mirage's
 * BFP(4,16)+RNS arithmetic (all three GEMMs per layer quantized, FP32
 * master weights) — and compares learning curves and final accuracy.
 * This is the paper's central claim in miniature (Table I methodology).
 */

#include <iostream>

#include "common/table.h"
#include "models/trainable.h"
#include "nn/data.h"
#include "nn/model.h"
#include "rns/moduli_set.h"

int
main()
{
    using namespace mirage;

    const int classes = 8;
    const nn::Dataset train = nn::makePatternImages(384, classes, 16, 0.5f, 11);
    const nn::Dataset test = nn::makePatternImages(192, classes, 16, 0.5f, 12);
    std::cout << "synthetic pattern images: " << train.size() << " train / "
              << test.size() << " test, " << classes << " classes\n\n";

    auto run = [&](numerics::DataFormat fmt) {
        Rng rng(42); // identical initialization for both runs
        numerics::FormatGemmConfig fc;
        fc.moduli = rns::ModuliSet::special(5);
        nn::FormatBackend backend(fmt, fc);
        auto model = models::makeSmallCnn(classes, &backend, rng);
        nn::Sgd opt(0.02f, 0.9f);
        nn::TrainConfig cfg;
        cfg.epochs = 6;
        cfg.batch_size = 32;
        cfg.lr_schedule = {1.0f, 1.0f, 1.0f, 1.0f, 0.1f, 0.1f};
        return nn::trainClassifier(*model, opt, train, test, cfg);
    };

    std::cout << "training FP32 baseline...\n";
    const nn::TrainResult fp32 = run(numerics::DataFormat::FP32);
    std::cout << "training Mirage BFP(4,16)+RNS {31,32,33}...\n\n";
    const nn::TrainResult mirage = run(numerics::DataFormat::MirageBfpRns);

    TablePrinter table({"epoch", "FP32 loss", "Mirage loss", "FP32 acc",
                        "Mirage acc"});
    for (size_t e = 0; e < fp32.epoch_loss.size(); ++e) {
        table.addRow({std::to_string(e), formatFixed(fp32.epoch_loss[e], 4),
                      formatFixed(mirage.epoch_loss[e], 4),
                      formatFixed(100 * fp32.epoch_train_acc[e], 1),
                      formatFixed(100 * mirage.epoch_train_acc[e], 1)});
    }
    table.print(std::cout);

    std::cout << "\nfinal validation accuracy: FP32 "
              << formatFixed(100 * fp32.final_test_accuracy, 1)
              << " % vs Mirage "
              << formatFixed(100 * mirage.final_test_accuracy, 1)
              << " %  (paper Table I: comparable within noise)\n";
    return 0;
}
