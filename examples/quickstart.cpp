/**
 * @file
 * Quickstart: build a Mirage accelerator with the paper's default
 * configuration, run a GEMM through both the fast emulated numerics and
 * the full phase-domain photonic simulation, verify they agree bit for
 * bit, and print the accelerator's performance/power/area summary.
 */

#include <cmath>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "core/mirage.h"

int
main()
{
    using namespace mirage;

    // 1. The accelerator: moduli {31, 32, 33}, BFP(bm=4, g=16), eight
    //    16x32 RNS-MMVMUs at 10 GHz — the paper's Sec. VI-A design point.
    core::MirageAccelerator acc;
    std::cout << "Mirage accelerator, moduli {31, 32, 33}, BFP(4, 16), "
              << acc.config().num_arrays << " arrays of "
              << acc.config().g << "x" << acc.config().mdpu_rows << "\n\n";

    // 2. A GEMM through Mirage's numerics.
    Rng rng(1);
    const int m = 12, k = 64, n = 8;
    std::vector<float> a(m * k), b(k * n);
    for (auto &v : a)
        v = static_cast<float>(rng.gaussian());
    for (auto &v : b)
        v = static_cast<float>(rng.gaussian());

    const auto c_emulated =
        acc.gemm(a, b, m, k, n, core::ExecutionMode::Emulated);
    const auto c_photonic =
        acc.gemm(a, b, m, k, n, core::ExecutionMode::Photonic);

    int mismatches = 0;
    double max_err = 0.0;
    for (int i = 0; i < m * n; ++i) {
        mismatches += (c_emulated[i] != c_photonic[i]);
        float exact = 0;
        for (int kk = 0; kk < k; ++kk)
            exact += a[i / n * k + kk] * b[kk * n + i % n];
        max_err = std::max(max_err,
                           std::fabs(static_cast<double>(c_emulated[i]) -
                                     exact));
    }
    std::cout << "emulated vs photonic phase-domain simulation: "
              << (mismatches == 0 ? "bit-identical" : "MISMATCH!") << "\n"
              << "max |BFP(4,16) - FP32| element error: "
              << formatSig(max_err, 3)
              << " (bounded quantization error, by design)\n\n";

    // 3. Performance and power summary (Table II / Fig. 9 numbers).
    const arch::MirageSummary s = acc.summary();
    std::cout << "peak throughput : "
              << formatFixed(s.peak_macs_per_s / 1e12, 2) << " TMAC/s\n"
              << "compute power   : "
              << formatFixed(s.power.computeTotal(), 2) << " W (+ SRAM "
              << formatFixed(s.power.sram_w, 2) << " W)\n"
              << "energy per MAC  : " << formatFixed(s.pj_per_mac, 3)
              << " pJ\n"
              << "die area        : " << formatFixed(s.area.stackedMm2(), 1)
              << " mm^2 (3D-stacked)\n\n";

    // 4. What would one AlexNet training step cost?
    const core::PerformanceReport rep =
        acc.estimateTraining(models::alexNet(), 256);
    std::cout << "AlexNet training step (batch 256): "
              << formatSig(rep.time_s * 1e3, 3) << " ms, "
              << formatSig(rep.energy_j, 3) << " J, utilization "
              << formatFixed(100 * rep.avg_spatial_util, 1) << " %\n";
    return 0;
}
