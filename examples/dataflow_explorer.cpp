/**
 * @file
 * Architecture exploration with the analytic models: sweeps array
 * geometry, compares dataflow policies across all seven paper DNNs, and
 * reports where the paper's 16x32 x 8-array design point sits on the
 * utilization/latency trade-off.
 */

#include <iostream>

#include "common/table.h"
#include "core/mirage.h"
#include "core/schedule.h"
#include "models/zoo.h"

int
main()
{
    using namespace mirage;
    const int64_t batch = 64;

    // 1. Training-step estimates for every model at the paper design point.
    {
        core::MirageAccelerator acc;
        std::cout << "=== Mirage (8x 16x32 arrays): training step, batch "
                  << batch << " ===\n";
        TablePrinter table({"model", "step (ms)", "GMACs", "util (%)",
                            "energy (J)", "TMAC/s eff."});
        for (const auto &net : models::allModels()) {
            const core::PerformanceReport r = acc.estimateTraining(net, batch);
            table.addRow({net.name, formatFixed(r.time_s * 1e3, 3),
                          formatFixed(static_cast<double>(r.macs) / 1e9, 1),
                          formatFixed(100 * r.avg_spatial_util, 1),
                          formatSig(r.energy_j, 3),
                          formatFixed(r.macsPerSecond() / 1e12, 2)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // 2. Dataflow policy comparison on ResNet50.
    {
        std::cout << "=== ResNet50: dataflow policies on Mirage ===\n";
        core::MirageAccelerator acc;
        const auto tasks =
            models::trainingTasks(models::resNet50(), batch);
        TablePrinter table({"policy", "step (ms)", "vs DF1"});
        const double base =
            core::scheduleMirage(acc.perfModel(), tasks,
                                 arch::DataflowPolicy::FixedDF1)
                .total_time_s;
        for (arch::DataflowPolicy p :
             {arch::DataflowPolicy::FixedDF1, arch::DataflowPolicy::FixedDF2,
              arch::DataflowPolicy::OPT1, arch::DataflowPolicy::OPT2}) {
            const double t =
                core::scheduleMirage(acc.perfModel(), tasks, p).total_time_s;
            table.addRow({arch::toString(p), formatFixed(t * 1e3, 3),
                          formatFixed(t / base, 3)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // 3. Geometry sweep: where does the paper's design point sit?
    {
        std::cout << "=== geometry sweep (ResNet18 step latency, ms) ===\n";
        TablePrinter table({"rows\\arrays", "2", "4", "8", "16", "32"});
        for (int rows : {8, 16, 32, 64, 128}) {
            std::vector<std::string> row = {std::to_string(rows)};
            for (int arrays : {2, 4, 8, 16, 32}) {
                arch::MirageConfig cfg;
                cfg.mdpu_rows = rows;
                cfg.num_arrays = arrays;
                core::MirageAccelerator acc(cfg);
                const auto r =
                    acc.estimateTraining(models::resNet18(), batch);
                row.push_back(formatFixed(r.time_s * 1e3, 2));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        std::cout << "(paper design point: rows=32, arrays=8 — past it,\n"
                     " returns diminish as utilization collapses; Fig. 6)\n";
    }
    return 0;
}
