/**
 * @file
 * Tests for the baseline data-format emulations: bfloat16 rounding, HFP8
 * mini-float quantization, integer quantizers, and the format-dispatched
 * GEMM used by the Table I accuracy harness.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "numerics/formats.h"
#include "numerics/quantized_gemm.h"
#include "test_support.h"

namespace mirage {
namespace numerics {
namespace {

TEST(Bfloat16, ExactForRepresentableValues)
{
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f, 1.5f})
        EXPECT_TRUE(mirage::test::ulpClose(toBfloat16(v), v, 0)) << v;
}

TEST(Bfloat16, RoundsMantissaTo8Bits)
{
    // 1 + 2^-9 is not representable in bf16 (7 explicit mantissa bits);
    // it must round to 1.0.
    const float v = 1.0f + std::ldexp(1.0f, -9);
    EXPECT_EQ(toBfloat16(v), 1.0f);
    // 1 + 2^-7 is representable.
    const float w = 1.0f + std::ldexp(1.0f, -7);
    EXPECT_EQ(toBfloat16(w), w);
}

TEST(Bfloat16, RelativeErrorBounded)
{
    Rng rng(3);
    for (int t = 0; t < 1000; ++t) {
        const float v = static_cast<float>(rng.gaussian(0, 100));
        const float q = toBfloat16(v);
        if (v != 0.0f) {
            EXPECT_TRUE(mirage::test::relClose(q, v, 1.0 / 128.0)) << v;
        }
    }
}

TEST(MiniFloat, E4M3RepresentableValues)
{
    // E4M3 (FN variant): representable magnitudes include 1.0, 1.125 and
    // the 448 maximum normal.
    EXPECT_EQ(toHfp8Forward(1.0f), 1.0f);
    EXPECT_EQ(toHfp8Forward(1.125f), 1.125f);
    EXPECT_EQ(toHfp8Forward(448.0f), 448.0f);
    // IEEE-style 1-4-3 (all-ones exponent reserved) tops out at 240.
    EXPECT_EQ(toMiniFloat(448.0f, 4, 3, false), 240.0f);
}

TEST(MiniFloat, E4M3Saturates)
{
    EXPECT_EQ(toHfp8Forward(1e6f), 448.0f);
    EXPECT_EQ(toHfp8Forward(-1e6f), -448.0f);
}

TEST(MiniFloat, E5M2DynamicRangeWiderThanE4M3)
{
    // E5M2 max normal = 57344; values above E4M3 max survive in E5M2.
    EXPECT_EQ(toMiniFloat(49152.0f, 5, 2), 49152.0f);
    EXPECT_EQ(toMiniFloat(1e9f, 5, 2), 57344.0f);
}

TEST(MiniFloat, SubnormalsFlushGracefully)
{
    // Below the smallest subnormal the value rounds to zero, not garbage.
    const float tiny = 1e-12f;
    const float q = toMiniFloat(tiny, 4, 3);
    EXPECT_GE(q, 0.0f);
    EXPECT_LT(q, 1e-8f);
}

TEST(MiniFloat, RoundTripIdempotent)
{
    Rng rng(4);
    for (int t = 0; t < 500; ++t) {
        const float v = static_cast<float>(rng.gaussian(0, 10));
        const float q = toMiniFloat(v, 4, 3);
        EXPECT_EQ(toMiniFloat(q, 4, 3), q);
    }
}

TEST(IntQuant, ScaleAndSaturation)
{
    std::vector<float> vals = {-2.0f, 1.0f, 0.5f};
    const float scale = intQuantScale(vals, 8);
    EXPECT_FLOAT_EQ(scale, 2.0f / 127.0f);
    EXPECT_EQ(intQuantize(2.0f, scale, 8), 127);
    EXPECT_EQ(intQuantize(-2.0f, scale, 8), -127);
    EXPECT_EQ(intQuantize(100.0f, scale, 8), 127); // saturate
}

TEST(IntQuant, ZeroTensor)
{
    std::vector<float> vals(4, 0.0f);
    EXPECT_FLOAT_EQ(intQuantScale(vals, 8), 1.0f);
    EXPECT_EQ(intQuantize(0.0f, 1.0f, 8), 0);
}

TEST(IntQuant, Int12FinerThanInt8)
{
    Rng rng(5);
    std::vector<float> vals(256);
    for (auto &v : vals)
        v = static_cast<float>(rng.gaussian(0, 1));
    const float s8 = intQuantScale(vals, 8);
    const float s12 = intQuantScale(vals, 12);
    double err8 = 0, err12 = 0;
    for (float v : vals) {
        err8 += std::fabs(intDequantize(intQuantize(v, s8, 8), s8) - v);
        err12 += std::fabs(intDequantize(intQuantize(v, s12, 12), s12) - v);
    }
    EXPECT_LT(err12, err8 / 8.0); // ~16x finer grid
}

TEST(FormatNames, MatchPaperTables)
{
    EXPECT_EQ(toString(DataFormat::MirageBfpRns), "Mirage");
    EXPECT_EQ(toString(DataFormat::BFLOAT16), "bfloat16");
    EXPECT_EQ(toString(DataFormat::FMAC), "FMAC");
    EXPECT_EQ(allFormats().size(), 7u);
}

class FormatGemmTest : public testing::TestWithParam<DataFormat>
{
  protected:
    void
    SetUp() override
    {
        rng_ = std::make_unique<Rng>(99);
        a_.resize(static_cast<size_t>(m_) * k_);
        b_.resize(static_cast<size_t>(k_) * n_);
        for (auto &v : a_)
            v = static_cast<float>(rng_->gaussian(0, 1));
        for (auto &v : b_)
            v = static_cast<float>(rng_->gaussian(0, 1));
        ref_ = mirage::test::referenceGemm(a_, b_, m_, k_, n_);
    }

    const int m_ = 6, k_ = 32, n_ = 4;
    std::unique_ptr<Rng> rng_;
    std::vector<float> a_, b_, ref_;
};

TEST_P(FormatGemmTest, ApproximatesFp32Reference)
{
    const DataFormat fmt = GetParam();
    FormatGemmConfig cfg;
    cfg.moduli = mirage::test::paperModuli();
    GemmCall call;
    call.a = a_;
    call.b = b_;
    call.m = m_;
    call.k = k_;
    call.n = n_;
    call.rng = rng_.get();
    const auto c = formatGemm(fmt, call, cfg);
    ASSERT_EQ(c.size(), ref_.size());

    // Tolerances reflect each format's precision; low-mantissa formats get
    // a relative component (BFP truncation biases large sums toward zero).
    double tol_abs = 0.0, tol_rel = 0.0;
    switch (fmt) {
      case DataFormat::FP32: tol_abs = 1e-6; break;
      case DataFormat::BFLOAT16: tol_abs = 0.15; break;
      case DataFormat::HFP8: tol_abs = 0.5; tol_rel = 0.05; break;
      case DataFormat::INT12: tol_abs = 0.05; break;
      case DataFormat::INT8: tol_abs = 0.3; break;
      case DataFormat::FMAC: tol_abs = 1.0; tol_rel = 0.25; break;
      case DataFormat::MirageBfpRns: tol_abs = 1.0; tol_rel = 0.25; break;
    }
    for (size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c[i], ref_[i], tol_abs + tol_rel * std::fabs(ref_[i]))
            << toString(fmt) << " @" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatGemmTest,
    testing::Values(DataFormat::FP32, DataFormat::BFLOAT16, DataFormat::HFP8,
                    DataFormat::INT12, DataFormat::INT8, DataFormat::FMAC,
                    DataFormat::MirageBfpRns),
    [](const testing::TestParamInfo<DataFormat> &info) {
        return toString(info.param);
    });

TEST(FormatGemm, Hfp8UsesWiderRangeForGradients)
{
    // A gradient tensor with magnitude above E4M3's max (448) must survive
    // when flagged as a gradient (E5M2 path).
    std::vector<float> a = {1000.0f};
    std::vector<float> b = {1.0f};
    FormatGemmConfig cfg;
    GemmCall call;
    call.a = a;
    call.b = b;
    call.m = 1;
    call.k = 1;
    call.n = 1;

    call.a_is_grad = false;
    const auto saturated = formatGemm(DataFormat::HFP8, call, cfg);
    EXPECT_FLOAT_EQ(saturated[0], 448.0f);

    call.a_is_grad = true;
    const auto wide = formatGemm(DataFormat::HFP8, call, cfg);
    EXPECT_FLOAT_EQ(wide[0], 1024.0f); // 1000 rounds to 1024 in E5M2
}

TEST(FormatGemm, MirageMatchesPlainBfpGemm)
{
    Rng rng(7);
    std::vector<float> a(8 * 32), b(32 * 3);
    for (auto &v : a)
        v = static_cast<float>(rng.gaussian(0, 1));
    for (auto &v : b)
        v = static_cast<float>(rng.gaussian(0, 1));

    FormatGemmConfig cfg_rns;
    cfg_rns.moduli = mirage::test::paperModuli();
    FormatGemmConfig cfg_plain; // no moduli: plain integer path

    GemmCall call;
    call.a = a;
    call.b = b;
    call.m = 8;
    call.k = 32;
    call.n = 3;

    const auto c1 = formatGemm(DataFormat::MirageBfpRns, call, cfg_rns);
    const auto c2 = formatGemm(DataFormat::MirageBfpRns, call, cfg_plain);
    for (size_t i = 0; i < c1.size(); ++i)
        EXPECT_EQ(c1[i], c2[i]) << i;
}

} // namespace
} // namespace numerics
} // namespace mirage
