/**
 * @file
 * Thread-scaling regression test for parallelFor dispatch. The broadcast
 * loop-slot dispatcher must never make a compute-bound loop *slower* with
 * more workers — the pre-fix dispatcher did exactly that (per-call helper
 * tasks funnelled through the mutex-guarded queue, std::function
 * allocation per helper, false sharing on the claim counters), showing
 * multi-thread slowdowns of 0.7-0.8x. CI machines range from 1 to a few
 * cores, so the assertion is a floor against regression, not a parallel
 * speedup target: with W workers the wall time at best-of-N must not
 * exceed the 1-thread wall time by more than a generous tolerance. On a
 * single-core host every thread count degrades to time-slicing the same
 * work, so the floor still holds; on multi-core hosts real speedup only
 * adds margin.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <vector>

#include "runtime/thread_pool.h"

namespace {

using namespace mirage;

/** ~200 fp ops per index, no allocation, no shared writes: pure compute. */
double
computeBoundPass(std::vector<double> &out, int64_t grain)
{
    runtime::parallelFor(
        static_cast<int64_t>(out.size()), grain, [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
                double x = 1.0 + static_cast<double>(i % 97) * 1e-3;
                for (int r = 0; r < 100; ++r)
                    x = x * 1.0000001 + 1e-9;
                out[static_cast<size_t>(i)] = x;
            }
        });
    double sum = 0.0;
    for (double v : out)
        sum += v;
    return sum;
}

/** Best-of-reps wall time (seconds) of one pass at `threads` workers. */
double
bestWallTime(int threads, std::vector<double> &out, int64_t grain, int reps)
{
    runtime::ThreadPool::setGlobalThreads(threads);
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        computeBoundPass(out, grain);
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

TEST(ThreadScaling, MoreWorkersNeverSlowDownComputeBoundParallelFor)
{
    const int64_t n = 1 << 16, grain = 256; // 256 blocks per pass
    std::vector<double> out(static_cast<size_t>(n));

    // Warm up the pool and the pages before timing anything.
    bestWallTime(8, out, grain, 1);

    const int reps = 5;
    const double t1 = bestWallTime(1, out, grain, reps);
    const double t4 = bestWallTime(4, out, grain, reps);
    const double t8 = bestWallTime(8, out, grain, reps);
    runtime::ThreadPool::setGlobalThreads(0);

    // Floor, not a speedup target: tolerate scheduler noise and single-core
    // CI hosts, but fail on the dispatch-serialization signature (multi-
    // thread runs materially slower than serial).
    const double tolerance = 1.4;
    EXPECT_LE(t4, t1 * tolerance)
        << "4-thread best " << t4 << "s vs 1-thread best " << t1 << "s";
    EXPECT_LE(t8, t1 * tolerance)
        << "8-thread best " << t8 << "s vs 1-thread best " << t1 << "s";
}

TEST(ThreadScaling, ResultsAreIdenticalAcrossThreadCounts)
{
    // The timing loop doubles as a determinism check: the output vector
    // must be byte-identical at every thread count.
    const int64_t n = 1 << 14, grain = 64;
    std::vector<double> serial(static_cast<size_t>(n));
    std::vector<double> wide(static_cast<size_t>(n));
    runtime::ThreadPool::setGlobalThreads(1);
    computeBoundPass(serial, grain);
    runtime::ThreadPool::setGlobalThreads(8);
    computeBoundPass(wide, grain);
    runtime::ThreadPool::setGlobalThreads(0);
    EXPECT_EQ(serial, wide);
}

} // namespace
