/**
 * @file
 * Tests for BFP encoding and the BFP GEMM: shared-exponent selection,
 * rounding modes, quantization error bounds, and the key transparency
 * property — routing chunk dot products through the RNS domain changes
 * nothing (paper Sec. III / V-A).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bfp/bfp.h"
#include "bfp/bfp_gemm.h"
#include "common/rng.h"
#include "test_support.h"

namespace mirage {
namespace bfp {
namespace {

using BfpSeeded = mirage::test::SeededTest;

TEST(BfpBlock, SharedExponentIsMaxExponent)
{
    const BfpConfig cfg{4, 8, Rounding::Nearest};
    std::vector<float> vals = {0.5f, -3.0f, 0.25f, 1.5f};
    const BfpBlock block = encodeBlock(vals, cfg);
    // max |v| = 3.0 -> exponent 2 (3.0 < 2^2).
    EXPECT_EQ(block.exponent, 2);
}

TEST(BfpBlock, AllZeroGroup)
{
    const BfpConfig cfg{4, 8, Rounding::Truncate};
    std::vector<float> vals(8, 0.0f);
    const BfpBlock block = encodeBlock(vals, cfg);
    for (auto m : block.mantissas)
        EXPECT_EQ(m, 0);
    const auto decoded = decodeBlock(block, cfg);
    for (float v : decoded)
        EXPECT_EQ(v, 0.0f);
}

TEST(BfpBlock, ExactValuesSurviveRoundTrip)
{
    // Values already on the BFP grid must be unchanged by encode/decode.
    // Max |v| = 1.0 pins the shared exponent to 1, so the grid is 2^(1-4).
    const BfpConfig cfg{4, 4, Rounding::Nearest};
    std::vector<float> vals = {1.0f, -0.75f, 0.5f, 0.875f}; // /8 grid at e=1
    const BfpBlock block = encodeBlock(vals, cfg);
    const auto decoded = decodeBlock(block, cfg);
    for (size_t i = 0; i < vals.size(); ++i)
        EXPECT_EQ(decoded[i], vals[i]) << i;
}

TEST_F(BfpSeeded, MantissaRangeRespected)
{
    const BfpConfig cfg{4, 16, Rounding::Nearest};
    for (int t = 0; t < 200; ++t) {
        const auto vals = mirage::test::gaussianVector(rng, 16, 0, 10);
        const BfpBlock block = encodeBlock(vals, cfg);
        // (bm+1)-bit two's complement: [-16, 15] for bm = 4.
        for (auto q : block.mantissas) {
            EXPECT_LE(q, 15);
            EXPECT_GE(q, -16);
        }
    }
}

TEST_F(BfpSeeded, QuantizationErrorBound)
{
    // |error| <= 2^(e - bm) per element: one mantissa ULP for nearest
    // rounding is half that, truncation a full ULP.
    const BfpConfig cfg{4, 16, Rounding::Truncate};
    for (int t = 0; t < 100; ++t) {
        const auto vals = mirage::test::gaussianVector(rng, 16, 0, 2);
        const BfpBlock block = encodeBlock(vals, cfg);
        const double ulp = std::ldexp(1.0, block.exponent - cfg.bm);
        for (size_t i = 0; i < vals.size(); ++i) {
            const double err = std::fabs(block.decode(i, cfg.bm) - vals[i]);
            EXPECT_LE(err, ulp * (1.0 + 1e-9)) << "i=" << i;
        }
    }
}

TEST(BfpBlock, TruncationRoundsTowardMinusInfinity)
{
    // Two's-complement LSB truncation == floor: decoded values never
    // exceed the originals, for either sign.
    const BfpConfig cfg{4, 4, Rounding::Truncate};
    std::vector<float> vals = {0.99f, -0.99f, 0.33f, -0.33f};
    const BfpBlock block = encodeBlock(vals, cfg);
    for (size_t i = 0; i < vals.size(); ++i)
        EXPECT_LE(block.decode(i, cfg.bm), vals[i]);
    // Positive values shrink; negative values grow in magnitude.
    EXPECT_LE(std::fabs(block.decode(0, cfg.bm)), 0.99f);
    EXPECT_GE(std::fabs(block.decode(1, cfg.bm)), 0.99f);
}

TEST_F(BfpSeeded, StochasticRoundingIsUnbiased)
{
    const float v = 0.53f; // deliberately off-grid
    double sum = 0;
    const int n = 20000;
    for (int t = 0; t < n; ++t) {
        std::vector<float> vals = {v, 1.0f}; // second value pins exponent
        BfpConfig cfg2{4, 2, Rounding::Stochastic};
        const BfpBlock block = encodeBlock(vals, cfg2, &rng);
        sum += block.decode(0, cfg2.bm);
    }
    EXPECT_NEAR(sum / n, v, 0.002);
}

TEST(BfpBlock, NearestMayRoundAwayButSaturates)
{
    // 0.97 at shared exponent 0 scales to 15.52 -> nearest would be 16,
    // which exceeds bm=4 mantissa range and must saturate to 15.
    const BfpConfig cfg{4, 2, Rounding::Nearest};
    std::vector<float> vals = {0.97f, 0.999f};
    const BfpBlock block = encodeBlock(vals, cfg);
    EXPECT_EQ(block.mantissas[0], 15);
    EXPECT_EQ(block.mantissas[1], 15);
}

TEST(BfpGemmTest, MatchesFp32OnGridValues)
{
    // Inputs representable exactly in BFP: GEMM must be exact.
    const int m = 3, k = 8, n = 2;
    std::vector<float> a(m * k), b(k * n);
    for (int i = 0; i < m * k; ++i)
        a[i] = static_cast<float>((i % 7) - 3) * 0.125f;
    for (int i = 0; i < k * n; ++i)
        b[i] = static_cast<float>((i % 5) - 2) * 0.25f;

    BfpGemmOptions opts;
    opts.config = {4, 4, Rounding::Nearest};
    const auto c = bfpGemm(a, b, m, k, n, opts);
    const auto ref = mirage::test::referenceGemm(a, b, m, k, n);
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_NEAR(c[i], ref[i], 1e-6) << i;
}

TEST_F(BfpSeeded, RnsPathIsTransparent)
{
    // The paper's core numerical claim: with Eq. (13) satisfied, computing
    // the chunk dot products in the RNS domain is bit-identical to the
    // plain integer path.
    const int m = 6, k = 40, n = 5; // k not a multiple of g: tail groups
    const auto a = mirage::test::gaussianVector(rng, m * k);
    const auto b = mirage::test::gaussianVector(rng, k * n);

    BfpGemmOptions plain;
    plain.config = {4, 16, Rounding::Truncate};
    BfpGemmOptions with_rns = plain;
    with_rns.moduli = mirage::test::paperModuli();

    const auto c_plain = bfpGemm(a, b, m, k, n, plain);
    const auto c_rns = bfpGemm(a, b, m, k, n, with_rns);
    ASSERT_EQ(c_plain.size(), c_rns.size());
    for (size_t i = 0; i < c_plain.size(); ++i)
        EXPECT_EQ(c_plain[i], c_rns[i]) << i; // bit-exact
}

TEST_F(BfpSeeded, RnsTransparencyAcrossConfigs)
{
    struct Case { int bm; int g; int k_set; };
    for (const Case &c : {Case{3, 16, 4}, Case{4, 16, 5}, Case{5, 64, 6}}) {
        const int m = 4, k = 2 * c.g + 3, n = 3;
        const auto a = mirage::test::gaussianVector(rng, m * k, 0, 4);
        const auto b = mirage::test::gaussianVector(rng, k * n, 0, 0.5);
        BfpGemmOptions plain;
        plain.config = {c.bm, c.g, Rounding::Truncate};
        BfpGemmOptions with_rns = plain;
        with_rns.moduli = rns::ModuliSet::special(c.k_set);
        const auto c_plain = bfpGemm(a, b, m, k, n, plain);
        const auto c_rns = bfpGemm(a, b, m, k, n, with_rns);
        for (size_t i = 0; i < c_plain.size(); ++i)
            ASSERT_EQ(c_plain[i], c_rns[i]) << "bm=" << c.bm << " i=" << i;
    }
}

TEST_F(BfpSeeded, QuantizationErrorShrinksWithMantissaBits)
{
    const int m = 8, k = 64, n = 8;
    const auto a = mirage::test::gaussianVector(rng, m * k);
    const auto b = mirage::test::gaussianVector(rng, k * n);
    const auto ref = mirage::test::referenceGemm(a, b, m, k, n);

    double prev_err = 1e30;
    for (int bm : {2, 4, 6, 8}) {
        BfpGemmOptions opts;
        opts.config = {bm, 16, Rounding::Nearest};
        const auto c = bfpGemm(a, b, m, k, n, opts);
        double err = 0;
        for (size_t i = 0; i < c.size(); ++i)
            err += std::fabs(c[i] - ref[i]);
        EXPECT_LT(err, prev_err) << "bm=" << bm;
        prev_err = err;
    }
}

TEST(BfpGemmDeath, RejectsModuliTooSmallForConfig)
{
    std::vector<float> a(16, 1.0f), b(16, 1.0f);
    BfpGemmOptions opts;
    opts.config = {5, 16, Rounding::Truncate}; // needs k >= 6
    opts.moduli = mirage::test::paperModuli();
    EXPECT_EXIT(bfpGemm(a, b, 1, 16, 1, opts), testing::ExitedWithCode(1),
                "Eq. 13");
}

TEST(BfpConfigTest, DotProductBits)
{
    // Eq. (13): 2*(bm+1) + log2(g) - 1.
    EXPECT_EQ((BfpConfig{4, 16, Rounding::Truncate}).dotProductBits(), 13);
    EXPECT_EQ((BfpConfig{5, 64, Rounding::Truncate}).dotProductBits(), 17);
    EXPECT_EQ((BfpConfig{3, 16, Rounding::Truncate}).dotProductBits(), 11);
}

TEST_F(BfpSeeded, FakeQuantizeMatchesEncodeDecode)
{
    const BfpConfig cfg{4, 16, Rounding::Truncate};
    std::vector<float> vals = mirage::test::gaussianVector(rng, 50, 0, 3);
    std::vector<float> copy = vals;
    fakeQuantize(std::span<float>(copy), cfg);
    // Re-quantizing is idempotent.
    std::vector<float> twice = copy;
    fakeQuantize(std::span<float>(twice), cfg);
    for (size_t i = 0; i < copy.size(); ++i)
        EXPECT_EQ(copy[i], twice[i]) << i;
}

} // namespace
} // namespace bfp
} // namespace mirage
