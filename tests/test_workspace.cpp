/**
 * @file
 * Workspace arena unit tests: alignment, scope rewind + reuse, growth and
 * consolidation behaviour, and per-thread scratch isolation under the
 * global pool (the TSan CI job runs this suite with real worker threads).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/workspace.h"
#include "runtime/thread_pool.h"

namespace mirage {
namespace {

TEST(Workspace, AllocationsAreMaxAligned)
{
    Workspace ws;
    // Deliberately odd sizes so a naive bump would misalign the successor.
    const std::span<char> c = ws.alloc<char>(3);
    const std::span<double> d = ws.alloc<double>(1);
    const std::span<char> c2 = ws.alloc<char>(1);
    const std::span<int64_t> q = ws.alloc<int64_t>(5);
    for (const void *p : {static_cast<const void *>(c.data()),
                          static_cast<const void *>(d.data()),
                          static_cast<const void *>(c2.data()),
                          static_cast<const void *>(q.data())}) {
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Workspace::kAlignment, 0u);
    }
}

TEST(Workspace, ScopeRewindsAndReusesMemory)
{
    Workspace ws;
    float *first = nullptr;
    {
        Workspace::Scope scope(ws);
        first = ws.alloc<float>(1024).data();
        EXPECT_GE(ws.bytesInUse(), 1024 * sizeof(float));
    }
    EXPECT_EQ(ws.bytesInUse(), 0u);
    const uint64_t growth = ws.growthCount();
    {
        Workspace::Scope scope(ws);
        // Same size after rewind must land on the same storage without
        // touching the heap.
        EXPECT_EQ(ws.alloc<float>(1024).data(), first);
    }
    EXPECT_EQ(ws.growthCount(), growth);
}

TEST(Workspace, NestedScopesReleaseInStackOrder)
{
    Workspace ws;
    Workspace::Scope outer(ws);
    ws.alloc<int32_t>(10);
    const size_t outer_used = ws.bytesInUse();
    int32_t *inner_ptr = nullptr;
    {
        Workspace::Scope inner(ws);
        inner_ptr = ws.alloc<int32_t>(20).data();
        EXPECT_GT(ws.bytesInUse(), outer_used);
    }
    EXPECT_EQ(ws.bytesInUse(), outer_used);
    {
        Workspace::Scope inner(ws);
        EXPECT_EQ(ws.alloc<int32_t>(20).data(), inner_ptr);
    }
}

TEST(Workspace, GrowthConsolidatesIntoOneBlockAndStops)
{
    Workspace ws;
    // Cold pass: force several block chains.
    {
        Workspace::Scope scope(ws);
        for (int i = 0; i < 8; ++i)
            ws.alloc<char>(40 * 1024);
    }
    const size_t capacity = ws.capacityBytes();
    EXPECT_GE(capacity, size_t{8} * 40 * 1024);
    // Warm passes of the same demand must not grow again.
    const uint64_t growth = ws.growthCount();
    for (int pass = 0; pass < 4; ++pass) {
        Workspace::Scope scope(ws);
        for (int i = 0; i < 8; ++i) {
            std::span<char> s = ws.alloc<char>(40 * 1024);
            std::memset(s.data(), pass, s.size());
        }
    }
    EXPECT_EQ(ws.growthCount(), growth);
    EXPECT_EQ(ws.capacityBytes(), capacity);
}

TEST(Workspace, ZeroedReturnsZeroes)
{
    Workspace ws;
    {
        Workspace::Scope scope(ws);
        std::span<uint64_t> s = ws.alloc<uint64_t>(256);
        std::memset(s.data(), 0xab, s.size_bytes());
    }
    Workspace::Scope scope(ws);
    for (uint64_t v : ws.zeroed<uint64_t>(256))
        EXPECT_EQ(v, 0u);
}

TEST(Workspace, ZeroSizedAllocIsEmpty)
{
    Workspace ws;
    EXPECT_TRUE(ws.alloc<float>(0).empty());
    EXPECT_EQ(ws.bytesInUse(), 0u);
}

TEST(Workspace, ResetKeepsCapacity)
{
    Workspace ws(1024);
    const size_t cap = ws.capacityBytes();
    ws.alloc<double>(16);
    ws.reset();
    EXPECT_EQ(ws.bytesInUse(), 0u);
    EXPECT_EQ(ws.capacityBytes(), cap);
}

TEST(Workspace, ThreadWorkspacesAreIsolated)
{
    // Every block of this parallelFor writes a distinct pattern into its
    // executing thread's arena and verifies it after a second allocation
    // round. Races between threads sharing one arena (the bug this guards
    // against) would corrupt the patterns and trip TSan.
    runtime::ThreadPool::setGlobalThreads(4);
    std::atomic<int> mismatches{0};
    runtime::parallelFor(64, 1, [&](int64_t b0, int64_t) {
        Workspace &ws = threadWorkspace();
        Workspace::Scope scope(ws);
        std::span<int64_t> mine = ws.alloc<int64_t>(512);
        for (size_t i = 0; i < mine.size(); ++i)
            mine[i] = b0 * 1000 + static_cast<int64_t>(i);
        // A second allocation from the same arena must not disturb the
        // first one.
        std::span<int64_t> other = ws.alloc<int64_t>(512);
        for (size_t i = 0; i < other.size(); ++i)
            other[i] = -1;
        for (size_t i = 0; i < mine.size(); ++i)
            if (mine[i] != b0 * 1000 + static_cast<int64_t>(i))
                mismatches.fetch_add(1, std::memory_order_relaxed);
    });
    runtime::ThreadPool::setGlobalThreads(0);
    EXPECT_EQ(mismatches.load(), 0);
}

} // namespace
} // namespace mirage
