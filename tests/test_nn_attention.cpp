/**
 * @file
 * Dedicated tests for multi-head self-attention: output shapes, softmax row
 * structure, causal masking (position t must be unaffected by positions
 * > t, and gradients must not flow backward in time), determinism, and
 * central-difference gradient checks in both masked and unmasked modes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.h"
#include "nn/gemm_backend.h"
#include "test_support.h"

namespace mirage {
namespace nn {
namespace {

using mirage::test::gradCheck;
using mirage::test::randomTensor;

FormatBackend &
fp32Backend()
{
    static FormatBackend backend(numerics::DataFormat::FP32);
    return backend;
}

TEST(Attention, ForwardShapePreserved)
{
    Rng rng(1);
    for (const auto &[batch, seq, dim, heads] :
         {std::tuple{1, 1, 4, 1}, std::tuple{2, 3, 4, 2},
          std::tuple{3, 5, 8, 4}, std::tuple{1, 7, 6, 3}}) {
        MultiHeadSelfAttention layer(dim, heads, &fp32Backend(), rng);
        const Tensor x = randomTensor({batch, seq, dim}, 10 + seq);
        const Tensor y = layer.forward(x, true);
        ASSERT_EQ(y.rank(), 3);
        EXPECT_EQ(y.dim(0), batch);
        EXPECT_EQ(y.dim(1), seq);
        EXPECT_EQ(y.dim(2), dim);
    }
}

TEST(Attention, ForwardIsDeterministic)
{
    Rng rng(2);
    MultiHeadSelfAttention layer(4, 2, &fp32Backend(), rng);
    const Tensor x = randomTensor({2, 3, 4}, 20);
    const Tensor y1 = layer.forward(x, true);
    const Tensor y2 = layer.forward(x, true);
    ASSERT_EQ(y1.size(), y2.size());
    for (int64_t i = 0; i < y1.size(); ++i)
        EXPECT_EQ(y1[i], y2[i]) << i;
}

TEST(Attention, SingleTokenSequenceIsPureProjection)
{
    // With T = 1 the softmax row is the scalar 1, so attention reduces to
    // x * Wv^T * Wo^T regardless of Q/K and regardless of masking.
    Rng rng(3);
    MultiHeadSelfAttention plain(4, 2, &fp32Backend(), rng);
    Rng rng2(3);
    MultiHeadSelfAttention causal(4, 2, &fp32Backend(), rng2,
                                  /*causal=*/true);
    const Tensor x = randomTensor({2, 1, 4}, 30);
    const Tensor y_plain = plain.forward(x, true);
    const Tensor y_causal = causal.forward(x, true);
    ASSERT_EQ(y_plain.size(), y_causal.size());
    for (int64_t i = 0; i < y_plain.size(); ++i)
        EXPECT_EQ(y_plain[i], y_causal[i]) << i;
}

TEST(Attention, CausalPrefixInvariance)
{
    // The defining property of causal masking: output at position t depends
    // only on positions <= t. Changing the suffix must not change the
    // prefix outputs; in the unmasked layer it must (sanity check).
    Rng rng(4);
    const int batch = 1, seq = 5, dim = 6, heads = 3, prefix = 2;
    MultiHeadSelfAttention causal(dim, heads, &fp32Backend(), rng,
                                  /*causal=*/true);

    Tensor x = randomTensor({batch, seq, dim}, 40);
    const Tensor y_base = causal.forward(x, true);

    Tensor x_mut = x;
    for (int t = prefix; t < seq; ++t)
        for (int d = 0; d < dim; ++d)
            x_mut[static_cast<int64_t>(t) * dim + d] += 1.5f;

    const Tensor y_mut = causal.forward(x_mut, true);
    for (int t = 0; t < prefix; ++t)
        for (int d = 0; d < dim; ++d) {
            const int64_t i = static_cast<int64_t>(t) * dim + d;
            EXPECT_EQ(y_base[i], y_mut[i]) << "t=" << t << " d=" << d;
        }

    Rng rng2(4);
    MultiHeadSelfAttention plain(dim, heads, &fp32Backend(), rng2);
    const Tensor yp_base = plain.forward(x, true);
    const Tensor yp_mut = plain.forward(x_mut, true);
    double diff = 0.0;
    for (int t = 0; t < prefix; ++t)
        for (int d = 0; d < dim; ++d) {
            const int64_t i = static_cast<int64_t>(t) * dim + d;
            diff += std::fabs(yp_base[i] - yp_mut[i]);
        }
    EXPECT_GT(diff, 1e-4); // unmasked attention must see the suffix
}

TEST(Attention, CausalGradientDoesNotFlowBackwardInTime)
{
    // A loss that probes only the first output position must produce zero
    // input gradient at every later position when masking is on.
    Rng rng(5);
    const int seq = 4, dim = 4, heads = 2;
    MultiHeadSelfAttention causal(dim, heads, &fp32Backend(), rng,
                                  /*causal=*/true);
    const Tensor x = randomTensor({1, seq, dim}, 50);
    causal.forward(x, true);

    Tensor grad_out = Tensor::zeros({1, seq, dim});
    for (int d = 0; d < dim; ++d)
        grad_out[d] = 1.0f; // position 0 only
    const Tensor dx = causal.backward(grad_out);
    for (int t = 1; t < seq; ++t)
        for (int d = 0; d < dim; ++d)
            EXPECT_EQ(dx[static_cast<int64_t>(t) * dim + d], 0.0f)
                << "t=" << t << " d=" << d;
}

TEST(Attention, GradCheckUnmasked)
{
    Rng rng(6);
    MultiHeadSelfAttention layer(4, 2, &fp32Backend(), rng);
    gradCheck(layer, randomTensor({2, 3, 4}, 60), 4e-2);
}

TEST(Attention, GradCheckCausal)
{
    Rng rng(7);
    MultiHeadSelfAttention layer(4, 2, &fp32Backend(), rng, /*causal=*/true);
    gradCheck(layer, randomTensor({2, 3, 4}, 70), 4e-2);
}

TEST(Attention, GradCheckSingleHead)
{
    Rng rng(8);
    MultiHeadSelfAttention layer(6, 1, &fp32Backend(), rng);
    gradCheck(layer, randomTensor({1, 4, 6}, 80), 4e-2);
}

TEST(AttentionDeath, RejectsIndivisibleHeads)
{
    Rng rng(9);
    EXPECT_EXIT(MultiHeadSelfAttention(5, 2, &fp32Backend(), rng),
                testing::ExitedWithCode(1), "divisible");
}

} // namespace
} // namespace nn
} // namespace mirage
