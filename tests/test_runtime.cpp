/**
 * @file
 * Runtime subsystem tests: ThreadPool / parallelFor semantics, Rng::split
 * stream independence, RuntimeEngine job futures, GEMM batching and row
 * sharding, queue backpressure, and the engine's bit-identical-to-serial
 * guarantee for GEMM and inference jobs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/mirage.h"
#include "fault/injection.h"
#include "models/zoo.h"
#include "obs/metrics.h"
#include "runtime/engine.h"
#include "runtime/thread_pool.h"
#include "test_support.h"

namespace {

using namespace mirage;

/** Restores the global pool to the machine default when a test exits. */
struct GlobalThreadsGuard
{
    explicit GlobalThreadsGuard(int threads)
    {
        runtime::ThreadPool::setGlobalThreads(threads);
    }
    ~GlobalThreadsGuard() { runtime::ThreadPool::setGlobalThreads(0); }
};

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, SubmitReturnsFutureResult)
{
    runtime::ThreadPool pool(4);
    std::future<int> f = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    runtime::ThreadPool pool(4);
    const int64_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, 7, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i)
            hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForBlockDecompositionIsThreadCountInvariant)
{
    // Blocks must be [b*grain, min(n, (b+1)*grain)) regardless of workers.
    auto blocksOf = [](runtime::ThreadPool &pool, int64_t n, int64_t grain) {
        std::mutex mu;
        std::set<std::pair<int64_t, int64_t>> blocks;
        pool.parallelFor(n, grain, [&](int64_t b, int64_t e) {
            std::lock_guard<std::mutex> lk(mu);
            blocks.insert({b, e});
        });
        return blocks;
    };
    runtime::ThreadPool serial(1), wide(8);
    EXPECT_EQ(blocksOf(serial, 103, 10), blocksOf(wide, 103, 10));
    EXPECT_EQ(blocksOf(serial, 8, 16), blocksOf(wide, 8, 16));
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges)
{
    runtime::ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, 4, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, 4, [&](int64_t b, int64_t e) {
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 1);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    runtime::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64, 1,
                                  [&](int64_t b, int64_t) {
                                      if (b == 13)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedParallelForCompletes)
{
    runtime::ThreadPool pool(2); // fewer workers than outer blocks
    std::atomic<int64_t> sum{0};
    pool.parallelFor(8, 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
            pool.parallelFor(16, 4, [&](int64_t ib, int64_t ie) {
                sum.fetch_add(ie - ib);
            });
        }
    });
    EXPECT_EQ(sum.load(), 8 * 16);
}

TEST(ThreadPool, DeeplyNestedParallelForSaturatesBroadcastSlotsSafely)
{
    // Three levels of nesting from every outer block: far more concurrent
    // loops than broadcast slots. Loops that find no free slot must run
    // caller-only and still cover every index exactly once.
    runtime::ThreadPool pool(4);
    std::atomic<int64_t> sum{0};
    pool.parallelFor(6, 1, [&](int64_t, int64_t) {
        pool.parallelFor(6, 1, [&](int64_t, int64_t) {
            pool.parallelFor(12, 3, [&](int64_t ib, int64_t ie) {
                sum.fetch_add(ie - ib);
            });
        });
    });
    EXPECT_EQ(sum.load(), 6 * 6 * 12);
}

TEST(ThreadPool, ExceptionsPropagateToTheRightCallerUnderContention)
{
    // Many external threads run parallelFor on one pool at once; odd
    // callers throw. Each caller must observe exactly its own outcome:
    // throwers get their exception, the rest complete every index.
    runtime::ThreadPool pool(4);
    const int callers = 12;
    std::vector<std::thread> threads;
    std::vector<int> outcome(callers, -1); // 0 = clean, 1 = caught
    std::vector<int64_t> covered(callers, 0);
    for (int c = 0; c < callers; ++c) {
        threads.emplace_back([&, c] {
            for (int rep = 0; rep < 20; ++rep) {
                // Atomic: blocks of one loop run concurrently on the
                // caller and the workers, so a plain accumulator would be
                // a data race in the test body itself.
                std::atomic<int64_t> local{0};
                try {
                    pool.parallelFor(64, 4, [&](int64_t b, int64_t e) {
                        if (c % 2 == 1 && b == 32)
                            throw std::runtime_error("caller " +
                                                     std::to_string(c));
                        local.fetch_add(e - b);
                    });
                    outcome[static_cast<size_t>(c)] = 0;
                    covered[static_cast<size_t>(c)] = local.load();
                } catch (const std::runtime_error &e) {
                    outcome[static_cast<size_t>(c)] = 1;
                    // The exception must be this caller's own, not one
                    // leaked across loops sharing the pool.
                    EXPECT_EQ(std::string(e.what()),
                              "caller " + std::to_string(c));
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (int c = 0; c < callers; ++c) {
        EXPECT_EQ(outcome[static_cast<size_t>(c)], c % 2) << "caller " << c;
        if (c % 2 == 0) {
            EXPECT_EQ(covered[static_cast<size_t>(c)], 64) << "caller " << c;
        }
    }
}

TEST(ThreadPool, ShortLoopRetirementIsRaceFreeUnderContention)
{
    // Regression test for a store-buffer (Dekker) race in slot retirement:
    // runLoop stored loop=nullptr and spin-waited on visitors==0 with only
    // release/acquire ordering, so the caller could observe visitors==0
    // before a worker's fetch_add became visible while that worker still
    // saw the stale non-null pointer — and then ran blocks of a ForLoop
    // whose stack frame was already destroyed. Both halves of the
    // handshake are now seq_cst. Hammer the window: many caller threads
    // issue the shortest possible broadcast loops (2 blocks — the caller
    // usually drains both itself, so retirement races a worker that is
    // mid-visit with no blocks left) against workers that are constantly
    // rescanning because every other slot is churning too. Each loop's
    // accumulator lives on the caller's stack next to the ForLoop, so a
    // late worker touching a retired loop is a use-after-free that TSan
    // and ASan both catch.
    runtime::ThreadPool pool(4);
    std::vector<std::thread> callers;
    for (int c = 0; c < 4; ++c) {
        callers.emplace_back([&] {
            for (int rep = 0; rep < 3000; ++rep) {
                std::atomic<int64_t> sum{0};
                pool.parallelFor(2, 1, [&](int64_t b, int64_t e) {
                    sum.fetch_add(e - b);
                });
                ASSERT_EQ(sum.load(), 2);
            }
        });
    }
    for (auto &t : callers)
        t.join();
}

TEST(ThreadPool, SetGlobalThreadsWhileOtherThreadsUseTheGlobalPool)
{
    // Regression test for a latent use-after-free: setGlobalThreads used
    // to delete the old pool while another thread could still hold the
    // ThreadPool::global() reference. Retired pools are now kept alive
    // for a kMaxRetiredPools-swap grace window (inert: serial
    // parallelFor, inline submits), so hammering the global pool while
    // it is being replaced must be clean under ThreadSanitizer/
    // AddressSanitizer. The concurrent phase performs exactly
    // kMaxRetiredPools swaps: any pool a user could reference stays in
    // the grace window for the whole phase (cap evictions during the
    // phase only hit pools retired before the users started), so the
    // test exercises the original race without depending on the
    // quiescence argument that justifies the eventual delete.
    std::atomic<bool> stop{false};
    std::vector<std::thread> users;
    for (int u = 0; u < 3; ++u) {
        users.emplace_back([&] {
            while (!stop.load()) {
                runtime::ThreadPool &pool = runtime::ThreadPool::global();
                std::atomic<int64_t> sum{0};
                pool.parallelFor(64, 4, [&](int64_t b, int64_t e) {
                    sum.fetch_add(e - b);
                });
                EXPECT_EQ(sum.load(), 64);
                pool.submit([] { return 1; }).get();
            }
        });
    }
    for (size_t swap = 0; swap < runtime::ThreadPool::kMaxRetiredPools;
         ++swap)
        runtime::ThreadPool::setGlobalThreads(1 + static_cast<int>(swap % 4));
    stop.store(true);
    for (auto &t : users)
        t.join();
    runtime::ThreadPool::setGlobalThreads(0);
}

TEST(ThreadPool, RetiredPoolListIsCappedAndOldestFreed)
{
    // The retired list must not grow without bound: a long-lived process
    // that retunes its thread count (serve reconfigurations, bench
    // sweeps) retires a pool per call, and before the cap each shell —
    // mutexes, condvars, empty deques — leaked for the process lifetime.
    // After every swap the list holds at most kMaxRetiredPools shells,
    // the runtime.retired_pools gauge agrees, and the current pool still
    // dispatches work.
    using runtime::ThreadPool;
    for (size_t swap = 0; swap < 3 * ThreadPool::kMaxRetiredPools; ++swap) {
        ThreadPool::setGlobalThreads(1 + static_cast<int>(swap % 3));
        EXPECT_LE(ThreadPool::retiredPoolCount(),
                  ThreadPool::kMaxRetiredPools);
        std::atomic<int64_t> sum{0};
        ThreadPool::global().parallelFor(32, 4, [&](int64_t b, int64_t e) {
            sum.fetch_add(e - b);
        });
        EXPECT_EQ(sum.load(), 32);
    }
    EXPECT_EQ(ThreadPool::retiredPoolCount(),
              ThreadPool::kMaxRetiredPools);
    const obs::Gauge *gauge = obs::MetricsRegistry::global().findGauge(
        "runtime.retired_pools");
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->value(),
              static_cast<int64_t>(ThreadPool::retiredPoolCount()));
    ThreadPool::setGlobalThreads(0);
}

TEST(ThreadPool, ShutdownDegradesToSerialButStaysUsable)
{
    runtime::ThreadPool pool(4);
    pool.shutdown();
    EXPECT_EQ(pool.size(), 0);
    int64_t sum = 0;
    pool.parallelFor(32, 4, [&](int64_t b, int64_t e) { sum += e - b; });
    EXPECT_EQ(sum, 32);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
    pool.shutdown(); // idempotent
}

TEST(ThreadPool, ParseThreadsEnvAcceptsOnlyPositiveIntegers)
{
    using runtime::ThreadPool;
    EXPECT_EQ(ThreadPool::parseThreadsEnv("1"), 1);
    EXPECT_EQ(ThreadPool::parseThreadsEnv("8"), 8);
    EXPECT_EQ(ThreadPool::parseThreadsEnv(" 16 "), 16);

    std::string error;
    for (const char *bad : {"", "abc", "4x", "x4", "0", "-3", "3.5",
                            "99999999999999999999", "  "}) {
        error.clear();
        EXPECT_EQ(ThreadPool::parseThreadsEnv(bad, &error), 0) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

// ---------------------------------------------------------------------------
// Rng::split
// ---------------------------------------------------------------------------

TEST(RngSplit, StreamsAreDeterministicAndDistinct)
{
    Rng root(1234);
    Rng a = root.split(0);
    Rng b = root.split(1);
    Rng a_again = Rng(1234).split(0);
    EXPECT_EQ(a.nextU64(), a_again.nextU64());
    EXPECT_NE(a.nextU64(), b.nextU64());
    EXPECT_NE(Rng(1234).split(0).nextU64(), Rng(1235).split(0).nextU64());
}

TEST(RngSplit, SplitIgnoresParentConsumptionState)
{
    Rng root(77);
    const uint64_t before = root.split(5).nextU64();
    root.nextU64();
    root.gaussian();
    const uint64_t after = root.split(5).nextU64();
    EXPECT_EQ(before, after);
}

TEST(RngSplit, ChildStreamsLookIndependent)
{
    // Means of distinct substreams should scatter around 0.5.
    Rng root(99);
    double grand = 0.0;
    for (uint64_t s = 0; s < 16; ++s) {
        Rng child = root.split(s);
        double mean = 0.0;
        for (int i = 0; i < 256; ++i)
            mean += child.uniformReal();
        grand += mean / 256.0;
    }
    EXPECT_NEAR(grand / 16.0, 0.5, 0.05);
}

// ---------------------------------------------------------------------------
// RuntimeEngine
// ---------------------------------------------------------------------------

runtime::GemmRequest
makeRequest(Rng &rng, int m, int k, int n)
{
    runtime::GemmRequest req;
    req.m = m;
    req.k = k;
    req.n = n;
    req.a = mirage::test::gaussianVector(rng, static_cast<size_t>(m) * k);
    req.b = mirage::test::gaussianVector(rng, static_cast<size_t>(k) * n);
    return req;
}

class RuntimeEngineTest : public mirage::test::SeededTest
{
};

TEST_F(RuntimeEngineTest, InvalidConfigurationsThrowWithClearMessages)
{
    const auto message = [](auto make_config) -> std::string {
        try {
            runtime::RuntimeEngine engine(make_config());
        } catch (const std::invalid_argument &e) {
            return e.what();
        }
        return "";
    };

    for (int tiles : {0, -1, -7}) {
        const std::string what = message([tiles] {
            runtime::EngineConfig cfg;
            cfg.tiles = tiles;
            return cfg;
        });
        EXPECT_NE(what.find("tiles"), std::string::npos) << what;
    }
    EXPECT_NE(message([] {
                  runtime::EngineConfig cfg;
                  cfg.queue_capacity = 0;
                  return cfg;
              }).find("queue_capacity"),
              std::string::npos);
    for (int max_batch : {0, -3}) {
        const std::string what = message([max_batch] {
            runtime::EngineConfig cfg;
            cfg.max_batch = max_batch;
            return cfg;
        });
        EXPECT_NE(what.find("max_batch"), std::string::npos) << what;
    }

    // validate() is also callable directly and passes on the defaults.
    EXPECT_NO_THROW(runtime::EngineConfig{}.validate());
    runtime::EngineConfig bad;
    bad.tiles = 0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST_F(RuntimeEngineTest, GemmJobMatchesDirectAcceleratorCall)
{
    runtime::EngineConfig cfg;
    cfg.tiles = 2;
    runtime::RuntimeEngine engine(cfg);

    runtime::GemmRequest req = makeRequest(rng, 13, 32, 5);
    const runtime::GemmRequest copy = req;
    std::future<runtime::GemmResult> fut = engine.submitGemm(std::move(req));

    core::MirageAccelerator direct;
    const std::vector<float> expect =
        direct.gemm(copy.a, copy.b, copy.m, copy.k, copy.n);

    const runtime::GemmResult res = fut.get();
    ASSERT_EQ(res.c.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(res.c[i], expect[i]) << "element " << i;
    EXPECT_GT(res.latency_s, 0.0);
    EXPECT_GE(res.shards, 1);
}

TEST_F(RuntimeEngineTest, ParallelShardedResultsAreBitIdenticalToSerial)
{
    // The same jobs through (1 tile, 1 thread) and (4 tiles, 8 threads)
    // must produce byte-identical outputs.
    std::vector<runtime::GemmRequest> reqs;
    for (int i = 0; i < 6; ++i)
        reqs.push_back(makeRequest(rng, 9 + 3 * i, 32, 6));

    auto runAll = [&](int tiles, int threads) {
        GlobalThreadsGuard guard(threads);
        runtime::EngineConfig cfg;
        cfg.tiles = tiles;
        cfg.max_batch = 3;
        runtime::RuntimeEngine engine(cfg);
        std::vector<std::future<runtime::GemmResult>> futs;
        for (const auto &r : reqs)
            futs.push_back(engine.submitGemm(r));
        std::vector<std::vector<float>> out;
        for (auto &f : futs)
            out.push_back(f.get().c);
        return out;
    };

    const auto serial = runAll(1, 1);
    const auto parallel = runAll(4, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t j = 0; j < serial.size(); ++j) {
        ASSERT_EQ(serial[j].size(), parallel[j].size());
        for (size_t i = 0; i < serial[j].size(); ++i)
            EXPECT_EQ(serial[j][i], parallel[j][i])
                << "job " << j << " element " << i;
    }
}

TEST_F(RuntimeEngineTest, InferenceAndTrainingJobsMatchDirectEstimates)
{
    runtime::RuntimeEngine engine;
    const models::ModelShape net = models::alexNet();
    auto inf = engine.submitInference(net, 16);
    auto trn = engine.submitTraining(net, 16);

    core::MirageAccelerator direct;
    const core::PerformanceReport inf_direct = direct.estimateInference(net, 16);
    const core::PerformanceReport trn_direct = direct.estimateTraining(net, 16);

    const core::PerformanceReport inf_res = inf.get();
    const core::PerformanceReport trn_res = trn.get();
    EXPECT_EQ(inf_res.time_s, inf_direct.time_s);
    EXPECT_EQ(inf_res.macs, inf_direct.macs);
    EXPECT_EQ(inf_res.energy_j, inf_direct.energy_j);
    EXPECT_EQ(trn_res.time_s, trn_direct.time_s);
    EXPECT_EQ(trn_res.macs, trn_direct.macs);
    EXPECT_EQ(trn_res.edp, trn_direct.edp);
    inf_res.validateUnits();
    trn_res.validateUnits();
}

TEST_F(RuntimeEngineTest, PerJobStatsAddUp)
{
    runtime::EngineConfig cfg;
    cfg.tiles = 2;
    runtime::RuntimeEngine engine(cfg);

    const int jobs = 5, m = 8, k = 16, n = 4;
    std::vector<std::future<runtime::GemmResult>> futs;
    for (int j = 0; j < jobs; ++j)
        futs.push_back(engine.submitGemm(makeRequest(rng, m, k, n)));
    auto inf = engine.submitInference(models::transformer(), 8);
    double latency_sum = 0.0;
    for (auto &f : futs)
        latency_sum += f.get().latency_s;
    inf.get();
    engine.drain();

    const runtime::RuntimeReport rep = engine.report();
    EXPECT_EQ(rep.jobs_submitted, static_cast<uint64_t>(jobs) + 1);
    EXPECT_EQ(rep.jobs_completed, static_cast<uint64_t>(jobs) + 1);
    EXPECT_EQ(rep.gemm_jobs, static_cast<uint64_t>(jobs));
    EXPECT_EQ(rep.inference_jobs, 1u);
    EXPECT_EQ(rep.gemm_macs, static_cast<int64_t>(jobs) * m * k * n);
    EXPECT_GE(rep.batches_dispatched, 1u);
    EXPECT_LE(rep.batches_dispatched, static_cast<uint64_t>(jobs));
    EXPECT_GT(rep.total_latency_s, 0.0);
    // Futures observe per-job latency at a slightly earlier timestamp than
    // the engine's aggregate, so the sum is a lower bound.
    EXPECT_LE(latency_sum, rep.total_latency_s + 1e-6);
    EXPECT_GT(rep.wall_time_s, 0.0);
    EXPECT_GE(rep.utilization(), 0.0);
    EXPECT_LE(rep.utilization(), 1.0 + 1e-9);
    EXPECT_GT(rep.throughputMacsPerSecond(), 0.0);
    EXPECT_GT(rep.avgLatencySeconds(), 0.0);
    EXPECT_GE(rep.max_latency_s, rep.avgLatencySeconds());
}

TEST_F(RuntimeEngineTest, CompatibleGemmJobsAreBatched)
{
    runtime::EngineConfig cfg;
    cfg.tiles = 2;
    cfg.max_batch = 4;
    cfg.queue_capacity = 32;
    runtime::RuntimeEngine engine(cfg);

    // Hold the dispatcher on a gate so all GEMM jobs are queued before any
    // dispatch decision is made, then count dispatch groups.
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    auto gate_job = engine.submitTask(
        [opened](core::MirageAccelerator &, Rng &) { opened.wait(); });

    std::vector<std::future<runtime::GemmResult>> futs;
    for (int j = 0; j < 8; ++j)
        futs.push_back(engine.submitGemm(makeRequest(rng, 6, 16, 4)));
    gate.set_value();
    for (auto &f : futs)
        f.get();
    gate_job.get();
    engine.drain();

    const runtime::RuntimeReport rep = engine.report();
    EXPECT_EQ(rep.gemm_jobs, 8u);
    EXPECT_EQ(rep.batches_dispatched, 2u); // 8 jobs fused 4 at a time
    EXPECT_EQ(rep.largest_batch, 4u);
}

TEST_F(RuntimeEngineTest, FullQueueBlocksSubmissionUntilSpaceFrees)
{
    runtime::EngineConfig cfg;
    cfg.tiles = 1;
    cfg.queue_capacity = 2;
    runtime::RuntimeEngine engine(cfg);

    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    auto gate_job = engine.submitTask(
        [opened](core::MirageAccelerator &, Rng &) { opened.wait(); });
    // Fill the queue behind the in-flight gate job.
    auto q1 = engine.submitTask([](core::MirageAccelerator &, Rng &) {});
    auto q2 = engine.submitTask([](core::MirageAccelerator &, Rng &) {});
    ASSERT_EQ(engine.queueDepth(), 2u);

    std::atomic<bool> third_submitted{false};
    std::thread producer([&] {
        auto q3 = engine.submitTask([](core::MirageAccelerator &, Rng &) {});
        third_submitted.store(true);
        q3.get();
    });

    // The producer must be stuck in submitTask while the queue is full.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_FALSE(third_submitted.load());
    EXPECT_EQ(engine.queueDepth(), 2u);

    gate.set_value();
    producer.join();
    EXPECT_TRUE(third_submitted.load());
    gate_job.get();
    q1.get();
    q2.get();
    engine.drain();
    const runtime::RuntimeReport rep = engine.report();
    EXPECT_EQ(rep.task_jobs, 4u);
    EXPECT_EQ(rep.max_queue_depth, 2u);
}

TEST_F(RuntimeEngineTest, PerTileRngStreamsAreDeterministicAndDistinct)
{
    runtime::EngineConfig cfg;
    cfg.tiles = 2;
    cfg.seed = 4321;
    auto firstDrawPerTile = [&cfg]() {
        runtime::RuntimeEngine engine(cfg);
        std::vector<uint64_t> draws;
        std::mutex mu;
        std::vector<std::future<void>> futs;
        // Tasks round-robin over tiles, so two tasks touch both tiles.
        for (int t = 0; t < cfg.tiles; ++t) {
            futs.push_back(engine.submitTask(
                [&](core::MirageAccelerator &, Rng &tile_rng) {
                    std::lock_guard<std::mutex> lk(mu);
                    draws.push_back(tile_rng.split(0).nextU64());
                }));
        }
        for (auto &f : futs)
            f.get();
        return draws;
    };
    const std::vector<uint64_t> run1 = firstDrawPerTile();
    const std::vector<uint64_t> run2 = firstDrawPerTile();
    ASSERT_EQ(run1.size(), 2u);
    EXPECT_EQ(run1, run2);       // deterministic across engine instances
    EXPECT_NE(run1[0], run1[1]); // distinct across tiles
}

TEST_F(RuntimeEngineTest, ThrowingTaskDeliversExceptionThroughFuture)
{
    runtime::RuntimeEngine engine;
    auto bad = engine.submitTask([](core::MirageAccelerator &, Rng &) {
        throw std::runtime_error("job failed");
    });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The dispatcher must survive a throwing job and keep serving.
    auto ok = engine.submitGemm(makeRequest(rng, 4, 16, 4));
    EXPECT_EQ(ok.get().c.size(), 4u * 4u);
    engine.drain();
    EXPECT_EQ(engine.report().jobs_completed, 2u);
}

TEST_F(RuntimeEngineTest, DestructorDrainsOutstandingJobs)
{
    std::future<runtime::GemmResult> fut;
    {
        runtime::RuntimeEngine engine;
        fut = engine.submitGemm(makeRequest(rng, 12, 16, 4));
    } // destructor must complete the job, not abandon the promise
    EXPECT_EQ(fut.get().c.size(), 12u * 4u);
}

// ---------------------------------------------------------------------------
// RuntimeEngine tile failover
// ---------------------------------------------------------------------------

/** Disarms the fault registry around a test body so injected schedules
 *  cannot leak between tests (or in from MIRAGE_FAULT). */
struct FaultGuard
{
    FaultGuard() { fault::reset(); }
    ~FaultGuard() { fault::reset(); }
};

TEST_F(RuntimeEngineTest, GemmResultsAreBitIdenticalAcrossInjectedFailover)
{
    // A GEMM whose first dispatch loses a tile mid-group must retry on
    // the survivors and still produce byte-identical output: re-sharding
    // rewrites the result buffers wholesale, and per-element math is
    // shard-shape independent.
    FaultGuard guard;
    runtime::GemmRequest req = makeRequest(rng, 24, 32, 8);

    const auto runOnce = [&](bool inject) {
        runtime::EngineConfig cfg;
        cfg.tiles = 4;
        runtime::RuntimeEngine engine(cfg);
        if (inject)
            fault::armPoint("engine.tile_fail", fault::FaultSpec::hit(1));
        const std::vector<float> c = engine.submitGemm(req).get().c;
        fault::reset();
        if (inject) {
            EXPECT_EQ(engine.healthyTiles(), 3);
            EXPECT_GE(engine.report().tile_failures, 1u);
            EXPECT_GE(engine.report().job_retries, 1u);
        }
        return c;
    };

    const std::vector<float> clean = runOnce(false);
    const std::vector<float> failover = runOnce(true);
    ASSERT_EQ(clean.size(), failover.size());
    for (size_t i = 0; i < clean.size(); ++i)
        EXPECT_EQ(clean[i], failover[i]) << "element " << i;
}

TEST_F(RuntimeEngineTest, FailTilePublishesListenerEventsAndCooldownRejoins)
{
    FaultGuard guard;
    runtime::EngineConfig cfg;
    cfg.tiles = 3;
    cfg.tile_cooldown_dispatches = 2;
    runtime::RuntimeEngine engine(cfg);

    std::mutex mu;
    std::vector<std::pair<int, bool>> events;
    const int id = engine.addTileListener([&](int tile, bool healthy) {
        std::lock_guard<std::mutex> lk(mu);
        events.emplace_back(tile, healthy);
    });

    engine.failTile(1);
    EXPECT_EQ(engine.healthyTiles(), 2);
    {
        std::lock_guard<std::mutex> lk(mu);
        ASSERT_EQ(events.size(), 1u);
        EXPECT_EQ(events[0], std::make_pair(1, false));
    }

    // Each dispatch steps the cooldown; after tile_cooldown_dispatches
    // the tile rejoins and the listener sees the recovery edge.
    for (int i = 0; i < cfg.tile_cooldown_dispatches; ++i)
        engine.submitGemm(makeRequest(rng, 6, 16, 4)).get();
    engine.drain();
    EXPECT_EQ(engine.healthyTiles(), 3);
    {
        std::lock_guard<std::mutex> lk(mu);
        ASSERT_EQ(events.size(), 2u);
        EXPECT_EQ(events[1], std::make_pair(1, true));
    }

    // A removed listener sees nothing further.
    engine.removeTileListener(id);
    engine.failTile(0);
    engine.drain();
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(events.size(), 2u);
}

TEST_F(RuntimeEngineTest, TaskSurvivesInjectedTileFailureWithOneExecution)
{
    // The injection fires before the task body, so a retried task runs
    // its body exactly once — the retry is clean-slate, never a replay
    // on top of partial effects.
    FaultGuard guard;
    runtime::EngineConfig cfg;
    cfg.tiles = 2;
    runtime::RuntimeEngine engine(cfg);

    const uint64_t recovered_before = obs::MetricsRegistry::global()
                                          .counter(
                                              "fault.recovered.engine."
                                              "tile_fail")
                                          .value();
    fault::armPoint("engine.tile_fail", fault::FaultSpec::hit(1));
    std::atomic<int> runs{0};
    auto fut = engine.submitTask(
        [&](core::MirageAccelerator &, Rng &) { runs.fetch_add(1); });
    EXPECT_NO_THROW(fut.get());
    fault::reset();

    EXPECT_EQ(runs.load(), 1);
    EXPECT_EQ(engine.healthyTiles(), 1);
    EXPECT_EQ(obs::MetricsRegistry::global()
                      .counter("fault.recovered.engine.tile_fail")
                      .value() -
                  recovered_before,
              1u);
}

TEST_F(RuntimeEngineTest, TaskFailsTerminallyThroughOnFailAfterRetries)
{
    // A tile failure on every attempt exhausts max_job_attempts: the
    // future carries TileFailure and the on_fail callback fires once
    // with the terminal reason.
    FaultGuard guard;
    runtime::EngineConfig cfg;
    cfg.tiles = 2;
    cfg.max_job_attempts = 2;
    runtime::RuntimeEngine engine(cfg);

    fault::armPoint("engine.tile_fail", fault::FaultSpec::hitEvery(1, 1));
    std::mutex mu;
    std::vector<std::string> reasons;
    runtime::TaskOptions opts;
    opts.on_fail = [&](const std::string &why) {
        std::lock_guard<std::mutex> lk(mu);
        reasons.push_back(why);
    };
    std::atomic<int> runs{0};
    auto fut = engine.submitTask(
        [&](core::MirageAccelerator &, Rng &) { runs.fetch_add(1); }, opts);
    EXPECT_THROW(fut.get(), runtime::TileFailure);
    fault::reset();

    EXPECT_EQ(runs.load(), 0);
    std::lock_guard<std::mutex> lk(mu);
    ASSERT_EQ(reasons.size(), 1u);
    EXPECT_NE(reasons[0].find("attempts"), std::string::npos) << reasons[0];
}

TEST_F(RuntimeEngineTest, AllTilesUnhealthyForcesAProbeAndRecovers)
{
    // With every tile unhealthy the engine must not deadlock: it forces
    // a probe dispatch on the tile closest to reintegration, and a
    // successful probe marks that tile healthy again.
    FaultGuard guard;
    runtime::EngineConfig cfg;
    cfg.tiles = 2;
    runtime::RuntimeEngine engine(cfg);
    engine.failTile(0);
    engine.failTile(1);
    EXPECT_EQ(engine.healthyTiles(), 0);

    const runtime::GemmRequest req = makeRequest(rng, 8, 16, 4);
    EXPECT_EQ(engine.submitGemm(req).get().c.size(), 8u * 4u);
    engine.drain();
    EXPECT_GE(engine.healthyTiles(), 1);
}

} // namespace
