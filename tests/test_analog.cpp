/**
 * @file
 * Tests for the analog substrate: Murmann converter-energy anchors and
 * growth regimes (Fig. 1b), noise models (Eqs. 6-7), and the SNR-driven
 * photocurrent solver used by the laser power model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analog/converter_energy.h"
#include "analog/noise.h"
#include "common/units.h"

namespace mirage {
namespace analog {
namespace {

TEST(ConverterEnergy, MatchesSixBitAdcAnchor)
{
    // 23 mW / 24 GS/s ~ 0.958 pJ per conversion.
    EXPECT_NEAR(adcEnergyPerConversion(6), 0.958e-12, 0.05e-12);
}

TEST(ConverterEnergy, MatchesOneNanojouleAt16Bits)
{
    // Paper Sec. II-C: a 16-bit conversion costs >= 1 nJ.
    EXPECT_NEAR(adcEnergyPerConversion(16), 1.0e-9, 0.1e-9);
}

TEST(ConverterEnergy, TechLimitedRegimeDoublesPerBit)
{
    for (int b = 4; b < 12; ++b) {
        const double ratio =
            adcEnergyPerConversion(b + 1) / adcEnergyPerConversion(b);
        EXPECT_NEAR(ratio, 2.0, 0.01) << "b=" << b;
    }
}

TEST(ConverterEnergy, NoiseLimitedRegimeQuadruplesPerBit)
{
    for (int b = 17; b < 23; ++b) {
        const double ratio =
            adcEnergyPerConversion(b + 1) / adcEnergyPerConversion(b);
        EXPECT_NEAR(ratio, 4.0, 0.05) << "b=" << b;
    }
}

TEST(ConverterEnergy, DacTwoOrdersBelowAdc)
{
    for (int b : {4, 6, 8, 12, 16}) {
        EXPECT_NEAR(dacEnergyPerConversion(b) / adcEnergyPerConversion(b),
                    0.01, 1e-9)
            << "b=" << b;
    }
}

TEST(ConverterEnergy, MonotonicInBits)
{
    for (int b = 1; b < 24; ++b)
        EXPECT_LT(adcEnergyPerConversion(b), adcEnergyPerConversion(b + 1));
}

TEST(ConverterSpec, PaperOperatingPoints)
{
    const ConverterSpec adc = mirageAdc6();
    EXPECT_EQ(adc.bits, 6);
    EXPECT_NEAR(adc.energyPerConversion(), 23e-3 / 24e9, 1e-15);
    const ConverterSpec dac = mirageDac6();
    EXPECT_NEAR(dac.energyPerConversion(), 136e-3 / 20e9, 1e-15);
    EXPECT_NEAR(dac.area_mm2, 0.072, 1e-9);
}

TEST(ConverterSpec, BitScaling)
{
    const ConverterSpec dac5 = mirageDac6().scaledToBits(5);
    EXPECT_NEAR(dac5.power_w, 136e-3 / 2.0, 1e-9);
    const ConverterSpec dac8 = mirageDac8();
    EXPECT_EQ(dac8.bits, 8);
    EXPECT_NEAR(dac8.power_w, 136e-3 * 4.0, 1e-9);
}

TEST(Noise, ShotNoiseScalesWithSqrtCurrent)
{
    const double s1 = shotNoiseSigma(1e-6, 10e9);
    const double s4 = shotNoiseSigma(4e-6, 10e9);
    EXPECT_NEAR(s4 / s1, 2.0, 1e-9);
}

TEST(Noise, ShotNoiseFormula)
{
    // sqrt(2 * q * 1uA * 10 GHz)
    const double expect =
        std::sqrt(2.0 * units::kElementaryCharge * 1e-6 * 10e9);
    EXPECT_NEAR(shotNoiseSigma(1e-6, 10e9), expect, 1e-15);
}

TEST(Noise, ThermalNoiseFormula)
{
    const double expect =
        std::sqrt(4.0 * units::kBoltzmann * 300.0 * 10e9 / 1e3);
    EXPECT_NEAR(thermalNoiseSigma(300.0, 1e3, 10e9), expect, 1e-18);
}

TEST(Noise, RequiredPhotocurrentAchievesTarget)
{
    const ReceiverSpec rx;
    for (double snr : {8.0, 33.0, 65.0, 256.0}) {
        const double i = requiredPhotocurrent(snr, rx);
        EXPECT_NEAR(snrAtPhotocurrent(i, rx), snr, snr * 1e-9) << snr;
        // Below the solution the SNR falls short.
        EXPECT_LT(snrAtPhotocurrent(i * 0.9, rx), snr);
    }
}

TEST(Noise, HigherSnrNeedsMorePower)
{
    const ReceiverSpec rx;
    double prev = 0;
    for (double snr : {8.0, 16.0, 32.0, 64.0, 128.0}) {
        const double i = requiredPhotocurrent(snr, rx);
        EXPECT_GT(i, prev);
        prev = i;
    }
}

TEST(Noise, OpticalPowerConversion)
{
    ReceiverSpec rx;
    rx.responsivity_a_per_w = 1.1; // paper Sec. V-B2
    EXPECT_NEAR(opticalPowerForCurrent(1.1e-6, rx), 1e-6, 1e-15);
}

TEST(Noise, ThermalDominatesAtLowCurrent)
{
    const ReceiverSpec rx;
    const double i = 1e-7;
    EXPECT_GT(thermalNoiseSigma(rx.temperature_k, rx.tia_feedback_ohm,
                                rx.bandwidth_hz),
              shotNoiseSigma(i, rx.bandwidth_hz));
}

} // namespace
} // namespace analog
} // namespace mirage
