/**
 * @file
 * Numerical gradient checks for every layer type and unit tests for the
 * loss/optimizer machinery. A layer whose backward pass disagrees with
 * central-difference gradients would silently corrupt every accuracy
 * experiment, so these are the framework's bedrock tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.h"
#include "nn/layers_basic.h"
#include "nn/layers_conv.h"
#include "nn/layers_norm.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "test_support.h"

namespace mirage {
namespace nn {
namespace {

using mirage::test::gradCheck;
using mirage::test::randomTensor;

TEST(GradCheck, Dense)
{
    Rng rng(1);
    FormatBackend backend(numerics::DataFormat::FP32);
    Dense layer(5, 4, &backend, rng);
    gradCheck(layer, randomTensor({3, 5}, 2));
}

TEST(GradCheck, DenseRank3)
{
    Rng rng(1);
    FormatBackend backend(numerics::DataFormat::FP32);
    Dense layer(5, 4, &backend, rng);
    gradCheck(layer, randomTensor({2, 3, 5}, 3));
}

TEST(GradCheck, Conv2d)
{
    Rng rng(2);
    FormatBackend backend(numerics::DataFormat::FP32);
    Conv2d layer(2, 3, 3, 1, 1, &backend, rng);
    gradCheck(layer, randomTensor({2, 2, 5, 5}, 4));
}

TEST(GradCheck, Conv2dStride2NoPad)
{
    Rng rng(3);
    FormatBackend backend(numerics::DataFormat::FP32);
    Conv2d layer(2, 2, 3, 2, 0, &backend, rng);
    gradCheck(layer, randomTensor({2, 2, 7, 7}, 5));
}

TEST(GradCheck, ReLU)
{
    ReLU layer;
    gradCheck(layer, randomTensor({4, 6}, 6));
}

TEST(GradCheck, Gelu)
{
    Gelu layer;
    gradCheck(layer, randomTensor({4, 6}, 7));
}

TEST(GradCheck, MaxPool)
{
    MaxPool2d layer;
    gradCheck(layer, randomTensor({2, 2, 4, 4}, 8));
}

TEST(GradCheck, GlobalAvgPool)
{
    GlobalAvgPool layer;
    gradCheck(layer, randomTensor({2, 3, 4, 4}, 9));
}

TEST(GradCheck, SequenceMeanPool)
{
    SequenceMeanPool layer;
    gradCheck(layer, randomTensor({2, 5, 3}, 10));
}

TEST(GradCheck, BatchNorm)
{
    BatchNorm2d layer(3);
    gradCheck(layer, randomTensor({4, 3, 3, 3}, 11), 4e-2);
}

TEST(GradCheck, LayerNorm)
{
    LayerNorm layer(6);
    gradCheck(layer, randomTensor({4, 6}, 12), 4e-2);
}

TEST(GradCheck, MultiHeadAttention)
{
    Rng rng(13);
    FormatBackend backend(numerics::DataFormat::FP32);
    MultiHeadSelfAttention layer(4, 2, &backend, rng);
    gradCheck(layer, randomTensor({2, 3, 4}, 14), 4e-2);
}

TEST(GradCheck, ResidualBlockWithShortcut)
{
    Rng rng(15);
    FormatBackend backend(numerics::DataFormat::FP32);
    auto main = std::make_unique<Sequential>();
    main->emplace<Dense>(4, 4, &backend, rng);
    main->emplace<ReLU>();
    auto shortcut = std::make_unique<Sequential>();
    shortcut->emplace<Dense>(4, 4, &backend, rng);
    ResidualBlock layer(std::move(main), std::move(shortcut));
    gradCheck(layer, randomTensor({3, 4}, 16));
}

TEST(GradCheck, SmallSequentialStack)
{
    Rng rng(17);
    FormatBackend backend(numerics::DataFormat::FP32);
    Sequential model;
    model.emplace<Conv2d>(1, 2, 3, 1, 1, &backend, rng);
    model.emplace<ReLU>();
    model.emplace<MaxPool2d>();
    model.emplace<Flatten>();
    model.emplace<Dense>(2 * 2 * 2, 3, &backend, rng);
    gradCheck(model, randomTensor({2, 1, 4, 4}, 18));
}

TEST(Loss, SoftmaxCrossEntropyMatchesHandComputation)
{
    Tensor logits({1, 3});
    logits[0] = 1.0f;
    logits[1] = 2.0f;
    logits[2] = 3.0f;
    const LossResult r = softmaxCrossEntropy(logits, {2});
    // L = -log softmax_2 = log(e^1 + e^2 + e^3) - 3.
    const double expect =
        std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0)) - 3.0;
    EXPECT_NEAR(r.loss, expect, 1e-5);
    // Gradient sums to zero and is negative only at the label.
    EXPECT_LT(r.grad[2], 0.0f);
    EXPECT_NEAR(r.grad[0] + r.grad[1] + r.grad[2], 0.0f, 1e-6);
}

TEST(Loss, SoftmaxGradientNumerical)
{
    Rng rng(19);
    Tensor logits = Tensor::randn({3, 5}, rng);
    const std::vector<int> labels = {1, 4, 0};
    const LossResult r = softmaxCrossEntropy(logits, labels);
    const float eps = 1e-3f;
    for (int64_t i = 0; i < logits.size(); i += 2) {
        const float orig = logits[i];
        logits[i] = orig + eps;
        const float up = softmaxCrossEntropy(logits, labels).loss;
        logits[i] = orig - eps;
        const float down = softmaxCrossEntropy(logits, labels).loss;
        logits[i] = orig;
        EXPECT_NEAR(r.grad[i], (up - down) / (2 * eps), 2e-3) << i;
    }
}

TEST(Loss, MseAndArgmax)
{
    Tensor pred({2, 2});
    pred[0] = 1.0f;
    pred[1] = 3.0f;
    pred[2] = 0.0f;
    pred[3] = 5.0f;
    Tensor target({2, 2});
    target.fill(1.0f);
    const LossResult r = meanSquaredError(pred, target);
    EXPECT_NEAR(r.loss, (0 + 4 + 1 + 16) / 4.0, 1e-6);
    const auto am = argmaxRows(pred);
    EXPECT_EQ(am[0], 1);
    EXPECT_EQ(am[1], 1);
}

TEST(Optimizer, SgdStepDirection)
{
    Param p;
    p.value = Tensor({2});
    p.value[0] = 1.0f;
    p.value[1] = -1.0f;
    p.grad = Tensor({2});
    p.grad[0] = 0.5f;
    p.grad[1] = -0.5f;
    Sgd opt(0.1f);
    opt.step({&p});
    EXPECT_NEAR(p.value[0], 0.95f, 1e-6);
    EXPECT_NEAR(p.value[1], -0.95f, 1e-6);
}

TEST(Optimizer, SgdMomentumAccumulates)
{
    Param p;
    p.value = Tensor({1});
    p.grad = Tensor({1});
    p.grad[0] = 1.0f;
    Sgd opt(0.1f, 0.9f);
    opt.step({&p});
    EXPECT_NEAR(p.value[0], -0.1f, 1e-6);
    opt.step({&p}); // velocity = 0.9 * 1 + 1 = 1.9
    EXPECT_NEAR(p.value[0], -0.1f - 0.19f, 1e-6);
}

TEST(Optimizer, AdamFirstStepIsLrSized)
{
    Param p;
    p.value = Tensor({1});
    p.grad = Tensor({1});
    p.grad[0] = 3.0f; // any positive gradient: first Adam step ~ lr
    Adam opt(0.01f);
    opt.step({&p});
    EXPECT_NEAR(p.value[0], -0.01f, 1e-4);
}

TEST(Optimizer, ZeroGradClears)
{
    Param p;
    p.value = Tensor({2});
    p.grad = Tensor({2});
    p.grad.fill(3.0f);
    Optimizer::zeroGrad({&p});
    EXPECT_EQ(p.grad[0], 0.0f);
    EXPECT_EQ(p.grad[1], 0.0f);
}

} // namespace
} // namespace nn
} // namespace mirage
