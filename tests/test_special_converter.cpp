/**
 * @file
 * Tests for the shift/add special-set converters {2^k-1, 2^k, 2^k+1}:
 * chunk-folding forward conversion and the two-level reverse conversion,
 * cross-checked exhaustively against the generic CRT codec.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rns/conversion.h"
#include "rns/special_converter.h"
#include "test_support.h"

namespace mirage {
namespace rns {
namespace {

using ConverterSeeded = mirage::test::SeededTest;

TEST(SpecialConverter, ModMersenneBasics)
{
    const SpecialConverter conv(5); // m1 = 31
    EXPECT_EQ(conv.modMersenne(0), 0u);
    EXPECT_EQ(conv.modMersenne(30), 30u);
    EXPECT_EQ(conv.modMersenne(31), 0u);
    EXPECT_EQ(conv.modMersenne(32), 1u);
    EXPECT_EQ(conv.modMersenne(62), 0u);
    EXPECT_EQ(conv.modMersenne(961), 0u); // 31^2
}

TEST(SpecialConverter, ModFermatBasics)
{
    const SpecialConverter conv(5); // m3 = 33
    EXPECT_EQ(conv.modFermat(0), 0u);
    EXPECT_EQ(conv.modFermat(32), 32u);
    EXPECT_EQ(conv.modFermat(33), 0u);
    EXPECT_EQ(conv.modFermat(34), 1u);
    EXPECT_EQ(conv.modFermat(1089), 0u); // 33^2
}

TEST(SpecialConverter, ForwardMatchesNaiveExhaustiveK4)
{
    const SpecialConverter conv(4); // {15, 16, 17}, M = 4080
    for (uint64_t a = 0; a < 4080; ++a) {
        const ResidueVector r = conv.forward(a);
        EXPECT_EQ(r[0], a % 15) << a;
        EXPECT_EQ(r[1], a % 16) << a;
        EXPECT_EQ(r[2], a % 17) << a;
    }
}

TEST(SpecialConverter, ReverseMatchesExhaustiveK4)
{
    const SpecialConverter conv(4);
    for (uint64_t a = 0; a < 4080; ++a)
        EXPECT_EQ(conv.reverse(conv.forward(a)), a) << a;
}

TEST(SpecialConverter, RoundTripExhaustiveK5)
{
    const SpecialConverter conv(5); // M = 32736
    for (uint64_t a = 0; a < 32736; ++a)
        ASSERT_EQ(conv.reverse(conv.forward(a)), a) << a;
}

TEST(SpecialConverter, SignedRoundTripExhaustiveK5)
{
    const SpecialConverter conv(5);
    for (int64_t x = -16367; x <= 16367; ++x)
        ASSERT_EQ(conv.reverseSigned(conv.forwardSigned(x)), x) << x;
}

TEST_F(ConverterSeeded, AgreesWithGenericCodecRandomized)
{
    for (int k : {4, 5, 6, 8, 10}) {
        const SpecialConverter conv(k);
        const RnsCodec codec{ModuliSet::special(k)};
        const int64_t psi = static_cast<int64_t>(codec.set().psi());
        for (int t = 0; t < 3000; ++t) {
            const int64_t x = rng.uniformInt(-psi, psi);
            const ResidueVector fast = conv.forwardSigned(x);
            const ResidueVector generic = codec.encode(x);
            ASSERT_EQ(fast, generic) << "k=" << k << " x=" << x;
            ASSERT_EQ(conv.reverseSigned(fast), codec.decode(generic));
        }
    }
}

TEST_F(ConverterSeeded, HandlesLargeDotProductMagnitudes)
{
    // Forward conversion is applied to dot-product outputs up to the full
    // dynamic range in the hardware's reverse-conversion path; make sure
    // chunk folding handles many-chunk inputs (values >> M) as pure mod.
    const SpecialConverter conv(5);
    for (int t = 0; t < 2000; ++t) {
        const uint64_t a = rng.nextU64() >> 8; // 56-bit values
        EXPECT_EQ(conv.modMersenne(a), a % 31u);
        EXPECT_EQ(conv.modPowerOfTwo(a), a % 32u);
        EXPECT_EQ(conv.modFermat(a), a % 33u);
    }
}

/** Parameterized round-trip sweep across k. */
class SpecialConverterSweep : public testing::TestWithParam<int>
{
};

TEST_P(SpecialConverterSweep, RandomRoundTrips)
{
    const int k = GetParam();
    const SpecialConverter conv(k);
    Rng rng(1000 + k);
    const int64_t psi =
        static_cast<int64_t>(conv.set().psi());
    for (int t = 0; t < 2000; ++t) {
        const int64_t x = rng.uniformInt(-psi, psi);
        ASSERT_EQ(conv.reverseSigned(conv.forwardSigned(x)), x);
    }
}

INSTANTIATE_TEST_SUITE_P(AllK, SpecialConverterSweep,
                         testing::Values(2, 3, 4, 5, 6, 7, 8, 10, 12, 16),
                         testing::PrintToStringParamName());

} // namespace
} // namespace rns
} // namespace mirage
