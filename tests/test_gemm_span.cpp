/**
 * @file
 * Bit-equality tests for the span (allocation-free) GEMM APIs against the
 * legacy vector APIs, across every backend: format emulation (all data
 * formats), BFP/RNS, modular GEMM, the RNS GEMM engine, the photonic
 * MMVMU pipeline, and the PhotonicBackend. The span overloads are the hot
 * path; these tests pin the refactor to "same bits, fewer allocations".
 */

#include <gtest/gtest.h>

#include "bfp/bfp_gemm.h"
#include "common/workspace.h"
#include "nn/gemm_backend.h"
#include "photonic/mmvmu.h"
#include "rns/modular_gemm.h"
#include "test_support.h"

namespace mirage {
namespace {

using nn::FormatBackend;
using nn::PhotonicBackend;
using numerics::DataFormat;

class GemmSpanTest : public test::SeededTest
{
  protected:
    std::vector<float>
    randomMatrix(int rows, int cols, float scale = 1.0f)
    {
        std::vector<float> m(static_cast<size_t>(rows) * cols);
        for (auto &v : m)
            v = static_cast<float>(rng.gaussian(0.0, scale));
        return m;
    }
};

TEST_F(GemmSpanTest, FormatBackendsMatchVectorApiBitExactly)
{
    const int m = 9, k = 33, n = 7; // deliberately non-multiples of 4
    const std::vector<float> a = randomMatrix(m, k);
    const std::vector<float> b = randomMatrix(k, n);

    for (DataFormat fmt :
         {DataFormat::FP32, DataFormat::BFLOAT16, DataFormat::HFP8,
          DataFormat::INT8, DataFormat::INT12, DataFormat::FMAC,
          DataFormat::MirageBfpRns}) {
        numerics::FormatGemmConfig cfg;
        cfg.moduli = test::paperModuli();
        // Same seed on both sides: stochastic-rounding formats must draw
        // the identical stream through both entry points.
        FormatBackend vec_backend(fmt, cfg, 42);
        FormatBackend span_backend(fmt, cfg, 42);

        const std::vector<float> c_vec =
            vec_backend.gemm(a, b, m, k, n, false, false);
        std::vector<float> c_span(static_cast<size_t>(m) * n, -1.0f);
        span_backend.gemm(std::span<const float>(a),
                          std::span<const float>(b), m, k, n, false, false,
                          std::span<float>(c_span));
        for (size_t i = 0; i < c_vec.size(); ++i)
            EXPECT_EQ(c_vec[i], c_span[i])
                << numerics::toString(fmt) << " @" << i;
    }
}

TEST_F(GemmSpanTest, FormatBackendGradFlagsCarryThroughSpanApi)
{
    // Values above E4M3 max must survive only through the gradient (E5M2)
    // format — same contract as the vector API.
    const std::vector<float> a = {1000.0f};
    const std::vector<float> b = {1.0f};
    FormatBackend backend(DataFormat::HFP8, {}, 1);
    std::vector<float> out(1);
    backend.gemm(std::span<const float>(a), std::span<const float>(b), 1, 1,
                 1, false, false, std::span<float>(out));
    EXPECT_FLOAT_EQ(out[0], 448.0f);
    backend.gemm(std::span<const float>(a), std::span<const float>(b), 1, 1,
                 1, true, false, std::span<float>(out));
    EXPECT_FLOAT_EQ(out[0], 1024.0f);
}

TEST_F(GemmSpanTest, BfpGemmSpanMatchesVector)
{
    const int m = 6, k = 40, n = 5;
    const std::vector<float> a = randomMatrix(m, k);
    const std::vector<float> b = randomMatrix(k, n);
    for (const bool with_moduli : {false, true}) {
        // Stochastic rounding exercises the packed encoders' per-row
        // substreams; both sides must consume identical rng state.
        bfp::BfpGemmOptions opts;
        opts.config = {4, 16, bfp::Rounding::Stochastic};
        if (with_moduli)
            opts.moduli = test::paperModuli();
        Rng rng_vec(7), rng_span(7);

        opts.rng = &rng_vec;
        const std::vector<float> c_vec = bfp::bfpGemm(a, b, m, k, n, opts);

        opts.rng = &rng_span;
        std::vector<float> c_span(static_cast<size_t>(m) * n);
        bfp::bfpGemm(std::span<const float>(a), std::span<const float>(b),
                     std::span<float>(c_span), m, k, n, opts);
        for (size_t i = 0; i < c_vec.size(); ++i)
            EXPECT_EQ(c_vec[i], c_span[i])
                << (with_moduli ? "rns" : "plain") << " @" << i;
        // Both paths must leave the caller rng in the same state.
        EXPECT_EQ(rng_vec.nextU64(), rng_span.nextU64());
    }
}

TEST_F(GemmSpanTest, PackedEncodeMatchesBlockEncode)
{
    const int m = 5, k = 37; // ragged tail chunk
    const std::vector<float> a = randomMatrix(m, k);
    const bfp::BfpConfig cfg{4, 16, bfp::Rounding::Nearest};

    const bfp::BfpMatrix blocks = bfp::encodeRows(a, m, k, cfg);
    Workspace ws;
    Workspace::Scope scope(ws);
    const bfp::BfpPackedMatrix packed =
        bfp::encodeRowsPacked(a, m, k, cfg, ws);

    ASSERT_EQ(blocks.chunk_count, packed.chunk_count);
    for (int r = 0; r < m; ++r) {
        for (int c = 0; c < blocks.chunk_count; ++c) {
            const bfp::BfpBlock &blk =
                blocks.blocks[static_cast<size_t>(r) * blocks.chunk_count + c];
            EXPECT_EQ(blk.exponent, packed.exponent(r, c));
            const int32_t *pm = packed.chunk(r, c);
            for (int t = 0; t < cfg.g; ++t) {
                const int32_t expect =
                    t < static_cast<int>(blk.mantissas.size())
                        ? blk.mantissas[static_cast<size_t>(t)]
                        : 0; // packed tail is zero-padded
                EXPECT_EQ(pm[t], expect) << r << "," << c << "," << t;
            }
        }
    }
}

TEST_F(GemmSpanTest, ModularGemmSpanMatchesVector)
{
    const int m = 11, k = 23, n = 9;
    std::vector<rns::Residue> a(static_cast<size_t>(m) * k),
        b(static_cast<size_t>(k) * n);
    for (auto &v : a)
        v = static_cast<rns::Residue>(rng.uniformInt(0, 30));
    for (auto &v : b)
        v = static_cast<rns::Residue>(rng.uniformInt(0, 30));

    std::vector<rns::Residue> c_vec;
    rns::modularGemm(a, b, c_vec, m, k, n, 31);

    std::vector<rns::Residue> c_span(static_cast<size_t>(m) * n, 999);
    rns::modularGemm(std::span<const rns::Residue>(a),
                     std::span<const rns::Residue>(b),
                     std::span<rns::Residue>(c_span), m, k, n, 31);
    EXPECT_EQ(c_vec, c_span);

    // And both must agree with the reference dot products.
    for (int i = 0; i < m; ++i)
        for (int j = 0; j < n; ++j) {
            uint64_t expect = 0;
            for (int kk = 0; kk < k; ++kk)
                expect += a[static_cast<size_t>(i) * k + kk] *
                          b[static_cast<size_t>(kk) * n + j];
            EXPECT_EQ(c_vec[static_cast<size_t>(i) * n + j], expect % 31);
        }
}

TEST_F(GemmSpanTest, RnsGemmEngineSpanMatchesVector)
{
    const rns::RnsGemmEngine engine(test::paperModuli());
    const int m = 4, k = 16, n = 3;
    std::vector<int64_t> a(static_cast<size_t>(m) * k),
        b(static_cast<size_t>(k) * n);
    for (auto &v : a)
        v = rng.uniformInt(-15, 15);
    for (auto &v : b)
        v = rng.uniformInt(-15, 15);

    const std::vector<int64_t> c_vec = engine.gemm(a, b, m, k, n);
    std::vector<int64_t> c_span(static_cast<size_t>(m) * n);
    engine.gemm(std::span<const int64_t>(a), std::span<const int64_t>(b),
                std::span<int64_t>(c_span), m, k, n);
    EXPECT_EQ(c_vec, c_span);
}

TEST_F(GemmSpanTest, RnsMmvmuSpanMvmMatchesVector)
{
    const photonic::DeviceKit kit;
    photonic::RnsMmvmu array(rns::ModuliSet::special(5), 8, 16, kit, 10e9);
    std::vector<int64_t> tile(8 * 16);
    for (auto &v : tile)
        v = rng.uniformInt(-15, 15);
    array.programTile(tile, 8, 16);
    std::vector<int64_t> x(16);
    for (auto &v : x)
        v = rng.uniformInt(-15, 15);

    const std::vector<int64_t> y_vec = array.mvm(x);
    std::vector<int64_t> y_span(8, -1);
    array.mvm(std::span<const int64_t>(x), nullptr,
              std::span<int64_t>(y_span));
    EXPECT_EQ(y_vec, y_span);
}

TEST_F(GemmSpanTest, PhotonicBackendSpanMatchesVectorApi)
{
    const int m = 5, k = 20, n = 4;
    const std::vector<float> a = randomMatrix(m, k, 0.5f);
    const std::vector<float> b = randomMatrix(k, n, 0.5f);
    PhotonicBackend vec_backend(4, 16, 5, 8, {}, 3);
    PhotonicBackend span_backend(4, 16, 5, 8, {}, 3);

    const std::vector<float> c_vec =
        vec_backend.gemm(a, b, m, k, n, false, false);
    std::vector<float> c_span(static_cast<size_t>(m) * n);
    span_backend.gemm(std::span<const float>(a), std::span<const float>(b),
                      m, k, n, false, false, std::span<float>(c_span));
    for (size_t i = 0; i < c_vec.size(); ++i)
        EXPECT_EQ(c_vec[i], c_span[i]) << i;
}

TEST_F(GemmSpanTest, NoisyPhotonicBackendSpanMatchesVectorApi)
{
    photonic::PhotonicNoiseConfig noise;
    noise.shot_thermal_enabled = true;
    const int m = 4, k = 16, n = 3;
    const std::vector<float> a = randomMatrix(m, k, 0.5f);
    const std::vector<float> b = randomMatrix(k, n, 0.5f);
    PhotonicBackend vec_backend(4, 16, 5, 8, noise, 11);
    PhotonicBackend span_backend(4, 16, 5, 8, noise, 11);

    const std::vector<float> c_vec =
        vec_backend.gemm(a, b, m, k, n, false, false);
    std::vector<float> c_span(static_cast<size_t>(m) * n);
    span_backend.gemm(std::span<const float>(a), std::span<const float>(b),
                      m, k, n, false, false, std::span<float>(c_span));
    for (size_t i = 0; i < c_vec.size(); ++i)
        EXPECT_EQ(c_vec[i], c_span[i]) << i;
}

} // namespace
} // namespace mirage
