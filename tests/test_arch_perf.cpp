/**
 * @file
 * Tests for the analytic performance models: Mirage tiling/latency math,
 * systolic-array timing, dataflow asymmetries, and the utilization trends
 * behind Fig. 6.
 */

#include <gtest/gtest.h>

#include "arch/config.h"
#include "arch/perf_model.h"
#include "arch/systolic.h"
#include "models/zoo.h"

namespace mirage {
namespace arch {
namespace {

MirageConfig
defaultConfig()
{
    return MirageConfig{};
}

TEST(MirageConfigTest, PaperDefaultsValidate)
{
    MirageConfig cfg = defaultConfig();
    cfg.validate();
    EXPECT_EQ(cfg.macsPerCycle(), 8 * 32 * 16);
    EXPECT_NEAR(cfg.peakMacsPerSecond(), 40.96e12, 1e9);
    EXPECT_NEAR(cfg.cycleTimeS(), 0.1e-9, 1e-15);
    EXPECT_NEAR(cfg.tileLoadTimeS(), 5e-9, 1e-15);
}

TEST(MirageConfigDeath, RejectsEq13Violation)
{
    MirageConfig cfg = defaultConfig();
    cfg.bm = 5; // needs k = 6 at g = 16
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "Eq");
}

TEST(MiragePerf, SingleTileLatency)
{
    const MirageConfig cfg = defaultConfig();
    const MiragePerfModel model(cfg);
    // One 32x16 tile streaming 100 vectors: 5 ns + 100 * 0.1 ns. Only one
    // of the eight arrays is busy, so spatial utilization is 1/8.
    const GemmPerf p = model.gemm({32, 16, 100}, Dataflow::DF1);
    EXPECT_EQ(p.tiles, 1);
    EXPECT_NEAR(p.time_s, 5e-9 + 100 * 0.1e-9, 1e-15);
    EXPECT_NEAR(p.spatial_util, 1.0 / 8.0, 1e-12);
    // Eight exact tiles saturate every array: full utilization.
    const GemmPerf full = model.gemm({256, 16, 100}, Dataflow::DF1);
    EXPECT_EQ(full.tiles, 8);
    EXPECT_NEAR(full.spatial_util, 1.0, 1e-12);
}

TEST(MiragePerf, TileCountsAndWaves)
{
    const MirageConfig cfg = defaultConfig();
    const MiragePerfModel model(cfg);
    // M = 64 -> 2 row tiles; K = 64 -> 4 depth tiles; 8 tiles on 8 arrays
    // -> one wave.
    const GemmPerf p = model.gemm({64, 64, 256}, Dataflow::DF1);
    EXPECT_EQ(p.tiles, 8);
    EXPECT_NEAR(p.time_s, 5e-9 + 256 * 0.1e-9, 1e-15);
    // 9 row tiles -> 36 tiles -> 5 waves.
    const GemmPerf q = model.gemm({288, 64, 256}, Dataflow::DF1);
    EXPECT_EQ(q.tiles, 36);
    EXPECT_NEAR(q.time_s, 5.0 * (5e-9 + 256 * 0.1e-9), 1e-15);
}

TEST(MiragePerf, Df2IsTransposedDf1)
{
    const MirageConfig cfg = defaultConfig();
    const MiragePerfModel model(cfg);
    const GemmShape s{100, 300, 7000};
    const GemmPerf df2 = model.gemm(s, Dataflow::DF2);
    const GemmPerf df1_t = model.gemm(s.transposed(), Dataflow::DF1);
    EXPECT_DOUBLE_EQ(df2.time_s, df1_t.time_s);
    EXPECT_EQ(df2.tiles, df1_t.tiles);
}

TEST(MiragePerf, Df3Unsupported)
{
    const MiragePerfModel model(defaultConfig());
    EXPECT_FALSE(model.gemm({32, 16, 100}, Dataflow::DF3).supported);
}

TEST(MiragePerf, DataflowAsymmetryFollowsShape)
{
    const MiragePerfModel model(defaultConfig());
    // Tall-skinny vs short-wide: DF1 tiles over (M, K), streams N; DF2
    // tiles over (N, K), streams M. With huge M and small N, DF2 must win.
    const GemmShape tall{100000, 64, 32};
    EXPECT_LT(model.gemm(tall, Dataflow::DF2).time_s,
              model.gemm(tall, Dataflow::DF1).time_s);
    const GemmShape wide{32, 64, 100000};
    EXPECT_LT(model.gemm(wide, Dataflow::DF1).time_s,
              model.gemm(wide, Dataflow::DF2).time_s);
    // best() picks the winner.
    EXPECT_EQ(model.best(tall).first, Dataflow::DF2);
    EXPECT_EQ(model.best(wide).first, Dataflow::DF1);
}

TEST(MiragePerf, CountMultipliesTiles)
{
    const MiragePerfModel model(defaultConfig());
    const GemmShape s{32, 16, 64};
    const GemmPerf one = model.gemm(s, Dataflow::DF1, 1);
    const GemmPerf many = model.gemm(s, Dataflow::DF1, 16);
    EXPECT_EQ(many.tiles, 16 * one.tiles);
    // 16 tiles across 8 arrays -> 2 waves.
    EXPECT_NEAR(many.time_s, 2.0 * one.time_s, 1e-15);
}

TEST(MiragePerf, UtilizationDropsWithOversizedArrays)
{
    // Fig. 6a: once MDPU rows exceed typical layer dimensions, padding
    // wastes slots and utilization falls.
    const models::ModelShape net = models::alexNet();
    const auto tasks = models::trainingTasks(net, 256);
    double prev_util = 0.0;
    bool declined = false;
    for (int rows : {8, 32, 128, 512}) {
        MirageConfig cfg;
        cfg.mdpu_rows = rows;
        const MiragePerfModel model(cfg);
        double macs = 0.0, weighted = 0.0;
        for (const auto &t : tasks) {
            const GemmPerf p = model.gemm(t.shape, Dataflow::DF1, t.count);
            macs += static_cast<double>(p.macs);
            weighted += p.spatial_util * static_cast<double>(p.macs);
        }
        const double util = weighted / macs;
        if (prev_util > 0 && util < prev_util - 0.05)
            declined = true;
        prev_util = util;
    }
    EXPECT_TRUE(declined);
}

TEST(SystolicSpecTest, TableIIConstants)
{
    const SystolicSpec fp32 = systolicSpec(numerics::DataFormat::FP32);
    EXPECT_NEAR(fp32.pj_per_mac, 12.42, 1e-9);
    EXPECT_NEAR(fp32.clock_hz, 500e6, 1);
    const SystolicSpec int12 = systolicSpec(numerics::DataFormat::INT12);
    EXPECT_NEAR(int12.pj_per_mac, 0.71, 1e-9);
    EXPECT_NEAR(int12.clock_hz, 1e9, 1);
    const SystolicSpec fmac = systolicSpec(numerics::DataFormat::FMAC);
    EXPECT_NEAR(fmac.pj_per_mac, 0.11, 1e-9);
    EXPECT_LT(fmac.mm2_per_mac, 0.0); // not reported in the paper
}

TEST(SystolicSpecDeath, MirageIsNotSystolic)
{
    EXPECT_EXIT(systolicSpec(numerics::DataFormat::MirageBfpRns),
                testing::ExitedWithCode(1), "not a systolic");
}

TEST(SystolicPerf, AllDataflowsSupported)
{
    SystolicConfig cfg;
    cfg.spec = systolicSpec(numerics::DataFormat::INT12);
    const SystolicPerfModel model(cfg);
    for (Dataflow df : {Dataflow::DF1, Dataflow::DF2, Dataflow::DF3}) {
        const GemmPerf p = model.gemm({64, 64, 256}, df);
        EXPECT_TRUE(p.supported);
        EXPECT_GT(p.time_s, 0.0);
    }
}

TEST(SystolicPerf, OutputStationaryWinsForDeepGemms)
{
    SystolicConfig cfg;
    cfg.spec = systolicSpec(numerics::DataFormat::INT12);
    cfg.num_arrays = 1; // single array: no wave parallelism to hide reloads
    const SystolicPerfModel model(cfg);
    // Deep K with small M, N: DF3 streams K once per output tile while
    // DF1/DF2 reload tiles ceil(K/rows) times.
    const GemmShape deep{16, 65536, 32};
    const double t3 = model.gemm(deep, Dataflow::DF3).time_s;
    EXPECT_LT(t3, model.gemm(deep, Dataflow::DF1).time_s);
    EXPECT_LT(t3, model.gemm(deep, Dataflow::DF2).time_s);
}

TEST(SystolicPerf, MirageFasterThanSameGeometrySystolic)
{
    // Fig. 7a: Mirage at 10 GHz vs a 1 GHz systolic array of the same
    // array size is roughly an order of magnitude faster per layer.
    MirageConfig mcfg;
    const MiragePerfModel mirage(mcfg);
    SystolicConfig scfg;
    scfg.spec = systolicSpec(numerics::DataFormat::INT12); // 1 GHz
    scfg.rows = 16;
    scfg.cols = 32;
    scfg.num_arrays = 8;
    const SystolicPerfModel sa(scfg);

    const models::ModelShape net = models::alexNet();
    for (const auto &task : models::trainingTasks(net, 256)) {
        const double tm = mirage.best(task.shape, task.count).second.time_s;
        const double ts = sa.best(task.shape, task.count).second.time_s;
        EXPECT_LT(tm, ts) << task.layer;
    }
}

TEST(SystolicPerf, ClockScalesLatency)
{
    SystolicConfig fast;
    fast.spec = systolicSpec(numerics::DataFormat::INT8); // 1 GHz
    SystolicConfig slow;
    slow.spec = systolicSpec(numerics::DataFormat::FP32); // 500 MHz
    const GemmShape s{128, 128, 1024};
    const double t_fast =
        SystolicPerfModel(fast).gemm(s, Dataflow::DF1).time_s;
    const double t_slow =
        SystolicPerfModel(slow).gemm(s, Dataflow::DF1).time_s;
    EXPECT_NEAR(t_slow / t_fast, 2.0, 1e-9);
}

} // namespace
} // namespace arch
} // namespace mirage
