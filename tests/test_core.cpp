/**
 * @file
 * Integration tests for the top-level MirageAccelerator API and the
 * dataflow scheduler: emulated-vs-photonic equivalence, OPT policies, and
 * the end-to-end performance report plumbing.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/mirage.h"
#include "core/schedule.h"
#include "models/trainable.h"
#include "nn/data.h"
#include "nn/model.h"
#include "test_support.h"

namespace mirage {
namespace core {
namespace {

using AcceleratorSeeded = mirage::test::SeededTest;

TEST_F(AcceleratorSeeded, EmulatedGemmApproximatesFp32)
{
    MirageAccelerator acc;
    const int m = 8, k = 48, n = 6;
    const auto a = mirage::test::gaussianVector(rng, m * k);
    const auto b = mirage::test::gaussianVector(rng, k * n);
    const auto c = acc.gemm(a, b, m, k, n);
    // BFP(4,16) truncation on unnormalized Gaussian data carries a real
    // quantization error (that is the point of the format study); assert a
    // bounded relative Frobenius error rather than elementwise closeness.
    const auto ref = mirage::test::referenceGemm(a, b, m, k, n);
    double err2 = 0.0, ref2 = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
        const double d = c[i] - ref[i];
        err2 += d * d;
        ref2 += static_cast<double>(ref[i]) * ref[i];
    }
    EXPECT_LT(std::sqrt(err2), 0.35 * std::sqrt(ref2) + 1.0);
    EXPECT_GT(std::sqrt(ref2), 1.0); // the check is not vacuous
}

TEST_F(AcceleratorSeeded, PhotonicAndEmulatedPathsBitIdentical)
{
    // The flagship invariant at the API level: the full phase-domain
    // pipeline (noise off) returns exactly the integer-emulated result.
    MirageAccelerator acc;
    const int m = 5, k = 40, n = 4;
    const auto a = mirage::test::gaussianVector(rng, m * k);
    const auto b = mirage::test::gaussianVector(rng, k * n);
    const auto emu = acc.gemm(a, b, m, k, n, ExecutionMode::Emulated);
    const auto pho = acc.gemm(a, b, m, k, n, ExecutionMode::Photonic);
    ASSERT_EQ(emu.size(), pho.size());
    for (size_t i = 0; i < emu.size(); ++i)
        EXPECT_EQ(emu[i], pho[i]) << i;
}

TEST(Accelerator, TrainingReportScalesWithBatch)
{
    MirageAccelerator acc;
    const models::ModelShape net = models::alexNet();
    const PerformanceReport r64 = acc.estimateTraining(net, 64);
    const PerformanceReport r256 = acc.estimateTraining(net, 256);
    EXPECT_EQ(r256.macs, 4 * r64.macs);
    EXPECT_GT(r256.time_s, r64.time_s);
    EXPECT_GT(r256.edp, r64.edp);
    EXPECT_GT(r64.avg_spatial_util, 0.2);
    EXPECT_LE(r64.avg_spatial_util, 1.0);
}

TEST(Accelerator, InferenceIsOneThirdOfTrainingMacs)
{
    MirageAccelerator acc;
    const models::ModelShape net = models::resNet18();
    const PerformanceReport inf = acc.estimateInference(net, 8);
    const PerformanceReport trn = acc.estimateTraining(net, 8);
    EXPECT_EQ(trn.macs, 3 * inf.macs);
}

TEST(Accelerator, SummaryConsistentWithConfig)
{
    MirageAccelerator acc;
    const arch::MirageSummary s = acc.summary();
    EXPECT_NEAR(s.peak_macs_per_s, 40.96e12, 1e9);
    EXPECT_GT(s.pj_per_mac, 0.0);
    EXPECT_GT(s.power.total(), s.power.computeTotal());
}

TEST(Schedule, Opt2NeverSlowerThanFixed)
{
    MirageAccelerator acc;
    const auto tasks = models::trainingTasks(models::vgg16(), 32);
    const arch::MiragePerfModel &pm = acc.perfModel();
    const double t_opt2 =
        scheduleMirage(pm, tasks, arch::DataflowPolicy::OPT2).total_time_s;
    const double t_opt1 =
        scheduleMirage(pm, tasks, arch::DataflowPolicy::OPT1).total_time_s;
    const double t_df1 =
        scheduleMirage(pm, tasks, arch::DataflowPolicy::FixedDF1)
            .total_time_s;
    const double t_df2 =
        scheduleMirage(pm, tasks, arch::DataflowPolicy::FixedDF2)
            .total_time_s;
    EXPECT_LE(t_opt2, t_opt1 * (1 + 1e-12));
    EXPECT_LE(t_opt1, std::min(t_df1, t_df2) * (1 + 1e-12));
}

TEST(Schedule, SystolicOpt2CoversDf3)
{
    arch::SystolicConfig cfg;
    cfg.spec = arch::systolicSpec(numerics::DataFormat::INT12);
    const arch::SystolicPerfModel sa(cfg);
    const auto tasks = models::trainingTasks(models::alexNet(), 32);
    const ScheduleResult r =
        scheduleSystolic(sa, tasks, arch::DataflowPolicy::OPT2);
    EXPECT_EQ(r.tasks.size(), tasks.size());
    EXPECT_GT(r.total_time_s, 0.0);
}

TEST(ScheduleDeath, MirageRejectsDf3Policy)
{
    MirageAccelerator acc;
    const auto tasks = models::trainingTasks(models::alexNet(), 8);
    EXPECT_EXIT(scheduleMirage(acc.perfModel(), tasks,
                               arch::DataflowPolicy::FixedDF3),
                testing::ExitedWithCode(1), "DF3");
}

TEST(Accelerator, TrainingOnPhotonicBackendMatchesEmulated)
{
    // Whole-training-loop equivalence: every GEMM of every step routed
    // through the simulated photonic array produces the same trajectory
    // (losses and weights) as the integer-emulated backend.
    const nn::Dataset all = nn::makeGaussianClusters(96, 3, 6, 3.0f, 77);
    const nn::Dataset train = all.slice(0, 64);
    const nn::Dataset test = all.slice(64, 32);

    auto run = [&](core::ExecutionMode mode) {
        core::MirageAccelerator acc;
        Rng rng(5);
        auto model = models::makeMlp(6, 8, 3, acc.backend(mode), rng);
        nn::Sgd opt(0.05f);
        nn::TrainConfig cfg;
        cfg.epochs = 1;
        cfg.batch_size = 16;
        cfg.shuffle = false;
        const nn::TrainResult r =
            nn::trainClassifier(*model, opt, train, test, cfg);
        std::vector<float> weights;
        for (nn::Param *p : model->params())
            weights.insert(weights.end(), p->value.vec().begin(),
                           p->value.vec().end());
        return std::make_pair(r, weights);
    };

    const auto [r_emu, w_emu] = run(core::ExecutionMode::Emulated);
    const auto [r_pho, w_pho] = run(core::ExecutionMode::Photonic);
    EXPECT_EQ(r_emu.epoch_loss[0], r_pho.epoch_loss[0]);
    EXPECT_EQ(r_emu.final_test_accuracy, r_pho.final_test_accuracy);
    ASSERT_EQ(w_emu.size(), w_pho.size());
    for (size_t i = 0; i < w_emu.size(); ++i)
        ASSERT_EQ(w_emu[i], w_pho[i]) << i;
}

TEST(Schedule, ReportsPerTaskChoices)
{
    MirageAccelerator acc;
    const auto tasks = models::trainingTasks(models::alexNet(), 64);
    const ScheduleResult r = scheduleMirage(acc.perfModel(), tasks,
                                            arch::DataflowPolicy::OPT2);
    ASSERT_EQ(r.tasks.size(), tasks.size());
    double sum = 0.0;
    for (const ScheduledTask &t : r.tasks) {
        EXPECT_TRUE(t.dataflow == arch::Dataflow::DF1 ||
                    t.dataflow == arch::Dataflow::DF2);
        sum += t.perf.time_s;
    }
    EXPECT_NEAR(sum, r.total_time_s, 1e-12);
}

} // namespace
} // namespace core
} // namespace mirage
