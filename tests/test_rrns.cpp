/**
 * @file
 * Tests for redundant-RNS error detection and correction (paper Sec. VI-E):
 * clean decodes, detection of corrupted residues, and single-error
 * correction with two redundant moduli.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rns/rrns.h"
#include "test_support.h"

namespace mirage {
namespace rns {
namespace {

RedundantRns
makeDefaultRrns()
{
    // Base set {31, 32, 33} plus redundant moduli co-prime to the rest.
    return RedundantRns(mirage::test::paperModuli(), {35, 37});
}

TEST(Rrns, CleanDecode)
{
    const RedundantRns rrns = makeDefaultRrns();
    for (int64_t x : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{1234},
                      int64_t{-1234}, int64_t{16367}, int64_t{-16367}}) {
        const auto result = rrns.decode(rrns.encode(x));
        EXPECT_FALSE(result.error_detected) << x;
        EXPECT_EQ(result.value, x) << x;
    }
}

TEST(Rrns, DetectsSingleResidueError)
{
    const RedundantRns rrns = makeDefaultRrns();
    Rng rng(21);
    int detected = 0;
    const int trials = 500;
    for (int t = 0; t < trials; ++t) {
        const int64_t x = rng.uniformInt(-16000, 16000);
        ResidueVector r = rrns.encode(x);
        const size_t idx =
            static_cast<size_t>(rng.uniformInt(0, static_cast<int64_t>(r.size()) - 1));
        const uint64_t m = rrns.extendedSet().modulus(idx);
        const uint64_t delta = static_cast<uint64_t>(rng.uniformInt(1, static_cast<int64_t>(m) - 1));
        r[idx] = (r[idx] + delta) % m;
        const auto result = rrns.decode(r);
        if (result.error_detected)
            ++detected;
    }
    // A single-residue corruption virtually never lands back in the
    // legitimate range with 2 redundant moduli.
    EXPECT_GT(detected, trials * 95 / 100);
}

TEST(Rrns, CorrectsSingleResidueError)
{
    const RedundantRns rrns = makeDefaultRrns();
    Rng rng(22);
    int corrected_ok = 0;
    int attempted = 0;
    const int trials = 500;
    for (int t = 0; t < trials; ++t) {
        const int64_t x = rng.uniformInt(-16000, 16000);
        ResidueVector r = rrns.encode(x);
        const size_t idx =
            static_cast<size_t>(rng.uniformInt(0, static_cast<int64_t>(r.size()) - 1));
        const uint64_t m = rrns.extendedSet().modulus(idx);
        const uint64_t delta = static_cast<uint64_t>(rng.uniformInt(1, static_cast<int64_t>(m) - 1));
        r[idx] = (r[idx] + delta) % m;
        const auto result = rrns.decode(r);
        if (!result.error_detected)
            continue; // (rare) corruption aliased into legitimate range
        ++attempted;
        if (result.corrected && result.value == x)
            ++corrected_ok;
    }
    // With r = 2 redundant moduli, single errors must be correctable.
    EXPECT_EQ(corrected_ok, attempted);
    EXPECT_GT(attempted, 450);
}

TEST(Rrns, FaultyIndexDiagnosis)
{
    const RedundantRns rrns = makeDefaultRrns();
    const int64_t x = 4242;
    ResidueVector r = rrns.encode(x);
    r[2] = (r[2] + 7) % rrns.extendedSet().modulus(2);
    const auto result = rrns.decode(r);
    ASSERT_TRUE(result.error_detected);
    ASSERT_TRUE(result.corrected);
    EXPECT_EQ(result.value, x);
    ASSERT_EQ(result.faulty.size(), 1u);
    EXPECT_EQ(result.faulty[0], 2u);
}

TEST(Rrns, DoubleErrorIsDetectedButNotMiscorrected)
{
    const RedundantRns rrns = makeDefaultRrns();
    Rng rng(23);
    int silent_miscorrection = 0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
        const int64_t x = rng.uniformInt(-16000, 16000);
        ResidueVector r = rrns.encode(x);
        // Corrupt two distinct residues.
        const size_t i = 0, j = 3;
        r[i] = (r[i] + 5) % rrns.extendedSet().modulus(i);
        r[j] = (r[j] + 11) % rrns.extendedSet().modulus(j);
        const auto result = rrns.decode(r);
        EXPECT_TRUE(result.error_detected);
        // If the decoder claims a correction, it must not silently return a
        // wrong value claiming success on the original x; miscorrections to
        // *some* legitimate value are possible with only 2 redundant moduli,
        // but should be rare.
        if (result.corrected && result.value != x)
            ++silent_miscorrection;
    }
    EXPECT_LT(silent_miscorrection, trials / 4);
}

TEST(RrnsDeath, RequiresRedundantModuli)
{
    EXPECT_EXIT(RedundantRns(mirage::test::paperModuli(), {}),
                testing::ExitedWithCode(1), "redundant");
}

TEST(RrnsDeath, RejectsConflictingRedundantModuli)
{
    // 34 = 2 * 17 shares a factor with 32.
    EXPECT_EXIT(RedundantRns(mirage::test::paperModuli(), {34}),
                testing::ExitedWithCode(1), "co-prime");
}

} // namespace
} // namespace rns
} // namespace mirage
