/**
 * @file
 * Cross-module property sweeps: randomized invariants that tie the stack
 * together beyond the per-module unit tests — RNS round trips over many
 * generic (non-special) moduli sets, photonic/integer GEMM equivalence
 * across array geometries, BFP fuzzing across configurations, and
 * monotonicity properties of the analytic models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/energy_model.h"
#include "arch/perf_model.h"
#include "bfp/bfp_gemm.h"
#include "common/rng.h"
#include "photonic/mmvmu.h"
#include "rns/modular_gemm.h"
#include "test_support.h"

namespace mirage {
namespace {

using PropertySeeded = mirage::test::SeededTest;

TEST_F(PropertySeeded, GenericModuliSetsRoundTrip)
{
    // Many co-prime sets of varied size and magnitude; encode/decode and
    // both reverse algorithms must agree everywhere.
    const std::vector<std::vector<uint64_t>> sets = {
        {3, 5}, {7, 9, 11}, {13, 17, 19, 23}, {2, 3, 5, 7, 11, 13},
        {64, 63, 65}, {128, 127, 129}, {255, 256, 257, 253},
        {1021, 1024, 1023}, {5, 7, 9, 11, 13, 16},
    };
    for (const auto &moduli : sets) {
        const rns::RnsCodec codec{rns::ModuliSet(moduli)};
        const int64_t psi = static_cast<int64_t>(
            std::min<rns::uint128>(codec.set().psi(), int64_t{1} << 62));
        for (int t = 0; t < 500; ++t) {
            const int64_t x = rng.uniformInt(-psi, psi);
            const rns::ResidueVector r = codec.encode(x);
            ASSERT_EQ(codec.decode(r), x);
            ASSERT_EQ(codec.decodeMixedRadix(r), x);
        }
    }
}

TEST_F(PropertySeeded, RnsAdditionAndMultiplicationHomomorphism)
{
    // The RNS is closed under + and * (Sec. II-D): componentwise modular
    // ops on residues equal encode(op(x, y)) while in range.
    const rns::RnsCodec codec{mirage::test::paperModuli()};
    const rns::ModuliSet &set = codec.set();
    for (int t = 0; t < 2000; ++t) {
        const int64_t x = rng.uniformInt(-127, 127);
        const int64_t y = rng.uniformInt(-127, 127);
        const auto rx = codec.encode(x);
        const auto ry = codec.encode(y);
        rns::ResidueVector sum(set.count()), prod(set.count());
        for (size_t i = 0; i < set.count(); ++i) {
            sum[i] = rns::addMod(rx[i], ry[i], set.modulus(i));
            prod[i] = rns::mulMod(rx[i], ry[i], set.modulus(i));
        }
        ASSERT_EQ(codec.decode(sum), x + y);
        ASSERT_EQ(codec.decode(prod), x * y);
    }
}

/** Photonic/integer equivalence across geometries and moduli sets. */
class PhotonicEquivalenceSweep
    : public testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(PhotonicEquivalenceSweep, GemmBitExact)
{
    const auto [k_param, rows, g] = GetParam();
    const rns::ModuliSet set = rns::ModuliSet::special(k_param);
    const photonic::DeviceKit kit;
    photonic::RnsMmvmu array(set, rows, g, kit, 10e9);
    Rng rng(100 + k_param + rows + g);

    const int bm = (k_param == 5) ? 4 : 5;
    const int64_t q_max = (1 << bm) - 1;
    const int m = rows + 3, k_depth = g + 5, n = 4; // force edge tiles
    const auto a = mirage::test::randomIntVector(
        rng, static_cast<size_t>(m) * k_depth, -q_max, q_max);
    const auto b = mirage::test::randomIntVector(
        rng, static_cast<size_t>(k_depth) * n, -q_max, q_max);

    const auto c_photonic = photonicGemm(array, a, b, m, k_depth, n);
    const rns::RnsGemmEngine engine(set, /*check_range=*/false);
    const auto c_int = engine.gemm(a, b, m, k_depth, n);
    ASSERT_EQ(c_photonic, c_int);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PhotonicEquivalenceSweep,
    testing::Values(std::tuple<int, int, int>{5, 4, 8},
                    std::tuple<int, int, int>{5, 8, 16},
                    std::tuple<int, int, int>{5, 32, 16},
                    std::tuple<int, int, int>{6, 8, 16},
                    std::tuple<int, int, int>{6, 16, 32},
                    std::tuple<int, int, int>{7, 4, 8}),
    [](const testing::TestParamInfo<std::tuple<int, int, int>> &info) {
        std::string name = "k";
        name += std::to_string(std::get<0>(info.param));
        name += "_r";
        name += std::to_string(std::get<1>(info.param));
        name += "_g";
        name += std::to_string(std::get<2>(info.param));
        return name;
    });

TEST_F(PropertySeeded, BfpFuzzEncodeDecodeBounds)
{
    // For every (bm, g, rounding) and wild value scales: mantissas in
    // two's-complement range, reconstruction within one ULP of the shared
    // exponent, idempotent re-encoding.
    for (int bm : {2, 3, 4, 5, 8}) {
        for (int g : {1, 3, 16, 33}) {
            for (bfp::Rounding mode :
                 {bfp::Rounding::Truncate, bfp::Rounding::Nearest}) {
                const bfp::BfpConfig cfg{bm, g, mode};
                for (int t = 0; t < 50; ++t) {
                    std::vector<float> vals(static_cast<size_t>(g));
                    const double scale = std::pow(10.0, rng.uniformInt(-6, 6));
                    for (auto &v : vals)
                        v = static_cast<float>(rng.gaussian(0.0, scale));
                    const bfp::BfpBlock blk = bfp::encodeBlock(vals, cfg);
                    const double ulp =
                        std::ldexp(1.0, blk.exponent - cfg.bm);
                    for (size_t i = 0; i < vals.size(); ++i) {
                        ASSERT_LE(blk.mantissas[i], (1 << bm) - 1);
                        ASSERT_GE(blk.mantissas[i], -(1 << bm));
                        ASSERT_LE(std::fabs(blk.decode(i, bm) - vals[i]),
                                  ulp * (1.0 + 1e-9));
                    }
                }
            }
        }
    }
}

TEST_F(PropertySeeded, MirageLatencyMonotonicInShape)
{
    const arch::MiragePerfModel model{arch::MirageConfig{}};
    for (int t = 0; t < 200; ++t) {
        const arch::GemmShape s{rng.uniformInt(1, 2000),
                                rng.uniformInt(1, 2000),
                                rng.uniformInt(1, 2000)};
        const double base = model.gemm(s, arch::Dataflow::DF1).time_s;
        for (const arch::GemmShape &bigger :
             {arch::GemmShape{s.m * 2, s.k, s.n},
              arch::GemmShape{s.m, s.k * 2, s.n},
              arch::GemmShape{s.m, s.k, s.n * 2}}) {
            ASSERT_GE(model.gemm(bigger, arch::Dataflow::DF1).time_s,
                      base * (1.0 - 1e-12));
        }
    }
}

TEST(Property, EnergyModelMonotonicInGeometry)
{
    // More arrays / rows / wider groups never reduce total power or area.
    arch::MirageConfig base;
    const arch::MirageEnergyModel bm_model(base);
    const double p0 = bm_model.peakPower().total();
    const double a0 = bm_model.area().total();
    for (int factor : {2, 4}) {
        arch::MirageConfig big = base;
        big.num_arrays = base.num_arrays * factor;
        const arch::MirageEnergyModel model(big);
        EXPECT_GT(model.peakPower().total(), p0);
        EXPECT_GT(model.area().total(), a0);
    }
}

TEST(Property, AdcOverrideReproducesPaperConverterShare)
{
    // Sanity for the documented alternative accounting (EXPERIMENTS.md):
    // ~30 fJ/conversion brings the converter share to the paper's ~1 %
    // level and the total near 20 W.
    arch::MirageConfig cfg;
    cfg.adc_energy_override_j = 30e-15;
    const arch::PowerBreakdown p = arch::MirageEnergyModel(cfg).peakPower();
    EXPECT_LT((p.adc_w + p.dac_w) / p.total(), 0.10);
    EXPECT_NEAR(p.total(), 19.95, 5.0);
}

TEST(Property, LinkBudgetMonotonicInEverything)
{
    const photonic::DeviceKit kit;
    const auto power = [&](uint64_t m, int bits, int g, double snr) {
        return photonic::computeLinkBudget(kit, m, bits, g, 10e9, snr,
                                           photonic::LossPolicy::AllThrough)
            .laser_wall_w;
    };
    EXPECT_LT(power(33, 6, 16, 1.0), power(33, 6, 17, 1.0)); // g
    EXPECT_LT(power(33, 6, 16, 1.0), power(33, 6, 16, 2.0)); // SNR margin
    EXPECT_LT(power(31, 5, 16, 1.0), power(33, 6, 16, 1.0)); // modulus
}

} // namespace
} // namespace mirage
