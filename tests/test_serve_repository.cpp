/**
 * @file
 * serve/repository tests: versioned publish/acquire, hot-swap and
 * retirement semantics (ref-counted entries survive retirement), the
 * checkpoint publish path, and the LRU weight-programming cache's
 * hit/miss/eviction accounting against the arch cost models.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "models/trainable.h"
#include "models/zoo.h"
#include "serve/repository.h"
#include "test_support.h"

namespace {

using namespace mirage;

models::ModelShape
tinyShape(const std::string &name, int64_t m = 8, int64_t k = 8)
{
    models::ModelShape shape;
    shape.name = name;
    shape.layers = {{"fc", m, k, 1, 1, true}};
    return shape;
}

serve::ModelFactory
mlpFactory(int in, int hidden, int classes)
{
    return [=](nn::GemmBackend *backend, Rng &rng) {
        return models::makeMlp(in, hidden, classes, backend, rng);
    };
}

TEST(ModelRepository, PublishAcquireRoundTrip)
{
    serve::ModelRepository repo;
    EXPECT_EQ(repo.currentVersion("resnet"), 0);
    EXPECT_EQ(repo.publishShape("resnet", models::resNet18()), 1);
    EXPECT_EQ(repo.currentVersion("resnet"), 1);

    const auto entry = repo.acquire("resnet");
    EXPECT_EQ(entry->name, "resnet");
    EXPECT_EQ(entry->version, 1);
    EXPECT_FALSE(entry->functional());
    EXPECT_EQ(entry->weightElements(),
              models::resNet18().weightElements());
    EXPECT_EQ(repo.modelNames(), std::vector<std::string>{"resnet"});
}

TEST(ModelRepository, AcquireUnknownThrows)
{
    serve::ModelRepository repo;
    EXPECT_THROW(repo.acquire("ghost"), std::out_of_range);
    EXPECT_THROW(repo.acquire("ghost", 1), std::out_of_range);
}

TEST(ModelRepository, HotSwapKeepsOldVersionAliveUntilReleased)
{
    serve::ModelRepository repo;
    repo.publishShape("m", tinyShape("m"));
    const auto v1 = repo.acquire("m");

    EXPECT_EQ(repo.publishShape("m", tinyShape("m", 16, 16)), 2);
    EXPECT_EQ(repo.acquire("m")->version, 2);
    EXPECT_EQ(repo.liveVersions("m"), 2u);

    // Retire the old table reference; the in-flight shared_ptr still works.
    EXPECT_EQ(repo.retireOldVersions("m"), 1u);
    EXPECT_EQ(repo.liveVersions("m"), 1u);
    EXPECT_EQ(repo.retiredCount(), 1u);
    EXPECT_EQ(v1->version, 1);
    EXPECT_EQ(v1->shape.layers[0].m, 8);
    EXPECT_THROW(repo.acquire("m", 1), std::out_of_range);

    // Version numbers keep increasing after retirement.
    EXPECT_EQ(repo.publishShape("m", tinyShape("m")), 3);
}

TEST(ModelRepository, RetireRemovesSpecificVersion)
{
    serve::ModelRepository repo;
    repo.publishShape("m", tinyShape("m"));
    repo.publishShape("m", tinyShape("m"));
    EXPECT_FALSE(repo.retire("m", 7));
    EXPECT_TRUE(repo.retire("m", 2));
    EXPECT_EQ(repo.currentVersion("m"), 1);
    EXPECT_TRUE(repo.retire("m", 1));
    EXPECT_EQ(repo.currentVersion("m"), 0);
    EXPECT_TRUE(repo.modelNames().empty());
}

TEST(ModelRepository, FunctionalPublishBuildsDeterministicNet)
{
    serve::ModelRepository repo;
    models::ModelShape shape = tinyShape("mlp", 4, 6);
    repo.publishModel("mlp", shape, mlpFactory(6, 8, 4));
    const auto entry = repo.acquire("mlp");
    ASSERT_TRUE(entry->functional());
    ASSERT_NE(entry->accel, nullptr);
    EXPECT_FALSE(entry->net->namedParams().empty());
}

TEST(ModelRepository, CheckpointPublishRestoresWeights)
{
    // Train-free check: snapshot a source net, publish it into a repo,
    // and verify the served net produces the source's exact outputs.
    core::MirageAccelerator accel{arch::MirageConfig{}};
    Rng rng(42);
    std::unique_ptr<nn::Sequential> source =
        models::makeMlp(6, 8, 4, accel.backend(), rng);
    const serve::Checkpoint ckpt = serve::snapshot(*source, "mlp");

    serve::ModelRepository repo;
    repo.publishCheckpoint("mlp", ckpt, tinyShape("mlp", 4, 6),
                           mlpFactory(6, 8, 4));
    const auto entry = repo.acquire("mlp");

    nn::Tensor x({3, 6});
    Rng data_rng(7);
    for (int64_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(data_rng.gaussian());
    const nn::Tensor expect = source->forward(x, false);
    const nn::Tensor got = entry->net->forward(x, false);
    ASSERT_EQ(got.size(), expect.size());
    for (int64_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(got[i], expect[i]);
}

TEST(ModelRepository, CheckpointPublishWithWrongFactoryThrows)
{
    core::MirageAccelerator accel{arch::MirageConfig{}};
    Rng rng(42);
    std::unique_ptr<nn::Sequential> source =
        models::makeMlp(6, 8, 4, accel.backend(), rng);
    const serve::Checkpoint ckpt = serve::snapshot(*source, "mlp");

    serve::ModelRepository repo;
    EXPECT_THROW(repo.publishCheckpoint("mlp", ckpt, tinyShape("mlp"),
                                        mlpFactory(6, 32, 4)),
                 serve::CheckpointError);
}

// ---------------------------------------------------------------------------
// WeightCache
// ---------------------------------------------------------------------------

TEST(WeightCache, MissChargesArchModelCostAndHitIsFree)
{
    const arch::MirageConfig cfg;
    serve::WeightCache cache(2, cfg);
    const int64_t elems = models::alexNet().weightElements();

    const serve::TileProgramCost miss = cache.acquire("alex@v1", elems);
    EXPECT_FALSE(miss.hit);
    EXPECT_GE(miss.tile, 0);
    EXPECT_LT(miss.tile, 2);
    EXPECT_DOUBLE_EQ(miss.time_s,
                     arch::MiragePerfModel(cfg).programmingTimeS(elems));
    EXPECT_DOUBLE_EQ(miss.energy_j,
                     arch::MirageEnergyModel(cfg).programmingEnergyJ(elems));
    EXPECT_GT(miss.energy_j, 0.0);
    EXPECT_GT(miss.time_s, 0.0);

    const serve::TileProgramCost hit = cache.acquire("alex@v1", elems);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.tile, miss.tile);
    EXPECT_DOUBLE_EQ(hit.time_s, 0.0);
    EXPECT_DOUBLE_EQ(hit.energy_j, 0.0);

    const serve::WeightCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_DOUBLE_EQ(stats.programming_energy_j, miss.energy_j);
}

TEST(WeightCache, LruEvictionPicksLeastRecentlyUsedTile)
{
    serve::WeightCache cache(2, arch::MirageConfig{});
    const serve::TileProgramCost a = cache.acquire("a", 100);
    const serve::TileProgramCost b = cache.acquire("b", 100);
    EXPECT_NE(a.tile, b.tile); // empty slot preferred over eviction

    cache.acquire("a", 100);                               // a is now MRU
    const serve::TileProgramCost c = cache.acquire("c", 100);
    EXPECT_EQ(c.tile, b.tile); // b was LRU
    EXPECT_TRUE(cache.acquire("a", 100).hit);
    EXPECT_FALSE(cache.acquire("b", 100).hit); // b was evicted
    EXPECT_EQ(cache.stats().evictions, 2u);    // c evicted b, b evicted a|c
}

TEST(WeightCache, InvalidateForgetsRetiredVersionEverywhere)
{
    serve::WeightCache cache(3, arch::MirageConfig{});
    cache.acquire("m@v1", 64);
    EXPECT_TRUE(cache.acquire("m@v1", 64).hit);
    cache.invalidate("m@v1");
    EXPECT_FALSE(cache.acquire("m@v1", 64).hit);
}

TEST(WeightCache, ZeroTilesRejected)
{
    EXPECT_THROW(serve::WeightCache(0, arch::MirageConfig{}),
                 std::invalid_argument);
}

TEST(WeightCache, InvalidateTileForgetsOnlyThatTile)
{
    // Tile failure drops one tile's analog weights; the other tiles'
    // residency must be untouched.
    serve::WeightCache cache(3, arch::MirageConfig{});
    const serve::TileProgramCost a = cache.acquire("a", 64);
    const serve::TileProgramCost b = cache.acquire("b", 64);
    cache.acquire("c", 64);

    cache.invalidateTile(b.tile);
    EXPECT_TRUE(cache.acquire("a", 64).hit);
    EXPECT_TRUE(cache.acquire("c", 64).hit);
    const serve::TileProgramCost b2 = cache.acquire("b", 64);
    EXPECT_FALSE(b2.hit) << "dead tile's entry must be forgotten";
    EXPECT_GT(b2.time_s, 0.0) << "reprogramming is charged in full";
    (void)a;
}

TEST(WeightCache, InvalidateTileDoesNotDisturbOtherTilesLruOrder)
{
    serve::WeightCache cache(3, arch::MirageConfig{});
    const serve::TileProgramCost a = cache.acquire("a", 64); // LRU
    cache.acquire("b", 64);
    const serve::TileProgramCost b = cache.acquire("b", 64);
    cache.acquire("c", 64); // MRU
    ASSERT_TRUE(b.hit);

    // Killing b's tile empties that slot; a new model must land there
    // (empty slot preferred) without evicting anyone.
    cache.invalidateTile(b.tile);
    const uint64_t evictions_before = cache.stats().evictions;
    const serve::TileProgramCost d = cache.acquire("d", 64);
    EXPECT_EQ(d.tile, b.tile);
    EXPECT_EQ(cache.stats().evictions, evictions_before)
        << "filling the emptied slot is not an eviction";

    // The surviving tiles kept their LRU order: the next eviction victim
    // is still a (older than c and d), never c.
    const serve::TileProgramCost e = cache.acquire("e", 64);
    EXPECT_EQ(e.tile, a.tile);
    EXPECT_TRUE(cache.acquire("c", 64).hit);
    EXPECT_FALSE(cache.acquire("a", 64).hit);
}

TEST(WeightCache, InvalidateTileLeavesHitRateAccountingAlone)
{
    // Invalidation is not a request: hits/misses/evictions and the
    // charged programming cost must not move until the next acquire.
    serve::WeightCache cache(2, arch::MirageConfig{});
    const serve::TileProgramCost a = cache.acquire("a", 64);
    cache.acquire("a", 64);
    const serve::WeightCache::Stats before = cache.stats();

    cache.invalidateTile(a.tile);
    const serve::WeightCache::Stats after = cache.stats();
    EXPECT_EQ(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);
    EXPECT_EQ(after.evictions, before.evictions);
    EXPECT_DOUBLE_EQ(after.programming_time_s, before.programming_time_s);
    EXPECT_DOUBLE_EQ(after.programming_energy_j,
                     before.programming_energy_j);
    EXPECT_DOUBLE_EQ(after.hitRate(), before.hitRate());

    // The re-acquire after the failure is an ordinary miss.
    EXPECT_FALSE(cache.acquire("a", 64).hit);
    EXPECT_EQ(cache.stats().misses, before.misses + 1);
}

TEST(WeightCache, InvalidateTileIgnoresOutOfRangeTiles)
{
    serve::WeightCache cache(2, arch::MirageConfig{});
    cache.acquire("a", 64);
    cache.invalidateTile(-1);
    cache.invalidateTile(2);
    cache.invalidateTile(99);
    EXPECT_TRUE(cache.acquire("a", 64).hit);
}

TEST(WeightCache, DistinctVersionsAreDistinctResidencies)
{
    serve::WeightCache cache(2, arch::MirageConfig{});
    cache.acquire("m@v1", 64);
    EXPECT_FALSE(cache.acquire("m@v2", 64).hit);
    EXPECT_TRUE(cache.acquire("m@v1", 64).hit);
}

} // namespace
