/**
 * @file
 * Unit and property tests for the RNS core: modular primitives, moduli set
 * validation, Eq. (13) capacity checks, CRT/mixed-radix conversion round
 * trips, and the modular GEMM golden model.
 */

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "obs/fidelity.h"
#include "obs/metrics.h"
#include "rns/conversion.h"
#include "rns/modular_gemm.h"
#include "rns/moduli_set.h"
#include "rns/modulus.h"
#include "test_support.h"

namespace mirage {
namespace rns {
namespace {

using RnsSeeded = mirage::test::SeededTest;

TEST(Modulus, AddSubMul)
{
    EXPECT_EQ(addMod(30, 5, 31), 4u);
    EXPECT_EQ(addMod(0, 0, 31), 0u);
    EXPECT_EQ(subMod(3, 5, 31), 29u);
    EXPECT_EQ(mulMod(30, 30, 31), 1u); // (-1)^2 = 1
    EXPECT_EQ(mulMod(12345678901ull, 98765432109ull, 1000000007ull),
              (static_cast<unsigned __int128>(12345678901ull) *
               98765432109ull) % 1000000007ull);
}

TEST(Modulus, ReduceSigned)
{
    EXPECT_EQ(reduceSigned(0, 31), 0u);
    EXPECT_EQ(reduceSigned(-1, 31), 30u);
    EXPECT_EQ(reduceSigned(-31, 31), 0u);
    EXPECT_EQ(reduceSigned(-32, 31), 30u);
    EXPECT_EQ(reduceSigned(64, 31), 2u);
}

TEST(Modulus, InvModAgainstBruteForce)
{
    for (uint64_t m : {3ull, 31ull, 32ull, 33ull, 257ull}) {
        for (uint64_t a = 1; a < m; ++a) {
            if (gcd64(a, m) != 1)
                continue;
            const uint64_t inv = invMod(a, m);
            EXPECT_EQ(mulMod(a, inv, m), 1u) << "a=" << a << " m=" << m;
        }
    }
}

TEST(ModuliSet, SpecialSetK5)
{
    const ModuliSet set = ModuliSet::special(5);
    ASSERT_EQ(set.count(), 3u);
    EXPECT_EQ(set.modulus(0), 31u);
    EXPECT_EQ(set.modulus(1), 32u);
    EXPECT_EQ(set.modulus(2), 33u);
    // M = 2^{3k} - 2^k = 32768 - 32 = 32736.
    EXPECT_EQ(static_cast<uint64_t>(set.dynamicRange()), 32736u);
    EXPECT_EQ(static_cast<uint64_t>(set.psi()), 16367u);
    EXPECT_EQ(set.maxConverterBits(), 6); // ceil(log2 33)
    EXPECT_EQ(set.converterBits(0), 5);
    EXPECT_EQ(set.converterBits(1), 5);
    EXPECT_EQ(set.converterBits(2), 6);
}

TEST(ModuliSet, Eq13CapacityMatchesPaper)
{
    // Paper Sec. VI-A1: kmin = 4 for bm=3, kmin = 5 for bm=4, kmin = 6 for
    // bm=5 (with g = 16).
    EXPECT_EQ(ModuliSet::minSpecialK(3, 16), 4);
    EXPECT_EQ(ModuliSet::minSpecialK(4, 16), 5);
    EXPECT_EQ(ModuliSet::minSpecialK(5, 16), 6);

    EXPECT_TRUE(ModuliSet::special(5).canHoldDotProduct(4, 16));
    EXPECT_FALSE(ModuliSet::special(5).canHoldDotProduct(5, 16));
    // bm = 5 needs k = 6 up to g = 64 (paper Fig. 5 discussion).
    EXPECT_TRUE(ModuliSet::special(6).canHoldDotProduct(5, 64));
}

TEST(ModuliSet, SignedRange)
{
    const ModuliSet set = ModuliSet::special(5);
    EXPECT_TRUE(set.inSignedRange(16367));
    EXPECT_TRUE(set.inSignedRange(-16367));
    EXPECT_FALSE(set.inSignedRange(16368));
    EXPECT_FALSE(set.inSignedRange(-16368));
}

TEST(ModuliSetDeath, RejectsNonCoprime)
{
    EXPECT_EXIT(ModuliSet({6, 9}), testing::ExitedWithCode(1), "co-prime");
}

TEST(ModuliSetDeath, RejectsTrivialModulus)
{
    EXPECT_EXIT(ModuliSet({1, 5}), testing::ExitedWithCode(1), "modulus");
}

TEST(RnsCodec, EncodeDecodeRoundTripExhaustiveSmallSet)
{
    const RnsCodec codec{mirage::test::tinyModuli()}; // M = 60, psi = 29
    for (int64_t x = -29; x <= 29; ++x) {
        const ResidueVector r = codec.encode(x);
        EXPECT_EQ(codec.decode(r), x);
        EXPECT_EQ(codec.decodeMixedRadix(r), x);
    }
}

TEST(RnsCodec, RoundTripSpecialSetBoundaries)
{
    const RnsCodec codec{ModuliSet::special(5)};
    for (int64_t x : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{16367},
                      int64_t{-16367}, int64_t{12345}, int64_t{-9876}}) {
        EXPECT_EQ(codec.decode(codec.encode(x)), x) << "x=" << x;
    }
}

TEST_F(RnsSeeded, CrtMatchesMixedRadixRandomized)
{
    for (int k : {4, 5, 6, 8}) {
        const RnsCodec codec{ModuliSet::special(k)};
        const int64_t psi = static_cast<int64_t>(codec.set().psi());
        for (int t = 0; t < 2000; ++t) {
            const int64_t x = rng.uniformInt(-psi, psi);
            const ResidueVector r = codec.encode(x);
            EXPECT_EQ(codec.decode(r), x);
            EXPECT_EQ(codec.decodeMixedRadix(r), codec.decode(r));
        }
    }
}

TEST_F(RnsSeeded, LargeGenericSet)
{
    // Five co-prime moduli, M ~ 2^38.
    const RnsCodec codec{mirage::test::wideModuli()};
    const int64_t psi = static_cast<int64_t>(codec.set().psi());
    for (int t = 0; t < 1000; ++t) {
        const int64_t x = rng.uniformInt(-psi, psi);
        EXPECT_EQ(codec.decode(codec.encode(x)), x);
        EXPECT_EQ(codec.decodeMixedRadix(codec.encode(x)), x);
    }
}

TEST(RnsCodec, UnsignedDecode)
{
    const RnsCodec codec{ModuliSet::special(5)};
    for (uint64_t x : {0ull, 1ull, 31ull, 32ull, 33ull, 32735ull}) {
        EXPECT_EQ(static_cast<uint64_t>(
                      codec.decodeUnsigned(codec.encodeUnsigned(x))),
                  x);
    }
}

TEST_F(RnsSeeded, ModularGemmMatchesExactIntegerGemm)
{
    const ModuliSet set = mirage::test::paperModuli();
    const RnsGemmEngine engine(set);
    const int m = 5, k = 16, n = 7;
    // BFP mantissa range for bm=4: [-15, 15]; Eq. (13) guarantees fit.
    const auto a =
        mirage::test::randomIntVector(rng, static_cast<size_t>(m) * k, -15, 15);
    const auto b =
        mirage::test::randomIntVector(rng, static_cast<size_t>(k) * n, -15, 15);

    const auto c = engine.gemm(a, b, m, k, n); // internally cross-checked
    EXPECT_EQ(c, mirage::test::referenceGemm(a, b, m, k, n));
}

TEST(ModularGemmDeath, DetectsRangeOverflow)
{
    // g = 256 with bm = 4 needs log2(M) >= 2*5 + 8 - 1 = 17 > 14.99 for k=5;
    // adversarial all-max inputs overflow and the engine must flag it.
    const ModuliSet set = ModuliSet::special(5);
    const RnsGemmEngine engine(set);
    const int m = 1, k = 256, n = 1;
    std::vector<int64_t> a(k, 15), b(k, 15);
    EXPECT_EXIT(engine.gemm(a, b, m, k, n), testing::ExitedWithCode(1),
                "dynamic range exceeded");
}

TEST_F(RnsSeeded, ModularDotSmallAndLargeModulusPathsAgree)
{
    const int len = 64;
    std::vector<Residue> a(len), b(len);
    const uint64_t small_m = 33;
    const uint64_t large_m = (uint64_t{1} << 31) - 1; // forces mulMod path
    for (int i = 0; i < len; ++i) {
        a[i] = rng.uniformInt(0, 32);
        b[i] = rng.uniformInt(0, 32);
    }
    // Compute with both moduli; cross-check small path against naive.
    uint64_t naive_small = 0;
    for (int i = 0; i < len; ++i)
        naive_small = (naive_small + a[i] * b[i]) % small_m;
    EXPECT_EQ(modularDot(a.data(), b.data(), len, small_m), naive_small);

    uint64_t naive_large = 0;
    for (int i = 0; i < len; ++i)
        naive_large = (naive_large + a[i] * b[i]) % large_m;
    EXPECT_EQ(modularDot(a.data(), b.data(), len, large_m), naive_large);
}

TEST(ModularDot, OverflowEdgeAtSmallPathBounds)
{
    // The raw-accumulation fast path is gated on modulus < 2^21 and
    // len < 2^22; at the extreme admissible corner (maximal residues of the
    // largest small-path modulus, longest dot) the 64-bit accumulator is
    // within a factor ~2 of wrapping. Exercise exactly that corner with a
    // length big enough that a wrong bound would produce a detectably
    // wrong remainder, and cross-check against the always-safe mulMod path
    // via a modulus just past the gate.
    const uint64_t m_small = (uint64_t{1} << 21) - 1; // largest fast-path m
    const uint64_t m_large = uint64_t{1} << 21;       // forces safe path
    const int len = 1 << 14;
    const Residue max_r = m_small - 1;
    std::vector<Residue> a(static_cast<size_t>(len), max_r);
    std::vector<Residue> b(static_cast<size_t>(len), max_r);

    // len * (m-1)^2 for the fast path: must fit in 64 bits (the bound the
    // debug assert proves per call).
    const uint64_t prod = max_r * max_r;
    ASSERT_LE(static_cast<uint64_t>(len), UINT64_MAX / prod);

    // Closed form: len * (m-1)^2 mod m, with (m-1)^2 ≡ 1 (mod m).
    obs::fidelity::resetForTest();
    EXPECT_EQ(modularDot(a.data(), b.data(), len, m_small),
              static_cast<uint64_t>(len) % m_small);

    // The always-on margin accounting (the promoted debug assert) must
    // have observed exactly this corner: worst = (2^21-2)^2 * 2^14 uses
    // 56 of 64 accumulator bits, leaving 8 bits of headroom.
    const obs::Gauge *margin = obs::MetricsRegistry::global().findGauge(
        "fidelity.rns.overflow_margin_min");
    ASSERT_NE(margin, nullptr);
    EXPECT_EQ(margin->value(), 8);
    const obs::Counter *checks = obs::MetricsRegistry::global().findCounter(
        "fidelity.rns.dot_checks");
    ASSERT_NE(checks, nullptr);
    EXPECT_GE(checks->value(), 1u);
    const obs::Counter *risk = obs::MetricsRegistry::global().findCounter(
        "fidelity.rns.overflow_risk");
    ASSERT_NE(risk, nullptr);
    EXPECT_EQ(risk->value(), 0u);

    // Safe-path modulus with residues m_small - 1: same closed form via
    // ((m_large - 2)^2 mod m_large) = 4 per term.
    EXPECT_EQ(modularDot(a.data(), b.data(), len, m_large),
              (4 * static_cast<uint64_t>(len)) % m_large);
}

/** Property sweep: GEMM over several special sets and shapes. */
class RnsGemmSweep : public testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RnsGemmSweep, ResidueGemmMatchesInt64)
{
    const auto [k_param, g] = GetParam();
    const ModuliSet set = ModuliSet::special(k_param);
    const int bm = (k_param == 4) ? 3 : (k_param == 5 ? 4 : 5);
    ASSERT_TRUE(set.canHoldDotProduct(bm, g));

    Rng rng(100 + k_param * 10 + g);
    const RnsGemmEngine engine(set);
    const int m = 4, n = 3;
    const int64_t q_max = (1 << bm) - 1;
    const auto a = mirage::test::randomIntVector(
        rng, static_cast<size_t>(m) * g, -q_max, q_max);
    const auto b = mirage::test::randomIntVector(
        rng, static_cast<size_t>(g) * n, -q_max, q_max);
    // The engine also cross-checks internally; compare the whole result
    // against the golden int64 GEMM.
    const auto c = engine.gemm(a, b, m, g, n);
    EXPECT_EQ(c, mirage::test::referenceGemm(a, b, m, g, n));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSets, RnsGemmSweep,
    // (k, g) pairs respecting Eq. (13) for bm(k) = {3, 4, 5}: k = 4 only
    // reaches g = 16 with bm = 3 (log2 M = 11.99 < 12 needed at g = 32).
    testing::Values(std::tuple<int, int>{4, 4}, std::tuple<int, int>{4, 16},
                    std::tuple<int, int>{5, 4}, std::tuple<int, int>{5, 16},
                    std::tuple<int, int>{5, 32}, std::tuple<int, int>{6, 16},
                    std::tuple<int, int>{6, 32}, std::tuple<int, int>{6, 64}),
    [](const testing::TestParamInfo<std::tuple<int, int>> &info) {
        std::string name = "k";
        name += std::to_string(std::get<0>(info.param));
        name += "_g";
        name += std::to_string(std::get<1>(info.param));
        return name;
    });

} // namespace
} // namespace rns
} // namespace mirage
