/**
 * @file
 * Unit tests for the common utility layer: math helpers, RNG determinism,
 * unit conversions, the table printer, and the leveled logging macros.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"

namespace mirage {
namespace {

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0);
    EXPECT_EQ(ceilDiv(1, 4), 1);
    EXPECT_EQ(ceilDiv(4, 4), 1);
    EXPECT_EQ(ceilDiv(5, 4), 2);
    EXPECT_EQ(ceilDiv(1023, 32), 32);
    EXPECT_EQ(ceilDiv(1024, 32), 32);
    EXPECT_EQ(ceilDiv(1025, 32), 33);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(roundUp(0, 16), 0);
    EXPECT_EQ(roundUp(1, 16), 16);
    EXPECT_EQ(roundUp(16, 16), 16);
    EXPECT_EQ(roundUp(17, 16), 32);
}

TEST(MathUtil, Ilog2)
{
    EXPECT_EQ(ilog2(1), 0);
    EXPECT_EQ(ilog2(2), 1);
    EXPECT_EQ(ilog2(3), 1);
    EXPECT_EQ(ilog2(4), 2);
    EXPECT_EQ(ilog2(uint64_t{1} << 40), 40);
}

TEST(MathUtil, BitsFor)
{
    EXPECT_EQ(bitsFor(1), 1);
    EXPECT_EQ(bitsFor(2), 1);
    EXPECT_EQ(bitsFor(3), 2);
    EXPECT_EQ(bitsFor(31), 5);
    EXPECT_EQ(bitsFor(32), 5);
    EXPECT_EQ(bitsFor(33), 6); // ceil(log2 33) = 6 (paper Sec. V-B2)
}

TEST(MathUtil, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(32));
    EXPECT_FALSE(isPowerOfTwo(33));
}

TEST(MathUtil, Gcd)
{
    EXPECT_EQ(gcd64(31, 32), 1u);
    EXPECT_EQ(gcd64(32, 33), 1u);
    EXPECT_EQ(gcd64(12, 18), 6u);
    EXPECT_EQ(gcd64(0, 7), 7u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(99);
    const uint64_t first = a.nextU64();
    a.nextU64();
    a.reseed(99);
    EXPECT_EQ(a.nextU64(), first);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(42);
    double sum = 0, sum_sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian(2.0, 3.0);
        sum += v;
        sum_sq += v * v;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Units, DbRoundTrip)
{
    EXPECT_NEAR(units::fromDb(units::toDb(123.0)), 123.0, 1e-9);
    EXPECT_NEAR(units::toDb(10.0), 10.0, 1e-12);
    EXPECT_NEAR(units::toDb(100.0), 20.0, 1e-12);
}

TEST(Units, TransmissionFromLoss)
{
    EXPECT_NEAR(units::transmissionFromLossDb(0.0), 1.0, 1e-12);
    EXPECT_NEAR(units::transmissionFromLossDb(3.0103), 0.5, 1e-4);
    EXPECT_NEAR(units::transmissionFromLossDb(10.0), 0.1, 1e-12);
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    TablePrinter t({"a", "bbbb"});
    t.addRow({"xx", "y"});
    t.addRow({"1", "22"});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("a   bbbb"), std::string::npos);
    EXPECT_NE(s.find("xx  y"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    TablePrinter t({"h1", "h2"});
    t.addRow({"v1", "v2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "h1,h2\nv1,v2\n");
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatSig(1234.5, 3), "1.23e+03");
}

// ---------------------------------------------------------------------------
// Leveled logging
// ---------------------------------------------------------------------------

/** Captures MIRAGE_LOG output and restores level + sink on scope exit. */
struct LogCapture
{
    LogCapture() : prev_level(logLevel())
    {
        prev_stream = detail::setLogStream(&os);
    }
    ~LogCapture()
    {
        detail::setLogStream(prev_stream);
        setLogLevel(prev_level);
    }
    std::string text() const { return os.str(); }

    std::ostringstream os;
    LogLevel prev_level;
    std::ostream *prev_stream;
};

TEST(Logging, ParseLogLevelAcceptsNamesAndNumbers)
{
    LogLevel out = LogLevel::Info;
    const std::pair<const char *, LogLevel> good[] = {
        {"error", LogLevel::Error}, {"0", LogLevel::Error},
        {"warn", LogLevel::Warn},   {"WARNING", LogLevel::Warn},
        {"1", LogLevel::Warn},      {"info", LogLevel::Info},
        {"Info", LogLevel::Info},   {"2", LogLevel::Info},
        {"debug", LogLevel::Debug}, {"DEBUG", LogLevel::Debug},
        {"3", LogLevel::Debug},
    };
    for (const auto &[value, expected] : good) {
        EXPECT_TRUE(parseLogLevel(value, &out)) << value;
        EXPECT_EQ(out, expected) << value;
    }

    std::string error;
    for (const char *bad : {"", "verbose", "4", "-1", "1.5", "warn "}) {
        error.clear();
        EXPECT_FALSE(parseLogLevel(bad, &out, &error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
    EXPECT_FALSE(parseLogLevel(nullptr, &out, &error));
}

TEST(Logging, ThresholdFiltersBySeverity)
{
    LogCapture capture;
    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));

    MIRAGE_LOG(Error, "e-message");
    MIRAGE_LOG(Warn, "w-message");
    MIRAGE_LOG(Info, "i-message");
    MIRAGE_LOG(Debug, "d-message");
    const std::string text = capture.text();
    EXPECT_NE(text.find("error: e-message"), std::string::npos) << text;
    EXPECT_NE(text.find("warn: w-message"), std::string::npos);
    EXPECT_EQ(text.find("i-message"), std::string::npos);
    EXPECT_EQ(text.find("d-message"), std::string::npos);
}

TEST(Logging, InfoKeepsBareFormatOthersCarrySourceLocation)
{
    LogCapture capture;
    setLogLevel(LogLevel::Debug);
    MIRAGE_INFORM("plain status");
    MIRAGE_WARN("watch out");
    MIRAGE_LOG(Debug, "details");
    const std::string text = capture.text();
    EXPECT_NE(text.find("info: plain status\n"), std::string::npos) << text;
    // Warn/Debug append "(file:line)"; Info does not.
    EXPECT_NE(text.find("warn: watch out ("), std::string::npos);
    EXPECT_NE(text.find("debug: details ("), std::string::npos);
    EXPECT_NE(text.find("test_common.cpp:"), std::string::npos);
    EXPECT_EQ(text.find("info: plain status ("), std::string::npos);
}

TEST(Logging, ArgumentsAreNotFormattedBelowThreshold)
{
    LogCapture capture;
    setLogLevel(LogLevel::Error);
    int evaluations = 0;
    const auto expensive = [&] {
        ++evaluations;
        return "formatted";
    };
    MIRAGE_LOG(Debug, "msg ", expensive());
    EXPECT_EQ(evaluations, 0)
        << "MIRAGE_LOG formatted arguments for a filtered level";
    MIRAGE_LOG(Error, "msg ", expensive());
    EXPECT_EQ(evaluations, 1);
}

} // namespace
} // namespace mirage
