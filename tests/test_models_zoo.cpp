/**
 * @file
 * Tests for the DNN shape zoo: layer counts and MAC totals against the
 * published model sizes, plus the training-task expansion.
 */

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace mirage {
namespace models {
namespace {

TEST(Zoo, AlexNetHasEightLayers)
{
    // Fig. 7a plots 8 AlexNet layers (5 conv + 3 FC).
    EXPECT_EQ(alexNet().layers.size(), 8u);
}

TEST(Zoo, Vgg16HasSixteenLayers)
{
    EXPECT_EQ(vgg16().layers.size(), 16u); // 13 conv + 3 FC
}

TEST(Zoo, ResNet18LayerCount)
{
    // conv1 + 4 basic convs (layer1) + 3 stages x 5 (2 blocks + downsample)
    // + fc = 21 GEMM layers.
    EXPECT_EQ(resNet18().layers.size(), 21u);
}

TEST(Zoo, ResNet50LayerCount)
{
    // conv1 + 16 bottlenecks x 3 + 4 downsamples + fc = 54 GEMM layers.
    EXPECT_EQ(resNet50().layers.size(), 54u);
}

TEST(Zoo, ForwardMacsMatchPublishedModelSizes)
{
    // Published single-sample forward MACs (ungrouped conv variants):
    // AlexNet ~1.1 G, ResNet18 ~1.8 G, ResNet50 ~4.1 G, VGG16 ~15.5 G,
    // MobileNetV2 ~0.3 G.
    EXPECT_NEAR(static_cast<double>(alexNet().forwardMacs(1)), 1.1e9, 0.3e9);
    EXPECT_NEAR(static_cast<double>(resNet18().forwardMacs(1)), 1.8e9,
                0.3e9);
    EXPECT_NEAR(static_cast<double>(resNet50().forwardMacs(1)), 4.1e9,
                0.8e9);
    EXPECT_NEAR(static_cast<double>(vgg16().forwardMacs(1)), 15.5e9, 1.5e9);
    EXPECT_NEAR(static_cast<double>(mobileNetV2().forwardMacs(1)), 0.32e9,
                0.15e9);
}

TEST(Zoo, YoloAndTransformerMacsPlausible)
{
    // YOLOv2 at 416x416: 10-20 GMAC; 12-layer/768-d transformer at seq 128:
    // ~10-14 GMAC per sample.
    const double yolo = static_cast<double>(yoloV2().forwardMacs(1));
    EXPECT_GT(yolo, 8e9);
    EXPECT_LT(yolo, 22e9);
    const double tf = static_cast<double>(transformer().forwardMacs(1));
    EXPECT_GT(tf, 8e9);
    EXPECT_LT(tf, 16e9);
}

TEST(Zoo, TrainingMacsAreRoughlyThreeTimesForward)
{
    for (const ModelShape &m : allModels()) {
        const double fwd = static_cast<double>(m.forwardMacs(4));
        const double train = static_cast<double>(m.trainingMacs(4));
        EXPECT_NEAR(train / fwd, 3.0, 1e-9) << m.name;
    }
}

TEST(Zoo, MacsScaleLinearlyWithBatch)
{
    for (const ModelShape &m : allModels()) {
        EXPECT_EQ(m.forwardMacs(8), 8 * m.forwardMacs(1)) << m.name;
        EXPECT_EQ(m.trainingMacs(8), 8 * m.trainingMacs(1)) << m.name;
    }
}

TEST(Zoo, TrainingTasksExpandThreePerLayer)
{
    const ModelShape m = alexNet();
    const auto tasks = trainingTasks(m, 16);
    EXPECT_EQ(tasks.size(), 3 * m.layers.size());
    // The three ops of a layer permute the same MAC volume.
    EXPECT_EQ(tasks[0].shape.macs(), tasks[1].shape.macs());
    EXPECT_EQ(tasks[0].shape.macs(), tasks[2].shape.macs());
    EXPECT_EQ(tasks[0].op, arch::TrainingOp::Forward);
    EXPECT_EQ(tasks[1].op, arch::TrainingOp::InputGrad);
    EXPECT_EQ(tasks[2].op, arch::TrainingOp::WeightGrad);
}

TEST(Zoo, AttentionTasksScaleCountWithBatch)
{
    const ModelShape m = transformer();
    const auto tasks_b1 = inferenceTasks(m, 1);
    const auto tasks_b4 = inferenceTasks(m, 4);
    // Find the first attention-score task: its count (heads * batch)
    // scales with batch while N (sequence) stays fixed.
    for (size_t i = 0; i < tasks_b1.size(); ++i) {
        if (tasks_b1[i].layer.find("scores") != std::string::npos) {
            EXPECT_EQ(tasks_b4[i].count, 4 * tasks_b1[i].count);
            EXPECT_EQ(tasks_b4[i].shape.n, tasks_b1[i].shape.n);
            return;
        }
    }
    FAIL() << "no attention-score task found";
}

TEST(Zoo, DepthwiseLayersUseInstanceCounts)
{
    const ModelShape m = mobileNetV2();
    bool found = false;
    for (const GemmLayer &layer : m.layers) {
        if (layer.name.find(".dw") != std::string::npos) {
            EXPECT_EQ(layer.m, 1);
            EXPECT_EQ(layer.k, 9);
            EXPECT_GT(layer.instances_per_sample, 1);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Zoo, TrainingMacsAreExactlyThreeTimesForwardAtEveryBatch)
{
    // Exact integer identity, not a ratio: every training op permutes the
    // same (m, k, n) volume, so trainingMacs == 3 * forwardMacs holds
    // exactly for every model and batch size.
    for (const ModelShape &m : allModels()) {
        for (int64_t batch : {1, 2, 7, 32, 256}) {
            EXPECT_EQ(m.trainingMacs(batch), 3 * m.forwardMacs(batch))
                << m.name << " batch " << batch;
        }
    }
}

TEST(Zoo, BatchScalingHoldsForBothBatchInNModes)
{
    // batch_in_n = true multiplies N; false multiplies the instance
    // count. Either way MACs are linear in batch and training is 3x.
    GemmLayer in_n{"conv", 32, 27, 196, 1, true};
    GemmLayer in_count{"scores", 128, 64, 128, 12, false};
    const ModelShape mixed{"mixed", {in_n, in_count}};

    for (int64_t batch : {1, 3, 16}) {
        EXPECT_EQ(mixed.forwardMacs(batch), batch * mixed.forwardMacs(1));
        EXPECT_EQ(mixed.trainingMacs(batch), 3 * mixed.forwardMacs(batch));
    }

    // The two modes place batch differently in the expanded tasks.
    const auto tasks = inferenceTasks(mixed, 5);
    ASSERT_EQ(tasks.size(), 2u);
    EXPECT_EQ(tasks[0].shape.n, 196 * 5); // batch_in_n: N = spatial * B
    EXPECT_EQ(tasks[0].count, 1);
    EXPECT_EQ(tasks[1].shape.n, 128); // attention: N = sequence
    EXPECT_EQ(tasks[1].count, 12 * 5); // count = instances * B
}

TEST(Zoo, WeightElementsAreBatchIndependentAndMatchLayerSums)
{
    GemmLayer fc{"fc", 10, 20, 1, 1, true};
    GemmLayer dw{"dw", 1, 9, 49, 64, true};
    const ModelShape m{"tiny", {fc, dw}};
    EXPECT_EQ(m.weightElements(), 10 * 20 + 1 * 9 * 64);

    // Sanity on a real model: ResNet18 holds ~11M weights.
    const int64_t resnet = resNet18().weightElements();
    EXPECT_GT(resnet, int64_t{8} * 1000 * 1000);
    EXPECT_LT(resnet, int64_t{15} * 1000 * 1000);
}

TEST(Zoo, AllModelsPresentInPaperOrder)
{
    const auto models = allModels();
    ASSERT_EQ(models.size(), 7u);
    EXPECT_EQ(models[0].name, "AlexNet");
    EXPECT_EQ(models[6].name, "Transformer");
}

} // namespace
} // namespace models
} // namespace mirage
