/**
 * @file
 * serve/server tests: functional and analytic request round trips,
 * flush-on-full and flush-on-delay micro-batching, SLO-class accounting,
 * weight-cache amortization through the serving path, admission control,
 * graceful shutdown, hot-swap, and the serve-path determinism guarantee
 * (identical per-request outputs across tile/thread/batching configs).
 */

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/injection.h"
#include "models/trainable.h"
#include "models/zoo.h"
#include "runtime/engine.h"
#include "runtime/thread_pool.h"
#include "serve/checkpoint.h"
#include "serve/repository.h"
#include "serve/server.h"
#include "test_support.h"

namespace {

using namespace mirage;

constexpr int kIn = 6, kHidden = 8, kClasses = 4;

models::ModelShape
mlpShape(const std::string &name)
{
    models::ModelShape shape;
    shape.name = name;
    shape.layers = {{"fc1", kHidden, kIn, 1, 1, true},
                    {"fc2", kHidden, kHidden, 1, 1, true},
                    {"fc3", kClasses, kHidden, 1, 1, true}};
    return shape;
}

serve::ModelFactory
mlpFactory()
{
    return [](nn::GemmBackend *backend, Rng &rng) {
        return models::makeMlp(kIn, kHidden, kClasses, backend, rng);
    };
}

nn::Tensor
inputRows(Rng &rng, int rows)
{
    nn::Tensor x({rows, kIn});
    for (int64_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.gaussian());
    return x;
}

struct ServeTest : test::SeededTest
{
    /** A source net whose checkpoint seeds every served repository, so
     *  different server configs serve identical weights. */
    ServeTest() : accel(arch::MirageConfig{})
    {
        Rng net_rng(0xC0FFEEu);
        source = models::makeMlp(kIn, kHidden, kClasses, accel.backend(),
                                 net_rng);
        ckpt = serve::snapshot(*source, "mlp");
    }

    core::MirageAccelerator accel;
    std::unique_ptr<nn::Sequential> source;
    serve::Checkpoint ckpt;
};

TEST_F(ServeTest, FunctionalRequestMatchesDirectForward)
{
    serve::ModelRepository repo;
    repo.publishCheckpoint("mlp", ckpt, mlpShape("mlp"), mlpFactory());
    runtime::RuntimeEngine engine;
    serve::InferenceServer server(repo, engine);

    serve::InferenceRequest req;
    req.model = "mlp";
    req.input = inputRows(rng, 3);
    const nn::Tensor expect = source->forward(req.input, false);

    serve::InferenceReply reply = server.submit(std::move(req)).get();
    ASSERT_EQ(reply.output.size(), expect.size());
    for (int64_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(reply.output[i], expect[i]);
    EXPECT_EQ(reply.version, 1);
    EXPECT_GE(reply.batch_size, 1);
    EXPECT_FALSE(reply.cache_hit); // first touch programs the weights
    EXPECT_GT(reply.energy_j, 0.0);
    EXPECT_GT(reply.model_time_s, 0.0);
    EXPECT_GE(reply.latency_s, reply.queue_s);
}

TEST_F(ServeTest, AnalyticRequestsReportModeledCost)
{
    serve::ModelRepository repo;
    repo.publishShape("resnet", models::resNet18());
    runtime::RuntimeEngine engine;
    serve::InferenceServer server(repo, engine);

    serve::InferenceRequest req;
    req.model = "resnet";
    req.slo = serve::SloClass::Batch;
    req.samples = 4;
    serve::InferenceReply first = server.submit(req).get();
    EXPECT_EQ(first.output.size(), 0);
    EXPECT_FALSE(first.cache_hit);
    EXPECT_GT(first.energy_j, 0.0);
    EXPECT_GT(first.model_time_s, 0.0);

    serve::InferenceReply second = server.submit(req).get();
    EXPECT_TRUE(second.cache_hit);
    // A cache hit pays no reprogramming: strictly cheaper and faster.
    EXPECT_LT(second.energy_j, first.energy_j);
    EXPECT_LT(second.model_time_s, first.model_time_s);

    // Replies resolve before the stats critical section; drain() orders
    // this thread after it.
    server.drain();
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_EQ(stats.batch_completed, 2u);
    EXPECT_EQ(stats.interactive_completed, 0u);
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_misses, 1u);
    EXPECT_GT(stats.programming_energy_j, 0.0);
}

TEST_F(ServeTest, FullGroupFlushesWithoutWaitingForMaxDelay)
{
    serve::ModelRepository repo;
    repo.publishShape("m", mlpShape("m"));
    runtime::RuntimeEngine engine;
    serve::ServerConfig cfg;
    cfg.max_batch = 4;
    // A flush delay far beyond the test timeout: only the full-batch
    // trigger can flush this group promptly.
    cfg.batch = {30.0, 60.0};
    serve::InferenceServer server(repo, engine, cfg);

    std::vector<std::future<serve::InferenceReply>> futs;
    for (int i = 0; i < 4; ++i) {
        serve::InferenceRequest req;
        req.model = "m";
        req.slo = serve::SloClass::Batch;
        futs.push_back(server.submit(std::move(req)));
    }
    for (auto &f : futs) {
        const serve::InferenceReply reply = f.get();
        EXPECT_EQ(reply.batch_size, 4);
    }
    server.drain();
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.batches, 1u);
    ASSERT_GT(stats.batch_size_hist.size(), 4u);
    EXPECT_EQ(stats.batch_size_hist[4], 1u);
}

TEST_F(ServeTest, LoneRequestFlushesAfterMaxDelay)
{
    serve::ModelRepository repo;
    repo.publishShape("m", mlpShape("m"));
    runtime::RuntimeEngine engine;
    serve::ServerConfig cfg;
    cfg.max_batch = 64;
    cfg.interactive = {0.002, 0.5};
    serve::InferenceServer server(repo, engine, cfg);

    serve::InferenceRequest req;
    req.model = "m";
    const serve::InferenceReply reply = server.submit(std::move(req)).get();
    EXPECT_EQ(reply.batch_size, 1);
    // The group had to age past max_delay before flushing.
    EXPECT_GE(reply.queue_s, cfg.interactive.max_delay_s * 0.5);
    EXPECT_TRUE(reply.deadline_met);
}

TEST_F(ServeTest, BatchSizeHistogramAddsUpToCompletedRequests)
{
    serve::ModelRepository repo;
    repo.publishShape("a", mlpShape("a"));
    repo.publishShape("b", models::alexNet());
    runtime::RuntimeEngine engine;
    serve::InferenceServer server(repo, engine);

    std::vector<std::future<serve::InferenceReply>> futs;
    for (int i = 0; i < 17; ++i) {
        serve::InferenceRequest req;
        req.model = i % 3 == 0 ? std::string("a") : std::string("b");
        req.slo = i % 2 == 0 ? serve::SloClass::Interactive
                             : serve::SloClass::Batch;
        futs.push_back(server.submit(std::move(req)));
    }
    for (auto &f : futs)
        f.get();
    server.drain();

    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 17u);
    uint64_t weighted = 0, batches = 0;
    for (size_t b = 0; b < stats.batch_size_hist.size(); ++b) {
        weighted += b * stats.batch_size_hist[b];
        batches += stats.batch_size_hist[b];
    }
    EXPECT_EQ(weighted, stats.completed);
    EXPECT_EQ(batches, stats.batches);
    EXPECT_EQ(stats.interactive_latency.count +
                  stats.batch_latency.count,
              stats.completed);
    EXPECT_GE(stats.interactive_latency.p99_s,
              stats.interactive_latency.p50_s);
}

TEST_F(ServeTest, UnknownModelFailsTheFuture)
{
    serve::ModelRepository repo;
    runtime::RuntimeEngine engine;
    serve::InferenceServer server(repo, engine);

    serve::InferenceRequest req;
    req.model = "ghost";
    auto fut = server.submit(std::move(req));
    EXPECT_THROW(fut.get(), std::out_of_range);
    server.drain();
    EXPECT_EQ(server.stats().failed, 1u);
    EXPECT_EQ(server.stats().completed, 0u);
}

TEST_F(ServeTest, MalformedRequestsAreRejectedSynchronously)
{
    serve::ModelRepository repo;
    runtime::RuntimeEngine engine;
    serve::InferenceServer server(repo, engine);

    serve::InferenceRequest no_model;
    EXPECT_THROW(server.submit(std::move(no_model)), std::invalid_argument);

    serve::InferenceRequest rank1;
    rank1.model = "m";
    rank1.input = nn::Tensor({kIn});
    rank1.input.fill(1.0f);
    EXPECT_THROW(server.submit(std::move(rank1)), std::invalid_argument);

    serve::InferenceRequest zero_samples;
    zero_samples.model = "m";
    zero_samples.samples = 0;
    EXPECT_THROW(server.submit(std::move(zero_samples)),
                 std::invalid_argument);
}

TEST_F(ServeTest, SubmitAfterShutdownIsRejectedThroughTheFuture)
{
    serve::ModelRepository repo;
    repo.publishShape("m", mlpShape("m"));
    runtime::RuntimeEngine engine;
    serve::InferenceServer server(repo, engine);
    server.shutdown();
    server.shutdown(); // idempotent

    serve::InferenceRequest req;
    req.model = "m";
    auto fut = server.submit(std::move(req));
    EXPECT_THROW(fut.get(), std::runtime_error);
    EXPECT_EQ(server.stats().rejected, 1u);
}

TEST_F(ServeTest, ShutdownFlushesPendingRequests)
{
    serve::ModelRepository repo;
    repo.publishShape("m", mlpShape("m"));
    runtime::RuntimeEngine engine;
    serve::ServerConfig cfg;
    cfg.max_batch = 64;
    cfg.batch = {30.0, 60.0}; // would wait ~forever without shutdown
    std::vector<std::future<serve::InferenceReply>> futs;
    {
        serve::InferenceServer server(repo, engine, cfg);
        for (int i = 0; i < 3; ++i) {
            serve::InferenceRequest req;
            req.model = "m";
            req.slo = serve::SloClass::Batch;
            futs.push_back(server.submit(std::move(req)));
        }
        // Destructor shutdown must flush and complete all three.
    }
    for (auto &f : futs)
        EXPECT_EQ(f.get().batch_size, 3);
}

TEST_F(ServeTest, HotSwapServesNewVersionToNewRequests)
{
    serve::ModelRepository repo;
    repo.publishCheckpoint("mlp", ckpt, mlpShape("mlp"), mlpFactory());
    runtime::EngineConfig ecfg;
    ecfg.tiles = 1; // single residency slot, to observe invalidation
    runtime::RuntimeEngine engine(ecfg);
    serve::InferenceServer server(repo, engine);

    serve::InferenceRequest req;
    req.model = "mlp";
    req.input = inputRows(rng, 1);
    EXPECT_EQ(server.submit(req).get().version, 1);

    repo.publishModel("mlp", mlpShape("mlp"), mlpFactory());
    repo.retireOldVersions("mlp");
    EXPECT_EQ(server.submit(req).get().version, 2);

    // Retirement invalidated v1's tile residency: v2's miss filled an
    // empty slot instead of evicting a live one.
    server.drain();
    const serve::WeightCache::Stats cache = server.weightCache().stats();
    EXPECT_EQ(cache.misses, 2u);
    EXPECT_EQ(cache.evictions, 0u);
}

TEST_F(ServeTest, ConfigValidationRejectsBadKnobs)
{
    serve::ModelRepository repo;
    runtime::RuntimeEngine engine;
    for (auto broken : {[] { serve::ServerConfig c; c.max_batch = 0; return c; }(),
                        [] { serve::ServerConfig c; c.queue_capacity = 0; return c; }(),
                        [] { serve::ServerConfig c; c.interactive.deadline_s = 0; return c; }(),
                        [] { serve::ServerConfig c; c.batch.max_delay_s = -1; return c; }()}) {
        EXPECT_THROW(serve::InferenceServer(repo, engine, broken),
                     std::invalid_argument);
    }
}

// ---------------------------------------------------------------------------
// Determinism: identical per-request outputs across serving configurations
// ---------------------------------------------------------------------------

TEST_F(ServeTest, ServePathIsDeterministicAcrossTilesThreadsAndBatching)
{
    // The same 6 requests served under radically different configurations
    // (1 tile/1-thread/no batching vs 4 tiles/4 threads/full batching)
    // must produce bit-identical outputs, equal to the direct forward.
    std::vector<nn::Tensor> inputs;
    for (int i = 0; i < 6; ++i)
        inputs.push_back(inputRows(rng, 1 + i % 3));
    std::vector<nn::Tensor> expect;
    for (const nn::Tensor &x : inputs)
        expect.push_back(source->forward(x, false));

    struct Config
    {
        int threads, tiles, max_batch;
    };
    for (const Config &c : {Config{1, 1, 1}, Config{4, 4, 8}}) {
        runtime::ThreadPool::setGlobalThreads(c.threads);
        serve::ModelRepository repo;
        repo.publishCheckpoint("mlp", ckpt, mlpShape("mlp"), mlpFactory());
        runtime::EngineConfig ecfg;
        ecfg.tiles = c.tiles;
        runtime::RuntimeEngine engine(ecfg);
        serve::ServerConfig scfg;
        scfg.max_batch = c.max_batch;
        serve::InferenceServer server(repo, engine, scfg);

        std::vector<std::future<serve::InferenceReply>> futs;
        for (const nn::Tensor &x : inputs) {
            serve::InferenceRequest req;
            req.model = "mlp";
            req.input = x;
            futs.push_back(server.submit(std::move(req)));
        }
        for (size_t i = 0; i < futs.size(); ++i) {
            const serve::InferenceReply reply = futs[i].get();
            ASSERT_EQ(reply.output.size(), expect[i].size());
            for (int64_t j = 0; j < expect[i].size(); ++j)
                EXPECT_EQ(reply.output[j], expect[i][j])
                    << "config {" << c.threads << "," << c.tiles << ","
                    << c.max_batch << "} request " << i << " element " << j;
        }
    }
    runtime::ThreadPool::setGlobalThreads(0);
}

// ---------------------------------------------------------------------------
// Graceful degradation under tile failures
// ---------------------------------------------------------------------------

/** Disarms the fault registry around a test body. */
struct FaultGuard
{
    FaultGuard() { fault::reset(); }
    ~FaultGuard() { fault::reset(); }
};

TEST_F(ServeTest, TerminalEngineFailureDeliversErrorReply)
{
    // When the engine exhausts its retry attempts the request must fail
    // *individually* — the reply is still delivered (never a dropped
    // promise), carrying the terminal reason in the error field.
    FaultGuard guard;
    serve::ModelRepository repo;
    repo.publishShape("resnet", models::resNet18());
    runtime::EngineConfig ecfg;
    ecfg.tiles = 1;
    ecfg.max_job_attempts = 2;
    runtime::RuntimeEngine engine(ecfg);
    serve::InferenceServer server(repo, engine);

    fault::armPoint("engine.tile_fail", fault::FaultSpec::hitEvery(1, 1));
    serve::InferenceRequest req;
    req.model = "resnet";
    const serve::InferenceReply reply = server.submit(std::move(req)).get();
    fault::reset();

    EXPECT_FALSE(reply.error.empty());
    EXPECT_NE(reply.error.find("attempts"), std::string::npos)
        << reply.error;
    EXPECT_FALSE(reply.deadline_met);
    EXPECT_EQ(reply.output.size(), 0);

    server.drain();
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 0u);
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.request_errors, 1u);
    EXPECT_GE(stats.tile_failures, 1u);
}

TEST_F(ServeTest, EffectiveCapacityTracksHealthyTileCount)
{
    serve::ModelRepository repo;
    repo.publishShape("resnet", models::resNet18());
    runtime::EngineConfig ecfg;
    ecfg.tiles = 4;
    ecfg.tile_cooldown_dispatches = 1;
    runtime::RuntimeEngine engine(ecfg);
    serve::ServerConfig scfg;
    scfg.queue_capacity = 100;
    serve::InferenceServer server(repo, engine, scfg);

    EXPECT_EQ(server.effectiveCapacity(), 100u);
    engine.failTile(0); // tile listeners fire synchronously
    EXPECT_EQ(server.effectiveCapacity(), 75u);
    engine.failTile(1);
    engine.failTile(2);
    EXPECT_EQ(server.effectiveCapacity(), 25u);
    engine.failTile(3);
    EXPECT_EQ(server.effectiveCapacity(), 1u)
        << "capacity never degrades to zero: one request can always probe";
    EXPECT_EQ(server.stats().tile_failures, 4u);

    // One dispatch steps every cooldown; the rejoin events restore the
    // admission capacity.
    serve::InferenceRequest req;
    req.model = "resnet";
    server.submit(std::move(req)).get();
    server.drain();
    EXPECT_EQ(server.effectiveCapacity(), 100u);
}

TEST_F(ServeTest, DegradedServerShedsBatchBeforeInteractive)
{
    // With half the tiles gone, admission capacity halves and the batch
    // class is shed at half of that again, so interactive requests keep
    // meeting deadlines through the degradation.
    serve::ModelRepository repo;
    repo.publishShape("resnet", models::resNet18());
    runtime::EngineConfig ecfg;
    ecfg.tiles = 2;
    ecfg.tile_cooldown_dispatches = 1000; // stay degraded for the test
    runtime::RuntimeEngine engine(ecfg);
    serve::ServerConfig scfg;
    scfg.queue_capacity = 8;
    scfg.max_batch = 16;
    scfg.batch = {5.0, 10.0}; // park batch requests in the pending queue
    serve::InferenceServer server(repo, engine, scfg);

    engine.failTile(0);
    EXPECT_EQ(server.effectiveCapacity(), 4u);

    const auto submit = [&](serve::SloClass slo) {
        serve::InferenceRequest req;
        req.model = "resnet";
        req.slo = slo;
        return server.submit(std::move(req));
    };

    // Batch capacity while degraded: 4 / 2 = 2. The third batch request
    // is shed at admission...
    std::vector<std::future<serve::InferenceReply>> parked;
    parked.push_back(submit(serve::SloClass::Batch));
    parked.push_back(submit(serve::SloClass::Batch));
    auto shed = submit(serve::SloClass::Batch);
    EXPECT_THROW(shed.get(), std::runtime_error);

    // ...while interactive admission (capacity 4) still accepts.
    const serve::InferenceReply reply =
        submit(serve::SloClass::Interactive).get();
    EXPECT_TRUE(reply.error.empty());

    server.shutdown(); // flushes the parked batch group
    for (auto &f : parked)
        EXPECT_NO_THROW(f.get());
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.completed, 3u);
    EXPECT_EQ(stats.interactive_completed, 1u);
}

} // namespace
