/**
 * @file
 * The train/ determinism contract: an N-replica data-parallel run is
 * bit-identical to a 1-replica run at the same effective batch size
 * (N in {1, 2, 4}), a run interrupted mid-epoch and resumed from its
 * checkpoint finishes bit-identical to an uninterrupted run — even when
 * the resumed trainer uses a different replica count — and all of it is
 * invariant to the host thread count. These are the guarantees that let
 * the orchestrator scale across accelerator tiles without changing any
 * experiment's numbers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "models/trainable.h"
#include "nn/data.h"
#include "runtime/thread_pool.h"
#include "serve/checkpoint.h"
#include "train/trainer.h"
#include "test_support.h"

namespace {

using namespace mirage;

constexpr int kIn = 8, kHidden = 16, kClasses = 3;

serve::ModelFactory
mlpFactory()
{
    return [](nn::GemmBackend *backend, Rng &rng) {
        return models::makeMlp(kIn, kHidden, kClasses, backend, rng);
    };
}

serve::ModelFactory
cnnFactory()
{
    return [](nn::GemmBackend *backend, Rng &rng) {
        return models::makeSmallCnn(kClasses, backend, rng);
    };
}

nn::Dataset
mlpData()
{
    return nn::makeGaussianClusters(96, kClasses, kIn, 3.0f, 71);
}

train::TrainerConfig
mlpConfig(int replicas)
{
    train::TrainerConfig cfg;
    cfg.replicas = replicas;
    cfg.micro_batch = 8;
    cfg.shards_per_step = 4;
    cfg.seed = 2024;
    return cfg;
}

/** Flattened parameter values of the trainer's master replica. */
std::vector<float>
flatParams(train::Trainer &trainer)
{
    std::vector<float> out;
    for (nn::Param *p : trainer.net().params())
        for (int64_t i = 0; i < p->value.size(); ++i)
            out.push_back(p->value[i]);
    return out;
}

void
expectBitIdentical(const std::vector<float> &a, const std::vector<float> &b,
                   const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    ASSERT_FALSE(a.empty()) << what;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << what << ": weight " << i;
}

class TrainDeterminism : public mirage::test::SeededTest
{
};

TEST_F(TrainDeterminism, OneVsTwoVsFourReplicasBitIdentical)
{
    const nn::Dataset data = mlpData();
    std::vector<std::vector<float>> results;
    for (const int replicas : {1, 2, 4}) {
        train::Trainer trainer(
            mlpFactory(), std::make_unique<nn::Sgd>(0.05f, 0.9f),
            mlpConfig(replicas));
        trainer.run(data, nullptr, /*target_epochs=*/2);
        results.push_back(flatParams(trainer));
    }
    expectBitIdentical(results[0], results[1], "1 vs 2 replicas");
    expectBitIdentical(results[0], results[2], "1 vs 4 replicas");
}

TEST_F(TrainDeterminism, ReplicasBitIdenticalWithClippingAndAccumulation)
{
    const nn::Dataset data = mlpData();
    std::vector<std::vector<float>> results;
    for (const int replicas : {1, 2}) {
        train::TrainerConfig cfg = mlpConfig(replicas);
        cfg.accum_rounds = 2;
        cfg.clip_norm = 0.5; // low enough to engage on real gradients
        cfg.schedule = train::LrSchedule::cosine(/*total_steps=*/6, 0.1,
                                                 /*warmup_steps=*/2);
        train::Trainer trainer(mlpFactory(),
                               std::make_unique<nn::Adam>(0.01f), cfg);
        const train::TrainReport report =
            trainer.run(data, nullptr, /*target_epochs=*/2);
        if (replicas == 1) {
            EXPECT_GT(report.clipped_steps, 0u)
                << "clip_norm chosen too high to exercise clipping";
        }
        results.push_back(flatParams(trainer));
    }
    expectBitIdentical(results[0], results[1],
                       "1 vs 2 replicas (clip + accum)");
}

TEST_F(TrainDeterminism, SmallCnnReplicasBitIdentical)
{
    const nn::Dataset data = nn::makePatternImages(32, kClasses, 16, 0.3f, 5);
    std::vector<std::vector<float>> results;
    for (const int replicas : {1, 2}) {
        train::TrainerConfig cfg;
        cfg.replicas = replicas;
        cfg.micro_batch = 4;
        cfg.shards_per_step = 2;
        cfg.seed = 99;
        train::Trainer trainer(cnnFactory(),
                               std::make_unique<nn::Sgd>(0.01f), cfg);
        trainer.run(data, nullptr, /*target_epochs=*/1);
        results.push_back(flatParams(trainer));
    }
    expectBitIdentical(results[0], results[1], "CNN 1 vs 2 replicas");
}

TEST_F(TrainDeterminism, ResumeFromMidEpochCheckpointBitIdentical)
{
    const nn::Dataset data = mlpData();
    const std::string path = "test_train_resume.mirckpt";

    // Uninterrupted reference: 2 epochs = 6 optimizer steps.
    train::Trainer reference(mlpFactory(),
                             std::make_unique<nn::Sgd>(0.05f, 0.9f),
                             mlpConfig(1));
    reference.run(data, nullptr, 2);

    // Interrupted run: stop after 2 of the 3 steps of epoch 0 (mid-epoch),
    // checkpoint, throw the trainer away.
    {
        train::Trainer interrupted(mlpFactory(),
                                   std::make_unique<nn::Sgd>(0.05f, 0.9f),
                                   mlpConfig(1));
        interrupted.run(data, nullptr, 2, /*max_steps=*/2);
        EXPECT_EQ(interrupted.globalStep(), 2);
        EXPECT_EQ(interrupted.epochIndex(), 0);
        EXPECT_GT(interrupted.cursorBatch(), 0); // genuinely mid-epoch
        interrupted.saveCheckpoint(path);
    }

    // Resume in a fresh trainer ("new process") and finish.
    train::Trainer resumed(mlpFactory(),
                           std::make_unique<nn::Sgd>(0.05f, 0.9f),
                           mlpConfig(1));
    resumed.loadCheckpointFile(path);
    EXPECT_EQ(resumed.globalStep(), 2);
    resumed.run(data, nullptr, 2);
    EXPECT_EQ(resumed.globalStep(), reference.globalStep());

    auto a = flatParams(reference);
    auto b = flatParams(resumed);
    expectBitIdentical(a, b, "uninterrupted vs resumed");
    std::remove(path.c_str());
}

TEST_F(TrainDeterminism, ResumeWithDifferentReplicaCountBitIdentical)
{
    const nn::Dataset data = mlpData();
    const std::string path = "test_train_resume_n.mirckpt";

    train::Trainer reference(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                             mlpConfig(4));
    reference.run(data, nullptr, 2);

    {
        train::Trainer first(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                             mlpConfig(1));
        first.run(data, nullptr, 2, /*max_steps=*/4); // stops inside epoch 1
        EXPECT_EQ(first.epochIndex(), 1);
        first.saveCheckpoint(path);
    }

    // The replica count is execution placement, not model state: a run
    // started on 1 replica may resume on 2 and still match 4.
    train::Trainer resumed(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                           mlpConfig(2));
    resumed.loadCheckpointFile(path);
    resumed.run(data, nullptr, 2);

    auto a = flatParams(reference);
    auto b = flatParams(resumed);
    expectBitIdentical(a, b, "4-replica vs 1-then-2-replica resume");
    std::remove(path.c_str());
}

TEST_F(TrainDeterminism, TrainingIsThreadCountInvariant)
{
    const nn::Dataset data = mlpData();
    auto trained = [&] {
        train::Trainer trainer(mlpFactory(),
                               std::make_unique<nn::Sgd>(0.05f, 0.9f),
                               mlpConfig(2));
        trainer.run(data, nullptr, 1);
        return flatParams(trainer);
    };
    runtime::ThreadPool::setGlobalThreads(1);
    const std::vector<float> serial = trained();
    runtime::ThreadPool::setGlobalThreads(8);
    const std::vector<float> parallel = trained();
    runtime::ThreadPool::setGlobalThreads(0);
    expectBitIdentical(serial, parallel, "1 vs 8 threads");
}

} // namespace
