/**
 * @file
 * Numerical-fidelity telemetry tests: the EWMA+CUSUM drift detector
 * against hand-computed series (rising-edge-only alerts, recovery and
 * re-alert, cold-start floor, time-regression clamp), config validation,
 * the deterministic probe sampler, shadow-probe error encoding and
 * per-layer attribution, RNS overflow-margin accounting (the promoted
 * modularDot headroom assert), BFP/photonic health counters, drift-series
 * fan-out to listeners, probe bit-identity (probes never feed numeric
 * state), the disabled-path cost bound, and the InferenceServer
 * integration (SloAlertKind::FidelityDrift through ServerConfig::on_alert
 * plus stats().fidelity_alerts).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "models/zoo.h"
#include "nn/gemm_backend.h"
#include "obs/fidelity.h"
#include "obs/metrics.h"
#include "runtime/engine.h"
#include "serve/repository.h"
#include "serve/server.h"
#include "serve/slo.h"
#include "test_support.h"

namespace mirage {
namespace {

namespace fid = obs::fidelity;

/** Clears fidelity state around each test and forces probes off on exit
 *  (resetForTest deliberately leaves the interval knob alone). */
struct FidelityGuard
{
    FidelityGuard()
    {
        fid::setProbeInterval(0);
        fid::resetForTest();
    }
    ~FidelityGuard()
    {
        fid::setProbeInterval(0);
        fid::resetForTest();
    }
};

uint64_t
counterValue(const char *name)
{
    const obs::Counter *c = obs::MetricsRegistry::global().findCounter(name);
    return c != nullptr ? c->value() : 0;
}

int64_t
gaugeValue(const char *name)
{
    const obs::Gauge *g = obs::MetricsRegistry::global().findGauge(name);
    return g != nullptr ? g->value() : 0;
}

// ---------------------------------------------------------------------------
// DriftConfig / DriftDetector

TEST(FidelityDriftConfig, ValidateRejectsOutOfRangeKnobs)
{
    fid::DriftConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
    cfg.alpha = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = fid::DriftConfig{};
    cfg.alpha = 1.5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = fid::DriftConfig{};
    cfg.slack = -0.1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = fid::DriftConfig{};
    cfg.threshold = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = fid::DriftConfig{};
    cfg.min_samples = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    // The detector constructor validates too.
    cfg = fid::DriftConfig{};
    cfg.threshold = -1.0;
    EXPECT_THROW(fid::DriftDetector{cfg}, std::invalid_argument);
}

/** alpha = 1 makes the EWMA transparent, so every statistic is exact
 *  integer arithmetic: baseline 10 from two warm-up samples, slack 0.5,
 *  threshold 2. */
fid::DriftConfig
handCfg()
{
    fid::DriftConfig cfg;
    cfg.alpha = 1.0;
    cfg.slack = 0.5;
    cfg.threshold = 2.0;
    cfg.min_samples = 2;
    return cfg;
}

TEST(FidelityDriftDetector, HandComputedUpwardExcursion)
{
    fid::DriftDetector det(handCfg());

    // Warm-up: running-mean baseline, never alerts.
    EXPECT_FALSE(det.observe(1.0, 10.0).has_value());
    EXPECT_FALSE(det.observe(2.0, 10.0).has_value());
    EXPECT_DOUBLE_EQ(det.status().baseline, 10.0);

    // +3 deviation minus 0.5 slack: S_up = 2.5 crosses threshold 2.
    const std::optional<fid::DriftAlert> alert = det.observe(3.0, 13.0);
    ASSERT_TRUE(alert.has_value());
    EXPECT_EQ(alert->direction, fid::DriftDirection::Up);
    EXPECT_DOUBLE_EQ(alert->at_s, 3.0);
    EXPECT_DOUBLE_EQ(alert->value, 13.0);
    EXPECT_DOUBLE_EQ(alert->baseline, 10.0);
    EXPECT_DOUBLE_EQ(alert->cusum, 2.5);
    EXPECT_DOUBLE_EQ(alert->threshold, 2.0);
    EXPECT_EQ(alert->samples, 3u);
}

TEST(FidelityDriftDetector, RisingEdgeOnlyThenRecoveryThenReAlert)
{
    fid::DriftDetector det(handCfg());
    det.observe(1.0, 10.0);
    det.observe(2.0, 10.0);

    ASSERT_TRUE(det.observe(3.0, 13.0).has_value());
    // Latched: staying in excursion is silent (S_up = 2.5 + 2.5 = 5).
    EXPECT_FALSE(det.observe(4.0, 13.0).has_value());
    EXPECT_DOUBLE_EQ(det.status().cusum_up, 5.0);
    EXPECT_TRUE(det.status().firing_up);

    // Recovery: at-baseline samples drain 0.5 (the slack) per step.
    // 5.0 -> 4.5 -> 4.0 -> 3.5 -> 3.0 -> 2.5 -> 2.0; at 2.0 the
    // statistic is no longer above the threshold, so the latch clears —
    // recovery itself never alerts.
    for (int i = 0; i < 6; ++i)
        EXPECT_FALSE(det.observe(5.0 + i, 10.0).has_value());
    EXPECT_DOUBLE_EQ(det.status().cusum_up, 2.0);
    EXPECT_FALSE(det.status().firing_up);

    // Fresh excursion after recovery alerts again (S_up = 2 + 2.5).
    const std::optional<fid::DriftAlert> again = det.observe(11.0, 13.0);
    ASSERT_TRUE(again.has_value());
    EXPECT_DOUBLE_EQ(again->cusum, 4.5);
}

TEST(FidelityDriftDetector, DownwardDriftAlertsForSaggingSeries)
{
    fid::DriftDetector det(handCfg());
    det.observe(1.0, 30.0);
    det.observe(2.0, 30.0);

    // SNR sag: -3 dB deviation, S_down = 3 - 0.5 = 2.5 > 2.
    const std::optional<fid::DriftAlert> alert = det.observe(3.0, 27.0);
    ASSERT_TRUE(alert.has_value());
    EXPECT_EQ(alert->direction, fid::DriftDirection::Down);
    EXPECT_DOUBLE_EQ(alert->baseline, 30.0);
    EXPECT_DOUBLE_EQ(alert->cusum, 2.5);
    EXPECT_FALSE(det.status().firing_up);
    EXPECT_TRUE(det.status().firing_down);
}

TEST(FidelityDriftDetector, ColdStartFloorSuppressesEarlyAlerts)
{
    fid::DriftConfig cfg = handCfg();
    cfg.min_samples = 8;
    fid::DriftDetector det(cfg);
    // Even wildly swinging warm-up samples never alert: they ARE the
    // baseline estimate.
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(det.observe(i, (i % 2 == 0) ? 100.0 : -100.0)
                         .has_value());
    EXPECT_EQ(det.status().samples, 8u);
    EXPECT_DOUBLE_EQ(det.status().baseline, 0.0);
    EXPECT_DOUBLE_EQ(det.status().cusum_up, 0.0);
}

TEST(FidelityDriftDetector, TimeRegressionsClampToLatestSeen)
{
    fid::DriftConfig cfg;
    cfg.alpha = 1.0;
    cfg.slack = 0.0;
    cfg.threshold = 1.0;
    cfg.min_samples = 1;
    fid::DriftDetector det(cfg);
    EXPECT_FALSE(det.observe(5.0, 0.0).has_value());
    // A clock regression (t = 3 after t = 5) stamps the alert with the
    // clamped time, mirroring SloMonitor.
    const std::optional<fid::DriftAlert> alert = det.observe(3.0, 2.0);
    ASSERT_TRUE(alert.has_value());
    EXPECT_DOUBLE_EQ(alert->at_s, 5.0);
}

// ---------------------------------------------------------------------------
// Probe sampler + shadow probes

TEST(FidelityProbeSampler, DeterministicEveryNthAndDisabled)
{
    FidelityGuard guard;
    fid::setProbeInterval(3);
    fid::ProbeSampler sampler;
    std::vector<int> sampled;
    for (int i = 1; i <= 9; ++i)
        if (sampler.sample())
            sampled.push_back(i);
    EXPECT_EQ(sampled, (std::vector<int>{3, 6, 9}));
    EXPECT_EQ(sampler.calls(), 9u);

    fid::setProbeInterval(0);
    fid::ProbeSampler off;
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(off.sample());
}

TEST(FidelityProbes, ErrorBitsEncodingAndLayerAttribution)
{
    FidelityGuard guard;
    const std::vector<float> ref(16, 1.0f);

    {
        // Bit-exact probe: 64 "matching bits".
        fid::LayerScope scope("TestLayer.exact");
        fid::recordProbe("site", ref, ref);
    }
    const obs::Histogram *exact = obs::MetricsRegistry::global().findHistogram(
        "fidelity.probe.rmse_bits.TestLayer.exact");
    ASSERT_NE(exact, nullptr);
    EXPECT_EQ(exact->snapshot().count, 1u);
    EXPECT_DOUBLE_EQ(exact->snapshot().mean, 64.0);

    {
        // Uniform relative error of 2^-4 against a unit-RMS reference:
        // both RMSE and max-rel land on 4 matching bits.
        std::vector<float> noisy(16, 1.0f + 0.0625f);
        fid::LayerScope scope("TestLayer.bits4");
        fid::recordProbe("site", noisy, ref);
    }
    const obs::Histogram *bits4 = obs::MetricsRegistry::global().findHistogram(
        "fidelity.probe.rmse_bits.TestLayer.bits4");
    ASSERT_NE(bits4, nullptr);
    EXPECT_DOUBLE_EQ(bits4->snapshot().mean, 4.0);
    const obs::Histogram *maxrel = obs::MetricsRegistry::global().findHistogram(
        "fidelity.probe.maxrel_bits.TestLayer.bits4");
    ASSERT_NE(maxrel, nullptr);
    EXPECT_DOUBLE_EQ(maxrel->snapshot().mean, 4.0);

    // Without a LayerScope the call-site label attributes the probe.
    fid::recordProbe("gemm.fp32", ref, ref);
    EXPECT_EQ(counterValue("fidelity.probe.calls.gemm.fp32"), 1u);
    EXPECT_EQ(counterValue("fidelity.probes"), 3u);
    EXPECT_STREQ(fid::currentLayer(), "");
}

TEST(FidelityProbes, LayerScopeNestsAndRestores)
{
    EXPECT_STREQ(fid::currentLayer(), "");
    {
        fid::LayerScope outer("Outer");
        EXPECT_STREQ(fid::currentLayer(), "Outer");
        {
            fid::LayerScope inner("Inner");
            EXPECT_STREQ(fid::currentLayer(), "Inner");
        }
        EXPECT_STREQ(fid::currentLayer(), "Outer");
    }
    EXPECT_STREQ(fid::currentLayer(), "");
}

TEST(FidelityProbes, ShadowProbesNeverPerturbBackendResults)
{
    // The determinism contract: enabling probes must not change a single
    // bit of any backend's output — probes only *read* results and
    // re-execute the reference path on scratch storage.
    FidelityGuard guard;
    Rng rng(7);
    const int m = 9, k = 33, n = 7;
    std::vector<float> a(static_cast<size_t>(m) * k);
    std::vector<float> b(static_cast<size_t>(k) * n);
    for (auto &v : a)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));
    for (auto &v : b)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));

    numerics::FormatGemmConfig cfg;
    cfg.moduli = test::paperModuli();

    fid::setProbeInterval(0);
    nn::FormatBackend plain(numerics::DataFormat::MirageBfpRns, cfg, 42);
    const std::vector<float> expect = plain.gemm(a, b, m, k, n, false, false);

    fid::setProbeInterval(1); // shadow-execute every call
    nn::FormatBackend probed(numerics::DataFormat::MirageBfpRns, cfg, 42);
    const std::vector<float> got = probed.gemm(a, b, m, k, n, false, false);

    ASSERT_EQ(expect.size(), got.size());
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(expect[i], got[i]) << "@" << i;
    // And the probe actually ran and attributed to the backend site.
    EXPECT_GE(counterValue("fidelity.probes"), 1u);
    EXPECT_GE(counterValue("fidelity.probe.calls.gemm.Mirage"), 1u);
}

// ---------------------------------------------------------------------------
// Always-on health counters

TEST(FidelityRns, MarginAccountingMatchesClosedForm)
{
    FidelityGuard guard;
    // The modularDot fast-path corner (largest small-path modulus, longest
    // admissible dot): worst = (2^21 - 2)^2 * 2^14 uses 56 bits -> 8 bits
    // of 64-bit headroom.
    const uint64_t m_small = (uint64_t{1} << 21) - 1;
    EXPECT_EQ(fid::recordRnsMargin(m_small, int64_t{1} << 14), 8);
    EXPECT_EQ(counterValue("fidelity.rns.dot_checks"), 1u);
    EXPECT_EQ(counterValue("fidelity.rns.overflow_risk"), 0u);
    EXPECT_EQ(gaugeValue("fidelity.rns.overflow_margin_min"), 8);

    // A 31-bit modulus at depth 2^10 would wrap: margin goes negative and
    // the risk counter fires, but the min gauge keeps the worst value.
    const uint64_t m_big = (uint64_t{1} << 31) - 1;
    EXPECT_EQ(fid::recordRnsMargin(m_big, int64_t{1} << 10), -8);
    EXPECT_EQ(counterValue("fidelity.rns.overflow_risk"), 1u);
    EXPECT_EQ(gaugeValue("fidelity.rns.overflow_margin_min"), -8);

    // A roomier call never raises the running minimum.
    EXPECT_EQ(fid::recordRnsMargin(33, 8), 64 - 14);
    EXPECT_EQ(gaugeValue("fidelity.rns.overflow_margin_min"), -8);

    fid::noteRnsReducedFallback();
    EXPECT_EQ(counterValue("fidelity.rns.reduced_fallbacks"), 1u);
}

TEST(FidelityHealth, BfpAndPhotonicCountersAccumulate)
{
    FidelityGuard guard;
    fid::noteBfpGroup(-3, 0);
    fid::noteBfpGroup(5, 2);
    EXPECT_EQ(counterValue("fidelity.bfp.groups"), 2u);
    EXPECT_EQ(counterValue("fidelity.bfp.clipped_mantissas"), 2u);
    const obs::Histogram *exps = obs::MetricsRegistry::global().findHistogram(
        "fidelity.bfp.exponent_bias128");
    ASSERT_NE(exps, nullptr);
    EXPECT_EQ(exps->snapshot().count, 2u);
    // Histogram bounds are bucket-quantized; the biased exponents 125 and
    // 133 must land within their buckets' ranges.
    EXPECT_LE(exps->snapshot().min, 125.0);
    EXPECT_GE(exps->snapshot().min, 100.0);
    EXPECT_GE(exps->snapshot().max, 133.0);
    EXPECT_LE(exps->snapshot().max, 160.0);

    fid::noteSnrDb(31.7);
    fid::noteSnrDb(24.2);
    EXPECT_EQ(gaugeValue("fidelity.photonic.snr_db_min"), 24);

    fid::notePhotonicProbe(5, 0);
    fid::notePhotonicProbe(5, 2);
    EXPECT_EQ(counterValue("fidelity.photonic.mvm_probes"), 2u);
    EXPECT_EQ(counterValue("fidelity.photonic.residue_checks"), 10u);
    EXPECT_EQ(counterValue("fidelity.photonic.residue_errors"), 2u);
}

// ---------------------------------------------------------------------------
// Series + fan-out

TEST(FidelitySeries, DirectionFilterCountersAndListeners)
{
    FidelityGuard guard;
    fid::SeriesConfig cfg;
    cfg.drift = handCfg();
    cfg.alert_up = false; // SNR-style: only degradation pages
    fid::Series &snr = fid::series("test.fid.series.snr", cfg);

    std::vector<fid::DriftAlert> seen;
    const uint64_t token = fid::addAlertListener(
        [&seen](const fid::DriftAlert &a) { seen.push_back(a); });

    snr.observe(30.0);
    snr.observe(30.0);
    // Upward excursion: detector fires internally, but the direction
    // filter keeps it off the bus.
    snr.observe(33.0);
    EXPECT_EQ(snr.alerts(), 0u);
    EXPECT_TRUE(seen.empty());
    EXPECT_EQ(counterValue("fidelity.drift.alerts"), 0u);

    // Drain the up statistic back under threshold, then sag: the down
    // alert passes the filter, bumps counters, reaches listeners.
    for (int i = 0; i < 6; ++i)
        snr.observe(30.0);
    snr.observe(27.0);
    EXPECT_EQ(snr.alerts(), 1u);
    EXPECT_EQ(counterValue("fidelity.drift.alerts"), 1u);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].series, "test.fid.series.snr");
    EXPECT_EQ(seen[0].direction, fid::DriftDirection::Down);
    EXPECT_DOUBLE_EQ(seen[0].baseline, 30.0);

    fid::removeAlertListener(token);
    // Re-registration returns the same handle; the config is sticky.
    EXPECT_EQ(&fid::series("test.fid.series.snr"), &snr);
}

TEST(FidelitySeries, ResetForTestRearmsDetectorsAndCounters)
{
    FidelityGuard guard;
    fid::SeriesConfig cfg;
    cfg.drift = handCfg();
    fid::Series &s = fid::series("test.fid.series.reset", cfg);
    s.observe(10.0);
    s.observe(10.0);
    s.observe(13.0);
    EXPECT_EQ(s.alerts(), 1u);

    fid::resetForTest();
    // Same (immortal) handle, fresh detector state and counters.
    fid::Series &again = fid::series("test.fid.series.reset", cfg);
    EXPECT_EQ(&again, &s);
    EXPECT_EQ(s.alerts(), 0u);
    EXPECT_EQ(s.status().samples, 0u);
    EXPECT_EQ(counterValue("fidelity.drift.alerts"), 0u);
    // Warm-up applies afresh after the reset.
    s.observe(10.0);
    s.observe(10.0);
    EXPECT_FALSE(s.status().firing_up);
    s.observe(13.0);
    EXPECT_EQ(s.alerts(), 1u);
}

// ---------------------------------------------------------------------------
// Server integration

TEST(FidelityServer, DriftAlertForwardsThroughServerAlertPath)
{
    FidelityGuard guard;
    serve::ModelRepository repo;
    repo.publishShape("resnet", models::resNet18());
    runtime::RuntimeEngine engine;

    serve::ServerConfig cfg;
    std::atomic<int> fidelity_alerts{0};
    cfg.on_alert = [&](serve::SloClass cls, const serve::SloAlert &alert) {
        if (alert.kind != serve::SloAlertKind::FidelityDrift)
            return;
        fidelity_alerts.fetch_add(1);
        EXPECT_EQ(cls, serve::SloClass::Interactive);
        // fast_burn carries the CUSUM statistic, slow_burn the threshold.
        EXPECT_DOUBLE_EQ(alert.fast_burn, 2.5);
        EXPECT_DOUBLE_EQ(alert.slow_burn, 2.0);
        EXPECT_EQ(alert.fast_events, 3u);
    };
    serve::InferenceServer server(repo, engine, cfg);

    fid::SeriesConfig scfg;
    scfg.drift = handCfg();
    fid::Series &err = fid::series("test.fid.server.err", scfg);
    err.observe(10.0);
    err.observe(10.0);
    err.observe(13.0); // listener fan-out is synchronous on this thread

    EXPECT_EQ(fidelity_alerts.load(), 1);
    EXPECT_EQ(server.stats().fidelity_alerts, 1u);
    EXPECT_GE(counterValue("server.fidelity.alerts"), 1u);
}

// ---------------------------------------------------------------------------
// Disabled-path cost

#if defined(NDEBUG) && !defined(MIRAGE_TEST_TSAN)
TEST(FidelityOverhead, DisabledProbeCheckCostsAFewNanoseconds)
{
    // The "<= 2 ns when off" contract: a disabled sample() is one relaxed
    // load plus a branch. As in test_obs, the asserted bound is an order
    // of magnitude above the expected cost so slow CI cannot flake it,
    // while still catching accidental work ahead of the gate.
    FidelityGuard guard;
    fid::setProbeInterval(0);
    fid::ProbeSampler sampler;
    constexpr uint64_t kIters = 2000000;
    using Clock = std::chrono::steady_clock;

    uint64_t hits = 0;
    const Clock::time_point t0 = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i)
        hits += sampler.sample() ? 1 : 0;
    const Clock::time_point t1 = Clock::now();
    const double ns_per_call =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(kIters);
    EXPECT_EQ(hits, 0u);
    EXPECT_LT(ns_per_call, 30.0) << "disabled ProbeSampler::sample";
}
#endif

} // namespace
} // namespace mirage
