/**
 * @file
 * Observability layer tests: counter/gauge/histogram semantics, the
 * registry's stable-handle and exposition contracts, the enable gates,
 * concurrent recording (the TSan job runs this suite), histogram
 * quantile accuracy against the exact nearest-rank percentile the serve
 * stats use, trace-span recording/export/wrap-around, request-context
 * propagation (RequestScope, flow events, the engine handoff), the
 * scrape endpoint, the flight recorder ring and its armed/disarmed
 * trigger contract, and the disabled-path cost bound the "near-zero
 * cost when off" promise makes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/rng.h"
#include "obs/context.h"
#include "obs/exporter.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/engine.h"

#if defined(__SANITIZE_THREAD__)
#define MIRAGE_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MIRAGE_TEST_TSAN 1
#endif
#endif

namespace mirage {
namespace {

/** Forces a known enable state (recording on, tracing off) for the test
 *  body regardless of MIRAGE_OBS/MIRAGE_TRACE in the environment, and
 *  restores it on exit so tests cannot leak state into each other. */
struct ObsStateGuard
{
    ObsStateGuard()
    {
        obs::setEnabled(true);
        obs::setTraceEnabled(false);
    }
    ~ObsStateGuard()
    {
        obs::setEnabled(true);
        obs::setTraceEnabled(false);
    }
};

/** Nearest-rank percentile, exactly as serve::ServerStats computes it. */
double
exactPercentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const double rank = std::ceil(q * static_cast<double>(samples.size()));
    const size_t idx = static_cast<size_t>(std::max(rank, 1.0)) - 1;
    return samples[std::min(idx, samples.size() - 1)];
}

TEST(ObsCounter, AddAggregatesAcrossShardsAndResets)
{
    ObsStateGuard guard;
    obs::Counter &c = obs::MetricsRegistry::global().counter("test.counter.a");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(c.name(), "test.counter.a");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, RegistryReturnsTheSameHandleForTheSameName)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    EXPECT_EQ(&reg.counter("test.counter.same"),
              &reg.counter("test.counter.same"));
    EXPECT_EQ(&reg.gauge("test.gauge.same"), &reg.gauge("test.gauge.same"));
    EXPECT_EQ(&reg.histogram("test.hist.same"),
              &reg.histogram("test.hist.same"));
    EXPECT_EQ(reg.findCounter("test.counter.same"),
              &reg.counter("test.counter.same"));
    EXPECT_EQ(reg.findCounter("test.counter.never.registered"), nullptr);
}

TEST(ObsCounter, DisabledRecordingDropsOnTheFloor)
{
    ObsStateGuard guard;
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    obs::Counter &c = reg.counter("test.counter.gated");
    obs::Gauge &g = reg.gauge("test.gauge.gated");
    obs::Histogram &h = reg.histogram("test.hist.gated");
    c.reset();
    g.reset();
    h.reset();

    obs::setEnabled(false);
    EXPECT_FALSE(obs::enabled());
    c.add(7);
    g.set(7);
    g.add(7);
    h.record(7);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);

    obs::setEnabled(true);
    c.add(7);
    g.set(7);
    h.record(7);
    EXPECT_EQ(c.value(), 7u);
    EXPECT_EQ(g.value(), 7);
    EXPECT_EQ(h.count(), 1u);
}

TEST(ObsGauge, SetAndAddAreLastWriteWins)
{
    ObsStateGuard guard;
    obs::Gauge &g = obs::MetricsRegistry::global().gauge("test.gauge.b");
    g.reset();
    g.set(10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.set(-5);
    EXPECT_EQ(g.value(), -5);
}

TEST(ObsHistogram, BucketIndexIsMonotonicAndBoundsContainTheValue)
{
    int prev = -1;
    for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{7}, uint64_t{15},
                       uint64_t{16}, uint64_t{17}, uint64_t{100},
                       uint64_t{1000}, uint64_t{123456789},
                       uint64_t{1} << 40, ~uint64_t{0}}) {
        const int idx = obs::Histogram::bucketIndex(v);
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, obs::Histogram::kBuckets);
        EXPECT_GE(idx, prev) << "v=" << v;
        prev = idx;
        double low = 0.0, high = 0.0;
        obs::Histogram::bucketBounds(idx, &low, &high);
        EXPECT_LE(low, static_cast<double>(v)) << "v=" << v;
        // ~0 rounds up to 2^64 in double, landing exactly on the top
        // bucket's high edge; every representable value sits below it.
        if (v == ~uint64_t{0})
            EXPECT_GE(high, static_cast<double>(v)) << "v=" << v;
        else
            EXPECT_GT(high, static_cast<double>(v)) << "v=" << v;
    }
    // Values below 16 are recorded exactly: each has its own bucket.
    for (uint64_t v = 0; v < 16; ++v) {
        double low = 0.0, high = 0.0;
        obs::Histogram::bucketBounds(obs::Histogram::bucketIndex(v), &low,
                                     &high);
        EXPECT_EQ(low, static_cast<double>(v));
        EXPECT_EQ(high, static_cast<double>(v + 1));
    }
}

TEST(ObsHistogram, CountSumMinMaxAreTracked)
{
    ObsStateGuard guard;
    obs::Histogram &h = obs::MetricsRegistry::global().histogram("test.hist.c");
    h.reset();
    const uint64_t values[] = {3, 3, 50, 700, 90000};
    uint64_t sum = 0;
    for (uint64_t v : values) {
        h.record(v);
        sum += v;
    }
    const obs::HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 5u);
    EXPECT_EQ(snap.sum, static_cast<double>(sum));
    EXPECT_NEAR(snap.mean, static_cast<double>(sum) / 5.0, 1e-9);
    // min is the low edge of the lowest bucket (exact below 16); max is
    // the midpoint of the highest, bounded by half a bucket width.
    EXPECT_EQ(snap.min, 3.0);
    EXPECT_NEAR(snap.max, 90000.0, 90000.0 / 16.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(ObsHistogram, QuantilesMatchExactNearestRankWithinBucketError)
{
    // The acceptance bar for the histogram design: its p50/p95/p99 must
    // land within the bucket-resolution bound (half a 1/8-octave bucket,
    // 1/16 relative) of the exact nearest-rank percentile that
    // serve::ServerStats computes from sorted samples.
    ObsStateGuard guard;
    obs::Histogram &h = obs::MetricsRegistry::global().histogram("test.hist.q");
    h.reset();
    Rng rng(2024);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        // Log-normal-ish latencies spanning ~3 decades, like real queue
        // delays: exp(N(ln(50us), 1)) nanoseconds.
        const double v = 50e3 * std::exp(rng.gaussian());
        const uint64_t ns = static_cast<uint64_t>(v);
        samples.push_back(static_cast<double>(ns));
        h.record(ns);
    }
    const obs::HistogramSnapshot snap = h.snapshot();
    for (const auto &[q, got] :
         {std::pair<double, double>{0.50, snap.p50},
          std::pair<double, double>{0.95, snap.p95},
          std::pair<double, double>{0.99, snap.p99}}) {
        const double exact = exactPercentile(samples, q);
        EXPECT_NEAR(got, exact, exact * 0.0700)
            << "q=" << q << " exact=" << exact << " hist=" << got;
    }
}

TEST(ObsHistogram, ConcurrentRecordingKeepsExactTotals)
{
    // 4 writers hammer one counter and one histogram while a reader
    // aggregates mid-flight; the TSan job runs this to prove the sharded
    // relaxed-atomic scheme is race-free, and the final totals must be
    // exact (sharding may only affect read timing, never the sum).
    ObsStateGuard guard;
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    obs::Counter &c = reg.counter("test.counter.hammer");
    obs::Histogram &h = reg.histogram("test.hist.hammer");
    c.reset();
    h.reset();

#ifdef MIRAGE_TEST_TSAN
    constexpr uint64_t kPerThread = 20000; // TSan is ~20x slower
#else
    constexpr uint64_t kPerThread = 200000;
#endif
    constexpr int kWriters = 4;
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        uint64_t last = 0;
        while (!stop.load(std::memory_order_acquire)) {
            const uint64_t now = c.value();
            EXPECT_GE(now, last); // monotone under concurrent adds
            last = now;
            (void)h.snapshot();
        }
    });
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                c.add(1);
                h.record((i + static_cast<uint64_t>(w)) & 0xfff);
            }
        });
    }
    for (auto &t : writers)
        t.join();
    stop.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(c.value(), kPerThread * kWriters);
    EXPECT_EQ(h.count(), kPerThread * kWriters);
}

TEST(ObsRegistry, PrometheusTextExpositionHasTheExpectedShape)
{
    ObsStateGuard guard;
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("test.expo.requests").reset();
    reg.counter("test.expo.requests").add(3);
    reg.gauge("test.expo.depth").set(-2);
    reg.histogram("test.expo.lat_ns").reset();
    reg.histogram("test.expo.lat_ns").record(100);

    std::ostringstream os;
    reg.renderText(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("mirage_test_expo_requests 3"), std::string::npos)
        << text;
    EXPECT_NE(text.find("mirage_test_expo_depth -2"), std::string::npos);
    EXPECT_NE(text.find("mirage_test_expo_lat_ns_count 1"),
              std::string::npos);
    EXPECT_NE(text.find("mirage_test_expo_lat_ns_sum 100"),
              std::string::npos);
    EXPECT_NE(text.find("mirage_test_expo_lat_ns_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE mirage_test_expo_requests counter"),
              std::string::npos);
}

TEST(ObsRegistry, JsonDumpIsParsableShape)
{
    ObsStateGuard guard;
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("test.json.count").reset();
    reg.counter("test.json.count").add(9);
    std::ostringstream os;
    reg.renderJson(os);
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json.count\": 9"), std::string::npos)
        << json;
}

TEST(ObsTrace, SpansExportAsChromeCompleteEvents)
{
    ObsStateGuard guard;
    obs::clearTrace();
    obs::setTraceEnabled(true);
    {
        MIRAGE_SPAN("test.outer");
        {
            MIRAGE_SPAN("test.inner");
        }
    }
    obs::setTraceEnabled(false);
    std::ostringstream os;
    obs::writeChromeTrace(os);
    const std::string trace = os.str();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"name\": \"test.outer\""), std::string::npos)
        << trace;
    EXPECT_NE(trace.find("\"name\": \"test.inner\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
    obs::clearTrace();
}

TEST(ObsTrace, DisabledSpansRecordNothing)
{
    ObsStateGuard guard;
    obs::clearTrace();
    ASSERT_FALSE(obs::traceEnabled());
    {
        MIRAGE_SPAN("test.never");
    }
    std::ostringstream os;
    obs::writeChromeTrace(os);
    EXPECT_EQ(os.str().find("test.never"), std::string::npos);
}

TEST(ObsTrace, RingBufferWrapsAndCountsDroppedEvents)
{
    // Capacity only applies to buffers created after the call, so wrap
    // in a fresh thread (this thread's ring may already exist at the
    // default size from earlier tests).
    ObsStateGuard guard;
    obs::clearTrace();
    obs::setTraceBufferCapacity(8);
    obs::setTraceEnabled(true);
    const uint64_t dropped_before = obs::traceDropped();
    std::thread t([] {
        for (int i = 0; i < 20; ++i) {
            MIRAGE_SPAN("test.wrap");
        }
    });
    t.join();
    obs::setTraceEnabled(false);
    obs::setTraceBufferCapacity(0); // restore the default for later tests
    EXPECT_EQ(obs::traceDropped() - dropped_before, 12u);
    std::ostringstream os;
    obs::writeChromeTrace(os);
    const std::string trace = os.str();
    // The ring retains the newest 8 events.
    size_t occurrences = 0;
    for (size_t pos = trace.find("test.wrap"); pos != std::string::npos;
         pos = trace.find("test.wrap", pos + 1))
        ++occurrences;
    EXPECT_EQ(occurrences, 8u);
    obs::clearTrace();
}

TEST(ObsContext, RequestIdsAreMonotonicAndScopesNestAndRestore)
{
    const uint64_t a = obs::nextRequestId();
    const uint64_t b = obs::nextRequestId();
    EXPECT_GT(a, 0u);
    EXPECT_GT(b, a);

    const uint64_t outside = obs::currentRequestId();
    {
        obs::RequestScope outer(a);
        EXPECT_EQ(obs::currentRequestId(), a);
        {
            obs::RequestScope inner(b);
            EXPECT_EQ(obs::currentRequestId(), b);
        }
        EXPECT_EQ(obs::currentRequestId(), a);
    }
    EXPECT_EQ(obs::currentRequestId(), outside);

    // The context is per-thread: a fresh thread starts outside any
    // request and a scope there never leaks back here.
    std::thread t([] {
        EXPECT_EQ(obs::currentRequestId(), 0u);
        obs::RequestScope scope(12345);
        EXPECT_EQ(obs::currentRequestId(), 12345u);
    });
    t.join();
    EXPECT_EQ(obs::currentRequestId(), outside);
}

TEST(ObsContext, RequestJsonlFormatsEveryField)
{
    obs::RequestRecord rec;
    rec.id = 42;
    rec.batch_seq = 7;
    rec.cls = obs::kClassBatch;
    rec.cache_hit = true;
    rec.deadline_met = false;
    rec.shed = false;
    rec.tile = 3;
    rec.batch_size = 8;
    rec.queue_ns = 1000;
    rec.execute_ns = 2000;
    rec.reply_ns = 30;
    rec.total_ns = 3030;
    rec.modeled_ns = 150;
    rec.modeled_nj = 999;

    char buf[obs::kRequestJsonlMax];
    const size_t n = obs::formatRequestJsonl(rec, buf, sizeof(buf));
    const std::string line(buf, n);
    EXPECT_EQ(line,
              "{\"id\":42,\"batch\":7,\"class\":\"batch\",\"tile\":3,"
              "\"batch_size\":8,\"cache_hit\":true,\"deadline_met\":false,"
              "\"shed\":false,\"queue_ns\":1000,\"execute_ns\":2000,"
              "\"reply_ns\":30,\"total_ns\":3030,\"modeled_ns\":150,"
              "\"modeled_nj\":999}\n");

    // The stream helper emits the identical line.
    std::ostringstream os;
    obs::writeRequestJsonl(os, rec);
    EXPECT_EQ(os.str(), line);

    // A tile of -1 (unmapped, e.g. a shed record) formats signed.
    rec.tile = -1;
    const size_t m = obs::formatRequestJsonl(rec, buf, sizeof(buf));
    EXPECT_NE(std::string(buf, m).find("\"tile\":-1"), std::string::npos);

    // Truncation clamps at the caller's capacity instead of overrunning.
    char tiny[8];
    EXPECT_LE(obs::formatRequestJsonl(rec, tiny, sizeof(tiny)),
              sizeof(tiny));

    EXPECT_STREQ(obs::requestClassName(obs::kClassInteractive),
                 "interactive");
    EXPECT_STREQ(obs::requestClassName(obs::kClassTrain), "train");
    EXPECT_STREQ(obs::requestClassName(250), "unknown");
}

TEST(ObsTrace, FlowPointsExportWithIdCategoryAndBinding)
{
    ObsStateGuard guard;
    obs::clearTrace();
    obs::setTraceEnabled(true);
    {
        MIRAGE_SPAN("test.flow.host");
        obs::traceFlow("test.flow", 777, 's');
        obs::traceFlow("test.flow", 777, 't');
        obs::traceFlow("test.flow", 777, 'f');
    }
    obs::setTraceEnabled(false);
    std::ostringstream os;
    obs::writeChromeTrace(os);
    const std::string trace = os.str();
    EXPECT_NE(trace.find("\"ph\": \"s\""), std::string::npos) << trace;
    EXPECT_NE(trace.find("\"ph\": \"t\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\": \"f\""), std::string::npos);
    // Flow points carry the linking id, the category, and the
    // enclosing-slice binding Perfetto needs to anchor the arrow.
    EXPECT_NE(trace.find("\"id\": 777"), std::string::npos);
    EXPECT_NE(trace.find("\"cat\": \"request\""), std::string::npos);
    EXPECT_NE(trace.find("\"bp\": \"e\""), std::string::npos);
    obs::clearTrace();
}

TEST(ObsTrace, FlowIsSilentWhenDisabledOrOutsideARequest)
{
    ObsStateGuard guard;
    obs::clearTrace();
    ASSERT_FALSE(obs::traceEnabled());
    obs::traceFlow("test.flow.off", 9, 's'); // tracing disabled

    obs::setTraceEnabled(true);
    obs::traceFlow("test.flow.zero", 0, 's'); // id 0 = no request context
    obs::setTraceEnabled(false);

    std::ostringstream os;
    obs::writeChromeTrace(os);
    EXPECT_EQ(os.str().find("test.flow.off"), std::string::npos);
    EXPECT_EQ(os.str().find("test.flow.zero"), std::string::npos);
}

TEST(ObsTrace, SpanNamesAreEscapedInExport)
{
    ObsStateGuard guard;
    obs::clearTrace();
    obs::setTraceEnabled(true);
    {
        MIRAGE_SPAN("test.\"esc\"\\\n");
    }
    obs::setTraceEnabled(false);
    std::ostringstream os;
    obs::writeChromeTrace(os);
    const std::string trace = os.str();
    // Quote -> \", backslash -> \\, newline -> \n, so the export stays
    // parseable JSON instead of being rejected wholesale by Perfetto.
    EXPECT_NE(trace.find("test.\\\"esc\\\"\\\\\\n"), std::string::npos)
        << trace;
    obs::clearTrace();
}

TEST(ObsTrace, SummaryListsRecordedSpans)
{
    ObsStateGuard guard;
    obs::clearTrace();
    obs::setTraceEnabled(true);
    {
        MIRAGE_SPAN("test.summary.span");
    }
    obs::setTraceEnabled(false);
    std::ostringstream os;
    obs::writeTraceSummary(os);
    EXPECT_NE(os.str().find("test.summary.span"), std::string::npos)
        << os.str();
    obs::clearTrace();
}

TEST(ObsContext, EngineTasksInheritTheSubmittersRequestId)
{
    // The cross-thread handoff the serve path relies on: RuntimeEngine
    // snapshots currentRequestId() at submit time and re-establishes it
    // on the executing pool thread.
    ObsStateGuard guard;
    runtime::RuntimeEngine engine;
    const uint64_t id = obs::nextRequestId();
    std::atomic<uint64_t> seen{~uint64_t{0}};
    {
        obs::RequestScope scope(id);
        engine
            .submitTask([&](core::MirageAccelerator &, Rng &) {
                seen.store(obs::currentRequestId(),
                           std::memory_order_relaxed);
            })
            .get();
    }
    EXPECT_EQ(seen.load(), id);

    // Outside any request the job runs with the null context.
    engine
        .submitTask([&](core::MirageAccelerator &, Rng &) {
            seen.store(obs::currentRequestId(), std::memory_order_relaxed);
        })
        .get();
    EXPECT_EQ(seen.load(), 0u);
}

namespace {

/** Minimal blocking HTTP GET against 127.0.0.1:`port`; returns the full
 *  response (headers + body) or "" on connect failure. */
std::string
httpGet(int port, const std::string &target)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        return "";
    }
    const std::string req =
        "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
    size_t off = 0;
    while (off < req.size()) {
        const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
        if (n <= 0)
            break;
        off += static_cast<size_t>(n);
    }
    std::string resp;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return resp;
}

} // namespace

TEST(ObsExporter, ServesScrapeEndpointsOnEphemeralPort)
{
    ObsStateGuard guard;
    obs::MetricsRegistry::global().counter("test.exporter.counter").reset();
    obs::MetricsRegistry::global().counter("test.exporter.counter").add(5);

    obs::MetricsExporter exporter(0); // ephemeral port
    ASSERT_GT(exporter.port(), 0);

    const std::string health = httpGet(exporter.port(), "/healthz");
    EXPECT_NE(health.find("200"), std::string::npos) << health;
    EXPECT_NE(health.find("ok"), std::string::npos);

    const std::string metrics = httpGet(exporter.port(), "/metrics");
    EXPECT_NE(metrics.find("200"), std::string::npos);
    EXPECT_NE(metrics.find("text/plain"), std::string::npos);
    EXPECT_NE(metrics.find("mirage_test_exporter_counter 5"),
              std::string::npos)
        << metrics;

    const std::string tracez = httpGet(exporter.port(), "/tracez");
    EXPECT_NE(tracez.find("200"), std::string::npos);

    const std::string missing = httpGet(exporter.port(), "/nope");
    EXPECT_NE(missing.find("404"), std::string::npos) << missing;
    EXPECT_NE(missing.find("/metrics"), std::string::npos); // endpoint list

    EXPECT_GE(exporter.requestsServed(), 4u);
}

TEST(ObsExporter, WriteAllDeliversEveryByteThroughShortWrites)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
#ifdef F_SETPIPE_SZ
    // Shrink the pipe so the writer sees the buffer fill up repeatedly and
    // write() returns short counts instead of taking the payload whole.
    ::fcntl(fds[1], F_SETPIPE_SZ, 4096);
#endif

    std::vector<char> payload(1 << 20);
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>((i * 31 + 7) & 0xff);

    std::vector<char> received;
    received.reserve(payload.size());
    std::thread reader([&] {
        char buf[512]; // small chunks keep the pipe near-full
        for (;;) {
            const ssize_t n = ::read(fds[0], buf, sizeof buf);
            if (n <= 0)
                break;
            received.insert(received.end(), buf, buf + n);
        }
    });

    EXPECT_TRUE(obs::writeAll(fds[1], payload.data(), payload.size()));
    ::close(fds[1]);
    reader.join();
    ::close(fds[0]);

    ASSERT_EQ(received.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), received.begin()));
}

TEST(ObsExporter, WriteAllRetriesInterruptedWrites)
{
    // Install a no-op SIGUSR1 handler WITHOUT SA_RESTART so a blocked
    // write() returns EINTR instead of resuming transparently.
    struct sigaction sa = {};
    sa.sa_handler = [](int) {};
    sa.sa_flags = 0;
    struct sigaction old_sa;
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old_sa), 0);

    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
#ifdef F_SETPIPE_SZ
    ::fcntl(fds[1], F_SETPIPE_SZ, 4096);
#endif

    std::vector<char> payload(256 * 1024);
    for (size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>((i * 13 + 3) & 0xff);

    std::atomic<bool> write_done{false};
    bool write_ok = false;
    std::thread writer([&] {
        write_ok = obs::writeAll(fds[1], payload.data(), payload.size());
        write_done.store(true, std::memory_order_release);
        ::close(fds[1]);
    });

    // Pepper the writer with signals while draining slowly, so some write()
    // calls are interrupted mid-wait on the full pipe.
    std::vector<char> received;
    received.reserve(payload.size());
    char buf[512];
    while (!write_done.load(std::memory_order_acquire) ||
           received.size() < payload.size()) {
        ::pthread_kill(writer.native_handle(), SIGUSR1);
        const ssize_t n = ::read(fds[0], buf, sizeof buf);
        if (n <= 0)
            break;
        received.insert(received.end(), buf, buf + n);
    }
    // Drain whatever is still buffered after the writer finished.
    for (;;) {
        const ssize_t n = ::read(fds[0], buf, sizeof buf);
        if (n <= 0)
            break;
        received.insert(received.end(), buf, buf + n);
    }
    writer.join();
    ::close(fds[0]);
    ::sigaction(SIGUSR1, &old_sa, nullptr);

    EXPECT_TRUE(write_ok);
    ASSERT_EQ(received.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), received.begin()));
}

TEST(ObsExporter, WriteAllReportsPeerClosure)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ::close(sv[0]); // peer goes away

    // MSG_NOSIGNAL in writeAll turns the would-be SIGPIPE into an error
    // return; a large payload guarantees at least one failing send().
    std::vector<char> payload(1 << 20, 'x');
    EXPECT_FALSE(obs::writeAll(sv[1], payload.data(), payload.size()));
    ::close(sv[1]);
}

TEST(ObsFlight, RingKeepsNewestRecordsOldestFirst)
{
    ObsStateGuard guard;
    obs::FlightRecorder &fr = obs::FlightRecorder::global();
    fr.disarm();
    fr.clear();
    EXPECT_EQ(fr.size(), 0u);

    const uint64_t recorded_before = fr.recorded();
    obs::RequestRecord rec;
    for (uint64_t i = 1; i <= 5; ++i) {
        rec.id = i;
        fr.record(rec);
    }
    EXPECT_EQ(fr.size(), 5u);
    EXPECT_EQ(fr.recorded() - recorded_before, 5u);
    std::vector<obs::RequestRecord> snap = fr.snapshot();
    ASSERT_EQ(snap.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(snap[i].id, i + 1); // oldest first

    // Overfill: the ring holds the newest kCapacity records.
    for (uint64_t i = 6; i <= obs::FlightRecorder::kCapacity + 10; ++i) {
        rec.id = i;
        fr.record(rec);
    }
    EXPECT_EQ(fr.size(), obs::FlightRecorder::kCapacity);
    snap = fr.snapshot();
    ASSERT_EQ(snap.size(), obs::FlightRecorder::kCapacity);
    EXPECT_EQ(snap.front().id, 11u);
    EXPECT_EQ(snap.back().id, obs::FlightRecorder::kCapacity + 10);

    // Recording is gated with the rest of the obs layer.
    obs::setEnabled(false);
    rec.id = 999999;
    fr.record(rec);
    EXPECT_EQ(fr.snapshot().back().id, obs::FlightRecorder::kCapacity + 10);
    obs::setEnabled(true);
    fr.clear();
}

TEST(ObsFlight, TriggerDumpsOnlyWhenArmed)
{
    ObsStateGuard guard;
    obs::FlightRecorder &fr = obs::FlightRecorder::global();
    fr.disarm();
    fr.clear();
    fr.setMinTriggerInterval(0.0);

    obs::RequestRecord rec;
    rec.id = 314;
    rec.total_ns = 1000;
    fr.record(rec);

    // Disarmed: trigger is a counted no-op that writes nothing.
    EXPECT_FALSE(fr.armed());
    EXPECT_EQ(fr.trigger("test_reason"), "");

    const std::string dir =
        (std::filesystem::path(testing::TempDir()) / "mirage_flight_test")
            .string();
    std::filesystem::create_directories(dir);
    fr.arm(dir);
    EXPECT_TRUE(fr.armed());
    EXPECT_EQ(fr.armedDir(), dir);

    const uint64_t dumps_before = fr.triggerCount();
    const std::string path = fr.trigger("test_reason");
    ASSERT_NE(path, "");
    EXPECT_EQ(fr.triggerCount(), dumps_before + 1);
    EXPECT_NE(path.find("flight_test_reason_"), std::string::npos) << path;

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string line;
    bool found = false;
    while (std::getline(in, line))
        if (line.find("\"id\":314") != std::string::npos)
            found = true;
    EXPECT_TRUE(found) << path;
    // The companion span snapshot rides along for timeline context.
    const std::string trace_path =
        path.substr(0, path.size() - std::strlen(".jsonl")) + ".trace.json";
    EXPECT_TRUE(std::filesystem::exists(trace_path)) << trace_path;

    // An empty ring is suppressed even when armed.
    fr.clear();
    EXPECT_EQ(fr.trigger("test_reason"), "");

    fr.disarm();
    EXPECT_FALSE(fr.armed());
    fr.setMinTriggerInterval(2.0);
    std::filesystem::remove_all(dir);
}

#if defined(NDEBUG) && !defined(MIRAGE_TEST_TSAN)
TEST(ObsOverhead, DisabledPrimitivesCostAFewNanoseconds)
{
    // The "near-zero cost when off" contract: a disabled record is one
    // relaxed load plus a branch. 30 ns/op is an order of magnitude
    // above the expected cost (~1-2 ns) but still far below anything a
    // real per-record body would cost, so the bound catches a mistake
    // like formatting before the gate without flaking on slow CI.
    ObsStateGuard guard;
    obs::setEnabled(false);
    obs::setTraceEnabled(false);
    obs::Counter &c =
        obs::MetricsRegistry::global().counter("test.overhead.counter");
    obs::Histogram &h =
        obs::MetricsRegistry::global().histogram("test.overhead.hist");
    constexpr uint64_t kIters = 2000000;
    using Clock = std::chrono::steady_clock;

    const auto bound_ns = [](Clock::time_point t0, Clock::time_point t1) {
        return std::chrono::duration<double, std::nano>(t1 - t0).count() /
               static_cast<double>(kIters);
    };

    Clock::time_point t0 = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i)
        c.add(1);
    Clock::time_point t1 = Clock::now();
    EXPECT_LT(bound_ns(t0, t1), 30.0) << "disabled Counter::add";
    EXPECT_EQ(c.value(), 0u);

    t0 = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i)
        h.record(i);
    t1 = Clock::now();
    EXPECT_LT(bound_ns(t0, t1), 30.0) << "disabled Histogram::record";
    EXPECT_EQ(h.count(), 0u);

    t0 = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
        MIRAGE_SPAN("test.overhead.span");
    }
    t1 = Clock::now();
    EXPECT_LT(bound_ns(t0, t1), 30.0) << "disabled TraceSpan";
}

TEST(ObsOverhead, ContextPropagationCostsAFewNanoseconds)
{
    // The request-context handoff rides every engine job regardless of
    // trace state, so it carries the same bound as the disabled
    // primitives: a RequestScope is two thread-local moves, a disabled
    // traceFlow one relaxed load plus a branch.
    ObsStateGuard guard;
    obs::setTraceEnabled(false);
    constexpr uint64_t kIters = 2000000;
    using Clock = std::chrono::steady_clock;

    const auto bound_ns = [](Clock::time_point t0, Clock::time_point t1) {
        return std::chrono::duration<double, std::nano>(t1 - t0).count() /
               static_cast<double>(kIters);
    };

    uint64_t acc = 0;
    Clock::time_point t0 = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i) {
        obs::RequestScope scope(i + 1);
        acc += obs::currentRequestId();
    }
    Clock::time_point t1 = Clock::now();
    EXPECT_LT(bound_ns(t0, t1), 30.0) << "RequestScope save/set/restore";
    EXPECT_EQ(acc, kIters * (kIters + 1) / 2); // keeps the loop live

    t0 = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i)
        obs::traceFlow("test.overhead.flow", i + 1, 't');
    t1 = Clock::now();
    EXPECT_LT(bound_ns(t0, t1), 30.0) << "disabled traceFlow";
}
#endif // NDEBUG && !TSan

} // namespace
} // namespace mirage
