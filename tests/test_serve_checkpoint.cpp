/**
 * @file
 * serve/checkpoint tests: named-parameter enumeration, bit-exact
 * save -> load round trips (in memory and through a file), optimizer
 * state round trips, corruption detection, and mismatch errors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "core/mirage.h"
#include "models/trainable.h"
#include "nn/data.h"
#include "obs/metrics.h"
#include "serve/checkpoint.h"
#include "test_support.h"

namespace {

using namespace mirage;

/** Temp file that deletes itself. */
struct TempFile
{
    std::string path;
    explicit TempFile(const std::string &name)
        : path(::testing::TempDir() + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
};

/** A small MLP on the accelerator backend with per-test-seeded weights. */
struct CheckpointTest : test::SeededTest
{
    CheckpointTest() : accel(arch::MirageConfig{})
    {
        net = models::makeMlp(12, 16, 4, accel.backend(), rng);
    }

    nn::Tensor
    randomInput(int batch)
    {
        nn::Tensor x({batch, 12});
        for (int64_t i = 0; i < x.size(); ++i)
            x[i] = static_cast<float>(rng.gaussian());
        return x;
    }

    core::MirageAccelerator accel;
    std::unique_ptr<nn::Sequential> net;
};

TEST_F(CheckpointTest, NamedParamPathsAreUniqueAndStructureStable)
{
    const std::vector<nn::NamedParam> params = net->namedParams();
    ASSERT_FALSE(params.empty());
    std::set<std::string> paths;
    for (const nn::NamedParam &np : params) {
        ASSERT_NE(np.param, nullptr);
        EXPECT_TRUE(paths.insert(np.path).second)
            << "duplicate path " << np.path;
        // Sequential prefixes are positional: "l<i>.<layer param name>".
        EXPECT_EQ(np.path[0], 'l');
    }
    EXPECT_EQ(params.size(), net->params().size());
}

TEST_F(CheckpointTest, ResidualBlockPathsCoverBothbranches)
{
    core::MirageAccelerator a2{arch::MirageConfig{}};
    nn::Sequential model;
    auto main_path = std::make_unique<nn::Sequential>();
    main_path->emplace<nn::Dense>(8, 8, a2.backend(), rng);
    auto shortcut = std::make_unique<nn::Sequential>();
    shortcut->emplace<nn::Dense>(8, 8, a2.backend(), rng, false);
    model.add(std::make_unique<nn::ResidualBlock>(std::move(main_path),
                                                  std::move(shortcut)));
    const std::vector<nn::NamedParam> params = model.namedParams();
    std::set<std::string> paths;
    for (const auto &np : params)
        paths.insert(np.path);
    EXPECT_TRUE(paths.count("l0.main.l0.dense.weight"));
    EXPECT_TRUE(paths.count("l0.main.l0.dense.bias"));
    EXPECT_TRUE(paths.count("l0.shortcut.l0.dense.weight"));
}

TEST_F(CheckpointTest, SerializeDeserializeRoundTripIsExact)
{
    const serve::Checkpoint ckpt = serve::snapshot(*net, "mlp");
    const std::vector<uint8_t> bytes = serve::serialize(ckpt);
    const serve::Checkpoint back = serve::deserialize(bytes);

    EXPECT_EQ(back.model_name, "mlp");
    EXPECT_EQ(back.version, serve::kFormatVersion);
    ASSERT_EQ(back.tensors.size(), ckpt.tensors.size());
    for (size_t i = 0; i < ckpt.tensors.size(); ++i) {
        EXPECT_EQ(back.tensors[i].name, ckpt.tensors[i].name);
        EXPECT_EQ(back.tensors[i].shape, ckpt.tensors[i].shape);
        // Bit-exact float round trip.
        EXPECT_EQ(back.tensors[i].data, ckpt.tensors[i].data);
    }
}

TEST_F(CheckpointTest, SaveLoadForwardIsBitIdentical)
{
    const nn::Tensor x = randomInput(5);
    const nn::Tensor before = net->forward(x, false);

    TempFile file("ckpt_roundtrip.mirckpt");
    serve::saveFile(serve::snapshot(*net, "mlp"), file.path);

    // A fresh net with different init weights, restored from the file.
    core::MirageAccelerator accel2{arch::MirageConfig{}};
    Rng other(rng.seed() + 1);
    std::unique_ptr<nn::Sequential> net2 =
        models::makeMlp(12, 16, 4, accel2.backend(), other);
    serve::restore(serve::loadFile(file.path), *net2);

    const nn::Tensor after = net2->forward(x, false);
    ASSERT_EQ(after.size(), before.size());
    for (int64_t i = 0; i < before.size(); ++i)
        EXPECT_EQ(after[i], before[i]) << "output " << i;
}

TEST_F(CheckpointTest, OptimizerStateRoundTripsThroughTraining)
{
    // A couple of Adam steps materialize m/v and the step counter.
    nn::Adam opt(1e-3f);
    const std::vector<nn::Param *> params = net->params();
    for (int step = 0; step < 3; ++step) {
        nn::Optimizer::zeroGrad(params);
        const nn::Tensor x = randomInput(4);
        const nn::Tensor logits = net->forward(x, true);
        const nn::LossResult loss =
            nn::softmaxCrossEntropy(logits, {0, 1, 2, 3});
        net->backward(loss.grad);
        opt.step(params);
    }

    const serve::Checkpoint ckpt = serve::snapshot(*net, "mlp", &opt);
    EXPECT_EQ(ckpt.optimizer_type, "adam");
    EXPECT_EQ(ckpt.optimizer_step, 3);
    EXPECT_FALSE(ckpt.optimizer_state.empty());

    // Restore into a fresh net + fresh optimizer; continue training in
    // both and verify the trajectories stay bit-identical.
    core::MirageAccelerator accel2{arch::MirageConfig{}};
    Rng other(rng.seed() + 99);
    std::unique_ptr<nn::Sequential> net2 =
        models::makeMlp(12, 16, 4, accel2.backend(), other);
    nn::Adam opt2(1e-3f);
    serve::restore(serve::deserialize(serve::serialize(ckpt)), *net2, &opt2);
    EXPECT_EQ(opt2.stepCount(), 3);

    const std::vector<nn::Param *> params2 = net2->params();
    for (int step = 0; step < 2; ++step) {
        const nn::Tensor x = randomInput(4);
        for (auto *ps : {&params, &params2})
            nn::Optimizer::zeroGrad(*ps);
        const nn::Tensor l1 = net->forward(x, true);
        const nn::Tensor l2 = net2->forward(x, true);
        const nn::LossResult r1 = nn::softmaxCrossEntropy(l1, {3, 2, 1, 0});
        const nn::LossResult r2 = nn::softmaxCrossEntropy(l2, {3, 2, 1, 0});
        net->backward(r1.grad);
        net2->backward(r2.grad);
        opt.step(params);
        opt2.step(params2);
    }
    const std::vector<nn::NamedParam> a = net->namedParams();
    const std::vector<nn::NamedParam> b = net2->namedParams();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].param->value.vec(), b[i].param->value.vec())
            << "diverged at " << a[i].path;
}

TEST_F(CheckpointTest, SgdVelocityRoundTrips)
{
    nn::Sgd opt(0.1f, 0.9f);
    const std::vector<nn::Param *> params = net->params();
    nn::Optimizer::zeroGrad(params);
    const nn::Tensor x = randomInput(2);
    const nn::Tensor logits = net->forward(x, true);
    net->backward(nn::softmaxCrossEntropy(logits, {0, 1}).grad);
    opt.step(params);

    const serve::Checkpoint ckpt = serve::snapshot(*net, "mlp", &opt);
    EXPECT_EQ(ckpt.optimizer_type, "sgd");
    EXPECT_EQ(ckpt.optimizer_state.size(), params.size());

    nn::Sgd opt2(0.1f, 0.9f);
    serve::restore(ckpt, *net, &opt2);
    for (const nn::NamedParam &np : net->namedParams()) {
        EXPECT_EQ(opt2.stateSlot(np.param, "velocity"),
                  opt.stateSlot(np.param, "velocity"))
            << np.path;
    }
}

TEST_F(CheckpointTest, RestoringIntoWrongOptimizerTypeThrows)
{
    nn::Sgd sgd(0.1f, 0.9f);
    const std::vector<nn::Param *> params = net->params();
    nn::Optimizer::zeroGrad(params);
    const nn::Tensor logits = net->forward(randomInput(2), true);
    net->backward(nn::softmaxCrossEntropy(logits, {0, 1}).grad);
    sgd.step(params);
    const serve::Checkpoint ckpt = serve::snapshot(*net, "mlp", &sgd);

    nn::Adam adam(1e-3f);
    EXPECT_THROW(serve::restore(ckpt, *net, &adam), serve::CheckpointError);
}

TEST_F(CheckpointTest, RestoringIntoMismatchedArchitectureThrows)
{
    const serve::Checkpoint ckpt = serve::snapshot(*net, "mlp");

    core::MirageAccelerator accel2{arch::MirageConfig{}};
    Rng other(123);
    std::unique_ptr<nn::Sequential> wider =
        models::makeMlp(12, 24, 4, accel2.backend(), other);
    EXPECT_THROW(serve::restore(ckpt, *wider), serve::CheckpointError);
}

TEST_F(CheckpointTest, CorruptionIsDetected)
{
    std::vector<uint8_t> bytes =
        serve::serialize(serve::snapshot(*net, "mlp"));

    // Flip one payload byte: checksum must catch it.
    std::vector<uint8_t> flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    EXPECT_THROW(serve::deserialize(flipped), serve::CheckpointError);

    // Truncation.
    std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 9);
    EXPECT_THROW(serve::deserialize(truncated), serve::CheckpointError);

    // Bad magic.
    std::vector<uint8_t> wrong = bytes;
    wrong[0] = 'X';
    EXPECT_THROW(serve::deserialize(wrong), serve::CheckpointError);

    // Unsupported future version.
    std::vector<uint8_t> future_version = bytes;
    future_version[8] = 99;
    EXPECT_THROW(serve::deserialize(future_version),
                 serve::CheckpointError);
}

TEST_F(CheckpointTest, OldFormatVersionIsRejected)
{
    // A v1 file (pre-metadata) must be rejected, not silently read with
    // its resume state missing: a Trainer resumed from it could not be
    // bit-identical. Byte 8 is the LSB of the little-endian version word.
    ASSERT_GE(serve::kFormatVersion, 2u);
    const std::vector<uint8_t> bytes =
        serve::serialize(serve::snapshot(*net, "mlp"));
    std::vector<uint8_t> old_version = bytes;
    old_version[8] = 1;
    try {
        serve::deserialize(old_version);
        FAIL() << "v1 checkpoint was accepted";
    } catch (const serve::CheckpointError &e) {
        EXPECT_NE(std::string(e.what()).find("version 1"),
                  std::string::npos)
            << "error should name the offending version: " << e.what();
    }
}

TEST_F(CheckpointTest, MetadataRoundTripsBitExactly)
{
    serve::Checkpoint ckpt = serve::snapshot(*net, "mlp");
    ckpt.metadata["train/step"] = 42;
    ckpt.metadata["train/epoch"] = 3;
    ckpt.metadata["train/data_seed"] =
        static_cast<int64_t>(0xDEADBEEFCAFEF00Dull); // u64 bit pattern
    ckpt.metadata["train/negative"] = -7;

    const serve::Checkpoint back =
        serve::deserialize(serve::serialize(ckpt));
    EXPECT_EQ(back.metadata, ckpt.metadata);
    EXPECT_EQ(back.meta("train/step"), 42);
    EXPECT_EQ(back.meta("train/negative"), -7);
    EXPECT_EQ(back.meta("absent", -1), -1);
    EXPECT_TRUE(back.hasMeta("train/epoch"));
    EXPECT_FALSE(back.hasMeta("train/missing"));
}

TEST_F(CheckpointTest, MissingFileThrows)
{
    EXPECT_THROW(serve::loadFile("/nonexistent/ckpt.bin"),
                 serve::CheckpointError);
}

// Little-endian writers mirroring the wire format, for crafting
// adversarial inputs the serializer itself would never produce.
void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

std::vector<uint8_t>
craftedFile(uint64_t body_len, const std::vector<uint8_t> &body_and_rest)
{
    std::vector<uint8_t> bytes = {'M', 'I', 'R', 'C', 'K', 'P', 'T', '\0'};
    putU32(bytes, serve::kFormatVersion);
    putU64(bytes, body_len);
    bytes.insert(bytes.end(), body_and_rest.begin(), body_and_rest.end());
    return bytes;
}

TEST_F(CheckpointTest, CraftedBodyLengthCannotWrapAroundTheSizeCheck)
{
    // body_len chosen so body_len + 8 wraps to the 0 bytes remaining: an
    // additive length check would accept this and read out of bounds.
    EXPECT_THROW(serve::deserialize(craftedFile(0xFFFFFFFFFFFFFFF8ull, {})),
                 serve::CheckpointError);
    EXPECT_THROW(serve::deserialize(craftedFile(0xFFFFFFFFFFFFFFFFull,
                                                {0, 0, 0})),
                 serve::CheckpointError);
}

TEST_F(CheckpointTest, CraftedTensorDimensionsCannotOverflowElementCount)
{
    // A tensor claiming 2^31-1 x 2^31-1 x 2^31-1 elements: the partial
    // products overflow int64; the reader must reject it as oversized
    // instead of wrapping to a small count.
    std::vector<uint8_t> body;
    putU32(body, 1); // model name "m"
    body.push_back('m');
    putU32(body, 1); // one tensor
    putU32(body, 1); // tensor name "t"
    body.push_back('t');
    putU32(body, 3); // rank 3
    for (int i = 0; i < 3; ++i)
        putU32(body, 0x7FFFFFFFu);
    // No data bytes: the size guard must fire before any read.
    std::vector<uint8_t> rest = body;
    uint64_t checksum = 1469598103934665603ull;
    for (uint8_t b : body) {
        checksum ^= b;
        checksum *= 1099511628211ull;
    }
    putU64(rest, checksum);
    EXPECT_THROW(serve::deserialize(craftedFile(body.size(), rest)),
                 serve::CheckpointError);
}

// ---------------------------------------------------------------------------
// On-disk damage classification and the .last_good fallback
// ---------------------------------------------------------------------------

/** Temp checkpoint path that also cleans its .last_good sibling. */
struct TempCheckpoint
{
    std::string path;
    explicit TempCheckpoint(const std::string &name)
        : path(::testing::TempDir() + name)
    {
        cleanup();
    }
    ~TempCheckpoint() { cleanup(); }
    void
    cleanup()
    {
        std::remove(path.c_str());
        std::remove((path + ".last_good").c_str());
    }
};

std::vector<uint8_t>
readBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(is),
                                std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(os.good()) << path;
}

/** loadFile(path) expecting a CheckpointError of `kind` whose message
 *  contains `phrase`. */
void
expectLoadError(const std::string &path, serve::CheckpointError::Kind kind,
                const std::string &phrase)
{
    try {
        serve::loadFile(path);
        FAIL() << "load of damaged '" << path << "' succeeded";
    } catch (const serve::CheckpointError &e) {
        EXPECT_EQ(static_cast<int>(e.kind()), static_cast<int>(kind))
            << e.what();
        EXPECT_NE(std::string(e.what()).find(phrase), std::string::npos)
            << "message should mention '" << phrase << "': " << e.what();
    }
}

TEST_F(CheckpointTest, ByteFlipsAtSeveralOffsetsReportChecksumMismatch)
{
    // One saved generation, no .last_good sibling: damage must surface as
    // a classified CheckpointError, and any body-byte flip — early, the
    // middle, the end of the body, or inside the trailing checksum — must
    // deterministically report ChecksumMismatch, never a parse error from
    // whatever structure the flipped byte happened to hit.
    TempCheckpoint file("ckpt_flip.mirckpt");
    serve::saveFile(serve::snapshot(*net, "mlp"), file.path);
    const std::vector<uint8_t> good = readBytes(file.path);
    constexpr size_t kHeader = 20; // magic + version + body length

    ASSERT_GT(good.size(), kHeader + 16);
    const size_t offsets[] = {kHeader, good.size() / 4, good.size() / 2,
                              good.size() - 9, // last body byte
                              good.size() - 1}; // inside stored checksum
    for (const size_t off : offsets) {
        std::vector<uint8_t> bad = good;
        bad[off] ^= 0x01;
        writeBytes(file.path, bad);
        SCOPED_TRACE("flip at offset " + std::to_string(off));
        expectLoadError(file.path,
                        serve::CheckpointError::Kind::ChecksumMismatch,
                        "checksum mismatch");
    }
}

TEST_F(CheckpointTest, TruncationAtSeveralOffsetsReportsTruncated)
{
    // Cut the file short at several points — inside the header, inside
    // the body, one byte shy of complete: every cut must classify as
    // Truncated (a torn write), not Malformed or ChecksumMismatch.
    TempCheckpoint file("ckpt_trunc.mirckpt");
    serve::saveFile(serve::snapshot(*net, "mlp"), file.path);
    const std::vector<uint8_t> good = readBytes(file.path);

    for (const size_t keep :
         {size_t{0}, size_t{7}, size_t{19}, good.size() / 3,
          good.size() / 2, good.size() - 1}) {
        std::vector<uint8_t> cut(good.begin(),
                                 good.begin() + static_cast<long>(keep));
        writeBytes(file.path, cut);
        SCOPED_TRACE("truncate to " + std::to_string(keep) + " bytes");
        expectLoadError(file.path, serve::CheckpointError::Kind::Truncated,
                        "truncated");
    }
}

TEST_F(CheckpointTest, LastGoodFallbackRecoversDamagedPrimary)
{
    // Two saves rotate generation 1 into .last_good. Damaging the primary
    // must fall back to the intact previous generation (loudly, with the
    // serve.ckpt.fallbacks counter bumped) for both recoverable kinds.
    TempCheckpoint file("ckpt_fallback.mirckpt");
    serve::Checkpoint gen = serve::snapshot(*net, "mlp");
    gen.metadata["train/step"] = 1;
    serve::saveFile(gen, file.path);
    gen.metadata["train/step"] = 2;
    serve::saveFile(gen, file.path);
    const std::vector<uint8_t> primary = readBytes(file.path);

    obs::Counter &fallbacks =
        obs::MetricsRegistry::global().counter("serve.ckpt.fallbacks");
    const uint64_t before = fallbacks.value();

    // Checksum damage.
    std::vector<uint8_t> flipped = primary;
    flipped[flipped.size() / 2] ^= 0xff;
    writeBytes(file.path, flipped);
    EXPECT_EQ(serve::loadFile(file.path).meta("train/step"), 1);
    EXPECT_EQ(fallbacks.value() - before, 1u);

    // Torn write.
    writeBytes(file.path,
               std::vector<uint8_t>(primary.begin(),
                                    primary.begin() +
                                        static_cast<long>(primary.size() /
                                                          2)));
    EXPECT_EQ(serve::loadFile(file.path).meta("train/step"), 1);
    EXPECT_EQ(fallbacks.value() - before, 2u);

    // Intact primary never consults the fallback.
    writeBytes(file.path, primary);
    EXPECT_EQ(serve::loadFile(file.path).meta("train/step"), 2);
    EXPECT_EQ(fallbacks.value() - before, 2u);
}

TEST_F(CheckpointTest, FallbackIsSkippedForNonRecoverableDamage)
{
    // Structural damage (bad magic) is not something a stale sibling can
    // fix — an operator pointing at the wrong file should hear about it,
    // not silently get old weights.
    TempCheckpoint file("ckpt_no_fallback.mirckpt");
    const serve::Checkpoint gen = serve::snapshot(*net, "mlp");
    serve::saveFile(gen, file.path);
    serve::saveFile(gen, file.path); // rotate an intact .last_good
    std::vector<uint8_t> bad = readBytes(file.path);
    bad[0] = 'X';
    writeBytes(file.path, bad);
    expectLoadError(file.path, serve::CheckpointError::Kind::Malformed,
                    "bad magic");
}

TEST_F(CheckpointTest, DamagedPrimaryWithoutFallbackRethrows)
{
    TempCheckpoint file("ckpt_lone.mirckpt");
    serve::saveFile(serve::snapshot(*net, "mlp"), file.path);
    std::vector<uint8_t> bad = readBytes(file.path);
    bad[bad.size() / 2] ^= 0xff;
    writeBytes(file.path, bad);
    // Single generation: no .last_good exists, the primary error
    // propagates with its classification intact.
    expectLoadError(file.path,
                    serve::CheckpointError::Kind::ChecksumMismatch,
                    "checksum mismatch");
}

} // namespace
