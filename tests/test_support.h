#ifndef MIRAGE_TESTS_TEST_SUPPORT_H
#define MIRAGE_TESTS_TEST_SUPPORT_H

/**
 * @file
 * Shared infrastructure for the Mirage test suites: deterministic RNG
 * fixtures, ULP/relative-tolerance matchers, a golden reference GEMM, and
 * moduli-set factories for the configurations the paper exercises.
 *
 * Everything lives in namespace mirage::test and is header-only so each
 * suite stays a single translation unit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"
#include "rns/moduli_set.h"

namespace mirage {
namespace test {

// ---------------------------------------------------------------------------
// Deterministic RNG fixtures
// ---------------------------------------------------------------------------

/**
 * Fixture whose Rng is seeded from the running test's full name, so every
 * test gets a stable-but-distinct stream: re-running a single test
 * reproduces its exact data without sharing a sequence with its neighbours.
 */
class SeededTest : public ::testing::Test
{
  protected:
    SeededTest() : rng(seedFromTestName()) {}

    /** FNV-1a hash of "Suite.TestName" — stable across runs and platforms. */
    static uint64_t
    seedFromTestName()
    {
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        std::string name = "mirage";
        if (info != nullptr) {
            name = std::string(info->test_suite_name()) + "." + info->name();
        }
        uint64_t h = 1469598103934665603ull;
        for (const char c : name) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
        return h;
    }

    Rng rng;
};

/** Fills a vector with uniform integers in [lo, hi]. */
inline std::vector<int64_t>
randomIntVector(Rng &rng, size_t n, int64_t lo, int64_t hi)
{
    std::vector<int64_t> v(n);
    for (auto &x : v)
        x = rng.uniformInt(lo, hi);
    return v;
}

/** Fills a vector with uniform reals in [lo, hi). */
inline std::vector<float>
randomRealVector(Rng &rng, size_t n, double lo, double hi)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniformReal(lo, hi));
    return v;
}

/** Fills a vector with Gaussian samples. */
inline std::vector<float>
gaussianVector(Rng &rng, size_t n, double mean = 0.0, double sigma = 1.0)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian(mean, sigma));
    return v;
}

// ---------------------------------------------------------------------------
// ULP / relative-tolerance matchers
// ---------------------------------------------------------------------------

/** Distance in representable floats between a and b (0 when bit-equal). */
inline uint64_t
ulpDiff(float a, float b)
{
    if (std::isnan(a) || std::isnan(b))
        return UINT64_MAX;
    int32_t ia;
    int32_t ib;
    std::memcpy(&ia, &a, sizeof(ia));
    std::memcpy(&ib, &b, sizeof(ib));
    // Map the sign-magnitude float ordering onto a monotone integer line.
    const int64_t la = (ia < 0) ? INT64_C(-2147483648) - ia : ia;
    const int64_t lb = (ib < 0) ? INT64_C(-2147483648) - ib : ib;
    return static_cast<uint64_t>(la > lb ? la - lb : lb - la);
}

/**
 * Predicate for EXPECT_TRUE: actual is within max_ulps representable floats
 * of expected. The failure message carries the observed ULP distance.
 * (Plain gtest AssertionResult — the image ships gtest without gmock, so
 * MATCHER_P-style matchers are not available.)
 */
inline ::testing::AssertionResult
ulpClose(float actual, float expected, uint64_t max_ulps)
{
    const uint64_t d = ulpDiff(actual, expected);
    if (d <= max_ulps)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << actual << " is " << d << " ULPs from " << expected
           << " (allowed " << max_ulps << ")";
}

/**
 * Predicate for EXPECT_TRUE: |actual - expected| <= rel_tol * |expected|,
 * with expected == 0 requiring actual == 0.
 */
inline ::testing::AssertionResult
relClose(double actual, double expected, double rel_tol)
{
    if (expected == 0.0) {
        if (actual == 0.0)
            return ::testing::AssertionSuccess();
        return ::testing::AssertionFailure()
               << actual << " differs from an exact zero expectation";
    }
    const double rel = std::fabs(actual - expected) / std::fabs(expected);
    if (rel <= rel_tol)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << actual << " has relative error " << rel << " vs " << expected
           << " (allowed " << rel_tol << ")";
}

// ---------------------------------------------------------------------------
// Golden reference GEMM
// ---------------------------------------------------------------------------

/**
 * Naive triple-loop C = A(m x k) * B(k x n), row-major. The accumulator type
 * is the element type itself, so int64_t inputs check exact integer GEMMs and
 * float inputs produce the order-independent-enough reference the BFP and
 * photonic suites compare against.
 */
template <typename T>
std::vector<T>
referenceGemm(const std::vector<T> &a, const std::vector<T> &b, int64_t m,
              int64_t k, int64_t n)
{
    std::vector<T> c(static_cast<size_t>(m) * n, T{0});
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t kk = 0; kk < k; ++kk) {
            const T aik = a[static_cast<size_t>(i) * k + kk];
            for (int64_t j = 0; j < n; ++j) {
                c[static_cast<size_t>(i) * n + j] +=
                    aik * b[static_cast<size_t>(kk) * n + j];
            }
        }
    }
    return c;
}

// ---------------------------------------------------------------------------
// Moduli-set factories
// ---------------------------------------------------------------------------

/** The paper's main configuration: special set {31, 32, 33} (k = 5). */
inline rns::ModuliSet
paperModuli()
{
    return rns::ModuliSet::special(5);
}

/** A tiny hand-checkable set {3, 4, 5}: M = 60, psi = 29. */
inline rns::ModuliSet
tinyModuli()
{
    return rns::ModuliSet({3, 4, 5});
}

/** A wide co-prime set near 8 bits per residue, for conversion stress. */
inline rns::ModuliSet
wideModuli()
{
    return rns::ModuliSet({251, 253, 255, 256, 257});
}

// ---------------------------------------------------------------------------
// Layer gradient checking
// ---------------------------------------------------------------------------

/** Scalar probe loss: L = sum_i c_i * y_i with fixed random weights c. */
struct ProbeLoss
{
    nn::Tensor c;

    ProbeLoss(const nn::Tensor &y, Rng &rng)
    {
        c = nn::Tensor(y.shape());
        for (int64_t i = 0; i < c.size(); ++i)
            c[i] = static_cast<float>(rng.gaussian());
    }

    float
    value(const nn::Tensor &y) const
    {
        double s = 0.0;
        for (int64_t i = 0; i < y.size(); ++i)
            s += static_cast<double>(c[i]) * y[i];
        return static_cast<float>(s);
    }
};

/**
 * Central-difference gradient check for `layer` on input `x`: verifies
 * dL/dx and dL/dtheta for a strided subset of every parameter. A layer
 * whose backward pass disagrees with numeric gradients would silently
 * corrupt every accuracy experiment, so this is the framework's bedrock
 * check.
 */
inline void
gradCheck(nn::Layer &layer, nn::Tensor x, double tol = 2e-2)
{
    Rng rng(1234);
    nn::Tensor y0 = layer.forward(x, true);
    ProbeLoss probe(y0, rng);

    // Analytic gradients.
    for (nn::Param *p : layer.params())
        p->zeroGrad();
    layer.forward(x, true);
    const nn::Tensor dx = layer.backward(probe.c);

    const float eps = 1e-3f;
    auto check = [&](float analytic, const std::function<void(float)> &set,
                     float original, const char *what, int64_t idx) {
        set(original + eps);
        const float up = probe.value(layer.forward(x, true));
        set(original - eps);
        const float down = probe.value(layer.forward(x, true));
        set(original);
        const float numeric = (up - down) / (2.0f * eps);
        const double bound =
            tol * std::max(1.0, std::fabs(static_cast<double>(numeric)));
        EXPECT_NEAR(analytic, numeric, bound) << what << "[" << idx << "]";
    };

    // Check a strided subset of input gradients (cost control).
    const int64_t x_stride = std::max<int64_t>(1, x.size() / 24);
    for (int64_t i = 0; i < x.size(); i += x_stride) {
        const float orig = x[i];
        check(dx[i], [&](float v) { x[i] = v; }, orig, "dx", i);
    }

    // Check a strided subset of every parameter's gradients.
    for (nn::Param *p : layer.params()) {
        const int64_t stride = std::max<int64_t>(1, p->value.size() / 16);
        for (int64_t i = 0; i < p->value.size(); i += stride) {
            const float orig = p->value[i];
            check(p->grad[i], [&](float v) { p->value[i] = v; }, orig,
                  p->name.c_str(), i);
        }
    }
}

/** Deterministic Gaussian tensor for gradient-check inputs. */
inline nn::Tensor
randomTensor(std::vector<int> shape, uint64_t seed, float stddev = 1.0f)
{
    Rng rng(seed);
    return nn::Tensor::randn(std::move(shape), rng, stddev);
}

} // namespace test
} // namespace mirage

#endif // MIRAGE_TESTS_TEST_SUPPORT_H
