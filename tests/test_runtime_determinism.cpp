/**
 * @file
 * Thread-count invariance tests: every parallelized hot path — BFP/RNS
 * GEMMs (deterministic and stochastic rounding), the photonic pipeline
 * with noise injection, and a full training run through the nn:: stack —
 * must produce bit-identical results at 1 thread and at 8 threads. This is
 * the guarantee that lets the runtime engine scale without changing any
 * experiment's numbers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bfp/bfp_gemm.h"
#include "models/trainable.h"
#include "nn/data.h"
#include "nn/gemm_backend.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "photonic/mmvmu.h"
#include "rns/modular_gemm.h"
#include "runtime/thread_pool.h"
#include "test_support.h"

namespace {

using namespace mirage;

/** Runs fn at 1 thread and at 8 threads, restoring the default after. */
template <typename F>
auto
atThreadCounts(F fn) -> std::pair<decltype(fn()), decltype(fn())>
{
    runtime::ThreadPool::setGlobalThreads(1);
    auto serial = fn();
    runtime::ThreadPool::setGlobalThreads(8);
    auto parallel = fn();
    runtime::ThreadPool::setGlobalThreads(0);
    return {std::move(serial), std::move(parallel)};
}

class RuntimeDeterminism : public mirage::test::SeededTest
{
};

TEST_F(RuntimeDeterminism, BfpRnsGemmIsThreadCountInvariant)
{
    // Large enough that the compute loop is above the serialBelow cutoff:
    // the 8-thread run genuinely executes in parallel.
    const int m = 48, k = 48, n = 32;
    const auto a = mirage::test::gaussianVector(rng, static_cast<size_t>(m) * k);
    const auto b = mirage::test::gaussianVector(rng, static_cast<size_t>(k) * n);

    auto [serial, parallel] = atThreadCounts([&] {
        bfp::BfpGemmOptions opts;
        opts.moduli = mirage::test::paperModuli();
        return bfp::bfpGemm(a, b, m, k, n, opts);
    });
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "element " << i;
}

TEST_F(RuntimeDeterminism, StochasticRoundingGemmIsThreadCountInvariant)
{
    // Stochastic rounding draws randomness, yet per-row Rng::split streams
    // make the result a function of the seed only, not the thread count.
    // m*k exceeds the encode cutoff, so parallel encoding really runs.
    const int m = 192, k = 96, n = 8;
    const auto a = mirage::test::gaussianVector(rng, static_cast<size_t>(m) * k);
    const auto b = mirage::test::gaussianVector(rng, static_cast<size_t>(k) * n);

    auto [serial, parallel] = atThreadCounts([&] {
        Rng gemm_rng(20240607);
        bfp::BfpGemmOptions opts;
        opts.config = bfp::BfpConfig{4, 16, bfp::Rounding::Stochastic};
        opts.rng = &gemm_rng;
        return bfp::bfpGemm(a, b, m, k, n, opts);
    });
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "element " << i;
}

TEST_F(RuntimeDeterminism, ModularGemmIsThreadCountInvariant)
{
    const int m = 64, k = 40, n = 32; // above the serialBelow cutoff
    const auto a = mirage::test::randomIntVector(
        rng, static_cast<size_t>(m) * k, 0, 30);
    const auto b = mirage::test::randomIntVector(
        rng, static_cast<size_t>(k) * n, 0, 30);
    std::vector<rns::Residue> ra(a.begin(), a.end());
    std::vector<rns::Residue> rb(b.begin(), b.end());

    auto [serial, parallel] = atThreadCounts([&] {
        std::vector<rns::Residue> c;
        rns::modularGemm(ra, rb, c, m, k, n, 31);
        return c;
    });
    EXPECT_EQ(serial, parallel);
}

TEST_F(RuntimeDeterminism, NoisyPhotonicMvmIsThreadCountInvariant)
{
    photonic::PhotonicNoiseConfig noise;
    noise.eps_ps = std::exp2(-9);
    noise.eps_mrr = 0.0005;
    // 128 rows x g=64 puts both the per-unit loop and each unit's row loop
    // above the serialBelow cutoffs.
    const auto tile =
        mirage::test::randomIntVector(rng, 128 * 64, -15, 15);
    const auto x = mirage::test::randomIntVector(rng, 64, -15, 15);

    auto [serial, parallel] = atThreadCounts([&] {
        photonic::RnsMmvmu array(mirage::test::paperModuli(), 128, 64,
                                 photonic::DeviceKit{}, 10e9, noise);
        array.programTile(tile, 128, 64);
        Rng noise_rng(5150);
        std::vector<std::vector<int64_t>> outs;
        for (int rep = 0; rep < 3; ++rep)
            outs.push_back(array.mvm(x, &noise_rng));
        return outs;
    });
    EXPECT_EQ(serial, parallel);
}

TEST_F(RuntimeDeterminism, TrainingStepThroughParallelBackendMatchesSerial)
{
    // One full training run (forward, backward, optimizer updates) through
    // the Mirage BFP+RNS backend: weights after training must be
    // bit-identical at every thread count.
    auto trainedWeights = [] {
        numerics::FormatGemmConfig fmt;
        fmt.moduli = mirage::test::paperModuli();
        nn::FormatBackend backend(numerics::DataFormat::MirageBfpRns, fmt, 3);

        Rng init_rng(42);
        auto model = models::makeMlp(8, 16, 3, &backend, init_rng);
        const nn::Dataset all = nn::makeGaussianClusters(96, 3, 8, 3.0f, 11);
        const nn::Dataset train = all.slice(0, 64);
        const nn::Dataset test = all.slice(64, 32);
        nn::Sgd opt(0.05f);
        nn::TrainConfig cfg;
        cfg.epochs = 2;
        cfg.batch_size = 16;
        cfg.verbose = false;
        nn::trainClassifier(*model, opt, train, test, cfg);

        std::vector<float> weights;
        for (nn::Param *p : model->params())
            for (int64_t i = 0; i < p->value.size(); ++i)
                weights.push_back(p->value[i]);
        return weights;
    };

    auto [serial, parallel] = atThreadCounts(trainedWeights);
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_FALSE(serial.empty());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "weight " << i;
}

} // namespace
