/**
 * @file
 * Allocation-count guard for the GEMM/conv hot paths: a counting global
 * operator new/delete plus a GemmBackend decorator that arms the counter
 * around every GEMM executed by a real training loop. After warm-up (arena
 * growth, cache fills, codec construction) the steady-state hot path must
 * perform ZERO heap allocations — the contract the Workspace refactor
 * establishes (see README "Performance & memory model").
 *
 * The suite pins the global pool to one worker: the single-thread
 * parallelFor fast path is inline and allocation-free, so the counter sees
 * the whole kernel. (Multi-thread dispatch allocates per-call task state in
 * the pool itself — a documented, separate cost.)
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "models/trainable.h"
#include "nn/data.h"
#include "nn/gemm_backend.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rns/modular_gemm.h"
#include "runtime/thread_pool.h"
#include "test_support.h"
#include "train/trainer.h"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<int64_t> g_alloc_count{0};

void *
countedAlloc(std::size_t size)
{
    if (g_armed.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(size == 0 ? 1 : size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

} // namespace

// Binary-wide counting allocator (all usual forms; alignment handled with
// aligned_alloc so over-aligned types stay correct).
void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}
void *
operator new(std::size_t size, std::align_val_t al)
{
    if (g_armed.load(std::memory_order_relaxed))
        g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    void *p = std::aligned_alloc(static_cast<std::size_t>(al),
                                 (size + static_cast<std::size_t>(al) - 1) &
                                     ~(static_cast<std::size_t>(al) - 1));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}
void *
operator new[](std::size_t size, std::align_val_t al)
{
    return operator new(size, al);
}
void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace mirage {
namespace {

/** Counts heap allocations performed inside the guarded region. */
class AllocProbe
{
  public:
    AllocProbe() : start_(g_alloc_count.load()) { g_armed.store(true); }
    ~AllocProbe() { g_armed.store(false); }
    int64_t count() const { return g_alloc_count.load() - start_; }

  private:
    int64_t start_;
};

/**
 * GemmBackend decorator: forwards to the wrapped backend and attributes
 * every heap allocation inside the call to the GEMM hot path.
 */
class CountingBackend : public nn::GemmBackend
{
  public:
    explicit CountingBackend(nn::GemmBackend *inner) : inner_(inner) {}

    std::string name() const override { return inner_->name(); }
    using nn::GemmBackend::gemm;
    void
    gemm(std::span<const float> a, std::span<const float> b, int m, int k,
         int n, bool a_is_grad, bool b_is_grad,
         std::span<float> out) override
    {
        ++calls;
        AllocProbe probe;
        inner_->gemm(a, b, m, k, n, a_is_grad, b_is_grad, out);
        hot_path_allocs += probe.count();
    }

    int64_t calls = 0;
    int64_t hot_path_allocs = 0;

  private:
    nn::GemmBackend *inner_;
};

class AllocGuardTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        runtime::ThreadPool::setGlobalThreads(1);
        // The zero-alloc contract must hold WITH observability on: every
        // suite below runs with metrics and tracing enabled, after one
        // warm span so this thread's trace ring buffer (the only
        // allocating trace path) already exists.
        obs::setEnabled(true);
        obs::setTraceEnabled(true);
        {
            MIRAGE_SPAN("test.alloc_guard.warm");
        }
    }

    void
    TearDown() override
    {
        obs::setTraceEnabled(false);
        runtime::ThreadPool::setGlobalThreads(0);
    }
};

TEST_F(AllocGuardTest, WarmObsPrimitivesAreAllocationFree)
{
    // The obs hot-path contract directly: once the handle is registered
    // and the thread's trace ring exists, recording performs zero heap
    // allocations — counters/gauges/histograms are relaxed fetch_adds on
    // pre-sized shards, spans write a fixed-size event into the warm
    // ring.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    obs::Counter &counter = reg.counter("test.alloc.counter");
    obs::Gauge &gauge = reg.gauge("test.alloc.gauge");
    obs::Histogram &hist = reg.histogram("test.alloc.hist");
    {
        MIRAGE_SPAN("test.alloc.span"); // warm (ring exists from SetUp)
    }

    AllocProbe probe;
    for (int i = 0; i < 1000; ++i) {
        counter.add(1);
        gauge.set(i);
        hist.record(static_cast<uint64_t>(i) * 977);
        MIRAGE_SPAN("test.alloc.span");
    }
    EXPECT_EQ(probe.count(), 0)
        << "obs record path allocated on a warm thread";
}

TEST_F(AllocGuardTest, InstrumentedTrainerStepAddsNoAllocations)
{
    // The instrumentation in Trainer::trainStep (train.step/shard/reduce/
    // optimizer spans, step counters and histograms) must add zero
    // allocator traffic: an obs-on steady-state step performs exactly as
    // many heap allocations as an obs-off one.
    constexpr int kIn = 16, kHidden = 32, kClasses = 4;
    train::TrainerConfig cfg;
    cfg.replicas = 1;
    cfg.micro_batch = 8;
    cfg.shards_per_step = 4;
    cfg.seed = 11;
    train::Trainer trainer(
        [](nn::GemmBackend *backend, Rng &rng) {
            return models::makeMlp(kIn, kHidden, kClasses, backend, rng);
        },
        std::make_unique<nn::Sgd>(0.05f, 0.9f), cfg);
    // 256 rows / (8 x 4) = 8 steps per epoch: the three 2-step runs below
    // stay inside epoch 0, so every run sees the identical step
    // structure (no epoch-end evaluation in either measured window).
    const nn::Dataset data = nn::makeGaussianClusters(256, kClasses, kIn,
                                                      3.0f, 41);

    // Warm-up WITH obs on: registers every metric handle and records
    // spans so the trace ring and registry maps are fully grown.
    trainer.run(data, nullptr, /*target_epochs=*/1000, /*max_steps=*/2);

    obs::setEnabled(false);
    obs::setTraceEnabled(false);
    int64_t allocs_off = 0;
    {
        AllocProbe probe;
        trainer.run(data, nullptr, 1000, 2);
        allocs_off = probe.count();
    }

    obs::setEnabled(true);
    obs::setTraceEnabled(true);
    int64_t allocs_on = 0;
    {
        AllocProbe probe;
        trainer.run(data, nullptr, 1000, 2);
        allocs_on = probe.count();
    }
    EXPECT_EQ(allocs_on, allocs_off)
        << "enabling metrics+tracing changed steady-state training"
           " allocation counts";
}

TEST_F(AllocGuardTest, SteadyStateCnnTrainingStepGemmPathIsAllocationFree)
{
    Rng rng(5);
    numerics::FormatGemmConfig cfg;
    cfg.moduli = test::paperModuli();
    nn::FormatBackend inner(numerics::DataFormat::MirageBfpRns, cfg);
    CountingBackend backend(&inner);
    auto model = models::makeSmallCnn(4, &backend, rng);
    const nn::Dataset data = nn::makePatternImages(8, 4, 16, 0.2f, 3);
    nn::Sgd opt(0.02f, 0.9f);
    const std::vector<nn::Param *> params = model->params();

    const auto train_step = [&] {
        nn::Optimizer::zeroGrad(params);
        const nn::Tensor logits = model->forward(data.inputs, true);
        const nn::LossResult loss = nn::softmaxCrossEntropy(logits, data.labels);
        model->backward(loss.grad);
        opt.step(params);
    };

    // Warm-up: arenas grow and consolidate, conv column caches size up,
    // the RNS codec cache fills.
    train_step();
    train_step();

    backend.calls = 0;
    backend.hot_path_allocs = 0;
    train_step();
    train_step();
    EXPECT_GT(backend.calls, 0);
    EXPECT_EQ(backend.hot_path_allocs, 0)
        << "GEMM/conv hot path allocated on a warm training step";
}

TEST_F(AllocGuardTest, WarmFormatBackendSpanGemmIsAllocationFree)
{
    Rng rng(9);
    numerics::FormatGemmConfig cfg;
    cfg.moduli = test::paperModuli();
    for (numerics::DataFormat fmt :
         {numerics::DataFormat::FP32, numerics::DataFormat::BFLOAT16,
          numerics::DataFormat::HFP8, numerics::DataFormat::INT8,
          numerics::DataFormat::MirageBfpRns}) {
        nn::FormatBackend backend(fmt, cfg);
        const int m = 24, k = 64, n = 24;
        std::vector<float> a(static_cast<size_t>(m) * k),
            b(static_cast<size_t>(k) * n), c(static_cast<size_t>(m) * n);
        for (auto &v : a)
            v = static_cast<float>(rng.gaussian());
        for (auto &v : b)
            v = static_cast<float>(rng.gaussian());

        backend.gemm(std::span<const float>(a), std::span<const float>(b),
                     m, k, n, false, false, std::span<float>(c)); // warm-up
        AllocProbe probe;
        backend.gemm(std::span<const float>(a), std::span<const float>(b),
                     m, k, n, false, false, std::span<float>(c));
        EXPECT_EQ(probe.count(), 0) << numerics::toString(fmt);
    }
}

TEST_F(AllocGuardTest, WarmModularGemmSpanIsAllocationFree)
{
    Rng rng(13);
    const int n = 48;
    std::vector<rns::Residue> a(static_cast<size_t>(n) * n),
        b(static_cast<size_t>(n) * n), c(static_cast<size_t>(n) * n);
    for (auto &v : a)
        v = static_cast<rns::Residue>(rng.uniformInt(0, 30));
    for (auto &v : b)
        v = static_cast<rns::Residue>(rng.uniformInt(0, 30));

    rns::modularGemm(std::span<const rns::Residue>(a),
                     std::span<const rns::Residue>(b),
                     std::span<rns::Residue>(c), n, n, n, 31); // warm-up
    AllocProbe probe;
    rns::modularGemm(std::span<const rns::Residue>(a),
                     std::span<const rns::Residue>(b),
                     std::span<rns::Residue>(c), n, n, n, 31);
    EXPECT_EQ(probe.count(), 0);
}

TEST_F(AllocGuardTest, WarmRnsMmvmuMvmSpanIsAllocationFree)
{
    Rng rng(17);
    const photonic::DeviceKit kit;
    photonic::RnsMmvmu array(rns::ModuliSet::special(5), 16, 16, kit, 10e9);
    std::vector<int64_t> tile(16 * 16), x(16), y(16);
    for (auto &v : tile)
        v = rng.uniformInt(-15, 15);
    for (auto &v : x)
        v = rng.uniformInt(-15, 15);

    array.programTile(tile, 16, 16);
    array.mvm(std::span<const int64_t>(x), nullptr,
              std::span<int64_t>(y)); // warm-up
    AllocProbe probe;
    array.programTile(tile, 16, 16);
    array.mvm(std::span<const int64_t>(x), nullptr, std::span<int64_t>(y));
    EXPECT_EQ(probe.count(), 0);
}

} // namespace
} // namespace mirage
