/**
 * @file
 * Unit tests of the training orchestrator's building blocks — the
 * epoch-deterministic BatchIterator (replica sharding must partition each
 * epoch exactly once), LrSchedule (warmup/step/cosine), the gradient
 * utilities at the clip boundary — and of Trainer behaviours: schedules
 * driving the optimizer, accumulation, config validation, checkpoint
 * compatibility guards, and the train->serve hot-publish bridge.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <set>
#include <vector>

#include "fault/injection.h"
#include "models/trainable.h"
#include "nn/data.h"
#include "serve/checkpoint.h"
#include "serve/repository.h"
#include "train/grad_utils.h"
#include "train/schedule.h"
#include "train/trainer.h"
#include "test_support.h"

namespace {

using namespace mirage;

// ---------------------------------------------------------------------------
// BatchIterator
// ---------------------------------------------------------------------------

class BatchIteratorTest : public mirage::test::SeededTest
{
};

TEST_F(BatchIteratorTest, EpochOrderIsAFunctionOfSeedAndEpochOnly)
{
    const nn::Dataset data = nn::makeGaussianClusters(40, 3, 4, 3.0f, 1);
    nn::BatchIterator a(data, 8, /*seed=*/7);
    nn::BatchIterator b(data, 8, /*seed=*/7);

    // b consumes epoch 0 fully; a does not. Epoch 3's order must agree
    // anyway (no hidden stream state carried between epochs).
    nn::Dataset scratch;
    while (b.next(scratch)) {
    }
    a.setEpoch(3);
    b.setEpoch(3);
    for (int64_t i = 0; i < a.batchesPerEpoch(); ++i)
        EXPECT_EQ(a.batchIndices(i), b.batchIndices(i)) << "batch " << i;

    a.setEpoch(4);
    EXPECT_NE(a.batchIndices(0), b.batchIndices(0))
        << "distinct epochs should shuffle differently";
}

TEST_F(BatchIteratorTest, ReplicaShardedIterationPartitionsEachEpochOnce)
{
    const nn::Dataset data = nn::makeGaussianClusters(48, 3, 4, 3.0f, 2);
    nn::BatchIterator it(data, 4, /*seed=*/13, /*shuffle=*/true,
                         /*drop_last=*/true);
    it.setEpoch(5);
    for (const int replicas : {2, 3, 4}) {
        std::multiset<int> seen;
        // Replica r takes the batches with index % replicas == r; the
        // union over replicas must cover every sample exactly once.
        for (int r = 0; r < replicas; ++r)
            for (int64_t b = r; b < it.batchesPerEpoch(); b += replicas)
                for (const int row : it.batchIndices(b))
                    seen.insert(row);
        ASSERT_EQ(seen.size(), static_cast<size_t>(data.size()))
            << replicas << " replicas";
        for (int row = 0; row < data.size(); ++row)
            EXPECT_EQ(seen.count(row), 1u)
                << "sample " << row << " with " << replicas << " replicas";
    }
}

TEST_F(BatchIteratorTest, DropLastControlsRaggedTail)
{
    const nn::Dataset data = nn::makeGaussianClusters(22, 3, 4, 3.0f, 3);
    nn::BatchIterator keep(data, 8, 1, true, /*drop_last=*/false);
    nn::BatchIterator drop(data, 8, 1, true, /*drop_last=*/true);
    EXPECT_EQ(keep.batchesPerEpoch(), 3);
    EXPECT_EQ(drop.batchesPerEpoch(), 2);
    EXPECT_EQ(keep.batch(2).size(), 6); // 22 - 2*8
    EXPECT_EQ(drop.batch(1).size(), 8);
}

TEST_F(BatchIteratorTest, CursorRoundTripsForResume)
{
    const nn::Dataset data = nn::makeGaussianClusters(32, 3, 4, 3.0f, 4);
    nn::BatchIterator a(data, 4, 9);
    a.setEpoch(1);
    nn::Dataset scratch;
    a.next(scratch);
    a.next(scratch);
    ASSERT_EQ(a.cursor(), 2);

    // A fresh iterator repositioned at (epoch, cursor) yields the rest of
    // the epoch identically — the checkpoint-resume access pattern.
    nn::BatchIterator b(data, 4, 9);
    b.setEpoch(1);
    b.setCursor(2);
    nn::Dataset batch_a, batch_b;
    while (a.next(batch_a)) {
        ASSERT_TRUE(b.next(batch_b));
        EXPECT_EQ(batch_a.labels, batch_b.labels);
        for (int64_t i = 0; i < batch_a.inputs.size(); ++i)
            EXPECT_EQ(batch_a.inputs[i], batch_b.inputs[i]);
    }
    EXPECT_FALSE(b.next(batch_b));
}

// ---------------------------------------------------------------------------
// LrSchedule
// ---------------------------------------------------------------------------

TEST(LrScheduleTest, WarmupRampsLinearlyThenHandsOver)
{
    const train::LrSchedule s = train::LrSchedule::constant(4);
    EXPECT_DOUBLE_EQ(s.scale(0), 0.25);
    EXPECT_DOUBLE_EQ(s.scale(1), 0.5);
    EXPECT_DOUBLE_EQ(s.scale(3), 1.0);
    EXPECT_DOUBLE_EQ(s.scale(100), 1.0);
}

TEST(LrScheduleTest, StepDecayDropsByGammaEveryInterval)
{
    const train::LrSchedule s = train::LrSchedule::stepDecay(10, 0.1);
    EXPECT_DOUBLE_EQ(s.scale(0), 1.0);
    EXPECT_DOUBLE_EQ(s.scale(9), 1.0);
    EXPECT_DOUBLE_EQ(s.scale(10), 0.1);
    EXPECT_DOUBLE_EQ(s.scale(25), 0.01);
}

TEST(LrScheduleTest, CosineAnnealsToMinScaleAndStays)
{
    const train::LrSchedule s = train::LrSchedule::cosine(100, 0.05);
    EXPECT_DOUBLE_EQ(s.scale(0), 1.0);
    EXPECT_NEAR(s.scale(50), 0.05 + 0.95 * 0.5, 1e-12); // half-way point
    EXPECT_DOUBLE_EQ(s.scale(100), 0.05);
    EXPECT_DOUBLE_EQ(s.scale(1000), 0.05);
    // Monotone non-increasing over the horizon.
    for (int64_t t = 1; t < 100; ++t)
        EXPECT_LE(s.scale(t), s.scale(t - 1)) << "step " << t;
}

TEST(LrScheduleTest, ValidateRejectsBadKnobs)
{
    EXPECT_THROW(train::LrSchedule::stepDecay(0, 0.1).validate(),
                 std::invalid_argument);
    EXPECT_THROW(train::LrSchedule::stepDecay(5, 0.0).validate(),
                 std::invalid_argument);
    EXPECT_THROW(train::LrSchedule::cosine(4, 0.0, 4).validate(),
                 std::invalid_argument);
    EXPECT_THROW(train::LrSchedule::cosine(10, 1.5).validate(),
                 std::invalid_argument);
    EXPECT_NO_THROW(train::LrSchedule::cosine(10, 0.0, 2).validate());
}

// ---------------------------------------------------------------------------
// Gradient utilities
// ---------------------------------------------------------------------------

TEST(GradUtilsTest, ClipBoundaryIsInclusive)
{
    // Norm of {3, 4} is exactly 5: at max_norm == 5 nothing changes.
    std::vector<float> grads = {3.0f, 4.0f};
    EXPECT_DOUBLE_EQ(train::clipGradNorm(std::span<float>(grads), 5.0), 5.0);
    EXPECT_EQ(grads[0], 3.0f);
    EXPECT_EQ(grads[1], 4.0f);

    // Just above the boundary: rescaled onto the max-norm sphere.
    const double max_norm = 5.0 * (1.0 - 1e-6);
    const double pre = train::clipGradNorm(std::span<float>(grads), max_norm);
    EXPECT_DOUBLE_EQ(pre, 5.0);
    EXPECT_NEAR(train::globalGradNorm(std::span<const float>(grads)),
                max_norm, 1e-6);
    EXPECT_NEAR(grads[0] / grads[1], 0.75, 1e-6) << "direction preserved";
}

TEST(GradUtilsTest, ParamOverloadClipsAcrossAllParameters)
{
    nn::Param a, b;
    a.value = nn::Tensor({2});
    a.grad = nn::Tensor({2});
    b.value = nn::Tensor({1});
    b.grad = nn::Tensor({1});
    a.grad[0] = 2.0f;
    a.grad[1] = 1.0f;
    b.grad[0] = 2.0f;
    const std::vector<nn::Param *> params = {&a, &b};
    EXPECT_DOUBLE_EQ(train::globalGradNorm(params), 3.0);

    const double pre = train::clipGradNorm(params, 1.5);
    EXPECT_DOUBLE_EQ(pre, 3.0);
    EXPECT_NEAR(train::globalGradNorm(params), 1.5, 1e-6);
    EXPECT_NEAR(a.grad[0], 1.0f, 1e-6);
    EXPECT_NEAR(b.grad[0], 1.0f, 1e-6);
}

TEST(GradUtilsTest, AllFiniteFlagsNanAndInf)
{
    std::vector<float> ok = {1.0f, -2.0f, 0.0f};
    EXPECT_TRUE(train::allFinite(ok));
    std::vector<float> with_nan = {1.0f, std::nanf("")};
    EXPECT_FALSE(train::allFinite(with_nan));
    std::vector<float> with_inf = {1.0f, INFINITY};
    EXPECT_FALSE(train::allFinite(with_inf));
}

#ifndef NDEBUG
TEST(GradUtilsDeathTest, DebugGuardPanicsOnNanGradient)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::vector<float> bad = {1.0f, std::nanf("")};
    EXPECT_DEATH(train::assertFiniteGrads(bad, "a unit test"),
                 "non-finite gradient");
}
#endif

// ---------------------------------------------------------------------------
// Trainer
// ---------------------------------------------------------------------------

constexpr int kIn = 8, kHidden = 16, kClasses = 3;

serve::ModelFactory
mlpFactory()
{
    return [](nn::GemmBackend *backend, Rng &rng) {
        return models::makeMlp(kIn, kHidden, kClasses, backend, rng);
    };
}

models::ModelShape
mlpShape()
{
    models::ModelShape shape;
    shape.name = "mlp";
    shape.layers = {{"fc1", kHidden, kIn, 1, 1, true},
                    {"fc2", kHidden, kHidden, 1, 1, true},
                    {"fc3", kClasses, kHidden, 1, 1, true}};
    return shape;
}

class TrainerTest : public mirage::test::SeededTest
{
  protected:
    // One generated distribution, split train/test: a fresh seed would
    // draw different cluster centers and make the test set unlearnable.
    nn::Dataset all_data = nn::makeGaussianClusters(144, kClasses, kIn,
                                                    3.0f, 31);
    nn::Dataset train_data = all_data.slice(0, 96);
    nn::Dataset test_data = all_data.slice(96, 48);

    train::TrainerConfig
    baseConfig()
    {
        train::TrainerConfig cfg;
        cfg.micro_batch = 8;
        cfg.shards_per_step = 4;
        cfg.seed = 11;
        return cfg;
    }
};

TEST_F(TrainerTest, ConfigValidateRejectsBadKnobs)
{
    auto expectInvalid = [](train::TrainerConfig cfg) {
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    };
    train::TrainerConfig cfg;
    cfg.replicas = 0;
    expectInvalid(cfg);
    cfg = {};
    cfg.micro_batch = 0;
    expectInvalid(cfg);
    cfg = {};
    cfg.accum_rounds = -1;
    expectInvalid(cfg);
    cfg = {};
    cfg.clip_norm = -0.1;
    expectInvalid(cfg);
    serve::ModelRepository repo;
    cfg = {};
    cfg.publish_to = &repo; // no publish_name
    expectInvalid(cfg);
    cfg.publish_name = "m";
    EXPECT_NO_THROW(cfg.validate());
}

TEST_F(TrainerTest, LearnsAndReportsCurves)
{
    train::TrainerConfig cfg = baseConfig();
    cfg.shape = mlpShape();
    train::Trainer trainer(mlpFactory(),
                           std::make_unique<nn::Sgd>(0.05f, 0.9f), cfg);
    const train::TrainReport report =
        trainer.run(train_data, &test_data, /*target_epochs=*/6);

    EXPECT_EQ(report.steps_run, 6 * 3); // 12 batches / 4 shards per step
    EXPECT_EQ(report.samples_seen, report.steps_run * 32);
    ASSERT_EQ(report.epoch_loss.size(), 6u);
    ASSERT_EQ(report.epoch_test_acc.size(), 6u);
    EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
    EXPECT_GT(report.final_test_accuracy, 0.8f);
    EXPECT_GT(report.samples_per_s, 0.0);
    // Modeled accelerator cost is wired through the shape.
    EXPECT_GT(report.modeled_step_time_s, 0.0);
    EXPECT_GT(report.modeled_energy_j, 0.0);
    EXPECT_GT(report.modeledJoulesPerSample(), 0.0);
    EXPECT_NEAR(report.modeled_time_s,
                report.modeled_step_time_s * report.steps_run, 1e-12);
}

TEST_F(TrainerTest, ScheduleDrivesOptimizerThroughSetLrHook)
{
    train::TrainerConfig cfg = baseConfig();
    cfg.schedule = train::LrSchedule::stepDecay(/*decay_every=*/3, 0.1,
                                                /*warmup_steps=*/2);
    train::Trainer trainer(mlpFactory(), std::make_unique<nn::Sgd>(0.1f),
                           cfg);
    const train::TrainReport report =
        trainer.run(train_data, nullptr, /*target_epochs=*/3); // 9 steps

    ASSERT_EQ(report.step_lr.size(), 9u);
    EXPECT_NEAR(report.step_lr[0], 0.1f * 0.5f, 1e-7); // warmup 1/2
    EXPECT_NEAR(report.step_lr[1], 0.1f, 1e-7);        // warmup 2/2
    EXPECT_NEAR(report.step_lr[2], 0.1f, 1e-7);        // decay t=0
    EXPECT_NEAR(report.step_lr[5], 0.01f, 1e-7);       // decay t=3
    EXPECT_NEAR(report.step_lr[8], 0.001f, 1e-7);      // decay t=6
    // The optimizer itself saw the scheduled rate.
    EXPECT_NEAR(trainer.optimizer().lr(), 0.001f, 1e-7);
}

TEST_F(TrainerTest, AccumulationMultipliesEffectiveBatch)
{
    train::TrainerConfig cfg = baseConfig();
    cfg.shards_per_step = 2;
    cfg.accum_rounds = 3;
    EXPECT_EQ(cfg.effectiveBatch(), 8 * 2 * 3);
    train::Trainer trainer(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                           cfg);
    // 12 batches/epoch, 6 per step -> 2 steps per epoch.
    const train::TrainReport report = trainer.run(train_data, nullptr, 2);
    EXPECT_EQ(report.steps_run, 4);
    EXPECT_EQ(report.samples_seen, 4 * cfg.effectiveBatch());
}

TEST_F(TrainerTest, ClippingEngagesAndIsRecorded)
{
    train::TrainerConfig cfg = baseConfig();
    cfg.clip_norm = 0.25;
    train::Trainer trainer(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                           cfg);
    const train::TrainReport report = trainer.run(train_data, nullptr, 1);
    EXPECT_GT(report.max_grad_norm, cfg.clip_norm);
    EXPECT_GT(report.clipped_steps, 0u);
    EXPECT_LE(report.clipped_steps,
              static_cast<uint64_t>(report.steps_run));
}

TEST_F(TrainerTest, PeriodicCheckpointAndHotPublishToRepository)
{
    serve::ModelRepository repo;
    train::TrainerConfig cfg = baseConfig();
    cfg.publish_to = &repo;
    cfg.publish_name = "mlp";
    cfg.shape = mlpShape();
    cfg.checkpoint_every_steps = 2;
    train::Trainer trainer(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                           cfg);
    const train::TrainReport report =
        trainer.run(train_data, nullptr, 2); // 6 steps -> publishes at 2,4,6

    EXPECT_EQ(report.last_published_version, 3);
    EXPECT_EQ(repo.currentVersion("mlp"), 3);
    EXPECT_EQ(repo.liveVersions("mlp"), 3u);

    // The served copy must be the trained weights, bit for bit: the same
    // input produces the same logits through the repository's replica.
    const std::shared_ptr<serve::ServedModel> served = repo.acquire("mlp");
    ASSERT_TRUE(served->functional());
    nn::Tensor x({1, kIn});
    for (int64_t i = 0; i < x.size(); ++i)
        x[i] = 0.1f * static_cast<float>(i);
    const nn::Tensor from_trainer = trainer.net().forward(x, false);
    const nn::Tensor from_repo = served->net->forward(x, false);
    ASSERT_EQ(from_trainer.size(), from_repo.size());
    for (int64_t i = 0; i < from_trainer.size(); ++i)
        EXPECT_EQ(from_trainer[i], from_repo[i]) << "logit " << i;

    // Hot-swap retirement drops the stale versions.
    EXPECT_EQ(repo.retireOldVersions("mlp"), 2u);
    EXPECT_EQ(repo.liveVersions("mlp"), 1u);
}

TEST_F(TrainerTest, LoadCheckpointRejectsIncompatibleConfigs)
{
    train::Trainer source(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                          baseConfig());
    source.run(train_data, nullptr, 1);
    const serve::Checkpoint ckpt = source.makeCheckpoint();

    {
        // Different effective batch.
        train::TrainerConfig cfg = baseConfig();
        cfg.shards_per_step = 2;
        train::Trainer t(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                         cfg);
        EXPECT_THROW(t.loadCheckpoint(ckpt), serve::CheckpointError);
    }
    {
        // Same effective batch (32), different micro-batch split: the
        // replayed shards and reduction tree would differ, so it must
        // throw rather than silently diverge.
        train::TrainerConfig cfg = baseConfig();
        cfg.micro_batch = 16;
        cfg.shards_per_step = 2;
        ASSERT_EQ(cfg.effectiveBatch(), baseConfig().effectiveBatch());
        train::Trainer t(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                         cfg);
        EXPECT_THROW(t.loadCheckpoint(ckpt), serve::CheckpointError);
    }
    {
        // Different data-shuffle seed.
        train::TrainerConfig cfg = baseConfig();
        cfg.seed = 12;
        train::Trainer t(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                         cfg);
        EXPECT_THROW(t.loadCheckpoint(ckpt), serve::CheckpointError);
    }
    {
        // Different base learning rate.
        train::Trainer t(mlpFactory(), std::make_unique<nn::Sgd>(0.01f),
                         baseConfig());
        EXPECT_THROW(t.loadCheckpoint(ckpt), serve::CheckpointError);
    }
    {
        // Different LR schedule: the post-resume rate trajectory would
        // diverge from the uninterrupted run's.
        train::TrainerConfig cfg = baseConfig();
        cfg.schedule = train::LrSchedule::cosine(100);
        train::Trainer t(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                         cfg);
        EXPECT_THROW(t.loadCheckpoint(ckpt), serve::CheckpointError);
    }
    {
        // Different clip norm.
        train::TrainerConfig cfg = baseConfig();
        cfg.clip_norm = 1.0;
        train::Trainer t(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                         cfg);
        EXPECT_THROW(t.loadCheckpoint(ckpt), serve::CheckpointError);
    }
    {
        // A non-trainer checkpoint (no resume metadata).
        train::Trainer t(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                         baseConfig());
        serve::Checkpoint bare = ckpt;
        bare.metadata.clear();
        EXPECT_THROW(t.loadCheckpoint(bare), serve::CheckpointError);
    }
    {
        // Matching config loads fine.
        train::Trainer t(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                         baseConfig());
        EXPECT_NO_THROW(t.loadCheckpoint(ckpt));
        EXPECT_EQ(t.globalStep(), source.globalStep());
    }
}

TEST_F(TrainerTest, ResumingWithADifferentDatasetThrows)
{
    train::Trainer source(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                          baseConfig());
    source.run(train_data, nullptr, 1);
    const serve::Checkpoint ckpt = source.makeCheckpoint();

    train::Trainer resumed(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                           baseConfig());
    resumed.loadCheckpoint(ckpt);
    // Same seed and config, but a different dataset: the replayed batches
    // would differ, so the continued run must refuse instead of silently
    // diverging from an uninterrupted one.
    const nn::Dataset other = all_data.slice(0, 64);
    EXPECT_THROW(resumed.run(other, nullptr, 2), serve::CheckpointError);
    EXPECT_NO_THROW(resumed.run(train_data, nullptr, 2));
}

TEST_F(TrainerTest, RunRejectsDatasetSmallerThanOneStep)
{
    train::TrainerConfig cfg = baseConfig();
    cfg.micro_batch = 64;
    cfg.shards_per_step = 4; // 256 > 96 samples
    train::Trainer trainer(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                           cfg);
    EXPECT_THROW(trainer.run(train_data, nullptr, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Replica failure and elastic resume
// ---------------------------------------------------------------------------

/** Disarms the fault registry around a test body. */
struct FaultGuard
{
    FaultGuard() { fault::reset(); }
    ~FaultGuard() { fault::reset(); }
};

/** Replica-0 parameters flattened for bit-exact comparison. */
std::vector<float>
flatParams(train::Trainer &t)
{
    std::vector<float> out;
    for (const nn::Param *p : t.net().params())
        out.insert(out.end(), p->value.data(),
                   p->value.data() + p->value.size());
    return out;
}

TEST_F(TrainerTest, ReplicaKillIsBitIdenticalToLowerReplicaRun)
{
    // Replica count never touches the numbers: shard order and the
    // reduction tree depend only on the shard count. So a mid-run kill
    // that elides one of three replicas must land on weights
    // bit-identical to an uninterrupted two-replica run — even with no
    // checkpoint to resume from, because the aborted step left no
    // side effects.
    FaultGuard guard;
    const int64_t steps = 6;

    train::TrainerConfig base_cfg = baseConfig();
    base_cfg.replicas = 2;
    train::Trainer baseline(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                            base_cfg);
    baseline.run(train_data, nullptr, 1000, steps);

    train::TrainerConfig chaos_cfg = baseConfig();
    chaos_cfg.replicas = 3;
    // 3 replica evaluations per step: eval 5 kills one replica during
    // step 2.
    fault::armPoint("train.replica_fail", fault::FaultSpec::hit(5));
    train::Trainer chaos(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                         chaos_cfg);
    const train::TrainReport report =
        chaos.run(train_data, nullptr, 1000, steps);
    fault::reset();

    EXPECT_EQ(report.replica_failures, 1);
    EXPECT_EQ(report.elastic_resumes, 0) << "no checkpoint was configured";
    EXPECT_EQ(chaos.config().replicas, 2);
    EXPECT_EQ(chaos.globalStep(), steps);
    EXPECT_EQ(flatParams(chaos), flatParams(baseline));
}

TEST_F(TrainerTest, ReplicaKillResumesElasticallyFromCheckpoint)
{
    FaultGuard guard;
    const std::string path =
        ::testing::TempDir() + "trainer_elastic.mirckpt";
    std::remove(path.c_str());
    std::remove((path + ".last_good").c_str());
    const int64_t steps = 6;

    train::TrainerConfig base_cfg = baseConfig();
    base_cfg.replicas = 2;
    train::Trainer baseline(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                            base_cfg);
    baseline.run(train_data, nullptr, 1000, steps);

    train::TrainerConfig chaos_cfg = baseConfig();
    chaos_cfg.replicas = 3;
    chaos_cfg.checkpoint_path = path;
    chaos_cfg.checkpoint_every_steps = 2;
    // Step 3 spans evaluations 7..9: the kill lands after the step-2
    // checkpoint exists, so the trainer reloads it and replays 3..6 at
    // two replicas.
    fault::armPoint("train.replica_fail", fault::FaultSpec::hit(8));
    train::Trainer chaos(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                         chaos_cfg);
    const train::TrainReport report =
        chaos.run(train_data, nullptr, 1000, steps);
    fault::reset();

    EXPECT_EQ(report.replica_failures, 1);
    EXPECT_EQ(report.elastic_resumes, 1);
    EXPECT_EQ(chaos.config().replicas, 2);
    EXPECT_EQ(chaos.globalStep(), steps);
    EXPECT_EQ(flatParams(chaos), flatParams(baseline));

    std::remove(path.c_str());
    std::remove((path + ".last_good").c_str());
}

TEST_F(TrainerTest, LosingEveryReplicaIsTerminal)
{
    // With one replica a kill leaves no survivors: the trainer must fail
    // loudly rather than spin on an empty replica set.
    FaultGuard guard;
    train::TrainerConfig cfg = baseConfig();
    cfg.replicas = 1;
    fault::armPoint("train.replica_fail", fault::FaultSpec::hit(1));
    train::Trainer trainer(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                           cfg);
    EXPECT_THROW(trainer.run(train_data, nullptr, 1000, 4),
                 std::runtime_error);
    fault::reset();
}

TEST_F(TrainerTest, PublishNowWithoutRepositoryThrows)
{
    train::Trainer trainer(mlpFactory(), std::make_unique<nn::Sgd>(0.05f),
                           baseConfig());
    EXPECT_THROW(trainer.publishNow(), std::logic_error);
}

} // namespace
