/**
 * @file
 * Bit-equality tests for the simd dispatch layer (common/simd.h): every
 * vectorized dot / axpy / panel kernel must return results byte-identical
 * to its scalar reference — integer ops because they are exact, FP32 ops
 * because the vector bodies perform the same multiply-then-add roundings
 * in the same per-element order (no FMA contraction). This is the
 * invariant that lets the SIMD kernels keep both the thread-count
 * determinism contract and every committed golden value.
 *
 * On hosts without AVX2/NEON the wrappers dispatch to the scalar reference
 * and these tests pass trivially; on vector hardware they pin the real
 * vector bodies (including ragged tails and the per-row zero-skip).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/simd.h"
#include "test_support.h"

namespace {

using namespace mirage;

class SimdTest : public mirage::test::SeededTest
{
  protected:
    std::vector<float>
    floats(size_t n)
    {
        std::vector<float> v(n);
        for (auto &x : v) {
            x = static_cast<float>(rng.gaussian(0, 1));
            const double u = rng.uniformReal();
            if (u < 0.1)
                x = 0.0f;
            else if (u < 0.15)
                x = -0.0f;
        }
        return v;
    }

    std::vector<int32_t>
    ints(size_t n, int32_t lo, int32_t hi)
    {
        std::vector<int32_t> v(n);
        for (auto &x : v)
            x = static_cast<int32_t>(
                lo + static_cast<int64_t>(rng.uniformReal() * (hi - lo + 1)));
        return v;
    }

    /** uint64 values that fit in 32 bits (RNS residues). */
    std::vector<uint64_t>
    residues(size_t n, uint64_t modulus)
    {
        std::vector<uint64_t> v(n);
        for (auto &x : v) {
            x = static_cast<uint64_t>(rng.uniformReal() * modulus) % modulus;
            if (rng.uniformReal() < 0.1)
                x = 0;
        }
        return v;
    }
};

TEST_F(SimdTest, BackendNameIsKnown)
{
    const std::string name = simd::backendName();
    EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar")
        << name;
}

TEST_F(SimdTest, DotsMatchScalarReference)
{
    for (int n : {0, 1, 2, 3, 7, 8, 15, 16, 17, 31, 40, 67}) {
        const auto ai = ints(static_cast<size_t>(n), -4000, 4000);
        const auto bi = ints(static_cast<size_t>(n), -4000, 4000);
        EXPECT_EQ(simd::dotI32I64(ai.data(), bi.data(), n),
                  simd::scalar::dotI32I64(ai.data(), bi.data(), n))
            << "n=" << n;

        std::vector<uint32_t> au(static_cast<size_t>(n)), bu(au.size());
        for (size_t i = 0; i < au.size(); ++i) {
            au[i] = static_cast<uint32_t>(ai[i] + 4000);
            bu[i] = static_cast<uint32_t>(bi[i] + 4000);
        }
        EXPECT_EQ(simd::dotU32U64(au.data(), bu.data(), n),
                  simd::scalar::dotU32U64(au.data(), bu.data(), n))
            << "n=" << n;

        const auto ar = residues(static_cast<size_t>(n), (1u << 21) - 9);
        const auto br = residues(static_cast<size_t>(n), (1u << 21) - 9);
        EXPECT_EQ(simd::dotU64Lo32(ar.data(), br.data(), n),
                  simd::scalar::dotU64Lo32(ar.data(), br.data(), n))
            << "n=" << n;
    }
}

TEST_F(SimdTest, AxpysMatchScalarReferenceBitExact)
{
    for (int n : {0, 1, 3, 7, 8, 9, 16, 23, 40}) {
        const auto b = floats(static_cast<size_t>(n));
        for (float a : {1.5f, 0.0f, -0.0f, -2.25e-7f}) {
            auto r_vec = floats(static_cast<size_t>(n));
            auto r_ref = r_vec;
            simd::axpyF32(a, b.data(), r_vec.data(), n);
            simd::scalar::axpyF32(a, b.data(), r_ref.data(), n);
            EXPECT_EQ(0, std::memcmp(r_vec.data(), r_ref.data(),
                                     r_vec.size() * sizeof(float)))
                << "n=" << n << " a=" << a;
        }

        auto r0 = floats(static_cast<size_t>(n)), r1 = r0, r2 = r0, r3 = r0;
        auto s0 = r0, s1 = r1, s2 = r2, s3 = r3;
        simd::axpy4F32(0.5f, -0.0f, 3.0f, 1e-30f, b.data(), r0.data(),
                       r1.data(), r2.data(), r3.data(), n);
        simd::scalar::axpy4F32(0.5f, -0.0f, 3.0f, 1e-30f, b.data(), s0.data(),
                               s1.data(), s2.data(), s3.data(), n);
        for (auto [v, s] : {std::pair{&r0, &s0}, {&r1, &s1}, {&r2, &s2},
                            {&r3, &s3}})
            EXPECT_EQ(0, std::memcmp(v->data(), s->data(),
                                     v->size() * sizeof(float)))
                << "n=" << n;

        const auto bi = ints(static_cast<size_t>(n), -100000, 100000);
        std::vector<int64_t> iv(static_cast<size_t>(n), 7), ir = iv;
        simd::axpyI32I64(-12345, bi.data(), iv.data(), n);
        simd::scalar::axpyI32I64(-12345, bi.data(), ir.data(), n);
        EXPECT_EQ(iv, ir) << "n=" << n;

        const auto br = residues(static_cast<size_t>(n), 0xFFFFFFF1u);
        std::vector<uint64_t> uv(static_cast<size_t>(n), 3), ur = uv;
        simd::axpyU64Lo32(0x12345678u, br.data(), uv.data(), n);
        simd::scalar::axpyU64Lo32(0x12345678u, br.data(), ur.data(), n);
        EXPECT_EQ(uv, ur) << "n=" << n;
    }
}

TEST_F(SimdTest, Fp32PanelKernelMatchesScalarReferenceBitExact)
{
    for (int kd : {0, 1, 3, 17, 64}) {
        for (int jt : {1, 5, 8, 16, 23, 32}) {
            const int64_t lda = kd + 2, ldb = jt + 3;
            auto a = floats(static_cast<size_t>(4) * lda);
            const auto b = floats(static_cast<size_t>(std::max(kd, 1)) * ldb);
            if (kd > 0) // a whole zero row exercises the row skip
                for (int k = 0; k < kd; ++k)
                    a[static_cast<size_t>(2) * lda + k] = 0.0f;
            auto acc_vec = floats(static_cast<size_t>(4) * jt);
            auto acc_ref = acc_vec; // nonzero start pins accumulate-into
            simd::gemmPanel4F32(a.data(), lda, b.data(), ldb, kd,
                                acc_vec.data(), jt);
            simd::scalar::gemmPanel4F32(a.data(), lda, b.data(), ldb, kd,
                                        acc_ref.data(), jt);
            EXPECT_EQ(0, std::memcmp(acc_vec.data(), acc_ref.data(),
                                     acc_vec.size() * sizeof(float)))
                << "kd=" << kd << " jt=" << jt;
        }
    }
}

TEST_F(SimdTest, IntegerPanelKernelsMatchScalarReference)
{
    for (int kd : {0, 1, 5, 33}) {
        for (int jt : {1, 4, 8, 13, 24}) {
            const int64_t lda = kd + 1, ldb = jt + 2;
            auto ai = ints(static_cast<size_t>(4) * lda, -2000, 2000);
            const auto bi =
                ints(static_cast<size_t>(std::max(kd, 1)) * ldb, -2000, 2000);
            if (kd > 0)
                for (int k = 0; k < kd; ++k)
                    ai[static_cast<size_t>(1) * lda + k] = 0;
            std::vector<int64_t> acc_vec(static_cast<size_t>(4) * jt, 11);
            auto acc_ref = acc_vec;
            simd::gemmPanel4I32I64(ai.data(), lda, bi.data(), ldb, kd,
                                   acc_vec.data(), jt);
            simd::scalar::gemmPanel4I32I64(ai.data(), lda, bi.data(), ldb, kd,
                                           acc_ref.data(), jt);
            EXPECT_EQ(acc_vec, acc_ref) << "kd=" << kd << " jt=" << jt;

            const auto au =
                residues(static_cast<size_t>(4) * lda, (1u << 21) - 9);
            const auto bu = residues(
                static_cast<size_t>(std::max(kd, 1)) * ldb, (1u << 21) - 9);
            std::vector<uint64_t> uacc_vec(static_cast<size_t>(4) * jt, 5);
            auto uacc_ref = uacc_vec;
            simd::gemmPanel4U64Lo32(au.data(), lda, bu.data(), ldb, kd,
                                    uacc_vec.data(), jt);
            simd::scalar::gemmPanel4U64Lo32(au.data(), lda, bu.data(), ldb,
                                            kd, uacc_ref.data(), jt);
            EXPECT_EQ(uacc_vec, uacc_ref) << "kd=" << kd << " jt=" << jt;
        }
    }
}

} // namespace
