/**
 * @file
 * Tests for the Fig. 8 iso-energy / iso-area baseline scaling: the scaled
 * systolic deployments must actually meet Mirage's power/area budget to
 * within one array of rounding slack, keep the paper's fixed 16x32 array
 * geometry, and order formats by their Table II efficiency.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "arch/energy_model.h"
#include "arch/iso_scaling.h"
#include "test_support.h"

namespace mirage {
namespace arch {
namespace {

MirageSummary
mirageSummary()
{
    return MirageEnergyModel(MirageConfig{}).summary();
}

TEST(IsoScaling, ScenarioNames)
{
    EXPECT_STREQ(toString(IsoScenario::IsoEnergy), "iso-energy");
    EXPECT_STREQ(toString(IsoScenario::IsoArea), "iso-area");
}

TEST(IsoScaling, KeepsPaperArrayGeometry)
{
    const MirageSummary s = mirageSummary();
    const SystolicConfig cfg =
        scaledSystolic(IsoScenario::IsoEnergy, IsoEnergyPolicy::PowerBudget,
                       s, numerics::DataFormat::FP32);
    EXPECT_EQ(cfg.rows, 16);
    EXPECT_EQ(cfg.cols, 32);
    EXPECT_GE(cfg.num_arrays, 1);
}

TEST(IsoScaling, IsoAreaMatchesMirageFootprint)
{
    // The scaled deployment's MAC area must equal Mirage's stacked
    // footprint up to the half-array rounding granularity.
    const MirageSummary s = mirageSummary();
    for (const auto fmt :
         {numerics::DataFormat::FP32, numerics::DataFormat::BFLOAT16,
          numerics::DataFormat::HFP8, numerics::DataFormat::INT12,
          numerics::DataFormat::INT8}) {
        const SystolicConfig cfg =
            scaledSystolic(IsoScenario::IsoArea, IsoEnergyPolicy::PowerBudget,
                           s, fmt);
        const double per_array_mm2 =
            cfg.spec.mm2_per_mac * cfg.rows * cfg.cols;
        EXPECT_NEAR(cfg.areaMm2(), s.area.stackedMm2(),
                    0.51 * per_array_mm2)
            << numerics::toString(fmt);
    }
}

TEST(IsoScaling, IsoEnergyPowerBudgetMatchesMirageComputePower)
{
    const MirageSummary s = mirageSummary();
    for (const auto fmt :
         {numerics::DataFormat::FP32, numerics::DataFormat::BFLOAT16,
          numerics::DataFormat::INT8, numerics::DataFormat::FMAC}) {
        const SystolicConfig cfg =
            scaledSystolic(IsoScenario::IsoEnergy,
                           IsoEnergyPolicy::PowerBudget, s, fmt);
        const double per_array_w = static_cast<double>(cfg.rows) * cfg.cols *
                                   cfg.spec.energyPerMacJ() *
                                   cfg.spec.clock_hz;
        EXPECT_NEAR(cfg.computePowerW(), s.power.computeTotal(),
                    0.51 * per_array_w)
            << numerics::toString(fmt);
    }
}

TEST(IsoScaling, IsoEnergyEnergyRatioScalesByMacEnergy)
{
    // EnergyRatio hands each format Mirage's MAC count scaled by the
    // energy-per-MAC ratio; cheaper formats get proportionally more units.
    const MirageSummary s = mirageSummary();
    const SystolicConfig cfg =
        scaledSystolic(IsoScenario::IsoEnergy, IsoEnergyPolicy::EnergyRatio,
                       s, numerics::DataFormat::INT8);
    const double expected_units =
        s.macUnits() * (s.pj_per_mac / cfg.spec.pj_per_mac);
    // Whole-array rounding allows up to half an array of slack.
    const double per_array = static_cast<double>(cfg.rows) * cfg.cols;
    EXPECT_NEAR(static_cast<double>(cfg.macUnits()), expected_units,
                0.51 * per_array);
}

TEST(IsoScaling, CheaperFormatsGetMoreMacUnits)
{
    // Under any iso budget, MAC counts must be ordered opposite to the
    // per-MAC cost: FP32 < BFLOAT16 < HFP8 < INT8 (energy), and the same
    // direction for area.
    const MirageSummary s = mirageSummary();
    const auto units = [&](IsoScenario sc, numerics::DataFormat fmt) {
        return scaledSystolic(sc, IsoEnergyPolicy::PowerBudget, s, fmt)
            .macUnits();
    };
    EXPECT_LT(units(IsoScenario::IsoEnergy, numerics::DataFormat::FP32),
              units(IsoScenario::IsoEnergy, numerics::DataFormat::BFLOAT16));
    EXPECT_LT(units(IsoScenario::IsoEnergy, numerics::DataFormat::BFLOAT16),
              units(IsoScenario::IsoEnergy, numerics::DataFormat::HFP8));
    EXPECT_LT(units(IsoScenario::IsoEnergy, numerics::DataFormat::HFP8),
              units(IsoScenario::IsoEnergy, numerics::DataFormat::INT8));
    EXPECT_LT(units(IsoScenario::IsoArea, numerics::DataFormat::FP32),
              units(IsoScenario::IsoArea, numerics::DataFormat::INT8));
}

TEST(IsoScaling, PowerBudgetAndEnergyRatioDisagreeInGeneral)
{
    // The two documented interpretations of the paper's underspecified
    // iso-energy rule are genuinely different policies; if they ever
    // coincided exactly for FP32 the distinction should be revisited.
    const MirageSummary s = mirageSummary();
    const SystolicConfig a =
        scaledSystolic(IsoScenario::IsoEnergy, IsoEnergyPolicy::PowerBudget,
                       s, numerics::DataFormat::FP32);
    const SystolicConfig b =
        scaledSystolic(IsoScenario::IsoEnergy, IsoEnergyPolicy::EnergyRatio,
                       s, numerics::DataFormat::FP32);
    EXPECT_NE(a.num_arrays, b.num_arrays);
}

TEST(IsoScalingDeath, IsoAreaUndefinedForFmac)
{
    // FMAC publishes no area per MAC; iso-area scaling must refuse rather
    // than silently produce a zero-area deployment.
    const MirageSummary s = mirageSummary();
    EXPECT_EXIT(scaledSystolic(IsoScenario::IsoArea,
                               IsoEnergyPolicy::PowerBudget, s,
                               numerics::DataFormat::FMAC),
                testing::ExitedWithCode(1), "area per MAC");
}

TEST(IsoScalingDeath, MirageIsNotASystolicFormat)
{
    const MirageSummary s = mirageSummary();
    EXPECT_EXIT(scaledSystolic(IsoScenario::IsoEnergy,
                               IsoEnergyPolicy::PowerBudget, s,
                               numerics::DataFormat::MirageBfpRns),
                testing::ExitedWithCode(1), "not a systolic");
}

} // namespace
} // namespace arch
} // namespace mirage
