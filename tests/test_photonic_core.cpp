/**
 * @file
 * Tests for the functional photonic pipeline: MMU phase arithmetic, MDPU
 * accumulation + phase detection, MMVMU tiling, and the headline invariant
 * — the phase-domain simulation is bit-exact against integer modular
 * arithmetic for every modulus and operand (noise off), and degrades
 * gracefully (not catastrophically) with noise on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/units.h"
#include "photonic/mdpu.h"
#include "photonic/mmu.h"
#include "photonic/mmvmu.h"
#include "rns/modular_gemm.h"
#include "test_support.h"

namespace mirage {
namespace photonic {
namespace {

using PhotonicSeeded = mirage::test::SeededTest;

TEST(MmuTest, PaperWorkedExample)
{
    // Sec. IV-A1: x = 101b (5), w = 011b (3) -> 15 Phi0 total phase.
    Mmu mmu(8, 3); // arbitrary m = 8 for a 3-bit example
    mmu.setWeight(3);
    const double phi0 = 2.0 * units::kPi / 8.0;
    EXPECT_NEAR(mmu.idealPhase(5), 15.0 * phi0, 1e-12);
}

TEST(MmuTest, PhaseProportionalToProduct)
{
    const uint64_t m = 33;
    Mmu mmu(m, 6);
    const double phi0 = 2.0 * units::kPi / static_cast<double>(m);
    for (uint64_t w = 0; w < m; w += 5) {
        mmu.setWeight(w);
        for (uint64_t x = 0; x < m; x += 3)
            EXPECT_NEAR(mmu.idealPhase(x), static_cast<double>(x * w) * phi0,
                        1e-9);
    }
}

TEST(MmuTest, ReprogramCounting)
{
    Mmu mmu(31, 5);
    EXPECT_EQ(mmu.reprogramCount(), 0u);
    mmu.setWeight(7);
    mmu.setWeight(7); // reprogramming with the same value still counts
    EXPECT_EQ(mmu.reprogramCount(), 2u);
}

TEST(PhaseDetectorTest, IdealDetectionExhaustive)
{
    for (uint64_t m : {31ull, 32ull, 33ull}) {
        const PhaseDetector det(m);
        const double phi0 = 2.0 * units::kPi / static_cast<double>(m);
        // Any multiple of phi0 (incl. many wraps) detects to value mod m.
        for (uint64_t v = 0; v < 4 * m; ++v)
            EXPECT_EQ(det.detectIdeal(static_cast<double>(v) * phi0), v % m);
    }
}

TEST(PhaseDetectorTest, IdealDetectionToleratesSmallPhaseError)
{
    const PhaseDetector det(33);
    const double phi0 = 2.0 * units::kPi / 33.0;
    for (uint64_t v : {0ull, 1ull, 16ull, 32ull}) {
        const double phase = static_cast<double>(v) * phi0;
        EXPECT_EQ(det.detectIdeal(phase + 0.4 * phi0), v);
        EXPECT_EQ(det.detectIdeal(phase - 0.4 * phi0), v);
    }
}

TEST_F(PhotonicSeeded, NoisyDetectionHighSnrIsExact)
{
    const PhaseDetector det(33);
    const double phi0 = 2.0 * units::kPi / 33.0;
    // SNR = 1e4: error probability is negligible.
    for (int t = 0; t < 500; ++t) {
        const uint64_t v = static_cast<uint64_t>(rng.uniformInt(0, 32));
        EXPECT_EQ(det.detectNoisy(v * phi0, 1.0, 1e-4, rng), v);
    }
}

TEST(PhaseDetectorTest, NoisyDetectionLowSnrMakesErrors)
{
    Rng rng(9);
    const PhaseDetector det(33);
    const double phi0 = 2.0 * units::kPi / 33.0;
    int errors = 0;
    for (int t = 0; t < 500; ++t) {
        const uint64_t v = static_cast<uint64_t>(rng.uniformInt(0, 32));
        if (det.detectNoisy(v * phi0, 1.0, 0.3, rng) != v)
            ++errors;
    }
    EXPECT_GT(errors, 50); // SNR ~ 3 for 33 levels must fail often
}

TEST_F(PhotonicSeeded, MdpuMatchesIntegerModularDot)
{
    for (uint64_t m : {31ull, 32ull, 33ull}) {
        const int bits = (m == 33) ? 6 : 5;
        Mdpu mdpu(m, bits, 16);
        for (int trial = 0; trial < 50; ++trial) {
            std::vector<rns::Residue> w(16), x(16);
            for (auto &v : w)
                v = static_cast<rns::Residue>(rng.uniformInt(0, m - 1));
            for (auto &v : x)
                v = static_cast<rns::Residue>(rng.uniformInt(0, m - 1));
            mdpu.programWeights(w);
            // Phase-domain result equals the integer modular dot product.
            const rns::Residue golden =
                rns::modularDot(x.data(), w.data(), 16, m);
            EXPECT_EQ(mdpu.compute(x, nullptr, 1.0, 0.0, nullptr), golden);
            EXPECT_EQ(mdpu.dotIdeal(x), golden);
        }
    }
}

TEST(MdpuTest, ShortInputsZeroFill)
{
    Mdpu mdpu(31, 5, 16);
    std::vector<rns::Residue> w(16, 3);
    mdpu.programWeights(w);
    std::vector<rns::Residue> x = {5, 7}; // only two active inputs
    EXPECT_EQ(mdpu.compute(x, nullptr, 1.0, 0.0, nullptr),
              (5u * 3u + 7u * 3u) % 31u);
}

TEST_F(PhotonicSeeded, MmvmuMatchesIdealMvm)
{
    const DeviceKit kit;
    Mmvmu unit(33, 8, 16, kit, 10e9, PhotonicNoiseConfig{});
    std::vector<rns::Residue> tile(8 * 16);
    for (auto &v : tile)
        v = static_cast<rns::Residue>(rng.uniformInt(0, 32));
    unit.programTile(tile, 8, 16);
    for (int t = 0; t < 20; ++t) {
        std::vector<rns::Residue> x(16);
        for (auto &v : x)
            v = static_cast<rns::Residue>(rng.uniformInt(0, 32));
        EXPECT_EQ(unit.mvm(x, nullptr), unit.mvmIdeal(x));
    }
    EXPECT_EQ(unit.stats().tiles_programmed, 1u);
    EXPECT_EQ(unit.stats().mvms_executed, 20u);
}

TEST_F(PhotonicSeeded, RnsMmvmuSignedMvmRoundTrip)
{
    const DeviceKit kit;
    RnsMmvmu array(mirage::test::paperModuli(), 8, 16, kit, 10e9);
    // bm = 4 mantissas: [-15, 15].
    const auto tile = mirage::test::randomIntVector(rng, 8 * 16, -15, 15);
    array.programTile(tile, 8, 16);
    for (int t = 0; t < 20; ++t) {
        const auto x = mirage::test::randomIntVector(rng, 16, -15, 15);
        const auto y = array.mvm(x);
        // The reference MVM is a 1-column GEMM with the tile as A.
        const auto expect = mirage::test::referenceGemm(tile, x, 8, 16, 1);
        for (int r = 0; r < 8; ++r)
            EXPECT_EQ(y[static_cast<size_t>(r)],
                      expect[static_cast<size_t>(r)])
                << "row " << r;
    }
}

TEST_F(PhotonicSeeded, PhotonicGemmMatchesRnsEngineAndExactInt)
{
    const rns::ModuliSet set = mirage::test::paperModuli();
    const DeviceKit kit;
    RnsMmvmu array(set, 4, 8, kit, 10e9); // small array forces tiling
    const int m = 9, k = 19, n = 5;      // deliberately non-multiples
    const auto a =
        mirage::test::randomIntVector(rng, static_cast<size_t>(m) * k, -15, 15);
    const auto b =
        mirage::test::randomIntVector(rng, static_cast<size_t>(k) * n, -15, 15);

    const auto c_photonic = photonicGemm(array, a, b, m, k, n);
    const rns::RnsGemmEngine engine(set);
    const auto c_rns = engine.gemm(a, b, m, k, n);
    const auto c_exact = mirage::test::referenceGemm(a, b, m, k, n);
    ASSERT_EQ(c_photonic.size(), c_rns.size());
    for (size_t i = 0; i < c_photonic.size(); ++i) {
        EXPECT_EQ(c_photonic[i], c_rns[i]) << i;
        EXPECT_EQ(c_photonic[i], c_exact[i]) << i;
    }
}

TEST(PhotonicGemmTest, TileAndMvmCountsMatchAnalyticTiling)
{
    const rns::ModuliSet set = mirage::test::paperModuli();
    const DeviceKit kit;
    RnsMmvmu array(set, 4, 8, kit, 10e9);
    const int m = 9, k = 19, n = 5;
    std::vector<int64_t> a(m * k, 1), b(k * n, 1);
    photonicGemm(array, a, b, m, k, n);
    // ceil(9/4) * ceil(19/8) = 3 * 3 = 9 tiles; each streams n = 5 vectors.
    EXPECT_EQ(array.unit(0).stats().tiles_programmed, 9u);
    EXPECT_EQ(array.unit(0).stats().mvms_executed, 45u);
}

TEST(PhotonicNoise, DeviceErrorsDegradeGracefully)
{
    // At a design point comfortably inside the Eq. (14) budget (10-bit DAC
    // encoding error, 0.03 % MRR error) the dominant effect must be
    // occasional +-1-level detection errors, not large corruption.
    Rng rng(16);
    const DeviceKit kit;
    PhotonicNoiseConfig noise;
    noise.eps_ps = std::exp2(-10);
    noise.eps_mrr = 0.0003;
    Mmvmu unit(33, 8, 16, kit, 10e9, noise);

    std::vector<rns::Residue> tile(8 * 16);
    for (auto &v : tile)
        v = static_cast<rns::Residue>(rng.uniformInt(0, 32));
    unit.programTile(tile, 8, 16);

    int mismatches = 0, total = 0;
    for (int t = 0; t < 100; ++t) {
        std::vector<rns::Residue> x(16);
        for (auto &v : x)
            v = static_cast<rns::Residue>(rng.uniformInt(0, 32));
        const auto noisy = unit.mvm(x, &rng);
        const auto ideal = unit.mvmIdeal(x);
        for (size_t r = 0; r < noisy.size(); ++r) {
            ++total;
            if (noisy[r] != ideal[r]) {
                ++mismatches;
                // Errors are at most a couple of levels (mod m).
                const int64_t diff =
                    std::abs(static_cast<int64_t>(noisy[r]) -
                             static_cast<int64_t>(ideal[r]));
                EXPECT_LE(std::min(diff, 33 - diff), 3);
            }
        }
    }
    EXPECT_LT(mismatches, total / 4);
}

TEST(PhotonicNoise, ShotThermalAtDesignSnrIsMostlyClean)
{
    Rng rng(17);
    const DeviceKit kit;
    PhotonicNoiseConfig noise;
    noise.shot_thermal_enabled = true;
    noise.snr_safety = 2.0; // design margin
    Mmvmu unit(33, 8, 16, kit, 10e9, noise);
    std::vector<rns::Residue> tile(8 * 16);
    for (auto &v : tile)
        v = static_cast<rns::Residue>(rng.uniformInt(0, 32));
    unit.programTile(tile, 8, 16);
    int mismatches = 0, total = 0;
    for (int t = 0; t < 100; ++t) {
        std::vector<rns::Residue> x(16);
        for (auto &v : x)
            v = static_cast<rns::Residue>(rng.uniformInt(0, 32));
        const auto noisy = unit.mvm(x, &rng);
        const auto ideal = unit.mvmIdeal(x);
        for (size_t r = 0; r < noisy.size(); ++r) {
            ++total;
            mismatches += (noisy[r] != ideal[r]);
        }
    }
    EXPECT_LT(mismatches, total / 100);
}

} // namespace
} // namespace photonic
} // namespace mirage
