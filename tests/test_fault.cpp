/**
 * @file
 * Fault-injection registry tests: the spec grammar (hit / repeating /
 * modulo / probability, the xK fire cap, malformed tokens), schedule
 * determinism across re-arms, the MIRAGE_FAULT-style string parser,
 * eval/fire accounting and the fault.injected/fault.recovered counters,
 * reset semantics, and the disarmed-path cost bound that backs the
 * "zero cost in production" promise.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fault/injection.h"
#include "obs/metrics.h"

namespace mirage {
namespace {

/** Disarms everything on entry and exit so tests cannot leak schedules
 *  into each other (or inherit MIRAGE_FAULT from the environment). */
struct FaultStateGuard
{
    FaultStateGuard() { fault::reset(); }
    ~FaultStateGuard() { fault::reset(); }
};

/** Runs `point` through n evaluations; returns the 1-based indices that
 *  fired. */
std::vector<uint64_t>
fireSchedule(fault::FaultPoint &point, uint64_t n)
{
    std::vector<uint64_t> fired;
    for (uint64_t i = 1; i <= n; ++i)
        if (point.shouldFire())
            fired.push_back(i);
    return fired;
}

uint64_t
counterValue(const std::string &name)
{
    return obs::MetricsRegistry::global().counter(name).value();
}

// ---------------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------------

TEST(FaultSpecParse, OneShotHit)
{
    fault::FaultSpec spec;
    ASSERT_TRUE(fault::parseSpec("12", &spec, nullptr));
    EXPECT_EQ(spec.kind, fault::FaultSpec::Kind::Hit);
    EXPECT_EQ(spec.first, 12u);
    EXPECT_EQ(spec.every, 0u);
    EXPECT_EQ(spec.limit, 0u);
}

TEST(FaultSpecParse, HitAndEveryAfter)
{
    fault::FaultSpec spec;
    ASSERT_TRUE(fault::parseSpec("3+", &spec));
    EXPECT_EQ(spec.kind, fault::FaultSpec::Kind::Hit);
    EXPECT_EQ(spec.first, 3u);
    EXPECT_EQ(spec.every, 1u);
}

TEST(FaultSpecParse, HitModulo)
{
    fault::FaultSpec spec;
    ASSERT_TRUE(fault::parseSpec("4%8", &spec));
    EXPECT_EQ(spec.kind, fault::FaultSpec::Kind::Hit);
    EXPECT_EQ(spec.first, 4u);
    EXPECT_EQ(spec.every, 8u);
}

TEST(FaultSpecParse, Probability)
{
    fault::FaultSpec spec;
    ASSERT_TRUE(fault::parseSpec("p0.25", &spec));
    EXPECT_EQ(spec.kind, fault::FaultSpec::Kind::Probability);
    EXPECT_DOUBLE_EQ(spec.p, 0.25);
    EXPECT_EQ(spec.seed, 0u);
}

TEST(FaultSpecParse, ProbabilityWithSeedAndCap)
{
    fault::FaultSpec spec;
    ASSERT_TRUE(fault::parseSpec("p0.5@7x3", &spec));
    EXPECT_EQ(spec.kind, fault::FaultSpec::Kind::Probability);
    EXPECT_DOUBLE_EQ(spec.p, 0.5);
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_EQ(spec.limit, 3u);
}

TEST(FaultSpecParse, HitWithCap)
{
    fault::FaultSpec spec;
    ASSERT_TRUE(fault::parseSpec("2%5x4", &spec));
    EXPECT_EQ(spec.first, 2u);
    EXPECT_EQ(spec.every, 5u);
    EXPECT_EQ(spec.limit, 4u);
}

TEST(FaultSpecParse, MalformedTokensRejected)
{
    fault::FaultSpec spec;
    std::string error;
    for (const char *bad : {"", "abc", "0", "p", "p1.5", "p-0.1", "px",
                            "3%", "%4", "3x", "x2", "3+4", "p0.5@", "1 2"}) {
        EXPECT_FALSE(fault::parseSpec(bad, &spec, &error))
            << "token '" << bad << "' should not parse";
        EXPECT_FALSE(error.empty()) << "token '" << bad << "'";
    }
}

// ---------------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------------

TEST(FaultSchedule, OneShotFiresExactlyOnce)
{
    FaultStateGuard guard;
    fault::FaultPoint point("test.fault.oneshot");
    fault::armPoint("test.fault.oneshot", fault::FaultSpec::hit(5));
    EXPECT_EQ(fireSchedule(point, 20),
              (std::vector<uint64_t>{5}));
    EXPECT_EQ(fault::firedCount("test.fault.oneshot"), 1u);
    EXPECT_EQ(fault::evalCount("test.fault.oneshot"), 20u);
}

TEST(FaultSchedule, HitEveryRepeats)
{
    FaultStateGuard guard;
    fault::FaultPoint point("test.fault.every");
    fault::armPoint("test.fault.every", fault::FaultSpec::hitEvery(4, 8));
    EXPECT_EQ(fireSchedule(point, 30),
              (std::vector<uint64_t>{4, 12, 20, 28}));
}

TEST(FaultSchedule, FireCapLimitsTotalFires)
{
    FaultStateGuard guard;
    fault::FaultPoint point("test.fault.cap");
    fault::FaultSpec spec = fault::FaultSpec::hitEvery(2, 3);
    spec.limit = 2;
    fault::armPoint("test.fault.cap", spec);
    EXPECT_EQ(fireSchedule(point, 30), (std::vector<uint64_t>{2, 5}));
    EXPECT_EQ(fault::firedCount("test.fault.cap"), 2u);
}

TEST(FaultSchedule, ProbabilityIsDeterministicAcrossArms)
{
    FaultStateGuard guard;
    fault::FaultPoint point("test.fault.prob");
    fault::armPoint("test.fault.prob",
                    fault::FaultSpec::probability(0.3, 42));
    const std::vector<uint64_t> first = fireSchedule(point, 200);
    // Re-arming resets the counters and the draw stream: the schedule
    // must replay bit-identically.
    fault::armPoint("test.fault.prob",
                    fault::FaultSpec::probability(0.3, 42));
    EXPECT_EQ(fireSchedule(point, 200), first);
    // Sanity: p=0.3 over 200 draws fires a plausible number of times.
    EXPECT_GT(first.size(), 20u);
    EXPECT_LT(first.size(), 120u);
}

TEST(FaultSchedule, ProbabilitySeedDerivedFromNameDiffersByPoint)
{
    FaultStateGuard guard;
    fault::FaultPoint a("test.fault.prob.a");
    fault::FaultPoint b("test.fault.prob.b");
    fault::armPoint("test.fault.prob.a", fault::FaultSpec::probability(0.5));
    fault::armPoint("test.fault.prob.b", fault::FaultSpec::probability(0.5));
    // Different names derive different streams; identical schedules over
    // 100 draws would mean the name hash is ignored.
    EXPECT_NE(fireSchedule(a, 100), fireSchedule(b, 100));
}

TEST(FaultSchedule, DisarmedPointNeverFires)
{
    FaultStateGuard guard;
    fault::FaultPoint point("test.fault.disarmed");
    // Arm a *different* point so the global gate is open; this point has
    // no spec and must stay silent.
    fault::armPoint("test.fault.other", fault::FaultSpec::hit(1));
    EXPECT_TRUE(fault::armed());
    EXPECT_TRUE(fireSchedule(point, 50).empty());
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(FaultRegistry, ArmFromStringArmsEveryWellFormedEntry)
{
    FaultStateGuard guard;
    EXPECT_EQ(fault::armFromString(
                  "test.fault.s1:3,test.fault.s2:p0.1@9,test.fault.s3:4%8"),
              3);
    const std::vector<std::string> points = fault::armedPoints();
    EXPECT_EQ(points, (std::vector<std::string>{
                          "test.fault.s1", "test.fault.s2", "test.fault.s3"}));
}

TEST(FaultRegistry, ArmFromStringSkipsMalformedEntries)
{
    FaultStateGuard guard;
    // Malformed specs and entries without a colon are skipped loudly; the
    // well-formed one still arms.
    EXPECT_EQ(fault::armFromString("garbage,test.fault.ok:2,bad:p9"), 1);
    EXPECT_EQ(fault::armedPoints(),
              (std::vector<std::string>{"test.fault.ok"}));
}

TEST(FaultRegistry, ResetClosesTheGlobalGate)
{
    FaultStateGuard guard;
    EXPECT_FALSE(fault::armed());
    fault::armPoint("test.fault.gate", fault::FaultSpec::hit(1));
    EXPECT_TRUE(fault::armed());
    fault::reset();
    EXPECT_FALSE(fault::armed());
    EXPECT_TRUE(fault::armedPoints().empty());
    EXPECT_EQ(fault::firedCount("test.fault.gate"), 0u);
}

TEST(FaultRegistry, DisarmLastPointClosesGate)
{
    FaultStateGuard guard;
    fault::armPoint("test.fault.d1", fault::FaultSpec::hit(1));
    fault::armPoint("test.fault.d2", fault::FaultSpec::hit(1));
    fault::disarmPoint("test.fault.d1");
    EXPECT_TRUE(fault::armed());
    fault::disarmPoint("test.fault.d2");
    EXPECT_FALSE(fault::armed());
}

TEST(FaultRegistry, FiresPublishInjectedCountersAndRecoveredPairsUp)
{
    FaultStateGuard guard;
    const uint64_t injected_before = counterValue("fault.injected");
    const uint64_t point_before =
        counterValue("fault.injected.test.fault.counters");
    const uint64_t recovered_before = counterValue("fault.recovered");

    fault::FaultPoint point("test.fault.counters");
    fault::armPoint("test.fault.counters", fault::FaultSpec::hitEvery(1, 2));
    const std::vector<uint64_t> fired = fireSchedule(point, 10);
    EXPECT_EQ(fired.size(), 5u);
    EXPECT_EQ(counterValue("fault.injected") - injected_before, 5u);
    EXPECT_EQ(counterValue("fault.injected.test.fault.counters") -
                  point_before,
              5u);

    for (size_t i = 0; i < fired.size(); ++i)
        fault::recovered("test.fault.counters");
    EXPECT_EQ(counterValue("fault.recovered") - recovered_before, 5u);
    EXPECT_EQ(counterValue("fault.recovered.test.fault.counters"),
              counterValue("fault.injected.test.fault.counters"));
}

TEST(FaultRegistry, ConcurrentEvaluationsCountEveryFire)
{
    // Hit-kind schedules decide on the atomically-assigned evaluation
    // index, so N threads hammering one point still fire exactly the
    // scheduled number of times (the TSan job runs this suite).
    FaultStateGuard guard;
    fault::FaultPoint point("test.fault.mt");
    fault::armPoint("test.fault.mt", fault::FaultSpec::hitEvery(10, 10));
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 1000;
    std::atomic<uint64_t> fires{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&] {
            uint64_t local = 0;
            for (uint64_t i = 0; i < kPerThread; ++i)
                local += point.shouldFire() ? 1 : 0;
            fires.fetch_add(local, std::memory_order_relaxed);
        });
    for (std::thread &w : workers)
        w.join();
    // 4000 evaluations, hits at 10, 20, 30, ... -> exactly 400 fires.
    EXPECT_EQ(fires.load(), 400u);
    EXPECT_EQ(fault::evalCount("test.fault.mt"), kThreads * kPerThread);
    EXPECT_EQ(fault::firedCount("test.fault.mt"), 400u);
}

// ---------------------------------------------------------------------------
// Disarmed cost
// ---------------------------------------------------------------------------

TEST(FaultOverhead, DisarmedCheckCostsAFewNanoseconds)
{
    // The production contract: an unarmed process pays one relaxed load
    // and a predicted branch per shouldFire(). As with the obs bounds,
    // 30 ns/op is an order of magnitude above the expected ~1-2 ns but
    // catches a mistake like touching the per-point counters before the
    // gate, without flaking on slow CI.
    FaultStateGuard guard;
    static fault::FaultPoint point("test.fault.overhead");
    constexpr uint64_t kIters = 2000000;
    using Clock = std::chrono::steady_clock;
    std::atomic<uint64_t> sink{0};

    uint64_t acc = 0;
    const Clock::time_point t0 = Clock::now();
    for (uint64_t i = 0; i < kIters; ++i)
        acc += point.shouldFire() ? 1 : 0;
    const Clock::time_point t1 = Clock::now();
    sink.fetch_add(acc, std::memory_order_relaxed);

    const double ns_per =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(kIters);
    EXPECT_LT(ns_per, 30.0) << "disarmed FaultPoint::shouldFire";
    EXPECT_EQ(sink.load(), 0u);
    // And no evaluation was counted: the registry stayed untouched.
    EXPECT_EQ(fault::evalCount("test.fault.overhead"), 0u);
}

} // namespace
} // namespace mirage
