/**
 * @file
 * End-to-end training tests: synthetic dataset generators, training-loop
 * convergence under FP32, and the paper's central accuracy claim in
 * miniature — training under Mirage's BFP/RNS numerics tracks FP32.
 */

#include <gtest/gtest.h>

#include "models/trainable.h"
#include "nn/data.h"
#include "nn/gemm_backend.h"
#include "nn/model.h"
#include "test_support.h"

namespace mirage {
namespace nn {
namespace {

TEST(Data, GaussianClustersShapeAndLabels)
{
    const Dataset ds = makeGaussianClusters(100, 4, 8, 3.0f, 1);
    EXPECT_EQ(ds.size(), 100);
    EXPECT_EQ(ds.inputs.shape(), (std::vector<int>{100, 8}));
    EXPECT_EQ(ds.num_classes, 4);
    for (int label : ds.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 4);
    }
}

TEST(Data, GaussianClustersDeterministicUnderSeed)
{
    const Dataset a = makeGaussianClusters(50, 3, 4, 2.0f, 42);
    const Dataset b = makeGaussianClusters(50, 3, 4, 2.0f, 42);
    for (int64_t i = 0; i < a.inputs.size(); ++i)
        EXPECT_EQ(a.inputs[i], b.inputs[i]);
    EXPECT_EQ(a.labels, b.labels);
}

TEST(Data, PatternImagesShape)
{
    const Dataset ds = makePatternImages(20, 4, 16, 0.2f, 2);
    EXPECT_EQ(ds.inputs.shape(), (std::vector<int>{20, 1, 16, 16}));
}

TEST(Data, MajoritySequencesLabelsAreTrueMajorities)
{
    const Dataset ds = makeMajoritySequences(50, 4, 12, 3);
    EXPECT_EQ(ds.inputs.shape(), (std::vector<int>{50, 12, 4}));
    for (int i = 0; i < ds.size(); ++i) {
        // Recount the one-hot tokens; the label must be the majority.
        std::vector<int> counts(4, 0);
        for (int t = 0; t < 12; ++t)
            for (int c = 0; c < 4; ++c)
                if (ds.inputs[(static_cast<int64_t>(i) * 12 + t) * 4 + c] >
                    0.5f)
                    ++counts[static_cast<size_t>(c)];
        const int label = ds.labels[static_cast<size_t>(i)];
        for (int c = 0; c < 4; ++c)
            EXPECT_LE(counts[static_cast<size_t>(c)],
                      counts[static_cast<size_t>(label)]);
    }
}

TEST(Data, SliceExtractsRows)
{
    const Dataset ds = makeGaussianClusters(30, 3, 4, 2.0f, 4);
    const Dataset s = ds.slice(10, 5);
    EXPECT_EQ(s.size(), 5);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(s.labels[static_cast<size_t>(i)],
                  ds.labels[static_cast<size_t>(10 + i)]);
        for (int d = 0; d < 4; ++d)
            EXPECT_EQ(s.inputs[static_cast<int64_t>(i) * 4 + d],
                      ds.inputs[static_cast<int64_t>(10 + i) * 4 + d]);
    }
}

TEST(Training, MlpLearnsClustersFp32)
{
    Rng rng(10);
    FormatBackend backend(numerics::DataFormat::FP32);
    auto model = models::makeMlp(8, 32, 4, &backend, rng);
    // One generation (one set of cluster centers), split train/test.
    const Dataset all = makeGaussianClusters(600, 4, 8, 3.0f, 11);
    const Dataset train = all.slice(0, 400);
    const Dataset test = all.slice(400, 200);
    Sgd opt(0.05f, 0.9f);
    TrainConfig cfg;
    cfg.epochs = 8;
    cfg.batch_size = 32;
    const TrainResult r = trainClassifier(*model, opt, train, test, cfg);
    // The clusters overlap (margin 3, unit noise, dim 8), so the Bayes
    // error keeps accuracy below ~0.9; well above the 0.25 chance floor.
    EXPECT_GT(r.final_test_accuracy, 0.85f);
    // Loss decreases over training.
    EXPECT_LT(r.epoch_loss.back(), r.epoch_loss.front());
}

TEST(Training, MirageNumericsTrackFp32OnMlp)
{
    // The miniature Table I claim: training under BFP(4,16)+RNS reaches
    // accuracy comparable to FP32 on the same task and seed.
    const Dataset all = makeGaussianClusters(600, 4, 8, 3.0f, 21);
    const Dataset train = all.slice(0, 400);
    const Dataset test = all.slice(400, 200);

    auto run = [&](numerics::DataFormat fmt) {
        Rng rng(20);
        numerics::FormatGemmConfig fc;
        fc.moduli = mirage::test::paperModuli();
        FormatBackend backend(fmt, fc);
        auto model = models::makeMlp(8, 32, 4, &backend, rng);
        Sgd opt(0.05f, 0.9f);
        TrainConfig cfg;
        cfg.epochs = 8;
        cfg.batch_size = 32;
        return trainClassifier(*model, opt, train, test, cfg)
            .final_test_accuracy;
    };

    const float fp32 = run(numerics::DataFormat::FP32);
    const float mirage = run(numerics::DataFormat::MirageBfpRns);
    EXPECT_GT(fp32, 0.9f);
    EXPECT_GT(mirage, fp32 - 0.05f);
}

TEST(Training, SmallCnnLearnsPatternsFp32)
{
    Rng rng(30);
    FormatBackend backend(numerics::DataFormat::FP32);
    auto model = models::makeSmallCnn(4, &backend, rng);
    const Dataset train = makePatternImages(256, 4, 16, 0.3f, 31);
    const Dataset test = makePatternImages(128, 4, 16, 0.3f, 32);
    Sgd opt(0.02f, 0.9f);
    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.batch_size = 32;
    const TrainResult r = trainClassifier(*model, opt, train, test, cfg);
    EXPECT_GT(r.final_test_accuracy, 0.7f);
}

TEST(Training, TinyTransformerLearnsMajorityFp32)
{
    Rng rng(40);
    FormatBackend backend(numerics::DataFormat::FP32);
    auto model =
        models::makeTinyTransformer(4, 4, 16, 2, 1, &backend, rng);
    const Dataset train = makeMajoritySequences(384, 4, 12, 41);
    const Dataset test = makeMajoritySequences(128, 4, 12, 42);
    Adam opt(3e-3f);
    TrainConfig cfg;
    cfg.epochs = 8;
    cfg.batch_size = 32;
    const TrainResult r = trainClassifier(*model, opt, train, test, cfg);
    EXPECT_GT(r.final_test_accuracy, 0.65f);
}

TEST(Training, LrScheduleApplies)
{
    Rng rng(50);
    FormatBackend backend(numerics::DataFormat::FP32);
    auto model = models::makeMlp(8, 16, 3, &backend, rng);
    const Dataset all = makeGaussianClusters(180, 3, 8, 3.0f, 51);
    const Dataset train = all.slice(0, 120);
    const Dataset test = all.slice(120, 60);
    Sgd opt(0.1f);
    TrainConfig cfg;
    cfg.epochs = 4;
    cfg.batch_size = 16;
    cfg.lr_schedule = {1.0f, 1.0f, 0.1f, 0.1f}; // paper-style /10 decay
    const TrainResult r = trainClassifier(*model, opt, train, test, cfg);
    EXPECT_NEAR(opt.lr(), 0.01f, 1e-5);
    EXPECT_GT(r.final_test_accuracy, 0.8f);
}

TEST(Training, MiniResNetForwardBackwardRuns)
{
    // Full convergence is covered by the benches; here just verify the
    // residual/batch-norm stack trains without shape or gradient errors.
    Rng rng(60);
    FormatBackend backend(numerics::DataFormat::FP32);
    auto model = models::makeMiniResNet(4, &backend, rng);
    const Dataset train = makePatternImages(64, 4, 16, 0.3f, 61);
    const Dataset test = makePatternImages(32, 4, 16, 0.3f, 62);
    Sgd opt(0.01f, 0.9f);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch_size = 16;
    const TrainResult r = trainClassifier(*model, opt, train, test, cfg);
    EXPECT_EQ(r.epoch_loss.size(), 2u);
    EXPECT_GT(r.final_test_accuracy, 0.2f); // above chance floor
}

} // namespace
} // namespace nn
} // namespace mirage
