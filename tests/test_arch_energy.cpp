/**
 * @file
 * Tests for the power/area/energy model against the paper's published
 * anchors (Fig. 9, Table II) and for the iso-scaling policies (Fig. 8
 * methodology). Where the paper's own constants are mutually inconsistent
 * (ADC power share), the tests pin our documented honest accounting.
 */

#include <gtest/gtest.h>

#include "arch/energy_model.h"
#include "arch/iso_scaling.h"

namespace mirage {
namespace arch {
namespace {

MirageEnergyModel
defaultModel()
{
    return MirageEnergyModel(MirageConfig{});
}

TEST(EnergyModel, AllComponentsPositive)
{
    const PowerBreakdown p = defaultModel().peakPower();
    EXPECT_GT(p.laser_w, 0.0);
    EXPECT_GT(p.mrr_tuning_w, 0.0);
    EXPECT_GT(p.dac_w, 0.0);
    EXPECT_GT(p.adc_w, 0.0);
    EXPECT_GT(p.tia_w, 0.0);
    EXPECT_GT(p.sram_w, 0.0);
    EXPECT_GT(p.bfp_conv_w, 0.0);
    EXPECT_GT(p.rns_conv_w, 0.0);
    EXPECT_GT(p.accum_w, 0.0);
    EXPECT_NEAR(p.total(), p.computeTotal() + p.sram_w, 1e-9);
}

TEST(EnergyModel, SramIsTheLargestConsumer)
{
    // Fig. 9: SRAM dominates peak power (61.9 % in the paper).
    const PowerBreakdown p = defaultModel().peakPower();
    for (double other : {p.laser_w, p.dac_w, p.tia_w, p.bfp_conv_w,
                         p.rns_conv_w, p.accum_w, p.mrr_tuning_w}) {
        EXPECT_GT(p.sram_w, other);
    }
    EXPECT_GT(p.sram_w / p.total(), 0.30);
}

TEST(EnergyModel, SramPowerNearPaperValue)
{
    // Paper: 61.9 % of 19.95 W ~ 12.3 W. The access energy constant was
    // calibrated once to this anchor.
    const PowerBreakdown p = defaultModel().peakPower();
    EXPECT_NEAR(p.sram_w, 12.3, 2.5);
}

TEST(EnergyModel, MrrTuningIsNegligible)
{
    // 0.3 pW per MRR: even ~300k MRRs stay far below a milliwatt.
    const PowerBreakdown p = defaultModel().peakPower();
    EXPECT_LT(p.mrr_tuning_w, 1e-3);
}

TEST(EnergyModel, RnsConversionPowerNearPaperShare)
{
    // Paper: 6.2 % of 19.95 W ~ 1.24 W for the RNS converters.
    const PowerBreakdown p = defaultModel().peakPower();
    EXPECT_NEAR(p.rns_conv_w, 1.45, 0.6);
}

TEST(EnergyModel, AccumulatorPowerNearPaperShare)
{
    // Paper: 1.4 % of 19.95 W ~ 0.28 W.
    const PowerBreakdown p = defaultModel().peakPower();
    EXPECT_NEAR(p.accum_w, 0.28, 0.1);
}

TEST(EnergyModel, TotalPowerSamePowerOfTenAsPaper)
{
    // Paper total: 19.95 W. Our honest ADC accounting lands higher (the
    // paper's 1.1 % converter share contradicts its own cited 6-bit ADC;
    // see EXPERIMENTS.md), but the total must stay within the same decade.
    const PowerBreakdown p = defaultModel().peakPower();
    EXPECT_GT(p.total(), 10.0);
    EXPECT_LT(p.total(), 60.0);
}

TEST(EnergyModel, AreaAnchors)
{
    const AreaBreakdown a = defaultModel().area();
    // Photonic chiplet: paper reports 234 mm^2.
    EXPECT_NEAR(a.photonic_mm2, 234.0, 40.0);
    // SRAM macro area: 36 % of 476.6 ~ 171.6 mm^2 (24 MB at 40 nm).
    EXPECT_NEAR(a.sram_mm2, 171.6, 10.0);
    // ADC area: 1536 converters (9.7 % of 476.6 ~ 46 mm^2); ours scales
    // 5-bit converters down, so allow the low side.
    EXPECT_GT(a.adc_mm2, 25.0);
    EXPECT_LT(a.adc_mm2, 50.0);
    // DAC area: 256 DACs * 0.072 mm^2 ~ 18.4 mm^2.
    EXPECT_NEAR(a.dac_mm2, 18.4, 4.0);
    // Total in the neighbourhood of the paper's 476.6 mm^2.
    EXPECT_NEAR(a.total(), 476.6, 80.0);
    // 3D stacking: footprint = max(photonic, electronic) ~ 242.7 mm^2.
    EXPECT_NEAR(a.stackedMm2(), 242.7, 40.0);
}

TEST(EnergyModel, EnergyPerMacBeatsEveryDigitalFpFormat)
{
    // Table II shape: Mirage's compute pJ/MAC must undercut FP32 (12.42),
    // bfloat16 (3.20) and HFP8 (1.47) by a wide margin.
    const MirageSummary s = defaultModel().summary();
    EXPECT_LT(s.pj_per_mac, 1.47 / 2.0);
    EXPECT_GT(s.pj_per_mac, 0.05); // sanity: not absurdly low
}

TEST(EnergyModel, LaserShareGrowsWithG)
{
    // Fig. 5b driver: larger g -> exponentially more laser power, while
    // per-MAC digital costs amortize.
    MirageConfig small;
    small.g = 8;
    MirageConfig big;
    big.g = 32;
    const PowerBreakdown ps = MirageEnergyModel(small).peakPower();
    const PowerBreakdown pb = MirageEnergyModel(big).peakPower();
    EXPECT_GT(pb.laser_w / pb.computeTotal(),
              ps.laser_w / ps.computeTotal());
}

TEST(EnergyModel, GemmEnergyScalesWithTime)
{
    const MirageEnergyModel model = defaultModel();
    GemmPerf p;
    p.time_s = 1e-6;
    const double e1 = model.gemmEnergyJ(p, false);
    p.time_s = 2e-6;
    EXPECT_NEAR(model.gemmEnergyJ(p, false), 2.0 * e1, 1e-12);
    EXPECT_GT(model.gemmEnergyJ(p, true), model.gemmEnergyJ(p, false));
}

TEST(IsoScaling, IsoAreaMatchesMirageFootprint)
{
    const MirageSummary s = defaultModel().summary();
    const SystolicConfig cfg =
        scaledSystolic(IsoScenario::IsoArea, IsoEnergyPolicy::PowerBudget, s,
                       numerics::DataFormat::INT12);
    // INT12: 7.7e-4 mm^2/MAC; Mirage ~242 mm^2 -> ~315k MACs -> ~615
    // arrays of 512.
    EXPECT_NEAR(cfg.num_arrays, 615, 130);
    EXPECT_NEAR(cfg.areaMm2(), s.area.stackedMm2(),
                0.05 * s.area.stackedMm2());
}

TEST(IsoScaling, IsoAreaGivesCheapFormatsMoreUnits)
{
    const MirageSummary s = defaultModel().summary();
    const SystolicConfig fp32 =
        scaledSystolic(IsoScenario::IsoArea, IsoEnergyPolicy::PowerBudget, s,
                       numerics::DataFormat::FP32);
    const SystolicConfig int8 =
        scaledSystolic(IsoScenario::IsoArea, IsoEnergyPolicy::PowerBudget, s,
                       numerics::DataFormat::INT8);
    EXPECT_GT(int8.macUnits(), 10 * fp32.macUnits());
}

TEST(IsoScalingDeath, IsoAreaUndefinedForFmac)
{
    // The paper omits FMAC from iso-area (no published area); so do we.
    const MirageSummary s = defaultModel().summary();
    EXPECT_EXIT(scaledSystolic(IsoScenario::IsoArea,
                               IsoEnergyPolicy::PowerBudget, s,
                               numerics::DataFormat::FMAC),
                testing::ExitedWithCode(1), "area");
}

TEST(IsoScaling, IsoEnergyPowerBudgetMatchesComputePower)
{
    const MirageSummary s = defaultModel().summary();
    const SystolicConfig cfg =
        scaledSystolic(IsoScenario::IsoEnergy, IsoEnergyPolicy::PowerBudget,
                       s, numerics::DataFormat::FMAC);
    EXPECT_NEAR(cfg.computePowerW(), s.power.computeTotal(),
                0.05 * s.power.computeTotal());
}

TEST(IsoScaling, EnergyRatioPolicyTracksEfficiencyGap)
{
    const MirageSummary s = defaultModel().summary();
    const SystolicConfig fp32 =
        scaledSystolic(IsoScenario::IsoEnergy, IsoEnergyPolicy::EnergyRatio,
                       s, numerics::DataFormat::FP32);
    const SystolicConfig fmac =
        scaledSystolic(IsoScenario::IsoEnergy, IsoEnergyPolicy::EnergyRatio,
                       s, numerics::DataFormat::FMAC);
    // FP32 is far less efficient than Mirage -> far fewer units than FMAC.
    EXPECT_LT(fp32.macUnits(), fmac.macUnits() / 10);
}

} // namespace
} // namespace arch
} // namespace mirage
