/**
 * @file
 * SLO burn-rate monitor tests: window burn math against hand-computed
 * values (time is explicit, so patterns are exact), fast-window aging,
 * the multi-window alert gate, rising-edge-only alert semantics (one
 * alert per excursion, silence on recovery, re-alert on re-crossing),
 * min_events cold-start suppression, shed-burst alerts and the
 * independence of the two excursion latches, config validation, and the
 * InferenceServer
 * integration: an impossible deadline drives the per-class monitor,
 * the alert callback, the stats counter, and the per-request record.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>

#include "models/zoo.h"
#include "obs/context.h"
#include "runtime/engine.h"
#include "serve/repository.h"
#include "serve/server.h"
#include "serve/slo.h"

namespace mirage {
namespace {

/** Defaults: 1% budgets, 5 s fast / 60 s slow (0.5 s buckets), alert at
 *  10x burn after 10 fast-window events. */
serve::SloMonitorConfig
defaultCfg()
{
    return serve::SloMonitorConfig{};
}

TEST(SloConfig, ValidateRejectsOutOfRangeKnobs)
{
    serve::SloMonitorConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
    cfg.miss_budget = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = defaultCfg();
    cfg.shed_budget = 1.5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = defaultCfg();
    cfg.fast_window_s = 120.0; // fast must not exceed slow
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = defaultCfg();
    cfg.slow_window_s = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = defaultCfg();
    cfg.alert_burn = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = defaultCfg();
    cfg.min_events = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    // The monitor self-validates too.
    cfg = defaultCfg();
    cfg.miss_budget = -1.0;
    EXPECT_THROW(serve::SloMonitor bad(cfg), std::invalid_argument);
}

TEST(SloMonitor, BurnMatchesHandComputedWindowValues)
{
    // 100 completions at t=0.1 with 20 misses: both windows hold the
    // same events, so burn = (20/100) / 0.01 = 20 in each.
    serve::SloMonitor mon(defaultCfg());
    for (int i = 0; i < 100; ++i)
        mon.recordRequest(0.1, i < 20);
    serve::SloStatus s = mon.status(0.1);
    EXPECT_DOUBLE_EQ(s.miss_burn_fast, 20.0);
    EXPECT_DOUBLE_EQ(s.miss_burn_slow, 20.0);
    EXPECT_DOUBLE_EQ(s.shed_burn_fast, 0.0);
    EXPECT_EQ(s.completed, 100u);
    EXPECT_EQ(s.missed, 20u);
    EXPECT_EQ(s.shed, 0u);

    // 10 sheds against those 100 completions: shed burn =
    // (10/110) / 0.01 = 1000/11.
    for (int i = 0; i < 10; ++i)
        mon.recordShed(0.1);
    s = mon.status(0.1);
    EXPECT_DOUBLE_EQ(s.shed_burn_fast, (10.0 / 110.0) / 0.01);
    EXPECT_EQ(s.shed, 10u);

    // An empty monitor reports zero burn, not NaN.
    serve::SloMonitor fresh(defaultCfg());
    s = fresh.status(0.0);
    EXPECT_DOUBLE_EQ(s.miss_burn_fast, 0.0);
    EXPECT_DOUBLE_EQ(s.shed_burn_fast, 0.0);
}

TEST(SloMonitor, FastWindowAgesOutWhileSlowWindowRemembers)
{
    serve::SloMonitor mon(defaultCfg());
    for (int i = 0; i < 50; ++i)
        mon.recordRequest(0.1, true); // 100% misses at t=0.1

    // Inside the fast window both burns see the misses.
    serve::SloStatus s = mon.status(1.0);
    EXPECT_DOUBLE_EQ(s.miss_burn_fast, 100.0); // (50/50)/0.01
    EXPECT_DOUBLE_EQ(s.miss_burn_slow, 100.0);

    // 10 s later the 5 s fast window has aged the events out, but the
    // 60 s slow window still holds them.
    s = mon.status(10.0);
    EXPECT_DOUBLE_EQ(s.miss_burn_fast, 0.0);
    EXPECT_DOUBLE_EQ(s.miss_burn_slow, 100.0);
    EXPECT_EQ(s.completed, 50u); // lifetime totals never age

    // Past the slow window everything ages out.
    s = mon.status(100.0);
    EXPECT_DOUBLE_EQ(s.miss_burn_slow, 0.0);
}

TEST(SloMonitor, AlertFiresOnceAtTheRisingEdgeOnly)
{
    serve::SloMonitor mon(defaultCfg()); // min_events = 10
    // Nine straight misses: burn is 100x but the fast window holds
    // fewer than min_events completions, so cold-start suppression wins.
    for (int i = 0; i < 9; ++i)
        EXPECT_FALSE(mon.recordRequest(0.1, true).has_value()) << i;

    // The tenth miss satisfies the event floor and crosses both windows.
    std::optional<serve::SloAlert> alert = mon.recordRequest(0.1, true);
    ASSERT_TRUE(alert.has_value());
    EXPECT_EQ(alert->kind, serve::SloAlertKind::DeadlineBurn);
    EXPECT_DOUBLE_EQ(alert->fast_burn, 100.0);
    EXPECT_DOUBLE_EQ(alert->slow_burn, 100.0);
    EXPECT_EQ(alert->fast_events, 10u);
    EXPECT_DOUBLE_EQ(alert->at_s, 0.1);
    EXPECT_STREQ(serve::toString(alert->kind), "deadline_burn");

    // Still burning: the excursion is already reported, no re-alert.
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(mon.recordRequest(0.2, true).has_value()) << i;
    EXPECT_TRUE(mon.status(0.2).miss_firing);

    // Recovery: successes dilute the fast window below 10x burn
    // (30 misses / 301 completed = 9.97% < 10% budget*burn). Recovery
    // itself must never alert.
    for (int i = 0; i < 271; ++i)
        EXPECT_FALSE(mon.recordRequest(0.3, false).has_value()) << i;
    EXPECT_FALSE(mon.status(0.3).miss_firing);
    EXPECT_LT(mon.status(0.3).miss_burn_fast, 10.0);

    // A fresh excursion after everything ages out re-alerts exactly once.
    int alerts = 0;
    for (int i = 0; i < 15; ++i)
        alerts += mon.recordRequest(100.0, true).has_value() ? 1 : 0;
    EXPECT_EQ(alerts, 1);
}

TEST(SloMonitor, AlertNeedsBothWindowsOverThreshold)
{
    // A burst that saturates the fast window but is diluted in the slow
    // window must stay silent — the multi-window guard against paging
    // on blips. Fill the slow window with successes, then burst.
    serve::SloMonitor mon(defaultCfg());
    for (int i = 0; i < 5000; ++i)
        mon.recordRequest(0.1, false);
    // 20 misses at t=55: the 5 s fast window holds only the burst
    // (burn (20/20)/0.01 = 100), but the 60 s slow window still holds
    // the successes (burn (20/5020)/0.01 = 0.398 < 10) — no alert.
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(mon.recordRequest(55.0, true).has_value()) << i;
    serve::SloStatus s = mon.status(55.0);
    EXPECT_GE(s.miss_burn_fast, 10.0);
    EXPECT_DOUBLE_EQ(s.miss_burn_slow, (20.0 / 5020.0) / 0.01);
    EXPECT_LT(s.miss_burn_slow, 10.0);
    EXPECT_FALSE(s.miss_firing);
}

TEST(SloMonitor, ShedBurstAlertsIndependentlyOfMissAlerts)
{
    // Pure shed burst: every admission rejected.
    serve::SloMonitor mon(defaultCfg());
    std::optional<serve::SloAlert> alert;
    int shed_alerts = 0;
    for (int i = 0; i < 15; ++i) {
        alert = mon.recordShed(0.1);
        if (alert.has_value()) {
            ++shed_alerts;
            EXPECT_EQ(alert->kind, serve::SloAlertKind::ShedBurst);
            EXPECT_EQ(alert->fast_events, 10u); // offered, not completed
        }
    }
    EXPECT_EQ(shed_alerts, 1);
    EXPECT_TRUE(mon.status(0.1).shed_firing);
    EXPECT_STREQ(serve::toString(serve::SloAlertKind::ShedBurst),
                 "shed_burst");

    // The two excursion latches are independent: a shed burst that is
    // already firing must not swallow a later deadline-burn crossing.
    serve::SloMonitor both(defaultCfg());
    shed_alerts = 0;
    for (int i = 0; i < 9; ++i) {
        EXPECT_FALSE(both.recordRequest(0.1, true).has_value()) << i;
        alert = both.recordShed(0.1);
        shed_alerts += alert.has_value() ? 1 : 0;
    }
    // The shed side crossed mid-sequence (offered hit min_events at the
    // 5th pair) and fired exactly once.
    EXPECT_EQ(shed_alerts, 1);
    EXPECT_TRUE(both.status(0.1).shed_firing);
    // 10th completion: the miss side crosses now and still alerts.
    alert = both.recordRequest(0.1, true);
    ASSERT_TRUE(alert.has_value());
    EXPECT_EQ(alert->kind, serve::SloAlertKind::DeadlineBurn);
    // Both latched: no further alert of either kind for this excursion.
    EXPECT_FALSE(both.recordShed(0.1).has_value());
    EXPECT_FALSE(both.recordRequest(0.1, true).has_value());
}

TEST(SloMonitor, TimeRegressionsClampInsteadOfCorrupting)
{
    serve::SloMonitor mon(defaultCfg());
    mon.recordRequest(10.0, true);
    // An earlier timestamp (cross-thread clock skew) lands in the
    // current bucket rather than rewinding the ring.
    mon.recordRequest(5.0, true);
    serve::SloStatus s = mon.status(10.0);
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.missed, 2u);
    EXPECT_DOUBLE_EQ(s.miss_burn_fast, 100.0);
}

TEST(SloServer, ImpossibleDeadlineDrivesAlertsGaugesAndRecords)
{
    // End-to-end: a deadline no request can meet must push the server's
    // interactive monitor over the alert threshold, fire the pluggable
    // callback, bump stats().slo_alerts, and stamp every reply's record.
    serve::ModelRepository repo;
    repo.publishShape("resnet", models::resNet18());
    runtime::RuntimeEngine engine;

    serve::ServerConfig cfg;
    // Wide enough that all 20 sequential requests land in the fast
    // window even under sanitizer slowdown, short enough to stay "SLO".
    cfg.slo.fast_window_s = 5.0;
    cfg.slo.slow_window_s = 60.0;
    cfg.slo.min_events = 5;
    std::atomic<int> alert_calls{0};
    std::atomic<int> alert_kind_miss{0};
    cfg.on_alert = [&](serve::SloClass cls, const serve::SloAlert &alert) {
        alert_calls.fetch_add(1);
        if (alert.kind == serve::SloAlertKind::DeadlineBurn)
            alert_kind_miss.fetch_add(1);
        EXPECT_EQ(cls, serve::SloClass::Interactive);
        EXPECT_GE(alert.fast_burn, cfg.slo.alert_burn);
    };
    serve::InferenceServer server(repo, engine, cfg);

    serve::InferenceRequest req;
    req.model = "resnet";
    req.samples = 1;
    req.deadline_s = 1e-9; // nothing finishes in a nanosecond

    uint64_t prev_id = 0;
    for (int i = 0; i < 20; ++i) {
        serve::InferenceReply reply = server.submit(req).get();
        EXPECT_FALSE(reply.deadline_met);
        // The structured record mirrors the reply and carries the
        // propagated request id.
        const obs::RequestRecord &rec = reply.record;
        EXPECT_GT(rec.id, prev_id); // ids are process-monotonic
        prev_id = rec.id;
        EXPECT_EQ(rec.cls, obs::kClassInteractive);
        EXPECT_FALSE(rec.deadline_met);
        EXPECT_FALSE(rec.shed);
        EXPECT_EQ(rec.tile, reply.tile);
        EXPECT_EQ(rec.batch_size, reply.batch_size);
        // Wall-time shares decompose the end-to-end total.
        const uint64_t share_sum =
            rec.queue_ns + rec.execute_ns + rec.reply_ns;
        const double tol =
            0.01 * static_cast<double>(rec.total_ns) + 1000.0;
        EXPECT_NEAR(static_cast<double>(share_sum),
                    static_cast<double>(rec.total_ns), tol);
        EXPECT_GT(rec.modeled_ns, 0u);
    }
    server.drain();

    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 20u);
    EXPECT_EQ(stats.deadline_misses, 20u);
    EXPECT_GE(stats.slo_alerts, 1u);
    EXPECT_GE(alert_calls.load(), 1);
    EXPECT_EQ(alert_calls.load(), alert_kind_miss.load()); // no sheds

    const serve::SloStatus slo =
        server.sloStatus(serve::SloClass::Interactive);
    EXPECT_EQ(slo.completed, 20u);
    EXPECT_EQ(slo.missed, 20u);
    EXPECT_GE(slo.miss_burn_slow, cfg.slo.alert_burn);
    // The batch-class monitor saw nothing.
    EXPECT_EQ(server.sloStatus(serve::SloClass::Batch).completed, 0u);
}

TEST(SloServer, ConfigValidationCoversSloKnobs)
{
    serve::ModelRepository repo;
    repo.publishShape("resnet", models::resNet18());
    runtime::RuntimeEngine engine;
    serve::ServerConfig cfg;
    cfg.slo.alert_burn = -1.0;
    EXPECT_THROW(serve::InferenceServer bad(repo, engine, cfg),
                 std::invalid_argument);
}

} // namespace
} // namespace mirage
