/**
 * @file
 * Tests for photonic device geometry (Eq. 11), the optical link budget, and
 * the laser power solver — anchored against the paper's published values
 * (0.57 mm shifter length and ~0.8 mm MMU for m = 33).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "photonic/devices.h"
#include "photonic/link_budget.h"
#include "photonic/noise_model.h"

namespace mirage {
namespace photonic {
namespace {

TEST(Devices, MaxPhaseShift)
{
    // m = 33: ceil(32^2 / 2) * 2 pi / 33 = 512 * 2 pi / 33.
    EXPECT_NEAR(maxPhaseShiftRad(33), 512.0 * 2.0 * units::kPi / 33.0, 1e-9);
}

TEST(Devices, ShifterLengthMatchesPaper)
{
    // Paper Sec. V-B1: ~0.57 mm for the largest modulus (33) with
    // VpiL = 0.002 V*cm and Vbias = 1.08 V.
    const PhaseShifterSpec ps;
    EXPECT_NEAR(totalShifterLengthMm(ps, 33), 0.57, 0.01);
}

TEST(Devices, MmuLengthMatchesPaper)
{
    // Paper: ~0.8 mm horizontal MMU length for m = 33 with MRRs included.
    const DeviceKit kit;
    EXPECT_NEAR(mmuLengthMm(kit, 33, 6), 0.8, 0.05);
}

TEST(Devices, ShifterLengthGrowsWithModulus)
{
    const PhaseShifterSpec ps;
    EXPECT_LT(totalShifterLengthMm(ps, 31), totalShifterLengthMm(ps, 33));
    EXPECT_LT(totalShifterLengthMm(ps, 33), totalShifterLengthMm(ps, 65));
}

TEST(Devices, UnitVoltagePositiveAndScalesInverselyWithModulus)
{
    const PhaseShifterSpec ps;
    const double v33 = unitVoltage(ps, 33);
    EXPECT_GT(v33, 0.0);
}

TEST(LinkBudgetTest, MmuLossOrdering)
{
    const DeviceKit kit;
    const double all_through = mmuLossDb(kit, 33, 6, LossPolicy::AllThrough);
    const double worst = mmuLossDb(kit, 33, 6, LossPolicy::WorstCasePerDigit);
    const double avg = mmuLossDb(kit, 33, 6, LossPolicy::Average);
    EXPECT_GT(all_through, 0.0);
    EXPECT_GE(worst, all_through); // worst-per-digit can only add loss
    EXPECT_LE(avg, worst);
}

TEST(LinkBudgetTest, AllThroughLossNearPaperEstimate)
{
    // Full 0.57 mm at 1.6 dB/mm plus 12 MRR pass-bys and bends ~ 1.05 dB.
    const DeviceKit kit;
    const double loss = mmuLossDb(kit, 33, 6, LossPolicy::AllThrough);
    EXPECT_NEAR(loss, 1.05, 0.1);
}

TEST(LinkBudgetTest, PathLossScalesWithG)
{
    const DeviceKit kit;
    const double g8 = mdpuPathLossDb(kit, 33, 6, 8, LossPolicy::AllThrough);
    const double g16 = mdpuPathLossDb(kit, 33, 6, 16, LossPolicy::AllThrough);
    EXPECT_NEAR(g16 - g8, 8 * mmuLossDb(kit, 33, 6, LossPolicy::AllThrough),
                1e-9);
}

TEST(LinkBudgetTest, LaserPowerExponentialInG)
{
    // Fig. 5b's driver: laser power rises exponentially with group size.
    const DeviceKit kit;
    double prev = 0.0;
    for (int g : {4, 8, 16, 32, 64}) {
        const LinkBudget lb = computeLinkBudget(kit, 33, 6, g, 10e9, 1.0,
                                                LossPolicy::AllThrough);
        EXPECT_GT(lb.laser_wall_w, prev);
        prev = lb.laser_wall_w;
    }
    // Doubling g from 16 to 32 must cost much more than 2x in laser power.
    const double p16 = computeLinkBudget(kit, 33, 6, 16, 10e9, 1.0,
                                         LossPolicy::AllThrough).laser_wall_w;
    const double p32 = computeLinkBudget(kit, 33, 6, 32, 10e9, 1.0,
                                         LossPolicy::AllThrough).laser_wall_w;
    EXPECT_GT(p32 / p16, 10.0);
}

TEST(LinkBudgetTest, SnrTargetTracksModulus)
{
    const DeviceKit kit;
    const LinkBudget lb31 = computeLinkBudget(kit, 31, 5, 16, 10e9, 1.0,
                                              LossPolicy::AllThrough);
    const LinkBudget lb33 = computeLinkBudget(kit, 33, 6, 16, 10e9, 1.0,
                                              LossPolicy::AllThrough);
    EXPECT_NEAR(lb31.target_snr, 31.0, 1e-9);
    EXPECT_NEAR(lb33.target_snr, 33.0, 1e-9);
    EXPECT_GT(lb33.laser_wall_w, lb31.laser_wall_w);
}

TEST(LinkBudgetTest, ChannelLaserPowerPlausible)
{
    // Sanity window: per-channel wall-plug laser power for the paper
    // configuration (m = 33, g = 16, 10 GHz) should be in the mW range —
    // consistent with a ~2-5 W total across 768 channels (Fig. 9).
    const DeviceKit kit;
    const LinkBudget lb = computeLinkBudget(kit, 33, 6, 16, 10e9, 1.0,
                                            LossPolicy::AllThrough);
    EXPECT_GT(lb.laser_wall_w, 0.2e-3);
    EXPECT_LT(lb.laser_wall_w, 50e-3);
}

TEST(NoiseModel, Eq14Formula)
{
    // h = 16, 6 bits, eps_ps = 2^-8, eps_mrr = 0.003.
    const double rms = outputPhaseErrorRms(16, 6, std::exp2(-8), 0.003);
    const double expect = std::sqrt(16.0 * std::exp2(-16.0) +
                                    2.0 * 16.0 * 6.0 * 0.003 * 0.003);
    EXPECT_NEAR(rms, expect, 1e-12);
}

TEST(NoiseModel, PaperFindsBdac8Sufficient)
{
    // Sec. VI-E concludes bDAC >= 8 satisfies dPhi_out <= 2^-b_out for
    // b_out = log2(m) at h = 16. Note: at the paper's quoted eps_mrr bound
    // of 0.3 % the MRR term *alone* exceeds the 2^-5 budget, so the
    // conclusion only holds for tighter MRR errors (~0.1 %); we test the
    // self-consistent operating point and document the discrepancy in
    // EXPERIMENTS.md.
    EXPECT_EQ(minimumDacBits(16, 6, 0.001, 5), 8);
    // At the quoted 0.3 % bound no DAC precision suffices.
    EXPECT_EQ(minimumDacBits(16, 6, 0.003, 5), -1);
    // 6-bit DACs alone are insufficient for b_out = 5 at h = 16 — the
    // paper's motivation to raise DAC precision to 8 bits.
    const double rms6 = outputPhaseErrorRms(16, 6, std::exp2(-6), 0.001);
    EXPECT_GT(rms6, std::exp2(-5));
}

TEST(NoiseModel, ErrorGrowsWithH)
{
    const double h16 = outputPhaseErrorRms(16, 6, 0.004, 0.003);
    const double h64 = outputPhaseErrorRms(64, 6, 0.004, 0.003);
    EXPECT_NEAR(h64 / h16, 2.0, 1e-9); // sqrt(4)
}

} // namespace
} // namespace photonic
} // namespace mirage
