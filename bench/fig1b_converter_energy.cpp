/**
 * @file
 * Fig. 1b: energy per conversion for ADCs and DACs versus bit precision
 * (Murmann-model estimates anchored on the paper's reference designs).
 */

#include <iostream>

#include "analog/converter_energy.h"
#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace mirage;
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 1b", "ADC/DAC energy per conversion vs bit precision",
                  opts);

    TablePrinter table({"bits", "ADC pJ/conv", "DAC pJ/conv", "ADC/DAC"});
    const int max_bits = opts.full ? 20 : 16;
    for (int b = 1; b <= max_bits; ++b) {
        const double adc = analog::adcEnergyPerConversion(b) * 1e12;
        const double dac = analog::dacEnergyPerConversion(b) * 1e12;
        table.addRow({std::to_string(b), formatSig(adc, 4),
                      formatSig(dac, 4), formatFixed(adc / dac, 1)});
    }
    bench::emit(table, opts);

    std::cout << "Anchors: 6-bit ADC = "
              << formatSig(analog::mirageAdc6().energyPerConversion() * 1e12,
                           3)
              << " pJ (23 mW @ 24 GS/s); 16-bit conversion ~ "
              << formatSig(analog::adcEnergyPerConversion(16) * 1e9, 3)
              << " nJ (paper Sec. II-C: >= 1 nJ).\n"
              << "Shape check: ~2x/bit in the technology-limited regime, "
                 "~4x/bit beyond ~16 bits; DACs two orders cheaper.\n";
    return 0;
}
