/**
 * @file
 * google-benchmark micro suites for the numeric kernels: RNS conversion,
 * modular GEMM, BFP encode + GEMM, and the functional photonic pipeline.
 * These measure the *simulator's* software throughput (useful when sizing
 * experiments), not the modeled hardware.
 */

#include <benchmark/benchmark.h>

#include "bfp/bfp_gemm.h"
#include "common/rng.h"
#include "photonic/mmvmu.h"
#include "rns/modular_gemm.h"
#include "rns/special_converter.h"

namespace {

using namespace mirage;

void
BM_RnsForwardConversion(benchmark::State &state)
{
    const rns::SpecialConverter conv(5);
    Rng rng(1);
    std::vector<int64_t> values(1024);
    for (auto &v : values)
        v = rng.uniformInt(-16000, 16000);
    for (auto _ : state) {
        for (int64_t v : values)
            benchmark::DoNotOptimize(conv.forwardSigned(v));
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RnsForwardConversion);

void
BM_RnsReverseConversion(benchmark::State &state)
{
    const rns::SpecialConverter conv(5);
    Rng rng(2);
    std::vector<rns::ResidueVector> residues;
    for (int i = 0; i < 1024; ++i)
        residues.push_back(conv.forwardSigned(rng.uniformInt(-16000, 16000)));
    for (auto _ : state) {
        for (const auto &r : residues)
            benchmark::DoNotOptimize(conv.reverseSigned(r));
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RnsReverseConversion);

void
BM_ModularGemm(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Rng rng(3);
    std::vector<rns::Residue> a(static_cast<size_t>(n) * n),
        b(static_cast<size_t>(n) * n), c;
    for (auto &v : a)
        v = rng.uniformInt(0, 30);
    for (auto &v : b)
        v = rng.uniformInt(0, 30);
    for (auto _ : state) {
        rns::modularGemm(a, b, c, n, n, n, 31);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_ModularGemm)->Arg(32)->Arg(64);

void
BM_BfpEncode(benchmark::State &state)
{
    Rng rng(4);
    std::vector<float> values(4096);
    for (auto &v : values)
        v = static_cast<float>(rng.gaussian());
    const bfp::BfpConfig cfg{4, 16, bfp::Rounding::Truncate};
    for (auto _ : state) {
        for (size_t i = 0; i < values.size(); i += 16) {
            benchmark::DoNotOptimize(bfp::encodeBlock(
                std::span<const float>(&values[i], 16), cfg));
        }
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BfpEncode);

void
BM_BfpRnsGemm(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Rng rng(5);
    std::vector<float> a(static_cast<size_t>(n) * n),
        b(static_cast<size_t>(n) * n);
    for (auto &v : a)
        v = static_cast<float>(rng.gaussian());
    for (auto &v : b)
        v = static_cast<float>(rng.gaussian());
    bfp::BfpGemmOptions opts;
    opts.config = {4, 16, bfp::Rounding::Truncate};
    opts.moduli = rns::ModuliSet::special(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(bfp::bfpGemm(a, b, n, n, n, opts));
    state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_BfpRnsGemm)->Arg(32)->Arg(64);

void
BM_PhotonicMvm(benchmark::State &state)
{
    const photonic::DeviceKit kit;
    photonic::RnsMmvmu array(rns::ModuliSet::special(5), 32, 16, kit, 10e9);
    Rng rng(6);
    std::vector<int64_t> tile(32 * 16);
    for (auto &v : tile)
        v = rng.uniformInt(-15, 15);
    array.programTile(tile, 32, 16);
    std::vector<int64_t> x(16);
    for (auto &v : x)
        v = rng.uniformInt(-15, 15);
    for (auto _ : state)
        benchmark::DoNotOptimize(array.mvm(x));
    state.SetItemsProcessed(state.iterations() * 32 * 16);
}
BENCHMARK(BM_PhotonicMvm);

} // namespace

BENCHMARK_MAIN();
