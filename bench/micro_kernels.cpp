/**
 * @file
 * google-benchmark micro suites for the numeric kernels: RNS conversion,
 * modular GEMM, BFP encode + GEMM, and the functional photonic pipeline.
 * These measure the *simulator's* software throughput (useful when sizing
 * experiments), not the modeled hardware.
 */

#include <benchmark/benchmark.h>

#include "bfp/bfp_gemm.h"
#include "common/rng.h"
#include "nn/gemm_backend.h"
#include "nn/layers_conv.h"
#include "nn/tensor.h"
#include "numerics/quantized_gemm.h"
#include "photonic/mmvmu.h"
#include "rns/modular_gemm.h"
#include "rns/special_converter.h"

namespace {

using namespace mirage;

void
BM_RnsForwardConversion(benchmark::State &state)
{
    const rns::SpecialConverter conv(5);
    Rng rng(1);
    std::vector<int64_t> values(1024);
    for (auto &v : values)
        v = rng.uniformInt(-16000, 16000);
    for (auto _ : state) {
        for (int64_t v : values)
            benchmark::DoNotOptimize(conv.forwardSigned(v));
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RnsForwardConversion);

void
BM_RnsReverseConversion(benchmark::State &state)
{
    const rns::SpecialConverter conv(5);
    Rng rng(2);
    std::vector<rns::ResidueVector> residues;
    for (int i = 0; i < 1024; ++i)
        residues.push_back(conv.forwardSigned(rng.uniformInt(-16000, 16000)));
    for (auto _ : state) {
        for (const auto &r : residues)
            benchmark::DoNotOptimize(conv.reverseSigned(r));
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RnsReverseConversion);

void
BM_ModularGemm(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Rng rng(3);
    std::vector<rns::Residue> a(static_cast<size_t>(n) * n),
        b(static_cast<size_t>(n) * n), c;
    for (auto &v : a)
        v = rng.uniformInt(0, 30);
    for (auto &v : b)
        v = rng.uniformInt(0, 30);
    for (auto _ : state) {
        rns::modularGemm(a, b, c, n, n, n, 31);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_ModularGemm)->Arg(32)->Arg(64)->Arg(256);

void
BM_BfpEncode(benchmark::State &state)
{
    Rng rng(4);
    std::vector<float> values(4096);
    for (auto &v : values)
        v = static_cast<float>(rng.gaussian());
    const bfp::BfpConfig cfg{4, 16, bfp::Rounding::Truncate};
    for (auto _ : state) {
        for (size_t i = 0; i < values.size(); i += 16) {
            benchmark::DoNotOptimize(bfp::encodeBlock(
                std::span<const float>(&values[i], 16), cfg));
        }
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BfpEncode);

void
BM_BfpRnsGemm(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Rng rng(5);
    std::vector<float> a(static_cast<size_t>(n) * n),
        b(static_cast<size_t>(n) * n);
    for (auto &v : a)
        v = static_cast<float>(rng.gaussian());
    for (auto &v : b)
        v = static_cast<float>(rng.gaussian());
    bfp::BfpGemmOptions opts;
    opts.config = {4, 16, bfp::Rounding::Truncate};
    opts.moduli = rns::ModuliSet::special(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(bfp::bfpGemm(a, b, n, n, n, opts));
    state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_BfpRnsGemm)->Arg(32)->Arg(64)->Arg(128);

void
BM_Fp32Gemm(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Rng rng(8);
    std::vector<float> a(static_cast<size_t>(n) * n),
        b(static_cast<size_t>(n) * n), c(static_cast<size_t>(n) * n);
    for (auto &v : a)
        v = static_cast<float>(rng.gaussian());
    for (auto &v : b)
        v = static_cast<float>(rng.gaussian());
    numerics::GemmCall call;
    call.a = a;
    call.b = b;
    call.m = n;
    call.k = n;
    call.n = n;
    for (auto _ : state) {
        numerics::gemmFp32(call, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_Fp32Gemm)->Arg(64)->Arg(256);

/**
 * Training-representative convolution (CIFAR-class interior layer):
 * batch 8, 16 -> 32 channels, 16x16 images, 3x3 stride-1 pad-1, through
 * the FP32 reference backend (im2col + one batched GEMM).
 */
nn::Tensor
convInput(Rng &rng)
{
    nn::Tensor x({8, 16, 16, 16});
    for (int64_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.gaussian());
    return x;
}

void
BM_ConvForward(benchmark::State &state)
{
    Rng rng(9);
    nn::FormatBackend backend(numerics::DataFormat::FP32);
    nn::Conv2d conv(16, 32, 3, 1, 1, &backend, rng);
    const nn::Tensor x = convInput(rng);
    for (auto _ : state) {
        nn::Tensor y = conv.forward(x, true);
        benchmark::DoNotOptimize(y.data());
    }
    // MACs per forward: out_ch * (in_ch * k * k) * batch * out_h * out_w.
    state.SetItemsProcessed(state.iterations() * 32 * (16 * 9) *
                            (8 * 16 * 16));
}
BENCHMARK(BM_ConvForward);

void
BM_ConvBackward(benchmark::State &state)
{
    Rng rng(10);
    nn::FormatBackend backend(numerics::DataFormat::FP32);
    nn::Conv2d conv(16, 32, 3, 1, 1, &backend, rng);
    const nn::Tensor x = convInput(rng);
    nn::Tensor y = conv.forward(x, true);
    nn::Tensor dy(y.shape());
    for (int64_t i = 0; i < dy.size(); ++i)
        dy[i] = static_cast<float>(rng.gaussian(0.0, 0.01));
    for (auto _ : state) {
        nn::Tensor dx = conv.backward(dy);
        benchmark::DoNotOptimize(dx.data());
    }
    // Backward executes the dW and dX GEMMs: ~2x the forward MACs.
    state.SetItemsProcessed(state.iterations() * 2 * 32 * (16 * 9) *
                            (8 * 16 * 16));
}
BENCHMARK(BM_ConvBackward);

void
BM_PhotonicMvm(benchmark::State &state)
{
    const photonic::DeviceKit kit;
    photonic::RnsMmvmu array(rns::ModuliSet::special(5), 32, 16, kit, 10e9);
    Rng rng(6);
    std::vector<int64_t> tile(32 * 16);
    for (auto &v : tile)
        v = rng.uniformInt(-15, 15);
    array.programTile(tile, 32, 16);
    std::vector<int64_t> x(16);
    for (auto &v : x)
        v = rng.uniformInt(-15, 15);
    for (auto _ : state)
        benchmark::DoNotOptimize(array.mvm(x));
    state.SetItemsProcessed(state.iterations() * 32 * 16);
}
BENCHMARK(BM_PhotonicMvm);

} // namespace

BENCHMARK_MAIN();
