/**
 * @file
 * Fig. 5a: validation accuracy after training under BFP(bm, g) for
 * bm in {3, 4, 5} across group sizes, against the FP32 baseline.
 *
 * Substitution (see DESIGN.md): the paper trains ResNet18 on ImageNet for
 * 60 epochs; we train the SmallCNN on the synthetic pattern-image task —
 * same quantized-GEMM code path in all three training GEMMs, laptop-scale
 * runtime. The reproduction target is the *ordering*: bm=3 degrades,
 * bm=4 holds to moderate g, bm=5 holds further, both tracking FP32.
 */

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "models/trainable.h"
#include "nn/data.h"
#include "nn/model.h"
#include "rns/moduli_set.h"

namespace {

using namespace mirage;

float
trainOnce(numerics::DataFormat fmt, int bm, int g, const nn::Dataset &train,
          const nn::Dataset &test, int epochs)
{
    Rng rng(7); // identical init across configurations
    numerics::FormatGemmConfig fc;
    fc.mirage_bfp = {bm, g, bfp::Rounding::Nearest};
    // The RNS layer is numerically transparent (property-tested), so the
    // sweep runs on the plain BFP integer path for speed; Eq. (13)
    // feasibility of each (bm, g) point is still asserted.
    rns::ModuliSet::minSpecialK(bm, g);
    nn::FormatBackend backend(fmt, fc);
    auto model = models::makeSmallCnn(train.num_classes, &backend, rng);
    nn::Sgd opt(0.02f, 0.9f);
    nn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 32;
    return nn::trainClassifier(*model, opt, train, test, cfg)
        .final_test_accuracy;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 5a",
                  "accuracy vs BFP group size g for bm in {3,4,5}", opts);

    // 16 finely-spaced orientation classes: adjacent gratings differ by
    // ~11 degrees, so coarse activations/gradients (bm = 3) alias classes —
    // the miniature analogue of ImageNet's precision sensitivity.
    const int classes = 16;
    const int train_n = opts.full ? 640 : 320;
    const int test_n = opts.full ? 320 : 160;
    const int epochs = opts.full ? 10 : 6;
    const nn::Dataset train =
        nn::makePatternImages(train_n, classes, 16, 0.3f, 100);
    const nn::Dataset test =
        nn::makePatternImages(test_n, classes, 16, 0.3f, 101);
    const std::vector<int> g_values =
        opts.full ? std::vector<int>{4, 8, 16, 32, 64, 128}
                  : std::vector<int>{4, 16, 64};

    const float fp32 = trainOnce(numerics::DataFormat::FP32, 4, 16, train,
                                 test, epochs);
    std::cout << "FP32 baseline accuracy: " << formatFixed(100 * fp32, 1)
              << " %\n\n";

    TablePrinter table({"g", "bm=3 acc(%)", "bm=4 acc(%)", "bm=5 acc(%)",
                        "FP32 acc(%)"});
    for (int g : g_values) {
        std::vector<std::string> row = {std::to_string(g)};
        for (int bm : {3, 4, 5}) {
            const float acc = trainOnce(numerics::DataFormat::MirageBfpRns,
                                        bm, g, train, test, epochs);
            row.push_back(formatFixed(100 * acc, 1));
        }
        row.push_back(formatFixed(100 * fp32, 1));
        table.addRow(row);
    }
    bench::emit(table, opts);

    std::cout << "Shape check (paper Fig. 5a): bm=3 cannot reach FP32-level\n"
                 "accuracy; bm=4 tracks FP32 up to g~16; bm=5 tracks FP32 to\n"
                 "larger g. Absolute numbers differ (synthetic task), the\n"
                 "ordering is the reproduction target.\n";
    return 0;
}
