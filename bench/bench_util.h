#ifndef MIRAGE_BENCH_BENCH_UTIL_H
#define MIRAGE_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: flag parsing
 * (--full for paper-scale sweeps, --csv for machine-readable output) and a
 * banner that states which paper artifact a binary regenerates.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.h"

namespace mirage {
namespace bench {

/** Command-line options shared by every harness. */
struct BenchOptions
{
    bool full = false; ///< Paper-scale sweep instead of the quick default.
    bool csv = false;  ///< CSV instead of aligned tables.

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions opts;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--full") == 0)
                opts.full = true;
            else if (std::strcmp(argv[i], "--csv") == 0)
                opts.csv = true;
            else if (std::strcmp(argv[i], "--help") == 0) {
                std::cout << "usage: " << argv[0]
                          << " [--full] [--csv]\n"
                             "  --full  paper-scale sweep (slower)\n"
                             "  --csv   machine-readable output\n";
                std::exit(0);
            }
        }
        return opts;
    }
};

/** Prints the artifact banner. */
inline void
banner(const std::string &artifact, const std::string &description,
       const BenchOptions &opts)
{
    std::cout << "==============================================================\n"
              << "Reproducing " << artifact << ": " << description << "\n"
              << "mode: " << (opts.full ? "--full (paper-scale)" : "quick")
              << "\n"
              << "==============================================================\n";
}

/** Emits a table in the selected format. */
inline void
emit(const TablePrinter &table, const BenchOptions &opts)
{
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

} // namespace bench
} // namespace mirage

#endif // MIRAGE_BENCH_BENCH_UTIL_H
