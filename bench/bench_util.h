#ifndef MIRAGE_BENCH_BENCH_UTIL_H
#define MIRAGE_BENCH_BENCH_UTIL_H

/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses: flag parsing
 * (--full for paper-scale sweeps, --csv for machine-readable output,
 * --json <path> for perf-trajectory files, --trace/--metrics for
 * observability exports), a banner that states which paper artifact a
 * binary regenerates, and a JSON report writer so BENCH_* results can
 * accumulate across commits.
 */

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "obs/exporter.h"
#include "obs/fidelity.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mirage {
namespace bench {

/** Command-line options shared by every harness. */
struct BenchOptions
{
    bool full = false;     ///< Paper-scale sweep instead of the quick default.
    bool csv = false;      ///< CSV instead of aligned tables.
    std::string json_path; ///< --json <path>: machine-readable result file.
    /// --trace <path>: enable span recording and export a Chrome trace
    /// (Perfetto-loadable) at the end of the run (see writeObsOutputs).
    std::string trace_path;
    /// --metrics <path>: dump the MetricsRegistry as JSON at the end.
    std::string metrics_path;
    /// --fidelity-report <path>: dump the per-layer numerical-fidelity
    /// report (obs::fidelity::writeReportFile) at the end.
    std::string fidelity_report_path;

    static BenchOptions
    parse(int argc, char **argv)
    {
        BenchOptions opts;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--full") == 0)
                opts.full = true;
            else if (std::strcmp(argv[i], "--csv") == 0)
                opts.csv = true;
            else if (std::strcmp(argv[i], "--json") == 0) {
                if (i + 1 >= argc) {
                    std::cerr << "--json needs a file path\n";
                    std::exit(2);
                }
                opts.json_path = argv[++i];
            } else if (std::strcmp(argv[i], "--trace") == 0) {
                if (i + 1 >= argc) {
                    std::cerr << "--trace needs a file path\n";
                    std::exit(2);
                }
                opts.trace_path = argv[++i];
            } else if (std::strcmp(argv[i], "--metrics") == 0) {
                if (i + 1 >= argc) {
                    std::cerr << "--metrics needs a file path\n";
                    std::exit(2);
                }
                opts.metrics_path = argv[++i];
            } else if (std::strcmp(argv[i], "--fidelity-report") == 0) {
                if (i + 1 >= argc) {
                    std::cerr << "--fidelity-report needs a file path\n";
                    std::exit(2);
                }
                opts.fidelity_report_path = argv[++i];
            } else if (std::strcmp(argv[i], "--help") == 0) {
                std::cout << "usage: " << argv[0]
                          << " [--full] [--csv] [--json <path>]"
                             " [--trace <path>] [--metrics <path>]"
                             " [--fidelity-report <path>]\n"
                             "  --full           paper-scale sweep (slower)\n"
                             "  --csv            machine-readable output\n"
                             "  --json <path>    write results as JSON\n"
                             "  --trace <path>   record spans, export a "
                             "Chrome trace JSON\n"
                             "  --metrics <path> dump the metrics registry "
                             "as JSON\n"
                             "  --fidelity-report <path> dump the "
                             "numerical-fidelity report as JSON\n";
                std::exit(0);
            }
        }
        // Arm tracing up front so the whole run is captured, and bring up
        // the live scrape endpoint when MIRAGE_METRICS_PORT is set (no-op
        // otherwise).
        if (!opts.trace_path.empty())
            obs::setTraceEnabled(true);
        obs::startExporterFromEnv();
        return opts;
    }
};

/**
 * Writes the observability artifacts requested via --trace/--metrics.
 * Call once at the end of main, after the workload drained. Returns
 * false when a requested file could not be written.
 */
inline bool
writeObsOutputs(const BenchOptions &opts)
{
    bool ok = true;
    if (!opts.trace_path.empty()) {
        ok = obs::writeChromeTraceFile(opts.trace_path) && ok;
        std::cout << "Chrome trace written to " << opts.trace_path << "\n";
    }
    if (!opts.metrics_path.empty()) {
        ok = obs::MetricsRegistry::global().writeJsonFile(opts.metrics_path) &&
             ok;
        std::cout << "metrics dump written to " << opts.metrics_path << "\n";
    }
    if (!opts.fidelity_report_path.empty()) {
        ok = obs::fidelity::writeReportFile(opts.fidelity_report_path) && ok;
        std::cout << "fidelity report written to "
                  << opts.fidelity_report_path << "\n";
    }
    return ok;
}

/** Prints the artifact banner. */
inline void
banner(const std::string &artifact, const std::string &description,
       const BenchOptions &opts)
{
    std::cout << "==============================================================\n"
              << "Reproducing " << artifact << ": " << description << "\n"
              << "mode: " << (opts.full ? "--full (paper-scale)" : "quick")
              << "\n"
              << "==============================================================\n";
}

/** Emits a table in the selected format. */
inline void
emit(const TablePrinter &table, const BenchOptions &opts)
{
    if (opts.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

namespace detail {

/**
 * True when `s` matches the JSON number grammar exactly:
 * -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?. Stricter than strtod,
 * which also accepts "+5", ".5", "5.", "inf" — none of which are valid
 * JSON literals and would corrupt the --json document if left unquoted.
 */
inline bool
looksNumeric(const std::string &s)
{
    size_t i = 0;
    const size_t n = s.size();
    const auto digits = [&] {
        const size_t start = i;
        while (i < n && std::isdigit(static_cast<unsigned char>(s[i])))
            ++i;
        return i > start;
    };
    if (i < n && s[i] == '-')
        ++i;
    if (i < n && s[i] == '0')
        ++i; // a leading zero must stand alone ("0", "0.5")
    else if (!digits())
        return false;
    if (i < n && s[i] == '.') {
        ++i;
        if (!digits())
            return false;
    }
    if (i < n && (s[i] == 'e' || s[i] == 'E')) {
        ++i;
        if (i < n && (s[i] == '+' || s[i] == '-'))
            ++i;
        if (!digits())
            return false;
    }
    return i == n && n > 0;
}

inline void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c;
        }
    }
    os << '"';
}

} // namespace detail

/**
 * Accumulates named tables and writes one JSON document:
 *
 *   {"bench": "<name>", "mode": "quick"|"full",
 *    "results": {"<table name>": [{"<col>": <cell>, ...}, ...], ...}}
 *
 * Cells that parse as numbers are emitted unquoted, so downstream
 * tooling can chart perf trajectories without re-parsing strings.
 */
class JsonReport
{
  public:
    /** Registers a table under `name` (copied). */
    void
    add(std::string name, const TablePrinter &table)
    {
        sections_.emplace_back(std::move(name), table);
    }

    /** Writes the document; returns false (with a warning) on I/O error. */
    bool
    write(const std::string &path, const std::string &bench_name,
          const BenchOptions &opts) const
    {
        std::ofstream os(path);
        if (!os) {
            std::cerr << "warning: cannot write JSON report to '" << path
                      << "'\n";
            return false;
        }
        os << "{\n  \"bench\": ";
        detail::jsonEscape(os, bench_name);
        os << ",\n  \"mode\": \"" << (opts.full ? "full" : "quick")
           << "\",\n  \"results\": {";
        for (size_t s = 0; s < sections_.size(); ++s) {
            const auto &[name, table] = sections_[s];
            os << (s ? ",\n    " : "\n    ");
            detail::jsonEscape(os, name);
            os << ": [";
            const auto &headers = table.headers();
            for (size_t r = 0; r < table.rows().size(); ++r) {
                const auto &row = table.rows()[r];
                os << (r ? ",\n      {" : "\n      {");
                for (size_t c = 0; c < headers.size() && c < row.size();
                     ++c) {
                    if (c)
                        os << ", ";
                    detail::jsonEscape(os, headers[c]);
                    os << ": ";
                    if (detail::looksNumeric(row[c]))
                        os << row[c];
                    else
                        detail::jsonEscape(os, row[c]);
                }
                os << "}";
            }
            os << "\n    ]";
        }
        os << "\n  }\n}\n";
        return os.good();
    }

    /** write() to opts.json_path when --json was given; else a no-op. */
    bool
    writeIfRequested(const std::string &bench_name,
                     const BenchOptions &opts) const
    {
        if (opts.json_path.empty())
            return true;
        const bool ok = write(opts.json_path, bench_name, opts);
        if (ok)
            std::cout << "JSON results written to " << opts.json_path
                      << "\n";
        return ok;
    }

  private:
    std::vector<std::pair<std::string, TablePrinter>> sections_;
};

} // namespace bench
} // namespace mirage

#endif // MIRAGE_BENCH_BENCH_UTIL_H
