/**
 * @file
 * Training-runtime soak: sweeps the data-parallel Trainer over replica
 * count x micro-batch x model and reports measured throughput
 * (samples/s, wall ms/step) next to the modeled accelerator cost
 * (ms/step and J/sample through MiragePerfModel/MirageEnergyModel).
 *
 * The modeled columns are analytic — machine-independent — so the
 * committed baseline gates them tightly in CI (check_regression.py
 * --baseline-train): an accounting change in the perf/energy models or
 * in the trainer's step structure shows up as a J/sample shift even on a
 * noisy runner. speedup(x) is measured and reported for eyeballs only.
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "models/trainable.h"
#include "nn/data.h"
#include "serve/repository.h"
#include "train/trainer.h"

using namespace mirage;

namespace {

struct ModelSpec
{
    std::string name;
    serve::ModelFactory factory;
    models::ModelShape shape;
    nn::Dataset data;
    int micro_batch = 8;
};

constexpr int kClasses = 4;

ModelSpec
mlpSpec()
{
    constexpr int kIn = 16, kHidden = 32;
    ModelSpec spec;
    spec.name = "mlp";
    spec.factory = [](nn::GemmBackend *backend, Rng &rng) {
        return models::makeMlp(kIn, kHidden, kClasses, backend, rng);
    };
    spec.shape.name = "mlp";
    spec.shape.layers = {{"fc1", kHidden, kIn, 1, 1, true},
                         {"fc2", kHidden, kHidden, 1, 1, true},
                         {"fc3", kClasses, kHidden, 1, 1, true}};
    spec.data = nn::makeGaussianClusters(512, kClasses, kIn, 3.0f, 41);
    spec.micro_batch = 8;
    return spec;
}

ModelSpec
cnnSpec()
{
    ModelSpec spec;
    spec.name = "small_cnn";
    spec.factory = [](nn::GemmBackend *backend, Rng &rng) {
        return models::makeSmallCnn(kClasses, backend, rng);
    };
    // Im2col shapes of makeSmallCnn on [B, 1, 16, 16] inputs.
    spec.shape.name = "small_cnn";
    spec.shape.layers = {{"conv1", 8, 9, 256, 1, true},
                         {"conv2", 16, 72, 64, 1, true},
                         {"fc1", 64, 256, 1, 1, true},
                         {"fc2", kClasses, 64, 1, 1, true}};
    spec.data = nn::makePatternImages(256, kClasses, 16, 0.3f, 42);
    spec.micro_batch = 4;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("train_soak",
                  "data-parallel training throughput and modeled J/sample",
                  opts);

    std::vector<ModelSpec> specs;
    specs.push_back(mlpSpec());
    if (opts.full)
        specs.push_back(cnnSpec());

    const std::vector<int> replica_counts = {1, 2, 4};
    const int64_t steps = opts.full ? 120 : 30;

    TablePrinter table({"model", "replicas", "micro_batch", "eff_batch",
                        "steps", "wall_ms_per_step", "samples_s",
                        "speedup(x)", "modeled_ms_per_step",
                        "j_per_sample"});
    bench::JsonReport json;

    for (const ModelSpec &spec : specs) {
        double base_samples_s = 0.0;
        for (const int replicas : replica_counts) {
            train::TrainerConfig cfg;
            cfg.replicas = replicas;
            cfg.micro_batch = spec.micro_batch;
            cfg.shards_per_step = 4;
            cfg.seed = 7;
            cfg.shape = spec.shape;
            train::Trainer trainer(spec.factory,
                                   std::make_unique<nn::Sgd>(0.05f, 0.9f),
                                   cfg);
            // Enough target epochs that max_steps is the binding limit.
            const train::TrainReport report =
                trainer.run(spec.data, nullptr, /*target_epochs=*/1000,
                            steps);
            if (replicas == 1)
                base_samples_s = report.samples_per_s;
            const double speedup = base_samples_s > 0.0
                                       ? report.samples_per_s / base_samples_s
                                       : 0.0;
            table.addRow(
                {spec.name, std::to_string(replicas),
                 std::to_string(spec.micro_batch),
                 std::to_string(cfg.effectiveBatch()),
                 std::to_string(report.steps_run),
                 formatFixed(report.wall_s /
                                 static_cast<double>(report.steps_run) * 1e3,
                             3),
                 formatFixed(report.samples_per_s, 0),
                 formatFixed(speedup, 2),
                 formatSig(report.modeled_step_time_s * 1e3, 6),
                 formatSig(report.modeledJoulesPerSample(), 6)});
        }
    }

    bench::emit(table, opts);
    json.add("train_sweep", table);
    if (!json.writeIfRequested("train_soak", opts))
        return 1;
    if (!bench::writeObsOutputs(opts))
        return 1;
    return 0;
}
