/**
 * @file
 * Open-loop Poisson soak test for the serve/ subsystem.
 *
 * A seeded load generator precomputes a deterministic arrival schedule
 * (exponential inter-arrivals, Bernoulli SLO mix, round-robin model
 * choice) and replays it against an InferenceServer over a RuntimeEngine,
 * sweeping arrival rate x SLO mix x engine tiles. The report shows the
 * batching-vs-latency tradeoff (p50/p95/p99 wall latency against the
 * interactive class's max_delay flush bound) and the weight-programming
 * cache's amortization: energy per request with a resident working set
 * versus a thrashing one versus the cold-programming path.
 *
 * The schedule is deterministic for a fixed seed; wall-clock latencies
 * naturally vary with the host, but the batching structure, cache hit
 * pattern, and modeled energy are reproducible.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "models/zoo.h"
#include "obs/context.h"
#include "obs/fidelity.h"
#include "obs/flight_recorder.h"
#include "runtime/engine.h"
#include "serve/repository.h"
#include "serve/server.h"

namespace {

using namespace mirage;
using Clock = std::chrono::steady_clock;

constexpr uint64_t kScheduleSeed = 0x534f414bu; // "SOAK"

struct Arrival
{
    double time_s = 0.0;
    serve::SloClass slo = serve::SloClass::Interactive;
    int model = 0;
};

/** Deterministic open-loop schedule: Poisson arrivals, Bernoulli mix. */
std::vector<Arrival>
makeSchedule(int requests, double rate_per_s, double interactive_frac,
             int model_count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Arrival> schedule;
    schedule.reserve(static_cast<size_t>(requests));
    double t = 0.0;
    for (int i = 0; i < requests; ++i) {
        // Exponential inter-arrival via inverse CDF on a uniform draw.
        const double u = rng.uniformReal(1e-12, 1.0);
        t += -std::log(u) / rate_per_s;
        Arrival a;
        a.time_s = t;
        a.slo = rng.bernoulli(interactive_frac)
                    ? serve::SloClass::Interactive
                    : serve::SloClass::Batch;
        a.model = static_cast<int>(
            rng.uniformInt(0, static_cast<int64_t>(model_count) - 1));
        schedule.push_back(a);
    }
    return schedule;
}

struct SoakResult
{
    serve::ServerStats stats;
    double wall_s = 0.0;
};

/**
 * Replays one schedule against a fresh repository/engine/server.
 * Completed requests' structured records are appended to `request_log`
 * (submission order) when non-null; `deadline_override_s` > 0 stamps
 * every request with that deadline (miss-burst injection); `slo_cfg`
 * overrides the server's burn-monitor knobs.
 */
/** Deterministic tile failure: tile `tile` is failed via
 *  RuntimeEngine::failTile once the replay clock passes `time_s`. */
struct TileFail
{
    int tile = 0;
    double time_s = 0.0;
};

SoakResult
runSoak(const std::vector<models::ModelShape> &zoo, int tiles,
        const std::vector<Arrival> &schedule, int max_batch,
        std::vector<obs::RequestRecord> *request_log = nullptr,
        double deadline_override_s = 0.0,
        const serve::SloMonitorConfig *slo_cfg = nullptr,
        const std::vector<TileFail> *tile_fails = nullptr)
{
    serve::ModelRepository repo;
    for (const models::ModelShape &m : zoo)
        repo.publishShape(m.name, m);

    runtime::EngineConfig ecfg;
    ecfg.tiles = tiles;
    ecfg.queue_capacity = 256;
    runtime::RuntimeEngine engine(ecfg);

    serve::ServerConfig scfg;
    scfg.max_batch = max_batch;
    scfg.queue_capacity = schedule.size() + 1;
    scfg.interactive = {0.002, 0.050};
    scfg.batch = {0.020, 0.500};
    if (slo_cfg != nullptr)
        scfg.slo = *slo_cfg;
    serve::InferenceServer server(repo, engine, scfg);

    std::vector<TileFail> fails;
    if (tile_fails != nullptr)
        fails = *tile_fails;
    std::sort(fails.begin(), fails.end(),
              [](const TileFail &x, const TileFail &y) {
                  return x.time_s < y.time_s;
              });
    size_t next_fail = 0;

    std::vector<std::future<serve::InferenceReply>> futures;
    futures.reserve(schedule.size());
    const Clock::time_point t0 = Clock::now();
    for (const Arrival &a : schedule) {
        // Deterministic failover injection: tile N goes dark once the
        // schedule clock passes T (keyed to the arrival schedule, not the
        // host wall clock, so the same spec fails at the same request).
        while (next_fail < fails.size() &&
               fails[next_fail].time_s <= a.time_s) {
            engine.failTile(fails[next_fail].tile % tiles);
            ++next_fail;
        }
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(a.time_s)));
        serve::InferenceRequest req;
        req.model = zoo[static_cast<size_t>(a.model)].name;
        req.slo = a.slo;
        req.samples = 1;
        req.deadline_s = deadline_override_s;
        futures.push_back(server.submit(std::move(req)));
    }
    for (auto &f : futures) {
        try {
            serve::InferenceReply reply = f.get();
            if (request_log != nullptr)
                request_log->push_back(reply.record);
        } catch (const std::exception &) {
            if (request_log == nullptr)
                throw; // default runs treat failures as fatal
            // Logged runs tolerate rejected requests: they carry no
            // completion record.
        }
    }
    server.drain();

    SoakResult out;
    out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    out.stats = server.stats();
    return out;
}

std::string
ms(double seconds, int decimals = 2)
{
    return formatFixed(seconds * 1e3, decimals);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);

    // Soak-specific flags (BenchOptions::parse ignores unknown flags):
    //   --request-log <path>   JSONL of per-request completion records
    //   --inject-miss-burst    extra scenario with impossible deadlines
    //                          (drives the deadline-burn alert path)
    //   --hold <seconds>       keep the process alive at the end so a CI
    //                          scraper can curl the metrics endpoint
    //   --inject-tile-fail N@T (repeatable) extra failover scenario that
    //                          fails tile N once the arrival-schedule
    //                          clock passes T seconds
    //   --inject-noise-drift   extra scenario feeding a seeded degrading
    //                          SNR series into the fidelity drift detector
    //                          (drives the fidelity_drift alert path)
    std::string request_log_path;
    bool inject_miss_burst = false;
    bool inject_noise_drift = false;
    double hold_s = 0.0;
    std::vector<TileFail> tile_fails;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--request-log") == 0 && i + 1 < argc)
            request_log_path = argv[++i];
        else if (std::strcmp(argv[i], "--inject-miss-burst") == 0)
            inject_miss_burst = true;
        else if (std::strcmp(argv[i], "--inject-noise-drift") == 0)
            inject_noise_drift = true;
        else if (std::strcmp(argv[i], "--hold") == 0 && i + 1 < argc)
            hold_s = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--inject-tile-fail") == 0 &&
                 i + 1 < argc) {
            const std::string spec = argv[++i];
            const size_t at = spec.find('@');
            if (at == std::string::npos) {
                std::cerr << "--inject-tile-fail wants N@T, got '" << spec
                          << "'\n";
                return 2;
            }
            TileFail tf;
            tf.tile = std::atoi(spec.substr(0, at).c_str());
            tf.time_s = std::atof(spec.substr(at + 1).c_str());
            tile_fails.push_back(tf);
        }
    }
    std::vector<obs::RequestRecord> request_log;
    std::vector<obs::RequestRecord> *log_ptr =
        request_log_path.empty() ? nullptr : &request_log;

    bench::banner("serve soak",
                  "SLO-aware serving: Poisson load x SLO mix x tiles", opts);

    // Zoo working set: three mid-size models (distinct weight footprints).
    const std::vector<models::ModelShape> zoo = {
        models::resNet18(), models::alexNet(), models::mobileNetV2()};

    const int requests = opts.full ? 2000 : 400;
    const std::vector<double> rates =
        opts.full ? std::vector<double>{500, 2000, 8000}
                  : std::vector<double>{1000, 4000};
    const std::vector<double> mixes =
        opts.full ? std::vector<double>{0.5, 0.9} : std::vector<double>{0.9};
    const std::vector<int> tile_counts =
        opts.full ? std::vector<int>{2, 4, 8} : std::vector<int>{2, 4};
    const int max_batch = 8;

    // --- sweep: arrival rate x mix x tiles ------------------------------
    TablePrinter sweep({"rate(req/s)", "inter%", "tiles", "reqs", "thpt(req/s)",
                        "p50 int(ms)", "p95 int(ms)", "p99 int(ms)",
                        "p99 batch(ms)", "miss%", "cache hit%",
                        "energy/req(mJ)", "prog share%", "avg batch"});
    for (double rate : rates) {
        for (double mix : mixes) {
            const std::vector<Arrival> schedule = makeSchedule(
                requests, rate, mix, static_cast<int>(zoo.size()),
                kScheduleSeed);
            for (int tiles : tile_counts) {
                const SoakResult res =
                    runSoak(zoo, tiles, schedule, max_batch, log_ptr);
                const serve::ServerStats &s = res.stats;
                const double thpt =
                    res.wall_s > 0 ? static_cast<double>(s.completed) /
                                         res.wall_s
                                   : 0.0;
                const double avg_batch =
                    s.batches > 0 ? static_cast<double>(s.completed) /
                                        static_cast<double>(s.batches)
                                  : 0.0;
                sweep.addRow(
                    {formatFixed(rate, 0), formatFixed(mix * 100, 0),
                     std::to_string(tiles), std::to_string(s.completed),
                     formatFixed(thpt, 0),
                     ms(s.interactive_latency.p50_s),
                     ms(s.interactive_latency.p95_s),
                     ms(s.interactive_latency.p99_s),
                     ms(s.batch_latency.p99_s),
                     formatFixed(s.completed > 0
                                     ? 100.0 * static_cast<double>(
                                                   s.deadline_misses) /
                                           static_cast<double>(s.completed)
                                     : 0.0,
                                 2),
                     formatFixed(100.0 * s.cacheHitRate(), 1),
                     formatSig(s.energyPerRequestJ() * 1e3, 4),
                     formatFixed(s.energy_j > 0
                                     ? 100.0 * s.programming_energy_j /
                                           s.energy_j
                                     : 0.0,
                                 1),
                     formatFixed(avg_batch, 2)});
            }
        }
    }
    bench::emit(sweep, opts);

    // --- cache amortization: resident vs thrashing vs cold --------------
    // The SAME 3-model Poisson workload served with a tile count that
    // holds the working set (every request after warm-up hits) versus one
    // that does not (LRU thrash), against the analytic cold path that
    // reprograms the model's weights for every micro-batch.
    TablePrinter cache({"scenario", "models", "tiles", "cache hit%",
                        "energy/req(mJ)", "prog share%", "vs cold"});
    {
        const double rate = 4000;
        const std::vector<Arrival> schedule = makeSchedule(
            requests, rate, 1.0, static_cast<int>(zoo.size()),
            kScheduleSeed);

        // Mean programming energy across the working set, from the same
        // arch model the WeightCache charges on a miss.
        const arch::MirageEnergyModel energy_model{arch::MirageConfig{}};
        double mean_prog_j = 0.0;
        for (const models::ModelShape &m : zoo)
            mean_prog_j += energy_model.programmingEnergyJ(m.weightElements());
        mean_prog_j /= static_cast<double>(zoo.size());

        struct Scenario
        {
            const char *name;
            int tiles;
        };
        double cold_energy_per_req = 0.0;
        std::vector<std::vector<std::string>> rows;
        for (const Scenario &sc :
             {Scenario{"resident", 4}, Scenario{"thrashing", 2}}) {
            const SoakResult res =
                runSoak(zoo, sc.tiles, schedule, max_batch, log_ptr);
            const serve::ServerStats &s = res.stats;
            const double compute_per_req =
                (s.energy_j - s.programming_energy_j) /
                static_cast<double>(s.completed);
            const double avg_batch =
                s.batches > 0 ? static_cast<double>(s.completed) /
                                    static_cast<double>(s.batches)
                              : 1.0;
            // Cold path on this same workload: one reprogram per batch.
            if (cold_energy_per_req == 0.0)
                cold_energy_per_req =
                    compute_per_req + mean_prog_j / avg_batch;
            rows.push_back(
                {sc.name, std::to_string(zoo.size()),
                 std::to_string(sc.tiles),
                 formatFixed(100.0 * s.cacheHitRate(), 1),
                 formatSig(s.energyPerRequestJ() * 1e3, 4),
                 formatFixed(s.energy_j > 0
                                 ? 100.0 * s.programming_energy_j /
                                       s.energy_j
                                 : 0.0,
                             1),
                 formatFixed(s.energyPerRequestJ() / cold_energy_per_req,
                             3)});
        }
        cache.addRow({"cold (reprogram each batch)",
                      std::to_string(zoo.size()), "-", "0.0",
                      formatSig(cold_energy_per_req * 1e3, 4), "-",
                      "1.000"});
        for (auto &row : rows)
            cache.addRow(std::move(row));
    }
    bench::emit(cache, opts);

    // --- injected deadline-miss burst (SLO alert + flight-dump path) ----
    if (inject_miss_burst) {
        // Every request carries an impossible 1 µs deadline, so every
        // completion is a miss: fast/slow-window burn saturates at
        // 1/miss_budget = 100x, far past the 10x alert threshold. Short
        // windows keep the whole excursion inside the quick run.
        serve::SloMonitorConfig slo;
        slo.fast_window_s = 1.0;
        slo.slow_window_s = 12.0;
        slo.min_events = 10;
        const std::vector<Arrival> burst =
            makeSchedule(200, 4000, 1.0, static_cast<int>(zoo.size()),
                         kScheduleSeed ^ 0xb525u);
        const SoakResult res = runSoak(zoo, 2, burst, max_batch, log_ptr,
                                       /*deadline_override_s=*/1e-6, &slo);
        std::cout << "miss-burst: completed=" << res.stats.completed
                  << " misses=" << res.stats.deadline_misses
                  << " slo_alerts=" << res.stats.slo_alerts << "\n";
        if (res.stats.slo_alerts == 0) {
            std::cerr << "miss-burst scenario raised no SLO alert\n";
            return 1;
        }
    }

    // --- injected analog noise drift (fidelity alert + flight dump) -----
    if (inject_noise_drift) {
        // A seeded synthetic per-tile SNR series holds a ~30 dB baseline,
        // then degrades by 1.5 dB — the EWMA+CUSUM detector must raise
        // exactly one rising-edge fidelity_drift alert. A live server
        // subscribes to the fidelity alert bus, so the same excursion also
        // proves the server-side forwarding (SloAlertKind::FidelityDrift
        // through ServerConfig::on_alert) and the flight dump. Runs after
        // the sweeps so the flight ring holds real request records.
        serve::ModelRepository repo;
        repo.publishShape(zoo[0].name, zoo[0]);
        runtime::EngineConfig ecfg;
        ecfg.tiles = 2;
        runtime::RuntimeEngine engine(ecfg);
        serve::ServerConfig scfg;
        std::atomic<uint64_t> forwarded{0};
        scfg.on_alert = [&forwarded](serve::SloClass,
                                     const serve::SloAlert &a) {
            if (a.kind == serve::SloAlertKind::FidelityDrift)
                forwarded.fetch_add(1, std::memory_order_relaxed);
        };
        serve::InferenceServer server(repo, engine, scfg);

        obs::FlightRecorder &flight = obs::FlightRecorder::global();
        flight.setMinTriggerInterval(0.0); // earlier scenarios just dumped
        const uint64_t dumps_before = flight.triggerCount();

        obs::fidelity::SeriesConfig snr_cfg;
        snr_cfg.drift.alpha = 0.5;
        snr_cfg.drift.slack = 0.25;
        snr_cfg.drift.threshold = 2.0;
        snr_cfg.drift.min_samples = 8;
        snr_cfg.alert_up = false; // SNR: only degradation pages
        obs::fidelity::Series &snr =
            obs::fidelity::series("fidelity.snr.soak0", snr_cfg);
        const uint64_t alerts_before = snr.alerts();

        Rng rng(kScheduleSeed ^ 0xd21f7u);
        for (int i = 0; i < 40; ++i)
            snr.observe(rng.gaussian(30.0, 0.05));
        for (int i = 0; i < 40; ++i)
            snr.observe(rng.gaussian(28.5, 0.05));

        const uint64_t alerts = snr.alerts() - alerts_before;
        const serve::ServerStats s = server.stats();
        const uint64_t dumps = flight.triggerCount() - dumps_before;
        std::cout << "noise-drift: alerts=" << alerts
                  << " forwarded=" << forwarded.load()
                  << " server_fidelity_alerts=" << s.fidelity_alerts
                  << " flight_dumps=" << dumps << "\n";
        if (alerts == 0) {
            std::cerr << "noise-drift scenario raised no fidelity alert\n";
            return 1;
        }
        if (forwarded.load() == 0 || s.fidelity_alerts == 0) {
            std::cerr << "noise-drift alert did not reach the server "
                         "alert path\n";
            return 1;
        }
        if (flight.armed() && dumps == 0) {
            std::cerr << "noise-drift alert produced no flight dump\n";
            return 1;
        }
    }

    // --- injected tile failures (failover + graceful degradation) -------
    if (!tile_fails.empty()) {
        const int tiles = 4;
        const std::vector<Arrival> schedule = makeSchedule(
            requests, 2000, 0.9, static_cast<int>(zoo.size()),
            kScheduleSeed ^ 0xfa11u);
        const SoakResult res =
            runSoak(zoo, tiles, schedule, max_batch, log_ptr,
                    /*deadline_override_s=*/0.0, /*slo_cfg=*/nullptr,
                    &tile_fails);
        const serve::ServerStats &s = res.stats;
        std::cout << "tile-fail: submitted=" << s.submitted
                  << " completed=" << s.completed
                  << " rejected=" << s.rejected << " errors="
                  << s.request_errors << " tile_failures="
                  << s.tile_failures << "\n";
        // No lost replies: every admitted request completed (possibly
        // with the error field) or was rejected at admission.
        if (s.completed + s.failed + s.rejected != s.submitted) {
            std::cerr << "tile-fail scenario lost replies\n";
            return 1;
        }
        if (s.tile_failures < tile_fails.size()) {
            std::cerr << "tile-fail scenario observed "
                      << s.tile_failures << " tile failures, expected >= "
                      << tile_fails.size() << "\n";
            return 1;
        }
    }

    if (!request_log_path.empty()) {
        std::ofstream os(request_log_path);
        if (!os) {
            std::cerr << "cannot write request log to '" << request_log_path
                      << "'\n";
            return 1;
        }
        for (const obs::RequestRecord &rec : request_log)
            obs::writeRequestJsonl(os, rec);
        std::cout << "request log (" << request_log.size()
                  << " records) written to " << request_log_path << "\n";
    }

    bench::JsonReport json;
    json.add("soak_sweep", sweep);
    json.add("cache_amortization", cache);
    json.writeIfRequested("serve_soak", opts);
    if (!bench::writeObsOutputs(opts))
        return 1;

    std::cout
        << "Interactive p50/p95/p99 are wall-clock latencies; the batcher\n"
           "flushes an interactive group after max_delay = 2 ms, so tail\n"
           "latency ~ max_delay + execution. 'vs cold' compares energy per\n"
           "request against reprogramming the MMVMU weights for every\n"
           "micro-batch: a resident working set amortizes programming to\n"
           "near zero, a thrashing one pays most of the cold cost.\n";

    if (hold_s > 0.0) {
        std::cout << "holding for " << hold_s
                  << " s (metrics scrape window)" << std::endl;
        std::this_thread::sleep_for(std::chrono::duration<double>(hold_s));
    }
    return 0;
}
