#!/usr/bin/env python3
"""Validator for the numerical-fidelity report JSON (--fidelity-report).

Structural checks always run: the document must carry the probe_interval /
probes / layers / rns / bfp / photonic / drift sections written by
obs::fidelity::writeReportFile, the RNS overflow margin must be a sane bit
count (0..64), and every per-layer entry must be internally consistent
(probe count matches its error histograms, matching-bits statistics inside
the encodable 0..64 range).

Floors are opt-in, mirroring check_regression.py's --counter-min style:

  check_fidelity.py report.json \
      [--min-probes N]        total shadow probes recorded
  [--min-layers N]            distinct instrumented layer labels
      [--min-rns-checks N]    modularDot/bfpGemm margin observations
      [--min-margin BITS]     worst-case RNS overflow margin floor
      [--min-bfp-groups N]    BFP groups encoded
      [--min-drift-alerts N]  fidelity drift alerts raised
      [--max-residue-errors N] photonic shadow-probe mismatch ceiling
                               (mismatches are expected under injected
                               noise, so this is opt-in, not default)

Exits non-zero when any check fails.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"FAIL  fidelity: {msg}")
    return False


def check_structure(doc):
    ok = True
    for key in ("probe_interval", "probes", "layers", "rns", "bfp",
                "photonic", "drift"):
        if key not in doc:
            ok = fail(f"missing top-level section {key!r}")
    if not ok:
        return False

    rns = doc["rns"]
    for key in ("dot_checks", "overflow_margin_min", "overflow_risk",
                "reduced_fallbacks"):
        if key not in rns:
            ok = fail(f"missing rns.{key}")
    margin = rns.get("overflow_margin_min")
    if isinstance(margin, (int, float)) and not 0 <= margin <= 64:
        ok = fail(f"rns.overflow_margin_min = {margin} outside 0..64")

    for key in ("groups", "clipped_mantissas"):
        if key not in doc["bfp"]:
            ok = fail(f"missing bfp.{key}")
    for key in ("snr_db_min", "mvm_probes", "residue_checks",
                "residue_errors"):
        if key not in doc["photonic"]:
            ok = fail(f"missing photonic.{key}")
    for key in ("alerts", "series"):
        if key not in doc["drift"]:
            ok = fail(f"missing drift.{key}")

    for name, layer in doc["layers"].items():
        for key in ("probes", "rmse_bits", "maxrel_bits"):
            if key not in layer:
                ok = fail(f"layer {name!r} missing {key}")
                break
        else:
            probes = layer["probes"]
            for hist_key in ("rmse_bits", "maxrel_bits"):
                hist = layer[hist_key]
                if hist.get("count") != probes:
                    ok = fail(f"layer {name!r}: {hist_key}.count"
                              f" {hist.get('count')} != probes {probes}")
                for stat in ("mean", "min", "max"):
                    v = hist.get(stat)
                    if isinstance(v, (int, float)) and not 0 <= v <= 64:
                        ok = fail(f"layer {name!r}: {hist_key}.{stat}"
                                  f" = {v} outside 0..64")
    if ok:
        print(f"ok    fidelity: structure valid"
              f" ({len(doc['layers'])} layers,"
              f" {len(doc['drift']['series'])} drift series)")
    return ok


def check_floor(label, value, floor):
    if floor is None:
        return True
    if value < floor:
        return fail(f"{label} = {value:g} below floor {floor:g}")
    print(f"ok    fidelity: {label} = {value:g} (floor {floor:g})")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--min-probes", type=float)
    parser.add_argument("--min-layers", type=float)
    parser.add_argument("--min-rns-checks", type=float)
    parser.add_argument("--min-margin", type=float)
    parser.add_argument("--min-bfp-groups", type=float)
    parser.add_argument("--min-drift-alerts", type=float)
    parser.add_argument("--max-residue-errors", type=float)
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot load {args.report}: {exc}")
        return 1

    ok = check_structure(doc)
    if ok:
        ok &= check_floor("probes", float(doc["probes"]), args.min_probes)
        ok &= check_floor("layers", float(len(doc["layers"])),
                          args.min_layers)
        ok &= check_floor("rns.dot_checks",
                          float(doc["rns"]["dot_checks"]),
                          args.min_rns_checks)
        ok &= check_floor("rns.overflow_margin_min",
                          float(doc["rns"]["overflow_margin_min"]),
                          args.min_margin)
        ok &= check_floor("bfp.groups", float(doc["bfp"]["groups"]),
                          args.min_bfp_groups)
        ok &= check_floor("drift.alerts", float(doc["drift"]["alerts"]),
                          args.min_drift_alerts)
        if args.max_residue_errors is not None:
            errors = float(doc["photonic"]["residue_errors"])
            if errors > args.max_residue_errors:
                ok = fail(f"photonic.residue_errors = {errors:g} above"
                          f" ceiling {args.max_residue_errors:g}")
            else:
                print(f"ok    fidelity: photonic.residue_errors ="
                      f" {errors:g} (ceiling {args.max_residue_errors:g})")
    print("fidelity report:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
