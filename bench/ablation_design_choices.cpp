/**
 * @file
 * Ablations of Mirage's design choices (DESIGN.md inventory; paper
 * Sec. IV):
 *   A. MRR-switched weight stationarity vs. reprogramming the phase
 *      shifters every cycle (the Fig. 3b -> 3c redesign).
 *   B. Special moduli set {2^k-1, 2^k, 2^k+1} vs. generic CRT conversion
 *      (software-throughput proxy for the conversion-circuit cost).
 *   C. Optical loss policy used for laser sizing.
 *   D. Dual (I/Q) phase detection vs. a single-quadrature detector.
 *   E. 10-way digital interleaving vs. a single 1 GHz digital pipeline.
 */

#include <chrono>
#include <iostream>

#include "arch/energy_model.h"
#include "arch/perf_model.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/schedule.h"
#include "models/zoo.h"
#include "photonic/link_budget.h"
#include "rns/conversion.h"
#include "rns/special_converter.h"

namespace {

using namespace mirage;

double
stepTime(const arch::MirageConfig &cfg, int64_t batch)
{
    const arch::MiragePerfModel model(cfg);
    return core::scheduleMirage(model,
                                models::trainingTasks(models::alexNet(),
                                                      batch),
                                arch::DataflowPolicy::OPT2)
        .total_time_s;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Ablations", "Mirage design choices (Sec. IV)", opts);
    const int64_t batch = opts.full ? 256 : 64;

    // ---- A: weight stationarity via MRR switches ----------------------
    {
        arch::MirageConfig baseline;
        // Without MRR switches every MVM reprograms the shifters: the
        // effective cycle time becomes the 5 ns settling time instead of
        // 0.1 ns (Sec. IV-A1 discussion).
        arch::MirageConfig no_mrr = baseline;
        no_mrr.photonic_clock_hz =
            1.0 / no_mrr.devices.phase_shifter.reprogram_time_s; // 200 MHz
        no_mrr.sram.interleave_factor = 1; // digital easily keeps up now
        const double t0 = stepTime(baseline, batch);
        const double t1 = stepTime(no_mrr, batch);
        TablePrinter t({"design", "AlexNet step (ms)", "slowdown"});
        t.addRow({"MRR-switched (paper)", formatFixed(t0 * 1e3, 3), "1.0"});
        t.addRow({"reprogram shifters each cycle", formatFixed(t1 * 1e3, 3),
                  formatFixed(t1 / t0, 1) + "x"});
        std::cout << "A. data stationarity (Fig. 3b vs 3c)\n";
        bench::emit(t, opts);
    }

    // ---- B: special vs generic reverse conversion ----------------------
    {
        const rns::SpecialConverter special(5);
        const rns::RnsCodec generic{rns::ModuliSet::special(5)};
        Rng rng(1);
        std::vector<rns::ResidueVector> inputs;
        for (int i = 0; i < 4096; ++i)
            inputs.push_back(
                special.forwardSigned(rng.uniformInt(-16000, 16000)));
        const int reps = opts.full ? 200 : 50;

        auto time_of = [&](auto &&fn) {
            const auto start = std::chrono::steady_clock::now();
            int64_t sink = 0;
            for (int r = 0; r < reps; ++r)
                for (const auto &in : inputs)
                    sink += fn(in);
            const auto stop = std::chrono::steady_clock::now();
            volatile int64_t keep = sink;
            (void)keep;
            return std::chrono::duration<double>(stop - start).count();
        };
        const double t_special = time_of(
            [&](const rns::ResidueVector &r) { return special.reverseSigned(r); });
        const double t_generic = time_of(
            [&](const rns::ResidueVector &r) { return generic.decode(r); });
        TablePrinter t({"converter", "ns/conversion", "speedup"});
        t.addRow({"special set (shift/add, Hiasat-style)",
                  formatFixed(t_special / reps / 4096 * 1e9, 2),
                  formatFixed(t_generic / t_special, 1) + "x"});
        t.addRow({"generic CRT (128-bit mulmod)",
                  formatFixed(t_generic / reps / 4096 * 1e9, 2), "1.0"});
        std::cout << "B. reverse conversion cost (software proxy for the\n"
                     "   circuit complexity argument of Sec. IV-B)\n";
        bench::emit(t, opts);
    }

    // ---- C: loss policy for laser sizing -------------------------------
    {
        const photonic::DeviceKit kit;
        TablePrinter t({"loss policy", "path loss (dB)",
                        "laser/channel (mW)"});
        struct P { const char *name; photonic::LossPolicy p; };
        for (const P &p : {P{"AllThrough (paper worst case)",
                             photonic::LossPolicy::AllThrough},
                           P{"WorstCasePerDigit",
                             photonic::LossPolicy::WorstCasePerDigit},
                           P{"Average", photonic::LossPolicy::Average}}) {
            const photonic::LinkBudget lb = photonic::computeLinkBudget(
                kit, 33, 6, 16, 10e9, 1.0, p.p);
            t.addRow({p.name, formatFixed(lb.path_loss_db, 1),
                      formatFixed(lb.laser_wall_w * 1e3, 2)});
        }
        std::cout << "C. optical loss policy (laser sizing, m = 33, g = 16)\n";
        bench::emit(t, opts);
    }

    // ---- D: I/Q detection laser overhead --------------------------------
    {
        const photonic::DeviceKit kit;
        const photonic::LinkBudget lb = photonic::computeLinkBudget(
            kit, 33, 6, 16, 10e9, 1.0, photonic::LossPolicy::AllThrough);
        TablePrinter t({"detection", "laser/channel (mW)", "ADCs/MDPU"});
        t.addRow({"dual-quadrature I/Q (paper)",
                  formatFixed(lb.laser_wall_w * 1e3, 2), "2"});
        t.addRow({"single-quadrature (phase ambiguity!)",
                  formatFixed(lb.laser_wall_w / 2 * 1e3, 2), "1"});
        std::cout << "D. phase detection (Sec. IV-A3): halving detection\n"
                     "   halves laser power but cannot resolve phase sign\n";
        bench::emit(t, opts);
    }

    // ---- E: digital interleaving ---------------------------------------
    {
        arch::MirageConfig baseline;
        arch::MirageConfig no_interleave = baseline;
        // One digital copy at 1 GHz throttles the photonic core 10x.
        no_interleave.photonic_clock_hz = baseline.digital_clock_hz;
        no_interleave.sram.interleave_factor = 1;
        const double t0 = stepTime(baseline, batch);
        const double t1 = stepTime(no_interleave, batch);
        TablePrinter t({"digital pipeline", "AlexNet step (ms)", "slowdown"});
        t.addRow({"10x interleaved @ 1 GHz (paper)",
                  formatFixed(t0 * 1e3, 3), "1.0"});
        t.addRow({"single pipeline @ 1 GHz", formatFixed(t1 * 1e3, 3),
                  formatFixed(t1 / t0, 1) + "x"});
        std::cout << "E. SRAM/digital interleaving (Sec. IV-C)\n";
        bench::emit(t, opts);
    }
    return 0;
}
