/**
 * @file
 * Sec. VI-E: noise and process-variation study. (1) Eq. (14) output phase
 * error versus DAC precision and the minimum bDAC meeting the 2^-b_out
 * budget; (2) Monte-Carlo residue error rates on the functional photonic
 * array under device-error injection; (3) RRNS single-error correction
 * coverage with redundant moduli.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "photonic/mmvmu.h"
#include "rns/rrns.h"

namespace {

using namespace mirage;

double
residueErrorRate(const photonic::PhotonicNoiseConfig &noise, int trials,
                 Rng &rng)
{
    const photonic::DeviceKit kit;
    photonic::Mmvmu unit(33, 8, 16, kit, 10e9, noise);
    std::vector<rns::Residue> tile(8 * 16);
    for (auto &v : tile)
        v = static_cast<rns::Residue>(rng.uniformInt(0, 32));
    unit.programTile(tile, 8, 16);
    int64_t mism = 0, total = 0;
    std::vector<rns::Residue> x(16);
    for (int t = 0; t < trials; ++t) {
        for (auto &v : x)
            v = static_cast<rns::Residue>(rng.uniformInt(0, 32));
        const auto noisy = unit.mvm(x, &rng);
        const auto ideal = unit.mvmIdeal(x);
        for (size_t r = 0; r < noisy.size(); ++r) {
            ++total;
            mism += (noisy[r] != ideal[r]);
        }
    }
    return static_cast<double>(mism) / static_cast<double>(total);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Sec. VI-E", "device noise, Eq. (14), and RRNS recovery",
                  opts);
    Rng rng(2026);
    const int trials = opts.full ? 2000 : 300;

    // ---- (1) Eq. (14) analytic budget ---------------------------------
    {
        std::cout << "(1) Eq. (14) RMS output phase error (fraction of 2pi), "
                     "h = 16, 6-bit moduli\n";
        TablePrinter table({"bDAC", "eps_mrr=0.03%", "eps_mrr=0.1%",
                            "eps_mrr=0.3%", "budget 2^-6"});
        for (int bdac = 4; bdac <= 12; bdac += 2) {
            const double eps_ps = std::exp2(-bdac);
            table.addRow(
                {std::to_string(bdac),
                 formatSig(photonic::outputPhaseErrorRms(16, 6, eps_ps, 0.0003), 3),
                 formatSig(photonic::outputPhaseErrorRms(16, 6, eps_ps, 0.001), 3),
                 formatSig(photonic::outputPhaseErrorRms(16, 6, eps_ps, 0.003), 3),
                 formatSig(std::exp2(-6), 3)});
        }
        bench::emit(table, opts);
        std::cout << "minimum bDAC meeting 2^-b_out at b_out=5: "
                  << photonic::minimumDacBits(16, 6, 0.001, 5)
                  << " (paper: bDAC >= 8; requires eps_mrr ~0.1%, the "
                     "quoted 0.3% bound overshoots its own budget)\n\n";
    }

    // ---- (2) Monte-Carlo functional error rates ----------------------
    {
        std::cout << "(2) Monte-Carlo residue error rate on a 16x8 MMVMU "
                     "(m = 33)\n";
        TablePrinter table({"injection", "error rate (%)"});
        struct Case { const char *name; photonic::PhotonicNoiseConfig cfg; };
        photonic::PhotonicNoiseConfig shot;
        shot.shot_thermal_enabled = true;
        shot.snr_safety = 1.0;
        photonic::PhotonicNoiseConfig shot2 = shot;
        shot2.snr_safety = 2.0;
        photonic::PhotonicNoiseConfig dev8;
        dev8.eps_ps = std::exp2(-8);
        dev8.eps_mrr = 0.0003;
        photonic::PhotonicNoiseConfig dev6;
        dev6.eps_ps = std::exp2(-6);
        dev6.eps_mrr = 0.001;
        for (const Case &c :
             {Case{"shot+thermal @ SNR=m", shot},
              Case{"shot+thermal @ SNR=2m", shot2},
              Case{"device errors, bDAC=8, eps_mrr=0.03%", dev8},
              Case{"device errors, bDAC=6, eps_mrr=0.1%", dev6}}) {
            table.addRow({c.name,
                          formatFixed(100.0 * residueErrorRate(c.cfg, trials,
                                                               rng), 2)});
        }
        bench::emit(table, opts);
    }

    // ---- (3) RRNS correction coverage ---------------------------------
    {
        std::cout << "(3) RRNS single-residue-error correction, base {31, "
                     "32, 33} + redundant {35, 37}\n";
        const rns::RedundantRns rrns(rns::ModuliSet::special(5), {35, 37});
        int detected = 0, corrected = 0;
        const int n = opts.full ? 5000 : 1000;
        for (int t = 0; t < n; ++t) {
            const int64_t x = rng.uniformInt(-16000, 16000);
            rns::ResidueVector r = rrns.encode(x);
            const size_t idx = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(r.size()) - 1));
            const uint64_t m = rrns.extendedSet().modulus(idx);
            r[idx] = (r[idx] +
                      static_cast<uint64_t>(rng.uniformInt(
                          1, static_cast<int64_t>(m) - 1))) %
                     m;
            const auto res = rrns.decode(r);
            detected += res.error_detected;
            corrected += (res.corrected && res.value == x);
        }
        TablePrinter table({"metric", "count", "rate (%)"});
        table.addRow({"injected single-residue errors", std::to_string(n),
                      "100.0"});
        table.addRow({"detected", std::to_string(detected),
                      formatFixed(100.0 * detected / n, 2)});
        table.addRow({"corrected to exact value", std::to_string(corrected),
                      formatFixed(100.0 * corrected / n, 2)});
        bench::emit(table, opts);
        std::cout << "Shape check: with two redundant moduli, essentially\n"
                     "every injected single-residue error is detected and\n"
                     "corrected (Sec. VI-E / Demirkiran et al. [17]).\n";
    }
    return 0;
}
