/**
 * @file
 * Fig. 9: peak power and area breakdown of the full Mirage accelerator,
 * with the paper's reported shares alongside for comparison.
 */

#include <iostream>

#include "arch/energy_model.h"
#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace mirage;
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 9", "peak power and area breakdown", opts);

    const arch::MirageEnergyModel model{arch::MirageConfig{}};
    const arch::PowerBreakdown p = model.peakPower();
    const arch::AreaBreakdown a = model.area();

    {
        TablePrinter table({"component", "power (W)", "share (%)",
                            "paper share (%)"});
        const double total = p.total();
        auto row = [&](const char *name, double w, const char *paper) {
            table.addRow({name, formatFixed(w, 3),
                          formatFixed(100.0 * w / total, 1), paper});
        };
        row("SRAM", p.sram_w, "61.9");
        row("Laser", p.laser_w, "14.4");
        row("TIA", p.tia_w, "14.4");
        row("RNS conversion", p.rns_conv_w, "6.2");
        row("Accumulation", p.accum_w, "1.4");
        row("DAC + ADC", p.dac_w + p.adc_w, "1.1");
        row("BFP conversion", p.bfp_conv_w, "0.5");
        row("MRR tuning", p.mrr_tuning_w, "~0");
        row("Phase-shifter tuning", p.phase_shifter_w, "~0");
        table.addRow({"TOTAL", formatFixed(total, 2), "100.0",
                      "100.0 (19.95 W)"});
        bench::emit(table, opts);
        std::cout
            << "Note: the ADC share cannot be reproduced from the paper's\n"
               "own cited converter (23 mW @ 24 GS/s => ~0.96 pJ/conv, two\n"
               "per MDPU at 10 GS/s); our honest accounting makes ADCs a\n"
               "first-order consumer. See EXPERIMENTS.md.\n\n";

        // Alternative accounting: the ~30 fJ/conversion a modern 6-bit SAR
        // FOM would give, which reproduces the paper's converter share.
        arch::MirageConfig alt;
        alt.adc_energy_override_j = 30e-15;
        const arch::PowerBreakdown pa =
            arch::MirageEnergyModel(alt).peakPower();
        std::cout << "With adc_energy_override = 30 fJ/conv (modern SAR "
                     "FOM):\n  total "
                  << formatFixed(pa.total(), 2) << " W (paper: 19.95 W), "
                  << "DAC+ADC share "
                  << formatFixed(100.0 * (pa.dac_w + pa.adc_w) / pa.total(),
                                 1)
                  << " % (paper: 1.1 %), SRAM share "
                  << formatFixed(100.0 * pa.sram_w / pa.total(), 1)
                  << " % (paper: 61.9 %).\n\n";
    }

    {
        TablePrinter table({"component", "area (mm^2)", "share (%)",
                            "paper share (%)"});
        const double total = a.total();
        auto row = [&](const char *name, double mm2, const char *paper) {
            table.addRow({name, formatFixed(mm2, 1),
                          formatFixed(100.0 * mm2 / total, 1), paper});
        };
        row("Photonic devices", a.photonic_mm2, "49.1");
        row("SRAM", a.sram_mm2, "36.0");
        row("ADC", a.adc_mm2, "9.7");
        row("DAC", a.dac_mm2, "4.0");
        row("Digital circuits", a.digital_mm2, "1.2 (others)");
        table.addRow({"TOTAL", formatFixed(total, 1), "100.0",
                      "100.0 (476.6 mm^2)"});
        bench::emit(table, opts);
        std::cout << "3D-stacked footprint (max of chiplets): "
                  << formatFixed(a.stackedMm2(), 1)
                  << " mm^2 (paper: 242.7 mm^2; photonic chiplet 234 mm^2).\n";
    }
    return 0;
}
