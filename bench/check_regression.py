#!/usr/bin/env python3
"""Perf-smoke regression gate for the committed benchmark baselines.

Raw benchmark times are machine-dependent, so this tool only compares
*relative* shapes that survive a hardware change:

* micro_kernels (google-benchmark JSON): each kernel's cpu_time is
  normalized by the geometric mean of all kernels shared with the
  baseline.  A kernel whose normalized time grew by more than
  --max-slowdown vs. the baseline's normalized time has regressed
  relative to its peers — the classic "one kernel fell off a cliff"
  signature — regardless of how fast the machine is overall.

* runtime_throughput (bench_util JsonReport): the speedup(x) column is
  already self-normalized (vs. the 1-thread/1-tile row of the same burst
  size).  A row's speedup may exceed the baseline freely (more cores),
  but falling below baseline_speedup / --max-slowdown fails: engine
  scaling broke.

* train_soak (bench_util JsonReport): the j_per_sample column is
  analytic (MiragePerfModel/MirageEnergyModel), hence machine-
  independent.  Each (model, replicas, eff_batch) row must match the
  baseline within --train-tolerance relative error in either direction;
  a drift means the energy/perf accounting or the trainer's step
  structure changed, which deserves a deliberate baseline update.

Usage:
  check_regression.py \
      --baseline-micro bench/baselines/BENCH_micro_kernels.json \
      --current-micro micro.json \
      --baseline-runtime bench/baselines/BENCH_runtime_throughput.json \
      --current-runtime runtime.json \
      --baseline-train bench/baselines/BENCH_train_soak.json \
      --current-train train.json \
      [--max-slowdown 2.0] [--train-tolerance 0.01] \
      [--min-speedup 8:1:1.0] \
      [--current-metrics metrics.json --counter-min KEY:FLOOR \
       --counter-ratio-min A:B:FLOOR]

A baseline entry missing from the current report is an explicit failure
(a benchmark that silently disappears would otherwise turn the gate
vacuously green); entries new in the current report are noted but not
gated.  --min-speedup THREADS:TILES:FLOOR (repeatable) additionally
asserts an absolute scaling floor on the current runtime report.

Exits non-zero when any check fails.  Either pair may be omitted.
"""

import argparse
import json
import math
import sys


def load_micro(path):
    """name -> cpu_time from a google-benchmark JSON report."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        out[bench["name"]] = float(bench["cpu_time"])
    return out


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def missing_keys(kind, base, cur):
    """Baseline entries absent from the current report are a hard failure:
    a benchmark that silently disappeared (renamed, crashed, filtered out)
    would otherwise make the gate vacuously green.  Entries only in the
    current report are new benchmarks awaiting a baseline refresh — noted,
    not failed."""
    ok = True
    for key in sorted(set(base) - set(cur)):
        print(f"FAIL  {kind}: baseline entry {key!r} missing from current"
              f" report — benchmark removed or renamed? refresh the"
              f" baseline deliberately if so")
        ok = False
    for key in sorted(set(cur) - set(base)):
        print(f"note  {kind}: {key!r} is new (not in baseline); not gated")
    return ok


def check_micro(baseline_path, current_path, max_slowdown):
    base = load_micro(baseline_path)
    cur = load_micro(current_path)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("FAIL micro: no shared kernels between baseline and current")
        return False
    ok = missing_keys("micro", base, cur)
    base_ref = geomean([base[n] for n in shared])
    cur_ref = geomean([cur[n] for n in shared])
    for name in shared:
        rel = (cur[name] / cur_ref) / (base[name] / base_ref)
        status = "ok  "
        if rel > max_slowdown:
            status = "FAIL"
            ok = False
        print(f"{status}  micro: {name}: normalized time ratio {rel:.2f}x"
              f" (limit {max_slowdown:.2f}x)")
    return ok


def load_runtime(path):
    """(threads, tiles, burst) -> speedup(x) from a JsonReport document."""
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("results", {}).get("throughput_sweep", [])
    out = {}
    for row in rows:
        try:
            key = (int(row["threads"]), int(row["tiles"]), int(row["burst"]))
            out[key] = float(row["speedup(x)"])
        except (KeyError, TypeError, ValueError):
            continue  # e.g. the "n/a" baseline row
    return out


def check_runtime(baseline_path, current_path, max_slowdown):
    base = load_runtime(baseline_path)
    cur = load_runtime(current_path)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("FAIL runtime: no shared sweep rows between baseline and"
              " current")
        return False
    ok = missing_keys("runtime", base, cur)
    for key in shared:
        floor = base[key] / max_slowdown
        status = "ok  "
        if cur[key] < floor:
            status = "FAIL"
            ok = False
        threads, tiles, burst = key
        print(f"{status}  runtime: threads={threads} tiles={tiles}"
              f" burst={burst}: speedup {cur[key]:.2f}x"
              f" (baseline {base[key]:.2f}x, floor {floor:.2f}x)")
    return ok


def load_train(path):
    """(model, replicas, eff_batch) -> j_per_sample from a JsonReport."""
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("results", {}).get("train_sweep", [])
    out = {}
    for row in rows:
        try:
            key = (str(row["model"]), int(row["replicas"]),
                   int(row["eff_batch"]))
            out[key] = float(row["j_per_sample"])
        except (KeyError, TypeError, ValueError):
            continue
    return out


def check_train(baseline_path, current_path, tolerance):
    base = load_train(baseline_path)
    cur = load_train(current_path)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("FAIL train: no shared sweep rows between baseline and"
              " current")
        return False
    ok = missing_keys("train", base, cur)
    for key in shared:
        if base[key] == 0.0:
            rel = 0.0 if cur[key] == 0.0 else float("inf")
        else:
            rel = abs(cur[key] / base[key] - 1.0)
        status = "ok  "
        if rel > tolerance:
            status = "FAIL"
            ok = False
        model, replicas, eff_batch = key
        print(f"{status}  train: model={model} replicas={replicas}"
              f" eff_batch={eff_batch}: J/sample {cur[key]:.4e}"
              f" (baseline {base[key]:.4e}, drift {rel * 100:.2f}%,"
              f" limit {tolerance * 100:.2f}%)")
    return ok


def check_min_speedup(current_path, specs):
    """Absolute scaling floors on the current runtime report, independent of
    any baseline.  Each spec is "threads:tiles:floor"; the best speedup(x)
    across burst sizes for that (threads, tiles) pair must be >= floor.
    Catches a dispatch path that serializes outright — e.g. 8 threads
    running no faster than 1 — which a relative baseline check can miss
    once the broken number gets committed as the baseline."""
    cur = load_runtime(current_path)
    ok = True
    for spec in specs:
        try:
            threads_s, tiles_s, floor_s = spec.split(":")
            threads, tiles, floor = int(threads_s), int(tiles_s), \
                float(floor_s)
        except ValueError:
            print(f"FAIL  floor: bad --min-speedup spec {spec!r}"
                  f" (want THREADS:TILES:FLOOR)")
            ok = False
            continue
        speedups = [v for (t, ti, _b), v in cur.items()
                    if t == threads and ti == tiles]
        if not speedups:
            print(f"FAIL  floor: no rows with threads={threads}"
                  f" tiles={tiles} in current runtime report")
            ok = False
            continue
        best = max(speedups)
        status = "ok  "
        if best < floor:
            status = "FAIL"
            ok = False
        print(f"{status}  floor: threads={threads} tiles={tiles}: best"
              f" speedup {best:.2f}x (floor {floor:.2f}x)")
    return ok


def load_metrics_counters(path):
    """name -> value from a MetricsRegistry::writeJsonFile dump.  Gauges
    are merged in after counters so monotonic-min/-max gauges (e.g.
    fidelity.rns.overflow_margin_min) can share the --counter-min floor
    machinery; a name collision between the two sections keeps the gauge
    value."""
    with open(path) as f:
        doc = json.load(f)
    out = {str(k): float(v)
           for k, v in doc.get("counters", {}).items()}
    out.update({str(k): float(v)
                for k, v in doc.get("gauges", {}).items()})
    return out


def check_counters(metrics_path, mins, ratio_mins):
    """Absolute floors on an obs metrics dump (--metrics output).  Each
    --counter-min is KEY:FLOOR (counter value >= FLOOR); each
    --counter-ratio-min is A:B:FLOOR (A / (A + B) >= FLOOR, e.g. a cache
    hit-rate floor from hits/misses counters).  Counter values depend on
    batching and cache timing, so floors should be loose sanity bounds —
    "the instrumentation is alive and the subsystem ran" — not tight
    perf gates."""
    try:
        counters = load_metrics_counters(metrics_path)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"FAIL  counters: cannot load {metrics_path}: {exc}")
        return False
    ok = True
    for spec in mins:
        try:
            key, floor_s = spec.rsplit(":", 1)
            floor = float(floor_s)
        except ValueError:
            print(f"FAIL  counters: bad --counter-min spec {spec!r}"
                  f" (want KEY:FLOOR)")
            ok = False
            continue
        if key not in counters:
            print(f"FAIL  counters: {key!r} not in {metrics_path}")
            ok = False
            continue
        status = "ok  "
        if counters[key] < floor:
            status = "FAIL"
            ok = False
        print(f"{status}  counters: {key} = {counters[key]:g}"
              f" (floor {floor:g})")
    for spec in ratio_mins:
        try:
            a_key, b_key, floor_s = spec.rsplit(":", 2)
            floor = float(floor_s)
        except ValueError:
            print(f"FAIL  counters: bad --counter-ratio-min spec {spec!r}"
                  f" (want A:B:FLOOR)")
            ok = False
            continue
        missing = [k for k in (a_key, b_key) if k not in counters]
        if missing:
            print(f"FAIL  counters: {missing!r} not in {metrics_path}")
            ok = False
            continue
        total = counters[a_key] + counters[b_key]
        ratio = counters[a_key] / total if total > 0 else 0.0
        status = "ok  "
        if ratio < floor:
            status = "FAIL"
            ok = False
        print(f"{status}  counters: {a_key} / ({a_key} + {b_key})"
              f" = {ratio:.3f} (floor {floor:.3f})")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-micro")
    parser.add_argument("--current-micro")
    parser.add_argument("--baseline-runtime")
    parser.add_argument("--current-runtime")
    parser.add_argument("--baseline-train")
    parser.add_argument("--current-train")
    parser.add_argument("--max-slowdown", type=float, default=2.0)
    parser.add_argument("--train-tolerance", type=float, default=0.01)
    parser.add_argument("--min-speedup", action="append", default=[],
                        metavar="THREADS:TILES:FLOOR",
                        help="absolute floor on the current runtime"
                             " report's best speedup(x) for a"
                             " (threads, tiles) pair; repeatable")
    parser.add_argument("--current-metrics",
                        help="obs metrics JSON dump (--metrics output)"
                             " for the --counter-* checks")
    parser.add_argument("--counter-min", action="append", default=[],
                        metavar="KEY:FLOOR",
                        help="counter value floor in --current-metrics;"
                             " repeatable")
    parser.add_argument("--counter-ratio-min", action="append", default=[],
                        metavar="A:B:FLOOR",
                        help="floor on A / (A + B) for two counters in"
                             " --current-metrics; repeatable")
    args = parser.parse_args()

    ok = True
    ran = False
    if args.baseline_micro and args.current_micro:
        ran = True
        ok &= check_micro(args.baseline_micro, args.current_micro,
                          args.max_slowdown)
    if args.baseline_runtime and args.current_runtime:
        ran = True
        ok &= check_runtime(args.baseline_runtime, args.current_runtime,
                            args.max_slowdown)
    if args.baseline_train and args.current_train:
        ran = True
        ok &= check_train(args.baseline_train, args.current_train,
                          args.train_tolerance)
    if args.min_speedup:
        if not args.current_runtime:
            print("FAIL floor: --min-speedup needs --current-runtime")
            ran = True
            ok = False
        else:
            ran = True
            ok &= check_min_speedup(args.current_runtime, args.min_speedup)
    if args.counter_min or args.counter_ratio_min:
        ran = True
        if not args.current_metrics:
            print("FAIL counters: --counter-min/--counter-ratio-min need"
                  " --current-metrics")
            ok = False
        else:
            ok &= check_counters(args.current_metrics, args.counter_min,
                                 args.counter_ratio_min)
    if not ran:
        print("nothing to check: pass --baseline-*/--current-* pairs")
        return 2
    print("perf smoke:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
