/**
 * @file
 * Fig. 6: spatial utilization versus (a) the number of MDPUs per MMVMU and
 * (b) the number of RNS-MMVMUs, for all seven DNNs at batch 256 with
 * g = 16 (training GEMMs, DF1).
 */

#include <iostream>
#include <vector>

#include "arch/perf_model.h"
#include "bench/bench_util.h"
#include "core/schedule.h"
#include "models/zoo.h"

namespace {

using namespace mirage;

double
modelUtilization(const arch::MirageConfig &cfg, const models::ModelShape &m,
                 int64_t batch)
{
    // Spatial utilization is measured under the default weight-stationary
    // mapping (DF1), as in the paper's design-space sweep: flexible
    // dataflows would mask the padding that Fig. 6 is about.
    const arch::MiragePerfModel model(cfg);
    const core::ScheduleResult r =
        core::scheduleMirage(model, models::trainingTasks(m, batch),
                             arch::DataflowPolicy::FixedDF1);
    return r.avg_spatial_util;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 6", "spatial utilization vs array dimensions", opts);
    const int64_t batch = opts.full ? 256 : 64;
    const auto nets = models::allModels();

    std::vector<std::string> headers = {"config"};
    for (const auto &m : nets)
        headers.push_back(m.name);

    {
        std::cout << "(a) utilization (%) vs #MDPUs per MMVMU "
                     "(8 RNS-MMVMUs, g=16)\n";
        TablePrinter table(headers);
        for (int rows : {2, 4, 8, 16, 32, 64, 128, 256}) {
            std::vector<std::string> row = {std::to_string(rows)};
            for (const auto &m : nets) {
                arch::MirageConfig cfg;
                cfg.mdpu_rows = rows;
                row.push_back(
                    formatFixed(100.0 * modelUtilization(cfg, m, batch), 1));
            }
            table.addRow(row);
        }
        bench::emit(table, opts);
    }

    {
        std::cout << "(b) utilization (%) vs #RNS-MMVMUs (16x32 arrays)\n";
        TablePrinter table(headers);
        for (int arrays : {2, 4, 8, 16, 32, 64, 128, 256}) {
            std::vector<std::string> row = {std::to_string(arrays)};
            for (const auto &m : nets) {
                arch::MirageConfig cfg;
                cfg.num_arrays = arrays;
                row.push_back(
                    formatFixed(100.0 * modelUtilization(cfg, m, batch), 1));
            }
            table.addRow(row);
        }
        bench::emit(table, opts);
    }

    std::cout << "Shape check (paper): utilization declines past ~32 MDPUs\n"
                 "per MMVMU and past ~8 RNS-MMVMUs for most models —\n"
                 "the paper's justification for the 16x32 x8 design point.\n";
    return 0;
}
