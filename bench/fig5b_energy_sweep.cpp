/**
 * @file
 * Fig. 5b: energy per MAC (pJ/MAC) of an RNS-MMVMU versus BFP group size g
 * for bm in {3, 4, 5}, each with the minimal special moduli set satisfying
 * Eq. (13). Includes lasers, MRR tuning, DACs/ADCs, TIAs, FP-BFP and
 * RNS-BNS conversions (the paper's Fig. 5b scope; SRAM excluded).
 */

#include <iostream>
#include <vector>

#include "arch/energy_model.h"
#include "bench/bench_util.h"
#include "rns/moduli_set.h"

int
main(int argc, char **argv)
{
    using namespace mirage;
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 5b", "pJ/MAC vs group size g for bm in {3,4,5}",
                  opts);

    const std::vector<int> g_values =
        opts.full ? std::vector<int>{4, 8, 16, 32, 64, 128}
                  : std::vector<int>{4, 8, 16, 32, 64};

    TablePrinter table({"g", "bm=3 (pJ)", "bm=4 (pJ)", "bm=5 (pJ)",
                        "FP32 digital (pJ)"});
    for (int g : g_values) {
        std::vector<std::string> row = {std::to_string(g)};
        for (int bm : {3, 4, 5}) {
            arch::MirageConfig cfg;
            cfg.bm = bm;
            cfg.g = g;
            cfg.moduli_k = rns::ModuliSet::minSpecialK(bm, g);
            const arch::MirageSummary s =
                arch::MirageEnergyModel(cfg).summary();
            row.push_back(formatSig(s.pj_per_mac, 3) + " (k=" +
                          std::to_string(cfg.moduli_k) + ")");
        }
        row.push_back("12.42");
        table.addRow(row);
    }
    bench::emit(table, opts);

    std::cout << "Shape check (paper): energy rises steeply at large g as\n"
                 "optical loss compounds per cascaded MMU; bm=4/g=16 is the\n"
                 "sweet spot among configurations that keep accuracy.\n";
    return 0;
}
