/**
 * @file
 * Table III: Mirage as an inference accelerator — throughput (IPS),
 * power efficiency (IPS/W) and area efficiency (IPS/mm^2) on ResNet50 and
 * AlexNet, next to the published numbers of prior photonic and electronic
 * accelerators (literature constants, as in the paper).
 */

#include <iostream>

#include "bench/bench_util.h"
#include "core/mirage.h"
#include "models/zoo.h"

namespace {

using namespace mirage;

struct Literature
{
    const char *name;
    double resnet_ips, resnet_ips_w, resnet_ips_mm2;
    double alex_ips, alex_ips_w, alex_ips_mm2;
};

// Table III rows as published (N/A encoded as 0).
const Literature kPrior[] = {
    {"ADEPT", 35698, 1587.99, 50.57, 217201, 7476.78, 307.64},
    {"Albireo-C", 0, 0, 0, 7692, 344.17, 61.46},
    {"DNNARA", 9345, 100, 42.05, 0, 0, 0},
    {"HolyLight", 0, 0, 0, 50000, 900, 2226.11},
    {"Eyeriss", 0, 0, 0, 35, 124.80, 2.85},
    {"Eyeriss v2", 0, 0, 0, 102, 174.80, 0},
    {"TPU v3", 32716, 18.18, 18.00, 0, 0, 0},
    {"UNPU", 0, 0, 0, 346, 1097.50, 21.62},
    {"Res-DNN", 0, 0, 0, 386.11, 427.78, 0},
};

std::string
cell(double v)
{
    return v > 0 ? formatFixed(v, 2) : std::string("N/A");
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Table III", "Mirage vs DNN inference accelerators", opts);

    core::MirageAccelerator acc;
    const arch::MirageSummary s = acc.summary();
    // Inference at a throughput-friendly batch, as accelerators report.
    const int64_t batch = opts.full ? 256 : 64;

    TablePrinter table({"accelerator", "ResNet50 IPS", "IPS/W", "IPS/mm^2",
                        "AlexNet IPS", "IPS/W", "IPS/mm^2"});

    auto mirage_row = [&](const models::ModelShape &net) {
        const core::PerformanceReport rep = acc.estimateInference(net, batch);
        const double ips = static_cast<double>(batch) / rep.time_s;
        return std::array<double, 3>{
            ips, ips / rep.total_power_w, ips / s.area.stackedMm2()};
    };
    const auto resnet = mirage_row(models::resNet50());
    const auto alex = mirage_row(models::alexNet());
    table.addRow({"Mirage (this work)", formatFixed(resnet[0], 0),
                  formatFixed(resnet[1], 1), formatFixed(resnet[2], 1),
                  formatFixed(alex[0], 0), formatFixed(alex[1], 1),
                  formatFixed(alex[2], 1)});
    std::cout << "(paper's Mirage row: ResNet50 10474 / 1540.6 / 43.2; "
                 "AlexNet 64963 / 1904.5 / 267.67)\n";

    for (const Literature &l : kPrior) {
        table.addRow({l.name, cell(l.resnet_ips), cell(l.resnet_ips_w),
                      cell(l.resnet_ips_mm2), cell(l.alex_ips),
                      cell(l.alex_ips_w), cell(l.alex_ips_mm2)});
    }
    bench::emit(table, opts);

    std::cout << "Shape check (paper): Mirage beats all electronic\n"
                 "accelerators in IPS and all photonic ones in IPS/W except\n"
                 "ADEPT; ADEPT and TPU v3 retain a raw-IPS edge on ResNet50.\n";
    return 0;
}
