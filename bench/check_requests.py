#!/usr/bin/env python3
"""Validator for per-request JSONL logs (serve_soak --request-log and
flight-recorder dumps).

Each line is one obs::RequestRecord:

  {"id": N, "batch": N, "class": "interactive|batch|train", "tile": N,
   "batch_size": N, "cache_hit": B, "deadline_met": B, "shed": B,
   "queue_ns": N, "execute_ns": N, "reply_ns": N, "total_ns": N,
   "modeled_ns": N, "modeled_nj": N}

Checks:

* every line parses as JSON; lines without an "id" key (e.g. the
  {"signal": N} header of a fatal-signal dump) are skipped,
* ids are positive and unique; strictly increasing unless --unordered
  (flight dumps are in completion order, which interleaves batches),
* for completed (non-shed) serve records, the wall-time shares sum to
  the end-to-end total: |queue+execute+reply - total| <= 1% + 1 us,
* records sharing a micro-batch ("batch" key, serve classes only) agree
  on tile, cache_hit, batch_size, and class, and the group is no larger
  than its declared batch_size,
* shed records never claim a met deadline,
* with --min-requests N, at least N records are present.

Usage:
  check_requests.py LOG.jsonl [--unordered] [--min-requests N]

Exits non-zero on any failure, printing each violation.
"""

import argparse
import collections
import json
import sys

REQUIRED_KEYS = (
    "id", "batch", "class", "tile", "batch_size", "cache_hit",
    "deadline_met", "shed", "queue_ns", "execute_ns", "reply_ns",
    "total_ns", "modeled_ns", "modeled_nj",
)

SHARE_TOL_FRAC = 0.01   # 1% of the record's own total...
SHARE_TOL_NS = 1_000    # ...plus 1 us of per-term rounding slack.


def fail(msg):
    print(f"FAIL  {msg}")
    return False


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", help="JSONL request log to validate")
    parser.add_argument("--unordered", action="store_true",
                        help="allow ids out of order (flight dumps are in"
                             " completion order)")
    parser.add_argument("--min-requests", type=int, default=1,
                        help="minimum number of records required")
    args = parser.parse_args()

    try:
        with open(args.log) as f:
            lines = f.readlines()
    except OSError as exc:
        print(f"FAIL  cannot read {args.log}: {exc}")
        return 1

    ok = True
    records = []
    skipped = 0
    for i, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            ok = fail(f"line {i}: not valid JSON ({exc})")
            continue
        if not isinstance(rec, dict):
            ok = fail(f"line {i}: not a JSON object")
            continue
        if "id" not in rec:
            skipped += 1  # e.g. the {"signal": N} dump header
            continue
        missing = [k for k in REQUIRED_KEYS if k not in rec]
        if missing:
            ok = fail(f"line {i}: missing keys {missing}")
            continue
        rec["_line"] = i
        records.append(rec)

    if len(records) < args.min_requests:
        ok = fail(f"{len(records)} records, but --min-requests"
                  f" {args.min_requests}")

    # Id uniqueness and (optionally) monotonicity.
    seen = {}
    prev_id = 0
    for rec in records:
        rid = rec["id"]
        if not isinstance(rid, int) or rid <= 0:
            ok = fail(f"line {rec['_line']}: id {rid!r} is not a positive"
                      f" integer")
            continue
        if rid in seen:
            ok = fail(f"line {rec['_line']}: id {rid} already appeared on"
                      f" line {seen[rid]}")
        seen[rid] = rec["_line"]
        if not args.unordered and rid <= prev_id:
            ok = fail(f"line {rec['_line']}: id {rid} not strictly"
                      f" increasing (previous {prev_id}); flight dumps"
                      f" need --unordered")
        prev_id = max(prev_id, rid)

    # Wall-time shares and flag consistency.
    for rec in records:
        where = f"line {rec['_line']} (id {rec['id']})"
        if rec["shed"]:
            if rec["deadline_met"]:
                ok = fail(f"{where}: shed record claims deadline_met")
            continue
        total = rec["total_ns"]
        share_sum = rec["queue_ns"] + rec["execute_ns"] + rec["reply_ns"]
        tol = SHARE_TOL_FRAC * total + SHARE_TOL_NS
        if abs(share_sum - total) > tol:
            ok = fail(f"{where}: queue+execute+reply = {share_sum} ns but"
                      f" total_ns = {total} (tolerance {tol:.0f} ns)")

    # Micro-batch consistency (serve classes only: train steps use their
    # own step counter as "batch" and never share it with serve batches).
    groups = collections.defaultdict(list)
    for rec in records:
        if rec["shed"] or rec["class"] == "train":
            continue
        groups[rec["batch"]].append(rec)
    for batch, group in sorted(groups.items()):
        where = f"batch {batch}"
        for key in ("tile", "cache_hit", "batch_size", "class"):
            values = {rec[key] for rec in group}
            if len(values) > 1:
                ok = fail(f"{where}: members disagree on {key}:"
                          f" {sorted(values, key=str)}")
        sizes = {rec["batch_size"] for rec in group}
        if len(sizes) == 1 and len(group) > next(iter(sizes)):
            ok = fail(f"{where}: {len(group)} records but batch_size"
                      f" {next(iter(sizes))}")

    classes = collections.Counter(rec["class"] for rec in records)
    print(f"{args.log}: {len(records)} records ({skipped} non-record"
          f" lines skipped), {len(groups)} micro-batches,"
          f" classes: {dict(classes)}")
    print("request check:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
