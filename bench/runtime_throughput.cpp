/**
 * @file
 * Runtime engine throughput sweep: aggregate GEMM MAC/s across thread
 * count x tile count x burst (batch) size, on emulated-mode BFP+RNS GEMM
 * jobs. The speedup column is normalized to the 1-thread/1-tile row of
 * the same burst size; on a machine with >= 8 cores the 8-thread rows
 * should exceed 3x. Results are bit-identical across all configurations
 * (verified by test_runtime / test_runtime_determinism), so this sweep is
 * purely about wall-clock scaling.
 */

#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/mirage.h"
#include "runtime/engine.h"
#include "runtime/thread_pool.h"

namespace {

using namespace mirage;
using Clock = std::chrono::steady_clock;

struct SweepPoint
{
    int threads = 1;
    int tiles = 1;
    int burst = 1; ///< GEMM jobs submitted per burst.
};

struct SweepResult
{
    double wall_s = 0.0;
    double macs_per_s = 0.0;
    double avg_latency_ms = 0.0;
    double utilization = 0.0;
    uint64_t batches = 0;
};

SweepResult
runSweep(const SweepPoint &pt, int m, int k, int n, int bursts)
{
    runtime::ThreadPool::setGlobalThreads(pt.threads);
    runtime::EngineConfig cfg;
    cfg.tiles = pt.tiles;
    cfg.max_batch = pt.burst > 1 ? pt.burst : 1;
    cfg.queue_capacity = static_cast<size_t>(pt.burst) * 2 + 4;
    runtime::RuntimeEngine engine(cfg);

    // One shared operand set per shape keeps generation off the clock.
    Rng rng(7);
    runtime::GemmRequest proto;
    proto.m = m;
    proto.k = k;
    proto.n = n;
    proto.a.resize(static_cast<size_t>(m) * k);
    proto.b.resize(static_cast<size_t>(k) * n);
    for (auto &v : proto.a)
        v = static_cast<float>(rng.gaussian());
    for (auto &v : proto.b)
        v = static_cast<float>(rng.gaussian());

    const Clock::time_point t0 = Clock::now();
    int64_t macs = 0;
    double latency_sum = 0.0;
    uint64_t jobs = 0;
    for (int burst = 0; burst < bursts; ++burst) {
        std::vector<std::future<runtime::GemmResult>> futs;
        futs.reserve(static_cast<size_t>(pt.burst));
        for (int j = 0; j < pt.burst; ++j)
            futs.push_back(engine.submitGemm(proto));
        for (auto &f : futs) {
            const runtime::GemmResult res = f.get();
            latency_sum += res.latency_s;
            macs += static_cast<int64_t>(m) * k * n;
            ++jobs;
        }
    }
    engine.drain();
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();

    SweepResult out;
    out.wall_s = wall;
    out.macs_per_s = wall > 0 ? static_cast<double>(macs) / wall : 0.0;
    out.avg_latency_ms =
        jobs > 0 ? 1e3 * latency_sum / static_cast<double>(jobs) : 0.0;
    const runtime::RuntimeReport rep = engine.report();
    out.utilization = rep.utilization();
    out.batches = rep.batches_dispatched;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("runtime throughput",
                  "parallel batched GEMM engine: threads x tiles x burst",
                  opts);

    const unsigned hw = std::thread::hardware_concurrency();
    std::cout << "hardware_concurrency: " << (hw == 0 ? 1 : hw) << "\n\n";

    // Emulated-mode BFP+RNS GEMM jobs; --full uses the larger shape and a
    // longer sweep so per-job overhead is fully amortized.
    const int m = opts.full ? 192 : 96;
    const int k = 64;
    const int n = opts.full ? 96 : 48;
    const int bursts = opts.full ? 4 : 2;

    std::vector<int> thread_counts = {1, 2, 4, 8};
    std::vector<int> tile_counts = opts.full ? std::vector<int>{1, 2, 4}
                                             : std::vector<int>{1, 4};
    std::vector<int> burst_sizes = opts.full ? std::vector<int>{1, 8, 32}
                                             : std::vector<int>{8};

    TablePrinter table({"threads", "tiles", "burst", "wall(ms)", "MAC/s",
                        "speedup(x)", "avg lat(ms)", "util", "batches"});
    for (int burst : burst_sizes) {
        double baseline = 0.0;
        for (int tiles : tile_counts) {
            for (int threads : thread_counts) {
                const SweepPoint pt{threads, tiles, burst};
                const SweepResult res = runSweep(pt, m, k, n, bursts);
                if (tiles == 1 && threads == 1)
                    baseline = res.macs_per_s;
                table.addRow({std::to_string(threads), std::to_string(tiles),
                              std::to_string(burst),
                              formatFixed(res.wall_s * 1e3, 1),
                              formatSig(res.macs_per_s, 4),
                              baseline > 0
                                  ? formatFixed(res.macs_per_s / baseline, 2)
                                  : "n/a",
                              formatFixed(res.avg_latency_ms, 2),
                              formatFixed(res.utilization, 2),
                              std::to_string(res.batches)});
            }
        }
    }
    bench::emit(table, opts);
    bench::JsonReport json;
    json.add("throughput_sweep", table);
    json.writeIfRequested("runtime_throughput", opts);
    bench::writeObsOutputs(opts);
    runtime::ThreadPool::setGlobalThreads(0);

    std::cout
        << "MAC/s follows core::PerformanceReport::macsPerSecond semantics\n"
           "(MACs / wall seconds). Expectation on an >= 8-core host: the\n"
           "8-thread, multi-tile rows reach >= 3x the 1-thread baseline;\n"
           "single-core hosts show ~1x with the engine overhead visible in\n"
           "the latency column. Results are bit-identical across every\n"
           "configuration (see test_runtime_determinism).\n";
    return 0;
}
