/**
 * @file
 * Observability-overhead micro-benchmark: ns per record for the three
 * hot-path primitives (Counter::add, Histogram::record, TraceSpan) with
 * the layer enabled and disabled, at 1 and 8 threads.
 *
 * The numbers quantify the cost budget the obs layer promises:
 *   - disabled primitives collapse to one relaxed atomic load and a
 *     branch (single-digit ns; asserted <= ~30 ns by test_obs),
 *   - enabled counters/histograms are one relaxed fetch_add on a
 *     per-thread shard (no contention at 8 threads),
 *   - enabled spans pay two steady_clock reads plus a ring-buffer write.
 *
 * Every loop body touches an atomic (the enabled()/traceEnabled() gate
 * at minimum), so the compiler cannot elide the measured work. Timing
 * is wall-clock over a fixed iteration count; on
 * the multi-thread rows every thread runs the full count and the table
 * reports per-record cost (threads * iters / wall).
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "fault/injection.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace mirage;
using Clock = std::chrono::steady_clock;

/** Runs `fn(iters)` on `threads` threads; returns ns per call. */
template <typename Fn>
double
measure(int threads, uint64_t iters, Fn fn)
{
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            ready.fetch_add(1);
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            fn(iters);
        });
    }
    while (ready.load() != threads)
        std::this_thread::yield();
    const Clock::time_point t0 = Clock::now();
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    const double wall_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    return wall_ns / static_cast<double>(iters) /
           static_cast<double>(threads);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("obs overhead",
                  "ns/record for counters, histograms, and trace spans",
                  opts);

    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    obs::Counter &counter = reg.counter("bench.obs.counter");
    obs::Histogram &hist = reg.histogram("bench.obs.hist");

    const uint64_t iters = opts.full ? 20'000'000 : 2'000'000;
    // Span iterations are scaled down: two clock reads per span make it
    // ~20x a counter add, and the ring wraps anyway.
    const uint64_t span_iters = iters / 10;
    const std::vector<int> thread_counts = {1, 8};

    const auto counter_loop = [&](uint64_t n) {
        for (uint64_t i = 0; i < n; ++i)
            counter.add(1);
    };
    const auto hist_loop = [&](uint64_t n) {
        for (uint64_t i = 0; i < n; ++i)
            hist.record(i & 0xffff);
    };
    const auto span_loop = [&](uint64_t n) {
        for (uint64_t i = 0; i < n; ++i) {
            MIRAGE_SPAN("bench.obs.span");
        }
    };
    // Request-context propagation: what every engine job pays regardless
    // of trace state — a thread-local save/set/restore plus a read. The
    // sink keeps the compiler from collapsing the loop.
    std::atomic<uint64_t> ctx_sink{0};
    const auto context_loop = [&](uint64_t n) {
        uint64_t acc = 0;
        for (uint64_t i = 0; i < n; ++i) {
            obs::RequestScope scope(i + 1);
            acc += obs::currentRequestId();
        }
        ctx_sink.fetch_add(acc, std::memory_order_relaxed);
    };
    // traceFlow with tracing disabled: the per-request cost the serve
    // path pays in an untraced run (gate load + branch).
    const auto flow_loop = [&](uint64_t n) {
        for (uint64_t i = 0; i < n; ++i)
            obs::traceFlow("bench.obs.flow", i + 1, 't');
    };

    TablePrinter table(
        {"primitive", "state", "threads", "iters/thread", "ns/record"});
    for (const bool enabled : {true, false}) {
        obs::setEnabled(enabled);
        obs::setTraceEnabled(enabled);
        const char *state = enabled ? "enabled" : "disabled";
        for (int threads : thread_counts) {
            table.addRow({"counter.add", state, std::to_string(threads),
                          std::to_string(iters),
                          formatFixed(measure(threads, iters, counter_loop),
                                      2)});
            table.addRow({"histogram.record", state,
                          std::to_string(threads), std::to_string(iters),
                          formatFixed(measure(threads, iters, hist_loop),
                                      2)});
            table.addRow(
                {"trace.span", state, std::to_string(threads),
                 std::to_string(span_iters),
                 formatFixed(measure(threads, span_iters, span_loop), 2)});
            table.addRow(
                {"context.scope", state, std::to_string(threads),
                 std::to_string(iters),
                 formatFixed(measure(threads, iters, context_loop), 2)});
            table.addRow(
                {"trace.flow", state, std::to_string(threads),
                 std::to_string(enabled ? span_iters : iters),
                 formatFixed(measure(threads, enabled ? span_iters : iters,
                                     flow_loop),
                             2)});
        }
    }
    // Disarmed fault-injection checks: the cost every production dispatch
    // pays at each injection point when MIRAGE_FAULT is unset — the same
    // relaxed-load-plus-branch contract as a disabled counter. The sink
    // keeps the compiler from eliding the gate load.
    {
        static fault::FaultPoint bench_point("bench.obs.fault");
        fault::reset(); // make sure nothing (env) left the gate armed
        std::atomic<uint64_t> fault_sink{0};
        const auto fault_loop = [&](uint64_t n) {
            uint64_t acc = 0;
            for (uint64_t i = 0; i < n; ++i)
                acc += bench_point.shouldFire() ? 1 : 0;
            fault_sink.fetch_add(acc, std::memory_order_relaxed);
        };
        for (int threads : thread_counts) {
            table.addRow(
                {"fault.check", "disarmed", std::to_string(threads),
                 std::to_string(iters),
                 formatFixed(measure(threads, iters, fault_loop), 2)});
        }
    }
    // Fidelity probe gate: the per-GEMM check every backend pays when
    // MIRAGE_FIDELITY is unset (disabled: one relaxed load and a branch,
    // the <= 2 ns contract asserted by test_obs_fidelity) and when probes
    // are armed at a sampling interval too large to ever fire (armed-idle:
    // adds a local counter increment and a modulo). Each thread owns its
    // sampler, as each backend instance does in production.
    {
        std::atomic<uint64_t> probe_sink{0};
        const auto probe_loop = [&](uint64_t n) {
            obs::fidelity::ProbeSampler sampler;
            uint64_t acc = 0;
            for (uint64_t i = 0; i < n; ++i)
                acc += sampler.sample() ? 1 : 0;
            probe_sink.fetch_add(acc, std::memory_order_relaxed);
        };
        obs::fidelity::setProbeInterval(0);
        for (int threads : thread_counts) {
            table.addRow(
                {"fidelity.probe_check", "disabled", std::to_string(threads),
                 std::to_string(iters),
                 formatFixed(measure(threads, iters, probe_loop), 2)});
        }
        obs::fidelity::setProbeInterval(uint64_t{1} << 62);
        for (int threads : thread_counts) {
            table.addRow(
                {"fidelity.probe_check", "armed-idle",
                 std::to_string(threads), std::to_string(iters),
                 formatFixed(measure(threads, iters, probe_loop), 2)});
        }
        obs::fidelity::setProbeInterval(0);
    }

    obs::setEnabled(true);
    obs::setTraceEnabled(false);
    obs::clearTrace();

    bench::emit(table, opts);
    bench::JsonReport json;
    json.add("obs_overhead", table);
    if (!json.writeIfRequested("obs_overhead", opts))
        return 1;

    std::cout
        << "Disabled rows are the cost every uninstrumented run pays: one\n"
           "relaxed load and a predicted branch. Enabled counter/histogram\n"
           "rows should stay flat from 1 to 8 threads (per-thread shards,\n"
           "no cache-line ping-pong); the span row is dominated by the two\n"
           "steady_clock reads. context.scope is the request-id\n"
           "save/set/restore every engine job performs regardless of trace\n"
           "state (thread-local only, single-digit ns); the disabled\n"
           "trace.flow row is what the serve path pays per flow point in\n"
           "an untraced run. fidelity.probe_check is the per-GEMM shadow-\n"
           "probe gate: disabled is the MIRAGE_FIDELITY-unset cost every\n"
           "backend call pays (<= 2 ns contract), armed-idle adds the\n"
           "sampling counter without ever firing a probe.\n";
    return 0;
}
