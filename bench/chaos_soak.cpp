/**
 * @file
 * Chaos soak: drives a seeded fault schedule through the serve and train
 * stacks and asserts that every recovery contract holds.
 *
 * Three scenarios, each armed through the fault/ registry (the same
 * machinery MIRAGE_FAULT uses), each asserting its acceptance criteria
 * and exiting non-zero on any violation:
 *
 *   1. serve under tile flaps — "engine.tile_fail" fires on a fixed
 *      schedule while a Poisson load runs; every injected failure must
 *      recover (fault.injected == fault.recovered), no reply may be lost,
 *      no request may fail terminally, and the interactive deadline-miss
 *      burn must stay below the alert threshold throughout.
 *
 *   2. checkpoint corruption — "ckpt.corrupt" flips a byte of the final
 *      checkpoint write of a short training run; loadFile must fall back
 *      to the .last_good generation, and a fresh trainer resumed from the
 *      fallback must reach weights bit-identical to the original run.
 *
 *   3. replica kill + elastic resume — "train.replica_fail" kills one of
 *      three replicas mid-step; the trainer elides it, reloads the last
 *      checkpoint, and finishes at two replicas. The final weights must
 *      be bit-identical to an uninterrupted two-replica run.
 *
 * The fault schedule is fixed (hit-count specs, no wall-clock coupling),
 * so the injected faults — and therefore the fault.* counters CI gates
 * via check_regression.py — are reproducible run to run.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "fault/injection.h"
#include "models/trainable.h"
#include "models/zoo.h"
#include "nn/data.h"
#include "nn/optimizer.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "runtime/engine.h"
#include "serve/checkpoint.h"
#include "serve/repository.h"
#include "serve/server.h"
#include "train/trainer.h"

namespace {

using namespace mirage;
using Clock = std::chrono::steady_clock;

constexpr uint64_t kScheduleSeed = 0xc4405u; // "CHAOS"

int failures = 0;

void
expect(bool ok, const std::string &what)
{
    if (ok) {
        std::cout << "ok    " << what << "\n";
    } else {
        std::cout << "FAIL  " << what << "\n";
        ++failures;
    }
}

uint64_t
counterValue(const std::string &name)
{
    return obs::MetricsRegistry::global().counter(name).value();
}

// ---------------------------------------------------------------------------
// Scenario 1: serve under tile flaps
// ---------------------------------------------------------------------------

struct ServeOutcome
{
    serve::ServerStats stats;
    serve::SloStatus interactive;
    uint64_t injected = 0;
    uint64_t recovered = 0;
};

ServeOutcome
serveUnderTileFlaps(int requests, std::vector<obs::RequestRecord> *log)
{
    const std::vector<models::ModelShape> zoo = {models::resNet18(),
                                                 models::mobileNetV2()};
    serve::ModelRepository repo;
    for (const models::ModelShape &m : zoo)
        repo.publishShape(m.name, m);

    runtime::EngineConfig ecfg;
    ecfg.tiles = 4;
    ecfg.queue_capacity = 256;
    runtime::RuntimeEngine engine(ecfg);

    serve::ServerConfig scfg;
    scfg.max_batch = 8;
    scfg.queue_capacity = static_cast<size_t>(requests) + 1;
    scfg.interactive = {0.002, 0.050};
    scfg.batch = {0.020, 0.500};
    serve::InferenceServer server(repo, engine, scfg);

    const uint64_t injected_before =
        counterValue("fault.injected.engine.tile_fail");
    const uint64_t recovered_before =
        counterValue("fault.recovered.engine.tile_fail");

    // Tile flaps: the 25th engine task attempt fails, then every 60th
    // after it — several failures spread across the run, each recovered
    // by the engine's retry-on-healthy-tiles path while the cooldown
    // probe reintegrates the flapped tile.
    fault::armPoint("engine.tile_fail", fault::FaultSpec::hitEvery(25, 60));

    Rng rng(kScheduleSeed);
    std::vector<std::future<serve::InferenceReply>> futures;
    futures.reserve(static_cast<size_t>(requests));
    const Clock::time_point t0 = Clock::now();
    double t = 0.0;
    for (int i = 0; i < requests; ++i) {
        const double u = rng.uniformReal(1e-12, 1.0);
        t += -std::log(u) / 2000.0; // 2000 req/s Poisson arrivals
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(t)));
        serve::InferenceRequest req;
        req.model = zoo[rng.bernoulli(0.5) ? 1 : 0].name;
        req.slo = rng.bernoulli(0.9) ? serve::SloClass::Interactive
                                     : serve::SloClass::Batch;
        req.samples = 1;
        futures.push_back(server.submit(std::move(req)));
    }
    for (auto &f : futures) {
        try {
            serve::InferenceReply reply = f.get();
            if (log != nullptr)
                log->push_back(reply.record);
        } catch (const std::exception &) {
            // Rejected at admission; counted in stats.rejected.
        }
    }
    server.drain();
    fault::disarmPoint("engine.tile_fail");

    ServeOutcome out;
    out.stats = server.stats();
    out.interactive = server.sloStatus(serve::SloClass::Interactive);
    out.injected =
        counterValue("fault.injected.engine.tile_fail") - injected_before;
    out.recovered =
        counterValue("fault.recovered.engine.tile_fail") - recovered_before;
    return out;
}

// ---------------------------------------------------------------------------
// Train scenarios share one tiny deterministic model
// ---------------------------------------------------------------------------

constexpr int kIn = 16, kHidden = 32, kClasses = 4;

serve::ModelFactory
mlpFactory()
{
    return [](nn::GemmBackend *backend, Rng &rng) {
        return models::makeMlp(kIn, kHidden, kClasses, backend, rng);
    };
}

train::TrainerConfig
trainConfig()
{
    train::TrainerConfig cfg;
    cfg.replicas = 2;
    cfg.micro_batch = 4;
    cfg.shards_per_step = 2;
    cfg.accum_rounds = 1;
    cfg.seed = 1234;
    return cfg;
}

/** Flattened replica-0 parameters, for bit-exact comparison. */
std::vector<float>
flatParams(train::Trainer &t)
{
    std::vector<float> out;
    for (const nn::Param *p : t.net().params())
        out.insert(out.end(), p->value.data(),
                   p->value.data() + p->value.size());
    return out;
}

void
removeCheckpoint(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".last_good").c_str());
}

// ---------------------------------------------------------------------------
// Scenario 2: checkpoint corruption + last_good fallback
// ---------------------------------------------------------------------------

void
checkpointCorruption(const nn::Dataset &data)
{
    const std::string path = "chaos_soak_ckpt_corrupt.bin";
    removeCheckpoint(path);

    train::TrainerConfig cfg = trainConfig();
    cfg.checkpoint_path = path;
    cfg.checkpoint_every_steps = 2;

    const uint64_t injected_before =
        counterValue("fault.injected.ckpt.corrupt");
    const uint64_t fallbacks_before = counterValue("serve.ckpt.fallbacks");

    // Saves land at steps 2, 4 and 6; corrupt the third (final) write, so
    // the primary is damaged and .last_good holds the intact step-4
    // generation.
    fault::armPoint("ckpt.corrupt", fault::FaultSpec::hit(3));
    train::Trainer trainer(mlpFactory(),
                           std::make_unique<nn::Sgd>(0.05f, 0.9f), cfg);
    trainer.run(data, nullptr, /*target_epochs=*/1000, /*max_steps=*/6);
    fault::disarmPoint("ckpt.corrupt");
    const std::vector<float> final_weights = flatParams(trainer);

    const uint64_t injected =
        counterValue("fault.injected.ckpt.corrupt") - injected_before;
    expect(injected == 1, "ckpt.corrupt injected exactly once (got " +
                              std::to_string(injected) + ")");

    // loadFile must detect the corruption and fall back to .last_good.
    serve::Checkpoint ckpt = serve::loadFile(path);
    const uint64_t fallbacks =
        counterValue("serve.ckpt.fallbacks") - fallbacks_before;
    expect(fallbacks == 1, "loadFile fell back to .last_good");
    expect(ckpt.meta("train/step") == 4,
           "fallback generation is the intact step-4 checkpoint (got step " +
               std::to_string(ckpt.meta("train/step")) + ")");

    // Resuming from the fallback and replaying steps 5..6 must land on
    // weights bit-identical to the uninterrupted run (PR 5 contract).
    train::TrainerConfig resume_cfg = trainConfig();
    train::Trainer resumed(mlpFactory(),
                           std::make_unique<nn::Sgd>(0.05f, 0.9f),
                           resume_cfg);
    resumed.loadCheckpoint(ckpt);
    resumed.run(data, nullptr, /*target_epochs=*/1000, /*max_steps=*/2);
    expect(resumed.globalStep() == 6, "resumed run reached step 6");
    expect(flatParams(resumed) == final_weights,
           "weights after fallback resume are bit-identical to the "
           "uninterrupted run");

    removeCheckpoint(path);
}

// ---------------------------------------------------------------------------
// Scenario 3: replica kill + elastic resume
// ---------------------------------------------------------------------------

void
replicaKillElasticResume(const nn::Dataset &data)
{
    const std::string path = "chaos_soak_ckpt_elastic.bin";
    removeCheckpoint(path);
    const int64_t steps = 10;

    // Baseline: uninterrupted two-replica run.
    train::TrainerConfig base_cfg = trainConfig();
    train::Trainer baseline(mlpFactory(),
                            std::make_unique<nn::Sgd>(0.05f, 0.9f),
                            base_cfg);
    baseline.run(data, nullptr, 1000, steps);
    const std::vector<float> base_weights = flatParams(baseline);

    // Chaos: three replicas, checkpoints every 3 steps. The point is
    // evaluated once per (replica, round) — 3 per step — so the 11th
    // evaluation kills one replica during step 4, after the step-3
    // checkpoint exists: the trainer must elide the replica, reload the
    // checkpoint, and replay steps 4..10 at two replicas.
    train::TrainerConfig chaos_cfg = trainConfig();
    chaos_cfg.replicas = 3;
    chaos_cfg.checkpoint_path = path;
    chaos_cfg.checkpoint_every_steps = 3;

    const uint64_t injected_before =
        counterValue("fault.injected.train.replica_fail");
    const uint64_t recovered_before =
        counterValue("fault.recovered.train.replica_fail");
    fault::armPoint("train.replica_fail", fault::FaultSpec::hit(11));
    train::Trainer chaos(mlpFactory(),
                         std::make_unique<nn::Sgd>(0.05f, 0.9f), chaos_cfg);
    const train::TrainReport report = chaos.run(data, nullptr, 1000, steps);
    fault::disarmPoint("train.replica_fail");

    const uint64_t injected =
        counterValue("fault.injected.train.replica_fail") - injected_before;
    const uint64_t recovered =
        counterValue("fault.recovered.train.replica_fail") - recovered_before;
    expect(injected == 1, "train.replica_fail injected exactly once");
    expect(recovered == injected, "every replica kill recovered");
    expect(report.replica_failures == 1, "report counts one elided replica");
    expect(report.elastic_resumes == 1,
           "report counts one elastic checkpoint resume");
    expect(chaos.config().replicas == 2,
           "trainer finished at the surviving replica count");
    expect(chaos.globalStep() == steps, "chaos run reached step " +
                                            std::to_string(steps));
    expect(flatParams(chaos) == base_weights,
           "weights after replica kill + elastic resume are bit-identical "
           "to the uninterrupted two-replica run");

    removeCheckpoint(path);
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);

    // --request-log <path>: JSONL of serve-phase completion records, in
    // the same format serve_soak emits (check_requests.py validates it).
    std::string request_log_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--request-log") == 0 && i + 1 < argc)
            request_log_path = argv[++i];
    }

    bench::banner("chaos soak",
                  "seeded fault schedule through serve+train with recovery "
                  "assertions",
                  opts);

    // A stray MIRAGE_FAULT would overlay this bench's own schedule.
    fault::reset();

    const int requests = opts.full ? 1200 : 400;
    std::vector<obs::RequestRecord> request_log;
    std::vector<obs::RequestRecord> *log_ptr =
        request_log_path.empty() ? nullptr : &request_log;

    // --- scenario 1: serve under tile flaps -----------------------------
    const ServeOutcome serve_out = serveUnderTileFlaps(requests, log_ptr);
    const serve::ServerStats &s = serve_out.stats;
    std::cout << "serve: submitted=" << s.submitted << " completed="
              << s.completed << " rejected=" << s.rejected
              << " errors=" << s.request_errors << " tile_failures="
              << s.tile_failures << " injected=" << serve_out.injected
              << " recovered=" << serve_out.recovered << "\n";
    expect(serve_out.injected >= 1, "tile failures were injected");
    expect(serve_out.recovered == serve_out.injected,
           "every injected tile failure recovered (" +
               std::to_string(serve_out.recovered) + "/" +
               std::to_string(serve_out.injected) + ")");
    expect(s.completed + s.failed + s.rejected == s.submitted,
           "no lost replies");
    expect(s.request_errors == 0,
           "no request failed terminally (retries absorbed every failure)");
    expect(s.slo_alerts == 0, "no SLO burn alert fired");
    const double alert_burn = serve::SloMonitorConfig{}.alert_burn;
    expect(serve_out.interactive.miss_burn_fast < alert_burn,
           "interactive deadline-miss burn " +
               formatFixed(serve_out.interactive.miss_burn_fast, 2) +
               " stayed below the alert threshold " +
               formatFixed(alert_burn, 1));

    // --- scenarios 2+3: train/checkpoint recovery -----------------------
    const nn::Dataset data =
        nn::makeGaussianClusters(512, kClasses, kIn, 3.0f, 41);
    checkpointCorruption(data);
    replicaKillElasticResume(data);

    // --- outputs --------------------------------------------------------
    if (!request_log_path.empty()) {
        std::ofstream os(request_log_path);
        if (!os) {
            std::cerr << "cannot write request log to '" << request_log_path
                      << "'\n";
            return 1;
        }
        for (const obs::RequestRecord &rec : request_log)
            obs::writeRequestJsonl(os, rec);
        std::cout << "request log (" << request_log.size()
                  << " records) written to " << request_log_path << "\n";
    }

    TablePrinter table({"counter", "value"});
    for (const char *name :
         {"fault.injected", "fault.recovered",
          "fault.injected.engine.tile_fail",
          "fault.recovered.engine.tile_fail", "fault.injected.ckpt.corrupt",
          "fault.recovered.ckpt.corrupt",
          "fault.injected.train.replica_fail",
          "fault.recovered.train.replica_fail", "serve.ckpt.fallbacks"})
        table.addRow({name, std::to_string(counterValue(name))});
    bench::emit(table, opts);

    bench::JsonReport json;
    json.add("fault_counters", table);
    if (!json.writeIfRequested("chaos_soak", opts))
        return 1;
    if (!bench::writeObsOutputs(opts))
        return 1;

    if (failures > 0) {
        std::cerr << failures << " chaos assertion(s) failed\n";
        return 1;
    }
    std::cout << "chaos soak passed: every injected fault recovered\n";
    return 0;
}
