/**
 * @file
 * Fig. 8: normalized training runtime, EDP and power of Mirage versus
 * systolic arrays across data formats, under the iso-energy (left) and
 * iso-area (right) scaling scenarios. Systolic energy counts MAC units
 * only; Mirage counts lasers, photonics, TIAs, converters, RNS/BFP
 * circuits and accumulators (the paper's scopes, Sec. VI-C).
 */

#include <iostream>
#include <vector>

#include "arch/energy_model.h"
#include "arch/iso_scaling.h"
#include "bench/bench_util.h"
#include "core/mirage.h"
#include "core/schedule.h"
#include "models/zoo.h"

namespace {

using namespace mirage;

struct Row
{
    double runtime = 0.0;
    double energy = 0.0;
    double power = 0.0;

    double edp() const { return energy * runtime; }
};

Row
systolicRow(const arch::SystolicConfig &cfg,
            const std::vector<models::GemmTask> &tasks)
{
    const arch::SystolicPerfModel sa(cfg);
    const core::ScheduleResult sched =
        core::scheduleSystolic(sa, tasks, arch::DataflowPolicy::OPT2);
    Row row;
    row.runtime = sched.total_time_s;
    row.energy = sa.energyJ(sched.total_macs);
    row.power = row.energy / row.runtime;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 8",
                  "iso-energy / iso-area runtime, EDP and power comparison",
                  opts);
    const int64_t batch = opts.full ? 256 : 64;

    core::MirageAccelerator mirage;
    const arch::MirageSummary summary = mirage.summary();

    const std::vector<numerics::DataFormat> formats = {
        numerics::DataFormat::FP32,  numerics::DataFormat::BFLOAT16,
        numerics::DataFormat::HFP8,  numerics::DataFormat::INT12,
        numerics::DataFormat::INT8,  numerics::DataFormat::FMAC,
    };

    // Iso-energy uses the EnergyRatio interpretation (SA MAC count scaled
    // by the per-MAC energy ratio), which is the only reading of the
    // paper's "same energy per MAC" under which its Fig. 8 left panel is
    // reproducible; --full additionally prints the PowerBudget reading.
    const arch::IsoEnergyPolicy policy = arch::IsoEnergyPolicy::EnergyRatio;
    for (arch::IsoScenario scenario :
         {arch::IsoScenario::IsoEnergy, arch::IsoScenario::IsoArea}) {
        std::cout << "=== " << arch::toString(scenario)
                  << " (values normalized to Mirage; >1 means worse than "
                     "Mirage) ===\n";
        TablePrinter table({"model", "format", "arrays", "runtime(x)",
                            "EDP(x)", "power(x)"});
        for (const auto &net : models::allModels()) {
            const auto tasks = models::trainingTasks(net, batch);
            const core::PerformanceReport mrep =
                mirage.estimateTraining(net, batch);
            const Row mirage_row{mrep.time_s, mrep.energy_j,
                                 mrep.compute_power_w};

            for (numerics::DataFormat fmt : formats) {
                if (scenario == arch::IsoScenario::IsoArea &&
                    fmt == numerics::DataFormat::FMAC) {
                    continue; // no published area per MAC (paper omits too)
                }
                const arch::SystolicConfig cfg =
                    arch::scaledSystolic(scenario, policy, summary, fmt);
                const Row sa = systolicRow(cfg, tasks);
                table.addRow({net.name, numerics::toString(fmt),
                              std::to_string(cfg.num_arrays),
                              formatSig(sa.runtime / mirage_row.runtime, 3),
                              formatSig(sa.edp() / mirage_row.edp(), 3),
                              formatSig(sa.power / mirage_row.power, 3)});
            }
        }
        bench::emit(table, opts);
    }

    if (opts.full) {
        std::cout << "=== iso-energy, alternative PowerBudget reading "
                     "(SA compute power matched to Mirage's) ===\n";
        TablePrinter table({"model", "format", "arrays", "runtime(x)",
                            "EDP(x)", "power(x)"});
        for (const auto &net : models::allModels()) {
            const auto tasks = models::trainingTasks(net, batch);
            const core::PerformanceReport mrep =
                mirage.estimateTraining(net, batch);
            const Row mirage_row{mrep.time_s, mrep.energy_j,
                                 mrep.compute_power_w};
            for (numerics::DataFormat fmt : formats) {
                const arch::SystolicConfig cfg = arch::scaledSystolic(
                    arch::IsoScenario::IsoEnergy,
                    arch::IsoEnergyPolicy::PowerBudget, summary, fmt);
                const Row sa = systolicRow(cfg, tasks);
                table.addRow({net.name, numerics::toString(fmt),
                              std::to_string(cfg.num_arrays),
                              formatSig(sa.runtime / mirage_row.runtime, 3),
                              formatSig(sa.edp() / mirage_row.edp(), 3),
                              formatSig(sa.power / mirage_row.power, 3)});
            }
        }
        bench::emit(table, opts);
    }

    std::cout << "=== Mirage absolute training throughput per step "
                 "(macsPerSecond) ===\n";
    TablePrinter tput({"model", "time(s)", "MACs", "MAC/s"});
    for (const auto &net : models::allModels()) {
        const core::PerformanceReport mrep = mirage.estimateTraining(net, batch);
        mrep.validateUnits();
        tput.addRow({net.name, formatSig(mrep.time_s, 3),
                     std::to_string(mrep.macs),
                     formatSig(mrep.macsPerSecond(), 4)});
    }
    bench::emit(tput, opts);

    std::cout
        << "Mirage reference: runtime/EDP/power computed with the component\n"
           "model (compute scope, no SRAM): power = "
        << formatFixed(summary.power.computeTotal(), 2)
        << " W, pJ/MAC = " << formatFixed(summary.pj_per_mac, 3)
        << ", area = " << formatFixed(summary.area.stackedMm2(), 1)
        << " mm^2.\n"
           "Shape check (paper): iso-energy — Mirage is faster with lower\n"
           "EDP than every format (23.8x runtime / 32.1x EDP vs FMAC), at\n"
           "higher power; iso-area — INT12 wins runtime (~5.4x) but Mirage\n"
           "keeps lower power with comparable-or-better EDP.\n";
    return 0;
}
