/**
 * @file
 * Table I: validation accuracy of training under Mirage's BFP/RNS
 * numerics versus FP32, bfloat16, INT8, INT12, HFP8 and FMAC — every
 * format trained through the same harness on identical seeds.
 *
 * Substitution (see DESIGN.md): the paper's ImageNet/VOC/IWSLT models are
 * replaced by laptop-scale synthetic benchmarks (MLP on Gaussian clusters,
 * SmallCNN on pattern images, and — with --full — a tiny transformer on
 * majority sequences). Reproduction target: Mirage ~ FP32 ~ bfloat16 ~
 * INT12 ~ HFP8 ~ FMAC, with INT8 degrading.
 */

#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "models/trainable.h"
#include "nn/data.h"
#include "nn/model.h"
#include "rns/moduli_set.h"

namespace {

using namespace mirage;

struct Benchmark
{
    std::string name;
    nn::Dataset train, test;
    std::function<std::unique_ptr<nn::Sequential>(nn::GemmBackend *, Rng &)>
        make_model;
    std::function<std::unique_ptr<nn::Optimizer>()> make_opt;
    int epochs;
    int batch;
};

float
run(const Benchmark &b, numerics::DataFormat fmt,
    bfp::Rounding mirage_rounding = bfp::Rounding::Nearest)
{
    Rng rng(99);
    numerics::FormatGemmConfig fc;
    fc.moduli = rns::ModuliSet::special(5);
    fc.mirage_bfp.rounding = mirage_rounding;
    nn::FormatBackend backend(fmt, fc);
    auto model = b.make_model(&backend, rng);
    auto opt = b.make_opt();
    nn::TrainConfig cfg;
    cfg.epochs = b.epochs;
    cfg.batch_size = b.batch;
    return nn::trainClassifier(*model, *opt, b.train, b.test, cfg)
        .final_test_accuracy;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Table I", "training accuracy per data format", opts);

    std::vector<Benchmark> benchmarks;
    {
        const nn::Dataset all = nn::makeGaussianClusters(760, 6, 16, 3.2f, 1);
        Benchmark b;
        b.name = "MLP/clusters";
        b.train = all.slice(0, 512);
        b.test = all.slice(512, 248);
        b.make_model = [](nn::GemmBackend *be, Rng &rng) {
            return models::makeMlp(16, 48, 6, be, rng);
        };
        b.make_opt = [] { return std::make_unique<nn::Sgd>(0.05f, 0.9f); };
        b.epochs = opts.full ? 12 : 6;
        b.batch = 32;
        benchmarks.push_back(std::move(b));
    }
    {
        Benchmark b;
        b.name = "SmallCNN/patterns";
        b.train = nn::makePatternImages(opts.full ? 512 : 256, 8, 16, 0.5f, 2);
        b.test = nn::makePatternImages(opts.full ? 256 : 128, 8, 16, 0.5f, 3);
        b.make_model = [](nn::GemmBackend *be, Rng &rng) {
            return models::makeSmallCnn(8, be, rng);
        };
        b.make_opt = [] { return std::make_unique<nn::Sgd>(0.02f, 0.9f); };
        b.epochs = opts.full ? 10 : 5;
        b.batch = 32;
        benchmarks.push_back(std::move(b));
    }
    if (opts.full) {
        Benchmark b;
        b.name = "TinyTransformer/majority";
        b.train = nn::makeMajoritySequences(512, 4, 12, 4);
        b.test = nn::makeMajoritySequences(256, 4, 12, 5);
        b.make_model = [](nn::GemmBackend *be, Rng &rng) {
            return models::makeTinyTransformer(4, 4, 16, 2, 1, be, rng);
        };
        b.make_opt = [] { return std::make_unique<nn::Adam>(3e-3f); };
        b.epochs = 10;
        b.batch = 32;
        benchmarks.push_back(std::move(b));
    }

    const std::vector<numerics::DataFormat> formats = {
        numerics::DataFormat::MirageBfpRns, numerics::DataFormat::FP32,
        numerics::DataFormat::BFLOAT16,     numerics::DataFormat::INT8,
        numerics::DataFormat::INT12,        numerics::DataFormat::HFP8,
        numerics::DataFormat::FMAC,
    };

    std::vector<std::string> headers = {"benchmark"};
    for (numerics::DataFormat f : formats)
        headers.push_back(numerics::toString(f));
    headers.push_back("Mirage(trunc)");
    TablePrinter table(headers);
    for (const Benchmark &b : benchmarks) {
        std::vector<std::string> row = {b.name};
        for (numerics::DataFormat f : formats)
            row.push_back(formatFixed(100.0 * run(b, f), 1));
        // Ablation: the paper's pure LSB truncation — its rounding bias
        // stalls training at this miniature scale (see EXPERIMENTS.md).
        row.push_back(formatFixed(
            100.0 * run(b, numerics::DataFormat::MirageBfpRns,
                        bfp::Rounding::Truncate),
            1));
        table.addRow(row);
        std::cout << "finished " << b.name << "\n";
    }
    std::cout << "\nvalidation accuracy (%):\n";
    bench::emit(table, opts);

    std::cout << "Shape check (paper Table I): Mirage matches FP32 within\n"
                 "noise; bfloat16/INT12/HFP8/FMAC comparable; INT8 visibly\n"
                 "behind (2-12 points in the paper). The final column is a\n"
                 "rounding-mode ablation (paper's truncation), not a paper\n"
                 "row.\n";
    return 0;
}
