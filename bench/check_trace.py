#!/usr/bin/env python3
"""Structural validator for the Chrome traces exported by --trace.

Checks that a trace produced by obs::writeChromeTraceFile is something
Perfetto / chrome://tracing will actually load and that the span
structure is sane:

* the file is valid JSON with a non-empty "traceEvents" array,
* every event is either a complete event ("ph": "X") or a flow point
  ("ph": "s"/"t"/"f" with an integer "id"), with a non-empty name,
  numeric ts >= 0 (and dur >= 0 for complete events), integer pid/tid,
* within each (pid, tid) timeline the complete events nest: replaying
  them in start order against a stack, every event fits inside its
  enclosing open span (up to --epsilon-us of clock slack, since
  start/end pairs come from separate steady_clock reads),
* flow events pair up: every flow id has at least one start ('s') and
  one finish ('f'), starts precede finishes, and every flow point's
  timestamp lands inside a complete event on the same thread (the
  "bp":"e" enclosing-slice binding Perfetto uses to anchor the arrow),
* with --min-flow-threads N, at least one flow id must touch >= N
  distinct threads — the causal arrow really crosses threads,
* every --require name appears at least once (comma-separated list,
  repeatable) — this is how CI pins the instrumentation points that
  must not silently disappear from serve_soak/train_soak.

Usage:
  check_trace.py TRACE.json [--require serve.admit,serve.flush]
                            [--epsilon-us 0.001] [--min-flow-threads 2]

Exits non-zero on any failure, printing each violation.
"""

import argparse
import collections
import json
import sys

FLOW_PHASES = ("s", "t", "f")


def fail(msg):
    print(f"FAIL  {msg}")
    return False


def validate_events(events):
    ok = True
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            ok = fail(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            ok = fail(f"{where}: missing or empty name")
        ph = ev.get("ph")
        if ph == "X":
            keys = ("ts", "dur")
        elif ph in FLOW_PHASES:
            keys = ("ts",)
            flow_id = ev.get("id")
            if not isinstance(flow_id, int) or isinstance(flow_id, bool):
                ok = fail(f"{where} ({name!r}): flow event id is"
                          f" {flow_id!r}, expected integer")
        else:
            ok = fail(f"{where} ({name!r}): ph is {ph!r}, expected"
                      f" complete event 'X' or flow point 's'/'t'/'f'")
            continue
        for key in keys:
            val = ev.get(key)
            if not isinstance(val, (int, float)) or isinstance(val, bool) \
                    or val < 0:
                ok = fail(f"{where} ({name!r}): {key} is {val!r},"
                          f" expected number >= 0")
        for key in ("pid", "tid"):
            val = ev.get(key)
            if not isinstance(val, int) or isinstance(val, bool):
                ok = fail(f"{where} ({name!r}): {key} is {val!r},"
                          f" expected integer")
    return ok


def complete_events(events):
    return [ev for ev in events
            if isinstance(ev, dict) and ev.get("ph") == "X"
            and isinstance(ev.get("ts"), (int, float))]


def flow_events(events):
    return [ev for ev in events
            if isinstance(ev, dict) and ev.get("ph") in FLOW_PHASES
            and isinstance(ev.get("ts"), (int, float))
            and isinstance(ev.get("id"), int)]


def check_nesting(events, epsilon_us):
    """Spans come from RAII guards, so within one thread they must nest:
    sort by start (ties: longer span first, so the enclosing span opens
    before its children), replay against a stack, and require each event
    to end within the innermost open span, modulo epsilon of slack for
    the independent steady_clock reads at start and end."""
    ok = True
    by_tid = collections.defaultdict(list)
    for ev in complete_events(events):
        by_tid[(ev.get("pid"), ev.get("tid"))].append(ev)
    for (pid, tid), evs in sorted(by_tid.items(), key=str):
        evs.sort(key=lambda e: (e["ts"], -e.get("dur", 0)))
        stack = []  # (name, end_ts)
        for ev in evs:
            start = ev["ts"]
            end = start + ev.get("dur", 0)
            while stack and stack[-1][1] <= start + epsilon_us:
                stack.pop()
            if stack and end > stack[-1][1] + epsilon_us:
                ok = fail(
                    f"tid {tid}: {ev['name']!r} [{start:.3f},"
                    f" {end:.3f}]us overlaps enclosing"
                    f" {stack[-1][0]!r} ending at {stack[-1][1]:.3f}us")
            stack.append((ev["name"], end))
    return ok


def check_flows(events, epsilon_us, min_flow_threads):
    """Flow points must pair (>=1 's' and >=1 'f' per id, starts before
    finishes) and must bind: each point's ts falls inside a complete
    event on the same thread, since the exporter writes "bp":"e"."""
    flows = flow_events(events)
    if not flows:
        if min_flow_threads > 0:
            return fail("no flow events found, but --min-flow-threads"
                        f" {min_flow_threads} was requested")
        return True

    ok = True

    # Binding: every flow point sits inside an X slice on its thread.
    slices = collections.defaultdict(list)
    for ev in complete_events(events):
        slices[(ev.get("pid"), ev.get("tid"))].append(
            (ev["ts"], ev["ts"] + ev.get("dur", 0)))
    for key in slices:
        slices[key].sort()
    unbound = 0
    for ev in flows:
        ts = ev["ts"]
        bound = any(s - epsilon_us <= ts <= e + epsilon_us
                    for s, e in slices.get((ev.get("pid"), ev.get("tid")),
                                           ()))
        if not bound:
            unbound += 1
            if unbound <= 5:
                ok = fail(f"flow point id={ev['id']} ph={ev['ph']!r} at"
                          f" ts={ts:.3f}us on tid {ev.get('tid')} is not"
                          f" inside any complete event on that thread")
    if unbound > 5:
        ok = fail(f"... and {unbound - 5} more unbound flow points")

    # Pairing: group by id. The per-thread ring buffers evict oldest
    # events first, so an id may legitimately be missing its 's' (or
    # 'f') point in a long run — incomplete ids are tolerated, but at
    # least one id must carry a complete s->f arrow, and points that ARE
    # present must be causally ordered.
    by_id = collections.defaultdict(list)
    for ev in flows:
        by_id[ev["id"]].append(ev)
    complete = 0
    incomplete = 0
    complete_threads = 0
    for flow_id, evs in sorted(by_id.items()):
        starts = [ev["ts"] for ev in evs if ev["ph"] == "s"]
        finishes = [ev["ts"] for ev in evs if ev["ph"] == "f"]
        if starts and finishes:
            if min(starts) > max(finishes) + epsilon_us:
                ok = fail(f"flow id {flow_id}: start at {min(starts):.3f}us"
                          f" is after finish at {max(finishes):.3f}us")
            complete += 1
            complete_threads = max(
                complete_threads,
                len({(ev.get("pid"), ev.get("tid")) for ev in evs}))
        else:
            incomplete += 1

    if complete == 0:
        ok = fail("no flow id has both a start ('s') and a finish ('f')")
    elif min_flow_threads > 0 and complete_threads < min_flow_threads:
        ok = fail(f"no complete flow id touches >= {min_flow_threads}"
                  f" threads (max seen: {complete_threads})")
    print(f"  flows: {len(by_id)} ids ({complete} complete s->f,"
          f" {incomplete} truncated by ring eviction), widest complete"
          f" id spans {complete_threads} thread(s)")
    return ok


def check_required(events, required):
    ok = True
    names = {ev.get("name") for ev in events if isinstance(ev, dict)}
    for name in required:
        if name not in names:
            ok = fail(f"required span {name!r} not present in trace")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON to validate")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME[,NAME...]",
                        help="span names that must appear; repeatable,"
                             " comma-separated")
    parser.add_argument("--epsilon-us", type=float, default=0.001,
                        help="clock slack allowed in the nesting check")
    parser.add_argument("--min-flow-threads", type=int, default=0,
                        help="require at least one flow id touching this"
                             " many distinct threads")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL  cannot load {args.trace}: {exc}")
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"FAIL  {args.trace}: traceEvents missing or empty")
        return 1

    required = [name for spec in args.require
                for name in spec.split(",") if name]

    ok = validate_events(events)
    ok &= check_nesting(events, args.epsilon_us)
    ok &= check_flows(events, args.epsilon_us, args.min_flow_threads)
    ok &= check_required(events, required)

    names = collections.Counter(
        ev.get("name") for ev in events if isinstance(ev, dict))
    tids = {(ev.get("pid"), ev.get("tid"))
            for ev in events if isinstance(ev, dict)}
    print(f"{args.trace}: {len(events)} events, {len(names)} span names,"
          f" {len(tids)} threads")
    for name, count in names.most_common():
        print(f"  {name}: {count}")
    print("trace check:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
