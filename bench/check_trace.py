#!/usr/bin/env python3
"""Structural validator for the Chrome traces exported by --trace.

Checks that a trace produced by obs::writeChromeTraceFile is something
Perfetto / chrome://tracing will actually load and that the span
structure is sane:

* the file is valid JSON with a non-empty "traceEvents" array,
* every event is a complete event ("ph": "X") with a non-empty name,
  numeric ts >= 0 and dur >= 0, and integer pid/tid,
* within each (pid, tid) timeline the events nest: replaying them in
  start order against a stack, every event fits inside its enclosing
  open span (up to --epsilon-us of clock slack, since start/end pairs
  come from separate steady_clock reads),
* every --require name appears at least once (comma-separated list,
  repeatable) — this is how CI pins the instrumentation points that
  must not silently disappear from serve_soak/train_soak.

Usage:
  check_trace.py TRACE.json [--require serve.admit,serve.flush]
                            [--epsilon-us 0.001]

Exits non-zero on any failure, printing each violation.
"""

import argparse
import collections
import json
import sys


def fail(msg):
    print(f"FAIL  {msg}")
    return False


def validate_events(events):
    ok = True
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            ok = fail(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            ok = fail(f"{where}: missing or empty name")
        if ev.get("ph") != "X":
            ok = fail(f"{where} ({name!r}): ph is {ev.get('ph')!r},"
                      f" expected complete event 'X'")
        for key in ("ts", "dur"):
            val = ev.get(key)
            if not isinstance(val, (int, float)) or isinstance(val, bool) \
                    or val < 0:
                ok = fail(f"{where} ({name!r}): {key} is {val!r},"
                          f" expected number >= 0")
        for key in ("pid", "tid"):
            val = ev.get(key)
            if not isinstance(val, int) or isinstance(val, bool):
                ok = fail(f"{where} ({name!r}): {key} is {val!r},"
                          f" expected integer")
    return ok


def check_nesting(events, epsilon_us):
    """Spans come from RAII guards, so within one thread they must nest:
    sort by start (ties: longer span first, so the enclosing span opens
    before its children), replay against a stack, and require each event
    to end within the innermost open span, modulo epsilon of slack for
    the independent steady_clock reads at start and end."""
    ok = True
    by_tid = collections.defaultdict(list)
    for ev in events:
        if isinstance(ev, dict) and isinstance(ev.get("ts"), (int, float)):
            by_tid[(ev.get("pid"), ev.get("tid"))].append(ev)
    for (pid, tid), evs in sorted(by_tid.items(), key=str):
        evs.sort(key=lambda e: (e["ts"], -e.get("dur", 0)))
        stack = []  # (name, end_ts)
        for ev in evs:
            start = ev["ts"]
            end = start + ev.get("dur", 0)
            while stack and stack[-1][1] <= start + epsilon_us:
                stack.pop()
            if stack and end > stack[-1][1] + epsilon_us:
                ok = fail(
                    f"tid {tid}: {ev['name']!r} [{start:.3f},"
                    f" {end:.3f}]us overlaps enclosing"
                    f" {stack[-1][0]!r} ending at {stack[-1][1]:.3f}us")
            stack.append((ev["name"], end))
    return ok


def check_required(events, required):
    ok = True
    names = {ev.get("name") for ev in events if isinstance(ev, dict)}
    for name in required:
        if name not in names:
            ok = fail(f"required span {name!r} not present in trace")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON to validate")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME[,NAME...]",
                        help="span names that must appear; repeatable,"
                             " comma-separated")
    parser.add_argument("--epsilon-us", type=float, default=0.001,
                        help="clock slack allowed in the nesting check")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL  cannot load {args.trace}: {exc}")
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"FAIL  {args.trace}: traceEvents missing or empty")
        return 1

    required = [name for spec in args.require
                for name in spec.split(",") if name]

    ok = validate_events(events)
    ok &= check_nesting(events, args.epsilon_us)
    ok &= check_required(events, required)

    names = collections.Counter(
        ev.get("name") for ev in events if isinstance(ev, dict))
    tids = {(ev.get("pid"), ev.get("tid"))
            for ev in events if isinstance(ev, dict)}
    print(f"{args.trace}: {len(events)} events, {len(names)} span names,"
          f" {len(tids)} threads")
    for name, count in names.most_common():
        print(f"  {name}: {count}")
    print("trace check:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
