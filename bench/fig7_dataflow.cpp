/**
 * @file
 * Fig. 7: dataflow study. (a) per-layer training latency of AlexNet on
 * Mirage (DF1/DF2) and on a 1 GHz systolic array of the same geometry
 * (DF1/DF2/DF3), split by training op. (b) per-model step latency under
 * fixed dataflows and the OPT1/OPT2 flexible policies, normalized to DF1.
 */

#include <iostream>
#include <vector>

#include "arch/perf_model.h"
#include "arch/systolic.h"
#include "bench/bench_util.h"
#include "core/schedule.h"
#include "models/zoo.h"

namespace {

using namespace mirage;

arch::SystolicConfig
matchedSystolic()
{
    arch::SystolicConfig cfg;
    cfg.spec = arch::systolicSpec(numerics::DataFormat::INT12); // 1 GHz
    cfg.rows = 16;
    cfg.cols = 32;
    cfg.num_arrays = 8;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Fig. 7", "dataflow comparison (Mirage vs systolic array)",
                  opts);
    const int64_t batch = opts.full ? 256 : 64;

    const arch::MiragePerfModel mirage{arch::MirageConfig{}};
    const arch::SystolicPerfModel sa{matchedSystolic()};

    // ---- (a) per-layer latency, AlexNet -------------------------------
    {
        std::cout << "(a) AlexNet per-layer latency (ns), batch " << batch
                  << "\n";
        TablePrinter table({"layer", "op", "Mirage DF1", "Mirage DF2",
                            "SA DF1", "SA DF2", "SA DF3"});
        const models::ModelShape net = models::alexNet();
        for (const auto &task : models::trainingTasks(net, batch)) {
            std::vector<std::string> row = {task.layer,
                                            arch::toString(task.op)};
            for (arch::Dataflow df :
                 {arch::Dataflow::DF1, arch::Dataflow::DF2}) {
                row.push_back(formatSig(
                    mirage.gemm(task.shape, df, task.count).time_s * 1e9, 4));
            }
            for (arch::Dataflow df : {arch::Dataflow::DF1, arch::Dataflow::DF2,
                                      arch::Dataflow::DF3}) {
                row.push_back(formatSig(
                    sa.gemm(task.shape, df, task.count).time_s * 1e9, 4));
            }
            table.addRow(row);
        }
        bench::emit(table, opts);
    }

    // ---- (b) per-model normalized step latency -----------------------
    {
        std::cout << "(b) training-step latency normalized to DF1\n";
        using arch::DataflowPolicy;
        const std::vector<DataflowPolicy> mirage_policies = {
            DataflowPolicy::FixedDF1, DataflowPolicy::FixedDF2,
            DataflowPolicy::OPT1, DataflowPolicy::OPT2};
        const std::vector<DataflowPolicy> sa_policies = {
            DataflowPolicy::FixedDF1, DataflowPolicy::FixedDF2,
            DataflowPolicy::FixedDF3, DataflowPolicy::OPT1,
            DataflowPolicy::OPT2};

        TablePrinter table({"model", "target", "DF1", "DF2", "DF3", "OPT1",
                            "OPT2"});
        for (const auto &net : models::allModels()) {
            const auto tasks = models::trainingTasks(net, batch);

            std::vector<std::string> mrow = {net.name, "Mirage"};
            const double m_base =
                core::scheduleMirage(mirage, tasks, DataflowPolicy::FixedDF1)
                    .total_time_s;
            for (DataflowPolicy p : mirage_policies) {
                const double t =
                    core::scheduleMirage(mirage, tasks, p).total_time_s;
                mrow.push_back(formatFixed(t / m_base, 3));
                if (p == DataflowPolicy::FixedDF2)
                    mrow.push_back("n/a"); // DF3 unavailable on Mirage
            }
            table.addRow(mrow);

            std::vector<std::string> srow = {net.name, "SA 1GHz"};
            const double s_base =
                core::scheduleSystolic(sa, tasks, DataflowPolicy::FixedDF1)
                    .total_time_s;
            for (DataflowPolicy p : sa_policies) {
                const double t =
                    core::scheduleSystolic(sa, tasks, p).total_time_s;
                srow.push_back(formatFixed(t / s_base, 3));
            }
            table.addRow(srow);
        }
        bench::emit(table, opts);
    }

    std::cout << "Shape check (paper): on Mirage the fixed dataflows are\n"
                 "close and OPT1/OPT2 bring minor gains; on the systolic\n"
                 "array dataflow choice matters more (OPT1 ~11.7%, OPT2\n"
                 "~12.5% over the best fixed dataflow on average).\n";
    return 0;
}
