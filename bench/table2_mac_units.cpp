/**
 * @file
 * Table II: performance, power and area of MAC units — Mirage's
 * RNS-MMVMUs (from our component model) versus systolic MAC units in each
 * baseline data format (paper's synthesis constants).
 */

#include <iostream>

#include "arch/energy_model.h"
#include "arch/systolic.h"
#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace mirage;
    const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
    bench::banner("Table II", "pJ/MAC, mm^2/MAC and clock rate per format",
                  opts);

    const arch::MirageSummary s =
        arch::MirageEnergyModel(arch::MirageConfig{}).summary();
    const double mirage_mm2_per_mac =
        s.area.total() / static_cast<double>(s.macUnits());

    TablePrinter table({"format", "pJ/MAC", "mm^2/MAC", "f (Hz)",
                        "paper pJ/MAC"});
    table.addRow({"Mirage", formatFixed(s.pj_per_mac, 3),
                  formatSig(mirage_mm2_per_mac, 3), "10G", "0.21"});
    struct Paper { numerics::DataFormat fmt; const char *pj; };
    for (const Paper &p : {Paper{numerics::DataFormat::FP32, "12.42"},
                           Paper{numerics::DataFormat::BFLOAT16, "3.20"},
                           Paper{numerics::DataFormat::HFP8, "1.47"},
                           Paper{numerics::DataFormat::INT12, "0.71"},
                           Paper{numerics::DataFormat::INT8, "0.42"},
                           Paper{numerics::DataFormat::FMAC, "0.11"}}) {
        const arch::SystolicSpec spec = arch::systolicSpec(p.fmt);
        table.addRow({numerics::toString(p.fmt),
                      formatFixed(spec.pj_per_mac, 2),
                      spec.mm2_per_mac > 0 ? formatSig(spec.mm2_per_mac, 2)
                                           : std::string("N/A"),
                      spec.clock_hz >= 1e9 ? "1G" : "500M", p.pj});
    }
    bench::emit(table, opts);

    std::cout
        << "Mirage scope: lasers, MRRs, DAC/ADC, TIA, RNS+BFP conversion,\n"
           "FP32 accumulators (no SRAM), divided by 40.96 TMAC/s peak.\n"
           "Shape check: Mirage's 10 GHz clock and sub-pJ/MAC undercut all\n"
           "FP formats; FMAC stays cheaper per MAC but 20x slower per unit;\n"
           "Mirage trades area (mm^2/MAC far above CMOS MACs).\n";
    return 0;
}
