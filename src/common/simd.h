#ifndef MIRAGE_COMMON_SIMD_H
#define MIRAGE_COMMON_SIMD_H

/**
 * @file
 * Portable data-level parallelism for the panel kernels: a small dispatch
 * layer over AVX2 (x86-64), NEON (aarch64), and a scalar fallback.
 *
 * Every operation here is **bit-identical to its scalar reference**:
 *
 * - The integer dots and axpys are exact 64-bit arithmetic, so lane order
 *   cannot change the result.
 * - The FP32 axpys perform one IEEE multiply followed by one IEEE add per
 *   element — the same two roundings, in the same per-element order, as
 *   the scalar loop. No FMA contraction is used (the AVX2 bodies are
 *   compiled with target("avx2") only, so the compiler cannot fuse), and
 *   each output element's accumulation chain is untouched: lanes map to
 *   distinct output columns, never to partial sums of one element.
 *
 * Bit-identity is what lets the vectorized kernels keep the determinism
 * contract of runtime::parallelFor (thread-count-invariant results) *and*
 * the committed golden values of every accuracy experiment; it is verified
 * against the scalar reference by tests/test_simd.cpp.
 *
 * Dispatch: on x86-64 the AVX2 bodies are compiled as target("avx2")
 * functions and selected at runtime via __builtin_cpu_supports, so the
 * build needs no -mavx2 and the binary stays safe on pre-AVX2 hosts. On
 * aarch64 NEON is baseline. Set MIRAGE_SIMD=scalar (or 0) to force the
 * scalar reference — results are identical either way; the switch exists
 * for benchmarking the vector speedup and for debugging.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MIRAGE_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define MIRAGE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace mirage {
namespace simd {

// ---------------------------------------------------------------------------
// Scalar reference implementations (always available; used as the fallback
// and as the golden reference in tests).
// ---------------------------------------------------------------------------

namespace scalar {

/** Exact signed dot: sum of int32*int32 products in int64. */
inline int64_t
dotI32I64(const int32_t *a, const int32_t *b, int n)
{
    int64_t sum = 0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<int64_t>(a[i]) * b[i];
    return sum;
}

/** Exact unsigned dot: sum of uint32*uint32 products in uint64. The caller
 *  guarantees the raw accumulation cannot overflow (values < 2^21 and
 *  n < 2^22 in the BFP/RNS path). */
inline uint64_t
dotU32U64(const uint32_t *a, const uint32_t *b, int n)
{
    uint64_t sum = 0;
    for (int i = 0; i < n; ++i)
        sum += static_cast<uint64_t>(a[i]) * b[i];
    return sum;
}

/** Exact dot of uint64 arrays whose values fit in 32 bits (residues).
 *  The caller guarantees the raw accumulation cannot overflow. */
inline uint64_t
dotU64Lo32(const uint64_t *a, const uint64_t *b, int n)
{
    uint64_t sum = 0;
    for (int i = 0; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

/** r[j] += a * b[j] (one multiply, one add per element). */
inline void
axpyF32(float a, const float *b, float *r, int n)
{
    for (int j = 0; j < n; ++j)
        r[j] += a * b[j];
}

/** Four-row FP32 axpy sharing every b[j] load. */
inline void
axpy4F32(float a0, float a1, float a2, float a3, const float *b, float *r0,
         float *r1, float *r2, float *r3, int n)
{
    for (int j = 0; j < n; ++j) {
        const float bv = b[j];
        r0[j] += a0 * bv;
        r1[j] += a1 * bv;
        r2[j] += a2 * bv;
        r3[j] += a3 * bv;
    }
}

/** r[j] += (int64)a * b[j] over int32 operands into an int64 panel. */
inline void
axpyI32I64(int32_t a, const int32_t *b, int64_t *r, int n)
{
    for (int j = 0; j < n; ++j)
        r[j] += static_cast<int64_t>(a) * b[j];
}

/** Four-row int32->int64 axpy sharing every b[j] load. */
inline void
axpy4I32I64(int32_t a0, int32_t a1, int32_t a2, int32_t a3, const int32_t *b,
            int64_t *r0, int64_t *r1, int64_t *r2, int64_t *r3, int n)
{
    for (int j = 0; j < n; ++j) {
        const int64_t bv = b[j];
        r0[j] += a0 * bv;
        r1[j] += a1 * bv;
        r2[j] += a2 * bv;
        r3[j] += a3 * bv;
    }
}

/** r[j] += a * b[j] over uint64 values that fit in 32 bits; exact as long
 *  as the caller's reduction cadence bounds the raw accumulation. */
inline void
axpyU64Lo32(uint64_t a, const uint64_t *b, uint64_t *r, int n)
{
    for (int j = 0; j < n; ++j)
        r[j] += a * b[j];
}

/** Four-row uint64(lo32) axpy sharing every b[j] load. */
inline void
axpy4U64Lo32(uint64_t a0, uint64_t a1, uint64_t a2, uint64_t a3,
             const uint64_t *b, uint64_t *r0, uint64_t *r1, uint64_t *r2,
             uint64_t *r3, int n)
{
    for (int j = 0; j < n; ++j) {
        const uint64_t bv = b[j];
        r0[j] += a0 * bv;
        r1[j] += a1 * bv;
        r2[j] += a2 * bv;
        r3[j] += a3 * bv;
    }
}

/**
 * 4 x jt GEMM panel: acc[r][j] += sum_k a[r*lda + k] * b[k*ldb + j] for
 * k in [0, kd), r in [0, 4), j in [0, jt). `acc` is row-major 4 x jt.
 * Rows whose a[r][k] is zero are skipped for that k — exactly the zero
 * skip of the blocked kernels this backs (and for FP32 it dodges 0 * inf).
 * Each element accumulates in ascending k with one multiply + one add per
 * step, so every backend — including the register-tiled vector ones — is
 * bit-identical to this reference.
 */
inline void
gemmPanel4F32(const float *a, int64_t lda, const float *b, int64_t ldb,
              int kd, float *acc, int jt)
{
    for (int k = 0; k < kd; ++k) {
        const float *b_row = b + static_cast<size_t>(k) * ldb;
        for (int r = 0; r < 4; ++r) {
            const float ar = a[static_cast<size_t>(r) * lda + k];
            if (ar == 0.0f)
                continue;
            float *row = acc + static_cast<size_t>(r) * jt;
            for (int j = 0; j < jt; ++j)
                row[j] += ar * b_row[j];
        }
    }
}

/** Integer panel twin of gemmPanel4F32 (int32 operands, int64 panel). */
inline void
gemmPanel4I32I64(const int32_t *a, int64_t lda, const int32_t *b, int64_t ldb,
                 int kd, int64_t *acc, int jt)
{
    for (int k = 0; k < kd; ++k) {
        const int32_t *b_row = b + static_cast<size_t>(k) * ldb;
        for (int r = 0; r < 4; ++r) {
            const int32_t ar = a[static_cast<size_t>(r) * lda + k];
            if (ar == 0)
                continue;
            int64_t *row = acc + static_cast<size_t>(r) * jt;
            for (int j = 0; j < jt; ++j)
                row[j] += static_cast<int64_t>(ar) * b_row[j];
        }
    }
}

/** Residue panel twin of gemmPanel4F32: uint64 values that fit in 32 bits,
 *  raw (unreduced) accumulation — the caller bounds kd so sums cannot
 *  overflow, and reduces between calls. */
inline void
gemmPanel4U64Lo32(const uint64_t *a, int64_t lda, const uint64_t *b,
                  int64_t ldb, int kd, uint64_t *acc, int jt)
{
    for (int k = 0; k < kd; ++k) {
        const uint64_t *b_row = b + static_cast<size_t>(k) * ldb;
        for (int r = 0; r < 4; ++r) {
            const uint64_t ar = a[static_cast<size_t>(r) * lda + k];
            if (ar == 0)
                continue;
            uint64_t *row = acc + static_cast<size_t>(r) * jt;
            for (int j = 0; j < jt; ++j)
                row[j] += ar * b_row[j];
        }
    }
}

} // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 bodies (x86-64). Compiled with a per-function target attribute, so
// no global -mavx2 is needed and non-AVX2 hosts never execute them.
// target("avx2") deliberately omits "fma": the FP32 bodies must stay
// mul-then-add to match the scalar reference bit for bit.
// ---------------------------------------------------------------------------

#if defined(MIRAGE_SIMD_AVX2)

namespace avx2 {

__attribute__((target("avx2"))) inline int64_t
dotI32I64(const int32_t *a, const int32_t *b, int n)
{
    __m256i acc = _mm256_setzero_si256();
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        // Sign-extend 4 x i32 to the low halves of 4 x i64 lanes;
        // _mm256_mul_epi32 multiplies those low halves into full i64.
        const __m256i av = _mm256_cvtepi32_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + i)));
        const __m256i bv = _mm256_cvtepi32_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + i)));
        acc = _mm256_add_epi64(acc, _mm256_mul_epi32(av, bv));
    }
    alignas(32) int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    int64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        sum += static_cast<int64_t>(a[i]) * b[i];
    return sum;
}

__attribute__((target("avx2"))) inline uint64_t
dotU32U64(const uint32_t *a, const uint32_t *b, int n)
{
    __m256i acc = _mm256_setzero_si256();
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i av = _mm256_cvtepu32_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + i)));
        const __m256i bv = _mm256_cvtepu32_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + i)));
        acc = _mm256_add_epi64(acc, _mm256_mul_epu32(av, bv));
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        sum += static_cast<uint64_t>(a[i]) * b[i];
    return sum;
}

__attribute__((target("avx2"))) inline uint64_t
dotU64Lo32(const uint64_t *a, const uint64_t *b, int n)
{
    __m256i acc = _mm256_setzero_si256();
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        // Values fit in 32 bits, so multiplying the low halves is exact.
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const __m256i bv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + i));
        acc = _mm256_add_epi64(acc, _mm256_mul_epu32(av, bv));
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

__attribute__((target("avx2"))) inline void
axpyF32(float a, const float *b, float *r, int n)
{
    const __m256 av = _mm256_set1_ps(a);
    int j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 bv = _mm256_loadu_ps(b + j);
        _mm256_storeu_ps(
            r + j, _mm256_add_ps(_mm256_loadu_ps(r + j),
                                 _mm256_mul_ps(av, bv)));
    }
    for (; j < n; ++j)
        r[j] += a * b[j];
}

__attribute__((target("avx2"))) inline void
axpy4F32(float a0, float a1, float a2, float a3, const float *b, float *r0,
         float *r1, float *r2, float *r3, int n)
{
    const __m256 a0v = _mm256_set1_ps(a0);
    const __m256 a1v = _mm256_set1_ps(a1);
    const __m256 a2v = _mm256_set1_ps(a2);
    const __m256 a3v = _mm256_set1_ps(a3);
    int j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 bv = _mm256_loadu_ps(b + j);
        _mm256_storeu_ps(r0 + j, _mm256_add_ps(_mm256_loadu_ps(r0 + j),
                                               _mm256_mul_ps(a0v, bv)));
        _mm256_storeu_ps(r1 + j, _mm256_add_ps(_mm256_loadu_ps(r1 + j),
                                               _mm256_mul_ps(a1v, bv)));
        _mm256_storeu_ps(r2 + j, _mm256_add_ps(_mm256_loadu_ps(r2 + j),
                                               _mm256_mul_ps(a2v, bv)));
        _mm256_storeu_ps(r3 + j, _mm256_add_ps(_mm256_loadu_ps(r3 + j),
                                               _mm256_mul_ps(a3v, bv)));
    }
    for (; j < n; ++j) {
        const float bv = b[j];
        r0[j] += a0 * bv;
        r1[j] += a1 * bv;
        r2[j] += a2 * bv;
        r3[j] += a3 * bv;
    }
}

__attribute__((target("avx2"))) inline void
axpyI32I64(int32_t a, const int32_t *b, int64_t *r, int n)
{
    const __m256i av = _mm256_set1_epi64x(a);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i bv = _mm256_cvtepi32_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + j)));
        const __m256i rv =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(r + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(r + j),
                            _mm256_add_epi64(rv, _mm256_mul_epi32(av, bv)));
    }
    for (; j < n; ++j)
        r[j] += static_cast<int64_t>(a) * b[j];
}

__attribute__((target("avx2"))) inline void
axpy4I32I64(int32_t a0, int32_t a1, int32_t a2, int32_t a3, const int32_t *b,
            int64_t *r0, int64_t *r1, int64_t *r2, int64_t *r3, int n)
{
    const __m256i a0v = _mm256_set1_epi64x(a0);
    const __m256i a1v = _mm256_set1_epi64x(a1);
    const __m256i a2v = _mm256_set1_epi64x(a2);
    const __m256i a3v = _mm256_set1_epi64x(a3);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i bv = _mm256_cvtepi32_epi64(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + j)));
        __m256i rv = _mm256_loadu_si256(reinterpret_cast<__m256i *>(r0 + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(r0 + j),
                            _mm256_add_epi64(rv, _mm256_mul_epi32(a0v, bv)));
        rv = _mm256_loadu_si256(reinterpret_cast<__m256i *>(r1 + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(r1 + j),
                            _mm256_add_epi64(rv, _mm256_mul_epi32(a1v, bv)));
        rv = _mm256_loadu_si256(reinterpret_cast<__m256i *>(r2 + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(r2 + j),
                            _mm256_add_epi64(rv, _mm256_mul_epi32(a2v, bv)));
        rv = _mm256_loadu_si256(reinterpret_cast<__m256i *>(r3 + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(r3 + j),
                            _mm256_add_epi64(rv, _mm256_mul_epi32(a3v, bv)));
    }
    for (; j < n; ++j) {
        const int64_t bv = b[j];
        r0[j] += a0 * bv;
        r1[j] += a1 * bv;
        r2[j] += a2 * bv;
        r3[j] += a3 * bv;
    }
}

__attribute__((target("avx2"))) inline void
axpyU64Lo32(uint64_t a, const uint64_t *b, uint64_t *r, int n)
{
    const __m256i av = _mm256_set1_epi64x(static_cast<int64_t>(a));
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i bv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + j));
        const __m256i rv =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(r + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(r + j),
                            _mm256_add_epi64(rv, _mm256_mul_epu32(av, bv)));
    }
    for (; j < n; ++j)
        r[j] += a * b[j];
}

__attribute__((target("avx2"))) inline void
axpy4U64Lo32(uint64_t a0, uint64_t a1, uint64_t a2, uint64_t a3,
             const uint64_t *b, uint64_t *r0, uint64_t *r1, uint64_t *r2,
             uint64_t *r3, int n)
{
    const __m256i a0v = _mm256_set1_epi64x(static_cast<int64_t>(a0));
    const __m256i a1v = _mm256_set1_epi64x(static_cast<int64_t>(a1));
    const __m256i a2v = _mm256_set1_epi64x(static_cast<int64_t>(a2));
    const __m256i a3v = _mm256_set1_epi64x(static_cast<int64_t>(a3));
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i bv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + j));
        __m256i rv = _mm256_loadu_si256(reinterpret_cast<__m256i *>(r0 + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(r0 + j),
                            _mm256_add_epi64(rv, _mm256_mul_epu32(a0v, bv)));
        rv = _mm256_loadu_si256(reinterpret_cast<__m256i *>(r1 + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(r1 + j),
                            _mm256_add_epi64(rv, _mm256_mul_epu32(a1v, bv)));
        rv = _mm256_loadu_si256(reinterpret_cast<__m256i *>(r2 + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(r2 + j),
                            _mm256_add_epi64(rv, _mm256_mul_epu32(a2v, bv)));
        rv = _mm256_loadu_si256(reinterpret_cast<__m256i *>(r3 + j));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(r3 + j),
                            _mm256_add_epi64(rv, _mm256_mul_epu32(a3v, bv)));
    }
    for (; j < n; ++j) {
        const uint64_t bv = b[j];
        r0[j] += a0 * bv;
        r1[j] += a1 * bv;
        r2[j] += a2 * bv;
        r3[j] += a3 * bv;
    }
}

/**
 * Register-tiled FP32 panel: 16-column output tiles (4 rows x 2 ymm) stay
 * in registers across the whole k loop, so the accumulator panel is read
 * and written once instead of once per k step — that store traffic, not
 * the multiplies, bound the axpy formulation. Ops per element are the
 * same one multiply + one add in ascending k as the scalar reference
 * (no FMA: target("avx2") alone cannot contract), so results match it
 * bit for bit.
 */
__attribute__((target("avx2"))) inline void
gemmPanel4F32(const float *a, int64_t lda, const float *b, int64_t ldb,
              int kd, float *acc, int jt)
{
    const float *a0 = a;
    const float *a1 = a + lda;
    const float *a2 = a + 2 * lda;
    const float *a3 = a + 3 * lda;
    float *acc1 = acc + jt;
    float *acc2 = acc + 2 * jt;
    float *acc3 = acc + 3 * jt;
    int j = 0;
    for (; j + 16 <= jt; j += 16) {
        __m256 c00 = _mm256_loadu_ps(acc + j);
        __m256 c01 = _mm256_loadu_ps(acc + j + 8);
        __m256 c10 = _mm256_loadu_ps(acc1 + j);
        __m256 c11 = _mm256_loadu_ps(acc1 + j + 8);
        __m256 c20 = _mm256_loadu_ps(acc2 + j);
        __m256 c21 = _mm256_loadu_ps(acc2 + j + 8);
        __m256 c30 = _mm256_loadu_ps(acc3 + j);
        __m256 c31 = _mm256_loadu_ps(acc3 + j + 8);
        for (int k = 0; k < kd; ++k) {
            const float *b_row = b + static_cast<size_t>(k) * ldb + j;
            const __m256 b0 = _mm256_loadu_ps(b_row);
            const __m256 b1 = _mm256_loadu_ps(b_row + 8);
            if (a0[k] != 0.0f) {
                const __m256 av = _mm256_set1_ps(a0[k]);
                c00 = _mm256_add_ps(c00, _mm256_mul_ps(av, b0));
                c01 = _mm256_add_ps(c01, _mm256_mul_ps(av, b1));
            }
            if (a1[k] != 0.0f) {
                const __m256 av = _mm256_set1_ps(a1[k]);
                c10 = _mm256_add_ps(c10, _mm256_mul_ps(av, b0));
                c11 = _mm256_add_ps(c11, _mm256_mul_ps(av, b1));
            }
            if (a2[k] != 0.0f) {
                const __m256 av = _mm256_set1_ps(a2[k]);
                c20 = _mm256_add_ps(c20, _mm256_mul_ps(av, b0));
                c21 = _mm256_add_ps(c21, _mm256_mul_ps(av, b1));
            }
            if (a3[k] != 0.0f) {
                const __m256 av = _mm256_set1_ps(a3[k]);
                c30 = _mm256_add_ps(c30, _mm256_mul_ps(av, b0));
                c31 = _mm256_add_ps(c31, _mm256_mul_ps(av, b1));
            }
        }
        _mm256_storeu_ps(acc + j, c00);
        _mm256_storeu_ps(acc + j + 8, c01);
        _mm256_storeu_ps(acc1 + j, c10);
        _mm256_storeu_ps(acc1 + j + 8, c11);
        _mm256_storeu_ps(acc2 + j, c20);
        _mm256_storeu_ps(acc2 + j + 8, c21);
        _mm256_storeu_ps(acc3 + j, c30);
        _mm256_storeu_ps(acc3 + j + 8, c31);
    }
    if (j < jt) {
        // Column tail (< 16): per-k axpy over the remaining columns.
        for (int k = 0; k < kd; ++k) {
            const float *b_row = b + static_cast<size_t>(k) * ldb;
            for (int r = 0; r < 4; ++r) {
                const float ar = a[static_cast<size_t>(r) * lda + k];
                if (ar == 0.0f)
                    continue;
                float *row = acc + static_cast<size_t>(r) * jt;
                for (int jj = j; jj < jt; ++jj)
                    row[jj] += ar * b_row[jj];
            }
        }
    }
}

/** Register-tiled int32 -> int64 panel: 8-column tiles (4 rows x 2 ymm of
 *  four i64 lanes). Exact arithmetic — identical to the scalar twin. */
__attribute__((target("avx2"))) inline void
gemmPanel4I32I64(const int32_t *a, int64_t lda, const int32_t *b, int64_t ldb,
                 int kd, int64_t *acc, int jt)
{
    const int32_t *a0 = a;
    const int32_t *a1 = a + lda;
    const int32_t *a2 = a + 2 * lda;
    const int32_t *a3 = a + 3 * lda;
    int64_t *acc1 = acc + jt;
    int64_t *acc2 = acc + 2 * jt;
    int64_t *acc3 = acc + 3 * jt;
    int j = 0;
    for (; j + 8 <= jt; j += 8) {
        __m256i c00 = _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc + j));
        __m256i c01 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc + j + 4));
        __m256i c10 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc1 + j));
        __m256i c11 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc1 + j + 4));
        __m256i c20 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc2 + j));
        __m256i c21 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc2 + j + 4));
        __m256i c30 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc3 + j));
        __m256i c31 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc3 + j + 4));
        for (int k = 0; k < kd; ++k) {
            const int32_t *b_row = b + static_cast<size_t>(k) * ldb + j;
            const __m256i b0 = _mm256_cvtepi32_epi64(
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(b_row)));
            const __m256i b1 = _mm256_cvtepi32_epi64(
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(b_row + 4)));
            if (a0[k] != 0) {
                const __m256i av = _mm256_set1_epi64x(a0[k]);
                c00 = _mm256_add_epi64(c00, _mm256_mul_epi32(av, b0));
                c01 = _mm256_add_epi64(c01, _mm256_mul_epi32(av, b1));
            }
            if (a1[k] != 0) {
                const __m256i av = _mm256_set1_epi64x(a1[k]);
                c10 = _mm256_add_epi64(c10, _mm256_mul_epi32(av, b0));
                c11 = _mm256_add_epi64(c11, _mm256_mul_epi32(av, b1));
            }
            if (a2[k] != 0) {
                const __m256i av = _mm256_set1_epi64x(a2[k]);
                c20 = _mm256_add_epi64(c20, _mm256_mul_epi32(av, b0));
                c21 = _mm256_add_epi64(c21, _mm256_mul_epi32(av, b1));
            }
            if (a3[k] != 0) {
                const __m256i av = _mm256_set1_epi64x(a3[k]);
                c30 = _mm256_add_epi64(c30, _mm256_mul_epi32(av, b0));
                c31 = _mm256_add_epi64(c31, _mm256_mul_epi32(av, b1));
            }
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + j), c00);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + j + 4), c01);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc1 + j), c10);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc1 + j + 4), c11);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc2 + j), c20);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc2 + j + 4), c21);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc3 + j), c30);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc3 + j + 4), c31);
    }
    if (j < jt) {
        for (int k = 0; k < kd; ++k) {
            const int32_t *b_row = b + static_cast<size_t>(k) * ldb;
            for (int r = 0; r < 4; ++r) {
                const int32_t ar = a[static_cast<size_t>(r) * lda + k];
                if (ar == 0)
                    continue;
                int64_t *row = acc + static_cast<size_t>(r) * jt;
                for (int jj = j; jj < jt; ++jj)
                    row[jj] += static_cast<int64_t>(ar) * b_row[jj];
            }
        }
    }
}

/** Register-tiled residue panel: 8-column tiles (4 rows x 2 ymm of four
 *  u64 lanes), 32x32->64 lane products. Exact — the caller bounds kd so
 *  raw sums cannot overflow and reduces between calls. */
__attribute__((target("avx2"))) inline void
gemmPanel4U64Lo32(const uint64_t *a, int64_t lda, const uint64_t *b,
                  int64_t ldb, int kd, uint64_t *acc, int jt)
{
    const uint64_t *a0 = a;
    const uint64_t *a1 = a + lda;
    const uint64_t *a2 = a + 2 * lda;
    const uint64_t *a3 = a + 3 * lda;
    uint64_t *acc1 = acc + jt;
    uint64_t *acc2 = acc + 2 * jt;
    uint64_t *acc3 = acc + 3 * jt;
    int j = 0;
    for (; j + 8 <= jt; j += 8) {
        __m256i c00 = _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc + j));
        __m256i c01 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc + j + 4));
        __m256i c10 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc1 + j));
        __m256i c11 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc1 + j + 4));
        __m256i c20 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc2 + j));
        __m256i c21 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc2 + j + 4));
        __m256i c30 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc3 + j));
        __m256i c31 =
            _mm256_loadu_si256(reinterpret_cast<__m256i *>(acc3 + j + 4));
        for (int k = 0; k < kd; ++k) {
            const uint64_t *b_row = b + static_cast<size_t>(k) * ldb + j;
            const __m256i b0 =
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b_row));
            const __m256i b1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b_row + 4));
            if (a0[k] != 0) {
                const __m256i av =
                    _mm256_set1_epi64x(static_cast<int64_t>(a0[k]));
                c00 = _mm256_add_epi64(c00, _mm256_mul_epu32(av, b0));
                c01 = _mm256_add_epi64(c01, _mm256_mul_epu32(av, b1));
            }
            if (a1[k] != 0) {
                const __m256i av =
                    _mm256_set1_epi64x(static_cast<int64_t>(a1[k]));
                c10 = _mm256_add_epi64(c10, _mm256_mul_epu32(av, b0));
                c11 = _mm256_add_epi64(c11, _mm256_mul_epu32(av, b1));
            }
            if (a2[k] != 0) {
                const __m256i av =
                    _mm256_set1_epi64x(static_cast<int64_t>(a2[k]));
                c20 = _mm256_add_epi64(c20, _mm256_mul_epu32(av, b0));
                c21 = _mm256_add_epi64(c21, _mm256_mul_epu32(av, b1));
            }
            if (a3[k] != 0) {
                const __m256i av =
                    _mm256_set1_epi64x(static_cast<int64_t>(a3[k]));
                c30 = _mm256_add_epi64(c30, _mm256_mul_epu32(av, b0));
                c31 = _mm256_add_epi64(c31, _mm256_mul_epu32(av, b1));
            }
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + j), c00);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + j + 4), c01);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc1 + j), c10);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc1 + j + 4), c11);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc2 + j), c20);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc2 + j + 4), c21);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc3 + j), c30);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc3 + j + 4), c31);
    }
    if (j < jt) {
        for (int k = 0; k < kd; ++k) {
            const uint64_t *b_row = b + static_cast<size_t>(k) * ldb;
            for (int r = 0; r < 4; ++r) {
                const uint64_t ar = a[static_cast<size_t>(r) * lda + k];
                if (ar == 0)
                    continue;
                uint64_t *row = acc + static_cast<size_t>(r) * jt;
                for (int jj = j; jj < jt; ++jj)
                    row[jj] += ar * b_row[jj];
            }
        }
    }
}

} // namespace avx2

#endif // MIRAGE_SIMD_AVX2

// ---------------------------------------------------------------------------
// NEON bodies (aarch64 baseline — no runtime check needed).
// ---------------------------------------------------------------------------

#if defined(MIRAGE_SIMD_NEON)

namespace neon {

inline int64_t
dotI32I64(const int32_t *a, const int32_t *b, int n)
{
    int64x2_t acc = vdupq_n_s64(0);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const int32x4_t av = vld1q_s32(a + i);
        const int32x4_t bv = vld1q_s32(b + i);
        acc = vaddq_s64(acc, vmull_s32(vget_low_s32(av), vget_low_s32(bv)));
        acc = vaddq_s64(acc, vmull_high_s32(av, bv));
    }
    int64_t sum = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
    for (; i < n; ++i)
        sum += static_cast<int64_t>(a[i]) * b[i];
    return sum;
}

inline uint64_t
dotU32U64(const uint32_t *a, const uint32_t *b, int n)
{
    uint64x2_t acc = vdupq_n_u64(0);
    int i = 0;
    for (; i + 4 <= n; i += 4) {
        const uint32x4_t av = vld1q_u32(a + i);
        const uint32x4_t bv = vld1q_u32(b + i);
        acc = vaddq_u64(acc, vmull_u32(vget_low_u32(av), vget_low_u32(bv)));
        acc = vaddq_u64(acc, vmull_high_u32(av, bv));
    }
    uint64_t sum = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    for (; i < n; ++i)
        sum += static_cast<uint64_t>(a[i]) * b[i];
    return sum;
}

inline uint64_t
dotU64Lo32(const uint64_t *a, const uint64_t *b, int n)
{
    // Narrow each 64-bit residue to 32 bits (exact: values < 2^32), then
    // widen-multiply back to 64.
    uint64_t sum = 0;
    int i = 0;
    uint64x2_t acc = vdupq_n_u64(0);
    for (; i + 2 <= n; i += 2) {
        const uint32x2_t av = vmovn_u64(vld1q_u64(a + i));
        const uint32x2_t bv = vmovn_u64(vld1q_u64(b + i));
        acc = vaddq_u64(acc, vmull_u32(av, bv));
    }
    sum = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

inline void
axpyF32(float a, const float *b, float *r, int n)
{
    const float32x4_t av = vdupq_n_f32(a);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        // vaddq + vmulq (not vfmaq): one multiply rounding + one add
        // rounding, matching the scalar reference exactly.
        vst1q_f32(r + j,
                  vaddq_f32(vld1q_f32(r + j), vmulq_f32(av, vld1q_f32(b + j))));
    }
    for (; j < n; ++j)
        r[j] += a * b[j];
}

inline void
axpy4F32(float a0, float a1, float a2, float a3, const float *b, float *r0,
         float *r1, float *r2, float *r3, int n)
{
    const float32x4_t a0v = vdupq_n_f32(a0);
    const float32x4_t a1v = vdupq_n_f32(a1);
    const float32x4_t a2v = vdupq_n_f32(a2);
    const float32x4_t a3v = vdupq_n_f32(a3);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        const float32x4_t bv = vld1q_f32(b + j);
        vst1q_f32(r0 + j, vaddq_f32(vld1q_f32(r0 + j), vmulq_f32(a0v, bv)));
        vst1q_f32(r1 + j, vaddq_f32(vld1q_f32(r1 + j), vmulq_f32(a1v, bv)));
        vst1q_f32(r2 + j, vaddq_f32(vld1q_f32(r2 + j), vmulq_f32(a2v, bv)));
        vst1q_f32(r3 + j, vaddq_f32(vld1q_f32(r3 + j), vmulq_f32(a3v, bv)));
    }
    for (; j < n; ++j) {
        const float bv = b[j];
        r0[j] += a0 * bv;
        r1[j] += a1 * bv;
        r2[j] += a2 * bv;
        r3[j] += a3 * bv;
    }
}

inline void
axpyI32I64(int32_t a, const int32_t *b, int64_t *r, int n)
{
    const int32x2_t av = vdup_n_s32(a);
    int j = 0;
    for (; j + 2 <= n; j += 2) {
        const int32x2_t bv = vld1_s32(b + j);
        vst1q_s64(r + j, vaddq_s64(vld1q_s64(r + j), vmull_s32(av, bv)));
    }
    for (; j < n; ++j)
        r[j] += static_cast<int64_t>(a) * b[j];
}

inline void
axpy4I32I64(int32_t a0, int32_t a1, int32_t a2, int32_t a3, const int32_t *b,
            int64_t *r0, int64_t *r1, int64_t *r2, int64_t *r3, int n)
{
    for (int j = 0; j < n; ++j) {
        const int64_t bv = b[j];
        r0[j] += a0 * bv;
        r1[j] += a1 * bv;
        r2[j] += a2 * bv;
        r3[j] += a3 * bv;
    }
}

inline void
axpyU64Lo32(uint64_t a, const uint64_t *b, uint64_t *r, int n)
{
    const uint32x2_t av = vdup_n_u32(static_cast<uint32_t>(a));
    int j = 0;
    for (; j + 2 <= n; j += 2) {
        const uint32x2_t bv = vmovn_u64(vld1q_u64(b + j));
        vst1q_u64(r + j, vaddq_u64(vld1q_u64(r + j), vmull_u32(av, bv)));
    }
    for (; j < n; ++j)
        r[j] += a * b[j];
}

inline void
axpy4U64Lo32(uint64_t a0, uint64_t a1, uint64_t a2, uint64_t a3,
             const uint64_t *b, uint64_t *r0, uint64_t *r1, uint64_t *r2,
             uint64_t *r3, int n)
{
    const uint32x2_t a0v = vdup_n_u32(static_cast<uint32_t>(a0));
    const uint32x2_t a1v = vdup_n_u32(static_cast<uint32_t>(a1));
    const uint32x2_t a2v = vdup_n_u32(static_cast<uint32_t>(a2));
    const uint32x2_t a3v = vdup_n_u32(static_cast<uint32_t>(a3));
    int j = 0;
    for (; j + 2 <= n; j += 2) {
        const uint32x2_t bv = vmovn_u64(vld1q_u64(b + j));
        vst1q_u64(r0 + j, vaddq_u64(vld1q_u64(r0 + j), vmull_u32(a0v, bv)));
        vst1q_u64(r1 + j, vaddq_u64(vld1q_u64(r1 + j), vmull_u32(a1v, bv)));
        vst1q_u64(r2 + j, vaddq_u64(vld1q_u64(r2 + j), vmull_u32(a2v, bv)));
        vst1q_u64(r3 + j, vaddq_u64(vld1q_u64(r3 + j), vmull_u32(a3v, bv)));
    }
    for (; j < n; ++j) {
        const uint64_t bv = b[j];
        r0[j] += a0 * bv;
        r1[j] += a1 * bv;
        r2[j] += a2 * bv;
        r3[j] += a3 * bv;
    }
}

/** Register-tiled FP32 panel (see the avx2 twin for the rationale):
 *  8-column tiles, 4 rows x 2 q-regs held across the k loop. vmul + vadd,
 *  never vfma, to stay bit-identical to the scalar reference. */
inline void
gemmPanel4F32(const float *a, int64_t lda, const float *b, int64_t ldb,
              int kd, float *acc, int jt)
{
    int j = 0;
    for (; j + 8 <= jt; j += 8) {
        float32x4_t c[4][2];
        for (int r = 0; r < 4; ++r) {
            c[r][0] = vld1q_f32(acc + static_cast<size_t>(r) * jt + j);
            c[r][1] = vld1q_f32(acc + static_cast<size_t>(r) * jt + j + 4);
        }
        for (int k = 0; k < kd; ++k) {
            const float *b_row = b + static_cast<size_t>(k) * ldb + j;
            const float32x4_t b0 = vld1q_f32(b_row);
            const float32x4_t b1 = vld1q_f32(b_row + 4);
            for (int r = 0; r < 4; ++r) {
                const float ar = a[static_cast<size_t>(r) * lda + k];
                if (ar == 0.0f)
                    continue;
                const float32x4_t av = vdupq_n_f32(ar);
                c[r][0] = vaddq_f32(c[r][0], vmulq_f32(av, b0));
                c[r][1] = vaddq_f32(c[r][1], vmulq_f32(av, b1));
            }
        }
        for (int r = 0; r < 4; ++r) {
            vst1q_f32(acc + static_cast<size_t>(r) * jt + j, c[r][0]);
            vst1q_f32(acc + static_cast<size_t>(r) * jt + j + 4, c[r][1]);
        }
    }
    if (j < jt) {
        for (int k = 0; k < kd; ++k) {
            const float *b_row = b + static_cast<size_t>(k) * ldb;
            for (int r = 0; r < 4; ++r) {
                const float ar = a[static_cast<size_t>(r) * lda + k];
                if (ar == 0.0f)
                    continue;
                float *row = acc + static_cast<size_t>(r) * jt;
                for (int jj = j; jj < jt; ++jj)
                    row[jj] += ar * b_row[jj];
            }
        }
    }
}

inline void
gemmPanel4I32I64(const int32_t *a, int64_t lda, const int32_t *b, int64_t ldb,
                 int kd, int64_t *acc, int jt)
{
    scalar::gemmPanel4I32I64(a, lda, b, ldb, kd, acc, jt);
}

inline void
gemmPanel4U64Lo32(const uint64_t *a, int64_t lda, const uint64_t *b,
                  int64_t ldb, int kd, uint64_t *acc, int jt)
{
    scalar::gemmPanel4U64Lo32(a, lda, b, ldb, kd, acc, jt);
}

} // namespace neon

#endif // MIRAGE_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

namespace detail {

/** True when the vector backend should be used (CPU supports it and
 *  MIRAGE_SIMD does not force scalar). Decided once per process. */
inline bool
vectorEnabled()
{
    static const bool enabled = [] {
        if (const char *env = std::getenv("MIRAGE_SIMD")) {
            if (std::strcmp(env, "0") == 0 ||
                std::strcmp(env, "scalar") == 0 ||
                std::strcmp(env, "off") == 0)
                return false;
        }
#if defined(MIRAGE_SIMD_AVX2)
        return static_cast<bool>(__builtin_cpu_supports("avx2"));
#elif defined(MIRAGE_SIMD_NEON)
        return true;
#else
        return false;
#endif
    }();
    return enabled;
}

} // namespace detail

/** Name of the active backend: "avx2", "neon", or "scalar". */
inline const char *
backendName()
{
#if defined(MIRAGE_SIMD_AVX2)
    if (detail::vectorEnabled())
        return "avx2";
#elif defined(MIRAGE_SIMD_NEON)
    if (detail::vectorEnabled())
        return "neon";
#endif
    return "scalar";
}

#if defined(MIRAGE_SIMD_AVX2)
#define MIRAGE_SIMD_DISPATCH(fn, ...) \
    do { \
        if (detail::vectorEnabled()) \
            return avx2::fn(__VA_ARGS__); \
        return scalar::fn(__VA_ARGS__); \
    } while (false)
#elif defined(MIRAGE_SIMD_NEON)
#define MIRAGE_SIMD_DISPATCH(fn, ...) \
    do { \
        if (detail::vectorEnabled()) \
            return neon::fn(__VA_ARGS__); \
        return scalar::fn(__VA_ARGS__); \
    } while (false)
#else
#define MIRAGE_SIMD_DISPATCH(fn, ...) \
    do { \
        return scalar::fn(__VA_ARGS__); \
    } while (false)
#endif

inline int64_t
dotI32I64(const int32_t *a, const int32_t *b, int n)
{
    MIRAGE_SIMD_DISPATCH(dotI32I64, a, b, n);
}

inline uint64_t
dotU32U64(const uint32_t *a, const uint32_t *b, int n)
{
    MIRAGE_SIMD_DISPATCH(dotU32U64, a, b, n);
}

inline uint64_t
dotU64Lo32(const uint64_t *a, const uint64_t *b, int n)
{
    MIRAGE_SIMD_DISPATCH(dotU64Lo32, a, b, n);
}

inline void
axpyF32(float a, const float *b, float *r, int n)
{
    MIRAGE_SIMD_DISPATCH(axpyF32, a, b, r, n);
}

inline void
axpy4F32(float a0, float a1, float a2, float a3, const float *b, float *r0,
         float *r1, float *r2, float *r3, int n)
{
    MIRAGE_SIMD_DISPATCH(axpy4F32, a0, a1, a2, a3, b, r0, r1, r2, r3, n);
}

inline void
axpyI32I64(int32_t a, const int32_t *b, int64_t *r, int n)
{
    MIRAGE_SIMD_DISPATCH(axpyI32I64, a, b, r, n);
}

inline void
axpy4I32I64(int32_t a0, int32_t a1, int32_t a2, int32_t a3, const int32_t *b,
            int64_t *r0, int64_t *r1, int64_t *r2, int64_t *r3, int n)
{
    MIRAGE_SIMD_DISPATCH(axpy4I32I64, a0, a1, a2, a3, b, r0, r1, r2, r3, n);
}

inline void
axpyU64Lo32(uint64_t a, const uint64_t *b, uint64_t *r, int n)
{
    MIRAGE_SIMD_DISPATCH(axpyU64Lo32, a, b, r, n);
}

inline void
axpy4U64Lo32(uint64_t a0, uint64_t a1, uint64_t a2, uint64_t a3,
             const uint64_t *b, uint64_t *r0, uint64_t *r1, uint64_t *r2,
             uint64_t *r3, int n)
{
    MIRAGE_SIMD_DISPATCH(axpy4U64Lo32, a0, a1, a2, a3, b, r0, r1, r2, r3, n);
}

inline void
gemmPanel4F32(const float *a, int64_t lda, const float *b, int64_t ldb,
              int kd, float *acc, int jt)
{
    MIRAGE_SIMD_DISPATCH(gemmPanel4F32, a, lda, b, ldb, kd, acc, jt);
}

inline void
gemmPanel4I32I64(const int32_t *a, int64_t lda, const int32_t *b, int64_t ldb,
                 int kd, int64_t *acc, int jt)
{
    MIRAGE_SIMD_DISPATCH(gemmPanel4I32I64, a, lda, b, ldb, kd, acc, jt);
}

inline void
gemmPanel4U64Lo32(const uint64_t *a, int64_t lda, const uint64_t *b,
                  int64_t ldb, int kd, uint64_t *acc, int jt)
{
    MIRAGE_SIMD_DISPATCH(gemmPanel4U64Lo32, a, lda, b, ldb, kd, acc, jt);
}

#undef MIRAGE_SIMD_DISPATCH

} // namespace simd
} // namespace mirage

#endif // MIRAGE_COMMON_SIMD_H
