#ifndef MIRAGE_COMMON_WORKSPACE_H
#define MIRAGE_COMMON_WORKSPACE_H

/**
 * @file
 * Bump-pointer scratch arena for the numeric hot paths.
 *
 * Every GEMM in the stack (format emulation, BFP encode, RNS conversion,
 * photonic staging, layer forward/backward temporaries) needs short-lived
 * buffers whose sizes repeat step after step. Allocating them from the
 * general-purpose heap puts the allocator on the critical path of every
 * training step; a Workspace instead hands out typed spans from a growable
 * arena that is rewound — not freed — when an operation ends, so steady-state
 * execution performs zero heap allocations (see README "Performance & memory
 * model", verified by tests/test_alloc_guard.cpp).
 *
 * Ownership contract:
 *  - per-call scratch (operand transforms, staging tiles, accumulators)
 *    comes from a Workspace under a Workspace::Scope;
 *  - state that must survive between calls (a layer's forward cache used by
 *    backward, programmed photonic weights) stays in member containers whose
 *    capacity is reused across steps.
 *
 * Thread safety: a Workspace serves ONE thread. Parallel regions use
 * threadWorkspace(), which returns this thread's private arena — the global
 * runtime::ThreadPool keeps its workers alive across operations, so their
 * arenas warm up once and are reused for the life of the process.
 */

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace mirage {

/**
 * Growable bump-pointer arena. alloc() bumps a cursor inside the current
 * block; when a block is exhausted a geometrically larger one is appended
 * (spans already handed out stay valid — blocks never move). When the
 * outermost Scope releases, multiple blocks consolidate into one, so after
 * warm-up every operation runs inside a single resident block and the
 * growth counter stops moving.
 */
class Workspace
{
  public:
    /// Every allocation is aligned to this boundary.
    static constexpr size_t kAlignment = alignof(std::max_align_t);

    /** @param initial_bytes size of the first block (0 = allocate lazily). */
    explicit Workspace(size_t initial_bytes = 0);

    Workspace(const Workspace &) = delete;
    Workspace &operator=(const Workspace &) = delete;

    /**
     * Uninitialized scratch for `n` elements of T. The span stays valid
     * until the enclosing Scope releases (or reset() is called). T must be
     * trivially copyable/destructible — the arena never runs constructors.
     */
    template <typename T>
    std::span<T>
    alloc(size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T> &&
                          std::is_trivially_destructible_v<T>,
                      "Workspace only holds trivial types");
        static_assert(alignof(T) <= kAlignment, "over-aligned type");
        if (n == 0)
            return {};
        return {reinterpret_cast<T *>(allocBytes(n * sizeof(T))), n};
    }

    /** alloc() followed by zero-fill. */
    template <typename T>
    std::span<T>
    zeroed(size_t n)
    {
        std::span<T> s = alloc<T>(n);
        if (!s.empty())
            std::memset(s.data(), 0, s.size_bytes());
        return s;
    }

    /**
     * Rewinds the whole arena (all scratch invalidated) and consolidates
     * multiple blocks into one. Capacity is retained, so the next warm pass
     * allocates nothing.
     */
    void reset();

    /** Bytes currently handed out. */
    size_t bytesInUse() const;

    /** Total backing capacity across all blocks. */
    size_t capacityBytes() const;

    /**
     * Number of backing-buffer heap allocations performed over the arena's
     * lifetime. Flat between two points in time == those operations ran
     * allocation-free out of this arena.
     */
    uint64_t growthCount() const { return growth_count_; }

    /**
     * RAII rewind marker: scratch allocated after construction is released
     * on destruction. Scopes nest (layer -> backend -> kernel); the
     * outermost release triggers block consolidation.
     */
    class Scope
    {
      public:
        explicit Scope(Workspace &ws)
            : ws_(ws), block_(ws.active_), used_(ws.usedInActive())
        {
        }
        ~Scope() { ws_.release(block_, used_); }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Workspace &ws_;
        size_t block_;
        size_t used_;
    };

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    std::byte *allocBytes(size_t bytes);
    void release(size_t block, size_t used);
    size_t usedInActive() const;

    std::vector<Block> blocks_;
    size_t active_ = 0;
    uint64_t growth_count_ = 0;
};

/**
 * This thread's private scratch arena, created on first use. The hot-path
 * entry point: kernels and layers open a Workspace::Scope on it and draw
 * every temporary from there.
 */
Workspace &threadWorkspace();

} // namespace mirage

#endif // MIRAGE_COMMON_WORKSPACE_H
