#include "common/workspace.h"

#include <algorithm>

#include "common/logging.h"

namespace mirage {

namespace {

/// First-block floor: one page-ish chunk so tiny ops never chain blocks.
constexpr size_t kMinBlockBytes = size_t{64} * 1024;

size_t
roundUpAligned(size_t bytes)
{
    return (bytes + Workspace::kAlignment - 1) & ~(Workspace::kAlignment - 1);
}

} // namespace

Workspace::Workspace(size_t initial_bytes)
{
    if (initial_bytes > 0) {
        Block b;
        b.size = roundUpAligned(initial_bytes);
        b.data = std::make_unique<std::byte[]>(b.size);
        blocks_.push_back(std::move(b));
        ++growth_count_;
    }
}

size_t
Workspace::usedInActive() const
{
    return blocks_.empty() ? 0 : blocks_[active_].used;
}

std::byte *
Workspace::allocBytes(size_t bytes)
{
    bytes = roundUpAligned(bytes);
    // Bump inside the active block when it fits.
    if (!blocks_.empty()) {
        Block &b = blocks_[active_];
        if (b.size - b.used >= bytes) {
            std::byte *p = b.data.get() + b.used;
            b.used += bytes;
            return p;
        }
        // Walk forward into already-grown blocks (kept from a previous cold
        // pass that has not consolidated yet).
        while (active_ + 1 < blocks_.size()) {
            Block &next = blocks_[++active_];
            MIRAGE_ASSERT(next.used == 0, "workspace block chain corrupted");
            if (next.size >= bytes) {
                next.used = bytes;
                return next.data.get();
            }
        }
    }
    // Grow geometrically past the total current capacity so block counts
    // stay logarithmic in peak demand.
    Block b;
    b.size = std::max({bytes, kMinBlockBytes, 2 * capacityBytes()});
    b.data = std::make_unique<std::byte[]>(b.size);
    b.used = bytes;
    ++growth_count_;
    blocks_.push_back(std::move(b));
    active_ = blocks_.size() - 1;
    return blocks_.back().data.get();
}

void
Workspace::release(size_t block, size_t used)
{
    if (blocks_.empty())
        return;
    MIRAGE_ASSERT(block <= active_, "workspace scopes released out of order");
    for (size_t i = block + 1; i <= active_; ++i)
        blocks_[i].used = 0;
    blocks_[block].used = used;
    active_ = block;
    // Outermost release: fold every block into one arena sized for the whole
    // pass, so the next pass bumps inside a single resident block.
    if (block == 0 && used == 0 && blocks_.size() > 1) {
        const size_t total = capacityBytes();
        blocks_.clear();
        Block b;
        b.size = total;
        b.data = std::make_unique<std::byte[]>(b.size);
        ++growth_count_;
        blocks_.push_back(std::move(b));
        active_ = 0;
    }
}

void
Workspace::reset()
{
    if (blocks_.empty())
        return;
    for (Block &b : blocks_)
        b.used = 0;
    active_ = 0;
    if (blocks_.size() > 1)
        release(0, 0); // consolidate
}

size_t
Workspace::bytesInUse() const
{
    size_t total = 0;
    for (const Block &b : blocks_)
        total += b.used;
    return total;
}

size_t
Workspace::capacityBytes() const
{
    size_t total = 0;
    for (const Block &b : blocks_)
        total += b.size;
    return total;
}

Workspace &
threadWorkspace()
{
    static thread_local Workspace ws;
    return ws;
}

} // namespace mirage
