#ifndef MIRAGE_COMMON_LOGGING_H
#define MIRAGE_COMMON_LOGGING_H

/**
 * @file
 * Status and error reporting in the gem5 spirit: fatal() for user errors
 * (bad configuration, invalid arguments), panic() for internal invariant
 * violations (simulator bugs), warn()/inform() for non-fatal conditions.
 */

#include <sstream>
#include <string>

namespace mirage {

namespace detail {

/** Concatenates a parameter pack into a single message string. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/** Terminates the process with exit(1) after printing a fatal banner. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Aborts the process (core-dump friendly) after printing a panic banner. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Prints a warning banner to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Prints an informational message to stderr. */
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Reports an unrecoverable *user* error (bad configuration, invalid
 * arguments) and exits with status 1. Not a simulator bug.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line, detail::concatMessage(std::forward<Args>(args)...));
}

/**
 * Reports an internal invariant violation (a bug in this library) and
 * aborts so a debugger or core dump can capture the state.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line, detail::concatMessage(std::forward<Args>(args)...));
}

} // namespace mirage

/** User-error termination. Use for invalid configurations or arguments. */
#define MIRAGE_FATAL(...) ::mirage::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** Internal-bug termination. Use when an invariant that must hold is broken. */
#define MIRAGE_PANIC(...) ::mirage::panic(__FILE__, __LINE__, __VA_ARGS__)

/** Non-fatal warning with source location. */
#define MIRAGE_WARN(...) \
    ::mirage::detail::warnImpl(__FILE__, __LINE__, \
                               ::mirage::detail::concatMessage(__VA_ARGS__))

/** Informational status message. */
#define MIRAGE_INFORM(...) \
    ::mirage::detail::informImpl(::mirage::detail::concatMessage(__VA_ARGS__))

/** Panics when `cond` is false; for internal invariants, not user input. */
#define MIRAGE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            MIRAGE_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (false)

/**
 * Debug-build-only assertion for checks too expensive for release hot
 * loops (e.g. per-call overflow-bound proofs in modularDot). Compiled out
 * under NDEBUG; the condition must be side-effect free.
 */
#ifdef NDEBUG
#define MIRAGE_DASSERT(cond, ...) \
    do { \
    } while (false)
#else
#define MIRAGE_DASSERT(cond, ...) MIRAGE_ASSERT(cond, ##__VA_ARGS__)
#endif

#endif // MIRAGE_COMMON_LOGGING_H
