#ifndef MIRAGE_COMMON_LOGGING_H
#define MIRAGE_COMMON_LOGGING_H

/**
 * @file
 * Status and error reporting in the gem5 spirit: fatal() for user errors
 * (bad configuration, invalid arguments), panic() for internal invariant
 * violations (simulator bugs), and leveled non-fatal logging.
 *
 * Non-fatal messages go through MIRAGE_LOG(level, ...) with a process-wide
 * threshold: messages below the threshold are filtered before their
 * arguments are formatted (the macro guards on logEnabled() first). The
 * threshold defaults to Info and is configurable via the MIRAGE_LOG_LEVEL
 * environment variable — "error", "warn", "info", "debug" or the numeric
 * levels 0-3; parsing is loud-on-garbage like MIRAGE_THREADS (an invalid
 * value logs a warning and falls back to Info rather than silently
 * changing verbosity). MIRAGE_WARN / MIRAGE_INFORM remain as aliases for
 * the two historical levels.
 */

#include <iosfwd>
#include <sstream>
#include <string>

namespace mirage {

/** Severity of a non-fatal log message; lower is more severe. */
enum class LogLevel
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

namespace detail {

/** Concatenates a parameter pack into a single message string. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/** Terminates the process with exit(1) after printing a fatal banner. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Aborts the process (core-dump friendly) after printing a panic banner. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Prints one leveled log line (the threshold was already checked by the
 *  MIRAGE_LOG macro; calling this directly bypasses filtering). */
void logImpl(LogLevel level, const char *file, int line,
             const std::string &msg);

/** Redirects non-fatal log output (nullptr restores std::cerr); returns
 *  the previous stream. For unit tests capturing log lines. */
std::ostream *setLogStream(std::ostream *os);

} // namespace detail

/** Current threshold: messages with level > threshold are dropped. */
LogLevel logLevel();

/** Overrides the threshold at runtime (wins over MIRAGE_LOG_LEVEL). */
void setLogLevel(LogLevel level);

/** True when a message at `level` passes the current threshold. */
bool logEnabled(LogLevel level);

/**
 * Parses a MIRAGE_LOG_LEVEL-style string: the names "error", "warn",
 * "info", "debug" (case-insensitive) or the numeric levels 0-3. Returns
 * true and fills *out on success; returns false and fills *error (when
 * non-null) for anything else. Exposed for unit tests.
 */
bool parseLogLevel(const char *value, LogLevel *out,
                   std::string *error = nullptr);

/**
 * Reports an unrecoverable *user* error (bad configuration, invalid
 * arguments) and exits with status 1. Not a simulator bug.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line, detail::concatMessage(std::forward<Args>(args)...));
}

/**
 * Reports an internal invariant violation (a bug in this library) and
 * aborts so a debugger or core dump can capture the state.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line, detail::concatMessage(std::forward<Args>(args)...));
}

} // namespace mirage

/** User-error termination. Use for invalid configurations or arguments. */
#define MIRAGE_FATAL(...) ::mirage::fatal(__FILE__, __LINE__, __VA_ARGS__)

/** Internal-bug termination. Use when an invariant that must hold is broken. */
#define MIRAGE_PANIC(...) ::mirage::panic(__FILE__, __LINE__, __VA_ARGS__)

/**
 * Leveled non-fatal log line; `level_` is a bare LogLevel enumerator
 * (Error, Warn, Info, Debug). Arguments are only formatted when the level
 * passes the MIRAGE_LOG_LEVEL threshold.
 */
#define MIRAGE_LOG(level_, ...) \
    do { \
        if (::mirage::logEnabled(::mirage::LogLevel::level_)) { \
            ::mirage::detail::logImpl( \
                ::mirage::LogLevel::level_, __FILE__, __LINE__, \
                ::mirage::detail::concatMessage(__VA_ARGS__)); \
        } \
    } while (false)

/** Non-fatal warning with source location (MIRAGE_LOG at Warn). */
#define MIRAGE_WARN(...) MIRAGE_LOG(Warn, __VA_ARGS__)

/** Informational status message (MIRAGE_LOG at Info). */
#define MIRAGE_INFORM(...) MIRAGE_LOG(Info, __VA_ARGS__)

/** Panics when `cond` is false; for internal invariants, not user input. */
#define MIRAGE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            MIRAGE_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (false)

/**
 * Debug-build-only assertion for checks too expensive for release hot
 * loops (e.g. per-call overflow-bound proofs in modularDot). Compiled out
 * under NDEBUG; the condition must be side-effect free.
 */
#ifdef NDEBUG
#define MIRAGE_DASSERT(cond, ...) \
    do { \
    } while (false)
#else
#define MIRAGE_DASSERT(cond, ...) MIRAGE_ASSERT(cond, ##__VA_ARGS__)
#endif

#endif // MIRAGE_COMMON_LOGGING_H
