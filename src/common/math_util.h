#ifndef MIRAGE_COMMON_MATH_UTIL_H
#define MIRAGE_COMMON_MATH_UTIL_H

/**
 * @file
 * Small integer math helpers used across the tiling, RNS, and BFP code.
 */

#include <cstdint>

#include "common/logging.h"

namespace mirage {

/** Ceiling division for non-negative integers. */
inline int64_t
ceilDiv(int64_t num, int64_t den)
{
    MIRAGE_ASSERT(den > 0, "ceilDiv by non-positive denominator");
    MIRAGE_ASSERT(num >= 0, "ceilDiv of negative numerator");
    return (num + den - 1) / den;
}

/** Rounds `v` up to the next multiple of `mult`. */
inline int64_t
roundUp(int64_t v, int64_t mult)
{
    return ceilDiv(v, mult) * mult;
}

/** Floor of log2 for a positive integer. */
inline int
ilog2(uint64_t v)
{
    MIRAGE_ASSERT(v > 0, "ilog2 of zero");
    int b = -1;
    while (v) {
        v >>= 1;
        ++b;
    }
    return b;
}

/** Number of bits needed to represent `v` (ceil(log2(v)) for v > 1). */
inline int
bitsFor(uint64_t v)
{
    MIRAGE_ASSERT(v > 0, "bitsFor of zero");
    return (v == 1) ? 1 : ilog2(v - 1) + 1;
}

/** True when `v` is a power of two. */
inline bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Greatest common divisor. */
inline uint64_t
gcd64(uint64_t a, uint64_t b)
{
    while (b) {
        uint64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

} // namespace mirage

#endif // MIRAGE_COMMON_MATH_UTIL_H
