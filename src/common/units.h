#ifndef MIRAGE_COMMON_UNITS_H
#define MIRAGE_COMMON_UNITS_H

/**
 * @file
 * Physical constants and unit helpers shared by the analog and photonic
 * models. All internal computation is in SI base units (watts, joules,
 * seconds, meters, amperes); the suffixes here exist so that literals in
 * configuration code read like the paper's tables.
 */

#include <cmath>

namespace mirage {
namespace units {

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Default operating temperature [K].
inline constexpr double kRoomTemperature = 300.0;

inline constexpr double kPi = 3.14159265358979323846;

// --- magnitude helpers -----------------------------------------------------

inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;

/** Converts a power/energy ratio to decibels. */
inline double
toDb(double ratio)
{
    return 10.0 * std::log10(ratio);
}

/** Converts decibels to a linear power ratio ( >= 0 dB means gain). */
inline double
fromDb(double db)
{
    return std::pow(10.0, db / 10.0);
}

/** Linear transmission of an optical element with `loss_db` insertion loss. */
inline double
transmissionFromLossDb(double loss_db)
{
    return std::pow(10.0, -loss_db / 10.0);
}

} // namespace units
} // namespace mirage

#endif // MIRAGE_COMMON_UNITS_H
