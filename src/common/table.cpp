#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace mirage {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    MIRAGE_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    MIRAGE_ASSERT(cells.size() == headers_.size(),
                  "row has ", cells.size(), " cells, expected ", headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
            os << (c + 1 < row.size() ? "  " : "");
        }
        os << "\n";
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 < row.size() ? "," : "");
        os << "\n";
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
formatSig(double v, int digits)
{
    std::ostringstream oss;
    oss << std::setprecision(digits) << v;
    return oss.str();
}

std::string
formatFixed(double v, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << v;
    return oss.str();
}

} // namespace mirage
