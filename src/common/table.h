#ifndef MIRAGE_COMMON_TABLE_H
#define MIRAGE_COMMON_TABLE_H

/**
 * @file
 * Plain-text table and CSV emitters used by the benchmark harnesses to print
 * paper-style result tables (Table I/II/III, Figs. 5-9 series).
 */

#include <ostream>
#include <string>
#include <vector>

namespace mirage {

/**
 * Column-aligned text table. Usage:
 *
 *   TablePrinter t({"model", "runtime", "EDP"});
 *   t.addRow({"AlexNet", "1.23", "4.56"});
 *   t.print(std::cout);
 */
class TablePrinter
{
  public:
    /** Creates a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Appends a row; must have exactly as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Renders the table with aligned columns and a header separator. */
    void print(std::ostream &os) const;

    /** Renders the table as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    size_t rowCount() const { return rows_.size(); }

    /** Column headers (for machine-readable emitters). */
    const std::vector<std::string> &headers() const { return headers_; }

    /** Data rows (for machine-readable emitters). */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with `digits` significant digits. */
std::string formatSig(double v, int digits = 4);

/** Formats a double in fixed notation with `decimals` decimal places. */
std::string formatFixed(double v, int decimals = 2);

} // namespace mirage

#endif // MIRAGE_COMMON_TABLE_H
