#ifndef MIRAGE_COMMON_RNG_H
#define MIRAGE_COMMON_RNG_H

/**
 * @file
 * Deterministic random number generation. Every stochastic component in the
 * simulator (noise injection, stochastic rounding, dataset synthesis, weight
 * initialization) draws from an explicitly seeded Rng so experiments are
 * reproducible bit-for-bit across runs.
 */

#include <cstdint>
#include <random>

namespace mirage {

/**
 * Seeded pseudo-random source wrapping a 64-bit Mersenne twister.
 *
 * Intentionally *not* a global: components own their Rng (or receive one by
 * reference) so that parallel experiments never share hidden state. For
 * parallel use, split() derives independent deterministic child streams —
 * one per tile / row / block — instead of sharing one engine across
 * threads.
 */
class Rng
{
  public:
    /** Constructs a generator from an explicit seed. */
    explicit Rng(uint64_t seed = 0x4d495241u) : seed_(seed), engine_(seed) {}

    /** Reseeds the generator, restarting its sequence. */
    void
    reseed(uint64_t seed)
    {
        seed_ = seed;
        engine_.seed(seed);
    }

    /** The seed this stream was created (or last reseeded) from. */
    uint64_t seed() const { return seed_; }

    /**
     * Derives an independent deterministic child stream from this
     * generator's *seed* and a stream id (splitmix64 mixing of both).
     *
     * Splitting neither consumes nor depends on the parent's drawn state:
     * `rng.split(i)` yields the same stream no matter how many values the
     * parent has already produced. The parallel GEMM hot paths and the
     * runtime engine rely on this to seed one stream per tile / row /
     * block, keeping parallel results bit-identical to serial execution at
     * every thread count.
     */
    Rng
    split(uint64_t stream_id) const
    {
        return stream(seed_, stream_id);
    }

    /**
     * split() as a static function of a raw base seed: the substream
     * `Rng(base).split(id)` without constructing the intermediate
     * generator. The parallel hot paths call this once per row/unit, where
     * the avoided mt19937 state init is measurable.
     */
    static Rng
    stream(uint64_t base_seed, uint64_t stream_id)
    {
        return Rng(splitMix64(base_seed +
                              0x9e3779b97f4a7c15ull * (stream_id + 1)));
    }

    /** splitmix64 finalizer: decorrelates nearby seeds and stream ids. */
    static uint64_t
    splitMix64(uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        std::uniform_int_distribution<int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform unsigned 64-bit value. */
    uint64_t nextU64() { return engine_(); }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Gaussian sample with the given mean and standard deviation. */
    double
    gaussian(double mean = 0.0, double sigma = 1.0)
    {
        std::normal_distribution<double> dist(mean, sigma);
        return dist(engine_);
    }

    /** Bernoulli sample: true with probability p. */
    bool bernoulli(double p) { return uniformReal() < p; }

    /** Exposes the underlying engine for std::shuffle and distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    uint64_t seed_;
    std::mt19937_64 engine_;
};

} // namespace mirage

#endif // MIRAGE_COMMON_RNG_H
