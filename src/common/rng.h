#ifndef MIRAGE_COMMON_RNG_H
#define MIRAGE_COMMON_RNG_H

/**
 * @file
 * Deterministic random number generation. Every stochastic component in the
 * simulator (noise injection, stochastic rounding, dataset synthesis, weight
 * initialization) draws from an explicitly seeded Rng so experiments are
 * reproducible bit-for-bit across runs.
 */

#include <cstdint>
#include <random>

namespace mirage {

/**
 * Seeded pseudo-random source wrapping a 64-bit Mersenne twister.
 *
 * Intentionally *not* a global: components own their Rng (or receive one by
 * reference) so that parallel experiments never share hidden state.
 */
class Rng
{
  public:
    /** Constructs a generator from an explicit seed. */
    explicit Rng(uint64_t seed = 0x4d495241u) : engine_(seed) {}

    /** Reseeds the generator, restarting its sequence. */
    void reseed(uint64_t seed) { engine_.seed(seed); }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        std::uniform_int_distribution<int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform unsigned 64-bit value. */
    uint64_t nextU64() { return engine_(); }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Gaussian sample with the given mean and standard deviation. */
    double
    gaussian(double mean = 0.0, double sigma = 1.0)
    {
        std::normal_distribution<double> dist(mean, sigma);
        return dist(engine_);
    }

    /** Bernoulli sample: true with probability p. */
    bool bernoulli(double p) { return uniformReal() < p; }

    /** Exposes the underlying engine for std::shuffle and distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace mirage

#endif // MIRAGE_COMMON_RNG_H
