#include "common/logging.h"

#include <cstdlib>
#include <iostream>

namespace mirage {
namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line << std::endl;
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line << std::endl;
    std::abort();
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "warn: " << msg << " (" << file << ":" << line << ")" << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace mirage
