#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace mirage {

namespace {

/// -1 = uninitialized (read MIRAGE_LOG_LEVEL on first use), else a
/// LogLevel value. Relaxed: the threshold is advisory, not a sync point.
std::atomic<int> g_log_level{-1};

/// Non-fatal log sink; nullptr means std::cerr. Swapped only by tests.
std::atomic<std::ostream *> g_log_stream{nullptr};

std::ostream &
logStream()
{
    std::ostream *os = g_log_stream.load(std::memory_order_acquire);
    return os != nullptr ? *os : std::cerr;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Error:
        return "error";
    case LogLevel::Warn:
        return "warn";
    case LogLevel::Info:
        return "info";
    case LogLevel::Debug:
        return "debug";
    }
    return "?";
}

int
initLogLevelFromEnv()
{
    // Default first so a parse warning below cannot recurse into init.
    int expected = -1;
    g_log_level.compare_exchange_strong(expected,
                                        static_cast<int>(LogLevel::Info),
                                        std::memory_order_relaxed);
    const char *env = std::getenv("MIRAGE_LOG_LEVEL");
    if (env != nullptr) {
        LogLevel parsed = LogLevel::Info;
        std::string error;
        if (parseLogLevel(env, &parsed, &error)) {
            g_log_level.store(static_cast<int>(parsed),
                              std::memory_order_relaxed);
        } else {
            // Loud on garbage, like MIRAGE_THREADS: never silently change
            // verbosity on a typo.
            MIRAGE_WARN("ignoring MIRAGE_LOG_LEVEL: ", error);
        }
    }
    return g_log_level.load(std::memory_order_relaxed);
}

} // namespace

LogLevel
logLevel()
{
    int level = g_log_level.load(std::memory_order_relaxed);
    if (level < 0)
        level = initLogLevelFromEnv();
    return static_cast<LogLevel>(level);
}

void
setLogLevel(LogLevel level)
{
    g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

bool
parseLogLevel(const char *value, LogLevel *out, std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    if (value == nullptr || value[0] == '\0')
        return fail("empty value (expected error|warn|info|debug or 0-3)");
    std::string lower;
    for (const char *p = value; *p != '\0'; ++p)
        lower.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
    if (lower == "error" || lower == "0") {
        *out = LogLevel::Error;
        return true;
    }
    if (lower == "warn" || lower == "warning" || lower == "1") {
        *out = LogLevel::Warn;
        return true;
    }
    if (lower == "info" || lower == "2") {
        *out = LogLevel::Info;
        return true;
    }
    if (lower == "debug" || lower == "3") {
        *out = LogLevel::Debug;
        return true;
    }
    return fail("unrecognized level '" + std::string(value) +
                "' (expected error|warn|info|debug or 0-3)");
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line << std::endl;
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line << std::endl;
    std::abort();
}

void
logImpl(LogLevel level, const char *file, int line, const std::string &msg)
{
    std::ostream &os = logStream();
    // Info keeps the historical bare format; the other levels carry a
    // source location so they can be traced back.
    if (level == LogLevel::Info)
        os << "info: " << msg << std::endl;
    else
        os << levelName(level) << ": " << msg << " (" << file << ":" << line
           << ")" << std::endl;
}

std::ostream *
setLogStream(std::ostream *os)
{
    return g_log_stream.exchange(os, std::memory_order_acq_rel);
}

} // namespace detail
} // namespace mirage
