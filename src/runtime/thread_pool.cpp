#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/logging.h"

namespace mirage {
namespace runtime {

namespace {

int
defaultThreadCount()
{
    if (const char *env = std::getenv("MIRAGE_THREADS")) {
        const int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex g_global_mu;

/**
 * The global pool is deliberately leaked: a static destructor would join
 * worker threads at exit(), which deadlocks in fork()ed children (gtest
 * death tests, daemonized tools) where those threads do not exist. The OS
 * reclaims everything at process exit anyway. The pointer is atomic so the
 * hot-path lookup never takes g_global_mu (workers holding a mutex across
 * fork() would deadlock children).
 */
std::atomic<ThreadPool *> g_global_pool{nullptr};

/** True in a fork()ed child of the process that created `pool_pid`. */
bool
inForkedChild(int64_t pool_pid)
{
#ifndef _WIN32
    return static_cast<int64_t>(getpid()) != pool_pid;
#else
    (void)pool_pid;
    return false;
#endif
}

int64_t
currentPid()
{
#ifndef _WIN32
    return static_cast<int64_t>(getpid());
#else
    return 0;
#endif
}

/**
 * Shared state of one parallelFor call: an atomic block counter claimed by
 * the caller and its helper tasks. Held by shared_ptr because helper tasks
 * may still sit in the queue after the caller has returned (they find no
 * blocks left and exit immediately).
 */
struct ForState
{
    int64_t n = 0;
    int64_t grain = 1;
    int64_t blocks = 0;
    std::function<void(int64_t, int64_t)> body;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;

    void
    runBlocks()
    {
        for (;;) {
            const int64_t b = next.fetch_add(1, std::memory_order_relaxed);
            if (b >= blocks)
                return;
            // After a failure, stop executing bodies (mirroring the serial
            // path, which stops at the throw); blocks already in flight on
            // other threads still finish. Claimed blocks are still counted
            // so the caller wakes.
            if (!failed.load(std::memory_order_acquire)) {
                const int64_t begin = b * grain;
                const int64_t end = std::min(n, begin + grain);
                try {
                    body(begin, end);
                } catch (...) {
                    std::lock_guard<std::mutex> lk(mu);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_release);
                }
            }
            if (done.fetch_add(1) + 1 == blocks) {
                // Notify under the mutex so the waiting caller cannot miss
                // the final wakeup between its predicate check and wait.
                std::lock_guard<std::mutex> lk(mu);
                done_cv.notify_all();
            }
        }
    }
};

} // namespace

ThreadPool::ThreadPool(int threads) : owner_pid_(currentPid())
{
    if (threads <= 0)
        threads = defaultThreadCount();
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submitDetached(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        MIRAGE_ASSERT(!stop_, "submit on a stopped ThreadPool");
        tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stop_ set and queue drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(int64_t n, int64_t grain,
                        const std::function<void(int64_t, int64_t)> &body)
{
    if (n <= 0)
        return;
    MIRAGE_ASSERT(grain >= 1, "parallelFor grain must be >= 1");
    const int64_t blocks = (n + grain - 1) / grain;

    // Serial fast path: identical block decomposition, zero synchronization.
    // Also taken in fork()ed children (death tests), where this pool's
    // worker threads do not exist.
    if (runsSerially(blocks)) {
        for (int64_t b = 0; b < blocks; ++b)
            body(b * grain, std::min(n, (b + 1) * grain));
        return;
    }

    auto state = std::make_shared<ForState>();
    state->n = n;
    state->grain = grain;
    state->blocks = blocks;
    state->body = body;

    const int64_t helpers = std::min<int64_t>(size(), blocks) - 1;
    for (int64_t h = 0; h < helpers; ++h)
        submitDetached([state] { state->runBlocks(); });

    state->runBlocks();
    {
        std::unique_lock<std::mutex> lk(state->mu);
        state->done_cv.wait(
            lk, [&] { return state->done.load() == state->blocks; });
    }
    if (state->error)
        std::rethrow_exception(state->error);
}

bool
ThreadPool::runsSerially(int64_t blocks) const
{
    return size() <= 1 || blocks == 1 || inForkedChild(owner_pid_);
}

ThreadPool &
ThreadPool::global()
{
    ThreadPool *pool = g_global_pool.load(std::memory_order_acquire);
    if (pool != nullptr)
        return *pool;
    std::lock_guard<std::mutex> lk(g_global_mu);
    pool = g_global_pool.load(std::memory_order_relaxed);
    if (pool == nullptr) {
        pool = new ThreadPool();
        g_global_pool.store(pool, std::memory_order_release);
    }
    return *pool;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    ThreadPool *fresh = new ThreadPool(threads);
    ThreadPool *old = nullptr;
    {
        std::lock_guard<std::mutex> lk(g_global_mu);
        old = g_global_pool.load(std::memory_order_relaxed);
        g_global_pool.store(fresh, std::memory_order_release);
    }
    delete old; // drains and joins the replaced pool's live workers
}

} // namespace runtime
} // namespace mirage
