#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <climits>
#include <cstdlib>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/logging.h"
#include "obs/metrics.h"

namespace mirage {
namespace runtime {

namespace {

/** Polite spin: keeps the core's pipeline from hammering the cache line
 *  while another thread updates it. Falls back to a scheduler yield off
 *  x86 (and after long spins, see spinWait). */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

/** Spins until pred() holds: a short pause burst for the common
 *  sub-microsecond case, then scheduler yields so a single-core host (or
 *  an oversubscribed one) lets the thread we are waiting on run. */
template <typename Pred>
inline void
spinWait(Pred pred)
{
    for (int i = 0; i < 128; ++i) {
        if (pred())
            return;
        cpuRelax();
    }
    while (!pred())
        std::this_thread::yield();
}

int
defaultThreadCount()
{
    if (const char *env = std::getenv("MIRAGE_THREADS")) {
        std::string error;
        const int n = ThreadPool::parseThreadsEnv(env, &error);
        if (n >= 1)
            return n;
        // A mis-set MIRAGE_THREADS used to be silently ignored, which made
        // "MIRAGE_THREADS=8x" benchmark runs report hardware_concurrency
        // numbers as if they were 8-thread numbers. Be loud about it.
        MIRAGE_WARN("ignoring MIRAGE_THREADS=\"", env, "\" (", error,
                    "); falling back to hardware_concurrency");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex g_global_mu;

/**
 * The global pool is deliberately leaked: a static destructor would join
 * worker threads at exit(), which deadlocks in fork()ed children (gtest
 * death tests, daemonized tools) where those threads do not exist. The OS
 * reclaims everything at process exit anyway. The pointer is atomic so the
 * hot-path lookup never takes g_global_mu (workers holding a mutex across
 * fork() would deadlock children).
 */
std::atomic<ThreadPool *> g_global_pool{nullptr};

/**
 * Pools replaced by setGlobalThreads, shut down and retained for a grace
 * window (guarded by g_global_mu). A caller that grabbed
 * ThreadPool::global() before a swap may still hold the reference, so
 * deleting the old pool immediately was a use-after-free; a shut-down
 * pool is inert (serial parallelFor, inline submits) and costs only its
 * empty shell, so it is kept until kMaxRetiredPools further swaps have
 * completed. Each swap creates and joins worker threads (milliseconds),
 * while global() callers re-fetch the pointer per parallelFor call
 * (microseconds), so by the time a pool falls off the end of the list it
 * is fully quiesced: no live reference can plausibly span the window.
 * Callers that cache a global() reference across that many swaps are out
 * of contract — see the setGlobalThreads doc comment.
 */
std::vector<ThreadPool *> *g_retired_pools = nullptr;

/** Retired-pool count mirror for the obs gauge; updated under g_global_mu
 *  but readable without it. */
std::atomic<size_t> g_retired_count{0};

/** True in a fork()ed child of the process that created `pool_pid`. */
bool
inForkedChild(int64_t pool_pid)
{
#ifndef _WIN32
    return static_cast<int64_t>(getpid()) != pool_pid;
#else
    (void)pool_pid;
    return false;
#endif
}

int64_t
currentPid()
{
#ifndef _WIN32
    return static_cast<int64_t>(getpid());
#else
    return 0;
#endif
}

} // namespace

namespace detail {

bool
ForLoop::runBlocks()
{
    bool claimed = false;
    for (;;) {
        const int64_t b = next.fetch_add(1, std::memory_order_relaxed);
        if (b >= blocks)
            return claimed;
        claimed = true;
        // After a failure, stop executing bodies (mirroring the serial
        // path, which stops at the throw); blocks already in flight on
        // other threads still finish. Claimed blocks are still counted
        // so the caller wakes.
        if (!failed.load(std::memory_order_acquire)) {
            const int64_t begin = b * grain;
            const int64_t end = std::min(n, begin + grain);
            try {
                invoke(ctx, begin, end);
            } catch (...) {
                std::lock_guard<std::mutex> lk(mu);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_release);
            }
        }
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == blocks) {
            // Notify under the mutex so a waiting caller cannot miss the
            // final wakeup between its predicate check and wait.
            std::lock_guard<std::mutex> lk(mu);
            done_cv.notify_all();
        }
    }
}

} // namespace detail

ThreadPool::ThreadPool(int threads) : owner_pid_(currentPid())
{
    if (threads <= 0)
        threads = defaultThreadCount();
    size_.store(threads, std::memory_order_relaxed);
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    std::vector<std::thread> workers;
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stop_ && workers_.empty())
            return; // idempotent
        stop_ = true;
        workers.swap(workers_);
    }
    // Degrade new parallelFor calls to the serial path immediately; the
    // exiting workers still drain anything already published.
    size_.store(0, std::memory_order_release);
    cv_.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::submitDetached(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!stop_) {
            tasks_.push_back(std::move(task));
            cv_.notify_one();
            return;
        }
    }
    // Shut-down pool (e.g. a stale reference to a replaced global pool):
    // run inline so the caller's future still completes. mu_ is already
    // released here so pool state cannot deadlock, but the task runs on
    // the *calling* thread — see the reentrancy note on submitDetached()
    // in the header.
    task();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        // Snapshot the wake epoch BEFORE scanning: if a loop is published
        // after this load, either the slot store is already visible to the
        // scan below (publish stores the slot before bumping the epoch
        // with release semantics) or the epoch comparison in the cv
        // predicate differs and we re-scan instead of sleeping.
        const uint64_t seen = wake_epoch_.load(std::memory_order_acquire);

        bool worked = true;
        while (worked) {
            worked = false;
            // Broadcast slots first — parallelFor is the latency-critical
            // path. One relaxed load per empty slot.
            for (LoopSlot &slot : slots_) {
                if (slot.loop.load(std::memory_order_relaxed) == nullptr)
                    continue;
                // Retirement handshake, worker half. This is a Dekker
                // pattern against runLoop's retirement (store loop=nullptr,
                // then load visitors): both sides must be seq_cst so that
                // at least one of them observes the other's write. With
                // plain release/acquire the caller could see visitors==0
                // before this increment became visible while we still see
                // the stale non-null pointer — and then dereference the
                // caller's already-destroyed stack-resident loop.
                slot.visitors.fetch_add(1, std::memory_order_seq_cst);
                detail::ForLoop *loop =
                    slot.loop.load(std::memory_order_seq_cst);
                if (loop != nullptr && loop->runBlocks())
                    worked = true;
                slot.visitors.fetch_sub(1, std::memory_order_release);
            }
            // Then the coarse task queue (engine shards, detached jobs).
            std::function<void()> task;
            {
                std::lock_guard<std::mutex> lk(mu_);
                if (!tasks_.empty()) {
                    task = std::move(tasks_.front());
                    tasks_.pop_front();
                }
            }
            if (task) {
                task();
                worked = true;
            }
        }

        std::unique_lock<std::mutex> lk(mu_);
        if (stop_ && tasks_.empty())
            return;
        cv_.wait(lk, [&] {
            return stop_ || !tasks_.empty() ||
                   wake_epoch_.load(std::memory_order_relaxed) != seen;
        });
        if (stop_ && tasks_.empty())
            return;
    }
}

void
ThreadPool::runLoop(detail::ForLoop &loop)
{
    // Threaded dispatches only — the serial fast path in parallelFor never
    // reaches here, so MIRAGE_THREADS=1 hot loops stay untouched. The
    // handle is resolved once (magic static); recording is one relaxed
    // fetch_add.
    static obs::Counter &loop_dispatches =
        obs::MetricsRegistry::global().counter("runtime.pool.loops");
    loop_dispatches.add(1);

    // Publish the loop in a free broadcast slot. No free slot (> kLoopSlots
    // concurrent parallelFors, i.e. deep nesting) is not an error: the
    // caller below simply runs every block itself, which is the same
    // deterministic decomposition.
    LoopSlot *slot = nullptr;
    for (LoopSlot &s : slots_) {
        detail::ForLoop *expected = nullptr;
        if (s.loop.compare_exchange_strong(expected, &loop,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
            slot = &s;
            break;
        }
    }
    if (slot != nullptr) {
        {
            // The epoch bump must happen under mu_: workers check it in
            // the cv predicate, and bumping outside the mutex could land
            // between a worker's predicate check and its sleep.
            std::lock_guard<std::mutex> lk(mu_);
            wake_epoch_.fetch_add(1, std::memory_order_release);
        }
        cv_.notify_all();
    }

    // The caller always participates — this is what makes nested
    // parallelFor deadlock-free regardless of worker availability.
    loop.runBlocks();

    // Wait for straggler blocks claimed by workers. The common case (the
    // caller ran the tail block) is already done; otherwise spin briefly —
    // blocks are microseconds — before paying for a cv sleep.
    if (loop.done.load(std::memory_order_acquire) != loop.blocks) {
        for (int i = 0;
             i < 256 &&
             loop.done.load(std::memory_order_acquire) != loop.blocks;
             ++i)
            cpuRelax();
        if (loop.done.load(std::memory_order_acquire) != loop.blocks) {
            std::unique_lock<std::mutex> lk(loop.mu);
            loop.done_cv.wait(lk, [&] {
                return loop.done.load(std::memory_order_acquire) ==
                       loop.blocks;
            });
        }
    }

    // Retire the slot: unpublish, then wait out any worker still inside
    // its visit window (it bumped visitors, may be about to load the
    // pointer). Only after visitors drains is the stack-resident loop safe
    // to destroy. The window is tiny: by now every block is done, so a
    // visiting worker's runBlocks returns after one fetch_add.
    //
    // Retirement handshake, caller half — the store and the load must be
    // seq_cst (Dekker pattern, see workerLoop): in the seq_cst total order
    // either a visiting worker's fetch_add precedes this store (then the
    // spin below sees visitors != 0 and waits for its matching
    // release-fetch_sub, which orders the worker's loop accesses before
    // our return) or this store precedes the fetch_add (then the worker's
    // seq_cst pointer re-load sees nullptr and never touches the loop).
    // With only release/acquire neither side is forced to see the other's
    // write and the worker can run a destroyed stack-resident loop.
    if (slot != nullptr) {
        slot->loop.store(nullptr, std::memory_order_seq_cst);
        spinWait([&] {
            return slot->visitors.load(std::memory_order_seq_cst) == 0;
        });
    }

    if (loop.error)
        std::rethrow_exception(loop.error);
}

bool
ThreadPool::runsSerially(int64_t blocks) const
{
    return size() <= 1 || blocks == 1 || inForkedChild(owner_pid_);
}

ThreadPool &
ThreadPool::global()
{
    ThreadPool *pool = g_global_pool.load(std::memory_order_acquire);
    if (pool != nullptr)
        return *pool;
    std::lock_guard<std::mutex> lk(g_global_mu);
    pool = g_global_pool.load(std::memory_order_relaxed);
    if (pool == nullptr) {
        pool = new ThreadPool();
        g_global_pool.store(pool, std::memory_order_release);
    }
    return *pool;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    ThreadPool *fresh = new ThreadPool(threads);
    ThreadPool *old = nullptr;
    {
        std::lock_guard<std::mutex> lk(g_global_mu);
        old = g_global_pool.load(std::memory_order_relaxed);
        g_global_pool.store(fresh, std::memory_order_release);
    }
    if (old != nullptr) {
        // Quiesce the replaced pool, then park it on the retired list for
        // a grace window instead of deleting it under a possibly live
        // reference. See g_retired_pools.
        old->shutdown();
        std::lock_guard<std::mutex> lk(g_global_mu);
        if (g_retired_pools == nullptr)
            g_retired_pools = new std::vector<ThreadPool *>();
        g_retired_pools->push_back(old);
        // Free the oldest shells beyond the cap: they were shut down
        // kMaxRetiredPools swaps ago (each swap spawns and joins threads),
        // so any in-contract reference to them has long since drained.
        while (g_retired_pools->size() > kMaxRetiredPools) {
            delete g_retired_pools->front();
            g_retired_pools->erase(g_retired_pools->begin());
        }
        g_retired_count.store(g_retired_pools->size(),
                              std::memory_order_relaxed);
    }
    obs::MetricsRegistry::global().gauge("runtime.retired_pools").set(
        static_cast<int64_t>(g_retired_count.load(std::memory_order_relaxed)));
}

size_t
ThreadPool::retiredPoolCount()
{
    return g_retired_count.load(std::memory_order_relaxed);
}

int
ThreadPool::parseThreadsEnv(const char *value, std::string *error)
{
    const auto fail = [&](const char *why) {
        if (error != nullptr)
            *error = why;
        return 0;
    };
    if (value == nullptr || *value == '\0')
        return fail("empty value");
    errno = 0;
    char *end = nullptr;
    const long n = std::strtol(value, &end, 10);
    if (end == value)
        return fail("not a number");
    while (*end == ' ' || *end == '\t')
        ++end;
    if (*end != '\0')
        return fail("trailing garbage after the number");
    if (errno == ERANGE || n > INT_MAX)
        return fail("out of range");
    if (n <= 0)
        return fail("thread count must be >= 1");
    return static_cast<int>(n);
}

} // namespace runtime
} // namespace mirage
