#ifndef MIRAGE_RUNTIME_ENGINE_H
#define MIRAGE_RUNTIME_ENGINE_H

/**
 * @file
 * RuntimeEngine: an asynchronous, batched execution runtime in front of N
 * logical accelerator tiles. Each tile owns a full MirageAccelerator (its
 * numerics backends plus the analytic performance/power models) and a
 * deterministic per-tile Rng stream (Rng::split of the engine seed).
 *
 * Jobs — single GEMMs, inference passes and training steps over the
 * models::zoo shapes, or arbitrary per-tile tasks — enter through a
 * thread-safe bounded queue (submission blocks when the queue is full,
 * which is the engine's backpressure signal) and complete through
 * std::future. A dispatcher thread fuses compatible GEMM jobs (equal K and
 * N) into one batch, shards the batch's rows across the tiles, and runs
 * the shards on the global ThreadPool; inside each shard the per-format
 * GEMM hot paths parallelize further over rows/moduli. Non-GEMM jobs run
 * FIFO on the dispatcher thread itself (they are lightweight analytic
 * estimates or caller-supplied tasks; a long task therefore delays jobs
 * queued behind it).
 *
 * Determinism: with rounding-deterministic numerics (the default Mirage
 * BFP+RNS configuration rounds to nearest and draws no randomness) every
 * job's result is bit-identical to a serial single-tile run, independent
 * of thread count, tile count, or how jobs were batched — row sharding
 * never changes the per-element accumulation order.
 */

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/mirage.h"
#include "models/zoo.h"

namespace mirage {
namespace runtime {

/** Engine configuration. */
struct EngineConfig
{
    /// Logical accelerator tiles (each a MirageAccelerator + Rng stream).
    int tiles = 2;
    /// Bounded job-queue capacity; submit*() blocks while the queue is full.
    size_t queue_capacity = 64;
    /// Maximum number of compatible GEMM jobs fused into one dispatch.
    int max_batch = 4;
    /// Root seed: tile t draws from Rng(seed).split(t).
    uint64_t seed = 0x4d495241u;
    /// Numerics used by GEMM jobs (Emulated: BFP+RNS integer emulation).
    core::ExecutionMode mode = core::ExecutionMode::Emulated;
    /// Configuration applied to every tile's accelerator.
    arch::MirageConfig accel;

    /**
     * Throws std::invalid_argument naming the offending knob when
     * tiles <= 0, queue_capacity == 0, or max_batch <= 0. RuntimeEngine
     * construction calls this, so invalid configurations fail fast with a
     * catchable error instead of whatever follows downstream.
     */
    void validate() const;
};

/** One asynchronous GEMM request: C[m x n] = A[m x k] * B[k x n]. */
struct GemmRequest
{
    std::vector<float> a;
    std::vector<float> b;
    int m = 0, k = 0, n = 0;
};

/** Completed GEMM: the result matrix plus per-job timing. */
struct GemmResult
{
    std::vector<float> c;
    double latency_s = 0.0; ///< Submit-to-completion wall time [s].
    double queue_s = 0.0;   ///< Portion spent waiting in the queue [s].
    int shards = 0;         ///< Row shards the job was split into.
};

/** Aggregate engine statistics; all durations are wall-clock seconds. */
struct RuntimeReport
{
    uint64_t jobs_submitted = 0;
    uint64_t jobs_completed = 0;
    uint64_t gemm_jobs = 0;
    uint64_t inference_jobs = 0;
    uint64_t training_jobs = 0;
    uint64_t task_jobs = 0;
    uint64_t batches_dispatched = 0; ///< GEMM dispatch groups executed.
    uint64_t largest_batch = 0;      ///< Most GEMM jobs fused in one group.
    int64_t gemm_macs = 0;           ///< Sum of m*k*n over completed GEMMs.
    double wall_time_s = 0.0;        ///< Engine lifetime so far.
    double busy_time_s = 0.0;        ///< Sum of per-tile busy seconds.
    double total_latency_s = 0.0;    ///< Sum of per-job latencies.
    double max_latency_s = 0.0;
    size_t max_queue_depth = 0;
    int tiles = 0;

    /** Mean submit-to-completion latency per job [s]. */
    double avgLatencySeconds() const;

    /** Aggregate GEMM throughput [MAC/s] over the engine lifetime. */
    double throughputMacsPerSecond() const;

    /** Mean fraction of tiles busy: busy / (wall * tiles), in [0, 1]. */
    double utilization() const;
};

/**
 * The runtime engine. Construction spins up the dispatcher; destruction
 * drains every queued job (all futures complete) and joins.
 */
class RuntimeEngine
{
  public:
    explicit RuntimeEngine(EngineConfig cfg = {});
    ~RuntimeEngine();

    RuntimeEngine(const RuntimeEngine &) = delete;
    RuntimeEngine &operator=(const RuntimeEngine &) = delete;

    const EngineConfig &config() const;

    /** Queues one GEMM; blocks while the queue is full (backpressure). */
    std::future<GemmResult> submitGemm(GemmRequest req);

    /** Queues a full inference-pass estimate for a zoo model shape. */
    std::future<core::PerformanceReport>
    submitInference(models::ModelShape model, int64_t batch);

    /** Queues a training-step estimate (3 GEMMs/layer) for a zoo model. */
    std::future<core::PerformanceReport>
    submitTraining(models::ModelShape model, int64_t batch);

    /**
     * Queues an arbitrary task that runs on one tile with exclusive access
     * to its accelerator and its deterministic per-tile Rng stream.
     */
    std::future<void>
    submitTask(std::function<void(core::MirageAccelerator &, Rng &)> task);

    /** Blocks until every submitted job has completed. */
    void drain();

    /** Jobs currently waiting in the queue (excludes in-flight jobs). */
    size_t queueDepth() const;

    /** Snapshot of the aggregate statistics. */
    RuntimeReport report() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace runtime
} // namespace mirage

#endif // MIRAGE_RUNTIME_ENGINE_H
