#ifndef MIRAGE_RUNTIME_ENGINE_H
#define MIRAGE_RUNTIME_ENGINE_H

/**
 * @file
 * RuntimeEngine: an asynchronous, batched execution runtime in front of N
 * logical accelerator tiles. Each tile owns a full MirageAccelerator (its
 * numerics backends plus the analytic performance/power models) and a
 * deterministic per-tile Rng stream (Rng::split of the engine seed).
 *
 * Jobs — single GEMMs, inference passes and training steps over the
 * models::zoo shapes, or arbitrary per-tile tasks — enter through a
 * thread-safe bounded queue (submission blocks when the queue is full,
 * which is the engine's backpressure signal) and complete through
 * std::future. A dispatcher thread fuses compatible GEMM jobs (equal K and
 * N) into one batch, shards the batch's rows across the tiles, and runs
 * the shards on the global ThreadPool; inside each shard the per-format
 * GEMM hot paths parallelize further over rows/moduli. Non-GEMM jobs run
 * FIFO on the dispatcher thread itself (they are lightweight analytic
 * estimates or caller-supplied tasks; a long task therefore delays jobs
 * queued behind it).
 *
 * Determinism: with rounding-deterministic numerics (the default Mirage
 * BFP+RNS configuration rounds to nearest and draws no randomness) every
 * job's result is bit-identical to a serial single-tile run, independent
 * of thread count, tile count, or how jobs were batched — row sharding
 * never changes the per-element accumulation order.
 *
 * Fault tolerance: every tile carries a health state. A TileFailure
 * thrown while a tile executes (the "engine.tile_fail" injection point,
 * or real hardware-model faults) marks that tile unhealthy; the failed
 * job — and its whole fused batch — is retried on the remaining healthy
 * tiles with bounded attempts and deadline-aware backoff. Re-sharding
 * over fewer tiles is bit-identical because sharding never changes the
 * per-element accumulation order and per-unit Rng streams are keyed by
 * logical row, not tile. An unhealthy tile sits out for
 * `tile_cooldown_dispatches` dispatches, then rejoins on a probe; tile
 * health transitions are published to registered listeners (the serving
 * layer uses them to degrade admission capacity and drop the dead
 * tile's weight-cache entries).
 */

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/mirage.h"
#include "models/zoo.h"

namespace mirage {
namespace runtime {

/** Engine configuration. */
struct EngineConfig
{
    /// Logical accelerator tiles (each a MirageAccelerator + Rng stream).
    int tiles = 2;
    /// Bounded job-queue capacity; submit*() blocks while the queue is full.
    size_t queue_capacity = 64;
    /// Maximum number of compatible GEMM jobs fused into one dispatch.
    int max_batch = 4;
    /// Root seed: tile t draws from Rng(seed).split(t).
    uint64_t seed = 0x4d495241u;
    /// Numerics used by GEMM jobs (Emulated: BFP+RNS integer emulation).
    core::ExecutionMode mode = core::ExecutionMode::Emulated;
    /// Configuration applied to every tile's accelerator.
    arch::MirageConfig accel;
    /// Executions of one job before it fails terminally (first + retries).
    int max_job_attempts = 3;
    /// Dispatches an unhealthy tile sits out before a reintegration probe.
    /// Dispatch-count (not time) based so failover schedules replay
    /// deterministically under a fixed workload.
    int tile_cooldown_dispatches = 8;

    /**
     * Throws std::invalid_argument naming the offending knob when
     * tiles <= 0, queue_capacity == 0, or max_batch <= 0. RuntimeEngine
     * construction calls this, so invalid configurations fail fast with a
     * catchable error instead of whatever follows downstream.
     */
    void validate() const;
};

/** One asynchronous GEMM request: C[m x n] = A[m x k] * B[k x n]. */
struct GemmRequest
{
    std::vector<float> a;
    std::vector<float> b;
    int m = 0, k = 0, n = 0;
    /// Optional submit-to-completion budget [s]; 0 = none. Failover
    /// retries back off only within this budget and the job fails
    /// terminally once it is exhausted.
    double deadline_s = 0.0;
};

/** Completed GEMM: the result matrix plus per-job timing. */
struct GemmResult
{
    std::vector<float> c;
    double latency_s = 0.0; ///< Submit-to-completion wall time [s].
    double queue_s = 0.0;   ///< Portion spent waiting in the queue [s].
    int shards = 0;         ///< Row shards the job was split into.
};

/** Aggregate engine statistics; all durations are wall-clock seconds. */
struct RuntimeReport
{
    uint64_t jobs_submitted = 0;
    uint64_t jobs_completed = 0;
    uint64_t gemm_jobs = 0;
    uint64_t inference_jobs = 0;
    uint64_t training_jobs = 0;
    uint64_t task_jobs = 0;
    uint64_t batches_dispatched = 0; ///< GEMM dispatch groups executed.
    uint64_t largest_batch = 0;      ///< Most GEMM jobs fused in one group.
    uint64_t tile_failures = 0;      ///< Tile unhealthy transitions.
    uint64_t tile_reintegrations = 0; ///< Cooldown probes back to healthy.
    uint64_t job_retries = 0;        ///< Job executions repeated by failover.
    uint64_t jobs_failed = 0;        ///< Jobs failed after retries exhausted.
    int64_t gemm_macs = 0;           ///< Sum of m*k*n over completed GEMMs.
    double wall_time_s = 0.0;        ///< Engine lifetime so far.
    double busy_time_s = 0.0;        ///< Sum of per-tile busy seconds.
    double total_latency_s = 0.0;    ///< Sum of per-job latencies.
    double max_latency_s = 0.0;
    size_t max_queue_depth = 0;
    int tiles = 0;

    /** Mean submit-to-completion latency per job [s]. */
    double avgLatencySeconds() const;

    /** Aggregate GEMM throughput [MAC/s] over the engine lifetime. */
    double throughputMacsPerSecond() const;

    /** Mean fraction of tiles busy: busy / (wall * tiles), in [0, 1]. */
    double utilization() const;
};

/**
 * Thrown (by the hardware model, the "engine.tile_fail" injection point,
 * or a submitted task) to signal that the executing tile failed. The
 * engine reacts by marking the tile unhealthy and retrying the job on the
 * remaining healthy tiles; any other exception type propagates to the
 * job's future untouched. A task that throws TileFailure is re-executed
 * on another tile, so task bodies must be idempotent up to the point
 * where they can fail.
 */
class TileFailure : public std::runtime_error
{
  public:
    explicit TileFailure(const std::string &what) : std::runtime_error(what)
    {
    }
};

/** Per-task execution options (see submitTask). */
struct TaskOptions
{
    /// Submit-to-completion budget [s]; 0 = none. Bounds failover backoff
    /// the same way GemmRequest::deadline_s does.
    double deadline_s = 0.0;
    /// Called (from the dispatcher thread) with a failure description if
    /// the task fails terminally — retries exhausted or a non-TileFailure
    /// exception. Lets fire-and-forget submitters that discard the future
    /// observe engine-side failure; the future still carries the
    /// exception either way.
    std::function<void(const std::string &)> on_fail;
};

/**
 * The runtime engine. Construction spins up the dispatcher; destruction
 * drains every queued job (all futures complete) and joins.
 */
class RuntimeEngine
{
  public:
    explicit RuntimeEngine(EngineConfig cfg = {});
    ~RuntimeEngine();

    RuntimeEngine(const RuntimeEngine &) = delete;
    RuntimeEngine &operator=(const RuntimeEngine &) = delete;

    const EngineConfig &config() const;

    /** Queues one GEMM; blocks while the queue is full (backpressure). */
    std::future<GemmResult> submitGemm(GemmRequest req);

    /** Queues a full inference-pass estimate for a zoo model shape. */
    std::future<core::PerformanceReport>
    submitInference(models::ModelShape model, int64_t batch);

    /** Queues a training-step estimate (3 GEMMs/layer) for a zoo model. */
    std::future<core::PerformanceReport>
    submitTraining(models::ModelShape model, int64_t batch);

    /**
     * Queues an arbitrary task that runs on one tile with exclusive access
     * to its accelerator and its deterministic per-tile Rng stream.
     */
    std::future<void>
    submitTask(std::function<void(core::MirageAccelerator &, Rng &)> task);

    /** submitTask with a deadline budget and a terminal-failure callback. */
    std::future<void>
    submitTask(std::function<void(core::MirageAccelerator &, Rng &)> task,
               TaskOptions opts);

    /**
     * Marks tile `tile` unhealthy as if it had just failed mid-job
     * (listeners fire, cooldown starts). Deterministic failure hook for
     * benches and tests; jobs already running on the tile finish first.
     */
    void failTile(int tile);

    /** Tiles currently marked healthy (in [0, config().tiles]). */
    int healthyTiles() const;

    /**
     * Registers a tile health listener, called as (tile, healthy) on every
     * transition — unhealthy on failure, healthy again on a successful
     * cooldown probe. Invoked without engine locks held, but possibly from
     * the dispatcher thread: listeners must not block on engine draining.
     * Returns an id for removeTileListener.
     */
    int addTileListener(std::function<void(int, bool)> listener);

    /** Unregisters a listener; unknown ids are ignored. */
    void removeTileListener(int id);

    /** Blocks until every submitted job has completed. */
    void drain();

    /** Jobs currently waiting in the queue (excludes in-flight jobs). */
    size_t queueDepth() const;

    /** Snapshot of the aggregate statistics. */
    RuntimeReport report() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace runtime
} // namespace mirage

#endif // MIRAGE_RUNTIME_ENGINE_H
