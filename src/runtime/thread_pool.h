#ifndef MIRAGE_RUNTIME_THREAD_POOL_H
#define MIRAGE_RUNTIME_THREAD_POOL_H

/**
 * @file
 * Host-side execution resources for the simulator: a ThreadPool plus a
 * deterministic parallelFor. Mirage is a spatially parallel machine (many
 * MMVMUs operate simultaneously, paper Sec. IV/VI); the host simulator
 * mirrors that with data-parallel loops over independent rows, moduli and
 * tiles.
 *
 * Determinism contract: parallelFor always decomposes [0, n) into the same
 * fixed-grain blocks regardless of the worker count — including the serial
 * fast path — so callers that seed one Rng substream per row or block (see
 * Rng::split) produce bit-identical results at every thread count.
 */

#include <algorithm>
#include <condition_variable>
#include <cstdint>

#include "common/logging.h"
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mirage {
namespace runtime {

/**
 * A fixed-size worker pool with a FIFO task queue.
 *
 * parallelFor is cooperative: the calling thread claims blocks alongside
 * the workers, so nested parallelFor calls (e.g. an engine tile running a
 * row-parallel GEMM) can never deadlock — a caller whose helpers are all
 * busy simply executes every block itself.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 picks the machine default
     *  (MIRAGE_THREADS env var when set, else hardware_concurrency). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers_.size()); }

    /** Enqueues fire-and-forget work. */
    void submitDetached(std::function<void()> task);

    /** Enqueues a callable and returns a future for its result. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        submitDetached([task]() { (*task)(); });
        return fut;
    }

    /**
     * Runs body(begin, end) over the fixed-grain block decomposition of
     * [0, n): block b covers [b*grain, min(n, (b+1)*grain)). Blocks are
     * identical for every thread count (callers may derive a block id as
     * begin / grain). Blocks execute on the workers and the calling
     * thread; the call returns when all blocks have finished. The first
     * exception thrown by body is rethrown on the caller; blocks not yet
     * started when it was thrown are skipped (as in serial execution,
     * which stops at the throw), while blocks already in flight finish.
     */
    void parallelFor(int64_t n, int64_t grain,
                     const std::function<void(int64_t, int64_t)> &body);

    /**
     * True when a loop of `blocks` blocks would take the serial fast path
     * (single worker, single block, or a fork()ed child). Exposed so the
     * template parallelFor below can run that path inline — without
     * constructing a std::function, which would put one type-erasure heap
     * allocation on every hot-path call.
     */
    bool runsSerially(int64_t blocks) const;

    /**
     * The process-wide pool used by the parallelized GEMM hot paths.
     * Created on first use, sized by MIRAGE_THREADS when set, else
     * hardware_concurrency.
     */
    static ThreadPool &global();

    /**
     * Replaces the global pool with one of `threads` workers (the old pool
     * drains and joins first). Must not race with in-flight parallel work;
     * intended for benchmark/test sweeps over thread counts.
     */
    static void setGlobalThreads(int threads);

  private:
    void workerLoop();

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> tasks_;
    std::vector<std::thread> workers_;
    bool stop_ = false;
    /// Pid at construction: fork()ed children (e.g. gtest death tests) do
    /// not inherit the workers, so parallelFor runs serially there.
    int64_t owner_pid_ = 0;
};

/**
 * parallelFor on the global pool — the hot-path entry point. A template so
 * the serial fast path (one worker, one block, fork()ed child) invokes the
 * body directly: no std::function is materialized and the call performs
 * zero heap allocations, which is what keeps warm single-block kernels —
 * and every kernel under MIRAGE_THREADS=1 — allocation-free (see
 * tests/test_alloc_guard.cpp). The block decomposition is identical to the
 * pool's own parallelFor, preserving the determinism contract above.
 */
template <typename Body>
inline void
parallelFor(int64_t n, int64_t grain, Body &&body)
{
    if (n <= 0)
        return;
    MIRAGE_ASSERT(grain >= 1, "parallelFor grain must be >= 1");
    const int64_t blocks = (n + grain - 1) / grain;
    ThreadPool &pool = ThreadPool::global();
    if (pool.runsSerially(blocks)) {
        for (int64_t b = 0; b < blocks; ++b)
            body(b * grain, std::min(n, (b + 1) * grain));
        return;
    }
    pool.parallelFor(n, grain,
                     std::function<void(int64_t, int64_t)>(
                         std::forward<Body>(body)));
}

/**
 * Returns `grain` when `work` (an approximate per-call operation count) is
 * worth farming out, else `n` — which collapses the loop into one block so
 * parallelFor takes its zero-synchronization serial path. Safe wherever
 * results do not depend on the block decomposition: rng-free loops, or
 * per-item Rng::stream substreams (every parallel hot path in this
 * library qualifies).
 */
inline int64_t
serialBelow(int64_t n, int64_t grain, int64_t work, int64_t min_work)
{
    return work < min_work ? n : grain;
}

} // namespace runtime
} // namespace mirage

#endif // MIRAGE_RUNTIME_THREAD_POOL_H
