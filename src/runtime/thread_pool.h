#ifndef MIRAGE_RUNTIME_THREAD_POOL_H
#define MIRAGE_RUNTIME_THREAD_POOL_H

/**
 * @file
 * Host-side execution resources for the simulator: a ThreadPool plus a
 * deterministic parallelFor. Mirage is a spatially parallel machine (many
 * MMVMUs operate simultaneously, paper Sec. IV/VI); the host simulator
 * mirrors that with data-parallel loops over independent rows, moduli and
 * tiles.
 *
 * Determinism contract: parallelFor always decomposes [0, n) into the same
 * fixed-grain blocks regardless of the worker count — including the serial
 * fast path — so callers that seed one Rng substream per row or block (see
 * Rng::split) produce bit-identical results at every thread count.
 *
 * Dispatch model: parallelFor does NOT push per-helper tasks through the
 * task queue. The loop descriptor lives on the caller's stack and is
 * broadcast through a lock-free slot array; workers discover it with one
 * atomic load and claim blocks straight off its counter. One mutex
 * acquisition and one notify_all per parallelFor call (to rouse sleeping
 * workers), zero heap allocations, no std::function on the threaded path.
 */

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>

#include "common/logging.h"
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace mirage {
namespace runtime {

namespace detail {

/**
 * Shared state of one parallelFor call. Lives on the caller's stack: the
 * caller clears its broadcast slot and waits out the last visiting worker
 * before returning, so a worker can never dereference a dead loop. The
 * body is a plain function pointer + context — no std::function, no heap.
 */
struct ForLoop
{
    int64_t n = 0;
    int64_t grain = 1;
    int64_t blocks = 0;
    void (*invoke)(void *, int64_t, int64_t) = nullptr;
    void *ctx = nullptr;

    /// `next` (hammered by every claim) and `done` (hammered by every
    /// completion) live on separate cache lines; sharing one line made
    /// each claim invalidate each completion and vice versa.
    alignas(64) std::atomic<int64_t> next{0};
    alignas(64) std::atomic<int64_t> done{0};

    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable done_cv;
    std::exception_ptr error;

    /** Claims and runs blocks until none remain. Returns true when at
     *  least one block was claimed (lets idle workers distinguish real
     *  work from a drained loop awaiting retirement). */
    bool runBlocks();
};

} // namespace detail

/**
 * A fixed-size worker pool with broadcast loop dispatch plus a FIFO task
 * queue for coarse-grained futures (engine shards, detached jobs).
 *
 * parallelFor is cooperative: the calling thread claims blocks alongside
 * the workers, so nested parallelFor calls (e.g. an engine tile running a
 * row-parallel GEMM) can never deadlock — a caller that finds no free
 * broadcast slot, or whose workers are all busy, simply executes every
 * block itself.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; <= 0 picks the machine default
     *  (MIRAGE_THREADS env var when valid, else hardware_concurrency). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (0 after shutdown()). */
    int size() const { return size_.load(std::memory_order_relaxed); }

    /** Enqueues fire-and-forget work. On a pool that has been shut down
     *  the task runs inline on the calling thread instead — a stale
     *  reference to a replaced global pool degrades gracefully rather
     *  than deadlocking on workers that no longer exist.
     *
     *  Reentrancy hazard of that degradation: the inline task runs on the
     *  *calling* thread (after all pool-internal locks are released), so a
     *  caller that holds a lock the task also acquires self-deadlocks, and
     *  a caller that assumes the task runs asynchronously reenters its own
     *  code. Do not submit under locks the task may take, and do not rely
     *  on submit() returning before the task starts. */
    void submitDetached(std::function<void()> task);

    /** Enqueues a callable and returns a future for its result. Inherits
     *  submitDetached's shut-down-pool behavior: on a stopped pool the
     *  task runs inline on the calling thread before submit() returns (see
     *  the reentrancy note there). */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        submitDetached([task]() { (*task)(); });
        return fut;
    }

    /**
     * Runs body(begin, end) over the fixed-grain block decomposition of
     * [0, n): block b covers [b*grain, min(n, (b+1)*grain)). Blocks are
     * identical for every thread count (callers may derive a block id as
     * begin / grain). Blocks execute on the workers and the calling
     * thread; the call returns when all blocks have finished. The first
     * exception thrown by body is rethrown on the caller; blocks not yet
     * started when it was thrown are skipped (as in serial execution,
     * which stops at the throw), while blocks already in flight finish.
     *
     * A template so the body is captured as a function pointer + context
     * on this call's stack frame: the threaded dispatch path performs no
     * heap allocation and no std::function type erasure.
     */
    template <typename Body>
    void
    parallelFor(int64_t n, int64_t grain, Body &&body)
    {
        if (n <= 0)
            return;
        MIRAGE_ASSERT(grain >= 1, "parallelFor grain must be >= 1");
        const int64_t blocks = (n + grain - 1) / grain;
        if (runsSerially(blocks)) {
            for (int64_t b = 0; b < blocks; ++b)
                body(b * grain, std::min(n, (b + 1) * grain));
            return;
        }
        using B = std::remove_reference_t<Body>;
        detail::ForLoop loop;
        loop.n = n;
        loop.grain = grain;
        loop.blocks = blocks;
        loop.ctx =
            const_cast<void *>(static_cast<const void *>(std::addressof(body)));
        loop.invoke = [](void *ctx, int64_t begin, int64_t end) {
            (*static_cast<B *>(ctx))(begin, end);
        };
        runLoop(loop);
    }

    /**
     * True when a loop of `blocks` blocks would take the serial fast path
     * (single worker, single block, a fork()ed child, or a pool that has
     * been shut down). The serial path is inline and allocation-free.
     */
    bool runsSerially(int64_t blocks) const;

    /**
     * Joins the workers and drains the task queue. Afterwards size() == 0:
     * parallelFor degrades to the serial path and submitDetached runs
     * tasks inline, so stale references stay usable forever. Idempotent.
     */
    void shutdown();

    /**
     * The process-wide pool used by the parallelized GEMM hot paths.
     * Created on first use, sized by MIRAGE_THREADS when set, else
     * hardware_concurrency.
     */
    static ThreadPool &global();

    /**
     * Replaces the global pool with one of `threads` workers. The old pool
     * is shut down (workers join, queue drains) and then *retired*: a
     * thread that grabbed `ThreadPool::global()` before the swap may still
     * hold the reference, and deleting the object under it would be a
     * use-after-free. A retired pool is inert — parallelFor runs serially,
     * submits run inline — so stale references stay safe.
     *
     * Retired shells (mutex, empty task deque, slot array — a few KiB;
     * the worker threads themselves are joined) are kept for a grace
     * window of kMaxRetiredPools subsequent swaps and then freed, so the
     * list no longer grows without bound. Contract: a cached global()
     * reference must not be used across kMaxRetiredPools or more
     * setGlobalThreads calls — code that re-fetches global() per call
     * (runtime::parallelFor and every hot path in this library) is always
     * in contract. The retired count is exported as the obs gauge
     * `runtime.retired_pools`. This API is for benchmark/test sweeps over
     * thread counts — do not call it from steady-state production loops.
     */
    static void setGlobalThreads(int threads);

    /// Retired shells kept after a setGlobalThreads swap (grace window).
    static constexpr size_t kMaxRetiredPools = 8;

    /** Current number of retained retired pools. Exposed for tests. */
    static size_t retiredPoolCount();

    /**
     * Parses a MIRAGE_THREADS-style string. Returns the thread count for a
     * valid positive integer; returns 0 and fills *error (when non-null)
     * for empty, non-numeric, trailing-junk, zero/negative, or
     * out-of-range values. Exposed for unit tests.
     */
    static int parseThreadsEnv(const char *value, std::string *error = nullptr);

  private:
    /** One broadcast slot: a published loop plus a visitor count that
     *  keeps retirement safe (a worker bumps visitors before touching the
     *  loop; the caller clears the pointer and waits for visitors == 0
     *  before its stack frame dies). Both fields are line-padded — they
     *  are the only cross-thread traffic on the dispatch fast path. */
    struct LoopSlot
    {
        alignas(64) std::atomic<detail::ForLoop *> loop{nullptr};
        alignas(64) std::atomic<int> visitors{0};
    };
    /// Concurrent parallelFor calls beyond this nest depth run caller-only
    /// (still correct and deterministic, just not accelerated).
    static constexpr int kLoopSlots = 8;

    void workerLoop();
    /** Publishes `loop`, participates, waits for completion, retires the
     *  slot, rethrows the first body exception. */
    void runLoop(detail::ForLoop &loop);

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> tasks_;
    std::vector<std::thread> workers_;
    LoopSlot slots_[kLoopSlots];
    /// Bumped (under mu_) whenever a loop is published so sleeping workers
    /// re-scan the slots; the cv predicate compares against it.
    std::atomic<uint64_t> wake_epoch_{0};
    /// Worker count; atomic so runsSerially/shutdown need no lock.
    std::atomic<int> size_{0};
    bool stop_ = false;
    /// Pid at construction: fork()ed children (e.g. gtest death tests) do
    /// not inherit the workers, so parallelFor runs serially there.
    int64_t owner_pid_ = 0;
};

/**
 * parallelFor on the global pool — the hot-path entry point. Both paths
 * are allocation-free: the serial fast path (one worker, one block,
 * fork()ed child) invokes the body directly, and the threaded path hands
 * the pool a stack-resident loop descriptor (see ThreadPool::parallelFor).
 * That is what keeps warm kernels allocation-free at every thread count
 * (see tests/test_alloc_guard.cpp). The block decomposition is identical
 * on every path, preserving the determinism contract above.
 */
template <typename Body>
inline void
parallelFor(int64_t n, int64_t grain, Body &&body)
{
    if (n <= 0)
        return;
    MIRAGE_ASSERT(grain >= 1, "parallelFor grain must be >= 1");
    const int64_t blocks = (n + grain - 1) / grain;
    ThreadPool &pool = ThreadPool::global();
    if (pool.runsSerially(blocks)) {
        for (int64_t b = 0; b < blocks; ++b)
            body(b * grain, std::min(n, (b + 1) * grain));
        return;
    }
    pool.parallelFor(n, grain, std::forward<Body>(body));
}

/**
 * Returns `grain` when `work` (an approximate per-call operation count) is
 * worth farming out, else `n` — which collapses the loop into one block so
 * parallelFor takes its zero-synchronization serial path. Safe wherever
 * results do not depend on the block decomposition: rng-free loops, or
 * per-item Rng::stream substreams (every parallel hot path in this
 * library qualifies).
 */
inline int64_t
serialBelow(int64_t n, int64_t grain, int64_t work, int64_t min_work)
{
    return work < min_work ? n : grain;
}

} // namespace runtime
} // namespace mirage

#endif // MIRAGE_RUNTIME_THREAD_POOL_H
