#include "runtime/engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>

#include "common/logging.h"
#include "fault/injection.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace mirage {
namespace runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Pre-registered engine metric handles: resolved once (magic static), so
 *  record sites never touch the registry map. Clock samples recorded here
 *  are the same ones RuntimeReport already takes — observability adds no
 *  new wall-clock reads to numeric state. */
struct EngineObs
{
    obs::Counter &jobs_submitted;
    obs::Counter &jobs_completed;
    obs::Counter &batches;
    obs::Counter &fused_jobs;
    obs::Counter &shards;
    obs::Counter &macs;
    obs::Counter &modeled_ns;
    obs::Counter &modeled_nj;
    obs::Counter &tile_failures;
    obs::Counter &tile_reintegrations;
    obs::Counter &job_retries;
    obs::Counter &jobs_failed;
    obs::Gauge &queue_depth;
    obs::Gauge &healthy_tiles;
    obs::Histogram &job_latency_ns;
    obs::Histogram &batch_jobs;

    static EngineObs &
    get()
    {
        static auto &reg = obs::MetricsRegistry::global();
        static EngineObs o{reg.counter("engine.jobs_submitted"),
                           reg.counter("engine.jobs_completed"),
                           reg.counter("engine.batches"),
                           reg.counter("engine.fused_jobs"),
                           reg.counter("engine.shards"),
                           reg.counter("engine.macs"),
                           reg.counter("engine.modeled_ns"),
                           reg.counter("engine.modeled_nj"),
                           reg.counter("engine.tile_failures"),
                           reg.counter("engine.tile_reintegrations"),
                           reg.counter("engine.job_retries"),
                           reg.counter("engine.jobs_failed"),
                           reg.gauge("engine.queue_depth"),
                           reg.gauge("engine.healthy_tiles"),
                           reg.histogram("engine.job_latency_ns"),
                           reg.histogram("engine.batch_jobs")};
        return o;
    }
};

/** Shared "engine.tile_fail" injection point (see fault/injection.h). */
fault::FaultPoint &
tileFailPoint()
{
    static fault::FaultPoint fp("engine.tile_fail");
    return fp;
}

} // namespace

void
EngineConfig::validate() const
{
    if (tiles <= 0)
        throw std::invalid_argument(
            "EngineConfig.tiles must be >= 1, got " + std::to_string(tiles));
    if (queue_capacity == 0)
        throw std::invalid_argument("EngineConfig.queue_capacity must be >= 1");
    if (max_batch <= 0)
        throw std::invalid_argument("EngineConfig.max_batch must be >= 1, got " +
                                    std::to_string(max_batch));
    if (max_job_attempts <= 0)
        throw std::invalid_argument(
            "EngineConfig.max_job_attempts must be >= 1, got " +
            std::to_string(max_job_attempts));
    if (tile_cooldown_dispatches <= 0)
        throw std::invalid_argument(
            "EngineConfig.tile_cooldown_dispatches must be >= 1, got " +
            std::to_string(tile_cooldown_dispatches));
}

double
RuntimeReport::avgLatencySeconds() const
{
    return jobs_completed > 0
               ? total_latency_s / static_cast<double>(jobs_completed)
               : 0.0;
}

double
RuntimeReport::throughputMacsPerSecond() const
{
    return wall_time_s > 0
               ? static_cast<double>(gemm_macs) / wall_time_s
               : 0.0;
}

double
RuntimeReport::utilization() const
{
    if (wall_time_s <= 0 || tiles <= 0)
        return 0.0;
    return busy_time_s / (wall_time_s * tiles);
}

// ---------------------------------------------------------------------------
// Job representation
// ---------------------------------------------------------------------------

namespace {

struct GemmJob
{
    GemmRequest req;
    std::promise<GemmResult> promise;
    Clock::time_point submitted;
    uint64_t ctx = 0; ///< Submitter's request id (causal tracing).
};

struct EstimateJob
{
    models::ModelShape model;
    int64_t batch = 1;
    bool training = false;
    std::promise<core::PerformanceReport> promise;
    Clock::time_point submitted;
    uint64_t ctx = 0; ///< Submitter's request id (causal tracing).
};

struct TaskJob
{
    std::function<void(core::MirageAccelerator &, Rng &)> fn;
    std::promise<void> promise;
    Clock::time_point submitted;
    uint64_t ctx = 0;        ///< Submitter's request id (causal tracing).
    double deadline_s = 0.0; ///< Failover budget [s]; 0 = none.
    /// Terminal-failure callback for submitters that discard the future.
    std::function<void(const std::string &)> on_fail;
};

using Job = std::variant<GemmJob, EstimateJob, TaskJob>;

/** One contiguous row range of one batched GEMM job. */
struct Shard
{
    size_t job = 0;      ///< Index into the dispatch group.
    int row_begin = 0;   ///< First A/C row of this shard.
    int row_end = 0;     ///< One past the last row.
};

} // namespace

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

struct RuntimeEngine::Impl
{
    /** One logical accelerator tile. Only one shard runs on a tile at a
     *  time, so the accelerator's mutable backends need no locking.
     *  `healthy`/`cooldown` are guarded by mu: health is read when a
     *  dispatch is planned and written when a failure is collected or a
     *  cooldown expires, never concurrently with shard execution. */
    struct Tile
    {
        core::MirageAccelerator accel;
        Rng rng;
        bool healthy = true;
        int cooldown = 0; ///< Dispatches left before a reintegration probe.

        Tile(const arch::MirageConfig &cfg, Rng stream)
            : accel(cfg), rng(stream)
        {
        }
    };

    /** One tile health transition to publish to listeners. */
    struct TileEvent
    {
        int tile = 0;
        bool healthy = false;
    };

    explicit Impl(EngineConfig config) : cfg(std::move(config))
    {
        cfg.validate();
        const Rng root(cfg.seed);
        tiles.reserve(static_cast<size_t>(cfg.tiles));
        tile_macs.reserve(static_cast<size_t>(cfg.tiles));
        for (int t = 0; t < cfg.tiles; ++t) {
            tiles.push_back(std::make_unique<Tile>(
                cfg.accel, root.split(static_cast<uint64_t>(t))));
            // Per-tile MAC counters, registered up front so the shard hot
            // path only does a relaxed fetch_add.
            tile_macs.push_back(&obs::MetricsRegistry::global().counter(
                "engine.tile" + std::to_string(t) + ".macs"));
        }
        start = Clock::now();
        stats.tiles = cfg.tiles;
        EngineObs::get().healthy_tiles.set(cfg.tiles);
        dispatcher = std::thread([this] { dispatchLoop(); });
    }

    ~Impl()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stop = true;
        }
        not_empty.notify_all();
        dispatcher.join();
    }

    void
    enqueue(Job job)
    {
        std::unique_lock<std::mutex> lk(mu);
        MIRAGE_ASSERT(!stop, "submit on a stopped RuntimeEngine");
        not_full.wait(lk,
                      [this] { return queue.size() < cfg.queue_capacity; });
        queue.push_back(std::move(job));
        ++stats.jobs_submitted;
        stats.max_queue_depth = std::max(stats.max_queue_depth, queue.size());
        EngineObs::get().queue_depth.set(static_cast<int64_t>(queue.size()));
        lk.unlock();
        not_empty.notify_one();
        EngineObs::get().jobs_submitted.add(1);
    }

    void
    dispatchLoop()
    {
        for (;;) {
            std::unique_lock<std::mutex> lk(mu);
            not_empty.wait(lk, [this] { return stop || !queue.empty(); });
            if (queue.empty()) {
                if (stop)
                    return;
                continue;
            }
            Job first = std::move(queue.front());
            queue.pop_front();
            // Unhealthy tiles count down one cooldown step per dispatch;
            // expired ones rejoin the healthy set (the next dispatch that
            // lands on them is the reintegration probe).
            const std::vector<TileEvent> probes = advanceCooldownsLocked();

            if (std::holds_alternative<GemmJob>(first)) {
                // Fuse queued GEMM jobs with the same contraction depth and
                // output width into one dispatch group (stable order).
                std::vector<GemmJob> group;
                {
                    MIRAGE_SPAN("engine.fuse");
                    group.push_back(std::move(std::get<GemmJob>(first)));
                    const int k = group.front().req.k;
                    const int n = group.front().req.n;
                    for (auto it = queue.begin();
                         it != queue.end() &&
                         group.size() < static_cast<size_t>(cfg.max_batch);) {
                        GemmJob *g = std::get_if<GemmJob>(&*it);
                        if (g != nullptr && g->req.k == k && g->req.n == n) {
                            group.push_back(std::move(*g));
                            it = queue.erase(it);
                        } else {
                            ++it;
                        }
                    }
                }
                in_flight += group.size();
                EngineObs::get().queue_depth.set(
                    static_cast<int64_t>(queue.size()));
                lk.unlock();
                not_full.notify_all();
                publishTileEvents(probes);
                EngineObs::get().fused_jobs.add(group.size() - 1);
                executeGemmGroup(std::move(group));
            } else {
                in_flight += 1;
                EngineObs::get().queue_depth.set(
                    static_cast<int64_t>(queue.size()));
                lk.unlock();
                not_full.notify_all();
                publishTileEvents(probes);
                executeSingle(std::move(first));
            }
        }
    }

    /** Healthy tile indices; when every tile is unhealthy, forces a probe
     *  of the tile closest to reintegration so the engine never wedges. */
    std::vector<size_t>
    planTiles(bool *forced_probe)
    {
        std::lock_guard<std::mutex> lk(mu);
        std::vector<size_t> active;
        for (size_t t = 0; t < tiles.size(); ++t) {
            if (tiles[t]->healthy)
                active.push_back(t);
        }
        *forced_probe = active.empty();
        if (active.empty()) {
            size_t probe = 0;
            for (size_t t = 1; t < tiles.size(); ++t) {
                if (tiles[t]->cooldown < tiles[probe]->cooldown)
                    probe = t;
            }
            active.push_back(probe);
        }
        return active;
    }

    /** Marks `failed` tiles unhealthy and publishes the transitions. */
    void
    markTilesFailed(const std::vector<size_t> &failed)
    {
        std::vector<TileEvent> events;
        int healthy_now = 0;
        {
            std::lock_guard<std::mutex> lk(mu);
            for (const size_t t : failed) {
                Tile &tile = *tiles[t];
                if (tile.healthy) {
                    tile.healthy = false;
                    ++stats.tile_failures;
                    events.push_back({static_cast<int>(t), false});
                }
                tile.cooldown = cfg.tile_cooldown_dispatches;
            }
            for (const auto &t : tiles)
                healthy_now += t->healthy ? 1 : 0;
        }
        if (events.empty())
            return;
        EngineObs::get().tile_failures.add(events.size());
        EngineObs::get().healthy_tiles.set(healthy_now);
        for (const TileEvent &e : events)
            MIRAGE_WARN("engine: tile ", e.tile, " marked unhealthy (",
                        healthy_now, "/", tiles.size(), " tiles healthy)");
        publishTileEvents(events);
    }

    /** Marks one tile healthy after a successful forced probe. */
    void
    markTileRecovered(size_t t)
    {
        int healthy_now = 0;
        {
            std::lock_guard<std::mutex> lk(mu);
            Tile &tile = *tiles[t];
            if (tile.healthy)
                return;
            tile.healthy = true;
            tile.cooldown = 0;
            ++stats.tile_reintegrations;
            for (const auto &tp : tiles)
                healthy_now += tp->healthy ? 1 : 0;
        }
        EngineObs::get().tile_reintegrations.add(1);
        EngineObs::get().healthy_tiles.set(healthy_now);
        publishTileEvents({TileEvent{static_cast<int>(t), true}});
    }

    /** Steps every unhealthy tile's cooldown; expired tiles rejoin.
     *  Caller holds mu; returned events go to publishTileEvents after
     *  the lock is dropped. */
    std::vector<TileEvent>
    advanceCooldownsLocked()
    {
        std::vector<TileEvent> events;
        for (size_t t = 0; t < tiles.size(); ++t) {
            Tile &tile = *tiles[t];
            if (tile.healthy)
                continue;
            if (tile.cooldown > 0 && --tile.cooldown == 0) {
                tile.healthy = true;
                ++stats.tile_reintegrations;
                events.push_back({static_cast<int>(t), true});
            }
        }
        if (!events.empty()) {
            int healthy_now = 0;
            for (const auto &t : tiles)
                healthy_now += t->healthy ? 1 : 0;
            EngineObs::get().tile_reintegrations.add(events.size());
            EngineObs::get().healthy_tiles.set(healthy_now);
        }
        return events;
    }

    /** Invokes every registered tile listener for each event. */
    void
    publishTileEvents(const std::vector<TileEvent> &events)
    {
        if (events.empty())
            return;
        std::vector<std::function<void(int, bool)>> snapshot;
        {
            std::lock_guard<std::mutex> lk(listeners_mu);
            snapshot.reserve(listeners.size());
            for (const auto &kv : listeners)
                snapshot.push_back(kv.second);
        }
        for (const TileEvent &e : events) {
            for (const auto &fn : snapshot)
                fn(e.tile, e.healthy);
        }
    }

    /** Smallest remaining deadline budget across `group` [s]; +inf when no
     *  job carries a deadline. */
    static double
    remainingBudget(const std::vector<GemmJob> &group, Clock::time_point now)
    {
        double remaining = std::numeric_limits<double>::infinity();
        for (const GemmJob &job : group) {
            if (job.req.deadline_s > 0.0) {
                remaining = std::min(remaining, job.req.deadline_s -
                                                    secondsSince(job.submitted,
                                                                 now));
            }
        }
        return remaining;
    }

    /** Deadline-aware backoff before retry attempt `attempt + 1`: an
     *  exponential pause, truncated so it never spends more than half of
     *  the tightest remaining deadline. */
    static void
    backoff(int attempt, double remaining_s)
    {
        double pause_s = std::min(100e-6 * (1 << std::min(attempt - 1, 6)),
                                  5e-3);
        if (remaining_s != std::numeric_limits<double>::infinity())
            pause_s = std::min(pause_s, std::max(0.0, remaining_s * 0.5));
        if (pause_s > 0.0)
            std::this_thread::sleep_for(std::chrono::duration<double>(pause_s));
    }

    /**
     * Executes a dispatch group: every job's rows are cut into at most
     * `tiles` shards, shards are assigned round-robin, and each tile runs
     * its shards sequentially while tiles run in parallel on the global
     * pool. Row sharding is exact — every output element is produced by
     * the same per-element computation as an unsharded run.
     *
     * Failover: a tile that throws TileFailure (injected via
     * "engine.tile_fail" or real) is marked unhealthy and the whole group
     * is re-planned over the surviving tiles and re-executed — result
     * buffers are rewritten wholesale, and re-sharding preserves
     * bit-identical results (see the file header). Attempts are bounded
     * by cfg.max_job_attempts and by the tightest job deadline.
     */
    void
    executeGemmGroup(std::vector<GemmJob> group)
    {
        MIRAGE_SPAN("engine.batch");
        const Clock::time_point dispatch_start = Clock::now();

        std::vector<std::vector<float>> results(group.size());
        std::vector<int> job_shards(group.size(), 0);
        std::exception_ptr error;
        double busy_total = 0.0;
        uint64_t survived_failures = 0;
        int attempt = 0;

        for (;;) {
            ++attempt;
            bool forced_probe = false;
            const std::vector<size_t> active = planTiles(&forced_probe);
            const int tile_count = static_cast<int>(active.size());

            // Shard plan: prefer job-level parallelism — row-splitting a
            // job means every shard re-encodes the job's full B operand,
            // so rows are only split when the fused group alone cannot
            // fill the active tiles.
            const int shards_per_job = std::max(
                1, tile_count / static_cast<int>(group.size()));
            std::vector<Shard> shards;
            for (size_t j = 0; j < group.size(); ++j) {
                const GemmRequest &req = group[j].req;
                results[j].assign(static_cast<size_t>(req.m) * req.n, 0.0f);
                const int rows_per_shard =
                    std::max(1, (req.m + shards_per_job - 1) / shards_per_job);
                job_shards[j] = 0;
                for (int r0 = 0; r0 < req.m; r0 += rows_per_shard) {
                    shards.push_back({j, r0,
                                      std::min(req.m, r0 + rows_per_shard)});
                    ++job_shards[j];
                }
            }

            // shard s runs on active tile s % tile_count; one parallelFor
            // block per tile keeps each accelerator single-threaded while
            // tiles overlap. Each leg records its own failure slot, so a
            // TileFailure aborts that tile's shards without touching the
            // other legs.
            std::vector<double> tile_busy(active.size(), 0.0);
            std::vector<char> leg_failed(active.size(), 0);
            try {
                ThreadPool::global().parallelFor(
                    tile_count, 1, [&](int64_t t0, int64_t t1) {
                        for (int64_t t = t0; t < t1; ++t) {
                            MIRAGE_SPAN("engine.tile");
                            const Clock::time_point tile_start = Clock::now();
                            bool ran = false;
                            try {
                                for (size_t s = static_cast<size_t>(t);
                                     s < shards.size();
                                     s += static_cast<size_t>(tile_count)) {
                                    if (!ran && tileFailPoint().shouldFire())
                                        throw TileFailure(
                                            "injected tile failure "
                                            "(engine.tile_fail)");
                                    runShard(group, shards[s],
                                             *tiles[active[static_cast<size_t>(
                                                 t)]],
                                             active[static_cast<size_t>(t)],
                                             results);
                                    ran = true;
                                }
                            } catch (const TileFailure &) {
                                leg_failed[static_cast<size_t>(t)] = 1;
                            }
                            if (ran || leg_failed[static_cast<size_t>(t)]) {
                                tile_busy[static_cast<size_t>(t)] =
                                    secondsSince(tile_start, Clock::now());
                            }
                        }
                    });
            } catch (...) {
                error = std::current_exception();
            }
            for (double b : tile_busy)
                busy_total += b;
            if (error)
                break;

            std::vector<size_t> failed;
            for (size_t t = 0; t < leg_failed.size(); ++t) {
                if (leg_failed[t])
                    failed.push_back(active[t]);
            }
            if (failed.empty()) {
                if (forced_probe)
                    markTileRecovered(active[0]);
                // Every failure this group survived is a recovered fault.
                for (uint64_t i = 0; i < survived_failures; ++i)
                    fault::recovered("engine.tile_fail");
                break;
            }

            survived_failures += failed.size();
            markTilesFailed(failed);
            const double remaining = remainingBudget(group, Clock::now());
            if (attempt >= cfg.max_job_attempts) {
                error = std::make_exception_ptr(TileFailure(
                    "GEMM batch failed: tiles kept failing through " +
                    std::to_string(attempt) + " attempts"));
                break;
            }
            if (remaining <= 0.0) {
                error = std::make_exception_ptr(TileFailure(
                    "GEMM batch failed: deadline exhausted after tile "
                    "failure (attempt " +
                    std::to_string(attempt) + ")"));
                break;
            }
            MIRAGE_SPAN("engine.retry");
            {
                std::lock_guard<std::mutex> lk(mu);
                stats.job_retries += group.size();
            }
            EngineObs::get().job_retries.add(group.size());
            backoff(attempt, remaining);
        }

        // Fulfill promises before publishing completion, so drain() never
        // unblocks while a future is still pending.
        const Clock::time_point end = Clock::now();
        for (size_t j = 0; j < group.size(); ++j) {
            if (error) {
                group[j].promise.set_exception(error);
                continue;
            }
            GemmResult res;
            res.c = std::move(results[j]);
            res.latency_s = secondsSince(group[j].submitted, end);
            res.queue_s = secondsSince(group[j].submitted, dispatch_start);
            res.shards = job_shards[j];
            group[j].promise.set_value(std::move(res));
        }

        {
            std::lock_guard<std::mutex> lk(mu);
            ++stats.batches_dispatched;
            stats.largest_batch =
                std::max<uint64_t>(stats.largest_batch, group.size());
            stats.busy_time_s += busy_total;
            if (error)
                stats.jobs_failed += group.size();
            for (size_t j = 0; j < group.size(); ++j) {
                const GemmRequest &req = group[j].req;
                const double latency = secondsSince(group[j].submitted, end);
                ++stats.jobs_completed;
                ++stats.gemm_jobs;
                stats.gemm_macs += static_cast<int64_t>(req.m) * req.k * req.n;
                stats.total_latency_s += latency;
                stats.max_latency_s = std::max(stats.max_latency_s, latency);
                EngineObs::get().job_latency_ns.recordNanosOf(latency);
            }
            in_flight -= group.size();
        }
        if (error)
            EngineObs::get().jobs_failed.add(group.size());
        EngineObs::get().batches.add(1);
        EngineObs::get().batch_jobs.record(group.size());
        EngineObs::get().jobs_completed.add(group.size());
        idle.notify_all();
    }

    void
    runShard(std::vector<GemmJob> &group, const Shard &shard, Tile &tile,
             size_t tile_index, std::vector<std::vector<float>> &results)
    {
        MIRAGE_SPAN("engine.shard");
        // Pool-thread leg of the causal trace: the shard runs under the
        // submitting request's context.
        obs::RequestScope ctx_scope(group[shard.job].ctx);
        obs::traceFlow("request", group[shard.job].ctx, 't');
        const GemmRequest &req = group[shard.job].req;
        const int rows = shard.row_end - shard.row_begin;
        const uint64_t shard_macs = static_cast<uint64_t>(rows) *
                                    static_cast<uint64_t>(req.k) *
                                    static_cast<uint64_t>(req.n);
        EngineObs::get().shards.add(1);
        EngineObs::get().macs.add(shard_macs);
        tile_macs[tile_index]->add(shard_macs);
        // Shard rows are contiguous, so both the A slice and the C slice
        // are zero-copy views — the accelerator writes its output straight
        // into the caller-visible result buffer.
        const std::span<const float> a_slice(
            req.a.data() + static_cast<size_t>(shard.row_begin) * req.k,
            static_cast<size_t>(rows) * req.k);
        const std::span<float> c_slice(
            results[shard.job].data() +
                static_cast<size_t>(shard.row_begin) * req.n,
            static_cast<size_t>(rows) * req.n);
        tile.accel.gemm(a_slice, req.b, c_slice, rows, req.k, req.n,
                        cfg.mode);
    }

    /** Round-robin pick over the healthy tiles; forces a probe of the
     *  tile closest to reintegration when everything is unhealthy. */
    size_t
    pickTile(bool *forced_probe)
    {
        std::lock_guard<std::mutex> lk(mu);
        *forced_probe = false;
        for (size_t i = 0; i < tiles.size(); ++i) {
            const size_t t = (next_tile + i) % tiles.size();
            if (tiles[t]->healthy) {
                next_tile = (t + 1) % tiles.size();
                return t;
            }
        }
        *forced_probe = true;
        size_t probe = 0;
        for (size_t t = 1; t < tiles.size(); ++t) {
            if (tiles[t]->cooldown < tiles[probe]->cooldown)
                probe = t;
        }
        next_tile = (probe + 1) % tiles.size();
        return probe;
    }

    void
    executeSingle(Job job)
    {
        const Clock::time_point exec_start = Clock::now();

        // Job failures travel through the future, never up the dispatcher
        // thread; the promise is fulfilled before completion is published
        // so drain() implies every future is ready.
        if (EstimateJob *est = std::get_if<EstimateJob>(&job)) {
            MIRAGE_SPAN("engine.estimate");
            bool forced_probe = false;
            Tile &tile = *tiles[pickTile(&forced_probe)];
            // Re-establish the submitter's request context on the
            // dispatcher thread and mark the flow through this slice.
            obs::RequestScope ctx_scope(est->ctx);
            obs::traceFlow("request", est->ctx, 't');
            try {
                const core::PerformanceReport rep =
                    est->training
                        ? tile.accel.estimateTraining(est->model, est->batch)
                        : tile.accel.estimateInference(est->model,
                                                       est->batch);
                // Fold the modeled photonic cost into the registry: what
                // the perf/energy models predicted this job would cost on
                // the accelerator, in integer nanoseconds/nanojoules.
                EngineObs::get().modeled_ns.add(obs::toNanos(rep.time_s));
                EngineObs::get().modeled_nj.add(obs::toNanos(rep.energy_j));
                est->promise.set_value(rep);
            } catch (...) {
                est->promise.set_exception(std::current_exception());
            }
            finishSingle(exec_start, est->submitted, est->training
                                                        ? JobKind::Training
                                                        : JobKind::Inference);
        } else {
            MIRAGE_SPAN("engine.task");
            TaskJob &task = std::get<TaskJob>(job);
            obs::RequestScope ctx_scope(task.ctx);
            obs::traceFlow("request", task.ctx, 't');
            executeTask(task);
            finishSingle(exec_start, task.submitted, JobKind::Task);
        }
    }

    /**
     * Runs one TaskJob with tile failover: a TileFailure (injected before
     * the body runs, or thrown by the body) marks the tile unhealthy and
     * re-executes the task on the next healthy tile, bounded by
     * cfg.max_job_attempts and the task deadline. Terminal failures reach
     * both the future and the task's on_fail callback; non-TileFailure
     * exceptions keep their original single-shot semantics.
     */
    void
    executeTask(TaskJob &task)
    {
        uint64_t survived_failures = 0;
        int attempt = 0;
        for (;;) {
            ++attempt;
            bool forced_probe = false;
            const size_t t = pickTile(&forced_probe);
            Tile &tile = *tiles[t];
            try {
                // The injection fires before the body runs, so a retried
                // task re-executes from a clean slate.
                if (tileFailPoint().shouldFire())
                    throw TileFailure(
                        "injected tile failure (engine.tile_fail)");
                task.fn(tile.accel, tile.rng);
                if (forced_probe)
                    markTileRecovered(t);
                for (uint64_t i = 0; i < survived_failures; ++i)
                    fault::recovered("engine.tile_fail");
                task.promise.set_value();
                return;
            } catch (const TileFailure &tf) {
                ++survived_failures;
                markTilesFailed({t});
                const double remaining =
                    task.deadline_s > 0.0
                        ? task.deadline_s -
                              secondsSince(task.submitted, Clock::now())
                        : std::numeric_limits<double>::infinity();
                std::string why;
                if (attempt >= cfg.max_job_attempts) {
                    why = "task failed: tiles kept failing through " +
                          std::to_string(attempt) +
                          " attempts: " + tf.what();
                } else if (remaining <= 0.0) {
                    why = "task failed: deadline exhausted after tile "
                          "failure: " +
                          std::string(tf.what());
                } else {
                    MIRAGE_SPAN("engine.retry");
                    {
                        std::lock_guard<std::mutex> lk(mu);
                        ++stats.job_retries;
                    }
                    EngineObs::get().job_retries.add(1);
                    backoff(attempt, remaining);
                    continue;
                }
                failTaskTerminally(task, why,
                                   std::make_exception_ptr(TileFailure(why)));
                return;
            } catch (...) {
                const std::exception_ptr err = std::current_exception();
                std::string why = "task failed";
                try {
                    std::rethrow_exception(err);
                } catch (const std::exception &e) {
                    why = std::string("task failed: ") + e.what();
                } catch (...) {
                }
                failTaskTerminally(task, why, err);
                return;
            }
        }
    }

    void
    failTaskTerminally(TaskJob &task, const std::string &why,
                       std::exception_ptr err)
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            ++stats.jobs_failed;
        }
        EngineObs::get().jobs_failed.add(1);
        if (task.on_fail)
            task.on_fail(why);
        task.promise.set_exception(std::move(err));
    }

    enum class JobKind
    {
        Inference,
        Training,
        Task
    };

    void
    finishSingle(Clock::time_point exec_start, Clock::time_point submitted,
                 JobKind kind)
    {
        const Clock::time_point end = Clock::now();
        const double latency = secondsSince(submitted, end);
        {
            std::lock_guard<std::mutex> lk(mu);
            ++stats.jobs_completed;
            switch (kind) {
              case JobKind::Inference: ++stats.inference_jobs; break;
              case JobKind::Training: ++stats.training_jobs; break;
              case JobKind::Task: ++stats.task_jobs; break;
            }
            stats.busy_time_s += secondsSince(exec_start, end);
            stats.total_latency_s += latency;
            stats.max_latency_s = std::max(stats.max_latency_s, latency);
            in_flight -= 1;
        }
        EngineObs::get().jobs_completed.add(1);
        EngineObs::get().job_latency_ns.recordNanosOf(latency);
        idle.notify_all();
    }

    EngineConfig cfg;
    std::vector<std::unique_ptr<Tile>> tiles;
    /// Per-tile MAC counters (registry-owned), parallel to `tiles`.
    std::vector<obs::Counter *> tile_macs;

    mutable std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::condition_variable idle;
    std::deque<Job> queue;
    size_t in_flight = 0;
    bool stop = false;

    RuntimeReport stats; ///< Guarded by mu (wall_time_s filled on read).
    Clock::time_point start;
    size_t next_tile = 0; ///< Round-robin tile for non-GEMM jobs (mu).

    /// Tile health listeners; their own lock so callbacks never run (or
    /// register) under the queue mutex.
    std::mutex listeners_mu;
    std::map<int, std::function<void(int, bool)>> listeners;
    int next_listener_id = 1;

    std::thread dispatcher;
};

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

RuntimeEngine::RuntimeEngine(EngineConfig cfg)
    : impl_(std::make_unique<Impl>(std::move(cfg)))
{
}

RuntimeEngine::~RuntimeEngine() = default;

const EngineConfig &
RuntimeEngine::config() const
{
    return impl_->cfg;
}

std::future<GemmResult>
RuntimeEngine::submitGemm(GemmRequest req)
{
    MIRAGE_ASSERT(req.m > 0 && req.k > 0 && req.n > 0, "bad GEMM dims");
    MIRAGE_ASSERT(req.a.size() == static_cast<size_t>(req.m) * req.k,
                  "A shape mismatch");
    MIRAGE_ASSERT(req.b.size() == static_cast<size_t>(req.k) * req.n,
                  "B shape mismatch");
    GemmJob job;
    job.req = std::move(req);
    job.ctx = obs::currentRequestId();
    job.submitted = Clock::now();
    std::future<GemmResult> fut = job.promise.get_future();
    impl_->enqueue(std::move(job));
    return fut;
}

std::future<core::PerformanceReport>
RuntimeEngine::submitInference(models::ModelShape model, int64_t batch)
{
    EstimateJob job;
    job.model = std::move(model);
    job.batch = batch;
    job.training = false;
    job.ctx = obs::currentRequestId();
    job.submitted = Clock::now();
    std::future<core::PerformanceReport> fut = job.promise.get_future();
    impl_->enqueue(std::move(job));
    return fut;
}

std::future<core::PerformanceReport>
RuntimeEngine::submitTraining(models::ModelShape model, int64_t batch)
{
    EstimateJob job;
    job.model = std::move(model);
    job.batch = batch;
    job.training = true;
    job.ctx = obs::currentRequestId();
    job.submitted = Clock::now();
    std::future<core::PerformanceReport> fut = job.promise.get_future();
    impl_->enqueue(std::move(job));
    return fut;
}

std::future<void>
RuntimeEngine::submitTask(
    std::function<void(core::MirageAccelerator &, Rng &)> task)
{
    return submitTask(std::move(task), TaskOptions{});
}

std::future<void>
RuntimeEngine::submitTask(
    std::function<void(core::MirageAccelerator &, Rng &)> task,
    TaskOptions opts)
{
    TaskJob job;
    job.fn = std::move(task);
    job.ctx = obs::currentRequestId();
    job.submitted = Clock::now();
    job.deadline_s = opts.deadline_s;
    job.on_fail = std::move(opts.on_fail);
    std::future<void> fut = job.promise.get_future();
    impl_->enqueue(std::move(job));
    return fut;
}

void
RuntimeEngine::failTile(int tile)
{
    MIRAGE_ASSERT(tile >= 0 && tile < impl_->cfg.tiles,
                  "failTile: tile out of range");
    impl_->markTilesFailed({static_cast<size_t>(tile)});
}

int
RuntimeEngine::healthyTiles() const
{
    std::lock_guard<std::mutex> lk(impl_->mu);
    int healthy = 0;
    for (const auto &t : impl_->tiles)
        healthy += t->healthy ? 1 : 0;
    return healthy;
}

int
RuntimeEngine::addTileListener(std::function<void(int, bool)> listener)
{
    std::lock_guard<std::mutex> lk(impl_->listeners_mu);
    const int id = impl_->next_listener_id++;
    impl_->listeners.emplace(id, std::move(listener));
    return id;
}

void
RuntimeEngine::removeTileListener(int id)
{
    std::lock_guard<std::mutex> lk(impl_->listeners_mu);
    impl_->listeners.erase(id);
}

void
RuntimeEngine::drain()
{
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->idle.wait(lk, [this] {
        return impl_->queue.empty() && impl_->in_flight == 0;
    });
}

size_t
RuntimeEngine::queueDepth() const
{
    std::lock_guard<std::mutex> lk(impl_->mu);
    return impl_->queue.size();
}

RuntimeReport
RuntimeEngine::report() const
{
    std::lock_guard<std::mutex> lk(impl_->mu);
    RuntimeReport rep = impl_->stats;
    rep.wall_time_s = secondsSince(impl_->start, Clock::now());
    return rep;
}

} // namespace runtime
} // namespace mirage
