#include "runtime/engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>

#include "common/logging.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace mirage {
namespace runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Pre-registered engine metric handles: resolved once (magic static), so
 *  record sites never touch the registry map. Clock samples recorded here
 *  are the same ones RuntimeReport already takes — observability adds no
 *  new wall-clock reads to numeric state. */
struct EngineObs
{
    obs::Counter &jobs_submitted;
    obs::Counter &jobs_completed;
    obs::Counter &batches;
    obs::Counter &fused_jobs;
    obs::Counter &shards;
    obs::Counter &macs;
    obs::Counter &modeled_ns;
    obs::Counter &modeled_nj;
    obs::Gauge &queue_depth;
    obs::Histogram &job_latency_ns;
    obs::Histogram &batch_jobs;

    static EngineObs &
    get()
    {
        static auto &reg = obs::MetricsRegistry::global();
        static EngineObs o{reg.counter("engine.jobs_submitted"),
                           reg.counter("engine.jobs_completed"),
                           reg.counter("engine.batches"),
                           reg.counter("engine.fused_jobs"),
                           reg.counter("engine.shards"),
                           reg.counter("engine.macs"),
                           reg.counter("engine.modeled_ns"),
                           reg.counter("engine.modeled_nj"),
                           reg.gauge("engine.queue_depth"),
                           reg.histogram("engine.job_latency_ns"),
                           reg.histogram("engine.batch_jobs")};
        return o;
    }
};

} // namespace

void
EngineConfig::validate() const
{
    if (tiles <= 0)
        throw std::invalid_argument(
            "EngineConfig.tiles must be >= 1, got " + std::to_string(tiles));
    if (queue_capacity == 0)
        throw std::invalid_argument("EngineConfig.queue_capacity must be >= 1");
    if (max_batch <= 0)
        throw std::invalid_argument("EngineConfig.max_batch must be >= 1, got " +
                                    std::to_string(max_batch));
}

double
RuntimeReport::avgLatencySeconds() const
{
    return jobs_completed > 0
               ? total_latency_s / static_cast<double>(jobs_completed)
               : 0.0;
}

double
RuntimeReport::throughputMacsPerSecond() const
{
    return wall_time_s > 0
               ? static_cast<double>(gemm_macs) / wall_time_s
               : 0.0;
}

double
RuntimeReport::utilization() const
{
    if (wall_time_s <= 0 || tiles <= 0)
        return 0.0;
    return busy_time_s / (wall_time_s * tiles);
}

// ---------------------------------------------------------------------------
// Job representation
// ---------------------------------------------------------------------------

namespace {

struct GemmJob
{
    GemmRequest req;
    std::promise<GemmResult> promise;
    Clock::time_point submitted;
    uint64_t ctx = 0; ///< Submitter's request id (causal tracing).
};

struct EstimateJob
{
    models::ModelShape model;
    int64_t batch = 1;
    bool training = false;
    std::promise<core::PerformanceReport> promise;
    Clock::time_point submitted;
    uint64_t ctx = 0; ///< Submitter's request id (causal tracing).
};

struct TaskJob
{
    std::function<void(core::MirageAccelerator &, Rng &)> fn;
    std::promise<void> promise;
    Clock::time_point submitted;
    uint64_t ctx = 0; ///< Submitter's request id (causal tracing).
};

using Job = std::variant<GemmJob, EstimateJob, TaskJob>;

/** One contiguous row range of one batched GEMM job. */
struct Shard
{
    size_t job = 0;      ///< Index into the dispatch group.
    int row_begin = 0;   ///< First A/C row of this shard.
    int row_end = 0;     ///< One past the last row.
};

} // namespace

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

struct RuntimeEngine::Impl
{
    /** One logical accelerator tile. Only one shard runs on a tile at a
     *  time, so the accelerator's mutable backends need no locking. */
    struct Tile
    {
        core::MirageAccelerator accel;
        Rng rng;

        Tile(const arch::MirageConfig &cfg, Rng stream)
            : accel(cfg), rng(stream)
        {
        }
    };

    explicit Impl(EngineConfig config) : cfg(std::move(config))
    {
        cfg.validate();
        const Rng root(cfg.seed);
        tiles.reserve(static_cast<size_t>(cfg.tiles));
        tile_macs.reserve(static_cast<size_t>(cfg.tiles));
        for (int t = 0; t < cfg.tiles; ++t) {
            tiles.push_back(std::make_unique<Tile>(
                cfg.accel, root.split(static_cast<uint64_t>(t))));
            // Per-tile MAC counters, registered up front so the shard hot
            // path only does a relaxed fetch_add.
            tile_macs.push_back(&obs::MetricsRegistry::global().counter(
                "engine.tile" + std::to_string(t) + ".macs"));
        }
        start = Clock::now();
        stats.tiles = cfg.tiles;
        dispatcher = std::thread([this] { dispatchLoop(); });
    }

    ~Impl()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stop = true;
        }
        not_empty.notify_all();
        dispatcher.join();
    }

    void
    enqueue(Job job)
    {
        std::unique_lock<std::mutex> lk(mu);
        MIRAGE_ASSERT(!stop, "submit on a stopped RuntimeEngine");
        not_full.wait(lk,
                      [this] { return queue.size() < cfg.queue_capacity; });
        queue.push_back(std::move(job));
        ++stats.jobs_submitted;
        stats.max_queue_depth = std::max(stats.max_queue_depth, queue.size());
        EngineObs::get().queue_depth.set(static_cast<int64_t>(queue.size()));
        lk.unlock();
        not_empty.notify_one();
        EngineObs::get().jobs_submitted.add(1);
    }

    void
    dispatchLoop()
    {
        for (;;) {
            std::unique_lock<std::mutex> lk(mu);
            not_empty.wait(lk, [this] { return stop || !queue.empty(); });
            if (queue.empty()) {
                if (stop)
                    return;
                continue;
            }
            Job first = std::move(queue.front());
            queue.pop_front();

            if (std::holds_alternative<GemmJob>(first)) {
                // Fuse queued GEMM jobs with the same contraction depth and
                // output width into one dispatch group (stable order).
                std::vector<GemmJob> group;
                {
                    MIRAGE_SPAN("engine.fuse");
                    group.push_back(std::move(std::get<GemmJob>(first)));
                    const int k = group.front().req.k;
                    const int n = group.front().req.n;
                    for (auto it = queue.begin();
                         it != queue.end() &&
                         group.size() < static_cast<size_t>(cfg.max_batch);) {
                        GemmJob *g = std::get_if<GemmJob>(&*it);
                        if (g != nullptr && g->req.k == k && g->req.n == n) {
                            group.push_back(std::move(*g));
                            it = queue.erase(it);
                        } else {
                            ++it;
                        }
                    }
                }
                in_flight += group.size();
                EngineObs::get().queue_depth.set(
                    static_cast<int64_t>(queue.size()));
                lk.unlock();
                not_full.notify_all();
                EngineObs::get().fused_jobs.add(group.size() - 1);
                executeGemmGroup(std::move(group));
            } else {
                in_flight += 1;
                EngineObs::get().queue_depth.set(
                    static_cast<int64_t>(queue.size()));
                lk.unlock();
                not_full.notify_all();
                executeSingle(std::move(first));
            }
        }
    }

    /**
     * Executes a dispatch group: every job's rows are cut into at most
     * `tiles` shards, shards are assigned round-robin, and each tile runs
     * its shards sequentially while tiles run in parallel on the global
     * pool. Row sharding is exact — every output element is produced by
     * the same per-element computation as an unsharded run.
     */
    void
    executeGemmGroup(std::vector<GemmJob> group)
    {
        MIRAGE_SPAN("engine.batch");
        const Clock::time_point dispatch_start = Clock::now();
        const int tile_count = cfg.tiles;

        // Shard plan: prefer job-level parallelism — row-splitting a job
        // means every shard re-encodes the job's full B operand, so rows
        // are only split when the fused group alone cannot fill the tiles.
        const int shards_per_job = std::max(
            1, tile_count / static_cast<int>(group.size()));
        std::vector<std::vector<float>> results(group.size());
        std::vector<Shard> shards;
        for (size_t j = 0; j < group.size(); ++j) {
            const GemmRequest &req = group[j].req;
            results[j].assign(static_cast<size_t>(req.m) * req.n, 0.0f);
            const int rows_per_shard =
                std::max(1, (req.m + shards_per_job - 1) / shards_per_job);
            for (int r0 = 0; r0 < req.m; r0 += rows_per_shard) {
                shards.push_back({j, r0,
                                  std::min(req.m, r0 + rows_per_shard)});
            }
        }

        // shard s runs on tile s % tiles; one parallelFor block per tile
        // keeps each accelerator single-threaded while tiles overlap.
        std::vector<int> job_shards(group.size(), 0);
        for (const Shard &s : shards)
            ++job_shards[s.job];
        std::vector<double> tile_busy(static_cast<size_t>(tile_count), 0.0);

        std::exception_ptr error;
        try {
            ThreadPool::global().parallelFor(
                tile_count, 1, [&](int64_t t0, int64_t t1) {
                    for (int64_t t = t0; t < t1; ++t) {
                        MIRAGE_SPAN("engine.tile");
                        const Clock::time_point tile_start = Clock::now();
                        bool ran = false;
                        for (size_t s = static_cast<size_t>(t);
                             s < shards.size();
                             s += static_cast<size_t>(tile_count)) {
                            runShard(group, shards[s],
                                     *tiles[static_cast<size_t>(t)],
                                     static_cast<size_t>(t), results);
                            ran = true;
                        }
                        if (ran) {
                            tile_busy[static_cast<size_t>(t)] =
                                secondsSince(tile_start, Clock::now());
                        }
                    }
                });
        } catch (...) {
            error = std::current_exception();
        }

        // Fulfill promises before publishing completion, so drain() never
        // unblocks while a future is still pending.
        const Clock::time_point end = Clock::now();
        for (size_t j = 0; j < group.size(); ++j) {
            if (error) {
                group[j].promise.set_exception(error);
                continue;
            }
            GemmResult res;
            res.c = std::move(results[j]);
            res.latency_s = secondsSince(group[j].submitted, end);
            res.queue_s = secondsSince(group[j].submitted, dispatch_start);
            res.shards = job_shards[j];
            group[j].promise.set_value(std::move(res));
        }

        {
            std::lock_guard<std::mutex> lk(mu);
            ++stats.batches_dispatched;
            stats.largest_batch =
                std::max<uint64_t>(stats.largest_batch, group.size());
            for (double b : tile_busy)
                stats.busy_time_s += b;
            for (size_t j = 0; j < group.size(); ++j) {
                const GemmRequest &req = group[j].req;
                const double latency = secondsSince(group[j].submitted, end);
                ++stats.jobs_completed;
                ++stats.gemm_jobs;
                stats.gemm_macs += static_cast<int64_t>(req.m) * req.k * req.n;
                stats.total_latency_s += latency;
                stats.max_latency_s = std::max(stats.max_latency_s, latency);
                EngineObs::get().job_latency_ns.recordNanosOf(latency);
            }
            in_flight -= group.size();
        }
        EngineObs::get().batches.add(1);
        EngineObs::get().batch_jobs.record(group.size());
        EngineObs::get().jobs_completed.add(group.size());
        idle.notify_all();
    }

    void
    runShard(std::vector<GemmJob> &group, const Shard &shard, Tile &tile,
             size_t tile_index, std::vector<std::vector<float>> &results)
    {
        MIRAGE_SPAN("engine.shard");
        // Pool-thread leg of the causal trace: the shard runs under the
        // submitting request's context.
        obs::RequestScope ctx_scope(group[shard.job].ctx);
        obs::traceFlow("request", group[shard.job].ctx, 't');
        const GemmRequest &req = group[shard.job].req;
        const int rows = shard.row_end - shard.row_begin;
        const uint64_t shard_macs = static_cast<uint64_t>(rows) *
                                    static_cast<uint64_t>(req.k) *
                                    static_cast<uint64_t>(req.n);
        EngineObs::get().shards.add(1);
        EngineObs::get().macs.add(shard_macs);
        tile_macs[tile_index]->add(shard_macs);
        // Shard rows are contiguous, so both the A slice and the C slice
        // are zero-copy views — the accelerator writes its output straight
        // into the caller-visible result buffer.
        const std::span<const float> a_slice(
            req.a.data() + static_cast<size_t>(shard.row_begin) * req.k,
            static_cast<size_t>(rows) * req.k);
        const std::span<float> c_slice(
            results[shard.job].data() +
                static_cast<size_t>(shard.row_begin) * req.n,
            static_cast<size_t>(rows) * req.n);
        tile.accel.gemm(a_slice, req.b, c_slice, rows, req.k, req.n,
                        cfg.mode);
    }

    void
    executeSingle(Job job)
    {
        Tile &tile = *tiles[next_tile];
        next_tile = (next_tile + 1) % tiles.size();
        const Clock::time_point exec_start = Clock::now();

        // Job failures travel through the future, never up the dispatcher
        // thread; the promise is fulfilled before completion is published
        // so drain() implies every future is ready.
        if (EstimateJob *est = std::get_if<EstimateJob>(&job)) {
            MIRAGE_SPAN("engine.estimate");
            // Re-establish the submitter's request context on the
            // dispatcher thread and mark the flow through this slice.
            obs::RequestScope ctx_scope(est->ctx);
            obs::traceFlow("request", est->ctx, 't');
            try {
                const core::PerformanceReport rep =
                    est->training
                        ? tile.accel.estimateTraining(est->model, est->batch)
                        : tile.accel.estimateInference(est->model,
                                                       est->batch);
                // Fold the modeled photonic cost into the registry: what
                // the perf/energy models predicted this job would cost on
                // the accelerator, in integer nanoseconds/nanojoules.
                EngineObs::get().modeled_ns.add(obs::toNanos(rep.time_s));
                EngineObs::get().modeled_nj.add(obs::toNanos(rep.energy_j));
                est->promise.set_value(rep);
            } catch (...) {
                est->promise.set_exception(std::current_exception());
            }
            finishSingle(exec_start, est->submitted, est->training
                                                        ? JobKind::Training
                                                        : JobKind::Inference);
        } else {
            MIRAGE_SPAN("engine.task");
            TaskJob &task = std::get<TaskJob>(job);
            obs::RequestScope ctx_scope(task.ctx);
            obs::traceFlow("request", task.ctx, 't');
            try {
                task.fn(tile.accel, tile.rng);
                task.promise.set_value();
            } catch (...) {
                task.promise.set_exception(std::current_exception());
            }
            finishSingle(exec_start, task.submitted, JobKind::Task);
        }
    }

    enum class JobKind
    {
        Inference,
        Training,
        Task
    };

    void
    finishSingle(Clock::time_point exec_start, Clock::time_point submitted,
                 JobKind kind)
    {
        const Clock::time_point end = Clock::now();
        const double latency = secondsSince(submitted, end);
        {
            std::lock_guard<std::mutex> lk(mu);
            ++stats.jobs_completed;
            switch (kind) {
              case JobKind::Inference: ++stats.inference_jobs; break;
              case JobKind::Training: ++stats.training_jobs; break;
              case JobKind::Task: ++stats.task_jobs; break;
            }
            stats.busy_time_s += secondsSince(exec_start, end);
            stats.total_latency_s += latency;
            stats.max_latency_s = std::max(stats.max_latency_s, latency);
            in_flight -= 1;
        }
        EngineObs::get().jobs_completed.add(1);
        EngineObs::get().job_latency_ns.recordNanosOf(latency);
        idle.notify_all();
    }

    EngineConfig cfg;
    std::vector<std::unique_ptr<Tile>> tiles;
    /// Per-tile MAC counters (registry-owned), parallel to `tiles`.
    std::vector<obs::Counter *> tile_macs;

    mutable std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::condition_variable idle;
    std::deque<Job> queue;
    size_t in_flight = 0;
    bool stop = false;

    RuntimeReport stats; ///< Guarded by mu (wall_time_s filled on read).
    Clock::time_point start;
    size_t next_tile = 0; ///< Round-robin tile for non-GEMM jobs.

    std::thread dispatcher;
};

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

RuntimeEngine::RuntimeEngine(EngineConfig cfg)
    : impl_(std::make_unique<Impl>(std::move(cfg)))
{
}

RuntimeEngine::~RuntimeEngine() = default;

const EngineConfig &
RuntimeEngine::config() const
{
    return impl_->cfg;
}

std::future<GemmResult>
RuntimeEngine::submitGemm(GemmRequest req)
{
    MIRAGE_ASSERT(req.m > 0 && req.k > 0 && req.n > 0, "bad GEMM dims");
    MIRAGE_ASSERT(req.a.size() == static_cast<size_t>(req.m) * req.k,
                  "A shape mismatch");
    MIRAGE_ASSERT(req.b.size() == static_cast<size_t>(req.k) * req.n,
                  "B shape mismatch");
    GemmJob job;
    job.req = std::move(req);
    job.ctx = obs::currentRequestId();
    job.submitted = Clock::now();
    std::future<GemmResult> fut = job.promise.get_future();
    impl_->enqueue(std::move(job));
    return fut;
}

std::future<core::PerformanceReport>
RuntimeEngine::submitInference(models::ModelShape model, int64_t batch)
{
    EstimateJob job;
    job.model = std::move(model);
    job.batch = batch;
    job.training = false;
    job.ctx = obs::currentRequestId();
    job.submitted = Clock::now();
    std::future<core::PerformanceReport> fut = job.promise.get_future();
    impl_->enqueue(std::move(job));
    return fut;
}

std::future<core::PerformanceReport>
RuntimeEngine::submitTraining(models::ModelShape model, int64_t batch)
{
    EstimateJob job;
    job.model = std::move(model);
    job.batch = batch;
    job.training = true;
    job.ctx = obs::currentRequestId();
    job.submitted = Clock::now();
    std::future<core::PerformanceReport> fut = job.promise.get_future();
    impl_->enqueue(std::move(job));
    return fut;
}

std::future<void>
RuntimeEngine::submitTask(
    std::function<void(core::MirageAccelerator &, Rng &)> task)
{
    TaskJob job;
    job.fn = std::move(task);
    job.ctx = obs::currentRequestId();
    job.submitted = Clock::now();
    std::future<void> fut = job.promise.get_future();
    impl_->enqueue(std::move(job));
    return fut;
}

void
RuntimeEngine::drain()
{
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->idle.wait(lk, [this] {
        return impl_->queue.empty() && impl_->in_flight == 0;
    });
}

size_t
RuntimeEngine::queueDepth() const
{
    std::lock_guard<std::mutex> lk(impl_->mu);
    return impl_->queue.size();
}

RuntimeReport
RuntimeEngine::report() const
{
    std::lock_guard<std::mutex> lk(impl_->mu);
    RuntimeReport rep = impl_->stats;
    rep.wall_time_s = secondsSince(impl_->start, Clock::now());
    return rep;
}

} // namespace runtime
} // namespace mirage
