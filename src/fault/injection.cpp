#include "fault/injection.h"

#include "common/logging.h"
#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace mirage {
namespace fault {
namespace {

// splitmix64 — the same generator common/rng.h builds its streams on.
// Replicated here (it is three lines) so fault stays a leaf dependency.
uint64_t splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d9b9b0eb1d4b21ULL;
    return z ^ (z >> 31);
}

uint64_t fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s)
    {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// One registered injection point. `evals`/`fires` are atomics so armed
/// hot paths stay lock-free; spec changes take the registry mutex and
/// only happen from arm/disarm/reset.
struct Point
{
    std::string name;
    FaultSpec spec; // guarded by Registry::mu for writes
    std::atomic<bool> live{false};
    std::atomic<uint64_t> evals{0};
    std::atomic<uint64_t> fires{0};
    std::atomic<uint64_t> draws{0};
    uint64_t stream_seed = 0;
    obs::Counter *injected = nullptr; // "fault.injected.<name>"
};

struct Registry;
int armFromStringOn(Registry &r, const std::string &config);

struct Registry
{
    std::mutex mu;
    std::unordered_map<std::string, uint32_t> ids;
    std::vector<std::unique_ptr<Point>> points; // append-only, stable ptrs
    size_t armed_count = 0;

    Registry()
    {
        // Arm directly on *this, NOT through the public armFromString:
        // that would re-enter registry() while its static-initialization
        // guard is still held and self-deadlock before main().
        if (const char *env = std::getenv("MIRAGE_FAULT"))
        {
            if (env[0] != '\0')
                armFromStringOn(*this, env);
        }
    }
};

Registry &registry()
{
    static Registry *r = new Registry(); // leaked: outlives static teardown
    return *r;
}

obs::Counter &injectedTotal()
{
    static obs::Counter &c = obs::MetricsRegistry::global().counter("fault.injected");
    return c;
}

obs::Counter &recoveredTotal()
{
    static obs::Counter &c = obs::MetricsRegistry::global().counter("fault.recovered");
    return c;
}

void updateArmedGate(Registry &r)
{
    detail::g_armed.store(r.armed_count > 0, std::memory_order_relaxed);
}

Point *findPoint(Registry &r, const std::string &name)
{
    const auto it = r.ids.find(name);
    return it == r.ids.end() ? nullptr : r.points[it->second].get();
}

uint32_t registerPointLocked(Registry &r, const std::string &name)
{
    const auto it = r.ids.find(name);
    if (it != r.ids.end())
        return it->second;
    auto p = std::make_unique<Point>();
    p->name = name;
    p->injected = &obs::MetricsRegistry::global().counter("fault.injected." + name);
    const uint32_t id = static_cast<uint32_t>(r.points.size());
    r.points.push_back(std::move(p));
    r.ids.emplace(name, id);
    return id;
}

void armLocked(Registry &r, const std::string &name, const FaultSpec &spec)
{
    Point &p = *r.points[registerPointLocked(r, name)];
    if (p.live.load(std::memory_order_relaxed))
        --r.armed_count;
    p.spec = spec;
    p.evals.store(0, std::memory_order_relaxed);
    p.fires.store(0, std::memory_order_relaxed);
    p.draws.store(0, std::memory_order_relaxed);
    p.stream_seed = spec.seed != 0 ? spec.seed : fnv1a(name);
    const bool live = spec.kind != FaultSpec::Kind::Never;
    p.live.store(live, std::memory_order_release);
    if (live)
        ++r.armed_count;
    updateArmedGate(r);
}

/// Shared by the public armFromString (registry mutex held) and the
/// Registry constructor (exclusive access, no lock needed).
int armFromStringOn(Registry &r, const std::string &config)
{
    int armed_points = 0;
    size_t pos = 0;
    while (pos <= config.size())
    {
        size_t comma = config.find(',', pos);
        if (comma == std::string::npos)
            comma = config.size();
        const std::string entry = config.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;
        const size_t colon = entry.rfind(':');
        std::string err;
        FaultSpec spec;
        if (colon == std::string::npos || colon == 0 ||
            !parseSpec(entry.substr(colon + 1), &spec, &err))
        {
            MIRAGE_WARN("fault: ignoring malformed MIRAGE_FAULT entry '",
                        entry, "'", err.empty() ? "" : ": ", err);
            continue;
        }
        armLocked(r, entry.substr(0, colon), spec);
        ++armed_points;
    }
    return armed_points;
}

} // namespace

namespace detail {

std::atomic<bool> g_armed{false};

uint32_t registerPoint(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return registerPointLocked(r, name);
}

bool shouldFireSlow(uint32_t id)
{
    Registry &r = registry();
    Point &p = *r.points[id]; // points vector is append-only
    if (!p.live.load(std::memory_order_acquire))
        return false;

    // Snapshot the spec fields without the lock: live was set with release
    // after the spec write, and specs never change while live stays true
    // (arm/disarm flip live around every mutation).
    const FaultSpec spec = p.spec;
    const uint64_t n = p.evals.fetch_add(1, std::memory_order_relaxed) + 1;

    bool fire = false;
    switch (spec.kind)
    {
    case FaultSpec::Kind::Never:
        break;
    case FaultSpec::Kind::Hit:
        if (spec.every == 0)
            fire = n == spec.first;
        else
            fire = n >= spec.first && (n - spec.first) % spec.every == 0;
        break;
    case FaultSpec::Kind::Probability:
    {
        // Deterministic stream: draw k of point P is a pure function of
        // (seed, k). The draw index is its own atomic so concurrent
        // callers consume distinct stream positions.
        const uint64_t k = p.draws.fetch_add(1, std::memory_order_relaxed);
        uint64_t state = p.stream_seed + 0x632be59bd9b4e019ULL * (k + 1);
        const double u =
            static_cast<double>(splitMix64(state) >> 11) * 0x1.0p-53;
        fire = u < spec.p;
        break;
    }
    }
    if (!fire)
        return false;

    if (spec.limit != 0)
    {
        // Claim a fire slot; racers past the cap lose and don't fire.
        uint64_t prev = p.fires.load(std::memory_order_relaxed);
        do
        {
            if (prev >= spec.limit)
                return false;
        } while (!p.fires.compare_exchange_weak(prev, prev + 1,
                                                std::memory_order_relaxed));
    }
    else
    {
        p.fires.fetch_add(1, std::memory_order_relaxed);
    }
    injectedTotal().add(1);
    p.injected->add(1);
    MIRAGE_WARN("fault: injecting failure at point '", p.name, "' (eval ", n,
                ")");
    return true;
}

} // namespace detail

bool parseSpec(const std::string &token, FaultSpec *out, std::string *error)
{
    const auto fail = [&](const char *msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    if (token.empty())
        return fail("empty spec");

    std::string body = token;
    uint64_t limit = 0;
    // Trailing xK cap. 'x' can't appear elsewhere in the grammar, so the
    // last 'x' splits unambiguously.
    const size_t xpos = body.rfind('x');
    if (xpos != std::string::npos)
    {
        try
        {
            size_t used = 0;
            limit = std::stoull(body.substr(xpos + 1), &used);
            if (used != body.size() - xpos - 1 || limit == 0)
                return fail("bad xK fire cap");
        }
        catch (const std::exception &)
        {
            return fail("bad xK fire cap");
        }
        body = body.substr(0, xpos);
        if (body.empty())
            return fail("empty spec before xK");
    }

    FaultSpec spec;
    try
    {
        if (body[0] == 'p')
        {
            uint64_t seed = 0;
            std::string prob = body.substr(1);
            const size_t at = prob.find('@');
            if (at != std::string::npos)
            {
                size_t used = 0;
                seed = std::stoull(prob.substr(at + 1), &used);
                if (used != prob.size() - at - 1)
                    return fail("bad @SEED");
                prob = prob.substr(0, at);
            }
            size_t used = 0;
            const double p = std::stod(prob, &used);
            if (used != prob.size() || p < 0.0 || p > 1.0)
                return fail("probability not in [0,1]");
            spec = FaultSpec::probability(p, seed);
        }
        else
        {
            uint64_t every = 0;
            bool repeat_forever = false;
            std::string first = body;
            const size_t pct = body.find('%');
            if (pct != std::string::npos)
            {
                size_t used = 0;
                every = std::stoull(body.substr(pct + 1), &used);
                if (used != body.size() - pct - 1 || every == 0)
                    return fail("bad %M period");
                first = body.substr(0, pct);
            }
            else if (!body.empty() && body.back() == '+')
            {
                repeat_forever = true;
                first = body.substr(0, body.size() - 1);
            }
            size_t used = 0;
            const uint64_t n = std::stoull(first, &used);
            if (used != first.size() || n == 0)
                return fail("hit index must be a positive integer");
            spec = every != 0 ? FaultSpec::hitEvery(n, every)
                              : repeat_forever ? FaultSpec::hitEvery(n, 1)
                                               : FaultSpec::hit(n);
        }
    }
    catch (const std::exception &)
    {
        return fail("unparseable spec");
    }
    spec.limit = limit;
    *out = spec;
    return true;
}

bool armed()
{
    return detail::g_armed.load(std::memory_order_relaxed);
}

void armPoint(const std::string &point, const FaultSpec &spec)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    armLocked(r, point, spec);
}

void disarmPoint(const std::string &point)
{
    armPoint(point, FaultSpec{});
}

void reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &p : r.points)
        armLocked(r, p->name, FaultSpec{});
    r.armed_count = 0;
    updateArmedGate(r);
}

int armFromString(const std::string &config)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return armFromStringOn(r, config);
}

uint64_t firedCount(const std::string &point)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    const Point *p = findPoint(r, point);
    return p == nullptr ? 0 : p->fires.load(std::memory_order_relaxed);
}

uint64_t evalCount(const std::string &point)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    const Point *p = findPoint(r, point);
    return p == nullptr ? 0 : p->evals.load(std::memory_order_relaxed);
}

std::vector<std::string> armedPoints()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<std::string> names;
    for (const auto &p : r.points)
    {
        if (p->live.load(std::memory_order_relaxed))
            names.push_back(p->name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

void recovered(const std::string &point)
{
    recoveredTotal().add(1);
    obs::MetricsRegistry::global().counter("fault.recovered." + point).add(1);
}

} // namespace fault
} // namespace mirage
