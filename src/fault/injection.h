#ifndef MIRAGE_FAULT_INJECTION_H
#define MIRAGE_FAULT_INJECTION_H

/**
 * @file
 * Deterministic process-wide fault-injection registry.
 *
 * A FaultPoint is a named site in the code ("engine.tile_fail",
 * "ckpt.corrupt", "train.replica_fail", ...) that asks "should this
 * operation fail right now?" via shouldFire(). Points are armed with a
 * FaultSpec — either programmatically (tests, the chaos bench) or through
 * the MIRAGE_FAULT environment variable, read once on first registry use:
 *
 *     MIRAGE_FAULT=point:spec[,point:spec...]
 *
 * Spec grammar (one token, no commas):
 *
 *     N          fire exactly on the Nth evaluation of the point
 *                (1-based one-shot; "3" = third hit fails)
 *     N+         fire on the Nth evaluation and every one after it
 *     N%M        fire on the Nth evaluation and then every Mth after it
 *                ("4%8" = hits 4, 12, 20, ...)
 *     pP         fire each evaluation with probability P in [0,1],
 *                drawn from a per-point deterministic stream seeded by
 *                splitmix64(global seed, point name hash)
 *     pP@S       same, with explicit stream seed S
 *     <spec>xK   cap the spec at K total fires ("p0.5@7x3" = at most 3)
 *
 * Examples: MIRAGE_FAULT=engine.tile_fail:12 fails the 12th tile
 * execution; MIRAGE_FAULT=ckpt.corrupt:1,train.replica_fail:p0.01@42
 * corrupts the first checkpoint write and kills replicas with 1%
 * probability per shard.
 *
 * Determinism: a hit schedule is a pure function of (spec, evaluation
 * count, seed). Evaluation counts are per point, incremented atomically,
 * so a fixed workload with a fixed spec injects the same faults each run
 * as long as the point's evaluation order is itself deterministic (the
 * chaos bench keys its points by deterministic ids — tile index, shard
 * row, step — for exactly this reason; probability specs use one atomic
 * draw counter, so cross-thread interleavings may reorder which *hit*
 * fails but never how many).
 *
 * Cost when disarmed: shouldFire() is one relaxed atomic load and a
 * predicted branch — the same "zero when off" contract as obs::enabled()
 * (MIRAGE_OBS), pinned by bench/obs_overhead's fault.check row and
 * test_fault. No evaluation counter is touched until the registry is
 * armed, so hot paths pay nothing in production.
 *
 * Accounting: every fire bumps the process counters "fault.injected" and
 * "fault.injected.<point>"; recovery paths report back through
 * fault::recovered() ("fault.recovered" / "fault.recovered.<point>"), so
 * a chaos run can gate injected == recovered.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mirage {
namespace fault {

/** One parsed injection schedule (see the grammar above). */
struct FaultSpec
{
    enum class Kind
    {
        Never,      ///< Disarmed.
        Hit,        ///< Fire on evaluation `first` (then every `every`).
        Probability ///< Fire per evaluation with probability `p`.
    };

    Kind kind = Kind::Never;
    uint64_t first = 0; ///< 1-based first firing evaluation (Hit).
    uint64_t every = 0; ///< Repeat period after `first`; 0 = one-shot.
    double p = 0.0;     ///< Per-evaluation probability (Probability).
    uint64_t seed = 0;  ///< Stream seed (Probability; 0 = derive from name).
    uint64_t limit = 0; ///< Max total fires; 0 = unlimited.

    /** One-shot hit on evaluation `n` (1-based). */
    static FaultSpec hit(uint64_t n)
    {
        FaultSpec s;
        s.kind = Kind::Hit;
        s.first = n;
        return s;
    }

    /** Hit on evaluation `n`, then every `m` evaluations after. */
    static FaultSpec hitEvery(uint64_t n, uint64_t m)
    {
        FaultSpec s = hit(n);
        s.every = m;
        return s;
    }

    /** Bernoulli per evaluation; `seed` 0 derives from the point name. */
    static FaultSpec probability(double p, uint64_t seed = 0)
    {
        FaultSpec s;
        s.kind = Kind::Probability;
        s.p = p;
        s.seed = seed;
        return s;
    }
};

/**
 * Parses one spec token ("12", "4%8", "3+", "p0.01@42", "p0.5x3").
 * Returns true and fills *out on success; false (with *error when
 * non-null) on garbage. Exposed for unit tests.
 */
bool parseSpec(const std::string &token, FaultSpec *out,
               std::string *error = nullptr);

/** True when any point is armed (one relaxed load; the hot-path gate). */
bool armed();

/**
 * Arms `point` with `spec` (replacing any previous spec and resetting the
 * point's evaluation/fire counts). Registers the point if needed.
 */
void armPoint(const std::string &point, const FaultSpec &spec);

/** Disarms one point (its counts reset). */
void disarmPoint(const std::string &point);

/** Disarms every point and resets all counts (tests). */
void reset();

/**
 * Parses a MIRAGE_FAULT-style string ("point:spec,point:spec") and arms
 * every entry. Returns the number of points armed; malformed entries are
 * skipped with a loud MIRAGE_WARN. Exposed for tests; the registry calls
 * it once with the env value on first use.
 */
int armFromString(const std::string &config);

/** Lifetime fires of one point (0 for unknown points). */
uint64_t firedCount(const std::string &point);

/** Evaluations of one point since arming (0 for unknown points). */
uint64_t evalCount(const std::string &point);

/** Sorted names of currently armed points. */
std::vector<std::string> armedPoints();

/**
 * Reports one recovered fault at `point`: bumps "fault.recovered" and
 * "fault.recovered.<point>". Recovery paths call this exactly once per
 * survived injection so chaos runs can assert injected == recovered.
 */
void recovered(const std::string &point);

namespace detail {

/** Armed-state gate shared by every FaultPoint (relaxed load). */
extern std::atomic<bool> g_armed;

/** Slow path: counts one evaluation of point `id` and decides. */
bool shouldFireSlow(uint32_t id);

/** Registers (or looks up) a point by name; returns its dense id. */
uint32_t registerPoint(const std::string &name);

} // namespace detail

/**
 * A named injection site. Construct once (function-local static) and call
 * shouldFire() on the hot path:
 *
 *     static fault::FaultPoint fp("engine.tile_fail");
 *     if (fp.shouldFire())
 *         throw TileFailure(...);
 *
 * shouldFire() costs one relaxed load + branch while the registry is
 * disarmed; only armed processes pay the per-point counting.
 */
class FaultPoint
{
  public:
    explicit FaultPoint(const std::string &name)
        : id_(detail::registerPoint(name))
    {
    }

    bool shouldFire() const
    {
        if (!detail::g_armed.load(std::memory_order_relaxed))
            return false;
        return detail::shouldFireSlow(id_);
    }

  private:
    uint32_t id_;
};

} // namespace fault
} // namespace mirage

#endif // MIRAGE_FAULT_INJECTION_H
