#ifndef MIRAGE_PHOTONIC_MMU_H
#define MIRAGE_PHOTONIC_MMU_H

/**
 * @file
 * Functional model of the Modular Multiplication Unit (paper Sec. IV-A1,
 * Fig. 3): one operand (w) is encoded in the voltage applied to a bank of
 * binary-weighted phase shifters, the other (x) digit-by-digit in MRR
 * switches that route light through or around each segment. The optical
 * phase accumulates 2 pi / m * (x * w) — inherently modular in 2 pi.
 */

#include <cstdint>

#include "common/rng.h"
#include "photonic/noise_model.h"
#include "rns/modulus.h"

namespace mirage {
namespace photonic {

/**
 * One modular multiplier. Weight programming is explicit (and counted) so
 * the dataflow models can verify their stationarity assumptions against the
 * functional simulation.
 */
class Mmu
{
  public:
    /**
     * @param modulus modulus m; the unit applied voltage is set so the unit
     *                segment shifts by 2 pi / m.
     * @param bits    number of binary digits (MRR-switched segments).
     */
    Mmu(uint64_t modulus, int bits);

    /** Programs the weight voltage (one reprogram event). w must be < m. */
    void setWeight(rns::Residue w);

    /** Currently programmed weight. */
    rns::Residue weight() const { return weight_; }

    /**
     * Ideal (noise-free) phase contribution for input x:
     * sum over active digits of 2^d * w * (2 pi / m), i.e. (2 pi / m) x w.
     * Returned un-wrapped; accumulation along the MDPU wraps naturally.
     */
    double idealPhase(rns::Residue x) const;

    /**
     * Phase contribution with device-level encoding errors injected:
     * a per-pass Gaussian phase error for the shifter bank (eps_ps) and for
     * each of the 2*bits MRR interactions (eps_mrr), both in units of 2 pi
     * (Sec. VI-E error model).
     */
    double noisyPhase(rns::Residue x, const PhotonicNoiseConfig &noise,
                      Rng &rng) const;

    uint64_t modulus() const { return modulus_; }
    int bits() const { return bits_; }

    /** Number of times the phase shifters were reprogrammed. */
    uint64_t reprogramCount() const { return reprogram_count_; }

  private:
    uint64_t modulus_;
    int bits_;
    double phi0_;            ///< 2 pi / m.
    rns::Residue weight_ = 0;
    uint64_t reprogram_count_ = 0;
};

} // namespace photonic
} // namespace mirage

#endif // MIRAGE_PHOTONIC_MMU_H
