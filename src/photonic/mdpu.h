#ifndef MIRAGE_PHOTONIC_MDPU_H
#define MIRAGE_PHOTONIC_MDPU_H

/**
 * @file
 * Modular Dot Product Unit (paper Sec. IV-A2) and the I/Q phase detection
 * unit (Sec. IV-A3, Fig. 4b). An MDPU cascades g MMUs on one optical
 * channel; the accumulated phase encodes the modular dot product, which the
 * detector recovers from two quadrature amplitude measurements.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "photonic/mmu.h"
#include "photonic/noise_model.h"

namespace mirage {
namespace photonic {

/**
 * Dual-quadrature phase detector: measures I = A cos(phi) and
 * Q = A sin(phi) on two balanced photodetector pairs (the second after a
 * pi/2 shift) and rounds atan2(Q, I) to the nearest of m phase levels.
 */
class PhaseDetector
{
  public:
    explicit PhaseDetector(uint64_t modulus);

    /** Noise-free detection: rounds the phase to the nearest level mod m. */
    rns::Residue detectIdeal(double phase_rad) const;

    /**
     * Detection with additive Gaussian current noise of std dev
     * `noise_sigma_a` on each quadrature, at signal amplitude
     * `photocurrent_a`.
     */
    rns::Residue detectNoisy(double phase_rad, double photocurrent_a,
                             double noise_sigma_a, Rng &rng) const;

    uint64_t modulus() const { return modulus_; }

  private:
    uint64_t modulus_;
    double phi0_; ///< 2 pi / m: angular spacing of the phase levels.
};

/**
 * One optical channel of g cascaded MMUs plus its phase detector.
 * Weights are programmed per tile; inputs stream through per cycle.
 */
class Mdpu
{
  public:
    /**
     * @param modulus the modulus this channel computes under.
     * @param bits    binary digits per MMU (ceil(log2 m)).
     * @param g       number of cascaded MMUs (dot-product length).
     */
    Mdpu(uint64_t modulus, int bits, int g);

    /** Programs all g weights (shorter spans zero-fill the tail). */
    void programWeights(std::span<const rns::Residue> weights);

    /**
     * Total accumulated phase for an input vector (length <= g; missing
     * trailing inputs are treated as zero). Adds per-device errors when
     * `noise` enables them.
     */
    double totalPhase(std::span<const rns::Residue> x,
                      const PhotonicNoiseConfig *noise, Rng *rng) const;

    /** Exact modular dot product (golden reference for this channel). */
    rns::Residue dotIdeal(std::span<const rns::Residue> x) const;

    /**
     * Full analog pipeline: accumulate phase (with optional device errors),
     * detect with optional shot/thermal noise at the given photocurrent.
     */
    rns::Residue compute(std::span<const rns::Residue> x,
                         const PhotonicNoiseConfig *noise,
                         double photocurrent_a, double noise_sigma_a,
                         Rng *rng) const;

    uint64_t modulus() const { return modulus_; }
    int g() const { return static_cast<int>(mmus_.size()); }
    int bits() const { return bits_; }

    /** Cumulative reprogram events across all MMUs in this channel. */
    uint64_t reprogramCount() const;

  private:
    uint64_t modulus_;
    int bits_;
    std::vector<Mmu> mmus_;
    PhaseDetector detector_;
};

} // namespace photonic
} // namespace mirage

#endif // MIRAGE_PHOTONIC_MDPU_H
