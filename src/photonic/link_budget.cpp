#include "photonic/link_budget.h"

#include <algorithm>
#include <cmath>

#include "analog/noise.h"
#include "common/logging.h"
#include "common/units.h"

namespace mirage {
namespace photonic {

double
mmuLossDb(const DeviceKit &kit, uint64_t modulus, int bits, LossPolicy policy)
{
    MIRAGE_ASSERT(bits >= 1 && bits <= 24, "bad digit count");
    const double l_total_mm =
        totalShifterLengthMm(kit.phase_shifter, modulus);
    const double units_total = static_cast<double>((uint64_t{1} << bits) - 1);

    double loss = 2.0 * kit.bend.loss_db; // serpentine entry/exit bends
    for (int d = 0; d < bits; ++d) {
        const double seg_mm =
            l_total_mm * static_cast<double>(uint64_t{1} << d) / units_total;
        const double through = seg_mm * kit.phase_shifter.loss_db_per_mm +
                               2.0 * kit.mrr.through_loss_db;
        const double bypass = 2.0 * kit.mrr.coupled_loss_db;
        switch (policy) {
          case LossPolicy::AllThrough:
            loss += through;
            break;
          case LossPolicy::WorstCasePerDigit:
            loss += std::max(through, bypass);
            break;
          case LossPolicy::Average:
            loss += 0.5 * (through + bypass);
            break;
        }
    }
    return loss;
}

double
mdpuPathLossDb(const DeviceKit &kit, uint64_t modulus, int bits, int g,
               LossPolicy policy)
{
    MIRAGE_ASSERT(g >= 1, "MDPU needs at least one MMU");
    return g * mmuLossDb(kit, modulus, bits, policy) + kit.coupler.loss_db;
}

LinkBudget
computeLinkBudget(const DeviceKit &kit, uint64_t modulus, int bits, int g,
                  double bandwidth_hz, double snr_safety, LossPolicy policy)
{
    MIRAGE_ASSERT(snr_safety > 0, "SNR safety factor must be positive");
    LinkBudget lb;
    lb.mmu_loss_db = mmuLossDb(kit, modulus, bits, policy);
    lb.path_loss_db = mdpuPathLossDb(kit, modulus, bits, g, policy);
    // The ADC must distinguish m phase levels: SNR >= m (Sec. V-B1).
    lb.target_snr = snr_safety * static_cast<double>(modulus);

    analog::ReceiverSpec rx;
    rx.bandwidth_hz = bandwidth_hz;
    rx.tia_feedback_ohm = kit.receiver.tia_feedback_ohm;
    rx.responsivity_a_per_w = kit.receiver.responsivity_a_per_w;
    lb.photocurrent_a = analog::requiredPhotocurrent(lb.target_snr, rx);
    lb.detector_power_w = analog::opticalPowerForCurrent(lb.photocurrent_a, rx);

    const double attenuation = units::fromDb(lb.path_loss_db);
    // Factor 2: the I/Q phase-detection setup needs two amplitude
    // measurements and therefore twice the injected laser power (Sec. IV-A3).
    lb.laser_optical_w = lb.detector_power_w * attenuation * 2.0;
    lb.laser_wall_w = lb.laser_optical_w / kit.laser.wall_plug_efficiency;
    return lb;
}

} // namespace photonic
} // namespace mirage
