#ifndef MIRAGE_PHOTONIC_MMVMU_H
#define MIRAGE_PHOTONIC_MMVMU_H

/**
 * @file
 * Modular MVM Unit (MMVMU) and RNS-MMVMU (paper Sec. IV-A2, Fig. 4a): an
 * MMVMU is `rows` MDPU channels sharing a broadcast input vector; an
 * RNS-MMVMU instantiates one MMVMU per modulus and performs the n modular
 * MVMs of one RNS MVM in parallel. A tiled signed-integer GEMM helper runs
 * whole matrix products through the functional photonic pipeline.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "obs/fidelity.h"
#include "photonic/link_budget.h"
#include "photonic/mdpu.h"
#include "rns/conversion.h"
#include "rns/moduli_set.h"

namespace mirage {
namespace photonic {

/** Execution statistics of a photonic array (functional model). */
struct ArrayStats
{
    uint64_t tiles_programmed = 0; ///< Weight-tile loads (5 ns events).
    uint64_t mvms_executed = 0;    ///< Streamed MVM cycles (0.1 ns events).
};

/**
 * One modular MVM unit: `rows` MDPUs x `g` MMUs for a single modulus.
 * The link budget fixes the per-channel photocurrent used by noisy
 * detection.
 */
class Mmvmu
{
  public:
    /**
     * @param modulus      the modulus of this unit.
     * @param rows         number of MDPU channels (vertical array size).
     * @param g            MMUs per channel (horizontal array size).
     * @param kit          photonic device parameters (for the link budget).
     * @param bandwidth_hz detection bandwidth (photonic clock).
     * @param noise        imperfection injection configuration.
     */
    Mmvmu(uint64_t modulus, int rows, int g, const DeviceKit &kit,
          double bandwidth_hz, PhotonicNoiseConfig noise);

    /**
     * Programs a weight tile (row-major rows x g; shorter tiles zero-fill).
     * One tile load = one reprogram event on every MMU.
     */
    void programTile(std::span<const rns::Residue> tile, int tile_rows,
                     int tile_cols);

    /**
     * Executes one modular MVM on the programmed tile into caller storage
     * (`y` has rows() elements). Allocation-free: staging comes from the
     * executing threads' Workspace arenas.
     */
    void mvm(std::span<const rns::Residue> x, Rng *rng,
             std::span<rns::Residue> y);

    /** Allocating convenience wrapper over the span overload. */
    std::vector<rns::Residue> mvm(std::span<const rns::Residue> x, Rng *rng);

    /** Exact modular MVM on the programmed tile (golden reference). */
    std::vector<rns::Residue> mvmIdeal(std::span<const rns::Residue> x) const;

    uint64_t modulus() const { return modulus_; }
    int rows() const { return static_cast<int>(mdpus_.size()); }
    int g() const { return g_; }
    const LinkBudget &linkBudget() const { return budget_; }
    const ArrayStats &stats() const { return stats_; }

    /** Estimated electrical SNR of one detection, photocurrent over total
     *  receiver noise, in dB (+inf-free: 0 when noise is modeled as 0). */
    double snrDb() const;

  private:
    uint64_t modulus_;
    int g_;
    PhotonicNoiseConfig noise_;
    std::vector<Mdpu> mdpus_;
    LinkBudget budget_;
    double noise_sigma_a_ = 0.0;
    ArrayStats stats_;
    /// Per-modulus SNR drift series (fidelity.snr.m<modulus>); immortal
    /// registry handle, fed at construction and on every tile reprogram.
    obs::fidelity::Series *snr_series_ = nullptr;
    /// Shadow-probe sampler (MIRAGE_FIDELITY): compares sampled noisy MVMs
    /// against mvmIdeal. Compare-only — never feeds results back.
    obs::fidelity::ProbeSampler probe_;
};

/**
 * One MMVMU per modulus: accepts signed integers, forward-converts them,
 * runs the parallel modular MVMs, and reverse-converts the outputs
 * (dataflow steps 3-7 of Fig. 2).
 */
class RnsMmvmu
{
  public:
    RnsMmvmu(rns::ModuliSet set, int rows, int g, const DeviceKit &kit,
             double bandwidth_hz, PhotonicNoiseConfig noise = {});

    /** Programs a signed weight tile (row-major tile_rows x tile_cols). */
    void programTile(std::span<const int64_t> tile, int tile_rows,
                     int tile_cols);

    /**
     * One RNS MVM: forward conversion, n parallel modular MVMs, reverse
     * conversion of each output element. Values must respect Eq. (13).
     * The span overload writes into caller storage (rows() elements) and
     * stages everything in Workspace arenas — allocation-free once warm.
     */
    void mvm(std::span<const int64_t> x, Rng *rng, std::span<int64_t> y);

    /** Allocating convenience wrapper over the span overload. */
    std::vector<int64_t> mvm(std::span<const int64_t> x, Rng *rng = nullptr);

    const rns::ModuliSet &set() const { return codec_.set(); }
    int rows() const { return rows_; }
    int g() const { return g_; }

    /** Per-modulus unit (for link-budget and stats inspection). */
    const Mmvmu &unit(size_t i) const { return units_[i]; }
    Mmvmu &unit(size_t i) { return units_[i]; }

    /** Total laser wall-plug power across all channels of this array [W]. */
    double laserWallPowerW() const;

  private:
    rns::RnsCodec codec_;
    int rows_;
    int g_;
    bool noisy_; ///< Any noise enabled: only then does mvm consume rng.
    std::vector<Mmvmu> units_;
};

/**
 * Runs a full signed-integer GEMM C = A * B (A: MxK, B: KxN, row-major)
 * through the photonic functional pipeline with weight-stationary tiling:
 * A sub-tiles are programmed as weights, columns of B stream as inputs, and
 * partial outputs are accumulated after reverse conversion (step 9).
 */
std::vector<int64_t> photonicGemm(RnsMmvmu &array,
                                  const std::vector<int64_t> &a,
                                  const std::vector<int64_t> &b,
                                  int m_rows, int k_depth, int n_cols,
                                  Rng *rng = nullptr);

} // namespace photonic
} // namespace mirage

#endif // MIRAGE_PHOTONIC_MMVMU_H
