#ifndef MIRAGE_PHOTONIC_NOISE_MODEL_H
#define MIRAGE_PHOTONIC_NOISE_MODEL_H

/**
 * @file
 * Noise/error injection configuration for the functional photonic model and
 * the Eq. (14) analytic bound on MDPU output phase error (paper Sec. VI-E).
 */

#include <cmath>

#include "photonic/link_budget.h"

namespace mirage {
namespace photonic {

/** What imperfections the functional simulation injects. */
struct PhotonicNoiseConfig
{
    /// Shot + thermal noise at the phase detector (Sec. II-E2).
    bool shot_thermal_enabled = false;
    /// Multiplies the SNR >= m laser-sizing requirement.
    double snr_safety = 1.0;
    /// Per-MMU phase-shifter encoding error, std dev as a fraction of 2 pi
    /// (paper's conservative bound: 2^-bDAC).
    double eps_ps = 0.0;
    /// Per-MRR-pass encoding error, std dev as a fraction of 2 pi
    /// (paper's conservative bound: 0.3 %).
    double eps_mrr = 0.0;
    /// Loss model used when sizing the laser.
    LossPolicy loss_policy = LossPolicy::AllThrough;

    /** True when any imperfection is active. */
    bool
    anyEnabled() const
    {
        return shot_thermal_enabled || eps_ps > 0.0 || eps_mrr > 0.0;
    }
};

/**
 * Eq. (14): RMS output phase error of an h-long MDPU, in fractions of 2 pi:
 * sqrt(h * eps_ps^2 + 2 h ceil(log2 m) * eps_mrr^2), worst case with light
 * traversing every phase shifter.
 */
inline double
outputPhaseErrorRms(int h, int bits_per_modulus, double eps_ps, double eps_mrr)
{
    return std::sqrt(h * eps_ps * eps_ps +
                     2.0 * h * bits_per_modulus * eps_mrr * eps_mrr);
}

/**
 * Smallest DAC precision whose encoding error keeps Eq. (14) below the
 * 2^-b_out budget (paper Sec. VI-E finds bDAC >= 8 for h = 16): returns the
 * minimal bdac in [1, 16] with outputPhaseErrorRms(h, bits, 2^-bdac,
 * eps_mrr) <= 2^-b_out, or -1 when none suffices.
 */
inline int
minimumDacBits(int h, int bits_per_modulus, double eps_mrr, int b_out)
{
    for (int bdac = 1; bdac <= 16; ++bdac) {
        const double eps_ps = std::exp2(-bdac);
        if (outputPhaseErrorRms(h, bits_per_modulus, eps_ps, eps_mrr) <=
            std::exp2(-b_out)) {
            return bdac;
        }
    }
    return -1;
}

} // namespace photonic
} // namespace mirage

#endif // MIRAGE_PHOTONIC_NOISE_MODEL_H
