#include "photonic/mmu.h"

#include "common/logging.h"
#include "common/units.h"

namespace mirage {
namespace photonic {

Mmu::Mmu(uint64_t modulus, int bits)
    : modulus_(modulus),
      bits_(bits),
      phi0_(2.0 * units::kPi / static_cast<double>(modulus))
{
    MIRAGE_ASSERT(modulus >= 2, "modulus must be >= 2");
    MIRAGE_ASSERT(bits >= 1 && bits <= 24, "bad digit count");
    MIRAGE_ASSERT((uint64_t{1} << bits) >= modulus,
                  "digit count cannot represent modulus range");
}

void
Mmu::setWeight(rns::Residue w)
{
    MIRAGE_ASSERT(w < modulus_, "weight residue not reduced: ", w);
    weight_ = w;
    ++reprogram_count_;
}

double
Mmu::idealPhase(rns::Residue x) const
{
    MIRAGE_ASSERT(x < modulus_, "input residue not reduced: ", x);
    // Digit-sliced accumulation mirrors the hardware: each active digit d
    // contributes 2^d * w unit shifts of 2 pi / m.
    double phase = 0.0;
    for (int d = 0; d < bits_; ++d) {
        if ((x >> d) & 1)
            phase += static_cast<double>(uint64_t{1} << d) *
                     static_cast<double>(weight_) * phi0_;
    }
    return phase;
}

double
Mmu::noisyPhase(rns::Residue x, const PhotonicNoiseConfig &noise,
                Rng &rng) const
{
    double phase = idealPhase(x);
    const double two_pi = 2.0 * units::kPi;
    if (noise.eps_ps > 0.0)
        phase += rng.gaussian(0.0, noise.eps_ps * two_pi);
    if (noise.eps_mrr > 0.0) {
        // Light interacts with two MRR switches per digit regardless of the
        // route taken (Fig. 3c).
        for (int d = 0; d < 2 * bits_; ++d)
            phase += rng.gaussian(0.0, noise.eps_mrr * two_pi);
    }
    return phase;
}

} // namespace photonic
} // namespace mirage
