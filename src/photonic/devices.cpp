#include "photonic/devices.h"

#include <cmath>

#include "common/logging.h"
#include "common/units.h"

namespace mirage {
namespace photonic {

double
maxPhaseShiftRad(uint64_t modulus)
{
    MIRAGE_ASSERT(modulus >= 2, "modulus must be >= 2");
    const double m = static_cast<double>(modulus);
    const double max_product = std::ceil((m - 1.0) * (m - 1.0) / 2.0);
    return max_product * 2.0 * units::kPi / m;
}

double
totalShifterLengthMm(const PhaseShifterSpec &ps, uint64_t modulus)
{
    // Eq. (11): L_total = (VpiL / Vbias) * (dPhi_max / pi).
    const double vpi_l_v_mm = ps.vpi_l_v_cm * 10.0;
    return (vpi_l_v_mm / ps.v_bias) * (maxPhaseShiftRad(modulus) / units::kPi);
}

double
mmuLengthMm(const DeviceKit &kit, uint64_t modulus, int bits)
{
    MIRAGE_ASSERT(bits >= 1, "MMU needs at least one digit");
    return totalShifterLengthMm(kit.phase_shifter, modulus) +
           2.0 * bits * kit.mrr.diameterMm();
}

double
unitVoltage(const PhaseShifterSpec &ps, uint64_t modulus)
{
    // V0 produces a 2 pi / m phase shift on the unit-length (L) segment;
    // with binary-weighted segments summing to L_total over (2^b - 1) units,
    // V0 = 2 * VpiL / (m * L_unit) by the pi * V * L / VpiL relation.
    const double l_total_cm = totalShifterLengthMm(ps, modulus) / 10.0;
    const double m = static_cast<double>(modulus);
    const int bits = [] (uint64_t v) {
        int b = 0;
        while (v) { v >>= 1; ++b; }
        return b;
    }(modulus - 1);
    const double l_unit_cm = l_total_cm / ((1 << bits) - 1);
    return 2.0 * ps.vpi_l_v_cm / (m * l_unit_cm);
}

} // namespace photonic
} // namespace mirage
