#include "photonic/mdpu.h"

#include <cmath>

#include "common/logging.h"
#include "common/units.h"

namespace mirage {
namespace photonic {

PhaseDetector::PhaseDetector(uint64_t modulus)
    : modulus_(modulus),
      phi0_(2.0 * units::kPi / static_cast<double>(modulus))
{
    MIRAGE_ASSERT(modulus >= 2, "modulus must be >= 2");
}

rns::Residue
PhaseDetector::detectIdeal(double phase_rad) const
{
    // Round to the nearest level; phases are multiples of 2 pi / m up to
    // floating-point accumulation error, so nearest-level rounding is exact
    // for any realistic dot-product magnitude.
    const double levels = phase_rad / phi0_;
    const long long level = std::llround(levels);
    const long long m = static_cast<long long>(modulus_);
    long long r = level % m;
    if (r < 0)
        r += m;
    return static_cast<rns::Residue>(r);
}

rns::Residue
PhaseDetector::detectNoisy(double phase_rad, double photocurrent_a,
                           double noise_sigma_a, Rng &rng) const
{
    MIRAGE_ASSERT(photocurrent_a > 0, "photocurrent must be positive");
    // Two quadrature measurements with independent additive current noise
    // (shot + thermal, folded into noise_sigma_a by the caller).
    const double i_meas = photocurrent_a * std::cos(phase_rad) +
                          rng.gaussian(0.0, noise_sigma_a);
    const double q_meas = photocurrent_a * std::sin(phase_rad) +
                          rng.gaussian(0.0, noise_sigma_a);
    const double est_phase = std::atan2(q_meas, i_meas);
    return detectIdeal(est_phase);
}

Mdpu::Mdpu(uint64_t modulus, int bits, int g)
    : modulus_(modulus), bits_(bits), detector_(modulus)
{
    MIRAGE_ASSERT(g >= 1, "MDPU needs at least one MMU");
    mmus_.reserve(static_cast<size_t>(g));
    for (int i = 0; i < g; ++i)
        mmus_.emplace_back(modulus, bits);
}

void
Mdpu::programWeights(std::span<const rns::Residue> weights)
{
    MIRAGE_ASSERT(weights.size() <= mmus_.size(),
                  "more weights than MMUs in the channel");
    for (size_t i = 0; i < mmus_.size(); ++i)
        mmus_[i].setWeight(i < weights.size() ? weights[i] : 0);
}

double
Mdpu::totalPhase(std::span<const rns::Residue> x,
                 const PhotonicNoiseConfig *noise, Rng *rng) const
{
    MIRAGE_ASSERT(x.size() <= mmus_.size(),
                  "more inputs than MMUs in the channel");
    double phase = 0.0;
    const bool inject = noise != nullptr &&
                        (noise->eps_ps > 0.0 || noise->eps_mrr > 0.0);
    MIRAGE_ASSERT(!inject || rng != nullptr,
                  "device-error injection requires an Rng");
    for (size_t i = 0; i < mmus_.size(); ++i) {
        const rns::Residue xi = i < x.size() ? x[i] : 0;
        phase += inject ? mmus_[i].noisyPhase(xi, *noise, *rng)
                        : mmus_[i].idealPhase(xi);
    }
    return phase;
}

rns::Residue
Mdpu::dotIdeal(std::span<const rns::Residue> x) const
{
    uint64_t acc = 0;
    for (size_t i = 0; i < x.size() && i < mmus_.size(); ++i)
        acc += x[i] * mmus_[i].weight(); // exact: residues < 2^21
    return acc % modulus_;
}

rns::Residue
Mdpu::compute(std::span<const rns::Residue> x,
              const PhotonicNoiseConfig *noise, double photocurrent_a,
              double noise_sigma_a, Rng *rng) const
{
    const double phase = totalPhase(x, noise, rng);
    if (noise != nullptr && noise->shot_thermal_enabled) {
        MIRAGE_ASSERT(rng != nullptr, "shot/thermal noise requires an Rng");
        return detector_.detectNoisy(phase, photocurrent_a, noise_sigma_a,
                                     *rng);
    }
    return detector_.detectIdeal(phase);
}

uint64_t
Mdpu::reprogramCount() const
{
    uint64_t total = 0;
    for (const Mmu &mmu : mmus_)
        total += mmu.reprogramCount();
    return total;
}

} // namespace photonic
} // namespace mirage
