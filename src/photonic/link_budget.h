#ifndef MIRAGE_PHOTONIC_LINK_BUDGET_H
#define MIRAGE_PHOTONIC_LINK_BUDGET_H

/**
 * @file
 * Optical link budget for one MDPU channel (paper Sec. V-B1): accumulates
 * all losses on the optical path and back-solves the laser power that keeps
 * the detected SNR above the m phase levels the ADC must distinguish.
 */

#include <cstdint>

#include "photonic/devices.h"

namespace mirage {
namespace photonic {

/** Which optical path the loss model assumes. */
enum class LossPolicy
{
    /// Light traverses every phase-shifter segment (paper's worst case,
    /// Sec. VI-E: "the light goes through all the phase shifters").
    AllThrough,
    /// Per digit, the lossier of through-path and MRR-bypass is charged.
    WorstCasePerDigit,
    /// Per digit, the mean of through-path and bypass (random operands).
    Average,
};

/** Result of the link-budget solve for a single MDPU optical channel. */
struct LinkBudget
{
    double mmu_loss_db = 0.0;       ///< Loss per MMU under the policy.
    double path_loss_db = 0.0;      ///< Full channel: g MMUs + coupler.
    double target_snr = 0.0;        ///< Amplitude SNR goal (>= m).
    double photocurrent_a = 0.0;    ///< Detector current meeting the SNR.
    double detector_power_w = 0.0;  ///< Optical power at each detector.
    double laser_optical_w = 0.0;   ///< Injected optical power (2x for I/Q).
    double laser_wall_w = 0.0;      ///< Wall-plug power (efficiency-scaled).
};

/** Loss of one MMU [dB] for modulus m with `bits` binary digits. */
double mmuLossDb(const DeviceKit &kit, uint64_t modulus, int bits,
                 LossPolicy policy);

/**
 * End-to-end loss [dB] of one MDPU channel: g cascaded MMUs plus the
 * laser-to-chip coupler. The I/Q detection split is accounted as the 2x
 * laser power factor rather than a 3 dB loss (paper Sec. IV-A3).
 */
double mdpuPathLossDb(const DeviceKit &kit, uint64_t modulus, int bits, int g,
                      LossPolicy policy);

/**
 * Solves the full link budget for one MDPU channel.
 *
 * @param bandwidth_hz detection bandwidth (photonic clock rate).
 * @param snr_safety   multiplies the SNR >= m requirement (margin).
 */
LinkBudget computeLinkBudget(const DeviceKit &kit, uint64_t modulus, int bits,
                             int g, double bandwidth_hz, double snr_safety,
                             LossPolicy policy);

} // namespace photonic
} // namespace mirage

#endif // MIRAGE_PHOTONIC_LINK_BUDGET_H
