#ifndef MIRAGE_PHOTONIC_DEVICES_H
#define MIRAGE_PHOTONIC_DEVICES_H

/**
 * @file
 * Silicon-photonic device parameters (paper Sec. II-E1 and V-B1) and the
 * geometry relations of the modular multiplication unit: Eq. (11) for total
 * phase-shifter length and the resulting MMU footprint.
 *
 * Defaults are the paper's evaluation constants: NOEMS-class phase shifters
 * with VpiL = 0.002 V*cm, 1.6 dB/mm loss and Vbias = 1.08 V; 10 um MRR
 * switches with 0.2 dB coupled loss and 0.3 pW tuning power.
 */

#include <cstdint>

namespace mirage {
namespace photonic {

/** Phase shifter (one MMU's binary-weighted segments share these). */
struct PhaseShifterSpec
{
    double vpi_l_v_cm = 0.002;       ///< Modulation efficiency VpiL [V*cm].
    double loss_db_per_mm = 1.6;     ///< Propagation loss.
    double v_bias = 1.08;            ///< Maximum bias voltage [V].
    double reprogram_time_s = 5e-9;  ///< Settling time per tile load.
    double tuning_energy_j = 3e-15;  ///< Per-reprogram energy ("a few fJ/bit").
};

/** Micro-ring resonator switch. */
struct MrrSpec
{
    double radius_um = 10.0;
    double coupled_loss_db = 0.2;   ///< Insertion+propagation when coupled.
    double through_loss_db = 0.01;  ///< Off-resonance pass-by loss.
    double switch_power_w = 0.3e-12; ///< Electro-optic tuning power (0.3 pW).
    double modulation_rate_hz = 10e9; ///< Tens of Gb/s switching [42].

    /** Device diameter in millimeters (layout pitch along the bus). */
    double diameterMm() const { return 2.0 * radius_um * 1e-3; }
};

/** 180-degree waveguide bend between cascaded shifter segments. */
struct BendSpec
{
    double radius_um = 5.0;
    double loss_db = 0.01;
};

/** Laser-to-chip coupler. */
struct CouplerSpec
{
    double loss_db = 0.2;
};

/** Laser source. */
struct LaserSpec
{
    double wall_plug_efficiency = 0.2;
};

/** Photodetector + TIA receive chain constants. */
struct ReceiverChainSpec
{
    double responsivity_a_per_w = 1.1;
    double tia_energy_per_bit_j = 57e-15;
    double tia_feedback_ohm = 1.0e3;
};

/** Full device kit used to instantiate one Mirage photonic core. */
struct DeviceKit
{
    PhaseShifterSpec phase_shifter;
    MrrSpec mrr;
    BendSpec bend;
    CouplerSpec coupler;
    LaserSpec laser;
    ReceiverChainSpec receiver;
};

/**
 * Maximum phase shift an MMU must reach for modulus m (Sec. IV-A1):
 * ceil((m-1)^2 / 2) * (2 pi / m) radians, for operands mapped around zero.
 */
double maxPhaseShiftRad(uint64_t modulus);

/**
 * Eq. (11): total phase-shifter length [mm] to reach maxPhaseShiftRad(m)
 * at full bias. For the paper's kit and m = 33 this evaluates to ~0.57 mm.
 */
double totalShifterLengthMm(const PhaseShifterSpec &ps, uint64_t modulus);

/**
 * Horizontal MMU footprint [mm]: the shifter segments plus two MRR switches
 * per binary digit (paper: ~0.8 mm for m = 33).
 */
double mmuLengthMm(const DeviceKit &kit, uint64_t modulus, int bits);

/** Unit voltage V0 = 2 Vpi / m giving a 2 pi / m shift on the L segment. */
double unitVoltage(const PhaseShifterSpec &ps, uint64_t modulus);

} // namespace photonic
} // namespace mirage

#endif // MIRAGE_PHOTONIC_DEVICES_H
