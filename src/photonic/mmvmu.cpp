#include "photonic/mmvmu.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "analog/noise.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/workspace.h"
#include "runtime/thread_pool.h"

namespace mirage {
namespace photonic {

namespace {

/// MDPU rows per parallelFor block (fixed — see thread_pool.h). The paper's
/// MMVMU drives all rows simultaneously off one broadcast input; the host
/// model mirrors that row-level parallelism.
constexpr int64_t kRowGrain = 8;

/// Work cutoffs below which the loops run serially (runtime::serialBelow):
/// phase accumulation/detection is expensive per element, weight copies are
/// cheap, so the thresholds differ. Raised from 1024/8192/512 — those were
/// low enough that single-tile MVMs woke the whole pool for work that
/// finishes in a few microseconds, part of the historical multi-thread
/// slowdown.
constexpr int64_t kMinMvmWork = 8192;
constexpr int64_t kMinProgramWork = 16384;
constexpr int64_t kMinDecodeWork = 4096;

} // namespace

Mmvmu::Mmvmu(uint64_t modulus, int rows, int g, const DeviceKit &kit,
             double bandwidth_hz, PhotonicNoiseConfig noise)
    : modulus_(modulus), g_(g), noise_(noise)
{
    MIRAGE_ASSERT(rows >= 1, "MMVMU needs at least one MDPU row");
    const int bits = bitsFor(modulus);
    mdpus_.reserve(static_cast<size_t>(rows));
    for (int r = 0; r < rows; ++r)
        mdpus_.emplace_back(modulus, bits, g);
    budget_ = computeLinkBudget(kit, modulus, bits, g, bandwidth_hz,
                                noise.snr_safety, noise.loss_policy);

    analog::ReceiverSpec rx;
    rx.bandwidth_hz = bandwidth_hz;
    rx.tia_feedback_ohm = kit.receiver.tia_feedback_ohm;
    rx.responsivity_a_per_w = kit.receiver.responsivity_a_per_w;
    noise_sigma_a_ = analog::totalNoiseSigma(budget_.photocurrent_a, rx);

    // Health telemetry: every unit reports its link-budget SNR estimate
    // into the per-modulus drift series (alerting on SNR sag only; an SNR
    // improvement is not an operational problem).
    obs::fidelity::SeriesConfig snr_cfg;
    snr_cfg.alert_up = false;
    snr_cfg.alert_down = true;
    snr_series_ = &obs::fidelity::series(
        "fidelity.snr.m" + std::to_string(modulus_), snr_cfg);
    const double snr_db = snrDb();
    obs::fidelity::noteSnrDb(snr_db);
    snr_series_->observe(snr_db);
}

double
Mmvmu::snrDb() const
{
    if (!(noise_sigma_a_ > 0.0) || !(budget_.photocurrent_a > 0.0))
        return 0.0;
    return 20.0 * std::log10(budget_.photocurrent_a / noise_sigma_a_);
}

void
Mmvmu::programTile(std::span<const rns::Residue> tile, int tile_rows,
                   int tile_cols)
{
    MIRAGE_ASSERT(tile_rows <= rows() && tile_cols <= g_,
                  "tile exceeds array dimensions");
    MIRAGE_ASSERT(tile.size() == static_cast<size_t>(tile_rows) * tile_cols,
                  "tile shape mismatch");
    runtime::parallelFor(
        rows(),
        runtime::serialBelow(rows(), kRowGrain,
                             static_cast<int64_t>(rows()) * g_,
                             kMinProgramWork),
        [&](int64_t r0, int64_t r1) {
        Workspace &tws = threadWorkspace();
        Workspace::Scope tscope(tws);
        std::span<rns::Residue> row_buf =
            tws.zeroed<rns::Residue>(static_cast<size_t>(g_));
        for (int64_t r = r0; r < r1; ++r) {
            if (r < tile_rows) {
                for (int c = 0; c < g_; ++c)
                    row_buf[static_cast<size_t>(c)] =
                        (c < tile_cols)
                            ? tile[static_cast<size_t>(r) * tile_cols + c]
                            : 0;
            } else {
                std::fill(row_buf.begin(), row_buf.end(), 0);
            }
            mdpus_[static_cast<size_t>(r)].programWeights(row_buf);
        }
    });
    ++stats_.tiles_programmed;
    // Re-sample the SNR estimate once per reprogram (not per MVM): frequent
    // enough for drift detection, far off the streaming hot path.
    const double snr_db = snrDb();
    obs::fidelity::noteSnrDb(snr_db);
    snr_series_->observe(snr_db);
}

void
Mmvmu::mvm(std::span<const rns::Residue> x, Rng *rng,
           std::span<rns::Residue> y)
{
    MIRAGE_ASSERT(y.size() == mdpus_.size(), "output size mismatch");
    const PhotonicNoiseConfig *noise =
        noise_.anyEnabled() ? &noise_ : nullptr;
    // Rows are independent optical channels. With noise on, each row draws
    // from its own substream (split of one base value from the caller's
    // rng), so noisy results are bit-identical at every thread count.
    const bool noisy = noise != nullptr && rng != nullptr;
    const uint64_t base = noisy ? rng->nextU64() : 0;
    const int64_t row_count = static_cast<int64_t>(mdpus_.size());
    runtime::parallelFor(
        row_count,
        runtime::serialBelow(row_count, kRowGrain, row_count * g_,
                             kMinMvmWork),
        [&](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
                std::optional<Rng> row_rng;
                if (noisy)
                    row_rng.emplace(
                        Rng::stream(base, static_cast<uint64_t>(r)));
                y[static_cast<size_t>(r)] =
                    mdpus_[static_cast<size_t>(r)].compute(
                        x, noise, budget_.photocurrent_a, noise_sigma_a_,
                        row_rng ? &*row_rng : nullptr);
            }
        });
    ++stats_.mvms_executed;

    if (probe_.sample()) {
        // Shadow probe: re-run the sampled MVM on the exact modular
        // reference and count residue mismatches (detection errors). Reads
        // x and y only — y is not modified, no rng is consumed.
        const std::vector<rns::Residue> ideal = mvmIdeal(x);
        uint64_t mismatches = 0;
        for (size_t r = 0; r < ideal.size(); ++r)
            if (y[r] != ideal[r])
                ++mismatches;
        obs::fidelity::notePhotonicProbe(ideal.size(), mismatches);
    }
}

std::vector<rns::Residue>
Mmvmu::mvm(std::span<const rns::Residue> x, Rng *rng)
{
    std::vector<rns::Residue> y(mdpus_.size());
    mvm(x, rng, y);
    return y;
}

std::vector<rns::Residue>
Mmvmu::mvmIdeal(std::span<const rns::Residue> x) const
{
    std::vector<rns::Residue> y(mdpus_.size());
    for (size_t r = 0; r < mdpus_.size(); ++r)
        y[r] = mdpus_[r].dotIdeal(x);
    return y;
}

RnsMmvmu::RnsMmvmu(rns::ModuliSet set, int rows, int g, const DeviceKit &kit,
                   double bandwidth_hz, PhotonicNoiseConfig noise)
    : codec_(set), rows_(rows), g_(g), noisy_(noise.anyEnabled())
{
    units_.reserve(set.count());
    for (size_t i = 0; i < set.count(); ++i)
        units_.emplace_back(set.modulus(i), rows, g, kit, bandwidth_hz, noise);
}

void
RnsMmvmu::programTile(std::span<const int64_t> tile, int tile_rows,
                      int tile_cols)
{
    MIRAGE_ASSERT(tile.size() == static_cast<size_t>(tile_rows) * tile_cols,
                  "tile shape mismatch");
    // One modular unit per modulus; the paper programs them in parallel
    // (Fig. 2 step 3) and so does the host model.
    const int64_t unit_count = static_cast<int64_t>(units_.size());
    runtime::parallelFor(
        unit_count,
        runtime::serialBelow(unit_count, 1,
                             unit_count * static_cast<int64_t>(tile.size()),
                             kMinProgramWork),
        [&](int64_t u0, int64_t u1) {
            Workspace &tws = threadWorkspace();
            Workspace::Scope tscope(tws);
            std::span<rns::Residue> residues =
                tws.alloc<rns::Residue>(tile.size());
            for (int64_t u = u0; u < u1; ++u) {
                const uint64_t m = set().modulus(static_cast<size_t>(u));
                for (size_t i = 0; i < tile.size(); ++i)
                    residues[i] = rns::reduceSigned(tile[i], m);
                units_[static_cast<size_t>(u)].programTile(residues, tile_rows,
                                                           tile_cols);
            }
        });
}

void
RnsMmvmu::mvm(std::span<const int64_t> x, Rng *rng, std::span<int64_t> y)
{
    MIRAGE_ASSERT(static_cast<int>(x.size()) <= g_,
                  "input vector longer than array width");
    MIRAGE_ASSERT(y.size() == static_cast<size_t>(rows_),
                  "output size mismatch");
    // Per-unit output staging lives in the calling thread's arena; units
    // write disjoint sub-spans, so the parallel loop below is race-free.
    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);
    const size_t rows = static_cast<size_t>(rows_);
    std::span<rns::Residue> outputs =
        ws.alloc<rns::Residue>(units_.size() * rows);
    // The n modular MVMs of one RNS MVM run in parallel across units
    // (paper Sec. IV-A2); with noise on, every unit gets its own
    // deterministic substream so results are thread-count invariant. With
    // noise off, the caller's rng is left untouched (no draws).
    const bool noisy = noisy_ && rng != nullptr;
    const uint64_t base = noisy ? rng->nextU64() : 0;
    const int64_t unit_count = static_cast<int64_t>(units_.size());
    runtime::parallelFor(
        unit_count,
        runtime::serialBelow(unit_count, 1,
                             unit_count * rows_ * static_cast<int64_t>(g_),
                             kMinMvmWork),
        [&](int64_t u0, int64_t u1) {
            Workspace &tws = threadWorkspace();
            Workspace::Scope tscope(tws);
            std::span<rns::Residue> x_res =
                tws.alloc<rns::Residue>(x.size());
            for (int64_t u = u0; u < u1; ++u) {
                const uint64_t m = set().modulus(static_cast<size_t>(u));
                for (size_t i = 0; i < x.size(); ++i)
                    x_res[i] = rns::reduceSigned(x[i], m);
                std::optional<Rng> unit_rng;
                if (noisy)
                    unit_rng.emplace(
                        Rng::stream(base, static_cast<uint64_t>(u)));
                units_[static_cast<size_t>(u)].mvm(
                    x_res, unit_rng ? &*unit_rng : nullptr,
                    outputs.subspan(static_cast<size_t>(u) * rows, rows));
            }
        });

    runtime::parallelFor(
        rows_,
        runtime::serialBelow(rows_, kRowGrain,
                             rows_ * static_cast<int64_t>(units_.size()),
                             kMinDecodeWork),
        [&](int64_t r0, int64_t r1) {
        Workspace &tws = threadWorkspace();
        Workspace::Scope tscope(tws);
        std::span<rns::Residue> digits =
            tws.alloc<rns::Residue>(units_.size());
        for (int64_t r = r0; r < r1; ++r) {
            for (size_t u = 0; u < units_.size(); ++u)
                digits[u] = outputs[u * rows + static_cast<size_t>(r)];
            y[static_cast<size_t>(r)] = codec_.decode(digits);
        }
    });
}

std::vector<int64_t>
RnsMmvmu::mvm(std::span<const int64_t> x, Rng *rng)
{
    std::vector<int64_t> y(static_cast<size_t>(rows_));
    mvm(x, rng, y);
    return y;
}

double
RnsMmvmu::laserWallPowerW() const
{
    double total = 0.0;
    for (const Mmvmu &unit : units_)
        total += unit.linkBudget().laser_wall_w * unit.rows();
    return total;
}

std::vector<int64_t>
photonicGemm(RnsMmvmu &array, const std::vector<int64_t> &a,
             const std::vector<int64_t> &b, int m_rows, int k_depth,
             int n_cols, Rng *rng)
{
    MIRAGE_ASSERT(a.size() == static_cast<size_t>(m_rows) * k_depth,
                  "A shape mismatch");
    MIRAGE_ASSERT(b.size() == static_cast<size_t>(k_depth) * n_cols,
                  "B shape mismatch");
    const int tile_rows = array.rows();
    const int tile_cols = array.g();
    std::vector<int64_t> c(static_cast<size_t>(m_rows) * n_cols, 0);

    // Tile/input/output staging lives in this thread's arena for the whole
    // GEMM (programTile and mvm open their own nested scopes below it).
    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);
    std::span<int64_t> tile =
        ws.alloc<int64_t>(static_cast<size_t>(tile_rows) * tile_cols);
    std::span<int64_t> x = ws.alloc<int64_t>(static_cast<size_t>(tile_cols));
    std::span<int64_t> y = ws.alloc<int64_t>(static_cast<size_t>(tile_rows));
    for (int r0 = 0; r0 < m_rows; r0 += tile_rows) {
        const int tr = std::min(tile_rows, m_rows - r0);
        for (int k0 = 0; k0 < k_depth; k0 += tile_cols) {
            const int tc = std::min(tile_cols, k_depth - k0);
            // Load the A sub-tile as the stationary weights.
            std::span<int64_t> t = tile.first(static_cast<size_t>(tr) * tc);
            for (int r = 0; r < tr; ++r)
                for (int cidx = 0; cidx < tc; ++cidx)
                    t[static_cast<size_t>(r) * tc + cidx] =
                        a[static_cast<size_t>(r0 + r) * k_depth + k0 + cidx];
            array.programTile(t, tr, tc);

            // Stream the matching slice of every B column.
            for (int j = 0; j < n_cols; ++j) {
                for (int cidx = 0; cidx < tc; ++cidx)
                    x[static_cast<size_t>(cidx)] =
                        b[static_cast<size_t>(k0 + cidx) * n_cols + j];
                std::fill(x.begin() + tc, x.end(), 0);
                array.mvm(x, rng, y);
                // Accumulate partial outputs after reverse conversion
                // (dataflow step 9).
                for (int r = 0; r < tr; ++r)
                    c[static_cast<size_t>(r0 + r) * n_cols + j] +=
                        y[static_cast<size_t>(r)];
            }
        }
    }
    return c;
}

} // namespace photonic
} // namespace mirage
