#include "analog/converter_energy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mirage {
namespace analog {

namespace {

// Calibration anchors (see header): alpha fits the 6-bit ADC reference in
// the technology-limited regime, beta fits the ~1 nJ @ 16-bit point in the
// noise-limited regime. Crossover lands near 16 bits.
constexpr double kAdcTechJ = 0.958e-12 / 64.0;   // alpha: E = alpha * 2^b
constexpr double kAdcNoiseJ = 1.0e-9 / 4294967296.0; // beta: E = beta * 4^b
constexpr double kDacToAdcRatio = 1.0 / 100.0;   // Fig. 1b: ~2 orders less

} // namespace

double
adcEnergyPerConversion(int bits)
{
    MIRAGE_ASSERT(bits >= 1 && bits <= 24, "ADC bits out of range: ", bits);
    const double tech = kAdcTechJ * std::exp2(bits);
    const double noise = kAdcNoiseJ * std::exp2(2.0 * bits);
    return std::max(tech, noise);
}

double
dacEnergyPerConversion(int bits)
{
    MIRAGE_ASSERT(bits >= 1 && bits <= 24, "DAC bits out of range: ", bits);
    return adcEnergyPerConversion(bits) * kDacToAdcRatio;
}

ConverterSpec
ConverterSpec::scaledToBits(int new_bits) const
{
    MIRAGE_ASSERT(new_bits >= 1 && new_bits <= 24, "bits out of range");
    ConverterSpec s = *this;
    const double factor = std::exp2(new_bits - bits);
    s.bits = new_bits;
    s.power_w = power_w * factor;
    s.area_mm2 = area_mm2 * factor;
    return s;
}

ConverterSpec
mirageAdc6()
{
    return {6, 24e9, 23e-3, 0.03};
}

ConverterSpec
mirageDac6()
{
    return {6, 20e9, 136e-3, 0.072};
}

ConverterSpec
mirageDac8()
{
    // Derived from the 6-bit part via the 2x/bit rule; the paper reports the
    // system-level impact of this swap as ~1.09x energy (Sec. VI-E).
    return mirageDac6().scaledToBits(8);
}

} // namespace analog
} // namespace mirage
