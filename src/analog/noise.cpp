#include "analog/noise.h"

#include <cmath>

#include "common/logging.h"
#include "common/units.h"

namespace mirage {
namespace analog {

double
shotNoiseSigma(double photocurrent_a, double bandwidth_hz)
{
    MIRAGE_ASSERT(photocurrent_a >= 0 && bandwidth_hz > 0, "bad noise params");
    return std::sqrt(2.0 * units::kElementaryCharge * photocurrent_a *
                     bandwidth_hz);
}

double
thermalNoiseSigma(double temperature_k, double feedback_ohm,
                  double bandwidth_hz)
{
    MIRAGE_ASSERT(temperature_k > 0 && feedback_ohm > 0 && bandwidth_hz > 0,
                  "bad noise params");
    return std::sqrt(4.0 * units::kBoltzmann * temperature_k * bandwidth_hz /
                     feedback_ohm);
}

double
totalNoiseSigma(double photocurrent_a, const ReceiverSpec &rx)
{
    const double shot = shotNoiseSigma(photocurrent_a, rx.bandwidth_hz);
    const double thermal =
        thermalNoiseSigma(rx.temperature_k, rx.tia_feedback_ohm, rx.bandwidth_hz);
    return std::sqrt(shot * shot + thermal * thermal);
}

double
snrAtPhotocurrent(double photocurrent_a, const ReceiverSpec &rx)
{
    return photocurrent_a / totalNoiseSigma(photocurrent_a, rx);
}

double
requiredPhotocurrent(double target_snr, const ReceiverSpec &rx)
{
    MIRAGE_ASSERT(target_snr > 0, "SNR target must be positive");
    // I^2 = s^2 (2 q df I + 4 kB T df / R)  =>
    // I = s^2 q df + sqrt((s^2 q df)^2 + s^2 4 kB T df / R)
    const double s2 = target_snr * target_snr;
    const double shot_term = s2 * units::kElementaryCharge * rx.bandwidth_hz;
    const double thermal_var = 4.0 * units::kBoltzmann * rx.temperature_k *
                               rx.bandwidth_hz / rx.tia_feedback_ohm;
    return shot_term + std::sqrt(shot_term * shot_term + s2 * thermal_var);
}

double
opticalPowerForCurrent(double photocurrent_a, const ReceiverSpec &rx)
{
    MIRAGE_ASSERT(rx.responsivity_a_per_w > 0, "responsivity must be positive");
    return photocurrent_a / rx.responsivity_a_per_w;
}

} // namespace analog
} // namespace mirage
