#ifndef MIRAGE_ANALOG_CONVERTER_ENERGY_H
#define MIRAGE_ANALOG_CONVERTER_ENERGY_H

/**
 * @file
 * Data-converter energy/power/area models (paper Fig. 1b and Sec. V-B2).
 *
 * The per-conversion energy follows Murmann's two-regime survey model:
 * technology-limited (~2x per added bit) at low precision and
 * noise/SNR-limited (~4x per added bit) at high precision. The model is
 * anchored on the paper's two reference designs:
 *   - 6-bit 24 GS/s ADC at 23 mW  (Xu et al.)   -> 0.958 pJ/conversion
 *   - bADC = 16 costs about 1 nJ/conversion      (Sec. II-C)
 * and the convention that DAC conversions cost about two orders of magnitude
 * less than ADC conversions (Fig. 1b).
 */

namespace mirage {
namespace analog {

/** ADC energy per conversion [J] for a given bit precision. */
double adcEnergyPerConversion(int bits);

/** DAC energy per conversion [J] for a given bit precision. */
double dacEnergyPerConversion(int bits);

/**
 * A concrete converter operating point (paper Sec. V-B2 constants) with
 * Murmann-rule scaling to nearby bit widths.
 */
struct ConverterSpec
{
    int bits = 6;
    double sample_rate_hz = 0.0;
    double power_w = 0.0;
    double area_mm2 = 0.0;

    /** Energy per conversion at the nominal operating point [J]. */
    double energyPerConversion() const { return power_w / sample_rate_hz; }

    /**
     * Returns a spec rescaled to `new_bits` using the technology-limited
     * rule (2x energy per added bit; paper: "scale the energy consumption
     * down by 1 bit"). Area is scaled with the same factor.
     */
    ConverterSpec scaledToBits(int new_bits) const;
};

/** The 6-bit 24 GS/s ADC used by Mirage (Xu et al. [66]). */
ConverterSpec mirageAdc6();

/** The 6-bit 20 GS/s DAC used by Mirage (Kim et al. [32]). */
ConverterSpec mirageDac6();

/** The 8-bit 18 GS/s DAC discussed in Sec. VI-E (Nazemi et al. [41]). */
ConverterSpec mirageDac8();

} // namespace analog
} // namespace mirage

#endif // MIRAGE_ANALOG_CONVERTER_ENERGY_H
