#ifndef MIRAGE_ANALOG_NOISE_H
#define MIRAGE_ANALOG_NOISE_H

/**
 * @file
 * Analog noise models (paper Sec. II-E2, Eqs. (6)-(7)): photodetector shot
 * noise and TIA thermal noise, plus the inverse problem Mirage's power model
 * solves — the minimum photocurrent (and hence laser power) that reaches a
 * target SNR at a given detection bandwidth.
 */

namespace mirage {
namespace analog {

/** Receiver parameters shared by the noise calculations. */
struct ReceiverSpec
{
    double bandwidth_hz = 10e9;      ///< Detection bandwidth (photonic clock).
    double temperature_k = 300.0;    ///< TIA temperature.
    double tia_feedback_ohm = 1.0e3; ///< TIA feedback resistor R.
    double responsivity_a_per_w = 1.1; ///< Photodetector responsivity.
};

/** Shot-noise current sigma [A]: sqrt(2 q I_D df) (Eq. 6). */
double shotNoiseSigma(double photocurrent_a, double bandwidth_hz);

/** Thermal-noise current sigma [A]: sqrt(4 kB T df / R) (Eq. 7). */
double thermalNoiseSigma(double temperature_k, double feedback_ohm,
                         double bandwidth_hz);

/** Combined noise sigma [A] at a given photocurrent. */
double totalNoiseSigma(double photocurrent_a, const ReceiverSpec &rx);

/** Amplitude SNR = I / sigma_total(I) at a given photocurrent. */
double snrAtPhotocurrent(double photocurrent_a, const ReceiverSpec &rx);

/**
 * Minimum photocurrent [A] with I / sigma_total(I) >= target_snr
 * (closed-form solution of the resulting quadratic).
 */
double requiredPhotocurrent(double target_snr, const ReceiverSpec &rx);

/** Optical power [W] on the detector for a given photocurrent. */
double opticalPowerForCurrent(double photocurrent_a, const ReceiverSpec &rx);

} // namespace analog
} // namespace mirage

#endif // MIRAGE_ANALOG_NOISE_H
