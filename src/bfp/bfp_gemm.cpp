#include "bfp/bfp_gemm.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/simd.h"
#include "obs/fidelity.h"
#include "rns/conversion.h"
#include "rns/modular_gemm.h"
#include "runtime/thread_pool.h"

namespace mirage {
namespace bfp {

namespace {

/// Rows per parallelFor block. Fixed (never derived from the thread count)
/// so the block decomposition — and with it every per-row Rng substream —
/// is identical at every thread count. (Rng substreams are per-row, so the
/// runtime::serialBelow small-workload collapse never changes results.)
constexpr int64_t kEncodeGrain = 8;
constexpr int64_t kComputeGrain = 4;
/// Serial-below cutoffs. Encoding costs tens of cycles per element and the
/// compute loop a few per MAC; below these counts the work finishes faster
/// than the workers wake. (They were 4096/16384 — low enough that tiny
/// layers paid dispatch overhead for microseconds of work, a measurable
/// part of the historical multi-thread slowdown.)
constexpr int64_t kMinEncodeWork = 16384;
constexpr int64_t kMinComputeWork = 65536;

/// Output-column tile of the compute loop: keeps the streamed B residue
/// panel L1/L2-resident for large n. Tiling never reorders the per-element
/// chunk accumulation, so results are unaffected.
constexpr int kColTile = 64;

} // namespace

BfpMatrix
encodeRows(const std::vector<float> &a, int m_rows, int k_depth,
           const BfpConfig &cfg, Rng *rng)
{
    MIRAGE_ASSERT(a.size() == static_cast<size_t>(m_rows) * k_depth,
                  "matrix shape mismatch");
    BfpMatrix out;
    out.rows = m_rows;
    out.g = cfg.g;
    out.chunk_count = static_cast<int>(ceilDiv(k_depth, cfg.g));
    out.blocks.resize(static_cast<size_t>(m_rows) * out.chunk_count);
    // Stochastic rounding draws from a per-row substream (split of one base
    // value drawn from the caller's rng), so encoding stays bit-identical
    // for every thread count and deterministic rounding never consumes rng.
    const bool stochastic =
        rng != nullptr && cfg.rounding == Rounding::Stochastic;
    const uint64_t base = stochastic ? rng->nextU64() : 0;
    runtime::parallelFor(
        m_rows,
        runtime::serialBelow(m_rows, kEncodeGrain,
                             static_cast<int64_t>(m_rows) * k_depth,
                             kMinEncodeWork),
        [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
            std::optional<Rng> row_rng;
            if (stochastic)
                row_rng.emplace(Rng::stream(base, static_cast<uint64_t>(i)));
            Rng *row_rng_p = row_rng ? &*row_rng : nullptr;
            for (int c = 0; c < out.chunk_count; ++c) {
                const int start = c * cfg.g;
                const int len = std::min(cfg.g, k_depth - start);
                std::span<const float> group(
                    &a[static_cast<size_t>(i) * k_depth + start],
                    static_cast<size_t>(len));
                out.blocks[static_cast<size_t>(i) * out.chunk_count + c] =
                    encodeBlock(group, cfg, row_rng_p);
            }
        }
    });
    return out;
}

BfpMatrix
encodeCols(const std::vector<float> &b, int k_depth, int n_cols,
           const BfpConfig &cfg, Rng *rng)
{
    MIRAGE_ASSERT(b.size() == static_cast<size_t>(k_depth) * n_cols,
                  "matrix shape mismatch");
    BfpMatrix out;
    out.rows = n_cols;
    out.g = cfg.g;
    out.chunk_count = static_cast<int>(ceilDiv(k_depth, cfg.g));
    out.blocks.resize(static_cast<size_t>(n_cols) * out.chunk_count);
    const bool stochastic =
        rng != nullptr && cfg.rounding == Rounding::Stochastic;
    const uint64_t base = stochastic ? rng->nextU64() : 0;
    runtime::parallelFor(
        n_cols,
        runtime::serialBelow(n_cols, kEncodeGrain,
                             static_cast<int64_t>(k_depth) * n_cols,
                             kMinEncodeWork),
        [&](int64_t j0, int64_t j1) {
        std::vector<float> group_buf(static_cast<size_t>(cfg.g));
        for (int64_t j = j0; j < j1; ++j) {
            std::optional<Rng> col_rng;
            if (stochastic)
                col_rng.emplace(Rng::stream(base, static_cast<uint64_t>(j)));
            Rng *col_rng_p = col_rng ? &*col_rng : nullptr;
            for (int c = 0; c < out.chunk_count; ++c) {
                const int start = c * cfg.g;
                const int len = std::min(cfg.g, k_depth - start);
                for (int t = 0; t < len; ++t)
                    group_buf[static_cast<size_t>(t)] =
                        b[static_cast<size_t>(start + t) * n_cols + j];
                std::span<const float> group(group_buf.data(),
                                             static_cast<size_t>(len));
                out.blocks[static_cast<size_t>(j) * out.chunk_count + c] =
                    encodeBlock(group, cfg, col_rng_p);
            }
        }
    });
    return out;
}

BfpPackedMatrix
encodeRowsPacked(std::span<const float> a, int m_rows, int k_depth,
                 const BfpConfig &cfg, Workspace &ws, Rng *rng)
{
    MIRAGE_ASSERT(a.size() == static_cast<size_t>(m_rows) * k_depth,
                  "matrix shape mismatch");
    BfpPackedMatrix out;
    out.rows = m_rows;
    out.g = cfg.g;
    out.chunk_count = static_cast<int>(ceilDiv(k_depth, cfg.g));
    const size_t blocks = static_cast<size_t>(m_rows) * out.chunk_count;
    out.mantissas = ws.zeroed<int32_t>(blocks * cfg.g);
    out.exponents = ws.alloc<int32_t>(blocks);
    const bool stochastic =
        rng != nullptr && cfg.rounding == Rounding::Stochastic;
    const uint64_t base = stochastic ? rng->nextU64() : 0;
    runtime::parallelFor(
        m_rows,
        runtime::serialBelow(m_rows, kEncodeGrain,
                             static_cast<int64_t>(m_rows) * k_depth,
                             kMinEncodeWork),
        [&](int64_t r0, int64_t r1) {
            for (int64_t i = r0; i < r1; ++i) {
                std::optional<Rng> row_rng;
                if (stochastic)
                    row_rng.emplace(
                        Rng::stream(base, static_cast<uint64_t>(i)));
                Rng *row_rng_p = row_rng ? &*row_rng : nullptr;
                for (int c = 0; c < out.chunk_count; ++c) {
                    const int start = c * cfg.g;
                    const int len = std::min(cfg.g, k_depth - start);
                    const size_t blk =
                        static_cast<size_t>(i) * out.chunk_count + c;
                    out.exponents[blk] = encodeGroupInto(
                        a.subspan(static_cast<size_t>(i) * k_depth + start,
                                  static_cast<size_t>(len)),
                        cfg,
                        out.mantissas.subspan(blk * cfg.g,
                                              static_cast<size_t>(len)),
                        row_rng_p);
                }
            }
        });
    return out;
}

BfpPackedMatrix
encodeColsPacked(std::span<const float> b, int k_depth, int n_cols,
                 const BfpConfig &cfg, Workspace &ws, Rng *rng)
{
    MIRAGE_ASSERT(b.size() == static_cast<size_t>(k_depth) * n_cols,
                  "matrix shape mismatch");
    BfpPackedMatrix out;
    out.rows = n_cols;
    out.g = cfg.g;
    out.chunk_count = static_cast<int>(ceilDiv(k_depth, cfg.g));
    const size_t blocks = static_cast<size_t>(n_cols) * out.chunk_count;
    out.mantissas = ws.zeroed<int32_t>(blocks * cfg.g);
    out.exponents = ws.alloc<int32_t>(blocks);
    const bool stochastic =
        rng != nullptr && cfg.rounding == Rounding::Stochastic;
    const uint64_t base = stochastic ? rng->nextU64() : 0;
    runtime::parallelFor(
        n_cols,
        runtime::serialBelow(n_cols, kEncodeGrain,
                             static_cast<int64_t>(k_depth) * n_cols,
                             kMinEncodeWork),
        [&](int64_t j0, int64_t j1) {
            Workspace &tws = threadWorkspace();
            Workspace::Scope tscope(tws);
            std::span<float> group_buf =
                tws.alloc<float>(static_cast<size_t>(cfg.g));
            for (int64_t j = j0; j < j1; ++j) {
                std::optional<Rng> col_rng;
                if (stochastic)
                    col_rng.emplace(
                        Rng::stream(base, static_cast<uint64_t>(j)));
                Rng *col_rng_p = col_rng ? &*col_rng : nullptr;
                for (int c = 0; c < out.chunk_count; ++c) {
                    const int start = c * cfg.g;
                    const int len = std::min(cfg.g, k_depth - start);
                    for (int t = 0; t < len; ++t)
                        group_buf[static_cast<size_t>(t)] =
                            b[static_cast<size_t>(start + t) * n_cols + j];
                    const size_t blk =
                        static_cast<size_t>(j) * out.chunk_count + c;
                    out.exponents[blk] = encodeGroupInto(
                        std::span<const float>(group_buf.data(),
                                               static_cast<size_t>(len)),
                        cfg,
                        out.mantissas.subspan(blk * cfg.g,
                                              static_cast<size_t>(len)),
                        col_rng_p);
                }
            }
        });
    return out;
}

namespace {

/**
 * True when every chunk dot over this set can accumulate raw 64-bit
 * products without overflow (the modularDot small-path bound).
 */
bool
rawAccumulationSafe(const rns::ModuliSet &set, int g)
{
    if (g >= (1 << 22))
        return false;
    for (size_t i = 0; i < set.count(); ++i)
        if (set.modulus(i) >= (uint64_t{1} << 21))
            return false;
    return true;
}

/**
 * Forward-converts a packed mantissa plane to per-modulus residue planes
 * (uint32, layout identical to the mantissa plane). Doing this once per
 * matrix instead of once per (i, j, chunk) triple is the key win: the old
 * path re-reduced every A-row chunk n_cols times.
 */
std::span<uint32_t>
residuePlanes(const BfpPackedMatrix &m, const rns::ModuliSet &set,
              Workspace &ws)
{
    const size_t plane =
        static_cast<size_t>(m.rows) * m.chunk_count * m.g;
    std::span<uint32_t> planes = ws.alloc<uint32_t>(set.count() * plane);
    runtime::parallelFor(
        m.rows,
        runtime::serialBelow(m.rows, kEncodeGrain,
                             static_cast<int64_t>(set.count()) * plane,
                             kMinEncodeWork),
        [&](int64_t r0, int64_t r1) {
            const size_t row_elems =
                static_cast<size_t>(m.chunk_count) * m.g;
            for (size_t mi = 0; mi < set.count(); ++mi) {
                const uint64_t mod = set.modulus(mi);
                uint32_t *dst = &planes[mi * plane];
                for (int64_t r = r0; r < r1; ++r)
                    for (size_t e = 0; e < row_elems; ++e) {
                        const size_t idx =
                            static_cast<size_t>(r) * row_elems + e;
                        dst[idx] = static_cast<uint32_t>(
                            rns::reduceSigned(m.mantissas[idx], mod));
                    }
            }
        });
    return planes;
}

} // namespace

void
bfpGemm(std::span<const float> a, std::span<const float> b,
        std::span<float> c, int m_rows, int k_depth, int n_cols,
        const BfpConfig &cfg, const rns::RnsCodec *codec, Rng *rng)
{
    cfg.validate();
    MIRAGE_ASSERT(c.size() == static_cast<size_t>(m_rows) * n_cols,
                  "C shape mismatch");
    if (codec && !codec->set().canHoldDotProduct(cfg.bm, cfg.g)) {
        MIRAGE_FATAL("moduli set (log2 M = ",
                     codec->set().log2DynamicRange(),
                     ") cannot hold BFP dot products of bm=", cfg.bm,
                     " g=", cfg.g, " (Eq. 13)");
    }

    // Encodings and residue planes live in the caller's arena for the
    // duration of this GEMM; the rng base draws happen in the same order
    // (rows, then cols) as the legacy BfpMatrix path, so stochastic
    // rounding is bit-identical to it.
    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);
    const BfpPackedMatrix a_enc =
        encodeRowsPacked(a, m_rows, k_depth, cfg, ws, rng);
    const BfpPackedMatrix b_enc =
        encodeColsPacked(b, k_depth, n_cols, cfg, ws, rng);

    const int chunks = a_enc.chunk_count;
    const int g = cfg.g;
    const int bm = cfg.bm;

    // With a codec, forward-convert both packed planes once up front; every
    // chunk dot then runs over small cache-resident uint32 residues.
    const bool raw_safe = codec && rawAccumulationSafe(codec->set(), g);
    std::span<uint32_t> a_planes, b_planes;
    if (raw_safe) {
        // Every chunk dot raw-accumulates g products per modulus; one
        // overflow-margin observation per (GEMM, modulus) covers them all.
        for (size_t mi = 0; mi < codec->set().count(); ++mi)
            obs::fidelity::recordRnsMargin(codec->set().modulus(mi), g);
        a_planes = residuePlanes(a_enc, codec->set(), ws);
        b_planes = residuePlanes(b_enc, codec->set(), ws);
    } else if (codec) {
        obs::fidelity::noteRnsReducedFallback();
    }
    const size_t a_plane_sz = static_cast<size_t>(m_rows) * chunks * g;
    const size_t b_plane_sz = static_cast<size_t>(n_cols) * chunks * g;

    // Output rows are independent and rng-free; the per-element chunk
    // accumulation order below is unchanged, so the parallel result is
    // bit-identical to serial execution (and to the legacy block path).
    runtime::parallelFor(
        m_rows,
        runtime::serialBelow(m_rows, kComputeGrain,
                             static_cast<int64_t>(m_rows) * k_depth * n_cols,
                             kMinComputeWork),
        [&](int64_t i0, int64_t i1) {
        Workspace &tws = threadWorkspace();
        Workspace::Scope tscope(tws);
        const size_t n_moduli = codec ? codec->set().count() : 0;
        std::span<rns::Residue> digits = tws.alloc<rns::Residue>(n_moduli);
        for (int jt0 = 0; jt0 < n_cols; jt0 += kColTile) {
            const int jt1 = std::min(jt0 + kColTile, n_cols);
            for (int64_t i = i0; i < i1; ++i) {
                for (int j = jt0; j < jt1; ++j) {
                    float acc = 0.0f; // FP32 partial-output accumulation
                    for (int ch = 0; ch < chunks; ++ch) {
                        const size_t a_off =
                            (static_cast<size_t>(i) * chunks + ch) *
                            static_cast<size_t>(g);
                        const size_t b_off =
                            (static_cast<size_t>(j) * chunks + ch) *
                            static_cast<size_t>(g);
                        int64_t isum;
                        if (raw_safe) {
                            for (size_t mi = 0; mi < n_moduli; ++mi) {
                                const uint32_t *ra =
                                    &a_planes[mi * a_plane_sz + a_off];
                                const uint32_t *rb =
                                    &b_planes[mi * b_plane_sz + b_off];
                                // Exact u32xu32->u64 dot (residues < 2^21,
                                // g < 2^22 — rawAccumulationSafe); the simd
                                // kernel sums the same uint64 terms.
                                digits[mi] = simd::dotU32U64(ra, rb, g) %
                                             codec->set().modulus(mi);
                            }
                            isum = codec->decode(digits);
                        } else if (codec) {
                            // Oversized moduli: fully reduced dot per
                            // modulus straight off the mantissas.
                            const rns::ModuliSet &set = codec->set();
                            for (size_t mi = 0; mi < n_moduli; ++mi) {
                                const uint64_t mod = set.modulus(mi);
                                rns::Residue sum = 0;
                                for (int t = 0; t < g; ++t)
                                    sum = rns::addMod(
                                        sum,
                                        rns::mulMod(
                                            rns::reduceSigned(
                                                a_enc.mantissas[a_off + t],
                                                mod),
                                            rns::reduceSigned(
                                                b_enc.mantissas[b_off + t],
                                                mod),
                                            mod),
                                        mod);
                                digits[mi] = sum;
                            }
                            isum = codec->decode(digits);
                        } else {
                            // Exact i32xi32->i64 dot; mantissas are <= bm
                            // bits so the accumulation cannot overflow.
                            isum = simd::dotI32I64(&a_enc.mantissas[a_off],
                                                   &b_enc.mantissas[b_off],
                                                   g);
                        }
                        acc += static_cast<float>(std::ldexp(
                            static_cast<double>(isum),
                            a_enc.exponent(static_cast<int>(i), ch) +
                                b_enc.exponent(j, ch) - 2 * bm));
                    }
                    c[static_cast<size_t>(i) * n_cols + j] = acc;
                }
            }
        }
    });
}

void
bfpGemm(std::span<const float> a, std::span<const float> b,
        std::span<float> c, int m_rows, int k_depth, int n_cols,
        const BfpGemmOptions &opts)
{
    bfpGemm(a, b, c, m_rows, k_depth, n_cols, opts.config,
            opts.moduli ? &rns::cachedCodec(*opts.moduli) : nullptr,
            opts.rng);
}

std::vector<float>
bfpGemm(const std::vector<float> &a, const std::vector<float> &b,
        int m_rows, int k_depth, int n_cols, const BfpGemmOptions &opts)
{
    std::vector<float> c(static_cast<size_t>(m_rows) * n_cols);
    bfpGemm(std::span<const float>(a), std::span<const float>(b),
            std::span<float>(c), m_rows, k_depth, n_cols, opts);
    return c;
}

} // namespace bfp
} // namespace mirage
