#include "bfp/bfp_gemm.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "rns/conversion.h"
#include "rns/modular_gemm.h"
#include "runtime/thread_pool.h"

namespace mirage {
namespace bfp {

namespace {

/// Rows per parallelFor block. Fixed (never derived from the thread count)
/// so the block decomposition — and with it every per-row Rng substream —
/// is identical at every thread count. (Rng substreams are per-row, so the
/// runtime::serialBelow small-workload collapse never changes results.)
constexpr int64_t kEncodeGrain = 8;
constexpr int64_t kComputeGrain = 2;
constexpr int64_t kMinEncodeWork = 4096;
constexpr int64_t kMinComputeWork = 16384;

} // namespace

BfpMatrix
encodeRows(const std::vector<float> &a, int m_rows, int k_depth,
           const BfpConfig &cfg, Rng *rng)
{
    MIRAGE_ASSERT(a.size() == static_cast<size_t>(m_rows) * k_depth,
                  "matrix shape mismatch");
    BfpMatrix out;
    out.rows = m_rows;
    out.g = cfg.g;
    out.chunk_count = static_cast<int>(ceilDiv(k_depth, cfg.g));
    out.blocks.resize(static_cast<size_t>(m_rows) * out.chunk_count);
    // Stochastic rounding draws from a per-row substream (split of one base
    // value drawn from the caller's rng), so encoding stays bit-identical
    // for every thread count and deterministic rounding never consumes rng.
    const bool stochastic =
        rng != nullptr && cfg.rounding == Rounding::Stochastic;
    const uint64_t base = stochastic ? rng->nextU64() : 0;
    runtime::parallelFor(
        m_rows,
        runtime::serialBelow(m_rows, kEncodeGrain,
                             static_cast<int64_t>(m_rows) * k_depth,
                             kMinEncodeWork),
        [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
            std::optional<Rng> row_rng;
            if (stochastic)
                row_rng.emplace(Rng::stream(base, static_cast<uint64_t>(i)));
            Rng *row_rng_p = row_rng ? &*row_rng : nullptr;
            for (int c = 0; c < out.chunk_count; ++c) {
                const int start = c * cfg.g;
                const int len = std::min(cfg.g, k_depth - start);
                std::span<const float> group(
                    &a[static_cast<size_t>(i) * k_depth + start],
                    static_cast<size_t>(len));
                out.blocks[static_cast<size_t>(i) * out.chunk_count + c] =
                    encodeBlock(group, cfg, row_rng_p);
            }
        }
    });
    return out;
}

BfpMatrix
encodeCols(const std::vector<float> &b, int k_depth, int n_cols,
           const BfpConfig &cfg, Rng *rng)
{
    MIRAGE_ASSERT(b.size() == static_cast<size_t>(k_depth) * n_cols,
                  "matrix shape mismatch");
    BfpMatrix out;
    out.rows = n_cols;
    out.g = cfg.g;
    out.chunk_count = static_cast<int>(ceilDiv(k_depth, cfg.g));
    out.blocks.resize(static_cast<size_t>(n_cols) * out.chunk_count);
    const bool stochastic =
        rng != nullptr && cfg.rounding == Rounding::Stochastic;
    const uint64_t base = stochastic ? rng->nextU64() : 0;
    runtime::parallelFor(
        n_cols,
        runtime::serialBelow(n_cols, kEncodeGrain,
                             static_cast<int64_t>(k_depth) * n_cols,
                             kMinEncodeWork),
        [&](int64_t j0, int64_t j1) {
        std::vector<float> group_buf(static_cast<size_t>(cfg.g));
        for (int64_t j = j0; j < j1; ++j) {
            std::optional<Rng> col_rng;
            if (stochastic)
                col_rng.emplace(Rng::stream(base, static_cast<uint64_t>(j)));
            Rng *col_rng_p = col_rng ? &*col_rng : nullptr;
            for (int c = 0; c < out.chunk_count; ++c) {
                const int start = c * cfg.g;
                const int len = std::min(cfg.g, k_depth - start);
                for (int t = 0; t < len; ++t)
                    group_buf[static_cast<size_t>(t)] =
                        b[static_cast<size_t>(start + t) * n_cols + j];
                std::span<const float> group(group_buf.data(),
                                             static_cast<size_t>(len));
                out.blocks[static_cast<size_t>(j) * out.chunk_count + c] =
                    encodeBlock(group, cfg, col_rng_p);
            }
        }
    });
    return out;
}

namespace {

/**
 * Chunk dot product through the RNS domain: forward-convert both mantissa
 * vectors, modular-MAC per modulus, reverse-convert. Numerically exact as
 * long as Eq. (13) holds (checked at configuration time).
 */
int64_t
rnsChunkDot(const BfpBlock &a, const BfpBlock &b, const rns::RnsCodec &codec)
{
    const rns::ModuliSet &set = codec.set();
    rns::ResidueVector acc(set.count(), 0);
    for (size_t mi = 0; mi < set.count(); ++mi) {
        const uint64_t m = set.modulus(mi);
        uint64_t sum = 0;
        for (size_t t = 0; t < a.mantissas.size(); ++t) {
            const uint64_t ra = rns::reduceSigned(a.mantissas[t], m);
            const uint64_t rb = rns::reduceSigned(b.mantissas[t], m);
            sum += ra * rb; // m < 2^21 and g <= 2^20: exact in 64 bits
        }
        acc[mi] = sum % m;
    }
    return codec.decode(acc);
}

} // namespace

std::vector<float>
bfpGemm(const std::vector<float> &a, const std::vector<float> &b,
        int m_rows, int k_depth, int n_cols, const BfpGemmOptions &opts)
{
    opts.config.validate();
    if (opts.moduli &&
        !opts.moduli->canHoldDotProduct(opts.config.bm, opts.config.g)) {
        MIRAGE_FATAL("moduli set (log2 M = ",
                     opts.moduli->log2DynamicRange(),
                     ") cannot hold BFP dot products of bm=", opts.config.bm,
                     " g=", opts.config.g, " (Eq. 13)");
    }

    const BfpMatrix a_enc = encodeRows(a, m_rows, k_depth, opts.config, opts.rng);
    const BfpMatrix b_enc = encodeCols(b, k_depth, n_cols, opts.config, opts.rng);

    std::optional<rns::RnsCodec> codec;
    if (opts.moduli)
        codec.emplace(*opts.moduli);

    const int chunks = a_enc.chunk_count;
    const int bm = opts.config.bm;
    std::vector<float> c(static_cast<size_t>(m_rows) * n_cols, 0.0f);
    // Output rows are independent and rng-free; the per-element chunk
    // accumulation order below is unchanged, so the parallel result is
    // bit-identical to serial execution.
    runtime::parallelFor(
        m_rows,
        runtime::serialBelow(m_rows, kComputeGrain,
                             static_cast<int64_t>(m_rows) * k_depth * n_cols,
                             kMinComputeWork),
        [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            for (int j = 0; j < n_cols; ++j) {
                float acc = 0.0f; // FP32 partial-output accumulation (step 9)
                for (int ch = 0; ch < chunks; ++ch) {
                    const BfpBlock &blk_a =
                        a_enc.blocks[static_cast<size_t>(i) * chunks + ch];
                    const BfpBlock &blk_b =
                        b_enc.blocks[static_cast<size_t>(j) * chunks + ch];
                    int64_t isum;
                    if (codec) {
                        isum = rnsChunkDot(blk_a, blk_b, *codec);
                    } else {
                        isum = blockDot(blk_a, blk_b, bm).integer_sum;
                    }
                    acc += static_cast<float>(
                        std::ldexp(static_cast<double>(isum),
                                   blk_a.exponent + blk_b.exponent - 2 * bm));
                }
                c[static_cast<size_t>(i) * n_cols + j] = acc;
            }
        }
    });
    return c;
}

} // namespace bfp
} // namespace mirage
