#ifndef MIRAGE_BFP_BFP_H
#define MIRAGE_BFP_BFP_H

/**
 * @file
 * Block Floating Point (BFP) encoding (paper Sec. II-B, III step 2).
 *
 * A group of g values shares one exponent (the maximum element exponent);
 * each element keeps a (bm+1)-bit signed integer mantissa aligned to that
 * exponent. Groups can then be multiplied with pure integer arithmetic —
 * which is what the RNS/photonic datapath executes — while the shared
 * exponent preserves dynamic range.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace mirage {
namespace bfp {

/** Mantissa rounding mode applied during BFP encoding. */
enum class Rounding
{
    Truncate,   ///< Drop LSBs (the paper's hardware behaviour, Sec. III).
    Nearest,    ///< Round half away from zero.
    Stochastic, ///< Probabilistic rounding (used by the FMAC baseline).
};

/** Name of a rounding mode, for reports. */
const char *toString(Rounding r);

/** BFP format parameters. */
struct BfpConfig
{
    int bm = 4;                            ///< Mantissa bits (excluding sign).
    int g = 16;                            ///< Group size.
    Rounding rounding = Rounding::Truncate;

    /** Fatal when parameters are outside the supported envelope. */
    void validate() const;

    /** Signed-integer dot-product bit width per Eq. (13): 2(bm+1)+log2(g)-1. */
    int dotProductBits() const;
};

/**
 * One encoded group: value_i ~= mantissa_i * 2^(exponent - bm).
 * Mantissas are held reduced to [-(2^bm - 1), 2^bm - 1].
 */
struct BfpBlock
{
    std::vector<int32_t> mantissas;
    int exponent = 0;

    /** Decodes element i back to a float. */
    float decode(size_t i, int bm) const;
};

/**
 * Encodes a group of floats into a BfpBlock.
 *
 * @param values   the group (any length <= cfg.g; shorter tail groups are
 *                 allowed at matrix edges).
 * @param cfg      format parameters.
 * @param rng      required for Rounding::Stochastic; may be null otherwise.
 */
BfpBlock encodeBlock(std::span<const float> values, const BfpConfig &cfg,
                     Rng *rng = nullptr);

/**
 * Allocation-free core of encodeBlock: writes values.size() mantissas into
 * `mantissas` (first values.size() elements; the caller owns any padding)
 * and returns the shared exponent. Bit-identical to encodeBlock.
 */
int encodeGroupInto(std::span<const float> values, const BfpConfig &cfg,
                    std::span<int32_t> mantissas, Rng *rng = nullptr);

/** Decodes a whole block back to floats (the "fake quantization" view). */
std::vector<float> decodeBlock(const BfpBlock &block, const BfpConfig &cfg);

/**
 * Quantizes values in place to their nearest BFP-representable value
 * (encode followed by decode). Used by accuracy experiments that only need
 * value-level emulation.
 */
void fakeQuantize(std::span<float> values, const BfpConfig &cfg,
                  Rng *rng = nullptr);

/**
 * Exact integer dot product of two blocks scaled back to real units:
 * result = (sum_i qa_i * qb_i) * 2^(ea + eb - 2 bm).
 * The integer sum is also returned so the RNS path can be cross-checked.
 */
struct BlockDotResult
{
    int64_t integer_sum = 0; ///< Exact signed mantissa dot product.
    double value = 0.0;      ///< integer_sum scaled by the shared exponents.
};

/** Computes the exact block dot product; blocks must have equal length. */
BlockDotResult blockDot(const BfpBlock &a, const BfpBlock &b, int bm);

} // namespace bfp
} // namespace mirage

#endif // MIRAGE_BFP_BFP_H
