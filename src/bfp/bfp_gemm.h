#ifndef MIRAGE_BFP_BFP_GEMM_H
#define MIRAGE_BFP_BFP_GEMM_H

/**
 * @file
 * BFP GEMM with the paper's grouping semantics (Sec. III): groups run along
 * the contraction (K) dimension — the input vector chunk and the matching
 * weight-row chunk each form one group — integer chunk dot products are
 * exact, and cross-chunk accumulation happens in FP32 (dataflow step 9).
 *
 * Optionally, every integer chunk dot product is routed through an RNS
 * engine over a moduli set; with Eq. (13) satisfied this is numerically
 * transparent, which is exactly Mirage's claim.
 */

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bfp/bfp.h"
#include "common/workspace.h"
#include "rns/conversion.h"
#include "rns/moduli_set.h"

namespace mirage {
namespace bfp {

/** Execution options for bfpGemm. */
struct BfpGemmOptions
{
    BfpConfig config;
    /// When set, each chunk dot product is computed in the RNS domain over
    /// this moduli set (forward conversion, modular MACs, CRT reverse).
    std::optional<rns::ModuliSet> moduli;
    /// RNG used only for stochastic rounding.
    Rng *rng = nullptr;
};

/**
 * C = A * B where A is MxK and B is KxN, all row-major FP32.
 * A's rows and B's columns are BFP-grouped along K in chunks of cfg.g.
 *
 * The span overload writes into caller-provided storage (size m*n) and
 * stages every temporary — packed encodings, per-modulus residue planes,
 * CRT digits — in Workspace arenas, so warm steady-state calls perform no
 * heap allocation. The vector overload is a thin allocating wrapper;
 * results are bit-identical between the two.
 */
void bfpGemm(std::span<const float> a, std::span<const float> b,
             std::span<float> c, int m_rows, int k_depth, int n_cols,
             const BfpGemmOptions &opts);

std::vector<float> bfpGemm(const std::vector<float> &a,
                           const std::vector<float> &b,
                           int m_rows, int k_depth, int n_cols,
                           const BfpGemmOptions &opts);

/**
 * Core kernel behind both overloads: a non-null `codec` routes every chunk
 * dot product through the RNS domain. Callers that execute many GEMMs over
 * one moduli set pass a cached codec (rns::cachedCodec) so per-call setup
 * allocates nothing.
 */
void bfpGemm(std::span<const float> a, std::span<const float> b,
             std::span<float> c, int m_rows, int k_depth, int n_cols,
             const BfpConfig &cfg, const rns::RnsCodec *codec,
             Rng *rng = nullptr);

/**
 * Pre-encoded BFP view of a matrix: rows (or columns) cut into K-chunks.
 * Exposed so the photonic functional model can consume the same encoding.
 */
struct BfpMatrix
{
    int rows = 0;
    int chunk_count = 0;
    int g = 0;
    /// blocks[row * chunk_count + chunk]
    std::vector<BfpBlock> blocks;
};

/** Encodes matrix rows (MxK, row-major) into K-chunk groups. */
BfpMatrix encodeRows(const std::vector<float> &a, int m_rows, int k_depth,
                     const BfpConfig &cfg, Rng *rng = nullptr);

/** Encodes matrix columns (KxN, row-major) into K-chunk groups. */
BfpMatrix encodeCols(const std::vector<float> &b, int k_depth, int n_cols,
                     const BfpConfig &cfg, Rng *rng = nullptr);

/**
 * Flat, workspace-backed BFP encoding: mantissas stored [row][chunk][g]
 * with zero-padded tails (padding contributes nothing to integer dots) and
 * one exponent per (row, chunk). This is the hot-path representation — one
 * arena allocation instead of one heap vector per block — and it encodes
 * bit-identically to the BfpBlock form (same per-row Rng substreams).
 */
struct BfpPackedMatrix
{
    int rows = 0;
    int chunk_count = 0;
    int g = 0;
    std::span<int32_t> mantissas; ///< rows * chunk_count * g, zero-padded.
    std::span<int32_t> exponents; ///< rows * chunk_count.

    /** Mantissa group of (row, chunk): g elements. */
    const int32_t *
    chunk(int row, int c) const
    {
        return &mantissas[(static_cast<size_t>(row) * chunk_count + c) * g];
    }

    /** Shared exponent of (row, chunk). */
    int
    exponent(int row, int c) const
    {
        return exponents[static_cast<size_t>(row) * chunk_count + c];
    }
};

/** Packed encodeRows: scratch comes from (and stays valid inside) `ws`. */
BfpPackedMatrix encodeRowsPacked(std::span<const float> a, int m_rows,
                                 int k_depth, const BfpConfig &cfg,
                                 Workspace &ws, Rng *rng = nullptr);

/** Packed encodeCols: scratch comes from (and stays valid inside) `ws`. */
BfpPackedMatrix encodeColsPacked(std::span<const float> b, int k_depth,
                                 int n_cols, const BfpConfig &cfg,
                                 Workspace &ws, Rng *rng = nullptr);

} // namespace bfp
} // namespace mirage

#endif // MIRAGE_BFP_BFP_GEMM_H
