#ifndef MIRAGE_BFP_BFP_GEMM_H
#define MIRAGE_BFP_BFP_GEMM_H

/**
 * @file
 * BFP GEMM with the paper's grouping semantics (Sec. III): groups run along
 * the contraction (K) dimension — the input vector chunk and the matching
 * weight-row chunk each form one group — integer chunk dot products are
 * exact, and cross-chunk accumulation happens in FP32 (dataflow step 9).
 *
 * Optionally, every integer chunk dot product is routed through an RNS
 * engine over a moduli set; with Eq. (13) satisfied this is numerically
 * transparent, which is exactly Mirage's claim.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "bfp/bfp.h"
#include "rns/moduli_set.h"

namespace mirage {
namespace bfp {

/** Execution options for bfpGemm. */
struct BfpGemmOptions
{
    BfpConfig config;
    /// When set, each chunk dot product is computed in the RNS domain over
    /// this moduli set (forward conversion, modular MACs, CRT reverse).
    std::optional<rns::ModuliSet> moduli;
    /// RNG used only for stochastic rounding.
    Rng *rng = nullptr;
};

/**
 * C = A * B where A is MxK and B is KxN, all row-major FP32.
 * A's rows and B's columns are BFP-grouped along K in chunks of cfg.g.
 */
std::vector<float> bfpGemm(const std::vector<float> &a,
                           const std::vector<float> &b,
                           int m_rows, int k_depth, int n_cols,
                           const BfpGemmOptions &opts);

/**
 * Pre-encoded BFP view of a matrix: rows (or columns) cut into K-chunks.
 * Exposed so the photonic functional model can consume the same encoding.
 */
struct BfpMatrix
{
    int rows = 0;
    int chunk_count = 0;
    int g = 0;
    /// blocks[row * chunk_count + chunk]
    std::vector<BfpBlock> blocks;
};

/** Encodes matrix rows (MxK, row-major) into K-chunk groups. */
BfpMatrix encodeRows(const std::vector<float> &a, int m_rows, int k_depth,
                     const BfpConfig &cfg, Rng *rng = nullptr);

/** Encodes matrix columns (KxN, row-major) into K-chunk groups. */
BfpMatrix encodeCols(const std::vector<float> &b, int k_depth, int n_cols,
                     const BfpConfig &cfg, Rng *rng = nullptr);

} // namespace bfp
} // namespace mirage

#endif // MIRAGE_BFP_BFP_GEMM_H
