#include "bfp/bfp.h"

#include <cmath>

#include "common/logging.h"
#include "obs/fidelity.h"

namespace mirage {
namespace bfp {

const char *
toString(Rounding r)
{
    switch (r) {
      case Rounding::Truncate: return "truncate";
      case Rounding::Nearest: return "nearest";
      case Rounding::Stochastic: return "stochastic";
    }
    return "?";
}

void
BfpConfig::validate() const
{
    if (bm < 1 || bm > 15)
        MIRAGE_FATAL("BFP mantissa bits must be in [1, 15], got ", bm);
    if (g < 1 || g > (1 << 20))
        MIRAGE_FATAL("BFP group size must be in [1, 2^20], got ", g);
}

int
BfpConfig::dotProductBits() const
{
    return 2 * (bm + 1) + static_cast<int>(std::ceil(std::log2(g))) - 1;
}

float
BfpBlock::decode(size_t i, int bm) const
{
    MIRAGE_ASSERT(i < mantissas.size(), "block index out of range");
    return static_cast<float>(std::ldexp(static_cast<double>(mantissas[i]),
                                         exponent - bm));
}

namespace {

/** Exponent e such that |v| < 2^e (frexp semantics); 0 for v == 0. */
int
valueExponent(float v)
{
    if (v == 0.0f || !std::isfinite(v))
        return 0;
    int e = 0;
    std::frexp(v, &e);
    return e;
}

int32_t
roundMantissa(double scaled, Rounding mode, Rng *rng)
{
    switch (mode) {
      case Rounding::Truncate:
        // Hardware truncation drops LSBs of the two's-complement mantissa,
        // which rounds toward -inf (floor) — not toward zero. Toward-zero
        // truncation would systematically shrink gradient magnitudes and
        // stall training.
        return static_cast<int32_t>(std::floor(scaled));
      case Rounding::Nearest:
        return static_cast<int32_t>((scaled >= 0.0) ? std::floor(scaled + 0.5)
                                                    : std::ceil(scaled - 0.5));
      case Rounding::Stochastic: {
        MIRAGE_ASSERT(rng != nullptr, "stochastic rounding needs an Rng");
        const double floor_v = std::floor(scaled);
        const double frac = scaled - floor_v;
        return static_cast<int32_t>(floor_v + (rng->uniformReal() < frac ? 1 : 0));
      }
    }
    MIRAGE_PANIC("unknown rounding mode");
}

} // namespace

int
encodeGroupInto(std::span<const float> values, const BfpConfig &cfg,
                std::span<int32_t> mantissas, Rng *rng)
{
    cfg.validate();
    MIRAGE_ASSERT(values.size() <= static_cast<size_t>(cfg.g),
                  "group larger than configured size");
    MIRAGE_ASSERT(mantissas.size() >= values.size(),
                  "mantissa buffer too small");

    int shared = INT32_MIN;
    for (float v : values) {
        if (!std::isfinite(v))
            MIRAGE_FATAL("non-finite value in BFP group");
        if (v != 0.0f)
            shared = std::max(shared, valueExponent(v));
    }
    if (shared == INT32_MIN) { // all-zero group
        for (size_t i = 0; i < values.size(); ++i)
            mantissas[i] = 0;
        obs::fidelity::noteBfpGroup(0, 0);
        return 0;
    }

    // value = q * 2^(e - bm)  =>  q = value * 2^(bm - e). The mantissa is a
    // (bm+1)-bit two's-complement integer: [-2^bm, 2^bm - 1].
    const int32_t q_max = (1 << cfg.bm) - 1;
    const int32_t q_min = -(1 << cfg.bm);
    int clipped = 0;
    for (size_t i = 0; i < values.size(); ++i) {
        const double scaled = std::ldexp(static_cast<double>(values[i]),
                                         cfg.bm - shared);
        int32_t q = roundMantissa(scaled, cfg.rounding, rng);
        if (q > q_max) {
            q = q_max;
            ++clipped;
        }
        if (q < q_min) {
            q = q_min;
            ++clipped;
        }
        mantissas[i] = q;
    }
    obs::fidelity::noteBfpGroup(shared, clipped);
    return shared;
}

BfpBlock
encodeBlock(std::span<const float> values, const BfpConfig &cfg, Rng *rng)
{
    BfpBlock block;
    block.mantissas.resize(values.size(), 0);
    block.exponent = encodeGroupInto(values, cfg, block.mantissas, rng);
    return block;
}

std::vector<float>
decodeBlock(const BfpBlock &block, const BfpConfig &cfg)
{
    std::vector<float> out(block.mantissas.size());
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = block.decode(i, cfg.bm);
    return out;
}

void
fakeQuantize(std::span<float> values, const BfpConfig &cfg, Rng *rng)
{
    for (size_t start = 0; start < values.size(); start += cfg.g) {
        const size_t len = std::min(static_cast<size_t>(cfg.g),
                                    values.size() - start);
        const BfpBlock block =
            encodeBlock(values.subspan(start, len), cfg, rng);
        for (size_t i = 0; i < len; ++i)
            values[start + i] = block.decode(i, cfg.bm);
    }
}

BlockDotResult
blockDot(const BfpBlock &a, const BfpBlock &b, int bm)
{
    MIRAGE_ASSERT(a.mantissas.size() == b.mantissas.size(),
                  "block length mismatch in dot product");
    BlockDotResult r;
    for (size_t i = 0; i < a.mantissas.size(); ++i)
        r.integer_sum += static_cast<int64_t>(a.mantissas[i]) * b.mantissas[i];
    r.value = std::ldexp(static_cast<double>(r.integer_sum),
                         a.exponent + b.exponent - 2 * bm);
    return r;
}

} // namespace bfp
} // namespace mirage
