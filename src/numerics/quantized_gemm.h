#ifndef MIRAGE_NUMERICS_QUANTIZED_GEMM_H
#define MIRAGE_NUMERICS_QUANTIZED_GEMM_H

/**
 * @file
 * Format-parameterized GEMM used by the DNN training framework: one entry
 * point that evaluates C = A * B under any of the paper's data formats,
 * including the Mirage BFP/RNS path. This is the single code path behind
 * Table I — every format trains through the same harness.
 */

#include <optional>
#include <span>
#include <vector>

#include "bfp/bfp.h"
#include "common/rng.h"
#include "numerics/formats.h"
#include "rns/moduli_set.h"

namespace mirage {
namespace numerics {

/** Per-format tuning knobs. */
struct FormatGemmConfig
{
    /// Mirage's BFP parameters (paper: bm=4, g=16). The paper states LSB
    /// truncation; at this library's miniature benchmark scale truncation's
    /// rounding bias stalls convergence (see EXPERIMENTS.md ablation), so
    /// round-to-nearest — one extra LSB adder in hardware — is the default.
    bfp::BfpConfig mirage_bfp{4, 16, bfp::Rounding::Nearest};
    /// When set, Mirage chunk dots run through the RNS domain (transparent).
    std::optional<rns::ModuliSet> moduli;
    /// FMAC [69] emulation: BFP with stochastic rounding.
    bfp::BfpConfig fmac_bfp{4, 16, bfp::Rounding::Stochastic};
    /// Integer formats: quantize per tensor (true) — the paper's baselines.
    int int8_bits = 8;
    int int12_bits = 12;
};

/**
 * One GEMM invocation: C[MxN] = A[MxK] * B[KxN], row-major FP32 views.
 * The operand spans alias caller storage (vectors convert implicitly) and
 * must stay valid for the duration of the call.
 */
struct GemmCall
{
    std::span<const float> a;
    std::span<const float> b;
    int m = 0, k = 0, n = 0;
    /// Marks operands that are loss gradients (HFP8 uses E5M2 for those).
    bool a_is_grad = false;
    bool b_is_grad = false;
    /// Required by stochastic-rounding formats.
    Rng *rng = nullptr;
};

/**
 * Plain FP32 GEMM (FP32 accumulation), the accuracy reference. The span
 * overload writes into caller storage (size m*n) and draws every
 * temporary from the executing thread's Workspace — allocation-free once
 * warm. The kernels are register/cache blocked; per-element accumulation
 * order is unchanged, so results are bit-identical to the naive loops.
 */
void gemmFp32(const GemmCall &call, std::span<float> out);
std::vector<float> gemmFp32(const GemmCall &call);

/** Dispatches a GEMM through the requested data format emulation. */
void formatGemm(DataFormat fmt, const GemmCall &call,
                const FormatGemmConfig &cfg, std::span<float> out);
std::vector<float> formatGemm(DataFormat fmt, const GemmCall &call,
                              const FormatGemmConfig &cfg);

} // namespace numerics
} // namespace mirage

#endif // MIRAGE_NUMERICS_QUANTIZED_GEMM_H
