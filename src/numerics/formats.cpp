#include "numerics/formats.h"

#include <array>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace mirage {
namespace numerics {

std::string
toString(DataFormat f)
{
    switch (f) {
      case DataFormat::FP32: return "FP32";
      case DataFormat::BFLOAT16: return "bfloat16";
      case DataFormat::HFP8: return "HFP8";
      case DataFormat::INT12: return "INT12";
      case DataFormat::INT8: return "INT8";
      case DataFormat::FMAC: return "FMAC";
      case DataFormat::MirageBfpRns: return "Mirage";
    }
    return "?";
}

std::span<const DataFormat>
allFormats()
{
    static const std::array<DataFormat, 7> kAll = {
        DataFormat::MirageBfpRns, DataFormat::FP32, DataFormat::BFLOAT16,
        DataFormat::HFP8, DataFormat::INT12, DataFormat::INT8,
        DataFormat::FMAC,
    };
    return kAll;
}

float
toBfloat16(float v)
{
    if (!std::isfinite(v))
        return v;
    uint32_t bits = std::bit_cast<uint32_t>(v);
    // Round-to-nearest-even on the 16 truncated mantissa bits.
    const uint32_t rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    bits += rounding_bias;
    bits &= 0xFFFF0000u;
    return std::bit_cast<float>(bits);
}

float
toMiniFloat(float v, int exp_bits, int man_bits, bool fn_variant)
{
    MIRAGE_ASSERT(exp_bits >= 2 && exp_bits <= 8, "bad exponent width");
    MIRAGE_ASSERT(man_bits >= 1 && man_bits <= 23, "bad mantissa width");
    if (v == 0.0f || !std::isfinite(v))
        return v;

    const int bias = (1 << (exp_bits - 1)) - 1;
    const int e_min = 1 - bias; // smallest normal exponent
    // IEEE-style reserves the all-ones exponent; the FN variant (E4M3)
    // keeps it for normals and only reserves the NaN mantissa pattern.
    const int e_max = (1 << exp_bits) - (fn_variant ? 1 : 2) - bias;
    const double top_mantissa =
        fn_variant ? (2.0 - std::ldexp(2.0, -man_bits))
                   : (2.0 - std::ldexp(1.0, -man_bits));
    const double max_mag = std::ldexp(top_mantissa, e_max);

    const double av = std::fabs(v);
    const double sign = (v < 0) ? -1.0 : 1.0;
    if (av > max_mag)
        return static_cast<float>(sign * max_mag); // saturate

    int e = 0;
    std::frexp(av, &e);
    e -= 1; // value = f * 2^e with f in [1, 2)
    const int q_exp = std::max(e, e_min); // subnormal alignment below e_min
    const double scale = std::ldexp(1.0, q_exp - man_bits);
    double q = std::nearbyint(av / scale); // round-to-nearest-even default
    const double result = q * scale;
    return static_cast<float>(sign * result);
}

float
intQuantScale(std::span<const float> values, int bits)
{
    MIRAGE_ASSERT(bits >= 2 && bits <= 24, "bad integer bit width");
    float max_abs = 0.0f;
    for (float v : values)
        max_abs = std::max(max_abs, std::fabs(v));
    if (max_abs == 0.0f)
        return 1.0f;
    const float q_max = static_cast<float>((1 << (bits - 1)) - 1);
    return max_abs / q_max;
}

int32_t
intQuantize(float v, float scale, int bits)
{
    const int32_t q_max = (1 << (bits - 1)) - 1;
    float q = std::nearbyint(v / scale);
    if (q > static_cast<float>(q_max))
        return q_max;
    if (q < static_cast<float>(-q_max))
        return -q_max;
    return static_cast<int32_t>(q);
}

} // namespace numerics
} // namespace mirage
