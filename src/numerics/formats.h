#ifndef MIRAGE_NUMERICS_FORMATS_H
#define MIRAGE_NUMERICS_FORMATS_H

/**
 * @file
 * Value-level emulation of the data formats Mirage is compared against
 * (paper Sec. II-B, Table I/II): bfloat16, HFP8 (hybrid E4M3/E5M2), and
 * symmetric per-tensor integer quantization (INT8/INT12). FMAC is BFP with
 * stochastic rounding and is covered by the bfp module.
 */

#include <cstdint>
#include <span>
#include <string>

namespace mirage {
namespace numerics {

/** Every MAC-unit data format evaluated in the paper. */
enum class DataFormat
{
    FP32,
    BFLOAT16,
    HFP8,
    INT12,
    INT8,
    FMAC,        ///< Variable-precision BFP with stochastic rounding [69].
    MirageBfpRns ///< This paper: BFP(bm, g) over the RNS photonic core.
};

/** Human-readable format name as printed in the paper's tables. */
std::string toString(DataFormat f);

/** All formats, in Table II column order. */
std::span<const DataFormat> allFormats();

// --- bfloat16 ---------------------------------------------------------------

/** Rounds an FP32 value to bfloat16 (round-to-nearest-even) and back. */
float toBfloat16(float v);

// --- HFP8 (hybrid FP8: E4M3 forward, E5M2 backward) -------------------------

/**
 * Generic binary-FP rounding: `exp_bits` exponent, `man_bits` mantissa.
 * With `fn_variant` the all-ones exponent carries normals (only the NaN
 * mantissa pattern is reserved), extending the max like E4M3's 448.
 */
float toMiniFloat(float v, int exp_bits, int man_bits,
                  bool fn_variant = false);

/** HFP8 forward-pass format: 1-4-3 (E4M3, FN variant, max 448). */
inline float toHfp8Forward(float v) { return toMiniFloat(v, 4, 3, true); }

/** HFP8 backward-pass format: 1-5-2 (E5M2). */
inline float toHfp8Backward(float v) { return toMiniFloat(v, 5, 2); }

// --- symmetric per-tensor integer quantization -------------------------------

/** Scale for symmetric `bits`-bit quantization of a tensor. */
float intQuantScale(std::span<const float> values, int bits);

/** Quantizes one value with a precomputed scale; saturating. */
int32_t intQuantize(float v, float scale, int bits);

/** Dequantizes an integer back to real units. */
inline float intDequantize(int32_t q, float scale) { return q * scale; }

} // namespace numerics
} // namespace mirage

#endif // MIRAGE_NUMERICS_FORMATS_H
