#include "numerics/quantized_gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "bfp/bfp_gemm.h"
#include "common/logging.h"
#include "common/simd.h"
#include "common/workspace.h"
#include "runtime/thread_pool.h"

namespace mirage {
namespace numerics {

namespace {

/// Output rows per parallelFor block (fixed — see thread_pool.h). Each row
/// keeps its serial accumulation order, so parallel results stay
/// bit-identical. A multiple of kRowBlock: smaller grains chopped blocks
/// below the 4-row register-blocked fast path, so parallel runs fell back
/// to the slow per-row kernel — one of the causes of the multi-thread
/// slowdown this grain used to have at 2.
constexpr int64_t kRowGrain = 8;
/// Below this approximate MAC count the loops run serially (no sync cost).
/// ~64k MACs is a few microseconds of compute — dispatch below that costs
/// more than it buys.
constexpr int64_t kMinParallelWork = 65536;

/// Register/cache blocking of the reference kernels: kRowBlock output rows
/// share every B load, and the j loop is tiled so the accumulator panel
/// stays in L1. Each (i, j) element still accumulates over k in ascending
/// order, so blocking changes nothing numerically.
constexpr int kRowBlock = 4;
constexpr int kColTile = 256;

int64_t
gemmGrain(const GemmCall &call)
{
    return runtime::serialBelow(call.m, kRowGrain,
                                static_cast<int64_t>(call.m) * call.k *
                                    call.n,
                                kMinParallelWork);
}

void
checkCall(const GemmCall &call)
{
    MIRAGE_ASSERT(call.m > 0 && call.k > 0 && call.n > 0, "bad GEMM dims");
    MIRAGE_ASSERT(call.a.size() == static_cast<size_t>(call.m) * call.k,
                  "A shape mismatch");
    MIRAGE_ASSERT(call.b.size() == static_cast<size_t>(call.k) * call.n,
                  "B shape mismatch");
}

/**
 * Blocked panel kernel shared by the FP32 and integer reference paths:
 * out[i][j] = sum_k a[i][k] * b[k][j] with Acc-typed accumulation, k
 * ascending per element. Rows [i0, i1) of the output are produced; the
 * accumulator panel comes from the executing thread's workspace.
 */
template <typename T, typename Acc, typename Out, typename Store>
void
gemmPanelRows(const T *a, const T *b, Out *out, int64_t i0, int64_t i1,
              int k_depth, int n_cols, Store store)
{
    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);
    const int jtile = std::min(kColTile, n_cols);
    Acc *acc = ws.alloc<Acc>(static_cast<size_t>(kRowBlock) * jtile).data();
    for (int64_t ib = i0; ib < i1; ib += kRowBlock) {
        const int rows = static_cast<int>(std::min<int64_t>(kRowBlock, i1 - ib));
        for (int j0 = 0; j0 < n_cols; j0 += kColTile) {
            const int jt = std::min(kColTile, n_cols - j0);
            std::memset(acc, 0, static_cast<size_t>(rows) * jt * sizeof(Acc));
            constexpr bool kHasPanelKernel =
                (std::is_same_v<T, float> && std::is_same_v<Acc, float>) ||
                (std::is_same_v<T, int32_t> && std::is_same_v<Acc, int64_t>);
            if (rows == kRowBlock && kHasPanelKernel) {
                // Register-tiled simd panel over the whole k loop — the
                // accumulator tile stays in vector registers instead of
                // round-tripping L1 per k step. Bit-identical to the
                // per-k loop below: each element gets one multiply + one
                // add per nonzero a[i][k], k ascending, no FMA
                // contraction (common/simd.h).
                if constexpr (std::is_same_v<T, float> &&
                              std::is_same_v<Acc, float>) {
                    simd::gemmPanel4F32(&a[static_cast<size_t>(ib) * k_depth],
                                        k_depth, &b[j0], n_cols, k_depth, acc,
                                        jt);
                } else if constexpr (std::is_same_v<T, int32_t> &&
                                     std::is_same_v<Acc, int64_t>) {
                    simd::gemmPanel4I32I64(
                        &a[static_cast<size_t>(ib) * k_depth], k_depth,
                        &b[j0], n_cols, k_depth, acc, jt);
                }
            } else {
                // Short row tail: per-k, per-row axpy with the legacy zero
                // skip (which also dodges 0 * inf surprises in FP32).
                for (int k = 0; k < k_depth; ++k) {
                    const T *b_row = &b[static_cast<size_t>(k) * n_cols + j0];
                    for (int r = 0; r < rows; ++r) {
                        const T a_ik =
                            a[static_cast<size_t>(ib + r) * k_depth + k];
                        if (a_ik == T{})
                            continue;
                        Acc *row = acc + static_cast<size_t>(r) * jt;
                        if constexpr (std::is_same_v<T, float> &&
                                      std::is_same_v<Acc, float>) {
                            simd::axpyF32(a_ik, b_row, row, jt);
                        } else if constexpr (std::is_same_v<T, int32_t> &&
                                             std::is_same_v<Acc, int64_t>) {
                            simd::axpyI32I64(a_ik, b_row, row, jt);
                        } else {
                            for (int j = 0; j < jt; ++j)
                                row[j] += static_cast<Acc>(a_ik) *
                                          static_cast<Acc>(b_row[j]);
                        }
                    }
                }
            }
            for (int r = 0; r < rows; ++r)
                for (int j = 0; j < jt; ++j)
                    out[static_cast<size_t>(ib + r) * n_cols + j0 + j] =
                        store(acc[static_cast<size_t>(r) * jt + j]);
        }
    }
}

/** FP32 GEMM over explicitly transformed operand views. */
void
gemmTransformed(const GemmCall &call, const float *a, const float *b,
                std::span<float> out)
{
    runtime::parallelFor(call.m, gemmGrain(call), [&](int64_t i0, int64_t i1) {
        gemmPanelRows<float, float>(a, b, out.data(), i0, i1, call.k, call.n,
                                    [](float v) { return v; });
    });
}

std::span<float>
transformAll(std::span<const float> v, float (*f)(float), Workspace &ws)
{
    std::span<float> out = ws.alloc<float>(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = f(v[i]);
    return out;
}

void
gemmIntQuant(const GemmCall &call, int bits, std::span<float> out)
{
    const float scale_a = intQuantScale(call.a, bits);
    const float scale_b = intQuantScale(call.b, bits);

    Workspace &ws = threadWorkspace();
    Workspace::Scope scope(ws);
    std::span<int32_t> qa = ws.alloc<int32_t>(call.a.size());
    std::span<int32_t> qb = ws.alloc<int32_t>(call.b.size());
    for (size_t i = 0; i < qa.size(); ++i)
        qa[i] = intQuantize(call.a[i], scale_a, bits);
    for (size_t i = 0; i < qb.size(); ++i)
        qb[i] = intQuantize(call.b[i], scale_b, bits);

    // Keep the legacy rounding association ((v * scale_a) * scale_b) so
    // dequantized outputs stay bit-identical to the pre-blocking kernel.
    runtime::parallelFor(call.m, gemmGrain(call), [&](int64_t i0, int64_t i1) {
        gemmPanelRows<int32_t, int64_t>(
            qa.data(), qb.data(), out.data(), i0, i1, call.k, call.n,
            [scale_a, scale_b](int64_t v) {
                return static_cast<float>(v) * scale_a * scale_b;
            });
    });
}

} // namespace

void
gemmFp32(const GemmCall &call, std::span<float> out)
{
    checkCall(call);
    MIRAGE_ASSERT(out.size() == static_cast<size_t>(call.m) * call.n,
                  "C shape mismatch");
    gemmTransformed(call, call.a.data(), call.b.data(), out);
}

std::vector<float>
gemmFp32(const GemmCall &call)
{
    std::vector<float> c(static_cast<size_t>(call.m) * call.n);
    gemmFp32(call, c);
    return c;
}

void
formatGemm(DataFormat fmt, const GemmCall &call, const FormatGemmConfig &cfg,
           std::span<float> out)
{
    checkCall(call);
    MIRAGE_ASSERT(out.size() == static_cast<size_t>(call.m) * call.n,
                  "C shape mismatch");
    Workspace &ws = threadWorkspace();
    switch (fmt) {
      case DataFormat::FP32:
        gemmTransformed(call, call.a.data(), call.b.data(), out);
        return;

      case DataFormat::BFLOAT16: {
        Workspace::Scope scope(ws);
        const std::span<float> a_q = transformAll(call.a, &toBfloat16, ws);
        const std::span<float> b_q = transformAll(call.b, &toBfloat16, ws);
        gemmTransformed(call, a_q.data(), b_q.data(), out);
        return;
      }

      case DataFormat::HFP8: {
        Workspace::Scope scope(ws);
        const std::span<float> a_q = transformAll(
            call.a, call.a_is_grad ? &toHfp8Backward : &toHfp8Forward, ws);
        const std::span<float> b_q = transformAll(
            call.b, call.b_is_grad ? &toHfp8Backward : &toHfp8Forward, ws);
        gemmTransformed(call, a_q.data(), b_q.data(), out);
        return;
      }

      case DataFormat::INT8:
        gemmIntQuant(call, cfg.int8_bits, out);
        return;

      case DataFormat::INT12:
        gemmIntQuant(call, cfg.int12_bits, out);
        return;

      case DataFormat::FMAC:
        bfp::bfpGemm(call.a, call.b, out, call.m, call.k, call.n,
                     cfg.fmac_bfp, nullptr, call.rng);
        return;

      case DataFormat::MirageBfpRns:
        // The cached codec keeps per-call setup allocation-free (the
        // ModuliSet itself is never copied on this path).
        bfp::bfpGemm(call.a, call.b, out, call.m, call.k, call.n,
                     cfg.mirage_bfp,
                     cfg.moduli ? &rns::cachedCodec(*cfg.moduli) : nullptr,
                     call.rng);
        return;
    }
    MIRAGE_PANIC("unknown data format");
}

std::vector<float>
formatGemm(DataFormat fmt, const GemmCall &call, const FormatGemmConfig &cfg)
{
    std::vector<float> c(static_cast<size_t>(call.m) * call.n);
    formatGemm(fmt, call, cfg, c);
    return c;
}

} // namespace numerics
} // namespace mirage
