#include "numerics/quantized_gemm.h"

#include <cmath>

#include "bfp/bfp_gemm.h"
#include "common/logging.h"
#include "runtime/thread_pool.h"

namespace mirage {
namespace numerics {

namespace {

/// Output rows per parallelFor block (fixed — see thread_pool.h). Each row
/// keeps its serial accumulation order, so parallel results stay
/// bit-identical.
constexpr int64_t kRowGrain = 2;
/// Below this approximate MAC count the loops run serially (no sync cost).
constexpr int64_t kMinParallelWork = 16384;

int64_t
gemmGrain(const GemmCall &call)
{
    return runtime::serialBelow(call.m, kRowGrain,
                                static_cast<int64_t>(call.m) * call.k *
                                    call.n,
                                kMinParallelWork);
}

void
checkCall(const GemmCall &call)
{
    MIRAGE_ASSERT(call.a && call.b, "GEMM operands must be set");
    MIRAGE_ASSERT(call.m > 0 && call.k > 0 && call.n > 0, "bad GEMM dims");
    MIRAGE_ASSERT(call.a->size() == static_cast<size_t>(call.m) * call.k,
                  "A shape mismatch");
    MIRAGE_ASSERT(call.b->size() == static_cast<size_t>(call.k) * call.n,
                  "B shape mismatch");
}

/** FP32 GEMM over explicitly transformed operand copies. */
std::vector<float>
gemmTransformed(const GemmCall &call, const std::vector<float> &a,
                const std::vector<float> &b)
{
    std::vector<float> c(static_cast<size_t>(call.m) * call.n, 0.0f);
    runtime::parallelFor(call.m, gemmGrain(call), [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            for (int kk = 0; kk < call.k; ++kk) {
                const float a_ik = a[static_cast<size_t>(i) * call.k + kk];
                if (a_ik == 0.0f)
                    continue;
                const float *b_row = &b[static_cast<size_t>(kk) * call.n];
                float *c_row = &c[static_cast<size_t>(i) * call.n];
                for (int j = 0; j < call.n; ++j)
                    c_row[j] += a_ik * b_row[j];
            }
        }
    });
    return c;
}

std::vector<float>
transformAll(const std::vector<float> &v, float (*f)(float))
{
    std::vector<float> out(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = f(v[i]);
    return out;
}

std::vector<float>
gemmIntQuant(const GemmCall &call, int bits)
{
    const float scale_a = intQuantScale(*call.a, bits);
    const float scale_b = intQuantScale(*call.b, bits);

    std::vector<int32_t> qa(call.a->size()), qb(call.b->size());
    for (size_t i = 0; i < qa.size(); ++i)
        qa[i] = intQuantize((*call.a)[i], scale_a, bits);
    for (size_t i = 0; i < qb.size(); ++i)
        qb[i] = intQuantize((*call.b)[i], scale_b, bits);

    std::vector<float> c(static_cast<size_t>(call.m) * call.n);
    runtime::parallelFor(call.m, gemmGrain(call), [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            for (int j = 0; j < call.n; ++j) {
                int64_t acc = 0;
                for (int kk = 0; kk < call.k; ++kk) {
                    acc += static_cast<int64_t>(
                               qa[static_cast<size_t>(i) * call.k + kk]) *
                           qb[static_cast<size_t>(kk) * call.n + j];
                }
                c[static_cast<size_t>(i) * call.n + j] =
                    static_cast<float>(acc) * scale_a * scale_b;
            }
        }
    });
    return c;
}

} // namespace

std::vector<float>
gemmFp32(const GemmCall &call)
{
    checkCall(call);
    return gemmTransformed(call, *call.a, *call.b);
}

std::vector<float>
formatGemm(DataFormat fmt, const GemmCall &call, const FormatGemmConfig &cfg)
{
    checkCall(call);
    switch (fmt) {
      case DataFormat::FP32:
        return gemmTransformed(call, *call.a, *call.b);

      case DataFormat::BFLOAT16:
        return gemmTransformed(call, transformAll(*call.a, &toBfloat16),
                               transformAll(*call.b, &toBfloat16));

      case DataFormat::HFP8: {
        auto a_q = transformAll(*call.a, call.a_is_grad ? &toHfp8Backward
                                                        : &toHfp8Forward);
        auto b_q = transformAll(*call.b, call.b_is_grad ? &toHfp8Backward
                                                        : &toHfp8Forward);
        return gemmTransformed(call, a_q, b_q);
      }

      case DataFormat::INT8:
        return gemmIntQuant(call, cfg.int8_bits);

      case DataFormat::INT12:
        return gemmIntQuant(call, cfg.int12_bits);

      case DataFormat::FMAC: {
        bfp::BfpGemmOptions opts;
        opts.config = cfg.fmac_bfp;
        opts.rng = call.rng;
        return bfp::bfpGemm(*call.a, *call.b, call.m, call.k, call.n, opts);
      }

      case DataFormat::MirageBfpRns: {
        bfp::BfpGemmOptions opts;
        opts.config = cfg.mirage_bfp;
        opts.moduli = cfg.moduli;
        opts.rng = call.rng;
        return bfp::bfpGemm(*call.a, *call.b, call.m, call.k, call.n, opts);
      }
    }
    MIRAGE_PANIC("unknown data format");
}

} // namespace numerics
} // namespace mirage
