#include "serve/repository.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "obs/metrics.h"

namespace mirage {
namespace serve {

// ---------------------------------------------------------------------------
// ModelRepository
// ---------------------------------------------------------------------------

ModelRepository::ModelRepository(arch::MirageConfig accel_cfg, uint64_t seed)
    : accel_cfg_(accel_cfg), seed_(seed)
{
    accel_cfg_.validate();
}

int
ModelRepository::publishEntry(std::shared_ptr<ServedModel> entry)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto &versions = table_[entry->name];
    const int version =
        versions.empty() ? 1 : versions.back()->version + 1;
    entry->version = version;
    versions.push_back(std::move(entry));
    return version;
}

int
ModelRepository::publishShape(const std::string &name,
                              models::ModelShape shape)
{
    if (name.empty())
        throw std::invalid_argument("served model needs a non-empty name");
    auto entry = std::make_shared<ServedModel>();
    entry->name = name;
    entry->shape = std::move(shape);
    return publishEntry(std::move(entry));
}

std::shared_ptr<ServedModel>
ModelRepository::buildFunctionalEntry(const std::string &name,
                                      models::ModelShape shape,
                                      const ModelFactory &factory)
{
    if (name.empty())
        throw std::invalid_argument("served model needs a non-empty name");
    if (!factory)
        throw std::invalid_argument(
            "publishing a functional model needs a factory");
    auto entry = std::make_shared<ServedModel>();
    entry->name = name;
    entry->shape = std::move(shape);
    entry->accel = std::make_shared<core::MirageAccelerator>(accel_cfg_);
    uint64_t entry_id;
    {
        std::lock_guard<std::mutex> lk(mu_);
        entry_id = entries_created_++;
    }
    Rng rng = Rng(seed_).split(entry_id);
    entry->net = factory(entry->accel->backend(), rng);
    if (entry->net == nullptr)
        throw std::invalid_argument("model factory returned null for '" +
                                    name + "'");
    return entry;
}

int
ModelRepository::publishModel(const std::string &name,
                              models::ModelShape shape,
                              const ModelFactory &factory)
{
    return publishEntry(buildFunctionalEntry(name, std::move(shape), factory));
}

int
ModelRepository::publishCheckpoint(const std::string &name,
                                   const Checkpoint &ckpt,
                                   models::ModelShape shape,
                                   const ModelFactory &factory)
{
    // Restore BEFORE publishing: once the entry is in the table it is the
    // acquire() target, and a hot-swap under live traffic must never let
    // a request observe factory-initialized weights.
    std::shared_ptr<ServedModel> entry =
        buildFunctionalEntry(name, std::move(shape), factory);
    restore(ckpt, *entry->net, nullptr);
    return publishEntry(std::move(entry));
}

int
ModelRepository::publishCheckpointFile(const std::string &name,
                                       const std::string &path,
                                       models::ModelShape shape,
                                       const ModelFactory &factory)
{
    return publishCheckpoint(name, loadFile(path), std::move(shape), factory);
}

std::shared_ptr<ServedModel>
ModelRepository::acquire(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = table_.find(name);
    if (it == table_.end() || it->second.empty())
        throw std::out_of_range("no served model named '" + name + "'");
    return it->second.back();
}

std::shared_ptr<ServedModel>
ModelRepository::acquire(const std::string &name, int version) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = table_.find(name);
    if (it != table_.end()) {
        for (const auto &entry : it->second)
            if (entry->version == version)
                return entry;
    }
    throw std::out_of_range("no served model '" + name + "' version " +
                            std::to_string(version));
}

int
ModelRepository::currentVersion(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = table_.find(name);
    return it == table_.end() || it->second.empty()
               ? 0
               : it->second.back()->version;
}

void
ModelRepository::notifyRetired(const ServedModel &entry)
{
    for (const auto &[id, listener] : listeners_)
        listener(entry);
}

size_t
ModelRepository::retireOldVersions(const std::string &name)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = table_.find(name);
    if (it == table_.end() || it->second.size() <= 1)
        return 0;
    const size_t old = it->second.size() - 1;
    for (size_t i = 0; i < old; ++i)
        notifyRetired(*it->second[i]);
    it->second.erase(it->second.begin(), it->second.end() - 1);
    retired_ += old;
    return old;
}

bool
ModelRepository::retire(const std::string &name, int version)
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = table_.find(name);
    if (it == table_.end())
        return false;
    auto &versions = it->second;
    const auto pos = std::find_if(
        versions.begin(), versions.end(),
        [version](const auto &e) { return e->version == version; });
    if (pos == versions.end())
        return false;
    notifyRetired(**pos);
    versions.erase(pos);
    if (versions.empty())
        table_.erase(it);
    ++retired_;
    return true;
}

uint64_t
ModelRepository::addRetireListener(RetireListener fn)
{
    if (!fn)
        throw std::invalid_argument("retire listener must be callable");
    std::lock_guard<std::mutex> lk(mu_);
    const uint64_t id = next_listener_id_++;
    listeners_[id] = std::move(fn);
    return id;
}

void
ModelRepository::removeRetireListener(uint64_t id)
{
    std::lock_guard<std::mutex> lk(mu_);
    listeners_.erase(id);
}

size_t
ModelRepository::liveVersions(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = table_.find(name);
    return it == table_.end() ? 0 : it->second.size();
}

std::vector<std::string>
ModelRepository::modelNames() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> names;
    names.reserve(table_.size());
    for (const auto &[name, versions] : table_)
        if (!versions.empty())
            names.push_back(name);
    return names;
}

uint64_t
ModelRepository::retiredCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return retired_;
}

// ---------------------------------------------------------------------------
// WeightCache
// ---------------------------------------------------------------------------

WeightCache::WeightCache(int tiles, const arch::MirageConfig &cfg)
    : slots_(static_cast<size_t>(std::max(tiles, 0))), perf_(cfg),
      energy_(cfg)
{
    if (tiles <= 0)
        throw std::invalid_argument("WeightCache needs at least one tile");
}

namespace {

/** Weight-cache hardware counters: the modeled photonic reprogramming
 *  cost (MZI/ring reprogram time and energy) surfaced as integer
 *  nanosecond/nanojoule counters alongside hit/miss/eviction tallies. */
struct CacheObs
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &evictions;
    obs::Counter &reprogram_ns;
    obs::Counter &reprogram_nj;

    static CacheObs &
    get()
    {
        static auto &reg = obs::MetricsRegistry::global();
        static CacheObs o{reg.counter("serve.cache.hits"),
                          reg.counter("serve.cache.misses"),
                          reg.counter("serve.cache.evictions"),
                          reg.counter("serve.cache.reprogram_ns"),
                          reg.counter("serve.cache.reprogram_nj")};
        return o;
    }
};

} // namespace

TileProgramCost
WeightCache::acquire(const std::string &key, int64_t weight_elements)
{
    if (key.empty())
        throw std::invalid_argument("WeightCache key must be non-empty");
    std::lock_guard<std::mutex> lk(mu_);
    ++clock_;

    TileProgramCost cost;
    // Hit: any tile already programmed with this model.
    for (size_t t = 0; t < slots_.size(); ++t) {
        if (slots_[t].key == key) {
            slots_[t].last_use = clock_;
            cost.tile = static_cast<int>(t);
            cost.hit = true;
            ++stats_.hits;
            CacheObs::get().hits.add(1);
            return cost;
        }
    }

    // Miss: take an empty slot if one exists, else evict the LRU tile.
    size_t victim = 0;
    for (size_t t = 0; t < slots_.size(); ++t) {
        if (slots_[t].key.empty()) {
            victim = t;
            break;
        }
        if (slots_[t].last_use < slots_[victim].last_use)
            victim = t;
    }
    if (!slots_[victim].key.empty()) {
        ++stats_.evictions;
        CacheObs::get().evictions.add(1);
    }
    slots_[victim].key = key;
    slots_[victim].last_use = clock_;

    cost.tile = static_cast<int>(victim);
    cost.hit = false;
    cost.time_s = perf_.programmingTimeS(weight_elements);
    cost.energy_j = energy_.programmingEnergyJ(weight_elements);
    ++stats_.misses;
    stats_.programming_time_s += cost.time_s;
    stats_.programming_energy_j += cost.energy_j;
    CacheObs::get().misses.add(1);
    CacheObs::get().reprogram_ns.add(obs::toNanos(cost.time_s));
    CacheObs::get().reprogram_nj.add(obs::toNanos(cost.energy_j));
    return cost;
}

void
WeightCache::invalidate(const std::string &key)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (Slot &slot : slots_) {
        if (slot.key == key) {
            slot.key.clear();
            slot.last_use = 0;
        }
    }
}

void
WeightCache::invalidateTile(int tile)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (tile < 0 || static_cast<size_t>(tile) >= slots_.size())
        return;
    slots_[static_cast<size_t>(tile)].key.clear();
    slots_[static_cast<size_t>(tile)].last_use = 0;
}

WeightCache::Stats
WeightCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

} // namespace serve
} // namespace mirage
