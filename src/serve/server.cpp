#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/logging.h"
#include "obs/context.h"
#include "obs/fidelity.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mirage {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Pre-registered server metric handles (magic static; no registry-map
 *  lookups on the request path). Every duration recorded here reuses a
 *  clock sample the server already takes for ServerStats. */
struct ServerObs
{
    obs::Counter &submitted;
    obs::Counter &rejected;
    obs::Counter &completed;
    obs::Counter &failed;
    obs::Counter &batches;
    obs::Counter &deadline_misses;
    obs::Gauge &pending;
    obs::Histogram &queue_ns;
    obs::Histogram &batch_size;
    obs::Histogram &latency_interactive_ns;
    obs::Histogram &latency_batch_ns;
    // server.slo.* / server.requests.* namespace: per-request outcome
    // counters and the burn-rate gauges the scrape endpoint exposes.
    // Burns are unitless ratios published in milli-units (burn 10.0 ->
    // 10000) so the integer gauges keep three decimals.
    obs::Counter &requests_completed;
    obs::Counter &requests_missed;
    obs::Counter &requests_shed;
    obs::Counter &slo_alerts;
    obs::Gauge &burn_fast_inter;
    obs::Gauge &burn_slow_inter;
    obs::Gauge &burn_fast_batch;
    obs::Gauge &burn_slow_batch;
    obs::Gauge &shed_burn_fast_inter;
    obs::Gauge &shed_burn_fast_batch;
    // Fault-tolerance: tile-failure events seen by the server, requests
    // completed with the error field set, and the current (degraded)
    // admission capacity.
    obs::Counter &tile_failures;
    obs::Counter &request_errors;
    obs::Gauge &capacity;
    // Fidelity drift alerts forwarded through the server alert path.
    obs::Counter &fidelity_alerts;

    static ServerObs &
    get()
    {
        static auto &reg = obs::MetricsRegistry::global();
        static ServerObs o{
            reg.counter("serve.submitted"),
            reg.counter("serve.rejected"),
            reg.counter("serve.completed"),
            reg.counter("serve.failed"),
            reg.counter("serve.batches"),
            reg.counter("serve.deadline_misses"),
            reg.gauge("serve.pending"),
            reg.histogram("serve.queue_ns"),
            reg.histogram("serve.batch_size"),
            reg.histogram("serve.latency.interactive_ns"),
            reg.histogram("serve.latency.batch_ns"),
            reg.counter("server.requests.completed"),
            reg.counter("server.requests.missed"),
            reg.counter("server.requests.shed"),
            reg.counter("server.slo.alerts"),
            reg.gauge("server.slo.burn_rate_fast_milli.interactive"),
            reg.gauge("server.slo.burn_rate_slow_milli.interactive"),
            reg.gauge("server.slo.burn_rate_fast_milli.batch"),
            reg.gauge("server.slo.burn_rate_slow_milli.batch"),
            reg.gauge("server.slo.shed_burn_fast_milli.interactive"),
            reg.gauge("server.slo.shed_burn_fast_milli.batch"),
            reg.counter("serve.tile_failures"),
            reg.counter("serve.request_errors"),
            reg.gauge("serve.capacity"),
            reg.counter("server.fidelity.alerts")};
        return o;
    }
};

/** Burn ratio -> integer milli-units for gauge exposition. */
int64_t
toMilli(double burn)
{
    return static_cast<int64_t>(std::llround(burn * 1000.0));
}

/// Micro-batch sequence numbers are process-wide, not per-server, so a
/// request log spanning several server instances (the soak harness
/// builds a fresh one per scenario) never sees two different
/// micro-batches share a sequence number.
std::atomic<uint64_t> g_batch_seq{0};

/** Nearest-rank percentile of an ascending-sorted sample vector. */
double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank = std::ceil(q * static_cast<double>(sorted.size()));
    const size_t idx = static_cast<size_t>(std::max(rank, 1.0)) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

LatencySummary
summarize(std::vector<double> samples)
{
    LatencySummary s;
    s.count = samples.size();
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    s.mean_s = sum / static_cast<double>(samples.size());
    s.p50_s = percentile(samples, 0.50);
    s.p95_s = percentile(samples, 0.95);
    s.p99_s = percentile(samples, 0.99);
    s.max_s = samples.back();
    return s;
}

} // namespace

const char *
toString(SloClass slo)
{
    switch (slo) {
      case SloClass::Interactive: return "interactive";
      case SloClass::Batch: return "batch";
    }
    return "?";
}

void
ServerConfig::validate() const
{
    if (max_batch <= 0)
        throw std::invalid_argument("ServerConfig.max_batch must be >= 1");
    if (queue_capacity == 0)
        throw std::invalid_argument(
            "ServerConfig.queue_capacity must be >= 1");
    for (const SloPolicy *p : {&interactive, &batch}) {
        if (p->max_delay_s < 0.0 || p->deadline_s <= 0.0)
            throw std::invalid_argument(
                "SloPolicy needs max_delay_s >= 0 and deadline_s > 0");
    }
    slo.validate();
}

// ---------------------------------------------------------------------------
// Server internals
// ---------------------------------------------------------------------------

struct InferenceServer::Impl
{
    struct Pending
    {
        InferenceRequest req;
        std::promise<InferenceReply> promise;
        Clock::time_point submitted;
        int64_t samples = 1;
        uint64_t id = 0; ///< Request id for causal tracing.
    };

    /** Requests batch only within one (model, class, input signature). */
    struct Group
    {
        std::string model;
        SloClass slo = SloClass::Interactive;
        std::deque<Pending> pending;
    };

    Impl(ModelRepository &repo_in, runtime::RuntimeEngine &engine_in,
         ServerConfig config)
        : repo(repo_in), engine(engine_in), cfg(config),
          cache(engine_in.config().tiles, engine_in.config().accel)
    {
        cfg.validate();
        stats.batch_size_hist.assign(
            static_cast<size_t>(cfg.max_batch) + 1, 0);
        total_tiles = engine.config().tiles;
        healthy_tiles = engine.healthyTiles();
        ServerObs::get().capacity.set(
            static_cast<int64_t>(effectiveCapacityLocked()));
        // Retired versions must stop occupying tile residency slots, or
        // every hot-swap would permanently shrink the weight cache.
        retire_listener = repo.addRetireListener(
            [this](const ServedModel &m) { cache.invalidate(m.cacheKey()); });
        // Tile health drives graceful degradation: capacity shrinks with
        // the healthy-tile count, and a dead tile's programmed weights are
        // dropped from the cache (its analog state is gone).
        tile_listener = engine.addTileListener(
            [this](int tile, bool healthy) { onTileEvent(tile, healthy); });
        // Numerical-fidelity drift alerts surface through the same
        // operator-facing alert path as burn-rate pages.
        fidelity_listener = obs::fidelity::addAlertListener(
            [this](const obs::fidelity::DriftAlert &a) {
                onFidelityDrift(a);
            });
        start = Clock::now();
        try {
            batcher = std::thread([this] { batchLoop(); });
        } catch (...) {
            obs::fidelity::removeAlertListener(fidelity_listener);
            engine.removeTileListener(tile_listener);
            repo.removeRetireListener(retire_listener);
            throw;
        }
    }

    ~Impl()
    {
        obs::fidelity::removeAlertListener(fidelity_listener);
        engine.removeTileListener(tile_listener);
        repo.removeRetireListener(retire_listener);
    }

    /** Fidelity drift alert (fidelity fan-out thread, outside fidelity
     *  locks). The fidelity layer already dumped the flight ring, so this
     *  only counts the event and forwards it to the user callback in
     *  SloAlert form (see SloAlertKind::FidelityDrift for the field
     *  mapping). */
    void
    onFidelityDrift(const obs::fidelity::DriftAlert &a)
    {
        ServerObs::get().fidelity_alerts.add(1);
        {
            std::lock_guard<std::mutex> lk(mu);
            ++stats.fidelity_alerts;
        }
        if (cfg.on_alert) {
            SloAlert alert;
            alert.kind = SloAlertKind::FidelityDrift;
            alert.at_s = a.at_s;
            alert.fast_burn = a.cusum;
            alert.slow_burn = a.threshold;
            alert.fast_events = a.samples;
            cfg.on_alert(SloClass::Interactive, alert);
        }
    }

    /** Engine tile health change (engine dispatcher thread, no engine
     *  locks held). Failure: drop the tile's cache residency, dump the
     *  flight ring for post-mortem, shrink admission capacity. Recovery:
     *  restore capacity. */
    void
    onTileEvent(int tile, bool healthy)
    {
        if (!healthy) {
            cache.invalidateTile(tile);
            ServerObs::get().tile_failures.add(1);
            obs::FlightRecorder::global().trigger("tile_failure");
        }
        size_t capacity_now;
        {
            std::lock_guard<std::mutex> lk(mu);
            healthy_tiles = std::clamp(healthy_tiles + (healthy ? 1 : -1), 0,
                                       total_tiles);
            if (!healthy)
                ++stats.tile_failures;
            capacity_now = effectiveCapacityLocked();
        }
        ServerObs::get().capacity.set(static_cast<int64_t>(capacity_now));
    }

    /** Admission bound scaled by the healthy-tile fraction (>= 1). */
    size_t
    effectiveCapacityLocked() const
    {
        if (total_tiles <= 0 || healthy_tiles >= total_tiles)
            return cfg.queue_capacity;
        const size_t scaled =
            cfg.queue_capacity * static_cast<size_t>(healthy_tiles) /
            static_cast<size_t>(total_tiles);
        return std::max<size_t>(scaled, 1);
    }

    /** Per-class admission bound: while degraded, batch-class traffic is
     *  shed at half the effective capacity so interactive requests keep
     *  their deadline headroom. */
    size_t
    classCapacityLocked(SloClass slo) const
    {
        const size_t cap = effectiveCapacityLocked();
        if (slo == SloClass::Batch && healthy_tiles < total_tiles)
            return std::max<size_t>(cap / 2, 1);
        return cap;
    }

    std::string
    groupKey(const InferenceRequest &req) const
    {
        // Input signature: trailing dims only, so requests with different
        // sample counts still fuse; analytic (empty-input) requests form
        // their own group per model/class.
        std::string sig = "[";
        const auto &shape = req.input.shape();
        for (size_t i = 1; i < shape.size(); ++i)
            sig += std::to_string(shape[i]) + ",";
        sig += "]";
        return req.model + "\x1f" +
               std::to_string(static_cast<int>(req.slo)) + "\x1f" + sig;
    }

    std::future<InferenceReply>
    submit(InferenceRequest req)
    {
        MIRAGE_SPAN("serve.admit");
        if (req.model.empty())
            throw std::invalid_argument("request needs a model name");
        const bool has_input = req.input.size() > 0;
        if (has_input && req.input.rank() < 2)
            throw std::invalid_argument(
                "functional inputs must be [samples, features...]; got " +
                req.input.shapeString());
        if (!has_input && req.samples < 1)
            throw std::invalid_argument("analytic request needs samples >= 1");
        if (req.deadline_s < 0.0)
            throw std::invalid_argument("deadline_s must be >= 0");

        Pending p;
        p.samples = has_input ? req.input.dim(0) : req.samples;
        p.id = obs::nextRequestId();
        p.submitted = Clock::now();
        // Flow origin: the admit slice on the caller's thread. Perfetto
        // draws one arrow per id from here through batcher/engine steps
        // to the reply slice.
        obs::traceFlow("request", p.id, 's');
        std::future<InferenceReply> fut = p.promise.get_future();

        std::unique_lock<std::mutex> lk(mu);
        ++stats.submitted;
        ServerObs::get().submitted.add(1);
        if (stop_accepting || pending_total >= classCapacityLocked(req.slo)) {
            const bool was_shutdown = stop_accepting;
            ++stats.rejected;
            std::optional<SloAlert> alert;
            SloStatus st;
            const double t_now = secondsSince(start, p.submitted);
            alert = monitor(req.slo).recordShed(t_now);
            if (alert)
                ++stats.slo_alerts;
            st = monitor(req.slo).status(t_now);
            lk.unlock();
            ServerObs::get().rejected.add(1);
            ServerObs::get().requests_shed.add(1);
            obs::RequestRecord rec;
            rec.id = p.id;
            rec.cls = req.slo == SloClass::Interactive
                          ? obs::kClassInteractive
                          : obs::kClassBatch;
            rec.shed = true;
            rec.deadline_met = false;
            obs::FlightRecorder::global().record(rec);
            publishBurnGauges(req.slo, st);
            handleAlert(req.slo, alert);
            p.promise.set_exception(std::make_exception_ptr(
                std::runtime_error(was_shutdown ? "server is shut down"
                                                : "admission queue full")));
            return fut;
        }
        const std::string key = groupKey(req);
        Group &group = groups[key];
        if (group.pending.empty()) {
            group.model = req.model;
            group.slo = req.slo;
        }
        p.req = std::move(req);
        group.pending.push_back(std::move(p));
        ++pending_total;
        ServerObs::get().pending.set(static_cast<int64_t>(pending_total));
        lk.unlock();
        wake.notify_one();
        return fut;
    }

    /** True when `group` must flush now (full, due, or shutting down). */
    bool
    due(const Group &group, Clock::time_point now) const
    {
        if (group.pending.empty())
            return false;
        if (stop_accepting ||
            group.pending.size() >= static_cast<size_t>(cfg.max_batch))
            return true;
        const double waited =
            secondsSince(group.pending.front().submitted, now);
        return waited >= cfg.policy(group.slo).max_delay_s;
    }

    void
    batchLoop()
    {
        std::unique_lock<std::mutex> lk(mu);
        for (;;) {
            const Clock::time_point now = Clock::now();

            // Pick the due group; interactive before batch, then oldest
            // request first (priority dequeue).
            std::string pick;
            Clock::time_point pick_oldest{};
            bool pick_interactive = false;
            for (const auto &[key, group] : groups) {
                if (!due(group, now))
                    continue;
                const bool inter = group.slo == SloClass::Interactive;
                const Clock::time_point oldest =
                    group.pending.front().submitted;
                if (pick.empty() || (inter && !pick_interactive) ||
                    (inter == pick_interactive && oldest < pick_oldest)) {
                    pick = key;
                    pick_oldest = oldest;
                    pick_interactive = inter;
                }
            }

            if (!pick.empty()) {
                dispatch(lk, groups.find(pick));
                continue; // re-evaluate with fresh `now`
            }

            if (stop_accepting && pending_total == 0)
                return;

            // Sleep until the earliest flush deadline (or a submission).
            Clock::time_point next = now + std::chrono::seconds(1);
            bool have_deadline = false;
            for (const auto &[key, group] : groups) {
                if (group.pending.empty())
                    continue;
                const double delay = cfg.policy(group.slo).max_delay_s;
                const Clock::time_point t =
                    group.pending.front().submitted +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(delay));
                if (!have_deadline || t < next) {
                    next = t;
                    have_deadline = true;
                }
            }
            if (have_deadline)
                wake.wait_until(lk, next);
            else
                wake.wait(lk);
        }
    }

    /** Pops up to max_batch requests from `it` and runs them as one
     *  engine job. Called with `lk` held; returns with it held. */
    void
    dispatch(std::unique_lock<std::mutex> &lk,
             std::map<std::string, Group>::iterator it)
    {
        MIRAGE_SPAN("serve.flush");
        Group &group = it->second;
        auto batch = std::make_shared<std::vector<Pending>>();
        const size_t take = std::min(group.pending.size(),
                                     static_cast<size_t>(cfg.max_batch));
        batch->reserve(take);
        for (size_t i = 0; i < take; ++i) {
            batch->push_back(std::move(group.pending.front()));
            group.pending.pop_front();
        }
        if (group.pending.empty())
            groups.erase(it);
        pending_total -= take;
        in_flight += take;
        const uint64_t seq =
            g_batch_seq.fetch_add(1, std::memory_order_relaxed);
        ServerObs::get().pending.set(static_cast<int64_t>(pending_total));
        const std::string model = batch->front().req.model;
        const SloClass slo = batch->front().req.slo;
        lk.unlock();

        // Flow step on the batcher thread: every batched request's arrow
        // passes through this flush slice.
        for (const Pending &p : *batch)
            obs::traceFlow("request", p.id, 't');

        const Clock::time_point dispatched = Clock::now();
        std::shared_ptr<ServedModel> entry;
        try {
            entry = repo.acquire(model);
        } catch (...) {
            failBatch(*batch, std::current_exception());
            lk.lock();
            return;
        }

        int64_t total_samples = 0;
        for (const Pending &p : *batch)
            total_samples += p.samples;
        const TileProgramCost cost =
            cache.acquire(entry->cacheKey(), entry->weightElements());

        // submitTask blocks on engine backpressure — intended: a saturated
        // engine pushes back into the batcher, which keeps admitting up to
        // queue_capacity and then rejects. The enqueue span makes that
        // backpressure stall visible on the batcher's timeline.
        {
            MIRAGE_SPAN("serve.enqueue");
            // The engine job inherits the front request's id as its
            // context, so engine.task slices carry the flow onward.
            obs::RequestScope scope(batch->front().id);
            // The engine retries tile failures on surviving tiles within
            // the class deadline budget; only a terminal failure reaches
            // on_fail, which completes every request with the error field
            // set instead of dropping its promise.
            runtime::TaskOptions opts;
            opts.deadline_s = cfg.policy(slo).deadline_s;
            opts.on_fail = [this, batch, slo, seq](const std::string &why) {
                errorBatch(*batch, slo, seq, why);
            };
            engine.submitTask(
                [this, batch, entry, cost, slo, total_samples, dispatched,
                 seq](core::MirageAccelerator &accel, Rng &) {
                    execute(*batch, *entry, cost, slo, total_samples,
                            dispatched, seq, accel);
                },
                opts);
        }
        lk.lock();
    }

    void
    execute(std::vector<Pending> &batch, ServedModel &entry,
            const TileProgramCost &cost, SloClass slo, int64_t total_samples,
            Clock::time_point dispatched, uint64_t seq,
            core::MirageAccelerator &accel)
    {
        MIRAGE_SPAN("serve.execute");
        // Flow step on the engine dispatcher thread (tile execute).
        for (const Pending &p : batch)
            obs::traceFlow("request", p.id, 't');
        std::exception_ptr error;
        nn::Tensor outputs;
        core::PerformanceReport report;
        try {
            if (!entry.shape.layers.empty()) {
                report = accel.estimateInference(entry.shape,
                                                 std::max<int64_t>(
                                                     total_samples, 1));
            }
            if (entry.functional()) {
                outputs = runForward(batch, entry);
            } else {
                for (const Pending &p : batch) {
                    if (p.req.input.size() > 0)
                        throw std::invalid_argument(
                            "model '" + entry.name +
                            "' is shape-only; functional input rejected");
                }
            }
        } catch (...) {
            error = std::current_exception();
        }

        const Clock::time_point end = Clock::now();
        const double batch_time_s = report.time_s + cost.time_s;
        const double batch_energy_j = report.energy_j + cost.energy_j;
        const int64_t out_row =
            entry.functional() && total_samples > 0
                ? outputs.size() / total_samples
                : 0;

        std::vector<double> latencies;
        latencies.reserve(batch.size());
        uint64_t misses = 0;
        int64_t row = 0;
        MIRAGE_SPAN("serve.reply");
        obs::Histogram &latency_hist =
            slo == SloClass::Interactive
                ? ServerObs::get().latency_interactive_ns
                : ServerObs::get().latency_batch_ns;
        for (Pending &p : batch) {
            if (error) {
                p.promise.set_exception(error);
                continue;
            }
            InferenceReply reply;
            reply.version = entry.version;
            reply.tile = cost.tile;
            reply.batch_size = static_cast<int>(batch.size());
            reply.cache_hit = cost.hit;
            reply.queue_s = secondsSince(p.submitted, dispatched);
            reply.latency_s = secondsSince(p.submitted, end);
            reply.model_time_s = batch_time_s;
            reply.energy_j =
                total_samples > 0
                    ? batch_energy_j * static_cast<double>(p.samples) /
                          static_cast<double>(total_samples)
                    : 0.0;
            if (entry.functional()) {
                std::vector<int> shape = outputs.shape();
                shape[0] = static_cast<int>(p.samples);
                nn::Tensor out(shape);
                std::copy(outputs.data() + row * out_row,
                          outputs.data() + (row + p.samples) * out_row,
                          out.data());
                row += p.samples;
                reply.output = std::move(out);
            }
            const double deadline = p.req.deadline_s > 0.0
                                        ? p.req.deadline_s
                                        : cfg.policy(slo).deadline_s;
            reply.deadline_met = reply.latency_s <= deadline;
            if (!reply.deadline_met)
                ++misses;
            latencies.push_back(reply.latency_s);
            ServerObs::get().queue_ns.recordNanosOf(reply.queue_s);
            latency_hist.recordNanosOf(reply.latency_s);

            // Structured completion record: wall-time shares (queue ->
            // execute -> reply) plus the modeled accelerator cost share.
            // reply_now is sampled per request so the shares sum to the
            // record's own total within rounding.
            const Clock::time_point reply_now = Clock::now();
            obs::RequestRecord rec;
            rec.id = p.id;
            rec.batch_seq = seq;
            rec.cls = slo == SloClass::Interactive ? obs::kClassInteractive
                                                   : obs::kClassBatch;
            rec.cache_hit = cost.hit;
            rec.deadline_met = reply.deadline_met;
            rec.tile = cost.tile;
            rec.batch_size = static_cast<int32_t>(batch.size());
            rec.queue_ns = obs::toNanos(reply.queue_s);
            rec.execute_ns = obs::toNanos(secondsSince(dispatched, end));
            rec.reply_ns = obs::toNanos(secondsSince(end, reply_now));
            rec.total_ns = obs::toNanos(secondsSince(p.submitted, reply_now));
            rec.modeled_ns = obs::toNanos(
                total_samples > 0
                    ? batch_time_s * static_cast<double>(p.samples) /
                          static_cast<double>(total_samples)
                    : 0.0);
            rec.modeled_nj = obs::toNanos(reply.energy_j);
            reply.record = rec;
            // Flow terminus inside the reply slice, then retain the
            // record in the always-on flight ring.
            obs::traceFlow("request", p.id, 'f');
            obs::FlightRecorder::global().record(rec);
            p.promise.set_value(std::move(reply));
        }
        if (!error) {
            ServerObs::get().requests_completed.add(batch.size());
            ServerObs::get().requests_missed.add(misses);
        }

        std::optional<SloAlert> alert;
        SloStatus slo_state;
        bool publish_slo = false;
        {
            std::lock_guard<std::mutex> slk(mu);
            if (error) {
                stats.failed += batch.size();
                ServerObs::get().failed.add(batch.size());
            } else {
                ++stats.batches;
                const size_t b =
                    std::min(batch.size(), stats.batch_size_hist.size() - 1);
                ++stats.batch_size_hist[b];
                stats.completed += batch.size();
                if (slo == SloClass::Interactive) {
                    stats.interactive_completed += batch.size();
                    interactive_samples.insert(interactive_samples.end(),
                                               latencies.begin(),
                                               latencies.end());
                } else {
                    stats.batch_completed += batch.size();
                    batch_samples.insert(batch_samples.end(),
                                         latencies.begin(), latencies.end());
                }
                stats.deadline_misses += misses;
                cost.hit ? ++stats.cache_hits : ++stats.cache_misses;
                stats.energy_j += batch_energy_j;
                stats.programming_energy_j += cost.energy_j;
                ServerObs::get().batches.add(1);
                ServerObs::get().batch_size.record(batch.size());
                ServerObs::get().completed.add(batch.size());
                ServerObs::get().deadline_misses.add(misses);

                // Burn-rate accounting: the batch completes at one
                // monitor time; its first `misses` entries are the bad
                // events. Keep the first rising-edge alert (one per
                // excursion by construction).
                const double t_end = secondsSince(start, end);
                SloMonitor &mon = monitor(slo);
                for (size_t i = 0; i < batch.size(); ++i) {
                    auto a = mon.recordRequest(t_end, i < misses);
                    if (a && !alert)
                        alert = a;
                }
                if (alert)
                    ++stats.slo_alerts;
                slo_state = mon.status(t_end);
                publish_slo = true;
            }
        }
        // Outside mu — gauges are atomics and the alert callback may call
        // back into stats()/sloStatus() — but before the in_flight
        // decrement, which keeps the server alive under drain()ers.
        if (publish_slo) {
            publishBurnGauges(slo, slo_state);
            handleAlert(slo, alert);
        }
        {
            std::lock_guard<std::mutex> slk(mu);
            in_flight -= batch.size();
            // Notify under the lock: this runs on the engine's dispatcher
            // thread, and a drain()er may destroy the server the moment
            // it observes in_flight == 0 — holding mu until notify_all
            // returns keeps `idle` alive.
            idle.notify_all();
        }
    }

    /** Concatenates the batch's inputs, runs one forward pass, returns
     *  the stacked outputs. Caller splits rows back per request. */
    nn::Tensor
    runForward(std::vector<Pending> &batch, ServedModel &entry)
    {
        const std::vector<int> &first = batch.front().req.input.shape();
        if (first.empty())
            throw std::invalid_argument("model '" + entry.name +
                                        "' is functional; request "
                                        "carried no input tensor");
        int64_t total = 0;
        for (const Pending &p : batch)
            total += p.samples;
        std::vector<int> shape = first;
        shape[0] = static_cast<int>(total);
        nn::Tensor stacked(shape);
        const int64_t row = stacked.size() / total;
        int64_t offset = 0;
        for (const Pending &p : batch) {
            std::copy(p.req.input.data(),
                      p.req.input.data() + p.req.input.size(),
                      stacked.data() + offset);
            offset += p.req.input.size();
        }
        MIRAGE_ASSERT(offset == total * row, "stacked input size mismatch");

        std::lock_guard<std::mutex> elk(entry.exec_mu);
        return entry.net->forward(stacked, /*training=*/false);
    }

    /** Terminal engine failure (retries/deadline exhausted after tile
     *  failures): every request still gets a reply — with the error field
     *  set — so no submitter is left waiting on a dropped promise. The
     *  failures feed the class's burn monitor as deadline misses. */
    void
    errorBatch(std::vector<Pending> &batch, SloClass slo, uint64_t seq,
               const std::string &why)
    {
        const Clock::time_point end = Clock::now();
        for (Pending &p : batch) {
            InferenceReply reply;
            reply.batch_size = static_cast<int>(batch.size());
            reply.latency_s = secondsSince(p.submitted, end);
            reply.deadline_met = false;
            reply.error = why;
            obs::RequestRecord rec;
            rec.id = p.id;
            rec.batch_seq = seq;
            rec.cls = slo == SloClass::Interactive ? obs::kClassInteractive
                                                   : obs::kClassBatch;
            rec.deadline_met = false;
            rec.batch_size = static_cast<int32_t>(batch.size());
            rec.total_ns = obs::toNanos(reply.latency_s);
            // The request spent its whole life queued behind engine
            // retries and never completed an execute; attribute the full
            // wall time to the queue share so shares still sum to total.
            rec.queue_ns = rec.total_ns;
            reply.record = rec;
            obs::traceFlow("request", p.id, 'f');
            obs::FlightRecorder::global().record(rec);
            p.promise.set_value(std::move(reply));
        }
        ServerObs::get().failed.add(batch.size());
        ServerObs::get().request_errors.add(batch.size());
        ServerObs::get().requests_missed.add(batch.size());

        std::optional<SloAlert> alert;
        SloStatus slo_state;
        {
            std::lock_guard<std::mutex> lk(mu);
            stats.failed += batch.size();
            stats.request_errors += batch.size();
            stats.deadline_misses += batch.size();
            const double t_end = secondsSince(start, end);
            SloMonitor &mon = monitor(slo);
            for (size_t i = 0; i < batch.size(); ++i) {
                auto a = mon.recordRequest(t_end, /*missed=*/true);
                if (a && !alert)
                    alert = a;
            }
            if (alert)
                ++stats.slo_alerts;
            slo_state = mon.status(t_end);
        }
        publishBurnGauges(slo, slo_state);
        handleAlert(slo, alert);
        {
            std::lock_guard<std::mutex> lk(mu);
            in_flight -= batch.size();
            idle.notify_all();
        }
    }

    void
    failBatch(std::vector<Pending> &batch, std::exception_ptr error)
    {
        for (Pending &p : batch)
            p.promise.set_exception(error);
        {
            // Notify under the lock (see execute()): the server may be
            // destroyed as soon as a drain()er sees in_flight == 0.
            std::lock_guard<std::mutex> lk(mu);
            in_flight -= batch.size();
            stats.failed += batch.size();
            ServerObs::get().failed.add(batch.size());
            idle.notify_all();
        }
    }

    void
    drain()
    {
        std::unique_lock<std::mutex> lk(mu);
        idle.wait(lk,
                  [this] { return pending_total == 0 && in_flight == 0; });
    }

    void
    shutdown()
    {
        std::lock_guard<std::mutex> slk(shutdown_mu);
        {
            std::lock_guard<std::mutex> lk(mu);
            stop_accepting = true;
        }
        wake.notify_all();
        if (batcher.joinable())
            batcher.join();
        drain();
    }

    SloStatus
    sloStatus(SloClass slo) const
    {
        std::lock_guard<std::mutex> lk(mu);
        return monitor(slo).status(secondsSince(start, Clock::now()));
    }

    ServerStats
    snapshot() const
    {
        std::unique_lock<std::mutex> lk(mu);
        ServerStats out = stats;
        std::vector<double> inter = interactive_samples;
        std::vector<double> batchv = batch_samples;
        lk.unlock();
        out.wall_time_s = secondsSince(start, Clock::now());
        out.interactive_latency = summarize(std::move(inter));
        out.batch_latency = summarize(std::move(batchv));
        return out;
    }

    SloMonitor &
    monitor(SloClass slo) const
    {
        return slo == SloClass::Interactive ? slo_inter : slo_batch;
    }

    /** Publishes one class's burn-rate state as scrapeable gauges.
     *  Called outside `mu` (gauges are atomics). */
    static void
    publishBurnGauges(SloClass slo, const SloStatus &st)
    {
        ServerObs &o = ServerObs::get();
        if (slo == SloClass::Interactive) {
            o.burn_fast_inter.set(toMilli(st.miss_burn_fast));
            o.burn_slow_inter.set(toMilli(st.miss_burn_slow));
            o.shed_burn_fast_inter.set(toMilli(st.shed_burn_fast));
        } else {
            o.burn_fast_batch.set(toMilli(st.miss_burn_fast));
            o.burn_slow_batch.set(toMilli(st.miss_burn_slow));
            o.shed_burn_fast_batch.set(toMilli(st.shed_burn_fast));
        }
    }

    /** Rising-edge alert fan-out: counter, flight-recorder dump, user
     *  callback. Called outside `mu` so the callback may re-enter
     *  stats()/sloStatus(). */
    void
    handleAlert(SloClass slo, const std::optional<SloAlert> &alert)
    {
        if (!alert)
            return;
        ServerObs::get().slo_alerts.add(1);
        obs::FlightRecorder::global().trigger(toString(alert->kind));
        if (cfg.on_alert)
            cfg.on_alert(slo, *alert);
    }

    ModelRepository &repo;
    runtime::RuntimeEngine &engine;
    ServerConfig cfg;
    WeightCache cache;
    uint64_t retire_listener = 0;
    int tile_listener = 0;
    uint64_t fidelity_listener = 0;
    int total_tiles = 0;   ///< Engine tile count (immutable).
    int healthy_tiles = 0; ///< Guarded by mu; tracks engine tile events.

    /// Per-class burn monitors (guarded by mu; mutable because status()
    /// advances the ring even from const snapshots).
    mutable SloMonitor slo_inter{cfg.slo};
    mutable SloMonitor slo_batch{cfg.slo};

    mutable std::mutex mu;
    std::mutex shutdown_mu; ///< Serializes shutdown() calls.
    std::condition_variable wake; ///< Batcher wake-ups.
    std::condition_variable idle; ///< drain() wake-ups.
    std::map<std::string, Group> groups;
    size_t pending_total = 0;
    size_t in_flight = 0;
    bool stop_accepting = false;

    ServerStats stats; ///< Guarded by mu (wall/latency filled on read).
    std::vector<double> interactive_samples;
    std::vector<double> batch_samples;
    Clock::time_point start;

    std::thread batcher;
};

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

InferenceServer::InferenceServer(ModelRepository &repo,
                                 runtime::RuntimeEngine &engine,
                                 ServerConfig cfg)
    : impl_(std::make_unique<Impl>(repo, engine, cfg))
{
}

InferenceServer::~InferenceServer()
{
    impl_->shutdown();
}

std::future<InferenceReply>
InferenceServer::submit(InferenceRequest req)
{
    return impl_->submit(std::move(req));
}

void
InferenceServer::drain()
{
    impl_->drain();
}

void
InferenceServer::shutdown()
{
    impl_->shutdown();
}

ServerStats
InferenceServer::stats() const
{
    return impl_->snapshot();
}

SloStatus
InferenceServer::sloStatus(SloClass slo) const
{
    return impl_->sloStatus(slo);
}

const ServerConfig &
InferenceServer::config() const
{
    return impl_->cfg;
}

const WeightCache &
InferenceServer::weightCache() const
{
    return impl_->cache;
}

size_t
InferenceServer::effectiveCapacity() const
{
    std::lock_guard<std::mutex> lk(impl_->mu);
    return impl_->effectiveCapacityLocked();
}

} // namespace serve
} // namespace mirage
