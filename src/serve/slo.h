#ifndef MIRAGE_SERVE_SLO_H
#define MIRAGE_SERVE_SLO_H

/**
 * @file
 * SLO burn-rate monitoring (multi-window, SRE-style).
 *
 * Burn rate is the observed bad-event rate divided by the error budget:
 * burn 1.0 consumes the budget exactly; burn 10 consumes it 10x faster.
 * The monitor tracks deadline misses (per completed request) and load
 * sheds (per offered request) over two sliding windows — a fast one that
 * reacts within seconds and a slow one that filters blips — and raises an
 * alert only when BOTH windows exceed the threshold, the standard
 * multi-window guard against paging on noise.
 *
 * Alerts are edge-triggered: one alert per excursion, re-armed only after
 * the condition clears. Recovery (burn falling back under the threshold)
 * never produces an alert.
 *
 * Time is explicit: callers pass seconds-since-start to every method, so
 * InferenceServer feeds its own monotonic clock samples while tests feed
 * synthetic patterns and assert exact window values. Windows are bucketed
 * rings (slow_window_s / kBuckets granularity), so recording is O(1) with
 * no per-event storage. Not internally synchronized — InferenceServer
 * calls it under its own mutex.
 */

#include <cstdint>
#include <optional>

namespace mirage {
namespace serve {

/** Burn-rate monitor knobs. Defaults: 1% budgets, 5 s / 60 s windows,
 *  page at 10x burn after 10 events. */
struct SloMonitorConfig
{
    double miss_budget = 0.01;  ///< Tolerated deadline-miss fraction.
    double shed_budget = 0.01;  ///< Tolerated shed (rejection) fraction.
    double fast_window_s = 5.0; ///< Reactive window.
    double slow_window_s = 60.0; ///< Confirmation window.
    double alert_burn = 10.0;   ///< Alert when both windows reach this.
    uint64_t min_events = 10;   ///< Fast-window event floor (cold-start
                                ///< suppression: no alert before it).

    /** Throws std::invalid_argument on out-of-range knobs. */
    void validate() const;
};

enum class SloAlertKind
{
    DeadlineBurn,  ///< Deadline-miss burn crossed in both windows.
    ShedBurst,     ///< Shed-rate burn crossed in both windows.
    FidelityDrift, ///< Numerical-fidelity drift (obs/fidelity.h) forwarded
                   ///< through the server alert path; fast_burn carries the
                   ///< CUSUM statistic, slow_burn the detector threshold.
};

const char *toString(SloAlertKind kind);

/** One rising-edge alert. */
struct SloAlert
{
    SloAlertKind kind = SloAlertKind::DeadlineBurn;
    double at_s = 0.0;       ///< Monitor time of the crossing.
    double fast_burn = 0.0;  ///< Burn in the fast window at the crossing.
    double slow_burn = 0.0;  ///< Burn in the slow window at the crossing.
    uint64_t fast_events = 0; ///< Events in the fast window.
};

/** Point-in-time monitor state (see InferenceServer::sloStatus). */
struct SloStatus
{
    double miss_burn_fast = 0.0;
    double miss_burn_slow = 0.0;
    double shed_burn_fast = 0.0;
    double shed_burn_slow = 0.0;
    bool miss_firing = false; ///< Deadline excursion currently active.
    bool shed_firing = false; ///< Shed excursion currently active.
    uint64_t completed = 0;   ///< Lifetime completed requests.
    uint64_t missed = 0;      ///< Lifetime deadline misses.
    uint64_t shed = 0;        ///< Lifetime sheds.
};

class SloMonitor
{
  public:
    /// Ring granularity: slow_window_s / kBuckets per bucket (0.5 s at
    /// the default 60 s window).
    static constexpr int kBuckets = 120;

    explicit SloMonitor(SloMonitorConfig cfg = {});

    /** Records one completed request at monitor time `t_s`; returns the
     *  alert when this event is a rising-edge burn crossing. Time must
     *  be non-decreasing across calls (regressions clamp to now). */
    std::optional<SloAlert> recordRequest(double t_s, bool missed);

    /** Records one admission rejection (load shed) at `t_s`. */
    std::optional<SloAlert> recordShed(double t_s);

    /** Window burns and lifetime totals as of `t_s` (advances the ring,
     *  so stale buckets age out even without new events). */
    SloStatus status(double t_s);

    const SloMonitorConfig &config() const { return cfg_; }

  private:
    struct Bucket
    {
        uint64_t completed = 0;
        uint64_t missed = 0;
        uint64_t offered = 0; ///< completed + shed (shed-rate denominator).
        uint64_t shed = 0;
    };

    struct Window
    {
        uint64_t completed = 0;
        uint64_t missed = 0;
        uint64_t offered = 0;
        uint64_t shed = 0;
    };

    void advanceTo(double t_s);
    Window sum(int buckets) const;
    double missBurn(const Window &w) const;
    double shedBurn(const Window &w) const;
    std::optional<SloAlert> evaluate(double t_s);

    SloMonitorConfig cfg_;
    double bucket_s_;
    int fast_buckets_;
    Bucket ring_[kBuckets] = {};
    int64_t cur_bucket_ = -1; ///< Absolute bucket index of "now".
    bool miss_firing_ = false;
    bool shed_firing_ = false;
    uint64_t total_completed_ = 0;
    uint64_t total_missed_ = 0;
    uint64_t total_shed_ = 0;
};

} // namespace serve
} // namespace mirage

#endif // MIRAGE_SERVE_SLO_H
