#ifndef MIRAGE_SERVE_SERVER_H
#define MIRAGE_SERVE_SERVER_H

/**
 * @file
 * InferenceServer: an SLO-aware admission front-end over the
 * runtime::RuntimeEngine.
 *
 * Requests name a model in a ModelRepository and carry an SLO class.
 * A batcher thread groups compatible requests (same model, same class)
 * into micro-batches and flushes a group when it reaches `max_batch`
 * requests or its oldest request has waited the class's `max_delay` —
 * whichever comes first; interactive groups dispatch before batch-class
 * groups. Each micro-batch is mapped onto an engine tile through the
 * WeightCache (charging MMVMU reprogramming cost only on a miss) and
 * executed as one engine job; per-request replies report wall latency,
 * the simulated accelerator time/energy share, and whether the request's
 * deadline held.
 *
 * Determinism: functional models run serially through their entry's
 * accelerator numerics, so per-request outputs are bit-identical across
 * thread counts, tile counts, and micro-batch compositions (rows are
 * independent in every GEMM hot path).
 */

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "obs/context.h"
#include "runtime/engine.h"
#include "serve/repository.h"
#include "serve/slo.h"

namespace mirage {
namespace serve {

/** Service classes with distinct batching and deadline policies. */
enum class SloClass
{
    Interactive, ///< Tight flush delay, tight deadline; dispatched first.
    Batch,       ///< Throughput-oriented: longer batching window.
};

const char *toString(SloClass slo);

/** Per-class policy. All durations are wall-clock seconds. */
struct SloPolicy
{
    /// Max time a request may wait for batch-mates before its group is
    /// flushed (the batching-vs-latency knob).
    double max_delay_s = 0.002;
    /// End-to-end latency target used for deadline accounting.
    double deadline_s = 0.050;
};

/** Server configuration. */
struct ServerConfig
{
    /// Micro-batch size cap (requests fused into one engine job).
    int max_batch = 8;
    /// Admission bound across all pending groups; beyond it submissions
    /// are rejected (the future carries the error).
    size_t queue_capacity = 1024;
    SloPolicy interactive{0.002, 0.050};
    SloPolicy batch{0.050, 1.0};
    /// Burn-rate monitoring knobs, shared by both per-class monitors.
    SloMonitorConfig slo{};
    /// Fired on every rising-edge burn alert (deadline or shed), from the
    /// thread that observed the crossing, outside server locks — safe to
    /// call stats()/sloStatus() from inside. Keep it fast; it sits on the
    /// reply path.
    std::function<void(SloClass, const SloAlert &)> on_alert;

    /** Throws std::invalid_argument on non-positive knobs. */
    void validate() const;

    const SloPolicy &policy(SloClass slo) const
    {
        return slo == SloClass::Interactive ? interactive : batch;
    }
};

/** One inference request. */
struct InferenceRequest
{
    std::string model;
    SloClass slo = SloClass::Interactive;
    /// Functional entries: input rows [samples, features...]; must be
    /// empty for shape-only (analytic) entries.
    nn::Tensor input;
    /// Analytic entries: samples this request represents. Ignored for
    /// functional entries (the input's leading dimension counts).
    int64_t samples = 1;
    /// Overrides the class deadline when positive [s].
    double deadline_s = 0.0;
};

/** Per-request reply. */
struct InferenceReply
{
    nn::Tensor output;        ///< Empty for analytic entries.
    int version = 0;          ///< Served model version.
    int tile = -1;            ///< Engine tile the batch was mapped onto.
    int batch_size = 0;       ///< Requests fused into the micro-batch.
    bool cache_hit = false;   ///< Weights were already programmed.
    double queue_s = 0.0;     ///< Admission-to-dispatch wall time.
    double latency_s = 0.0;   ///< Admission-to-completion wall time.
    double model_time_s = 0;  ///< Simulated accelerator time incl. any
                              ///< reprogramming (whole micro-batch).
    double energy_j = 0.0;    ///< This request's energy share incl. its
                              ///< share of any reprogramming cost.
    bool deadline_met = true; ///< latency_s <= effective deadline.
    /// Non-empty when the request failed terminally: the engine exhausted
    /// its retry attempts or the deadline budget after tile failures. The
    /// reply is still delivered (never a dropped promise); output is empty
    /// and deadline_met is false.
    std::string error;
    /// Structured completion record (request id, micro-batch sequence,
    /// queue/execute/reply nanosecond shares, modeled ns/nJ) — the same
    /// record the flight recorder retains; dumpable as JSONL via
    /// obs::writeRequestJsonl.
    obs::RequestRecord record;
};

/** Exact latency digest computed from sorted samples. */
struct LatencySummary
{
    uint64_t count = 0;
    double mean_s = 0.0;
    double p50_s = 0.0;
    double p95_s = 0.0;
    double p99_s = 0.0;
    double max_s = 0.0;
};

/** Aggregate serving statistics. */
struct ServerStats
{
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t rejected = 0; ///< Admission-queue overflow or shutdown.
    uint64_t failed = 0;   ///< Completed exceptionally (e.g. bad model).
    /// Requests completed with InferenceReply::error set (engine retries
    /// exhausted after tile failures); a subset of `failed`.
    uint64_t request_errors = 0;
    uint64_t tile_failures = 0; ///< Engine tile-failure events observed.
    uint64_t interactive_completed = 0;
    uint64_t batch_completed = 0;
    uint64_t deadline_misses = 0;
    uint64_t slo_alerts = 0; ///< Rising-edge burn alerts (both kinds).
    /// Numerical-fidelity drift alerts forwarded from obs/fidelity.h
    /// (SloAlertKind::FidelityDrift); not counted in `slo_alerts`.
    uint64_t fidelity_alerts = 0;
    uint64_t batches = 0; ///< Micro-batches dispatched.
    /// batch_size_hist[b] = micro-batches holding exactly b requests
    /// (index 0 unused).
    std::vector<uint64_t> batch_size_hist;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    double energy_j = 0.0;             ///< Total including reprogramming.
    double programming_energy_j = 0.0; ///< Reprogramming share.
    double wall_time_s = 0.0;
    LatencySummary interactive_latency;
    LatencySummary batch_latency;

    double cacheHitRate() const
    {
        const uint64_t total = cache_hits + cache_misses;
        return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
    }

    double energyPerRequestJ() const
    {
        return completed > 0 ? energy_j / static_cast<double>(completed)
                             : 0.0;
    }
};

/**
 * The serving front-end. Construction starts the batcher thread;
 * destruction performs a graceful shutdown (pending requests complete).
 * The repository and engine are borrowed and must outlive the server —
 * declare the server last so it shuts down first.
 */
class InferenceServer
{
  public:
    InferenceServer(ModelRepository &repo, runtime::RuntimeEngine &engine,
                    ServerConfig cfg = {});
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Admits one request. Rejection (queue full, server shut down) and
     * execution failures are delivered through the future as exceptions.
     */
    std::future<InferenceReply> submit(InferenceRequest req);

    /** Blocks until every admitted request has completed. */
    void drain();

    /**
     * Graceful shutdown: stops admissions, flushes every pending group
     * immediately, waits for in-flight batches, joins the batcher.
     * Idempotent; the destructor calls it.
     */
    void shutdown();

    /** Snapshot of the aggregate statistics. */
    ServerStats stats() const;

    /** Point-in-time burn-rate state of one class's SLO monitor. */
    SloStatus sloStatus(SloClass slo) const;

    const ServerConfig &config() const;

    /** The tile weight-programming cache (shared with stats reporting). */
    const WeightCache &weightCache() const;

    /**
     * Current admission capacity, scaled by the engine's healthy-tile
     * fraction (graceful degradation): with every tile healthy this equals
     * ServerConfig::queue_capacity; with half the tiles out it is half,
     * never below 1. Batch-class requests are additionally shed at half
     * the degraded capacity so interactive traffic keeps its headroom.
     */
    size_t effectiveCapacity() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace serve
} // namespace mirage

#endif // MIRAGE_SERVE_SERVER_H
