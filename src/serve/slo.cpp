#include "serve/slo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mirage {
namespace serve {

void
SloMonitorConfig::validate() const
{
    if (!(miss_budget > 0.0) || miss_budget > 1.0)
        throw std::invalid_argument(
            "SloMonitorConfig.miss_budget must be in (0, 1]");
    if (!(shed_budget > 0.0) || shed_budget > 1.0)
        throw std::invalid_argument(
            "SloMonitorConfig.shed_budget must be in (0, 1]");
    if (!(fast_window_s > 0.0) || !(slow_window_s > 0.0))
        throw std::invalid_argument("SloMonitorConfig windows must be > 0");
    if (fast_window_s > slow_window_s)
        throw std::invalid_argument(
            "SloMonitorConfig.fast_window_s must be <= slow_window_s");
    if (!(alert_burn > 0.0))
        throw std::invalid_argument(
            "SloMonitorConfig.alert_burn must be > 0");
    if (min_events == 0)
        throw std::invalid_argument(
            "SloMonitorConfig.min_events must be >= 1");
}

const char *
toString(SloAlertKind kind)
{
    switch (kind) {
      case SloAlertKind::DeadlineBurn: return "deadline_burn";
      case SloAlertKind::ShedBurst: return "shed_burst";
      case SloAlertKind::FidelityDrift: return "fidelity_drift";
    }
    return "?";
}

SloMonitor::SloMonitor(SloMonitorConfig cfg) : cfg_(cfg)
{
    cfg_.validate();
    bucket_s_ = cfg_.slow_window_s / static_cast<double>(kBuckets);
    // Fast window rounded up to whole buckets, never past the slow ring.
    fast_buckets_ = std::clamp(
        static_cast<int>(std::ceil(cfg_.fast_window_s / bucket_s_)), 1,
        kBuckets);
}

void
SloMonitor::advanceTo(double t_s)
{
    const int64_t target = static_cast<int64_t>(
        std::floor(std::max(t_s, 0.0) / bucket_s_));
    if (cur_bucket_ < 0) {
        cur_bucket_ = target;
        return;
    }
    if (target <= cur_bucket_)
        return; // time regressions clamp to the current bucket
    const int64_t steps = std::min<int64_t>(target - cur_bucket_, kBuckets);
    for (int64_t i = 1; i <= steps; ++i)
        ring_[(cur_bucket_ + i) % kBuckets] = Bucket{};
    cur_bucket_ = target;
}

SloMonitor::Window
SloMonitor::sum(int buckets) const
{
    Window w;
    for (int i = 0; i < buckets; ++i) {
        const int64_t abs = cur_bucket_ - i;
        if (abs < 0)
            break;
        const Bucket &b = ring_[abs % kBuckets];
        w.completed += b.completed;
        w.missed += b.missed;
        w.offered += b.offered;
        w.shed += b.shed;
    }
    return w;
}

double
SloMonitor::missBurn(const Window &w) const
{
    if (w.completed == 0)
        return 0.0;
    return (static_cast<double>(w.missed) /
            static_cast<double>(w.completed)) /
           cfg_.miss_budget;
}

double
SloMonitor::shedBurn(const Window &w) const
{
    if (w.offered == 0)
        return 0.0;
    return (static_cast<double>(w.shed) /
            static_cast<double>(w.offered)) /
           cfg_.shed_budget;
}

std::optional<SloAlert>
SloMonitor::evaluate(double t_s)
{
    const Window fast = sum(fast_buckets_);
    const Window slow = sum(kBuckets);

    const bool miss_cond =
        fast.completed >= cfg_.min_events &&
        missBurn(fast) >= cfg_.alert_burn &&
        missBurn(slow) >= cfg_.alert_burn;
    const bool shed_cond = fast.offered >= cfg_.min_events &&
                           shedBurn(fast) >= cfg_.alert_burn &&
                           shedBurn(slow) >= cfg_.alert_burn;

    std::optional<SloAlert> alert;
    if (miss_cond && !miss_firing_) {
        alert = SloAlert{SloAlertKind::DeadlineBurn, t_s, missBurn(fast),
                         missBurn(slow), fast.completed};
    } else if (shed_cond && !shed_firing_) {
        alert = SloAlert{SloAlertKind::ShedBurst, t_s, shedBurn(fast),
                         shedBurn(slow), fast.offered};
    }
    miss_firing_ = miss_cond;
    shed_firing_ = shed_cond;
    return alert;
}

std::optional<SloAlert>
SloMonitor::recordRequest(double t_s, bool missed)
{
    advanceTo(t_s);
    Bucket &b = ring_[cur_bucket_ % kBuckets];
    ++b.completed;
    ++b.offered;
    ++total_completed_;
    if (missed) {
        ++b.missed;
        ++total_missed_;
    }
    return evaluate(t_s);
}

std::optional<SloAlert>
SloMonitor::recordShed(double t_s)
{
    advanceTo(t_s);
    Bucket &b = ring_[cur_bucket_ % kBuckets];
    ++b.shed;
    ++b.offered;
    ++total_shed_;
    return evaluate(t_s);
}

SloStatus
SloMonitor::status(double t_s)
{
    advanceTo(t_s);
    const Window fast = sum(fast_buckets_);
    const Window slow = sum(kBuckets);
    SloStatus s;
    s.miss_burn_fast = missBurn(fast);
    s.miss_burn_slow = missBurn(slow);
    s.shed_burn_fast = shedBurn(fast);
    s.shed_burn_slow = shedBurn(slow);
    s.miss_firing = miss_firing_;
    s.shed_firing = shed_firing_;
    s.completed = total_completed_;
    s.missed = total_missed_;
    s.shed = total_shed_;
    return s;
}

} // namespace serve
} // namespace mirage
