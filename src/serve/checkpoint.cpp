#include "serve/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <set>

#include "common/logging.h"
#include "fault/injection.h"
#include "obs/metrics.h"

namespace mirage {
namespace serve {

namespace {

constexpr char kMagic[8] = {'M', 'I', 'R', 'C', 'K', 'P', 'T', '\0'};

// --- little-endian primitives ------------------------------------------
// The writers emit bytes explicitly so checkpoints are portable across
// host endianness; the readers bounds-check every access and throw
// CheckpointError instead of reading past the buffer.

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putI32(std::vector<uint8_t> &out, int32_t v)
{
    putU32(out, static_cast<uint32_t>(v));
}

void
putF32(std::vector<uint8_t> &out, float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU32(out, bits);
}

void
putString(std::vector<uint8_t> &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

/** Bounds-checked cursor over a byte buffer. */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t size) : data_(data), size_(size) {}

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    int32_t i32() { return static_cast<int32_t>(u32()); }

    float
    f32()
    {
        const uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    string()
    {
        const uint32_t len = u32();
        need(len);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
        pos_ += len;
        return s;
    }

    size_t remaining() const { return size_ - pos_; }

  private:
    void
    need(size_t n) const
    {
        if (size_ - pos_ < n)
            throw CheckpointError("checkpoint truncated: need " +
                                      std::to_string(n) + " bytes, have " +
                                      std::to_string(size_ - pos_),
                                  CheckpointError::Kind::Truncated);
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

uint64_t
fnv1a(const uint8_t *data, size_t size)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

void
putTensor(std::vector<uint8_t> &out, const TensorRecord &t)
{
    putString(out, t.name);
    putU32(out, static_cast<uint32_t>(t.shape.size()));
    int64_t expect = 1;
    for (int d : t.shape) {
        putI32(out, d);
        expect *= d;
    }
    if (expect != t.size())
        throw CheckpointError("tensor '" + t.name +
                              "': shape/data size mismatch");
    for (float v : t.data)
        putF32(out, v);
}

TensorRecord
readTensor(Reader &r)
{
    TensorRecord t;
    t.name = r.string();
    const uint32_t rank = r.u32();
    if (rank > 16)
        throw CheckpointError("tensor '" + t.name + "': implausible rank " +
                              std::to_string(rank));
    // Elements can never exceed the bytes left in the buffer; bounding
    // each partial product by that also rules out multiply overflow from
    // crafted dimensions.
    const uint64_t max_count = r.remaining() / 4;
    uint64_t count = 1;
    t.shape.reserve(rank);
    for (uint32_t i = 0; i < rank; ++i) {
        const int32_t d = r.i32();
        if (d < 0)
            throw CheckpointError("tensor '" + t.name +
                                  "': negative dimension");
        if (d != 0 && count > max_count / static_cast<uint64_t>(d))
            throw CheckpointError("tensor '" + t.name +
                                  "': data exceeds checkpoint size");
        t.shape.push_back(d);
        count *= static_cast<uint64_t>(d);
    }
    if (count > max_count)
        throw CheckpointError("tensor '" + t.name +
                              "': data exceeds checkpoint size");
    t.data.resize(static_cast<size_t>(count));
    for (auto &v : t.data)
        v = r.f32();
    return t;
}

} // namespace

int64_t
Checkpoint::meta(const std::string &key, int64_t fallback) const
{
    const auto it = metadata.find(key);
    return it != metadata.end() ? it->second : fallback;
}

bool
Checkpoint::hasMeta(const std::string &key) const
{
    return metadata.count(key) != 0;
}

const TensorRecord *
Checkpoint::find(const std::string &name) const
{
    for (const TensorRecord &t : tensors)
        if (t.name == name)
            return &t;
    return nullptr;
}

int64_t
Checkpoint::parameterCount() const
{
    int64_t total = 0;
    for (const TensorRecord &t : tensors)
        total += t.size();
    return total;
}

Checkpoint
snapshot(nn::Layer &model, const std::string &model_name,
         const nn::Optimizer *opt)
{
    Checkpoint ckpt;
    ckpt.model_name = model_name;

    std::set<std::string> seen;
    const std::vector<nn::NamedParam> params = model.namedParams();
    ckpt.tensors.reserve(params.size());
    for (const nn::NamedParam &np : params) {
        if (!seen.insert(np.path).second)
            throw CheckpointError("duplicate parameter path '" + np.path +
                                  "' in model '" + model_name + "'");
        TensorRecord t;
        t.name = np.path;
        t.shape = np.param->value.shape();
        t.data = np.param->value.vec();
        ckpt.tensors.push_back(std::move(t));
    }

    if (opt != nullptr) {
        ckpt.optimizer_type = opt->typeName();
        ckpt.optimizer_step = opt->stepCount();
        for (const nn::NamedParam &np : params) {
            for (const std::string &slot : opt->stateSlots()) {
                std::vector<float> data = opt->stateSlot(np.param, slot);
                if (data.empty())
                    continue; // slot not materialized yet
                TensorRecord t;
                t.name = np.path + "/" + slot;
                t.shape = {static_cast<int>(data.size())};
                t.data = std::move(data);
                ckpt.optimizer_state.push_back(std::move(t));
            }
        }
    }
    return ckpt;
}

void
restore(const Checkpoint &ckpt, nn::Layer &model, nn::Optimizer *opt)
{
    const std::vector<nn::NamedParam> params = model.namedParams();
    if (params.size() != ckpt.tensors.size())
        throw CheckpointError(
            "model has " + std::to_string(params.size()) +
                " parameters but checkpoint '" + ckpt.model_name + "' has " +
                std::to_string(ckpt.tensors.size()),
            CheckpointError::Kind::Mismatch);

    for (const nn::NamedParam &np : params) {
        const TensorRecord *t = ckpt.find(np.path);
        if (t == nullptr)
            throw CheckpointError("parameter '" + np.path +
                                      "' missing from checkpoint '" +
                                      ckpt.model_name + "'",
                                  CheckpointError::Kind::Mismatch);
        if (t->shape != np.param->value.shape())
            throw CheckpointError(
                "parameter '" + np.path + "' shape mismatch: model " +
                    np.param->value.shapeString() + ", checkpoint has " +
                    std::to_string(t->size()) + " elements",
                CheckpointError::Kind::Mismatch);
        np.param->value.vec() = t->data;
    }

    if (opt != nullptr && !ckpt.optimizer_type.empty()) {
        if (opt->typeName() != ckpt.optimizer_type)
            throw CheckpointError("checkpoint optimizer is '" +
                                      ckpt.optimizer_type +
                                      "' but restoring '" + opt->typeName() +
                                      "'",
                                  CheckpointError::Kind::Mismatch);
        opt->setStepCount(ckpt.optimizer_step);
        for (const TensorRecord &t : ckpt.optimizer_state) {
            const size_t sep = t.name.rfind('/');
            if (sep == std::string::npos)
                throw CheckpointError("malformed optimizer record '" +
                                      t.name + "'");
            const std::string path = t.name.substr(0, sep);
            const std::string slot = t.name.substr(sep + 1);
            nn::Param *target = nullptr;
            for (const nn::NamedParam &np : params)
                if (np.path == path) {
                    target = np.param;
                    break;
                }
            if (target == nullptr)
                throw CheckpointError("optimizer state '" + t.name +
                                      "' refers to unknown parameter");
            if (t.size() != target->value.size())
                throw CheckpointError("optimizer state '" + t.name +
                                      "' size mismatch");
            opt->setStateSlot(target, slot, t.data);
        }
    }
}

std::vector<uint8_t>
serialize(const Checkpoint &ckpt)
{
    std::vector<uint8_t> body;
    putString(body, ckpt.model_name);
    putU32(body, static_cast<uint32_t>(ckpt.tensors.size()));
    for (const TensorRecord &t : ckpt.tensors)
        putTensor(body, t);
    putString(body, ckpt.optimizer_type);
    putU64(body, static_cast<uint64_t>(ckpt.optimizer_step));
    putU32(body, static_cast<uint32_t>(ckpt.optimizer_state.size()));
    for (const TensorRecord &t : ckpt.optimizer_state)
        putTensor(body, t);
    // v2 metadata section; std::map iterates in sorted key order, so the
    // byte stream is deterministic for a given metadata set.
    putU32(body, static_cast<uint32_t>(ckpt.metadata.size()));
    for (const auto &[key, value] : ckpt.metadata) {
        putString(body, key);
        putU64(body, static_cast<uint64_t>(value));
    }

    std::vector<uint8_t> out;
    out.reserve(body.size() + 28);
    // Byte-wise append: a range insert from the char array trips GCC 12's
    // -Wstringop-overflow false positive (same story as models/zoo PR 1).
    for (char c : kMagic)
        out.push_back(static_cast<uint8_t>(c));
    putU32(out, kFormatVersion);
    putU64(out, body.size());
    out.insert(out.end(), body.begin(), body.end());
    putU64(out, fnv1a(body.data(), body.size()));
    return out;
}

Checkpoint
deserialize(const std::vector<uint8_t> &bytes)
{
    if (bytes.size() < sizeof(kMagic) + 12) {
        // Too short even for the fixed header: a torn write, not garbage.
        throw CheckpointError(
            "checkpoint truncated: " + std::to_string(bytes.size()) +
                " bytes is shorter than the " +
                std::to_string(sizeof(kMagic) + 12) + "-byte header",
            CheckpointError::Kind::Truncated);
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        throw CheckpointError("not a Mirage checkpoint (bad magic)");
    Reader r(bytes.data() + sizeof(kMagic), bytes.size() - sizeof(kMagic));
    const uint32_t version = r.u32();
    if (version != kFormatVersion)
        throw CheckpointError(
            "unsupported checkpoint format version " +
            std::to_string(version) + " (this build reads only version " +
            std::to_string(kFormatVersion) +
            (version < kFormatVersion
                 ? "; older files lack the resume-metadata section)"
                 : ")"));
    const uint64_t body_len = r.u64();
    // Subtraction, not addition: `body_len + 8` could wrap for a crafted
    // length and pass the check with a huge body_len.
    if (r.remaining() < 8 || body_len != r.remaining() - 8) {
        // Fewer bytes than the header promises = a cut-off file;
        // more = structural damage (e.g. a corrupted length field).
        const bool short_file =
            r.remaining() < 8 || r.remaining() - 8 < body_len;
        throw CheckpointError(
            "checkpoint " +
                std::string(short_file ? "truncated" : "length mismatch") +
                ": header says " + std::to_string(body_len) +
                " body bytes, file has " + std::to_string(r.remaining()) +
                " (+8 checksum)",
            short_file ? CheckpointError::Kind::Truncated
                       : CheckpointError::Kind::Malformed);
    }

    const uint8_t *body = bytes.data() + sizeof(kMagic) + 12;
    // Verify the checksum before parsing: any in-body corruption then
    // reports deterministically as ChecksumMismatch instead of whatever
    // parse error the flipped bytes happen to produce.
    {
        Reader cr(body + body_len, 8);
        const uint64_t stored = cr.u64();
        const uint64_t computed = fnv1a(body, static_cast<size_t>(body_len));
        if (stored != computed)
            throw CheckpointError(
                "checkpoint checksum mismatch (corrupt file): stored " +
                    std::to_string(stored) + ", computed " +
                    std::to_string(computed),
                CheckpointError::Kind::ChecksumMismatch);
    }
    Reader br(body, static_cast<size_t>(body_len));
    Checkpoint ckpt;
    ckpt.version = version;
    ckpt.model_name = br.string();
    const uint32_t tensor_count = br.u32();
    ckpt.tensors.reserve(tensor_count);
    for (uint32_t i = 0; i < tensor_count; ++i)
        ckpt.tensors.push_back(readTensor(br));
    ckpt.optimizer_type = br.string();
    ckpt.optimizer_step = static_cast<int64_t>(br.u64());
    const uint32_t state_count = br.u32();
    ckpt.optimizer_state.reserve(state_count);
    for (uint32_t i = 0; i < state_count; ++i)
        ckpt.optimizer_state.push_back(readTensor(br));
    const uint32_t meta_count = br.u32();
    for (uint32_t i = 0; i < meta_count; ++i) {
        std::string key = br.string();
        const int64_t value = static_cast<int64_t>(br.u64());
        if (!ckpt.metadata.emplace(std::move(key), value).second)
            throw CheckpointError("duplicate metadata key in checkpoint");
    }
    if (br.remaining() != 0)
        throw CheckpointError("trailing bytes inside checkpoint body");
    return ckpt;
}

namespace {

bool
fileExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    std::fclose(f);
    return true;
}

/** The fallback generation saveFile keeps beside every checkpoint. */
std::string
lastGoodPath(const std::string &path)
{
    return path + ".last_good";
}

Checkpoint
loadFileNoFallback(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw CheckpointError("cannot open checkpoint '" + path + "'",
                              CheckpointError::Kind::Io);
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    const bool error = std::ferror(f) != 0;
    std::fclose(f);
    if (error)
        throw CheckpointError("I/O error reading '" + path + "'",
                              CheckpointError::Kind::Io);
    return deserialize(bytes);
}

} // namespace

void
saveFile(const Checkpoint &ckpt, const std::string &path)
{
    std::vector<uint8_t> bytes = serialize(ckpt);

    // Injected write corruption ("ckpt.corrupt"): flip one byte in the
    // middle of the body so the primary fails its checksum while the
    // rotated last_good generation stays intact.
    static fault::FaultPoint corrupt_point("ckpt.corrupt");
    if (corrupt_point.shouldFire())
        bytes[bytes.size() / 2] ^= 0xff;

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        throw CheckpointError("cannot open '" + tmp + "' for writing",
                              CheckpointError::Kind::Io);
    const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool flushed = std::fclose(f) == 0;
    if (written != bytes.size() || !flushed) {
        std::remove(tmp.c_str());
        throw CheckpointError("short write to '" + tmp + "'",
                              CheckpointError::Kind::Io);
    }
    // Rotate the previous generation to ".last_good" before the new one
    // takes its place: if this save was torn or corrupted, loadFile still
    // has one intact checkpoint to fall back to.
    if (fileExists(path) &&
        std::rename(path.c_str(), lastGoodPath(path).c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CheckpointError("cannot rotate '" + path + "' to '" +
                                  lastGoodPath(path) + "'",
                              CheckpointError::Kind::Io);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw CheckpointError("cannot rename '" + tmp + "' to '" + path +
                                  "'",
                              CheckpointError::Kind::Io);
    }
}

Checkpoint
loadFile(const std::string &path)
{
    try {
        return loadFileNoFallback(path);
    } catch (const CheckpointError &primary_err) {
        const std::string fallback = lastGoodPath(path);
        if (!primary_err.recoverable() || !fileExists(fallback))
            throw;
        MIRAGE_WARN("checkpoint '", path,
                    "' is damaged (", primary_err.what(),
                    "); falling back to '", fallback, "'");
        static obs::Counter &fallbacks =
            obs::MetricsRegistry::global().counter("serve.ckpt.fallbacks");
        try {
            Checkpoint ckpt = loadFileNoFallback(fallback);
            fallbacks.add(1);
            fault::recovered("ckpt.corrupt");
            return ckpt;
        } catch (const CheckpointError &) {
            throw primary_err; // both generations damaged: report primary
        }
    }
}

} // namespace serve
} // namespace mirage
