#ifndef MIRAGE_SERVE_REPOSITORY_H
#define MIRAGE_SERVE_REPOSITORY_H

/**
 * @file
 * ModelRepository: versioned, ref-counted served-model entries, and the
 * LRU weight-programming cache that makes Mirage's serving economics
 * visible.
 *
 * Photonic MMVMU weight programming (DAC conversions + phase-shifter
 * reprogramming) dominates the serving energy budget, so the cache tracks
 * which model's weights are currently programmed on each engine tile and
 * charges the arch::MirageEnergyModel / MiragePerfModel reprogramming
 * cost only on a miss — requests that reuse a programmed model stream at
 * marginal cost.
 *
 * Hot-swap protocol: publish a new version (becomes the acquire target
 * immediately), let in-flight requests drain (their shared_ptr keeps the
 * old entry alive), then retireOldVersions() to drop the table references.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/energy_model.h"
#include "arch/perf_model.h"
#include "core/mirage.h"
#include "models/zoo.h"
#include "serve/checkpoint.h"

namespace mirage {
namespace serve {

/**
 * Builds a functional network on the given backend; used to reconstruct a
 * model architecture before restoring checkpoint weights into it.
 */
using ModelFactory = std::function<std::unique_ptr<nn::Sequential>(
    nn::GemmBackend *, Rng &)>;

/**
 * One immutable served version of a model. Shape-only entries support
 * analytic serving (latency/energy estimates); entries with a net also
 * run real forward passes through the accelerator numerics.
 */
struct ServedModel
{
    std::string name;
    int version = 1;
    models::ModelShape shape;

    /// Accelerator owning the net's GEMM backend (null for shape-only).
    std::shared_ptr<core::MirageAccelerator> accel;
    /// Functional network (null for shape-only entries).
    std::shared_ptr<nn::Sequential> net;
    /// Serializes functional forwards: layers cache activations, so one
    /// micro-batch runs through the net at a time.
    std::mutex exec_mu;

    bool functional() const { return net != nullptr; }

    /** Weight values that must be programmed before serving this entry. */
    int64_t weightElements() const { return shape.weightElements(); }

    /** Cache identity: one tile residency slot per (name, version). */
    std::string cacheKey() const
    {
        return name + "@v" + std::to_string(version);
    }
};

/**
 * Versioned model table. All methods are thread-safe; acquire() returns
 * shared ownership, so a retired version stays usable until the last
 * in-flight request drops it.
 */
class ModelRepository
{
  public:
    /**
     * @param accel_cfg configuration for the per-entry accelerators that
     *                  back functional models (same config the serving
     *                  engine tiles use, so estimates agree).
     * @param seed      root seed for factory weight initialization;
     *                  entry e draws from Rng(seed).split(e).
     */
    explicit ModelRepository(arch::MirageConfig accel_cfg = {},
                             uint64_t seed = 0x53455256u);

    /** Publishes an analytic (shape-only) entry; returns its version. */
    int publishShape(const std::string &name, models::ModelShape shape);

    /**
     * Publishes a functional entry: builds the net via `factory` on a
     * fresh accelerator-backed GEMM backend. Returns the version.
     */
    int publishModel(const std::string &name, models::ModelShape shape,
                     const ModelFactory &factory);

    /**
     * Publishes a functional entry and restores `ckpt` into it; the
     * factory must produce the architecture the checkpoint was saved
     * from (restore throws CheckpointError otherwise).
     */
    int publishCheckpoint(const std::string &name, const Checkpoint &ckpt,
                          models::ModelShape shape,
                          const ModelFactory &factory);

    /** publishCheckpoint() from a file saved with serve::saveFile. */
    int publishCheckpointFile(const std::string &name,
                              const std::string &path,
                              models::ModelShape shape,
                              const ModelFactory &factory);

    /** Newest live version; throws std::out_of_range for unknown names. */
    std::shared_ptr<ServedModel> acquire(const std::string &name) const;

    /** A specific live version; throws std::out_of_range when absent. */
    std::shared_ptr<ServedModel> acquire(const std::string &name,
                                         int version) const;

    /** Newest live version number; 0 when the name is unknown. */
    int currentVersion(const std::string &name) const;

    /** Drops every version of `name` older than the newest (hot-swap
     *  retirement); returns how many were retired. */
    size_t retireOldVersions(const std::string &name);

    /** Drops one version from the table; false when absent. */
    bool retire(const std::string &name, int version);

    /** Live versions of `name` still in the table. */
    size_t liveVersions(const std::string &name) const;

    /** Sorted names with at least one live version. */
    std::vector<std::string> modelNames() const;

    /** Total versions retired over the repository lifetime. */
    uint64_t retiredCount() const;

    /**
     * Callback invoked for each version dropped by retire() /
     * retireOldVersions(). Runs under the repository lock: listeners must
     * not call back into the repository. The InferenceServer registers
     * one to invalidate the retired version's WeightCache residency, so
     * retired models stop occupying tile slots.
     */
    using RetireListener = std::function<void(const ServedModel &)>;

    /** Registers a listener; returns an id for removeRetireListener(). */
    uint64_t addRetireListener(RetireListener fn);

    /** Unregisters; no callback runs after this returns. */
    void removeRetireListener(uint64_t id);

    const arch::MirageConfig &acceleratorConfig() const { return accel_cfg_; }

  private:
    std::shared_ptr<ServedModel>
    buildFunctionalEntry(const std::string &name, models::ModelShape shape,
                         const ModelFactory &factory);
    int publishEntry(std::shared_ptr<ServedModel> entry);
    void notifyRetired(const ServedModel &entry); ///< Caller holds mu_.

    mutable std::mutex mu_;
    arch::MirageConfig accel_cfg_;
    uint64_t seed_;
    uint64_t entries_created_ = 0;
    uint64_t retired_ = 0;
    std::map<std::string, std::vector<std::shared_ptr<ServedModel>>> table_;
    std::map<uint64_t, RetireListener> listeners_;
    uint64_t next_listener_id_ = 1;
};

/** Outcome of mapping one micro-batch onto an engine tile. */
struct TileProgramCost
{
    int tile = -1;
    bool hit = false;      ///< Model weights were already programmed.
    double time_s = 0.0;   ///< Reprogramming latency charged (0 on hit).
    double energy_j = 0.0; ///< Reprogramming energy charged (0 on hit).
};

/**
 * LRU weight-programming cache: one slot per engine tile, keyed by
 * ServedModel::cacheKey(). acquire() prefers a tile that already holds
 * the model (hit, zero cost); otherwise it evicts the least-recently-used
 * tile and charges the full reprogramming cost from the arch models.
 * Thread-safe.
 */
class WeightCache
{
  public:
    WeightCache(int tiles, const arch::MirageConfig &cfg);

    /** Picks a tile for one micro-batch of `key` and returns the cost. */
    TileProgramCost acquire(const std::string &key, int64_t weight_elements);

    /** Forgets `key` everywhere (hot-swap retirement). */
    void invalidate(const std::string &key);

    /**
     * Forgets whatever is programmed on `tile` (tile failure: the dead
     * tile's analog weights are gone, so its next use is charged the full
     * reprogramming cost). Other tiles' residency, LRU order, and the
     * hit/miss accounting are untouched. Out-of-range tiles are ignored.
     */
    void invalidateTile(int tile);

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0; ///< Misses that displaced a programmed model.
        double programming_time_s = 0.0;
        double programming_energy_j = 0.0;

        double
        hitRate() const
        {
            const uint64_t total = hits + misses;
            return total > 0 ? static_cast<double>(hits) / total : 0.0;
        }
    };

    Stats stats() const;
    int tiles() const { return static_cast<int>(slots_.size()); }

  private:
    struct Slot
    {
        std::string key; ///< Empty: nothing programmed yet.
        uint64_t last_use = 0;
    };

    mutable std::mutex mu_;
    std::vector<Slot> slots_;
    uint64_t clock_ = 0;
    Stats stats_;
    arch::MiragePerfModel perf_;
    arch::MirageEnergyModel energy_;
};

} // namespace serve
} // namespace mirage

#endif // MIRAGE_SERVE_REPOSITORY_H
