#ifndef MIRAGE_SERVE_CHECKPOINT_H
#define MIRAGE_SERVE_CHECKPOINT_H

/**
 * @file
 * Versioned, endian-safe binary checkpoint format for trained models.
 *
 * A checkpoint captures a model's parameters (keyed by their unique
 * Layer::namedParams path) and, optionally, optimizer state (per-parameter
 * slots plus the global step counter), so training survives a process
 * restart and the serving repository can load models by file.
 *
 * Wire format (all integers little-endian regardless of host endianness):
 *
 *   8 bytes  magic "MIRCKPT\0"
 *   u32      format version (kFormatVersion)
 *   u64      body length [bytes]
 *   body     model name, tensor records, optimizer section
 *   u64      FNV-1a checksum of the body bytes
 *
 * Every tensor record is {string name, u32 rank, i32 dims..., f32 data...}.
 * Floats are stored as IEEE-754 bit patterns, so a save -> load round trip
 * is bit-exact and a restored model's forward pass is bit-identical to the
 * saved one (with the deterministic default numerics).
 *
 * All errors (I/O, corruption, model/checkpoint mismatch) are reported as
 * CheckpointError — never process exit — because serving must survive a
 * bad file.
 */

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/model.h"
#include "nn/optimizer.h"

namespace mirage {
namespace serve {

/** Raised on malformed files, I/O failures, and shape mismatches. */
class CheckpointError : public std::runtime_error
{
  public:
    /** What went wrong, so recovery can decide what is worth retrying. */
    enum class Kind
    {
        Malformed,        ///< Structurally invalid (bad magic, bad record).
        Truncated,        ///< File ends before the declared data does.
        ChecksumMismatch, ///< Body bytes don't match the stored FNV-1a.
        Io,               ///< open/read/write/rename failed.
        Mismatch          ///< Checkpoint doesn't fit the target model.
    };

    explicit CheckpointError(const std::string &what,
                             Kind kind = Kind::Malformed)
        : std::runtime_error(what), kind_(kind)
    {
    }

    Kind kind() const { return kind_; }

    /// loadFile falls back to the ".last_good" generation only for kinds
    /// a stale-but-intact sibling can actually fix: a damaged file on
    /// disk, not a structural or model mismatch.
    bool recoverable() const
    {
        return kind_ == Kind::Truncated || kind_ == Kind::ChecksumMismatch;
    }

  private:
    Kind kind_;
};

/**
 * Current wire-format version. v2 added the metadata section (trainer
 * resume state); earlier versions cannot express it, so deserialize()
 * rejects any version other than the current one — a checkpoint that
 * silently lost its resume state would break the train/ bit-exact-resume
 * contract.
 */
inline constexpr uint32_t kFormatVersion = 2;

/** One named tensor (a parameter or an optimizer state slot). */
struct TensorRecord
{
    std::string name;
    std::vector<int> shape;
    std::vector<float> data;

    int64_t size() const { return static_cast<int64_t>(data.size()); }
};

/** An in-memory checkpoint: model parameters plus optional optimizer state. */
struct Checkpoint
{
    uint32_t version = kFormatVersion;
    std::string model_name;
    std::vector<TensorRecord> tensors;

    /// Optimizer::typeName() of the snapshotted optimizer; empty when the
    /// checkpoint carries no optimizer state.
    std::string optimizer_type;
    int64_t optimizer_step = 0;
    /// State slots named "<param path>/<slot>", e.g. "l0.dense.weight/m".
    std::vector<TensorRecord> optimizer_state;

    /// Auxiliary integer state (v2+), serialized in sorted key order. The
    /// train/ subsystem stores everything a bit-exact resume needs beyond
    /// parameters and optimizer slots here: "train/step", "train/epoch",
    /// "train/cursor", the data-shuffle RNG base seed ("train/data_seed",
    /// a uint64 bit pattern), and the base learning rate as IEEE-754 bits
    /// ("train/base_lr_bits"). Doubles/uint64s are stored bit-cast.
    std::map<std::string, int64_t> metadata;

    /** Metadata value, or `fallback` when the key is absent. */
    int64_t meta(const std::string &key, int64_t fallback = 0) const;

    /** True when the key is present. */
    bool hasMeta(const std::string &key) const;

    /** Record by name, or nullptr. */
    const TensorRecord *find(const std::string &name) const;

    /** Total parameter elements across all tensors. */
    int64_t parameterCount() const;
};

/**
 * Captures `model`'s parameters (and `opt`'s state when given) into an
 * in-memory checkpoint. Parameter paths must be unique; duplicates throw.
 */
Checkpoint snapshot(nn::Layer &model, const std::string &model_name,
                    const nn::Optimizer *opt = nullptr);

/**
 * Restores a checkpoint into `model` (and `opt` when given). The model
 * must have exactly the checkpoint's parameter set (same paths, same
 * shapes); any mismatch throws CheckpointError with the offending path.
 * Restoring optimizer state into an optimizer of a different typeName
 * throws; restoring a parameter-only checkpoint with `opt != nullptr` is
 * allowed and leaves the optimizer untouched.
 */
void restore(const Checkpoint &ckpt, nn::Layer &model,
             nn::Optimizer *opt = nullptr);

/** Serializes to the wire format described above. */
std::vector<uint8_t> serialize(const Checkpoint &ckpt);

/** Parses the wire format; throws CheckpointError on any corruption. */
Checkpoint deserialize(const std::vector<uint8_t> &bytes);

/**
 * serialize() to a file (atomic: writes "<path>.tmp" then renames). When
 * `path` already holds a previous checkpoint, that generation is first
 * rotated to "<path>.last_good", so one intact older generation always
 * survives a torn or corrupted write of the newest one. The
 * "ckpt.corrupt" injection point (fault/injection.h) flips a body byte of
 * the primary write — after the rotation — to exercise the fallback.
 */
void saveFile(const Checkpoint &ckpt, const std::string &path);

/**
 * deserialize() from a file. If the primary file is damaged (truncated or
 * checksum-mismatched — see CheckpointError::recoverable()) and a
 * "<path>.last_good" sibling exists, loads that instead with a loud
 * warning and a "serve.ckpt.fallbacks" counter bump; the original error
 * is rethrown when no fallback exists or the fallback is damaged too.
 */
Checkpoint loadFile(const std::string &path);

} // namespace serve
} // namespace mirage

#endif // MIRAGE_SERVE_CHECKPOINT_H
