#include "core/mirage.h"

#include <cmath>

#include "common/logging.h"

namespace mirage {
namespace core {

void
PerformanceReport::validateUnits() const
{
    MIRAGE_ASSERT(time_s >= 0.0 && macs >= 0, "negative time or MAC count");
    MIRAGE_ASSERT(compute_power_w >= 0.0, "negative compute power");
    MIRAGE_ASSERT(total_power_w >= compute_power_w,
                  "total power [W] must include the compute scope");
    const double expect_energy = compute_power_w * time_s;
    MIRAGE_ASSERT(std::fabs(energy_j - expect_energy) <=
                      1e-9 * std::max(1.0, std::fabs(expect_energy)),
                  "energy_j must equal compute_power_w * time_s [J]");
    const double expect_edp = energy_j * time_s;
    MIRAGE_ASSERT(std::fabs(edp - expect_edp) <=
                      1e-9 * std::max(1.0, std::fabs(expect_edp)),
                  "edp must equal energy_j * time_s [J*s]");
}

MirageAccelerator::MirageAccelerator(arch::MirageConfig cfg)
    : cfg_(std::move(cfg)), perf_(cfg_), energy_(cfg_)
{
    numerics::FormatGemmConfig fmt;
    fmt.mirage_bfp = {cfg_.bm, cfg_.g, bfp::Rounding::Nearest};
    fmt.moduli = cfg_.moduliSet();
    emulated_backend_ = std::make_unique<nn::FormatBackend>(
        numerics::DataFormat::MirageBfpRns, fmt);
    photonic_backend_ = std::make_unique<nn::PhotonicBackend>(
        cfg_.bm, cfg_.g, cfg_.moduli_k, cfg_.mdpu_rows);
}

std::vector<float>
MirageAccelerator::gemm(const std::vector<float> &a,
                        const std::vector<float> &b, int m, int k, int n,
                        ExecutionMode mode)
{
    return backend(mode)->gemm(a, b, m, k, n, false, false);
}

void
MirageAccelerator::gemm(std::span<const float> a, std::span<const float> b,
                        std::span<float> out, int m, int k, int n,
                        ExecutionMode mode)
{
    backend(mode)->gemm(a, b, m, k, n, false, false, out);
}

nn::GemmBackend *
MirageAccelerator::backend(ExecutionMode mode)
{
    return mode == ExecutionMode::Emulated ? emulated_backend_.get()
                                           : photonic_backend_.get();
}

PerformanceReport
MirageAccelerator::report(const models::ModelShape &model,
                          const std::vector<models::GemmTask> &tasks,
                          arch::DataflowPolicy policy) const
{
    const ScheduleResult sched = scheduleMirage(perf_, tasks, policy);
    const arch::PowerBreakdown power = energy_.peakPower();

    PerformanceReport rep;
    rep.model_name = model.name;
    rep.time_s = sched.total_time_s;
    rep.macs = sched.total_macs;
    rep.avg_spatial_util = sched.avg_spatial_util;
    rep.compute_power_w = power.computeTotal();
    rep.total_power_w = power.total();
    rep.energy_j = rep.compute_power_w * rep.time_s;
    rep.edp = rep.energy_j * rep.time_s;
    rep.validateUnits();
    return rep;
}

PerformanceReport
MirageAccelerator::estimateTraining(const models::ModelShape &model,
                                    int64_t batch,
                                    arch::DataflowPolicy policy) const
{
    return report(model, models::trainingTasks(model, batch), policy);
}

PerformanceReport
MirageAccelerator::estimateInference(const models::ModelShape &model,
                                     int64_t batch,
                                     arch::DataflowPolicy policy) const
{
    return report(model, models::inferenceTasks(model, batch), policy);
}

arch::MirageSummary
MirageAccelerator::summary() const
{
    return energy_.summary();
}

} // namespace core
} // namespace mirage
