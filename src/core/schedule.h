#ifndef MIRAGE_CORE_SCHEDULE_H
#define MIRAGE_CORE_SCHEDULE_H

/**
 * @file
 * Dataflow scheduling over a model's GEMM tasks (paper Sec. VI-A3):
 * fixed DF1/DF2/DF3, OPT1 (best fixed dataflow per training-op type) and
 * OPT2 (best dataflow per GEMM). Scheduling is offline and analytic, as in
 * the paper.
 */

#include <vector>

#include "arch/perf_model.h"
#include "arch/systolic.h"
#include "models/zoo.h"

namespace mirage {
namespace core {

/** One scheduled task: the chosen dataflow and its predicted timing. */
struct ScheduledTask
{
    models::GemmTask task;
    arch::Dataflow dataflow = arch::Dataflow::DF1;
    arch::GemmPerf perf;
};

/** Full schedule for a model on one accelerator. */
struct ScheduleResult
{
    std::vector<ScheduledTask> tasks;
    double total_time_s = 0.0;
    int64_t total_macs = 0;
    /// MAC-weighted mean spatial utilization.
    double avg_spatial_util = 0.0;
};

/** Schedules tasks on the Mirage performance model (DF3 unavailable). */
ScheduleResult scheduleMirage(const arch::MiragePerfModel &model,
                              const std::vector<models::GemmTask> &tasks,
                              arch::DataflowPolicy policy);

/** Schedules tasks on a systolic-array performance model. */
ScheduleResult scheduleSystolic(const arch::SystolicPerfModel &model,
                                const std::vector<models::GemmTask> &tasks,
                                arch::DataflowPolicy policy);

} // namespace core
} // namespace mirage

#endif // MIRAGE_CORE_SCHEDULE_H
